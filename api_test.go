package backtrace_test

import (
	"fmt"
	"testing"

	"backtrace"
)

// TestPublicAPISurface exercises the facade end to end: clusters, the
// mutator API, workload generators, transactions, metrics.
func TestPublicAPISurface(t *testing.T) {
	c := backtrace.NewCluster(backtrace.ClusterOptions{
		NumSites:      3,
		AutoBackTrace: true,
	})
	defer c.Close()

	root := c.Site(1).NewRootObject()
	if root.IsZero() || root.Site != 1 {
		t.Fatalf("root ref = %v", root)
	}
	if backtrace.MakeRef(2, 7) != (backtrace.Ref{Site: 2, Obj: 7}) {
		t.Fatal("MakeRef disagrees with literal")
	}

	// Workload generators are usable through the facade.
	spec := backtrace.Ring(3)
	if spec.Sites != 3 || spec.InterSiteEdges() != 3 {
		t.Fatalf("ring spec wrong: %+v", spec)
	}
	refs, err := backtrace.BuildWorkload(c, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 3 {
		t.Fatalf("built %d refs", len(refs))
	}

	rounds, collected := c.CollectUntilStable(40)
	if collected != 3 {
		t.Fatalf("collected %d in %d rounds, want 3", collected, rounds)
	}
	if !c.Site(1).ContainsObject(root.Obj) {
		t.Fatal("root collected")
	}

	// Transactional layer through the facade.
	client := backtrace.NewTxnClient("api-test", backtrace.TxnSites(c))
	client.SetSettle(c.Settle)
	tx := client.Begin()
	obj, err := tx.Create(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if obj.Ref().IsZero() {
		t.Fatal("created object has no ref")
	}
	client.Close()

	// Counters are visible.
	if c.Counters().Get("backtrace.started") == 0 {
		t.Fatal("no back traces recorded")
	}
}

func TestPublicAPIOutsetAlgorithms(t *testing.T) {
	for _, algo := range []backtrace.OutsetAlgorithm{backtrace.AlgoBottomUp, backtrace.AlgoIndependent} {
		c := backtrace.NewCluster(backtrace.ClusterOptions{
			NumSites:        2,
			AutoBackTrace:   true,
			OutsetAlgorithm: algo,
		})
		c.BuildRing()
		if _, collected := c.CollectUntilStable(40); collected != 2 {
			t.Fatalf("algo %v: collected %d", algo, collected)
		}
		c.Close()
	}
}

func TestPublicAPIMemNetwork(t *testing.T) {
	net := backtrace.NewMemNetwork(backtrace.NetworkOptions{Stepped: true})
	defer net.Close()
	s1 := backtrace.NewSite(backtrace.SiteConfig{ID: 1, Network: net})
	s2 := backtrace.NewSite(backtrace.SiteConfig{ID: 2, Network: net})

	root := s1.NewRootObject()
	obj := s2.NewObject()
	if err := s2.SendRef(1, obj); err != nil {
		t.Fatal(err)
	}
	net.DeliverAll()
	if err := s1.AddReference(root.Obj, obj); err != nil {
		t.Fatal(err)
	}
	s1.DropAppRoot(obj)
	net.DeliverAll()
	s1.RunLocalTrace()
	net.DeliverAll()
	s2.RunLocalTrace()
	net.DeliverAll()
	if !s2.ContainsObject(obj.Obj) {
		t.Fatal("referenced object collected")
	}
}

// ExampleNewTxnClient demonstrates the transactional client-caching
// mutator layer: create objects across sites in one transaction, orphan
// them in another, and let the collector reclaim the cycle.
func ExampleNewTxnClient() {
	c := backtrace.NewCluster(backtrace.ClusterOptions{
		NumSites:      2,
		AutoBackTrace: true,
	})
	defer c.Close()

	client := backtrace.NewTxnClient("example", backtrace.TxnSites(c))
	client.SetSettle(c.Settle)

	// Transaction 1: a root directory on site 1 holding object a, with
	// b@site2 referencing a.
	tx := client.Begin()
	a, _ := tx.Create(1)
	b, _ := tx.Create(2, a) // b -> a
	root, _ := tx.CreateRoot(1, a)
	if err := tx.Commit(); err != nil {
		panic(err)
	}

	// Transaction 2: close the cycle (a -> b) and orphan it from the
	// directory in one commit.
	tx2 := client.Begin()
	fields, _ := tx2.Read(a.Ref())
	if err := tx2.Write(a.Ref(), append(fields, b.Ref())); err != nil {
		panic(err)
	}
	if _, err := tx2.Read(root.Ref()); err != nil {
		panic(err)
	}
	if err := tx2.Write(root.Ref(), nil); err != nil {
		panic(err)
	}
	if err := tx2.Commit(); err != nil {
		panic(err)
	}
	client.Close() // release the cache holds

	_, collected := c.CollectUntilStable(40)
	fmt.Println("collected after client closed:", collected)
	// Output:
	// collected after client closed: 2
}

// Example demonstrates collecting a distributed garbage cycle.
func Example() {
	c := backtrace.NewCluster(backtrace.ClusterOptions{
		NumSites:      3,
		AutoBackTrace: true,
	})
	defer c.Close()

	// A persistent root keeps one object alive; a two-site cycle is
	// unreachable.
	root := c.Site(1).NewRootObject()
	live := c.Site(2).NewObject()
	c.MustLink(root, live)
	x := c.Site(2).NewObject()
	y := c.Site(3).NewObject()
	c.MustLink(x, y)
	c.MustLink(y, x)

	_, collected := c.CollectUntilStable(40)
	fmt.Println("collected:", collected)
	fmt.Println("live object intact:", c.Site(2).ContainsObject(live.Obj))
	// Output:
	// collected: 2
	// live object intact: true
}

package backtrace_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"backtrace"
)

// TestPublicAPISurface exercises the facade end to end: clusters, the
// mutator API, workload generators, transactions, metrics.
func TestPublicAPISurface(t *testing.T) {
	c := backtrace.NewCluster(backtrace.ClusterOptions{
		NumSites:      3,
		AutoBackTrace: true,
	})
	defer c.Close()

	root := c.Site(1).NewRootObject()
	if root.IsZero() || root.Site != 1 {
		t.Fatalf("root ref = %v", root)
	}
	if backtrace.MakeRef(2, 7) != (backtrace.Ref{Site: 2, Obj: 7}) {
		t.Fatal("MakeRef disagrees with literal")
	}

	// Workload generators are usable through the facade.
	spec := backtrace.Ring(3)
	if spec.Sites != 3 || spec.InterSiteEdges() != 3 {
		t.Fatalf("ring spec wrong: %+v", spec)
	}
	refs, err := backtrace.BuildWorkload(c, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 3 {
		t.Fatalf("built %d refs", len(refs))
	}

	rounds, collected := c.CollectUntilStable(40)
	if collected != 3 {
		t.Fatalf("collected %d in %d rounds, want 3", collected, rounds)
	}
	if !c.Site(1).ContainsObject(root.Obj) {
		t.Fatal("root collected")
	}

	// Transactional layer through the facade.
	client := backtrace.NewTxnClient("api-test", backtrace.TxnSites(c))
	client.SetSettle(c.Settle)
	tx := client.Begin()
	obj, err := tx.Create(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if obj.Ref().IsZero() {
		t.Fatal("created object has no ref")
	}
	client.Close()

	// Counters are visible.
	if c.Counters().Get("backtrace.started") == 0 {
		t.Fatal("no back traces recorded")
	}
}

// TestPublicTelemetryAPI exercises the redesigned observability surface
// through the facade: Observer wiring, span collection, typed metrics
// snapshots, and the debug HTTP handler.
func TestPublicTelemetryAPI(t *testing.T) {
	events := backtrace.NewEventLog(256)
	extra := backtrace.NewSpanCollector(backtrace.SpanCollectorOptions{})
	c := backtrace.NewCluster(backtrace.ClusterOptions{
		NumSites:      3,
		AutoBackTrace: true,
		Events:        events,
		Observer:      backtrace.TeeObservers(nil, extra),
	})
	defer c.Close()

	c.BuildRing()
	if _, collected := c.CollectUntilStable(40); collected != 3 {
		t.Fatalf("collected %d, want 3", collected)
	}

	// The cluster's built-in collector assembled complete span trees, and
	// the user-supplied observer saw the same spans.
	trees := c.Spans().Trees()
	if len(trees) == 0 {
		t.Fatal("no span trees collected")
	}
	var garbage *backtrace.SpanTree
	for _, tree := range trees {
		if tree.Root != nil && tree.Root.Verdict == 0 /* garbage */ {
			garbage = tree
		}
	}
	if garbage == nil {
		t.Fatalf("no garbage-verdict tree among %d trees", len(trees))
	}
	if !garbage.Complete() {
		t.Fatalf("garbage tree incomplete: %+v", garbage)
	}
	if len(garbage.Root.Participants) != 3 || len(garbage.Participants) != 3 {
		t.Fatalf("want all 3 sites in tree, got root=%v spans=%d",
			garbage.Root.Participants, len(garbage.Participants))
	}
	if len(extra.Trees()) != len(trees) {
		t.Fatalf("teed observer saw %d trees, cluster %d", len(extra.Trees()), len(trees))
	}

	// Typed snapshots agree with the legacy counter facade, and the span
	// kinds render.
	snap := c.Metrics()
	if snap.Get("backtrace.started") != c.Counters().Get("backtrace.started") {
		t.Fatal("typed snapshot disagrees with legacy counters")
	}
	if snap.Get("backtrace.started") != c.Site(1).Metrics().Get("backtrace.started") {
		t.Fatal("site snapshot disagrees with cluster snapshot")
	}
	if rtt := snap.Histograms["backtrace.rtt_seconds"]; rtt.Count == 0 {
		t.Fatal("no back-trace RTT observations")
	}
	if lt := snap.Histograms["localtrace.duration_seconds"]; lt.Count == 0 {
		t.Fatal("no local-trace duration observations")
	}
	for _, k := range []backtrace.SpanKind{
		backtrace.SpanBackTrace, backtrace.SpanParticipant,
		backtrace.SpanLocalTrace, backtrace.SpanReport,
	} {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}

	// The debug handler serves the registry and the collector.
	srv := httptest.NewServer(backtrace.NewDebugHandler(c.Registry(), c.Spans(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<20)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), "backtrace_rtt_seconds_count") {
		t.Fatalf("/metrics missing RTT histogram:\n%s", body[:n])
	}
}

func TestPublicAPIOutsetAlgorithms(t *testing.T) {
	for _, algo := range []backtrace.OutsetAlgorithm{backtrace.AlgoBottomUp, backtrace.AlgoIndependent} {
		c := backtrace.NewCluster(backtrace.ClusterOptions{
			NumSites:        2,
			AutoBackTrace:   true,
			OutsetAlgorithm: algo,
		})
		c.BuildRing()
		if _, collected := c.CollectUntilStable(40); collected != 2 {
			t.Fatalf("algo %v: collected %d", algo, collected)
		}
		c.Close()
	}
}

func TestPublicAPIMemNetwork(t *testing.T) {
	net := backtrace.NewMemNetwork(backtrace.NetworkOptions{Stepped: true})
	defer net.Close()
	s1 := backtrace.NewSite(backtrace.SiteConfig{ID: 1, Network: net})
	s2 := backtrace.NewSite(backtrace.SiteConfig{ID: 2, Network: net})

	root := s1.NewRootObject()
	obj := s2.NewObject()
	if err := s2.SendRef(1, obj); err != nil {
		t.Fatal(err)
	}
	net.DeliverAll()
	if err := s1.AddReference(root.Obj, obj); err != nil {
		t.Fatal(err)
	}
	s1.DropAppRoot(obj)
	net.DeliverAll()
	s1.RunLocalTrace()
	net.DeliverAll()
	s2.RunLocalTrace()
	net.DeliverAll()
	if !s2.ContainsObject(obj.Obj) {
		t.Fatal("referenced object collected")
	}
}

// ExampleNewTxnClient demonstrates the transactional client-caching
// mutator layer: create objects across sites in one transaction, orphan
// them in another, and let the collector reclaim the cycle.
func ExampleNewTxnClient() {
	c := backtrace.NewCluster(backtrace.ClusterOptions{
		NumSites:      2,
		AutoBackTrace: true,
	})
	defer c.Close()

	client := backtrace.NewTxnClient("example", backtrace.TxnSites(c))
	client.SetSettle(c.Settle)

	// Transaction 1: a root directory on site 1 holding object a, with
	// b@site2 referencing a.
	tx := client.Begin()
	a, _ := tx.Create(1)
	b, _ := tx.Create(2, a) // b -> a
	root, _ := tx.CreateRoot(1, a)
	if err := tx.Commit(); err != nil {
		panic(err)
	}

	// Transaction 2: close the cycle (a -> b) and orphan it from the
	// directory in one commit.
	tx2 := client.Begin()
	fields, _ := tx2.Read(a.Ref())
	if err := tx2.Write(a.Ref(), append(fields, b.Ref())); err != nil {
		panic(err)
	}
	if _, err := tx2.Read(root.Ref()); err != nil {
		panic(err)
	}
	if err := tx2.Write(root.Ref(), nil); err != nil {
		panic(err)
	}
	if err := tx2.Commit(); err != nil {
		panic(err)
	}
	client.Close() // release the cache holds

	_, collected := c.CollectUntilStable(40)
	fmt.Println("collected after client closed:", collected)
	// Output:
	// collected after client closed: 2
}

// Example demonstrates collecting a distributed garbage cycle.
func Example() {
	c := backtrace.NewCluster(backtrace.ClusterOptions{
		NumSites:      3,
		AutoBackTrace: true,
	})
	defer c.Close()

	// A persistent root keeps one object alive; a two-site cycle is
	// unreachable.
	root := c.Site(1).NewRootObject()
	live := c.Site(2).NewObject()
	c.MustLink(root, live)
	x := c.Site(2).NewObject()
	y := c.Site(3).NewObject()
	c.MustLink(x, y)
	c.MustLink(y, x)

	_, collected := c.CollectUntilStable(40)
	fmt.Println("collected:", collected)
	fmt.Println("live object intact:", c.Site(2).ContainsObject(live.Obj))
	// Output:
	// collected: 2
	// live object intact: true
}

// Command quickstart demonstrates the collector on the paper's core
// problem: a garbage cycle spread across sites, which local tracing alone
// can never reclaim, collected by a back trace.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"backtrace"
)

func main() {
	// A three-site store. AutoBackTrace starts back traces whenever an
	// outgoing reference's estimated distance crosses its back threshold.
	c := backtrace.NewCluster(backtrace.ClusterOptions{
		NumSites:           3,
		SuspicionThreshold: 3,
		BackThreshold:      7,
		AutoBackTrace:      true,
	})
	defer c.Close()

	// A persistent root on site 1 keeps a live chain alive.
	root := c.Site(1).NewRootObject()
	live := c.Site(2).NewObject()
	c.MustLink(root, live)

	// A garbage cycle spanning sites 2 and 3: no root reaches it.
	x := c.Site(2).NewObject()
	y := c.Site(3).NewObject()
	c.MustLink(x, y)
	c.MustLink(y, x)

	fmt.Printf("before: %d objects, %d garbage (the x<->y cycle)\n",
		c.TotalObjects(), c.GarbageCount())

	// Local traces alone never collect the cycle: each site sees the
	// other's incoming reference and must treat it as a root.
	c.RunRounds(3)
	fmt.Printf("after 3 rounds of local tracing: %d objects (cycle still there)\n",
		c.TotalObjects())

	// Keep running rounds: the distance heuristic keeps raising the
	// cycle's estimated distances, a back trace fires, confirms the cycle
	// garbage, and the next local traces reclaim it.
	rounds, collected := c.CollectUntilStable(40)
	fmt.Printf("after %d more rounds: collected %d, %d objects remain\n",
		rounds, collected, c.TotalObjects())

	for _, o := range []backtrace.Ref{root, live} {
		if !c.Site(o.Site).ContainsObject(o.Obj) {
			panic("live object collected!")
		}
	}
	fmt.Println("live objects intact; garbage cycle gone.")

	snap := c.Counters().Snapshot()
	fmt.Printf("\nback traces started: %d (garbage verdicts: %d)\n",
		snap["backtrace.started"], snap["backtrace.outcome.garbage"])
	fmt.Printf("messages sent: %d (BackCall %d, BackReply %d, Report %d)\n",
		snap["msg.total"], snap["msg.BackCall"], snap["msg.BackReply"], snap["msg.Report"])
}

// Command transactions demonstrates the client-caching transactional
// mutator layer — the paper's application model (Section 6.1.1): a client
// fetches objects from many sites into a cache, commits transactions whose
// new references flow through the transfer and insert barriers, and the
// collector reclaims whatever the transactions orphan — including
// cross-site cycles.
//
// Run with:
//
//	go run ./examples/transactions
package main

import (
	"fmt"

	"backtrace"
)

func main() {
	c := backtrace.NewCluster(backtrace.ClusterOptions{
		NumSites:           4,
		SuspicionThreshold: 3,
		BackThreshold:      7,
		AutoBackTrace:      true,
	})
	defer c.Close()

	client := backtrace.NewTxnClient("editor", backtrace.TxnSites(c))
	client.SetSettle(c.Settle)

	// Transaction 1: create a small document web — a directory (root) on
	// site 1 pointing at two documents whose pages cross sites.
	tx := client.Begin()
	pageA1, _ := tx.Create(2)
	pageA2, _ := tx.Create(3, pageA1)
	tocA, _ := tx.Create(2, pageA1, pageA2)
	pageB1, _ := tx.Create(3)
	pageB2, _ := tx.Create(4, pageB1)
	tocB, _ := tx.Create(3, pageB1, pageB2)
	dir, err := tx.CreateRoot(1, tocA, tocB)
	if err != nil {
		panic(err)
	}
	if err := tx.Commit(); err != nil {
		panic(err)
	}
	fmt.Println("tx1: created directory with documents A and B (pages across sites 2-4)")

	// Transaction 2: make the documents cyclic (pages link back to their
	// tables of contents) — the shape that defeats plain local tracing.
	tx2 := client.Begin()
	for _, link := range []struct {
		page *backtrace.TxnObject
		toc  *backtrace.TxnObject
	}{
		{pageA1, tocA}, {pageA2, tocA}, {pageB1, tocB}, {pageB2, tocB},
	} {
		fields, err := tx2.Read(link.page.Ref())
		if err != nil {
			panic(err)
		}
		if err := tx2.Write(link.page.Ref(), append(fields, link.toc.Ref())); err != nil {
			panic(err)
		}
	}
	if err := tx2.Commit(); err != nil {
		panic(err)
	}
	fmt.Println("tx2: pages now link back to their TOCs — cross-site cycles everywhere")

	// Transaction 3: delete document B from the directory.
	tx3 := client.Begin()
	if _, err := tx3.Read(dir.Ref()); err != nil {
		panic(err)
	}
	if err := tx3.Write(dir.Ref(), []backtrace.Ref{tocA.Ref()}); err != nil {
		panic(err)
	}
	if err := tx3.Commit(); err != nil {
		panic(err)
	}
	fmt.Println("tx3: document B unlinked from the directory")

	// While the client still caches B's pages, they are application
	// roots and must survive.
	c.RunRounds(8)
	if !c.Site(3).ContainsObject(tocB.Ref().Obj) {
		panic("cached document collected while client holds it")
	}
	fmt.Println("document B survives while cached by the client (application roots)")

	// Client disconnects: document B is now a distributed garbage cycle.
	client.Close()
	rounds, collected := c.CollectUntilStable(40)
	fmt.Printf("client closed: collected %d objects in %d rounds\n", collected, rounds)

	if c.Site(3).ContainsObject(tocB.Ref().Obj) {
		panic("orphaned document B not collected")
	}
	if !c.Site(2).ContainsObject(tocA.Ref().Obj) {
		panic("live document A collected")
	}
	fmt.Println("document B (a cross-site cycle) reclaimed; document A intact.")
}

// Command hypertext runs the paper's motivating workload: hypertext
// documents whose pages form "large, complex cycles" across sites. Live
// documents hang off a root directory; orphaned documents (deleted from
// the directory) are distributed cyclic garbage that only back tracing
// reclaims.
//
// Run with:
//
//	go run ./examples/hypertext
package main

import (
	"fmt"

	"backtrace"
)

func main() {
	const sites = 6
	c := backtrace.NewCluster(backtrace.ClusterOptions{
		NumSites:           sites,
		SuspicionThreshold: 4,
		BackThreshold:      10,
		AutoBackTrace:      true,
	})
	defer c.Close()

	spec := backtrace.HypertextWeb(backtrace.HypertextConfig{
		Sites:       sites,
		Docs:        12,
		PagesPerDoc: 6,
		CrossLinks:  8,
		LiveFrac:    0.5,
		Seed:        42,
	})
	refs, err := backtrace.BuildWorkload(c, spec)
	if err != nil {
		panic(err)
	}

	fmt.Printf("web built: %d objects over %d sites, %d inter-site links\n",
		len(refs), sites, spec.InterSiteEdges())
	fmt.Printf("orphaned pages (distributed cyclic garbage): %d\n", c.GarbageCount())

	rounds, collected := c.CollectUntilStable(80)
	fmt.Printf("collected %d orphaned objects in %d rounds; %d live objects remain\n",
		collected, rounds, c.TotalObjects())

	if g := c.GarbageCount(); g != 0 {
		panic(fmt.Sprintf("garbage left: %d", g))
	}

	// Every remaining object is reachable from the directory.
	live := c.GlobalLive()
	if len(live) != c.TotalObjects() {
		panic("live set and heap contents disagree")
	}

	snap := c.Counters().Snapshot()
	fmt.Printf("\nback traces: %d started, %d confirmed garbage, %d found live\n",
		snap["backtrace.started"], snap["backtrace.outcome.garbage"], snap["backtrace.outcome.live"])
	fmt.Printf("inrefs flagged garbage by report phases: %d\n", snap["inrefs.flagged.garbage"])
	fmt.Printf("local traces: %d (objects scanned: %d, collected: %d)\n",
		snap["localtrace.runs"], snap["localtrace.objects"], snap["localtrace.collected"])
}

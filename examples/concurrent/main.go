// Command concurrent exercises the Section 6 machinery: mutators keep
// creating and deleting cross-site references (including re-rooting
// structures that back traces are suspecting) while collectors run
// concurrently on an asynchronous network with real delivery goroutines.
// The transfer/insert barriers and the clean rule must keep every live
// object safe; once the mutators stop, everything unreachable must go.
//
// Run with:
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"backtrace"
)

func main() {
	const sites = 4
	c := backtrace.NewCluster(backtrace.ClusterOptions{
		NumSites:           sites,
		SuspicionThreshold: 3,
		BackThreshold:      7,
		AutoBackTrace:      true,
		Async:              true,
		Latency:            200 * time.Microsecond,
		Jitter:             300 * time.Microsecond,
	})
	defer c.Close()

	// Persistent anchors, one per site.
	anchors := make([]backtrace.Ref, sites)
	for i := range anchors {
		anchors[i] = c.Site(backtrace.SiteID(i + 1)).NewRootObject()
	}

	var (
		mu      sync.Mutex
		pinned  []backtrace.Ref // objects currently reachable from anchors
		created int
	)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Collector goroutine: continuous rounds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range c.Sites() {
				s.RunLocalTrace()
			}
		}
	}()

	// Mutator goroutine: builds cross-site cycles under an anchor, then
	// cuts them loose (creating suspect garbage), sometimes re-rooting a
	// structure that is already under suspicion — the Figure 5 race.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 120; i++ {
			s1 := backtrace.SiteID(rng.Intn(sites) + 1)
			s2 := backtrace.SiteID(rng.Intn(sites) + 1)
			x := c.Site(s1).NewObject()
			y := c.Site(s2).NewObject()
			if link(c, x, y) != nil || link(c, y, x) != nil {
				continue
			}
			anchor := anchors[rng.Intn(sites)]
			if link(c, anchor, x) != nil {
				continue
			}
			mu.Lock()
			created += 2
			pinned = append(pinned, x, y)
			// Cut a previously built cycle loose half of the time.
			if len(pinned) > 4 && rng.Intn(2) == 0 {
				victim := pinned[0]
				pinned = pinned[2:]
				for _, a := range anchors {
					_ = c.Site(a.Site).RemoveReference(a.Obj, victim)
				}
			}
			mu.Unlock()
		}
		close(stop)
	}()

	wg.Wait()
	c.Settle()

	rounds, collected := c.CollectUntilStable(80)
	mu.Lock()
	survivors := pinned
	mu.Unlock()

	fmt.Printf("mutator created %d cycle objects; %d still anchored\n", created, len(survivors))
	snapMid := c.Counters().Snapshot()
	fmt.Printf("collector reclaimed %d objects while racing the mutator, %d more in %d final rounds\n",
		snapMid["localtrace.collected"]-int64(collected), collected, rounds)

	for _, r := range survivors {
		if !c.Site(r.Site).ContainsObject(r.Obj) {
			panic(fmt.Sprintf("SAFETY VIOLATION: anchored object %v was collected", r))
		}
	}
	if g := c.GarbageCount(); g != 0 {
		panic(fmt.Sprintf("completeness violation: %d garbage objects remain", g))
	}
	snap := c.Counters().Snapshot()
	fmt.Printf("back traces: %d (garbage %d, live %d); no live object was ever collected.\n",
		snap["backtrace.started"], snap["backtrace.outcome.garbage"], snap["backtrace.outcome.live"])
}

// link performs the full reference-passing protocol to make from -> target
// on an asynchronous cluster: transfer the reference, wait for the outref,
// store it, release the variable.
func link(c *backtrace.Cluster, from, target backtrace.Ref) error {
	holder := c.Site(from.Site)
	if target.Site == from.Site {
		return holder.AddReference(from.Obj, target)
	}
	if err := c.Site(target.Site).SendRef(from.Site, target); err != nil {
		return err
	}
	var err error
	for try := 0; try < 200; try++ {
		if err = holder.AddReference(from.Obj, target); err == nil {
			holder.DropAppRoot(target)
			return nil
		}
		time.Sleep(100 * time.Microsecond)
	}
	return err
}

// Command faulttolerance demonstrates the locality property that motivates
// the paper: collecting a garbage cycle involves only the sites containing
// it, so a crashed site delays only the garbage reachable from its own
// objects.
//
// Two garbage cycles exist: cycle A on sites 1-2 and cycle B on sites 3-4.
// Site 4 crashes. Cycle A is still collected; cycle B waits until site 4
// returns. A global-trace collector (like Hughes's timestamp scheme in the
// paper's related work) would collect NOTHING while any site is down.
//
// Run with:
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"

	"backtrace"
)

func main() {
	c := backtrace.NewCluster(backtrace.ClusterOptions{
		NumSites:           4,
		SuspicionThreshold: 3,
		BackThreshold:      7,
		AutoBackTrace:      true,
	})
	defer c.Close()

	a1 := c.Site(1).NewObject()
	a2 := c.Site(2).NewObject()
	c.MustLink(a1, a2)
	c.MustLink(a2, a1)

	b3 := c.Site(3).NewObject()
	b4 := c.Site(4).NewObject()
	c.MustLink(b3, b4)
	c.MustLink(b4, b3)

	fmt.Println("cycle A on sites 1-2, cycle B on sites 3-4; crashing site 4")
	c.Net().Crash(4)

	// Run rounds on the surviving sites.
	for round := 1; round <= 25; round++ {
		for _, id := range []backtrace.SiteID{1, 2, 3} {
			c.Site(id).RunLocalTrace()
			c.Settle()
		}
	}

	gone := func(r backtrace.Ref) bool { return !c.Site(r.Site).ContainsObject(r.Obj) }
	fmt.Printf("with site 4 down:  cycle A collected: %v   cycle B collected: %v\n",
		gone(a1) && gone(a2), gone(b3) && gone(b4))
	if !gone(a1) || !gone(a2) {
		panic("locality violated: cycle A should not depend on site 4")
	}
	if gone(b3) || gone(b4) {
		panic("cycle B half-collected while a participant is down")
	}

	fmt.Println("restarting site 4")
	c.Net().Restart(4)
	c.CollectUntilStable(40)
	fmt.Printf("after restart:     cycle B collected: %v\n", gone(b3) && gone(b4))
	if c.GarbageCount() != 0 {
		panic("garbage remains after restart")
	}
	fmt.Println("locality holds: each cycle needed only its own sites.")
}

package txn

import (
	"errors"
	"testing"

	"backtrace/internal/cluster"
	"backtrace/internal/ids"
	"backtrace/internal/site"
)

// harness couples a cluster with a client.
type harness struct {
	c  *cluster.Cluster
	cl *Client
}

func newHarness(t *testing.T, sites int) *harness {
	t.Helper()
	c := cluster.New(cluster.Options{
		NumSites:           sites,
		SuspicionThreshold: 3,
		BackThreshold:      7,
		ThresholdBump:      4,
		AutoBackTrace:      true,
	})
	t.Cleanup(c.Close)
	m := make(map[ids.SiteID]*site.Site, sites)
	for _, s := range c.Sites() {
		m[s.ID()] = s
	}
	cl := NewClient("test", m)
	cl.SetSettle(c.Settle)
	return &harness{c: c, cl: cl}
}

func TestCreateAndCommit(t *testing.T) {
	h := newHarness(t, 2)
	tx := h.cl.Begin()
	dir, err := tx.CreateRoot(1)
	if err != nil {
		t.Fatal(err)
	}
	child, err := tx.Create(2)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild dir with a reference to child: created objects may
	// reference each other within the transaction.
	dir2, err := tx.CreateRoot(1, child)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	_ = dir
	if dir2.Ref().IsZero() || child.Ref().IsZero() {
		t.Fatal("created objects missing refs after commit")
	}
	// The cross-site reference dir2 -> child must exist with full
	// protocol state.
	fields, err := h.c.Site(1).Fields(dir2.Ref().Obj)
	if err != nil || len(fields) != 1 || fields[0] != child.Ref() {
		t.Fatalf("dir2 fields = %v, %v", fields, err)
	}
	if got := h.c.InvariantViolations(); len(got) != 0 {
		t.Fatalf("invariants: %v", got)
	}
	// While cached, nothing is collected even without other roots.
	h.c.RunRounds(5)
	if !h.c.Site(2).ContainsObject(child.Ref().Obj) {
		t.Fatal("cached object collected")
	}
}

func TestReadWriteCycleThenOrphan(t *testing.T) {
	h := newHarness(t, 3)

	// Transaction 1: build root -> a(site2) and a cross-site cycle
	// a <-> b(site3) hanging off the root.
	tx := h.cl.Begin()
	a, err := tx.Create(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tx.Create(3, a)
	if err != nil {
		t.Fatal(err)
	}
	root, err := tx.CreateRoot(1, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Transaction 2: read a, add a -> b (completing the cycle).
	tx2 := h.cl.Begin()
	fields, err := tx2.Read(a.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Write(a.Ref(), append(fields, b.Ref())); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := h.c.InvariantViolations(); len(got) != 0 {
		t.Fatalf("invariants after tx2: %v", got)
	}

	// Transaction 3: orphan the cycle (root drops a).
	tx3 := h.cl.Begin()
	if _, err := tx3.Read(root.Ref()); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Write(root.Ref(), nil); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}

	// The client still caches a and b: the cycle must survive.
	h.c.RunRounds(12)
	if !h.c.Site(2).ContainsObject(a.Ref().Obj) || !h.c.Site(3).ContainsObject(b.Ref().Obj) {
		t.Fatal("client-cached cycle collected")
	}

	// Client closes: holds released; the cycle is garbage and must go.
	h.cl.Close()
	rounds, collected := h.c.CollectUntilStable(40)
	t.Logf("collected %d in %d rounds after client close", collected, rounds)
	if h.c.Site(2).ContainsObject(a.Ref().Obj) || h.c.Site(3).ContainsObject(b.Ref().Obj) {
		t.Fatal("orphaned cycle not collected after client closed")
	}
	if !h.c.Site(1).ContainsObject(root.Ref().Obj) {
		t.Fatal("root collected")
	}
}

func TestWriteRequiresRead(t *testing.T) {
	h := newHarness(t, 1)
	tx := h.cl.Begin()
	obj, err := tx.Create(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := h.cl.Begin()
	if err := tx2.Write(obj.Ref(), nil); err == nil {
		t.Fatal("write without read accepted (read-write log discipline)")
	}
}

func TestAbortDiscardsBuffers(t *testing.T) {
	h := newHarness(t, 2)
	tx := h.cl.Begin()
	root, err := tx.CreateRoot(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := h.cl.Begin()
	if _, err := tx2.Read(root.Ref()); err != nil {
		t.Fatal(err)
	}
	other, err := tx2.Create(2)
	if err != nil {
		t.Fatal(err)
	}
	_ = other
	if err := tx2.Write(root.Ref(), []ids.Ref{ids.MakeRef(1, 999)}); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()
	if err := tx2.Commit(); err == nil {
		t.Fatal("commit after abort accepted")
	}
	fields, err := h.c.Site(1).Fields(root.Ref().Obj)
	if err != nil || len(fields) != 0 {
		t.Fatalf("aborted write applied: %v", fields)
	}
}

func TestOperationsAfterFinishRejected(t *testing.T) {
	h := newHarness(t, 1)
	tx := h.cl.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(ids.MakeRef(1, 1)); err == nil {
		t.Error("read after commit accepted")
	}
	if _, err := tx.Create(1); err == nil {
		t.Error("create after commit accepted")
	}
	if err := tx.Commit(); err == nil {
		t.Error("double commit accepted")
	}
}

func TestCreateRejectsBadFieldType(t *testing.T) {
	h := newHarness(t, 1)
	tx := h.cl.Begin()
	if _, err := tx.Create(1, 42); err == nil {
		t.Fatal("bad field type accepted")
	}
}

func TestStoreUnheldRemoteRefRejected(t *testing.T) {
	h := newHarness(t, 2)
	tx := h.cl.Begin()
	root, err := tx.CreateRoot(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	hidden := h.c.Site(2).NewObject() // exists but the client never saw it

	tx2 := h.cl.Begin()
	if _, err := tx2.Read(root.Ref()); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Write(root.Ref(), []ids.Ref{hidden}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err == nil {
		t.Fatal("commit stored a reference the client never held")
	}
}

func TestFetchEvict(t *testing.T) {
	h := newHarness(t, 2)
	obj := h.c.Site(2).NewObject()
	if err := h.cl.Fetch(obj); err != nil {
		t.Fatal(err)
	}
	if !h.cl.Cached(obj) {
		t.Fatal("not cached after fetch")
	}
	// Cached: survives collection despite no roots.
	h.c.RunRounds(4)
	if !h.c.Site(2).ContainsObject(obj.Obj) {
		t.Fatal("cached object collected")
	}
	h.cl.Evict(obj)
	if h.cl.Cached(obj) {
		t.Fatal("still cached after evict")
	}
	h.c.RunRounds(3)
	if h.c.Site(2).ContainsObject(obj.Obj) {
		t.Fatal("evicted garbage object not collected")
	}
	if err := h.cl.Fetch(ids.MakeRef(2, 9999)); err == nil {
		t.Fatal("fetch of missing object accepted")
	}
	if err := h.cl.Fetch(ids.MakeRef(9, 1)); err == nil {
		t.Fatal("fetch from unknown site accepted")
	}
}

func TestErrTransferPendingResolve(t *testing.T) {
	// Without a settle hook, a commit needing a transfer reports
	// ErrTransferPending; settling and resolving completes the write.
	h := newHarness(t, 2)
	h.cl.settle = nil

	tx := h.cl.Begin()
	root, err := tx.CreateRoot(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	obj := h.c.Site(2).NewObject()
	if err := h.cl.Fetch(obj); err != nil {
		t.Fatal(err)
	}

	tx2 := h.cl.Begin()
	if _, err := tx2.Read(root.Ref()); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Write(root.Ref(), []ids.Ref{obj}); err != nil {
		t.Fatal(err)
	}
	err = tx2.Commit()
	var pending *ErrTransferPending
	if !errors.As(err, &pending) {
		t.Fatalf("commit error = %v, want ErrTransferPending", err)
	}
	h.c.Settle()
	if err := pending.Resolve(h.cl); err != nil {
		t.Fatal(err)
	}
	fields, err := h.c.Site(1).Fields(root.Ref().Obj)
	if err != nil || len(fields) != 1 || fields[0] != obj {
		t.Fatalf("fields after resolve = %v, %v", fields, err)
	}
}

// TestTwoClientsShareObjects: two clients hold overlapping cache contents;
// an object stays alive while EITHER client caches it, and dies only when
// both release it.
func TestTwoClientsShareObjects(t *testing.T) {
	h := newHarness(t, 2)
	cl2 := NewClient("second", h.cl.sites)
	cl2.SetSettle(h.c.Settle)

	obj := h.c.Site(2).NewObject()
	if err := h.cl.Fetch(obj); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Fetch(obj); err != nil {
		t.Fatal(err)
	}

	h.cl.Evict(obj)
	h.c.RunRounds(4)
	if !h.c.Site(2).ContainsObject(obj.Obj) {
		t.Fatal("object collected while second client still caches it")
	}
	cl2.Evict(obj)
	h.c.RunRounds(3)
	if h.c.Site(2).ContainsObject(obj.Obj) {
		t.Fatal("object survived after both clients released it")
	}
}

// TestTwoClientsInterleavedCommits: clients interleave transactions over
// shared objects; the final structure reflects both commits and the
// collector stays consistent.
func TestTwoClientsInterleavedCommits(t *testing.T) {
	h := newHarness(t, 3)
	cl2 := NewClient("second", h.cl.sites)
	cl2.SetSettle(h.c.Settle)

	tx := h.cl.Begin()
	root, err := tx.CreateRoot(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Client 2 commits a child under root.
	tx2 := cl2.Begin()
	cur2, err := tx2.Read(root.Ref())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := tx2.Create(2)
	if err != nil {
		t.Fatal(err)
	}
	args := make([]interface{}, 0, len(cur2)+1)
	for _, f := range cur2 {
		args = append(args, f)
	}
	if err := tx2.WriteMixed(root.Ref(), append(args, c2)...); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	// Client 1, with its own transaction, appends another child created
	// in the SAME transaction (WriteMixed resolves it at commit). Its
	// cached copy of root is stale (caches are snapshots, not coherent);
	// evicting refreshes it.
	h.cl.Evict(root.Ref())
	tx3 := h.cl.Begin()
	cur3, err := tx3.Read(root.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if len(cur3) != 1 || cur3[0] != c2.Ref() {
		t.Fatalf("client 1 read stale root fields: %v", cur3)
	}
	c3, err := tx3.Create(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx3.WriteMixed(root.Ref(), cur3[0], c3); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	if fields, err := h.c.Site(1).Fields(root.Ref().Obj); err != nil || len(fields) != 2 {
		t.Fatalf("root fields = %v, %v; want both children", fields, err)
	}

	h.cl.Close()
	cl2.Close()
	h.c.CollectUntilStable(40)
	if got := h.c.InvariantViolations(); len(got) != 0 {
		t.Fatalf("invariants: %v", got)
	}
	live := h.c.GlobalLive()
	for _, r := range []ids.Ref{root.Ref(), c2.Ref(), c3.Ref()} {
		if _, ok := live[r]; !ok {
			t.Fatalf("%v not live", r)
		}
	}
}

// TestTransactionalHypertextLifecycle models the paper's motivating story
// through the transactional API: a client builds hypertext documents
// (cyclic page webs across sites), later unlinks one from the directory,
// and the collector reclaims exactly the orphaned document.
func TestTransactionalHypertextLifecycle(t *testing.T) {
	h := newHarness(t, 4)

	tx := h.cl.Begin()
	// Document A: toc + 3 pages in a cycle across sites 2-4.
	pA := make([]*NewObject, 3)
	for i := range pA {
		var err error
		pA[i], err = tx.Create(ids.SiteID(2 + i))
		if err != nil {
			t.Fatal(err)
		}
	}
	tocA, err := tx.Create(2, pA[0], pA[1], pA[2])
	if err != nil {
		t.Fatal(err)
	}
	// Document B: same shape.
	pB := make([]*NewObject, 3)
	for i := range pB {
		var err error
		pB[i], err = tx.Create(ids.SiteID(2 + i))
		if err != nil {
			t.Fatal(err)
		}
	}
	tocB, err := tx.Create(3, pB[0], pB[1], pB[2])
	if err != nil {
		t.Fatal(err)
	}
	dir, err := tx.CreateRoot(1, tocA, tocB)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Pages link back to their TOCs (cycles) in a second transaction.
	tx2 := h.cl.Begin()
	for _, pg := range append(append([]*NewObject{}, pA...), pB...) {
		toc := tocA
		for _, q := range pB {
			if q == pg {
				toc = tocB
			}
		}
		fields, err := tx2.Read(pg.Ref())
		if err != nil {
			t.Fatal(err)
		}
		if err := tx2.Write(pg.Ref(), append(fields, toc.Ref())); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	// Unlink document B from the directory and release the client.
	tx3 := h.cl.Begin()
	if _, err := tx3.Read(dir.Ref()); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Write(dir.Ref(), []ids.Ref{tocA.Ref()}); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	h.cl.Close()

	rounds, collected := h.c.CollectUntilStable(50)
	t.Logf("orphaned document: %d objects collected in %d rounds", collected, rounds)
	if collected != 4 {
		t.Fatalf("collected %d, want 4 (tocB + 3 pages)", collected)
	}
	if !h.c.Site(2).ContainsObject(tocA.Ref().Obj) {
		t.Fatal("live document collected")
	}
	for _, pg := range pA {
		if !h.c.Site(pg.Ref().Site).ContainsObject(pg.Ref().Obj) {
			t.Fatal("live page collected")
		}
	}
	if got := h.c.InvariantViolations(); len(got) != 0 {
		t.Fatalf("invariants: %v", got)
	}
}

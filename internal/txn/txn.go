// Package txn provides a client-caching transactional mutator on top of
// the site API — the application model the paper's system (Thor) actually
// has: "in client-caching systems where objects from multiple servers may
// be fetched into a client cache, the [transfer] barrier may be
// implemented by checking the transaction's read-write log at commit time"
// (Section 6.1.1).
//
// A Client fetches objects from their owning sites into a local cache;
// while an object is cached, its owner holds an application-root
// registration for it, so local tracing treats client-held references as
// roots (Section 6.3). A Tx buffers reads and writes; Commit installs the
// writes at the owning sites, passing every newly stored reference through
// the regular reference-transfer machinery — which applies the transfer
// and insert barriers exactly where the paper requires.
package txn

import (
	"fmt"
	"sort"

	"backtrace/internal/ids"
	"backtrace/internal/site"
)

// Client is a caching client of the distributed store. It is not safe for
// concurrent use; model concurrent mutators as separate clients.
//
// Cache entries are snapshots taken at fetch time, not kept coherent with
// other clients' commits (cache coherence is Thor's concern, not the
// collector's); Evict and re-Fetch to refresh. Staleness never endangers
// the collector — cached objects are application roots either way.
type Client struct {
	name  string
	sites map[ids.SiteID]*site.Site
	// cache maps cached objects to their fetched field snapshots; while
	// present, the owner holds an app-root registration for the object.
	cache map[ids.Ref][]ids.Ref
	// settle, if set, flushes the network's in-flight messages; commit
	// calls it between sending a reference transfer and storing the
	// reference (see SetSettle).
	settle func()
}

// SetSettle installs a callback that delivers in-flight network messages
// (e.g. Cluster.Settle, or a short wait on an asynchronous transport).
// Commit uses it to complete reference transfers synchronously; without
// it, commits needing a transfer return *ErrTransferPending.
func (c *Client) SetSettle(f func()) { c.settle = f }

// NewClient creates a client that can reach the given sites.
func NewClient(name string, sites map[ids.SiteID]*site.Site) *Client {
	copied := make(map[ids.SiteID]*site.Site, len(sites))
	for id, s := range sites {
		copied[id] = s
	}
	return &Client{name: name, sites: copied, cache: make(map[ids.Ref][]ids.Ref)}
}

func (c *Client) site(id ids.SiteID) (*site.Site, error) {
	s, ok := c.sites[id]
	if !ok {
		return nil, fmt.Errorf("client %s: unknown site %v", c.name, id)
	}
	return s, nil
}

// Fetch pulls an object into the cache (a no-op if already cached). The
// owner registers the client's hold as an application root, keeping the
// object and everything the client can reach from it safe from collection
// while cached.
func (c *Client) Fetch(r ids.Ref) error {
	if _, ok := c.cache[r]; ok {
		return nil
	}
	owner, err := c.site(r.Site)
	if err != nil {
		return err
	}
	fields, err := owner.Fields(r.Obj)
	if err != nil {
		return fmt.Errorf("client %s: fetch %v: %w", c.name, r, err)
	}
	owner.AddAppRoot(r)
	c.cache[r] = fields
	return nil
}

// Cached reports whether the object is in the cache.
func (c *Client) Cached(r ids.Ref) bool {
	_, ok := c.cache[r]
	return ok
}

// Evict drops an object from the cache, releasing the owner's
// application-root hold.
func (c *Client) Evict(r ids.Ref) {
	if _, ok := c.cache[r]; !ok {
		return
	}
	delete(c.cache, r)
	if owner, err := c.site(r.Site); err == nil {
		owner.DropAppRoot(r)
	}
}

// Close evicts everything.
func (c *Client) Close() {
	refs := make([]ids.Ref, 0, len(c.cache))
	for r := range c.cache {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Less(refs[j]) })
	for _, r := range refs {
		c.Evict(r)
	}
}

// Begin starts a transaction.
func (c *Client) Begin() *Tx {
	return &Tx{
		client: c,
		writes: make(map[ids.Ref][]txRef),
		reads:  make(map[ids.Ref]struct{}),
	}
}

// Tx is one transaction: buffered reads and writes over the client cache.
type Tx struct {
	client *Client
	reads  map[ids.Ref]struct{}
	// writes maps an object to its new full field list; entries may
	// reference objects created in this transaction, resolved at commit.
	writes map[ids.Ref][]txRef
	// created lists objects allocated by this transaction, installed at
	// commit.
	created []*NewObject
	done    bool
}

// NewObject is an object allocated inside a transaction; its identity is
// assigned at commit.
type NewObject struct {
	Site   ids.SiteID
	fields []txRef
	ref    ids.Ref // valid after commit
	root   bool
}

// Ref returns the object's reference; it is the zero Ref before commit.
func (n *NewObject) Ref() ids.Ref { return n.ref }

// txRef is either an existing reference or a reference to an object
// created in this transaction.
type txRef struct {
	existing ids.Ref
	created  *NewObject
}

// Read returns an object's fields, fetching it into the cache if needed,
// and records the read in the transaction's read log.
func (t *Tx) Read(r ids.Ref) ([]ids.Ref, error) {
	if t.done {
		return nil, fmt.Errorf("txn: read after commit/abort")
	}
	if err := t.client.Fetch(r); err != nil {
		return nil, err
	}
	t.reads[r] = struct{}{}
	if w, ok := t.writes[r]; ok {
		out := make([]ids.Ref, 0, len(w))
		for _, f := range w {
			if f.created != nil {
				// Unresolved until commit; reads in the same transaction
				// see the zero ref as a placeholder.
				out = append(out, f.created.ref)
				continue
			}
			out = append(out, f.existing)
		}
		return out, nil
	}
	fields := t.client.cache[r]
	out := make([]ids.Ref, len(fields))
	copy(out, fields)
	return out, nil
}

// Write replaces an object's fields in the transaction's write buffer. The
// object must have been read first (the read-write log discipline the
// commit-time barrier check relies on).
func (t *Tx) Write(r ids.Ref, fields []ids.Ref) error {
	args := make([]interface{}, len(fields))
	for i, f := range fields {
		args[i] = f
	}
	return t.WriteMixed(r, args...)
}

// WriteMixed is Write accepting both existing references (ids.Ref) and
// objects created in this transaction (*NewObject), whose identities
// resolve at commit.
func (t *Tx) WriteMixed(r ids.Ref, fields ...interface{}) error {
	if t.done {
		return fmt.Errorf("txn: write after commit/abort")
	}
	if _, read := t.reads[r]; !read {
		return fmt.Errorf("txn: write to %v without reading it first", r)
	}
	buf := make([]txRef, 0, len(fields))
	for _, f := range fields {
		switch v := f.(type) {
		case ids.Ref:
			buf = append(buf, txRef{existing: v})
		case *NewObject:
			buf = append(buf, txRef{created: v})
		default:
			return fmt.Errorf("txn: write: bad field type %T", f)
		}
	}
	t.writes[r] = buf
	return nil
}

// Create allocates a new object on a site with the given field values;
// fields may include other NewObjects from this transaction.
func (t *Tx) Create(onSite ids.SiteID, fields ...interface{}) (*NewObject, error) {
	if t.done {
		return nil, fmt.Errorf("txn: create after commit/abort")
	}
	n := &NewObject{Site: onSite}
	for _, f := range fields {
		switch v := f.(type) {
		case ids.Ref:
			n.fields = append(n.fields, txRef{existing: v})
		case *NewObject:
			n.fields = append(n.fields, txRef{created: v})
		default:
			return nil, fmt.Errorf("txn: create: bad field type %T", f)
		}
	}
	t.created = append(t.created, n)
	return n, nil
}

// CreateRoot is Create for a new persistent root (e.g. a directory).
func (t *Tx) CreateRoot(onSite ids.SiteID, fields ...interface{}) (*NewObject, error) {
	n, err := t.Create(onSite, fields...)
	if err != nil {
		return nil, err
	}
	n.root = true
	return n, nil
}

// Abort discards the transaction's buffers (the cache and its holds stay).
func (t *Tx) Abort() {
	t.done = true
	t.writes = nil
	t.created = nil
}

// Commit installs the transaction at the owning sites:
//
//  1. created objects are allocated at their sites;
//  2. every written object gets its new field list, with each reference
//     that is new at its destination site passed through the reference-
//     transfer protocol first — this is exactly "checking the
//     transaction's read-write log at commit time": the transfer barrier
//     fires at each destination for each reference stored there, and the
//     insert protocol registers new inter-site references.
//
// Commit is not atomic across sites (neither is Thor's within the GC
// model); partial failure simply leaves some writes unapplied, which the
// collector tolerates like any mutation ordering.
func (t *Tx) Commit() error {
	if t.done {
		return fmt.Errorf("txn: already finished")
	}
	t.done = true

	// 1. Allocate created objects (two passes so mutual references among
	// created objects resolve).
	for _, n := range t.created {
		owner, err := t.client.site(n.Site)
		if err != nil {
			return err
		}
		if n.root {
			n.ref = owner.NewRootObject()
		} else {
			n.ref = owner.NewObject()
		}
		// Hold it like a cached object until the write phase stores it
		// somewhere (or the client evicts it).
		owner.AddAppRoot(n.ref)
		t.client.cache[n.ref] = nil
	}
	for _, n := range t.created {
		fields := make([]ids.Ref, 0, len(n.fields))
		for _, f := range n.fields {
			r := f.existing
			if f.created != nil {
				r = f.created.ref
			}
			fields = append(fields, r)
		}
		if err := t.storeFields(n.ref, nil, fields); err != nil {
			return err
		}
		t.client.cache[n.ref] = fields
	}

	// 2. Apply buffered writes in deterministic order, resolving
	// references to objects created above.
	targets := make([]ids.Ref, 0, len(t.writes))
	for r := range t.writes {
		targets = append(targets, r)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Less(targets[j]) })
	for _, r := range targets {
		newFields := make([]ids.Ref, 0, len(t.writes[r]))
		for _, f := range t.writes[r] {
			resolved := f.existing
			if f.created != nil {
				if f.created.ref.IsZero() {
					return fmt.Errorf("txn: write to %v references an object from another uncommitted transaction", r)
				}
				resolved = f.created.ref
			}
			newFields = append(newFields, resolved)
		}
		oldFields := t.client.cache[r]
		if err := t.storeFields(r, oldFields, newFields); err != nil {
			return err
		}
		t.client.cache[r] = newFields
	}
	return nil
}

// storeFields makes object obj's fields equal to newFields, transferring
// references to obj's site as needed and applying removals.
func (t *Tx) storeFields(obj ids.Ref, oldFields, newFields []ids.Ref) error {
	owner, err := t.client.site(obj.Site)
	if err != nil {
		return err
	}
	// Count-based diff so duplicates behave.
	oldCount := make(map[ids.Ref]int, len(oldFields))
	for _, f := range oldFields {
		oldCount[f]++
	}
	for _, f := range newFields {
		if oldCount[f] > 0 {
			oldCount[f]--
			continue
		}
		if err := t.addRef(owner, obj, f); err != nil {
			return err
		}
	}
	for f, n := range oldCount {
		for i := 0; i < n; i++ {
			if err := owner.RemoveReference(obj.Obj, f); err != nil {
				return err
			}
		}
	}
	return nil
}

// addRef stores one reference into obj at its owner, running the transfer
// protocol when the reference is remote to the owner and not yet known
// there. The client must hold the reference (cache) or it must be local to
// the owner.
func (t *Tx) addRef(owner *site.Site, obj, target ids.Ref) error {
	if target.Site == obj.Site {
		return owner.AddReference(obj.Obj, target)
	}
	// Try directly: the owner may already hold an outref.
	if err := owner.AddReference(obj.Obj, target); err == nil {
		return nil
	}
	// The reference must travel: its owner sends it to obj's site (the
	// client holds it, so it is pinned alive throughout). This fires the
	// transfer barrier at the destination and the insert protocol.
	src, err := t.client.site(target.Site)
	if err != nil {
		return err
	}
	if !t.client.Cached(target) {
		return fmt.Errorf("txn: storing %v the client does not hold", target)
	}
	if err := src.SendRef(obj.Site, target); err != nil {
		return err
	}
	if t.client.settle != nil {
		t.client.settle()
	}
	// Retry through the site API until the outref exists.
	if err := owner.AddReference(obj.Obj, target); err != nil {
		return &ErrTransferPending{Obj: obj, Target: target}
	}
	owner.DropAppRoot(target)
	return nil
}

// ErrTransferPending reports that a committed write needs a reference
// transfer that has not been delivered yet; the caller should settle the
// network and call Resolve.
type ErrTransferPending struct {
	Obj    ids.Ref
	Target ids.Ref
}

// Error implements error.
func (e *ErrTransferPending) Error() string {
	return fmt.Sprintf("txn: transfer of %v to %v pending delivery", e.Target, e.Obj.Site)
}

// Resolve completes a pending write after the network has delivered the
// transfer.
func (e *ErrTransferPending) Resolve(c *Client) error {
	owner, err := c.site(e.Obj.Site)
	if err != nil {
		return err
	}
	if err := owner.AddReference(e.Obj.Obj, e.Target); err != nil {
		return err
	}
	owner.DropAppRoot(e.Target)
	return nil
}

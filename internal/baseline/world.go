// Package baseline implements the comparator algorithms from the paper's
// related-work section, so the experiment harness can reproduce the
// comparative claims: message complexity, locality, and behaviour with a
// slow or crashed site.
//
//   - LocalOnly — plain local tracing with inter-site reference listing
//     (Section 2): collects acyclic garbage, never collects cycles.
//   - Migration — the authors' earlier scheme [ML95]: suspects found by
//     the distance heuristic are migrated until a garbage cycle converges
//     on one site and dies to a local trace. Costs object moves and
//     reference patching.
//   - Hughes — global timestamp propagation [Hug85]: collects everything,
//     but a single slow site holds down the global threshold and stalls
//     collection everywhere (no locality).
//   - GroupTrace — group tracing [LQP92, MKI+95, RJ96]: a mark phase over
//     a group of sites chosen around the suspects; collects cycles inside
//     the group, at the cost of involving every group member.
//
// The collectors run on World, a deliberately simple multi-site object
// model built from the same workload.Spec the real cluster consumes, with
// message and byte accounting. The model is omniscient where the paper's
// underlying bookkeeping protocols (insert/update messages) are not the
// object of comparison, but every algorithmic cost — trace messages,
// migrations, patches, timestamp and threshold traffic — is charged
// explicitly.
package baseline

import (
	"fmt"
	"sort"

	"backtrace/internal/ids"
	"backtrace/internal/workload"
)

// Object is one object in the baseline world.
type Object struct {
	Ref    ids.Ref
	Fields []ids.Ref
	Size   int
	Root   bool
}

// World is a multi-site object store for baseline collectors.
type World struct {
	Sites   []ids.SiteID
	Objects map[ids.Ref]*Object
	nextObj map[ids.SiteID]ids.ObjID

	// Messages and Bytes accumulate algorithm cost.
	Messages int64
	Bytes    int64
	// involved records every site an algorithm touched (locality metric).
	involved map[ids.SiteID]struct{}
}

// DefaultObjectSize is the nominal payload size used for byte accounting.
const DefaultObjectSize = 64

// FromSpec instantiates a world from a workload spec and returns the world
// plus the refs of the spec's objects (indexed like spec.Objects).
func FromSpec(spec workload.Spec) (*World, []ids.Ref, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	w := &World{
		Objects:  make(map[ids.Ref]*Object, len(spec.Objects)),
		nextObj:  make(map[ids.SiteID]ids.ObjID, spec.Sites),
		involved: make(map[ids.SiteID]struct{}),
	}
	for i := 1; i <= spec.Sites; i++ {
		w.Sites = append(w.Sites, ids.SiteID(i))
	}
	refsOut := make([]ids.Ref, len(spec.Objects))
	for i, o := range spec.Objects {
		refsOut[i] = w.alloc(o.Site, o.Root)
	}
	for _, e := range spec.Edges {
		from := w.Objects[refsOut[e[0]]]
		from.Fields = append(from.Fields, refsOut[e[1]])
	}
	return w, refsOut, nil
}

func (w *World) alloc(site ids.SiteID, root bool) ids.Ref {
	w.nextObj[site]++
	r := ids.MakeRef(site, w.nextObj[site])
	w.Objects[r] = &Object{Ref: r, Size: DefaultObjectSize, Root: root}
	return r
}

// message charges one message of the given payload size between two sites
// and records both as involved.
func (w *World) message(from, to ids.SiteID, size int) {
	w.Messages++
	w.Bytes += int64(size)
	w.involved[from] = struct{}{}
	w.involved[to] = struct{}{}
}

// touch records local work at a site (it counts as involved).
func (w *World) touch(site ids.SiteID) {
	w.involved[site] = struct{}{}
}

// SitesInvolved returns how many distinct sites the algorithm touched.
func (w *World) SitesInvolved() int { return len(w.involved) }

// ResetAccounting zeroes the cost counters (used between the build phase
// and the measured phase of an experiment).
func (w *World) ResetAccounting() {
	w.Messages = 0
	w.Bytes = 0
	w.involved = make(map[ids.SiteID]struct{})
}

// TotalObjects returns the number of objects in the world.
func (w *World) TotalObjects() int { return len(w.Objects) }

// objectsAt returns the refs of a site's objects in ascending order.
func (w *World) objectsAt(site ids.SiteID) []ids.Ref {
	var out []ids.Ref
	for r := range w.Objects {
		if r.Site == site {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// GlobalLive computes the set of objects reachable from any root.
func (w *World) GlobalLive() map[ids.Ref]struct{} {
	live := make(map[ids.Ref]struct{})
	var stack []ids.Ref
	push := func(r ids.Ref) {
		if _, ok := w.Objects[r]; !ok {
			return
		}
		if _, seen := live[r]; seen {
			return
		}
		live[r] = struct{}{}
		stack = append(stack, r)
	}
	for r, o := range w.Objects {
		if o.Root {
			push(r)
		}
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range w.Objects[r].Fields {
			push(f)
		}
	}
	return live
}

// GarbageCount returns the number of unreachable objects still present.
func (w *World) GarbageCount() int {
	return len(w.Objects) - len(w.GlobalLive())
}

// delete removes an object.
func (w *World) delete(r ids.Ref) {
	delete(w.Objects, r)
}

// inboundRemote returns, for each object, the set of OTHER sites holding
// references to it — the source lists of the reference-listing substrate,
// derived omnisciently (the insert/update protocol itself is not under
// comparison).
func (w *World) inboundRemote() map[ids.Ref]map[ids.SiteID]struct{} {
	in := make(map[ids.Ref]map[ids.SiteID]struct{})
	for r, o := range w.Objects {
		for _, f := range o.Fields {
			if f.Site == r.Site {
				continue
			}
			if _, ok := w.Objects[f]; !ok {
				continue
			}
			set := in[f]
			if set == nil {
				set = make(map[ids.SiteID]struct{})
				in[f] = set
			}
			set[r.Site] = struct{}{}
		}
	}
	return in
}

// Stats summarizes a collector run.
type Stats struct {
	Name          string
	Rounds        int
	Collected     int
	Messages      int64
	Bytes         int64
	SitesInvolved int
}

// String renders one result row.
func (s Stats) String() string {
	return fmt.Sprintf("%-12s rounds=%-4d collected=%-5d msgs=%-7d bytes=%-8d sites=%d",
		s.Name, s.Rounds, s.Collected, s.Messages, s.Bytes, s.SitesInvolved)
}

// Collector is one garbage-collection algorithm running over a World.
type Collector interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Step runs one collection round and returns the number of objects
	// reclaimed in it.
	Step() int
}

// Run drives a collector until the world has no garbage or maxRounds
// elapse, and returns the stats.
func Run(w *World, c Collector, maxRounds int) Stats {
	st := Stats{Name: c.Name()}
	before := w.TotalObjects()
	for st.Rounds < maxRounds && w.GarbageCount() > 0 {
		c.Step()
		st.Rounds++
	}
	st.Collected = before - w.TotalObjects()
	st.Messages = w.Messages
	st.Bytes = w.Bytes
	st.SitesInvolved = w.SitesInvolved()
	return st
}

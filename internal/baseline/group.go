package baseline

import (
	"sort"

	"backtrace/internal/ids"
)

// GroupTrace implements group tracing [LQP92, MKI+95, RJ96] as a
// comparator: when the distance heuristic produces suspects, the sites
// holding objects forward-reachable from any suspect form a group, and a
// group-wide mark phase — treating references from outside the group as
// roots — collects every cycle contained in the group.
//
// The properties the comparison exposes: the group can be much larger than
// the cycle (a garbage cycle may point to chains of live objects, dragging
// their sites in — no locality), and the group-wide trace charges messages
// on every inter-site reference inside the group, not just the cycle's.
type GroupTrace struct {
	w  *World
	gc *localGC
	// threshold is the distance-heuristic suspicion threshold.
	threshold int
	// LastGroupSize records the size of the most recent group formed.
	LastGroupSize int
	// GroupTraces counts group-wide traces performed.
	GroupTraces int64
}

// NewGroupTrace builds the collector.
func NewGroupTrace(w *World, threshold int) *GroupTrace {
	return &GroupTrace{w: w, gc: newLocalGC(w), threshold: threshold}
}

// Name implements Collector.
func (g *GroupTrace) Name() string { return "group-trace" }

// Step implements Collector: one local-tracing round; if suspects exist,
// form a group around them and run one group-wide mark-sweep.
func (g *GroupTrace) Step() int {
	collected := g.gc.round()

	var suspects []ids.Ref
	for r := range g.w.Objects {
		if len(g.gc.dist[r]) > 0 && g.gc.inrefDistance(r) > g.threshold {
			suspects = append(suspects, r)
		}
	}
	if len(suspects) == 0 {
		return collected
	}
	sort.Slice(suspects, func(i, j int) bool { return suspects[i].Less(suspects[j]) })
	collected += g.groupCollect(suspects)
	return collected
}

// StepSimultaneous models the drawback the paper cites for this family:
// "multiple sites on the same cycle may initiate separate groups
// simultaneously, which would fail to collect the cycle." Each suspect
// site initiates its own group at the same instant; a site can belong to
// only one group, so each initiator's group is its closure MINUS the other
// initiators' home sites. Every group then sees the rest of the cycle as
// external references — roots — and collects nothing.
//
// Contrast Section 4.7: simultaneous back traces on one cycle are merely
// redundant, never incorrect, because they share no state.
func (g *GroupTrace) StepSimultaneous() int {
	collected := g.gc.round()

	// Suspects grouped by initiating site.
	bySite := make(map[ids.SiteID][]ids.Ref)
	for r := range g.w.Objects {
		if len(g.gc.dist[r]) > 0 && g.gc.inrefDistance(r) > g.threshold {
			bySite[r.Site] = append(bySite[r.Site], r)
		}
	}
	if len(bySite) == 0 {
		return collected
	}
	initiators := make(map[ids.SiteID]struct{}, len(bySite))
	for s := range bySite {
		initiators[s] = struct{}{}
	}
	sites := make([]ids.SiteID, 0, len(bySite))
	for s := range bySite {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, s := range sites {
		suspects := bySite[s]
		sort.Slice(suspects, func(i, j int) bool { return suspects[i].Less(suspects[j]) })
		exclude := make(map[ids.SiteID]struct{}, len(initiators)-1)
		for other := range initiators {
			if other != s {
				exclude[other] = struct{}{}
			}
		}
		collected += g.groupCollectExcluding(suspects, exclude)
	}
	return collected
}

// groupCollect forms the group reachable from the suspects and runs a
// group-wide trace with external references as roots.
func (g *GroupTrace) groupCollect(suspects []ids.Ref) int {
	return g.groupCollectExcluding(suspects, nil)
}

// groupCollectExcluding is groupCollect with some sites barred from
// joining the group (they belong to a concurrently formed group).
func (g *GroupTrace) groupCollectExcluding(suspects []ids.Ref, exclude map[ids.SiteID]struct{}) int {
	w := g.w

	// Group membership: every site holding an object forward-reachable
	// from a suspect (the group "consists of sites reached transitively
	// from some objects suspected to be cyclic garbage").
	groupSites := make(map[ids.SiteID]struct{})
	reach := make(map[ids.Ref]struct{})
	var stack []ids.Ref
	push := func(r ids.Ref) {
		if _, ok := w.Objects[r]; !ok {
			return
		}
		if _, barred := exclude[r.Site]; barred {
			return // that site already joined a concurrent group
		}
		if _, ok := reach[r]; ok {
			return
		}
		reach[r] = struct{}{}
		groupSites[r.Site] = struct{}{}
		stack = append(stack, r)
	}
	for _, s := range suspects {
		push(s)
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range w.Objects[r].Fields {
			push(f)
		}
	}
	g.LastGroupSize = len(groupSites)
	g.GroupTraces++

	// Coordination: form and disband the group (round trip per member).
	coord := ids.NoSite
	for s := range groupSites {
		if coord == ids.NoSite || s < coord {
			coord = s
		}
	}
	for s := range groupSites {
		w.message(coord, s, ctrlMsgSize)
		w.message(s, coord, ctrlMsgSize)
	}

	inGroup := func(s ids.SiteID) bool {
		_, ok := groupSites[s]
		return ok
	}

	// Roots of the group trace: persistent roots on group sites, plus
	// group objects referenced from outside the group.
	inbound := w.inboundRemote()
	marked := make(map[ids.Ref]struct{})
	var mstack []ids.Ref
	mark := func(r ids.Ref) {
		if _, ok := w.Objects[r]; !ok {
			return
		}
		if !inGroup(r.Site) {
			return
		}
		if _, ok := marked[r]; ok {
			return
		}
		marked[r] = struct{}{}
		mstack = append(mstack, r)
	}
	for r, o := range w.Objects {
		if !inGroup(r.Site) {
			continue
		}
		if o.Root {
			mark(r)
			continue
		}
		for s := range inbound[r] {
			if !inGroup(s) {
				mark(r)
				break
			}
		}
	}
	for len(mstack) > 0 {
		r := mstack[len(mstack)-1]
		mstack = mstack[:len(mstack)-1]
		for _, f := range w.Objects[r].Fields {
			if f.Site != r.Site && inGroup(f.Site) {
				// A marking message crosses this inter-site reference
				// and is acknowledged.
				w.message(r.Site, f.Site, ctrlMsgSize)
				w.message(f.Site, r.Site, ctrlMsgSize)
			}
			mark(f)
		}
	}

	// Sweep unmarked group objects.
	collected := 0
	var toDelete []ids.Ref
	for r := range w.Objects {
		if !inGroup(r.Site) {
			continue
		}
		if _, ok := marked[r]; !ok {
			toDelete = append(toDelete, r)
		}
	}
	for _, r := range toDelete {
		w.delete(r)
		delete(g.gc.dist, r)
		collected++
	}
	return collected
}

var _ Collector = (*GroupTrace)(nil)

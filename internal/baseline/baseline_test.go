package baseline

import (
	"testing"

	"backtrace/internal/ids"
	"backtrace/internal/workload"
)

func mustWorld(t *testing.T, spec workload.Spec) (*World, []ids.Ref) {
	t.Helper()
	w, refs, err := FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return w, refs
}

func TestFromSpecAudit(t *testing.T) {
	w, refs := mustWorld(t, workload.RootedRing(3))
	if w.TotalObjects() != 4 {
		t.Fatalf("objects = %d, want 4", w.TotalObjects())
	}
	if g := w.GarbageCount(); g != 0 {
		t.Fatalf("rooted ring garbage = %d, want 0", g)
	}
	if len(refs) != 4 {
		t.Fatalf("refs = %d", len(refs))
	}

	w2, _ := mustWorld(t, workload.Ring(3))
	if g := w2.GarbageCount(); g != 3 {
		t.Fatalf("ring garbage = %d, want 3", g)
	}
}

func TestLocalOnlyCollectsAcyclicGarbage(t *testing.T) {
	w, _ := mustWorld(t, workload.Chain(4, false))
	st := Run(w, NewLocalOnly(w), 10)
	if st.Collected != 4 {
		t.Fatalf("local-only collected %d of an acyclic chain, want 4", st.Collected)
	}

	// Live cross-site references cost update messages every round.
	w2, _ := mustWorld(t, workload.RootedRing(3))
	lo := NewLocalOnly(w2)
	lo.Step()
	if w2.Messages == 0 {
		t.Fatal("no update messages charged for live inter-site references")
	}
}

func TestLocalOnlyNeverCollectsCycles(t *testing.T) {
	w, _ := mustWorld(t, workload.Ring(3))
	lo := NewLocalOnly(w)
	for i := 0; i < 30; i++ {
		lo.Step()
	}
	if g := w.GarbageCount(); g != 3 {
		t.Fatalf("local-only changed cycle garbage: %d, want 3 (cycles are uncollectable)", g)
	}
}

func TestLocalOnlyPreservesLiveObjects(t *testing.T) {
	w, refs := mustWorld(t, workload.RootedRing(4))
	lo := NewLocalOnly(w)
	for i := 0; i < 10; i++ {
		lo.Step()
	}
	for _, r := range refs {
		if _, ok := w.Objects[r]; !ok {
			t.Fatalf("live object %v collected by local-only", r)
		}
	}
}

func TestMigrationCollectsCycle(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		w, _ := mustWorld(t, workload.Ring(n))
		m := NewMigration(w, 3)
		st := Run(w, m, 40)
		if st.Collected != n {
			t.Fatalf("n=%d: migration collected %d, want %d", n, st.Collected, n)
		}
		if m.Migrations == 0 {
			t.Fatalf("n=%d: no migrations performed", n)
		}
		if m.BytesMoved == 0 {
			t.Fatalf("n=%d: no bytes moved", n)
		}
		if st.Bytes < m.BytesMoved {
			t.Fatalf("n=%d: byte accounting inconsistent: %d < %d", n, st.Bytes, m.BytesMoved)
		}
	}
}

func TestMigrationPreservesLiveObjects(t *testing.T) {
	// Live suspects may be migrated (wasted work) but never collected.
	w, _ := mustWorld(t, workload.RootedRing(5))
	m := NewMigration(w, 2)
	for i := 0; i < 20; i++ {
		m.Step()
	}
	if g := w.GarbageCount(); g != 0 {
		t.Fatalf("audit disagrees: %d", g)
	}
	// All 6 objects (ring + root) must still exist, possibly migrated.
	if w.TotalObjects() != 6 {
		t.Fatalf("objects = %d, want 6 (live objects lost or duplicated)", w.TotalObjects())
	}
}

func TestHughesCollectsEverything(t *testing.T) {
	spec := workload.Ring(3)
	w, _ := mustWorld(t, spec)
	h := NewHughes(w)
	st := Run(w, h, 10)
	if st.Collected != 3 {
		t.Fatalf("hughes collected %d, want 3", st.Collected)
	}
	if st.SitesInvolved != 3 {
		t.Fatalf("hughes involved %d sites, want all 3 (global algorithm)", st.SitesInvolved)
	}
}

func TestHughesPreservesLiveObjects(t *testing.T) {
	w, refs := mustWorld(t, workload.RootedRing(4))
	h := NewHughes(w)
	for i := 0; i < 10; i++ {
		h.Step()
	}
	for _, r := range refs {
		if _, ok := w.Objects[r]; !ok {
			t.Fatalf("live object %v collected by hughes", r)
		}
	}
}

func TestHughesSlowSiteStallsCollection(t *testing.T) {
	// The global threshold is a minimum over all sites: a slow site that
	// traces every 6th round stalls collection EVERYWHERE — even of
	// garbage it does not contain (no locality). Compare the localized
	// algorithms, which are unaffected.
	spec := workload.Ring(3) // garbage on sites 1-3
	spec.Sites = 4           // site 4 exists but holds nothing
	w, _ := mustWorld(t, spec)
	h := NewHughes(w)
	h.SlowSite = 4
	h.SlowEvery = 6

	for i := 1; i <= 5; i++ {
		h.Step()
		if w.GarbageCount() != 3 {
			t.Fatalf("round %d: hughes collected despite stalled threshold", i)
		}
	}
	h.Step() // round 6: the slow site finally traces
	h.Step() // threshold advances past the garbage timestamps
	if g := w.GarbageCount(); g != 0 {
		t.Fatalf("garbage = %d after slow site caught up, want 0", g)
	}
}

func TestGroupTraceCollectsCycle(t *testing.T) {
	w, _ := mustWorld(t, workload.Ring(4))
	g := NewGroupTrace(w, 3)
	st := Run(w, g, 20)
	if st.Collected != 4 {
		t.Fatalf("group-trace collected %d, want 4", st.Collected)
	}
	if g.GroupTraces == 0 {
		t.Fatal("no group traces ran")
	}
	if g.LastGroupSize == 0 || g.LastGroupSize > 4 {
		t.Fatalf("group size = %d", g.LastGroupSize)
	}
}

func TestGroupTraceDragsInLiveSites(t *testing.T) {
	// A garbage cycle on sites 1-2 pointing at a live chain that extends
	// to sites 3 and 4: the group must include the live chain's sites —
	// the locality drawback the paper cites.
	spec := workload.Ring(2)
	spec.Sites = 4
	// Live chain: root on 3 -> chain object on 4.
	rootIdx := len(spec.Objects)
	spec.Objects = append(spec.Objects, workload.ObjSpec{Site: 3, Root: true})
	chainIdx := len(spec.Objects)
	spec.Objects = append(spec.Objects, workload.ObjSpec{Site: 4})
	spec.Edges = append(spec.Edges, [2]int{rootIdx, chainIdx})
	// The cycle points at the live chain object.
	spec.Edges = append(spec.Edges, [2]int{0, chainIdx})

	w, refs := mustWorld(t, spec)
	g := NewGroupTrace(w, 3)
	st := Run(w, g, 20)
	if st.Collected != 2 {
		t.Fatalf("collected %d, want the 2 cycle members", st.Collected)
	}
	if g.LastGroupSize < 3 {
		t.Fatalf("group size = %d, want >= 3 (live chain dragged in)", g.LastGroupSize)
	}
	for _, r := range refs[2:] {
		if _, ok := w.Objects[r]; !ok {
			t.Fatalf("live object %v collected by group trace", r)
		}
	}
}

func TestGroupTraceSimultaneousInitiationFails(t *testing.T) {
	// The paper's cited drawback: when every cycle site initiates its own
	// group at once, the groups partition the cycle and each sees the
	// others' references as roots — the cycle is never collected.
	w, _ := mustWorld(t, workload.Ring(3))
	g := NewGroupTrace(w, 3)
	// Warm up distances so EVERY site holds suspects — the precondition
	// for simultaneous initiation (before that, a lone early initiator
	// forms an uncontended group and succeeds, which is also reality).
	for i := 0; i < 6; i++ {
		g.gc.round()
	}
	for i := 0; i < 20; i++ {
		g.StepSimultaneous()
	}
	if got := w.GarbageCount(); got != 3 {
		t.Fatalf("simultaneous groups collected the cycle (garbage=%d); the modeled drawback is gone", got)
	}

	// The coordinated formation collects it fine — coordination is
	// load-bearing for group tracing (back tracing needs none, §4.7).
	w2, _ := mustWorld(t, workload.Ring(3))
	g2 := NewGroupTrace(w2, 3)
	st := Run(w2, g2, 20)
	if st.Collected != 3 {
		t.Fatalf("coordinated group trace collected %d, want 3", st.Collected)
	}
}

func TestGroupTraceSimultaneousIsStillSafe(t *testing.T) {
	// Failing to collect is the drawback; collecting a LIVE object would
	// be a bug. Partitioned groups must stay safe.
	w, refs := mustWorld(t, workload.RootedRing(4))
	g := NewGroupTrace(w, 1)
	for i := 0; i < 15; i++ {
		g.StepSimultaneous()
	}
	for _, r := range refs {
		if _, ok := w.Objects[r]; !ok {
			t.Fatalf("live object %v collected by simultaneous groups", r)
		}
	}
}

func TestGroupTracePreservesLiveCycle(t *testing.T) {
	w, refs := mustWorld(t, workload.RootedRing(3))
	g := NewGroupTrace(w, 1) // aggressive threshold: live suspects likely
	for i := 0; i < 15; i++ {
		g.Step()
	}
	for _, r := range refs {
		if _, ok := w.Objects[r]; !ok {
			t.Fatalf("live object %v collected", r)
		}
	}
}

func TestWeightedRCCollectsAcyclicGarbage(t *testing.T) {
	w, _ := mustWorld(t, workload.Chain(4, false))
	c := NewWeightedRC(w)
	st := Run(w, c, 12)
	if st.Collected != 4 {
		t.Fatalf("wrc collected %d of an acyclic chain, want 4", st.Collected)
	}
	if c.Decrements == 0 {
		t.Fatal("no weight-return messages charged")
	}
}

func TestWeightedRCNeverCollectsCycles(t *testing.T) {
	w, _ := mustWorld(t, workload.Ring(3))
	c := NewWeightedRC(w)
	for i := 0; i < 30; i++ {
		c.Step()
	}
	if g := w.GarbageCount(); g != 3 {
		t.Fatalf("wrc changed cycle garbage: %d, want 3", g)
	}
}

func TestWeightedRCPreservesLiveAndIdlesCheaply(t *testing.T) {
	w, refs := mustWorld(t, workload.RootedRing(4))
	c := NewWeightedRC(w)
	for i := 0; i < 5; i++ {
		c.Step()
	}
	for _, r := range refs {
		if _, ok := w.Objects[r]; !ok {
			t.Fatalf("live object %v collected by wrc", r)
		}
	}
	// Steady state with no deletions: zero messages (the property that
	// makes WRC attractive despite its other limitations).
	before := w.Messages
	for i := 0; i < 5; i++ {
		c.Step()
	}
	if w.Messages != before {
		t.Fatalf("wrc sent %d messages while idle, want 0", w.Messages-before)
	}
	// Contrast: reference listing pays updates every round.
	w2, _ := mustWorld(t, workload.RootedRing(4))
	lo := NewLocalOnly(w2)
	lo.Step()
	base := w2.Messages
	lo.Step()
	if w2.Messages == base {
		t.Fatal("reference listing sent no per-round updates (contrast broken)")
	}
}

func TestWeightedRCDeletionSendsDecrements(t *testing.T) {
	w, refs := mustWorld(t, workload.Chain(3, true))
	c := NewWeightedRC(w)
	c.Step() // learn the holds
	// Unroot the chain: the orphaned copies unwind link by link, each
	// returning its weight to the owner.
	root := w.Objects[refs[3]]
	root.Fields = nil
	st := Run(w, c, 12)
	if st.Collected != 3 {
		t.Fatalf("collected %d after unrooting, want 3", st.Collected)
	}
	if c.Decrements == 0 {
		t.Fatal("no decrements after deletion")
	}
}

func TestRunStatsAccounting(t *testing.T) {
	w, _ := mustWorld(t, workload.Ring(3))
	w.ResetAccounting()
	st := Run(w, NewMigration(w, 3), 40)
	if st.Name != "migration" || st.Rounds == 0 || st.Collected != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Messages == 0 || st.Bytes == 0 || st.SitesInvolved == 0 {
		t.Fatalf("cost accounting empty: %+v", st)
	}
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
}

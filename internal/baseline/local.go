package baseline

import (
	"sort"

	"backtrace/internal/ids"
	"backtrace/internal/refs"
)

// ctrlMsgSize is the nominal payload of a control message (updates,
// patches, timestamps, coordination) for byte accounting.
const ctrlMsgSize = 16

// localGC is the shared substrate of the baseline collectors: per-site
// local tracing with inter-site reference listing and the distance
// heuristic (Sections 2–3 of the paper), over a World. Source lists are
// derived omnisciently; distance estimates persist across rounds and are
// exchanged in per-site-pair update messages, which are charged.
type localGC struct {
	w *World
	// dist holds the inref distance estimates: target object -> source
	// site -> estimated distance.
	dist map[ids.Ref]map[ids.SiteID]int
}

func newLocalGC(w *World) *localGC {
	return &localGC{w: w, dist: make(map[ids.Ref]map[ids.SiteID]int)}
}

// inrefDistance returns the current distance estimate of an object's inref
// (minimum over sources), or 0 if the object has no remote holders.
func (g *localGC) inrefDistance(r ids.Ref) int {
	srcs := g.dist[r]
	if len(srcs) == 0 {
		return 0
	}
	d := refs.DistInfinity
	for _, v := range srcs {
		if v < d {
			d = v
		}
	}
	return d
}

// round performs one local trace at every site, including distance
// propagation and update messages, and returns the objects collected.
func (g *localGC) round() int {
	collected := 0
	for _, site := range g.w.Sites {
		collected += g.traceSite(site)
	}
	return collected
}

// traceSite performs one local trace at a site: mark from persistent roots
// (distance 0) and inrefs (their estimated distances) in ascending
// distance order, propagate distances to outbound references, send update
// messages, and sweep unmarked local objects.
func (g *localGC) traceSite(site ids.SiteID) int {
	w := g.w
	w.touch(site)
	inbound := w.inboundRemote()

	// Refresh source lists: adopt new sources at distance 1, drop stale.
	for _, r := range w.objectsAt(site) {
		srcs := inbound[r]
		cur := g.dist[r]
		if len(srcs) == 0 {
			delete(g.dist, r)
			continue
		}
		if cur == nil {
			cur = make(map[ids.SiteID]int, len(srcs))
			g.dist[r] = cur
		}
		for s := range srcs {
			if _, ok := cur[s]; !ok {
				cur[s] = 1
			}
		}
		for s := range cur {
			if _, ok := srcs[s]; !ok {
				delete(cur, s)
			}
		}
	}

	// Roots in ascending distance order.
	type root struct {
		r ids.Ref
		d int
	}
	var roots []root
	for _, r := range w.objectsAt(site) {
		o := w.Objects[r]
		if o.Root {
			roots = append(roots, root{r: r, d: 0})
			continue
		}
		if len(g.dist[r]) > 0 {
			roots = append(roots, root{r: r, d: g.inrefDistance(r)})
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].d != roots[j].d {
			return roots[i].d < roots[j].d
		}
		return roots[i].r.Less(roots[j].r)
	})

	marked := make(map[ids.Ref]struct{})
	outDist := make(map[ids.Ref]int) // remote target -> propagated distance
	var stack []ids.Ref
	for _, rt := range roots {
		if _, ok := marked[rt.r]; ok {
			continue
		}
		marked[rt.r] = struct{}{}
		stack = append(stack[:0], rt.r)
		for len(stack) > 0 {
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, f := range w.Objects[r].Fields {
				if _, ok := w.Objects[f]; !ok {
					continue
				}
				if f.Site != site {
					if _, ok := outDist[f]; !ok {
						outDist[f] = refs.AddDist(rt.d, 1)
					}
					continue
				}
				if _, ok := marked[f]; !ok {
					marked[f] = struct{}{}
					stack = append(stack, f)
				}
			}
		}
	}

	// Update messages: one per target site holding any of our outbound
	// references; apply distances synchronously.
	targets := make(map[ids.SiteID]struct{})
	for f, d := range outDist {
		targets[f.Site] = struct{}{}
		cur := g.dist[f]
		if cur == nil {
			cur = make(map[ids.SiteID]int)
			g.dist[f] = cur
		}
		cur[site] = d
	}
	for t := range targets {
		w.message(site, t, ctrlMsgSize)
	}

	// Sweep.
	collectedHere := 0
	for _, r := range w.objectsAt(site) {
		if _, ok := marked[r]; !ok {
			w.delete(r)
			delete(g.dist, r)
			collectedHere++
		}
	}
	return collectedHere
}

// LocalOnly is the paper's Section 2 substrate by itself: local tracing
// plus inter-site reference listing. It collects all acyclic garbage but
// can never collect an inter-site cycle — the problem the paper solves.
type LocalOnly struct {
	gc *localGC
}

// NewLocalOnly builds the collector.
func NewLocalOnly(w *World) *LocalOnly {
	return &LocalOnly{gc: newLocalGC(w)}
}

// Name implements Collector.
func (l *LocalOnly) Name() string { return "local-only" }

// Step implements Collector.
func (l *LocalOnly) Step() int { return l.gc.round() }

var _ Collector = (*LocalOnly)(nil)

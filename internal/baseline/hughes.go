package baseline

import (
	"backtrace/internal/ids"
)

// Hughes implements Hughes's distributed timestamp-propagation collector
// [Hug85] as a comparator. Every local trace stamps reachable objects with
// the trace's time; timestamps flow along inter-site references; a global
// threshold — the minimum over all sites of their last completed trace
// time — bounds the timestamps garbage can have, and objects stamped below
// it are collected.
//
// The property the comparison exposes: the threshold is a global minimum,
// so one slow (or crashed) site holds it down and stalls collection at
// EVERY site — Hughes has no locality. Configure SlowSite/SlowEvery to
// demonstrate it.
type Hughes struct {
	w *World
	// ts is each object's current timestamp; objects start at 0.
	ts map[ids.Ref]int
	// tsIn is the timestamp received for an object over inbound
	// inter-site references (max over senders).
	tsIn map[ids.Ref]int
	// lastTrace is each site's last completed trace time.
	lastTrace map[ids.SiteID]int
	round     int

	// SlowSite, if nonzero, only traces every SlowEvery rounds.
	SlowSite  ids.SiteID
	SlowEvery int

	// Collections counts objects reclaimed.
	Collections int64
}

// NewHughes builds the collector.
func NewHughes(w *World) *Hughes {
	h := &Hughes{
		w:         w,
		ts:        make(map[ids.Ref]int, len(w.Objects)),
		tsIn:      make(map[ids.Ref]int),
		lastTrace: make(map[ids.SiteID]int, len(w.Sites)),
	}
	for r := range w.Objects {
		h.ts[r] = 0
	}
	return h
}

// Name implements Collector.
func (h *Hughes) Name() string { return "hughes" }

// Step implements Collector: every (non-slow) site traces and propagates
// timestamps, the global threshold is computed, and everything stamped
// below it is collected.
func (h *Hughes) Step() int {
	h.round++
	for _, site := range h.w.Sites {
		if site == h.SlowSite && h.SlowEvery > 1 && h.round%h.SlowEvery != 0 {
			continue // the slow site skips this round
		}
		h.traceSite(site)
	}

	// Global threshold: minimum last-trace time over ALL sites. Charge
	// the coordination round-trip per site.
	threshold := int(^uint(0) >> 1)
	for _, site := range h.w.Sites {
		if t := h.lastTrace[site]; t < threshold {
			threshold = t
		}
		h.w.message(site, h.w.Sites[0], ctrlMsgSize)
		h.w.message(h.w.Sites[0], site, ctrlMsgSize)
	}

	collected := 0
	for r := range h.w.Objects {
		if h.ts[r] < threshold {
			h.w.delete(r)
			delete(h.ts, r)
			delete(h.tsIn, r)
			collected++
		}
	}
	h.Collections += int64(collected)
	return collected
}

// traceSite propagates timestamps through one site: local roots stamp the
// current time, inbound references stamp their received timestamps, and
// the maxima flow to local objects and out over inter-site references.
func (h *Hughes) traceSite(site ids.SiteID) {
	w := h.w
	w.touch(site)

	// Multi-source max propagation: process sources in descending
	// timestamp order with single marking — the first stamp an object
	// receives is its maximum.
	type src struct {
		r ids.Ref
		t int
	}
	var sources []src
	for _, r := range w.objectsAt(site) {
		o := w.Objects[r]
		if o.Root {
			sources = append(sources, src{r: r, t: h.round})
			continue
		}
		if t, ok := h.tsIn[r]; ok {
			sources = append(sources, src{r: r, t: t})
		}
	}
	// Descending by timestamp.
	for i := 0; i < len(sources); i++ {
		for j := i + 1; j < len(sources); j++ {
			if sources[j].t > sources[i].t ||
				(sources[j].t == sources[i].t && sources[j].r.Less(sources[i].r)) {
				sources[i], sources[j] = sources[j], sources[i]
			}
		}
	}

	stamped := make(map[ids.Ref]struct{})
	outTS := make(map[ids.Ref]int)
	var stack []ids.Ref
	for _, s := range sources {
		if _, ok := stamped[s.r]; ok {
			continue
		}
		stamped[s.r] = struct{}{}
		if s.t > h.ts[s.r] {
			h.ts[s.r] = s.t
		}
		stack = append(stack[:0], s.r)
		for len(stack) > 0 {
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, f := range w.Objects[r].Fields {
				if _, ok := w.Objects[f]; !ok {
					continue
				}
				if f.Site != site {
					if cur, ok := outTS[f]; !ok || s.t > cur {
						outTS[f] = s.t
					}
					continue
				}
				if _, ok := stamped[f]; !ok {
					stamped[f] = struct{}{}
					if s.t > h.ts[f] {
						h.ts[f] = s.t
					}
					stack = append(stack, f)
				}
			}
		}
	}

	// Ship timestamps to target sites (one batched message per site).
	targets := make(map[ids.SiteID]struct{})
	for f, t := range outTS {
		targets[f.Site] = struct{}{}
		if cur, ok := h.tsIn[f]; !ok || t > cur {
			h.tsIn[f] = t
		}
	}
	for t := range targets {
		w.message(site, t, ctrlMsgSize)
	}
	h.lastTrace[site] = h.round
}

var _ Collector = (*Hughes)(nil)

package baseline

import (
	"backtrace/internal/ids"
)

// WeightedRC is local tracing over weighted reference counting [Bev87] —
// one of the alternative inter-site bookkeeping schemes Section 2 lists
// before settling on reference listing. Each inter-site reference carries
// a weight; the owner tracks only the TOTAL weight per object. Copying a
// reference splits the sender's weight (no message to the owner!);
// deleting one returns its weight in a decrement message; total zero means
// no remote holders.
//
// The comparison exposes two properties:
//
//   - steady-state cost: WRC sends messages only when references are
//     deleted, while reference listing pays update messages every round —
//     WRC is cheaper when idle;
//   - but the owner has NO source lists, so a back trace cannot take
//     remote steps on this substrate, and there is no per-source distance
//     to drive the suspicion heuristic: inter-site cycles are permanently
//     uncollectable, and the paper's whole mechanism cannot be layered on
//     top. That asymmetry is why the paper builds on reference listing
//     ("we use inter-site reference listing because it handles site
//     failures and provides better fault-tolerance" — Section 2).
type WeightedRC struct {
	w *World
	// held mirrors the weights omnisciently: for each object, the number
	// of remote reference copies observed last round. A decrease of k
	// costs k weight-return messages (charged from the holding site).
	held map[ids.Ref]map[ids.SiteID]int
	// Decrements counts weight-return messages sent.
	Decrements int64
}

// NewWeightedRC builds the collector.
func NewWeightedRC(w *World) *WeightedRC {
	return &WeightedRC{w: w, held: make(map[ids.Ref]map[ids.SiteID]int)}
}

// Name implements Collector.
func (c *WeightedRC) Name() string { return "local-wrc" }

// Step implements Collector: one local trace per site with positive-weight
// objects as roots, charging weight-return messages for dropped copies.
func (c *WeightedRC) Step() int {
	w := c.w

	// Current remote copy counts per object and holder site.
	current := make(map[ids.Ref]map[ids.SiteID]int)
	for r, o := range w.Objects {
		for _, f := range o.Fields {
			if f.Site == r.Site {
				continue
			}
			if _, ok := w.Objects[f]; !ok {
				continue
			}
			m := current[f]
			if m == nil {
				m = make(map[ids.SiteID]int)
				current[f] = m
			}
			m[r.Site]++
		}
	}

	// Weight returns: every copy that disappeared since last round sends
	// its weight back to the owner.
	for obj, holders := range c.held {
		for site, prev := range holders {
			cur := current[obj][site]
			for k := cur; k < prev; k++ {
				w.message(site, obj.Site, ctrlMsgSize)
				c.Decrements++
			}
		}
	}
	c.held = current

	// Local traces: roots are persistent roots plus objects with positive
	// total weight. No distances exist on this substrate.
	collected := 0
	for _, site := range w.Sites {
		w.touch(site)
		marked := make(map[ids.Ref]struct{})
		var stack []ids.Ref
		push := func(r ids.Ref) {
			if r.Site != site {
				return
			}
			if _, ok := w.Objects[r]; !ok {
				return
			}
			if _, ok := marked[r]; ok {
				return
			}
			marked[r] = struct{}{}
			stack = append(stack, r)
		}
		for _, r := range w.objectsAt(site) {
			if w.Objects[r].Root || len(current[r]) > 0 {
				push(r)
			}
		}
		for len(stack) > 0 {
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, f := range w.Objects[r].Fields {
				push(f)
			}
		}
		for _, r := range w.objectsAt(site) {
			if _, ok := marked[r]; !ok {
				w.delete(r)
				collected++
			}
		}
	}
	return collected
}

var _ Collector = (*WeightedRC)(nil)

package baseline

import (
	"sort"

	"backtrace/internal/ids"
)

// Migration is the authors' earlier scheme [ML95], reimplemented as a
// comparator: suspects found by the distance heuristic are migrated toward
// a site that references them (always a strictly smaller site identifier,
// so chases terminate); a garbage cycle therefore converges on one site,
// where plain local tracing collects it.
//
// Costs charged per migration: one message carrying the object's payload,
// plus one patch message to every other site holding references to the
// migrated object (they must be rewritten to the object's new identity —
// the reference-patching burden the paper cites as migration's drawback).
type Migration struct {
	w  *World
	gc *localGC
	// threshold is the suspicion threshold of the distance heuristic.
	threshold int
	// Migrations and BytesMoved count migration work.
	Migrations int64
	BytesMoved int64
}

// NewMigration builds the collector with the given suspicion threshold.
func NewMigration(w *World, threshold int) *Migration {
	return &Migration{w: w, gc: newLocalGC(w), threshold: threshold}
}

// Name implements Collector.
func (m *Migration) Name() string { return "migration" }

// Step implements Collector: one local-tracing round, then one wave of
// migrations of suspected objects.
func (m *Migration) Step() int {
	collected := m.gc.round()

	// Find suspects: objects whose inref distance exceeds the threshold.
	var suspects []ids.Ref
	for r := range m.w.Objects {
		if len(m.gc.dist[r]) > 0 && m.gc.inrefDistance(r) > m.threshold {
			suspects = append(suspects, r)
		}
	}
	sort.Slice(suspects, func(i, j int) bool { return suspects[i].Less(suspects[j]) })

	for _, r := range suspects {
		if _, ok := m.w.Objects[r]; !ok {
			continue // already migrated away this wave
		}
		dest := m.chooseDestination(r)
		if dest == ids.NoSite || dest == r.Site {
			continue
		}
		m.migrate(r, dest)
	}
	return collected
}

// chooseDestination picks the smallest source site strictly below the
// object's own site (the "controlled" rule that guarantees convergence).
func (m *Migration) chooseDestination(r ids.Ref) ids.SiteID {
	best := ids.NoSite
	for s := range m.gc.dist[r] {
		if s < r.Site && (best == ids.NoSite || s < best) {
			best = s
		}
	}
	return best
}

// migrate moves an object to dest, patching every reference to it.
func (m *Migration) migrate(old ids.Ref, dest ids.SiteID) {
	w := m.w
	obj := w.Objects[old]
	newRef := w.alloc(dest, obj.Root)
	moved := w.Objects[newRef]
	moved.Fields = obj.Fields
	moved.Size = obj.Size

	// The move itself carries the object's payload.
	w.message(old.Site, dest, obj.Size)
	m.Migrations++
	m.BytesMoved += int64(obj.Size)

	// Patch every reference to the old identity; each holding site other
	// than the destination needs a patch message.
	patched := make(map[ids.SiteID]struct{})
	for _, holder := range w.Objects {
		changed := false
		for i, f := range holder.Fields {
			if f == old {
				holder.Fields[i] = newRef
				changed = true
			}
		}
		if changed && holder.Ref.Site != dest && holder.Ref.Site != old.Site {
			patched[holder.Ref.Site] = struct{}{}
		}
	}
	for s := range patched {
		w.message(old.Site, s, ctrlMsgSize)
	}

	// Carry over the distance estimates under the new identity so the
	// suspect stays suspected at its new home.
	if d, ok := m.gc.dist[old]; ok {
		m.gc.dist[newRef] = d
		delete(m.gc.dist, old)
	}
	w.delete(old)
}

var _ Collector = (*Migration)(nil)

package core

import (
	"math/rand"
	"testing"

	"backtrace/internal/ids"
	"backtrace/internal/msg"
)

// TestEngineStressRandomTopologies throws many concurrent back traces at
// random ioref topologies with scrambled delivery, dropped messages, and
// timeouts, and checks the engine's structural guarantees: every trace
// terminates, no frames or marks leak, and flagging only ever happens via
// a Garbage report.
func TestEngineStressRandomTopologies(t *testing.T) {
	const seeds = 30
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nSites := 2 + rng.Intn(5)
		sites := make([]ids.SiteID, nSites)
		for i := range sites {
			sites[i] = ids.SiteID(i + 1)
		}
		r := newRig(t, sites...)

		// Random ioref topology: each site gets a few objects; each
		// object may have an inref (random sources, random distance) and
		// each site random outrefs with random insets over its own
		// objects.
		perSite := 1 + rng.Intn(4)
		for _, s := range sites {
			for obj := ids.ObjID(1); obj <= ids.ObjID(perSite); obj++ {
				nSrc := 1 + rng.Intn(3)
				for k := 0; k < nSrc; k++ {
					src := sites[rng.Intn(nSites)]
					if src == s {
						continue
					}
					r.tables[s].AddSource(obj, src)
					r.tables[s].SetSourceDistance(obj, src, 5+rng.Intn(50))
				}
			}
			nOut := rng.Intn(2 * perSite)
			for k := 0; k < nOut; k++ {
				target := ids.MakeRef(sites[rng.Intn(nSites)], ids.ObjID(1+rng.Intn(perSite)))
				if target.Site == s {
					continue
				}
				inset := make([]ids.ObjID, 0, perSite)
				for obj := ids.ObjID(1); obj <= ids.ObjID(perSite); obj++ {
					if rng.Intn(2) == 0 {
						inset = append(inset, obj)
					}
				}
				r.addOutref(s, target, 5+rng.Intn(50), inset...)
			}
		}

		// Fire several traces from random suspected outrefs.
		started := 0
		for k := 0; k < 6; k++ {
			s := sites[rng.Intn(nSites)]
			for _, o := range r.tables[s].Outrefs() {
				if !o.IsClean(rigThreshold) {
					if _, ok := r.engines[s].StartTrace(o.Target); ok {
						started++
					}
					break
				}
			}
		}

		// Scrambled delivery with occasional drops.
		for len(r.queue) > 0 {
			i := rng.Intn(len(r.queue))
			env := r.queue[i]
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			if rng.Intn(10) == 0 {
				continue // drop
			}
			r.deliver(env)
		}
		// Expire everything still pending.
		r.now = r.now.Add(time1Hour)
		for _, s := range sites {
			r.engines[s].CheckTimeouts()
		}
		for len(r.queue) > 0 {
			env := r.queue[0]
			r.queue = r.queue[1:]
			r.deliver(env)
		}
		r.now = r.now.Add(time1Hour)
		for _, s := range sites {
			r.engines[s].CheckTimeouts()
		}

		// Structural guarantees.
		if len(r.done) > started {
			t.Fatalf("seed %d: %d completions for %d starts", seed, len(r.done), started)
		}
		for _, s := range sites {
			if got := r.engines[s].ActiveFrames(); got != 0 {
				t.Fatalf("seed %d: site %v leaked %d frames", seed, s, got)
			}
			if got := r.engines[s].PendingMarks(); got != 0 {
				t.Fatalf("seed %d: site %v leaked %d mark sets", seed, s, got)
			}
		}
		// Visited sets on iorefs must be empty too.
		for _, s := range sites {
			for _, in := range r.tables[s].Inrefs() {
				if len(in.Visited) != 0 {
					t.Fatalf("seed %d: inref %v retains visit marks %v", seed, in.Obj, in.Visited)
				}
			}
			for _, o := range r.tables[s].Outrefs() {
				if len(o.Visited) != 0 {
					t.Fatalf("seed %d: outref %v retains visit marks", seed, o.Target)
				}
			}
		}
		// Flags only with a Garbage completion somewhere (local flags at
		// non-initiators come from Report messages, which imply one).
		flagged := 0
		for _, s := range sites {
			for _, in := range r.tables[s].Inrefs() {
				if in.Garbage {
					flagged++
				}
			}
		}
		garbageOutcomes := 0
		for _, d := range r.done {
			if d.outcome == msg.VerdictGarbage {
				garbageOutcomes++
			}
		}
		if flagged > 0 && garbageOutcomes == 0 {
			t.Fatalf("seed %d: %d inrefs flagged with no Garbage outcome", seed, flagged)
		}
	}
}

// time1Hour avoids importing time twice in this file's scope.
const time1Hour = 3600 * 1e9

package core

import (
	"testing"

	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/msg"
)

// enableMemo flips Live-verdict memoization on for every engine in the rig.
// Tests run in package core, so they reach the config directly.
func (r *rig) enableMemo() {
	for _, e := range r.engines {
		e.cfg.MemoizeLive = true
	}
}

// TestBatchTraceMixedVerdicts: one batched trace carries a garbage suspect
// and a live suspect. The garbage suspect's cycle must be flagged, the live
// suspect's cone must stay unflagged, and the single report phase must
// resolve both (the batch form's GarbageSuspects set restricts flagging).
func TestBatchTraceMixedVerdicts(t *testing.T) {
	r := newRig(t, 1, 2, 3)
	// Garbage 2-cycle through suspect A = (2,1)@1:
	//   out(2,1)@1 {inset 1} → in1@1 ←2 → out(1,1)@2 {inset 1} → in1@2 ←1 → revisit A.
	r.addSuspectInref(1, 1, 40, 2)
	r.addOutref(1, ids.MakeRef(2, 1), 41, 1)
	r.addSuspectInref(2, 1, 40, 1)
	r.addOutref(2, ids.MakeRef(1, 1), 41, 1)
	// Live cone through suspect B = (3,1)@1:
	//   out(3,1)@1 {inset 2} → in2@1 ←3 → out(1,2)@3 {inset 9} → in9@3 clean → Live.
	r.addSuspectInref(1, 2, 40, 3)
	r.addOutref(1, ids.MakeRef(3, 1), 41, 2)
	r.addSuspectInref(3, 9, 1, 1) // clean: distance 1 <= threshold
	r.addOutref(3, ids.MakeRef(1, 2), 40, 9)

	tr, started := r.engines[1].StartBatchTrace([]ids.Ref{ids.MakeRef(2, 1), ids.MakeRef(3, 1)})
	if !started {
		t.Fatal("batch trace did not start")
	}
	r.pump()

	if len(r.done) != 1 {
		t.Fatalf("completions = %d, want 1", len(r.done))
	}
	c := r.done[0]
	if c.trace != tr || c.outcome != msg.VerdictGarbage {
		t.Fatalf("completion = %+v, want trace %v Garbage (one suspect confirmed)", c, tr)
	}
	// Only the garbage suspect's cone is flagged.
	if !r.flaggedGarbage(1, 1) || !r.flaggedGarbage(2, 1) {
		t.Error("garbage suspect's cycle inrefs not flagged")
	}
	if r.flaggedGarbage(1, 2) || r.flaggedGarbage(3, 9) {
		t.Error("live suspect's cone was flagged garbage")
	}
	if got := r.counters.Get(metrics.BackTracesStarted); got != 1 {
		t.Errorf("traces started = %d, want 1 for the whole batch", got)
	}
	for s, e := range r.engines {
		if e.ActiveFrames() != 0 || e.PendingMarks() != 0 {
			t.Errorf("site %v: frames=%d marks=%d left", s, e.ActiveFrames(), e.PendingMarks())
		}
		if len(e.batches) != 0 || len(e.rootSlots) != 0 {
			t.Errorf("site %v: batch bookkeeping left (%d batches, %d slots)",
				s, len(e.batches), len(e.rootSlots))
		}
	}
}

// TestBatchTraceDependentSuspectDemoted: suspect A's cone terminates at a
// visit mark owned by suspect B (a Garbage-with-dependency answer), and B
// proves Live. The initiator's fixpoint must demote A — its "garbage"
// evidence leans entirely on B's subtree — so the batch resolves Live and
// nothing is flagged.
func TestBatchTraceDependentSuspectDemoted(t *testing.T) {
	r := newRig(t, 1, 2)
	// Suspect A = (2,1)@1: in1@1 ←2 → out(1,1)@2 {inset 8} → in8@2 ←1 →
	// out(2,8)@1 {inset 2} → in2@1 — marked by suspect B at batch start,
	// so the revisit answers Garbage with a dependency on B.
	r.addSuspectInref(1, 1, 40, 2)
	r.addOutref(1, ids.MakeRef(2, 1), 41, 1)
	r.addSuspectInref(2, 8, 40, 1)
	r.addOutref(2, ids.MakeRef(1, 1), 41, 8)
	r.addOutref(1, ids.MakeRef(2, 8), 41, 2)
	// Suspect B = (2,2)@1: in2@1 ←2 → out(1,2)@2 {inset 7} → in7@2 clean → Live.
	r.addSuspectInref(1, 2, 40, 2)
	r.addOutref(1, ids.MakeRef(2, 2), 41, 2)
	r.addSuspectInref(2, 7, 1, 1)
	r.addOutref(2, ids.MakeRef(1, 2), 40, 7)

	_, started := r.engines[1].StartBatchTrace([]ids.Ref{ids.MakeRef(2, 1), ids.MakeRef(2, 2)})
	if !started {
		t.Fatal("batch trace did not start")
	}
	r.pump()

	if len(r.done) != 1 || r.done[0].outcome != msg.VerdictLive {
		t.Fatalf("completions = %+v, want one Live (dependent suspect demoted)", r.done)
	}
	for _, obj := range []ids.ObjID{1, 2} {
		if r.flaggedGarbage(1, obj) {
			t.Errorf("site 1 inref %d flagged despite Live resolution", obj)
		}
	}
	for _, obj := range []ids.ObjID{7, 8} {
		if r.flaggedGarbage(2, obj) {
			t.Errorf("site 2 inref %d flagged despite Live resolution", obj)
		}
	}
	for s, e := range r.engines {
		if e.ActiveFrames() != 0 || e.PendingMarks() != 0 {
			t.Errorf("site %v: frames=%d marks=%d left", s, e.ActiveFrames(), e.PendingMarks())
		}
	}
}

// TestBatchTraceSingleViableDegenerates: a batch whose other suspects are
// missing or clean behaves exactly like StartTrace on the one viable
// suspect — no batch bookkeeping, same verdict.
func TestBatchTraceSingleViableDegenerates(t *testing.T) {
	r := newRig(t, 1, 2)
	r.buildRing(2, 40)
	r.addOutref(1, ids.MakeRef(2, 5), 2) // clean: filtered out

	_, started := r.engines[1].StartBatchTrace([]ids.Ref{
		ids.MakeRef(2, 5),  // clean
		ids.MakeRef(2, 99), // missing
		ids.MakeRef(2, 1),  // the ring suspect
	})
	if !started {
		t.Fatal("degenerate batch did not start")
	}
	if len(r.engines[1].batches) != 0 {
		t.Fatal("degenerate batch left batch bookkeeping")
	}
	r.pump()
	if len(r.done) != 1 || r.done[0].outcome != msg.VerdictGarbage {
		t.Fatalf("completions = %+v, want one Garbage", r.done)
	}
	if !r.flaggedGarbage(1, 1) || !r.flaggedGarbage(2, 1) {
		t.Fatal("ring not flagged by degenerate batch")
	}
}

// memoRigLayout builds the shared live cone used by the memoization tests:
//
//	trace 1 (site 2): out(7,1)@2 {inset 1} → in1@2 ←3 → out(2,1)@3 {inset 9} → in9@3 clean → Live
//	trace 2 (site 4): out(8,1)@4 {inset 6} → in6@4 ←2 → out(4,6)@2 {inset 1} → in1@2 …
//
// After trace 1, in1@2 is memoized Live, so trace 2 short-circuits at site 2
// without calling site 3.
func memoRigLayout(r *rig) {
	r.addSuspectInref(2, 1, 40, 3)
	r.addOutref(2, ids.MakeRef(7, 1), 41, 1)
	r.addSuspectInref(3, 9, 1, 2)
	r.addOutref(3, ids.MakeRef(2, 1), 40, 9)
	r.addSuspectInref(4, 6, 40, 2)
	r.addOutref(4, ids.MakeRef(8, 1), 41, 6)
	r.addOutref(2, ids.MakeRef(4, 6), 41, 1)
}

// TestMemoizedLiveShortCircuits: a second trace through an ioref proven
// Live at the current generation answers from the memo without fanning out.
func TestMemoizedLiveShortCircuits(t *testing.T) {
	r := newRig(t, 2, 3, 4)
	r.enableMemo()
	memoRigLayout(r)

	if _, ok := r.engines[2].StartTrace(ids.MakeRef(7, 1)); !ok {
		t.Fatal("no first trace")
	}
	r.pump()
	if len(r.done) != 1 || r.done[0].outcome != msg.VerdictLive {
		t.Fatalf("first trace = %+v, want Live", r.done)
	}
	calls := r.counters.Get("msg.BackCall")
	if calls != 1 {
		t.Fatalf("first trace sent %d BackCalls, want 1 (site2→site3)", calls)
	}

	if _, ok := r.engines[4].StartTrace(ids.MakeRef(8, 1)); !ok {
		t.Fatal("no second trace")
	}
	r.pump()
	if len(r.done) != 2 || r.done[1].outcome != msg.VerdictLive {
		t.Fatalf("second trace = %+v, want Live", r.done)
	}
	if got := r.counters.Get("msg.BackCall") - calls; got != 1 {
		t.Fatalf("second trace sent %d BackCalls, want 1 (memo short-circuit at site 2)", got)
	}
	if r.counters.Get(metrics.BackTraceMemoHits) == 0 {
		t.Fatal("memo hit counter not incremented")
	}
	// ShouldStart skips a memoized suspect outright.
	if r.engines[2].ShouldStart(ids.MakeRef(7, 1)) {
		t.Fatal("ShouldStart ignored the memoized Live verdict")
	}
}

// TestMemoInvalidatedByGenerationBump: a local-trace commit (modeled by
// BumpGeneration) stales every memo entry, so the next trace re-proves
// liveness with a full traversal.
func TestMemoInvalidatedByGenerationBump(t *testing.T) {
	r := newRig(t, 2, 3, 4)
	r.enableMemo()
	memoRigLayout(r)

	r.engines[2].StartTrace(ids.MakeRef(7, 1))
	r.pump()
	r.engines[4].StartTrace(ids.MakeRef(8, 1))
	r.pump()
	calls := r.counters.Get("msg.BackCall") // 1 + 1 with the memo hit

	// Both sites commit a local trace: new generation, stale memos.
	r.engines[2].BumpGeneration()
	r.engines[4].BumpGeneration()

	if _, ok := r.engines[4].StartTrace(ids.MakeRef(8, 1)); !ok {
		t.Fatal("no third trace")
	}
	r.pump()
	if got := r.done[len(r.done)-1].outcome; got != msg.VerdictLive {
		t.Fatalf("third trace outcome = %v, want Live", got)
	}
	if got := r.counters.Get("msg.BackCall") - calls; got != 2 {
		t.Fatalf("post-commit trace sent %d BackCalls, want 2 (full traversal, memo stale)", got)
	}
}

// TestMemoInvalidatedByCleanEvent: a §6.4 clean event on a memoized inref
// deletes exactly that entry, so the next trace re-traverses through it
// even though no commit happened.
func TestMemoInvalidatedByCleanEvent(t *testing.T) {
	r := newRig(t, 2, 3, 4)
	r.enableMemo()
	memoRigLayout(r)

	r.engines[2].StartTrace(ids.MakeRef(7, 1))
	r.pump()
	calls := r.counters.Get("msg.BackCall")

	// The point invalidation: in1@2's memo entry dies with the clean event;
	// site 4 commits so its own suspect memo does not mask the retry.
	r.engines[2].NotifyCleanedInref(1)
	r.engines[4].BumpGeneration()

	if _, ok := r.engines[4].StartTrace(ids.MakeRef(8, 1)); !ok {
		t.Fatal("no retry trace")
	}
	r.pump()
	if got := r.done[len(r.done)-1].outcome; got != msg.VerdictLive {
		t.Fatalf("retry outcome = %v, want Live", got)
	}
	if got := r.counters.Get("msg.BackCall") - calls; got != 2 {
		t.Fatalf("retry sent %d BackCalls, want 2 (site4→site2, site2→site3)", got)
	}
}

// Package core implements the paper's primary contribution: the
// message-driven back-tracing engine of Sections 4 and 6.
//
// A back trace checks whether a suspected object is reachable from any
// root by tracing the reference graph backwards, leaping between outrefs
// and inrefs rather than individual references (Section 4.1):
//
//   - a *local step* goes from an outref to the inrefs it is locally
//     reachable from (the outref's inset, computed by the local tracer);
//   - a *remote step* goes from an inref to the corresponding outrefs on
//     its source sites.
//
// The two steps are the mutually recursive BackStepLocal/BackStepRemote of
// Section 4.4, realized here as a distributed state machine: every call
// creates an *activation frame* holding the caller's identity, the ioref
// the call is active on, a count of pending inner calls, and the result to
// return when the count reaches zero. Remote steps travel as BackCall
// messages and come back as BackReply messages; local steps are direct
// calls within the site. A trace therefore costs two messages per
// inter-site reference traversed plus one report per participant — the
// paper's 2E+P message complexity (Section 4.6).
//
// The engine also implements:
//
//   - the visit marks that keep a trace from looping (Section 4.4) and
//     their per-trace cleanup in the report phase (Section 4.5);
//   - per-ioref back thresholds, raised on every visit, so live suspects
//     stop generating traces while garbage retries until collected
//     (Section 4.3);
//   - the clean rule — "when an ioref is cleaned while a trace is active
//     there, the return value of the trace is set to Live" (Section 6.4);
//   - timeout handling: a lost call response or a lost report is assumed
//     Live (Section 4.6).
//
// The engine is not internally synchronized: the owning Site invokes every
// method while holding its own lock, which matches the paper's model of
// short atomic critical sections per site.
package core

import (
	"sort"
	"time"

	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/msg"
	"backtrace/internal/refs"
)

// Config parameterizes an Engine.
type Config struct {
	// Site is the owning site.
	Site ids.SiteID
	// Threshold is the suspicion threshold T: iorefs at distance ≤ T are
	// clean (Section 3).
	Threshold int
	// ThresholdBump is the amount δ added to an ioref's back threshold
	// each time a back trace visits it (Section 4.3).
	ThresholdBump int
	// CallTimeout bounds how long a frame waits for its inner calls; an
	// expired frame assumes Live (Section 4.6). Zero disables timeouts.
	CallTimeout time.Duration
	// ReportTimeout bounds how long a participant retains a trace's visit
	// marks while waiting for the final outcome; expiry assumes Live.
	// Zero disables timeouts.
	ReportTimeout time.Duration
	// Send transmits a message to another site.
	Send func(to ids.SiteID, m msg.Message)
	// Table is the site's ioref table.
	Table *refs.Table
	// Inset returns the current inset of a suspected outref (from the
	// site's installed back information, Section 5).
	Inset func(target ids.Ref) []ids.ObjID
	// Now is the clock (injectable for tests). Defaults to time.Now.
	Now func() time.Time
	// Counters receives engine metrics; may be nil.
	Counters *metrics.Counters
	// Completed, if non-nil, is invoked at the initiator when one of its
	// traces finishes, with the outcome and the participant set.
	Completed func(t ids.TraceID, outcome msg.Verdict, participants []ids.SiteID)
	// OnFlagged, if non-nil, is invoked when a report phase flags an
	// inref garbage (observability hook).
	OnFlagged func(obj ids.ObjID)
	// OnTimeout, if non-nil, is invoked when a back-trace wait expires
	// and is conservatively resolved as Live (observability hook).
	OnTimeout func(t ids.TraceID)
	// OnParticipantStart, if non-nil, is invoked when this site becomes
	// active in a back trace: the first call handled (or locally started)
	// for that trace while no activity was recorded. The site layer turns
	// the start/end pair into a participant span.
	OnParticipantStart func(t ids.TraceID)
	// OnParticipantEnd, if non-nil, is invoked when the site's last
	// activation frame for a trace completes (or a call was answered
	// without creating any frame); hops is the number of BackCall messages
	// handled during the active period. A trace that revisits the site
	// later produces a fresh start/end pair.
	OnParticipantEnd func(t ids.TraceID, hops int)
}

// frame is an activation frame (Section 4.4): "A frame contains the
// identity of the frame to return to (including the caller site, etc.),
// the ioref it is active on, a count of pending inner calls to BackStep,
// and a result value to return when the count becomes zero."
type frame struct {
	id         ids.FrameID
	trace      ids.TraceID
	initiator  ids.SiteID
	caller     ids.FrameID // zero for the outermost call
	callerSite ids.SiteID
	// The ioref the frame is active on: exactly one of onInref/onOutref
	// is meaningful, selected by kind.
	kind     msg.StepKind
	onInref  ids.ObjID
	onOutref ids.Ref
	pending  int
	// participants accumulates the sites reached in this frame's subtree,
	// always including this site.
	participants map[ids.SiteID]struct{}
	deadline     time.Time
}

// traceMarks records, per trace, the iorefs this site has marked visited,
// so the report phase can flag or unmark them (Section 4.5). expiry
// implements the lost-report timeout.
type traceMarks struct {
	inrefs  []ids.ObjID
	outrefs []ids.Ref
	expiry  time.Time
}

// traceActivity tracks one trace's live engagement at this site for the
// participant-span observability hooks: how many activation frames exist
// and how many BackCall messages were handled since the activity began.
type traceActivity struct {
	frames int
	hops   int
}

// Engine is one site's back-tracing engine.
type Engine struct {
	cfg Config

	nextTrace uint64
	nextFrame uint64
	frames    map[ids.FrameID]*frame
	// byInref/byOutref index the frames active on each ioref, for the
	// clean rule (Section 6.4).
	byInref  map[ids.ObjID]map[ids.FrameID]struct{}
	byOutref map[ids.Ref]map[ids.FrameID]struct{}
	marks    map[ids.TraceID]*traceMarks
	// activity tracks the traces currently active at this site, for the
	// participant-span hooks.
	activity map[ids.TraceID]*traceActivity
}

// NewEngine creates an engine for a site.
func NewEngine(cfg Config) *Engine {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Engine{
		cfg:      cfg,
		frames:   make(map[ids.FrameID]*frame),
		byInref:  make(map[ids.ObjID]map[ids.FrameID]struct{}),
		byOutref: make(map[ids.Ref]map[ids.FrameID]struct{}),
		marks:    make(map[ids.TraceID]*traceMarks),
		activity: make(map[ids.TraceID]*traceActivity),
	}
}

// --- participant-activity tracking (observability) -------------------------

// ensureActivity opens (or returns) the trace's activity record, firing
// OnParticipantStart on the opening edge.
func (e *Engine) ensureActivity(t ids.TraceID) *traceActivity {
	a, ok := e.activity[t]
	if !ok {
		a = &traceActivity{}
		e.activity[t] = a
		if e.cfg.OnParticipantStart != nil {
			e.cfg.OnParticipantStart(t)
		}
	}
	return a
}

// maybeEndActivity fires OnParticipantEnd once the trace has no live
// frames left at this site. Safe to call repeatedly; the activity record
// is removed on the closing edge.
func (e *Engine) maybeEndActivity(t ids.TraceID) {
	a, ok := e.activity[t]
	if !ok || a.frames > 0 {
		return
	}
	delete(e.activity, t)
	if e.cfg.OnParticipantEnd != nil {
		e.cfg.OnParticipantEnd(t, a.hops)
	}
}

// SetThreshold updates the suspicion threshold (used by the adaptive
// threshold controller).
func (e *Engine) SetThreshold(t int) { e.cfg.Threshold = t }

// Threshold returns the current suspicion threshold.
func (e *Engine) Threshold() int { return e.cfg.Threshold }

// ActiveFrames returns the number of live activation frames (for tests and
// introspection).
func (e *Engine) ActiveFrames() int { return len(e.frames) }

// PendingMarks returns the number of traces whose visit marks this site
// still holds.
func (e *Engine) PendingMarks() int { return len(e.marks) }

// TraceSeq returns the last trace sequence number this engine assigned.
// Checkpointing persists it so a restored incarnation never reissues a
// trace id: visit marks for the dead incarnation's traces survive in PEER
// ioref tables, and a reissued id would read them as "already visited" —
// turning a live structure into a false Garbage verdict.
func (e *Engine) TraceSeq() uint64 { return e.nextTrace }

// SeedTraceSeq advances the trace sequence counter to at least n. Used on
// restore; it never moves the counter backwards.
func (e *Engine) SeedTraceSeq(n uint64) {
	if n > e.nextTrace {
		e.nextTrace = n
	}
}

func (e *Engine) count(name string) {
	if e.cfg.Counters != nil {
		e.cfg.Counters.Inc(name)
	}
}

// --- starting traces ------------------------------------------------------

// ShouldStart reports whether a back trace should be triggered from the
// given outref: it exists, it is suspected, its distance has crossed its
// personal back threshold, and no trace from this engine is already active
// on it (Section 4.3).
func (e *Engine) ShouldStart(target ids.Ref) bool {
	o, ok := e.cfg.Table.Outref(target)
	if !ok || o.IsClean(e.cfg.Threshold) {
		return false
	}
	if o.Distance <= o.BackThreshold {
		return false
	}
	return len(e.byOutref[target]) == 0
}

// StartTrace initiates a back trace from a suspected outref on this site
// (Section 4: "we start a back trace from an outref rather than an inref").
// It returns the trace id and false if the outref is missing or clean.
func (e *Engine) StartTrace(target ids.Ref) (ids.TraceID, bool) {
	o, ok := e.cfg.Table.Outref(target)
	if !ok || o.IsClean(e.cfg.Threshold) {
		return ids.NilTrace, false
	}
	e.nextTrace++
	t := ids.TraceID{Initiator: e.cfg.Site, Seq: e.nextTrace}
	e.count(metrics.BackTracesStarted)
	// The initiator is itself a participant: open its activity before the
	// outermost call so even a synchronous completion emits a span pair.
	e.ensureActivity(t)
	// The outermost call: caller is the nil frame on this site.
	e.stepLocal(t, e.cfg.Site, ids.NilFrame, e.cfg.Site, target)
	e.maybeEndActivity(t)
	return t, true
}

// --- message entry points --------------------------------------------------

// HandleBackCall processes a BackCall message from another site.
func (e *Engine) HandleBackCall(from ids.SiteID, c msg.BackCall) {
	e.count(metrics.BackTraceCalls)
	// Open (or extend) this trace's activity even when the call is answered
	// without creating a frame, so every engagement yields a span pair.
	e.ensureActivity(c.Trace).hops++
	switch c.Kind {
	case msg.StepLocal:
		e.stepLocal(c.Trace, c.Initiator, c.Caller, from, c.Outref)
	case msg.StepRemote:
		e.stepRemote(c.Trace, c.Initiator, c.Caller, from, c.Inref)
	}
	e.maybeEndActivity(c.Trace)
}

// HandleBackReply processes a BackReply from another site.
func (e *Engine) HandleBackReply(from ids.SiteID, r msg.BackReply) {
	e.applyReply(r.Caller, r.Result, r.Participants)
}

// HandleReport processes the report phase at a participant (Section 4.5):
// on Garbage, flag the inrefs the trace visited here; on Live, clear the
// visit marks.
func (e *Engine) HandleReport(from ids.SiteID, r msg.Report) {
	e.finishTraceLocally(r.Trace, r.Outcome)
}

func (e *Engine) finishTraceLocally(t ids.TraceID, outcome msg.Verdict) {
	tm, ok := e.marks[t]
	if !ok {
		return
	}
	delete(e.marks, t)
	for _, obj := range tm.inrefs {
		in, ok := e.cfg.Table.Inref(obj)
		if !ok {
			continue
		}
		in.ClearVisited(t)
		if outcome == msg.VerdictGarbage {
			if !in.Garbage {
				e.cfg.Table.FlagGarbage(obj)
				e.count(metrics.InrefsFlagged)
				if e.cfg.OnFlagged != nil {
					e.cfg.OnFlagged(obj)
				}
			}
		}
	}
	for _, target := range tm.outrefs {
		if o, ok := e.cfg.Table.Outref(target); ok {
			o.ClearVisited(t)
		}
	}
}

// --- the two back steps -----------------------------------------------------

// stepLocal is BackStepLocal (Section 4.4): examine the outref for a
// remote reference on this site and fan out to the inrefs in its inset.
func (e *Engine) stepLocal(t ids.TraceID, initiator ids.SiteID, caller ids.FrameID, callerSite ids.SiteID, target ids.Ref) {
	o, ok := e.cfg.Table.Outref(target)
	if !ok {
		// "its ioref must have been deleted by the garbage collector".
		e.replyTo(caller, callerSite, t, msg.VerdictGarbage, e.selfParticipants())
		return
	}
	if o.IsClean(e.cfg.Threshold) {
		e.replyTo(caller, callerSite, t, msg.VerdictLive, e.selfParticipants())
		return
	}
	if o.MarkVisited(t) {
		// Already visited by this trace: avoid loops and revisits.
		e.replyTo(caller, callerSite, t, msg.VerdictGarbage, e.selfParticipants())
		return
	}
	e.recordOutrefMark(t, target)
	o.BackThreshold += e.cfg.ThresholdBump // Section 4.3

	f := e.newFrame(t, initiator, caller, callerSite)
	f.kind = msg.StepLocal
	f.onOutref = target
	e.indexFrame(f)

	inset := e.cfg.Inset(target)
	// Fan out to every inref in the inset; these are local calls on this
	// site, so no messages are sent (the paper's message complexity
	// counts only inter-site reference traversals).
	f.pending = len(inset)
	if f.pending == 0 {
		e.completeFrame(f, msg.VerdictGarbage)
		return
	}
	fid := f.id
	for _, inrefObj := range inset {
		// The frame may complete (via Live short-circuit or the clean
		// rule) while iterating; further calls then have no effect
		// beyond marking, which is harmless.
		if _, alive := e.frames[fid]; !alive {
			return
		}
		e.stepRemote(t, initiator, fid, e.cfg.Site, inrefObj)
	}
}

// stepRemote is BackStepRemote (Section 4.4): examine the inref for a
// local object and fan out to the corresponding outrefs on its source
// sites.
func (e *Engine) stepRemote(t ids.TraceID, initiator ids.SiteID, caller ids.FrameID, callerSite ids.SiteID, inrefObj ids.ObjID) {
	in, ok := e.cfg.Table.Inref(inrefObj)
	if !ok {
		e.replyTo(caller, callerSite, t, msg.VerdictGarbage, e.selfParticipants())
		return
	}
	if in.IsClean(e.cfg.Threshold) {
		e.replyTo(caller, callerSite, t, msg.VerdictLive, e.selfParticipants())
		return
	}
	if in.MarkVisited(t) {
		e.replyTo(caller, callerSite, t, msg.VerdictGarbage, e.selfParticipants())
		return
	}
	e.recordInrefMark(t, inrefObj)
	in.BackThreshold += e.cfg.ThresholdBump

	f := e.newFrame(t, initiator, caller, callerSite)
	f.kind = msg.StepRemote
	f.onInref = inrefObj
	e.indexFrame(f)

	sources := in.SourceSites()
	f.pending = len(sources)
	if f.pending == 0 {
		e.completeFrame(f, msg.VerdictGarbage)
		return
	}
	target := ids.MakeRef(e.cfg.Site, inrefObj)
	fid := f.id
	for _, src := range sources {
		if _, alive := e.frames[fid]; !alive {
			return // short-circuited while fanning out
		}
		e.cfg.Send(src, msg.BackCall{
			Trace:     t,
			Caller:    fid,
			Initiator: initiator,
			Kind:      msg.StepLocal,
			Outref:    target,
		})
	}
}

// --- frame bookkeeping -------------------------------------------------------

func (e *Engine) newFrame(t ids.TraceID, initiator ids.SiteID, caller ids.FrameID, callerSite ids.SiteID) *frame {
	e.nextFrame++
	f := &frame{
		id:           ids.FrameID{Site: e.cfg.Site, Seq: e.nextFrame},
		trace:        t,
		initiator:    initiator,
		caller:       caller,
		callerSite:   callerSite,
		participants: map[ids.SiteID]struct{}{e.cfg.Site: {}},
	}
	if e.cfg.CallTimeout > 0 {
		f.deadline = e.cfg.Now().Add(e.cfg.CallTimeout)
	}
	e.frames[f.id] = f
	e.ensureActivity(t).frames++
	return f
}

func (e *Engine) indexFrame(f *frame) {
	switch f.kind {
	case msg.StepLocal:
		set := e.byOutref[f.onOutref]
		if set == nil {
			set = make(map[ids.FrameID]struct{})
			e.byOutref[f.onOutref] = set
		}
		set[f.id] = struct{}{}
	case msg.StepRemote:
		set := e.byInref[f.onInref]
		if set == nil {
			set = make(map[ids.FrameID]struct{})
			e.byInref[f.onInref] = set
		}
		set[f.id] = struct{}{}
	}
}

func (e *Engine) unindexFrame(f *frame) {
	switch f.kind {
	case msg.StepLocal:
		if set := e.byOutref[f.onOutref]; set != nil {
			delete(set, f.id)
			if len(set) == 0 {
				delete(e.byOutref, f.onOutref)
			}
		}
	case msg.StepRemote:
		if set := e.byInref[f.onInref]; set != nil {
			delete(set, f.id)
			if len(set) == 0 {
				delete(e.byInref, f.onInref)
			}
		}
	}
}

// applyReply folds one inner call's result into its frame. Live
// short-circuits: the frame completes immediately and later replies to it
// are ignored (their frame is gone).
func (e *Engine) applyReply(fid ids.FrameID, result msg.Verdict, participants []ids.SiteID) {
	f, ok := e.frames[fid]
	if !ok {
		return // frame already completed (short-circuit, clean rule, timeout)
	}
	for _, p := range participants {
		f.participants[p] = struct{}{}
	}
	if result == msg.VerdictLive {
		e.completeFrame(f, msg.VerdictLive)
		return
	}
	f.pending--
	if f.pending <= 0 {
		// Every inner call returned Garbage (Live short-circuits above).
		e.completeFrame(f, msg.VerdictGarbage)
	}
}

// completeFrame finishes a frame with the given verdict, replying to the
// caller or — for the outermost frame — running the report phase.
func (e *Engine) completeFrame(f *frame, verdict msg.Verdict) {
	delete(e.frames, f.id)
	e.unindexFrame(f)
	if a, ok := e.activity[f.trace]; ok {
		a.frames--
	}
	defer e.maybeEndActivity(f.trace)
	parts := make([]ids.SiteID, 0, len(f.participants))
	for p := range f.participants {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })

	if f.caller.IsZero() && f.callerSite == e.cfg.Site {
		e.finishAtInitiator(f.trace, verdict, parts)
		return
	}
	e.replyTo(f.caller, f.callerSite, f.trace, verdict, parts)
}

// replyTo delivers a call's result to the caller frame, locally or by
// message.
func (e *Engine) replyTo(caller ids.FrameID, callerSite ids.SiteID, t ids.TraceID, verdict msg.Verdict, participants []ids.SiteID) {
	if callerSite == e.cfg.Site {
		if caller.IsZero() {
			// Outermost synchronous failure (e.g. StartTrace raced with
			// trimming): finish the trace at the initiator.
			e.finishAtInitiator(t, verdict, participants)
			return
		}
		e.applyReply(caller, verdict, participants)
		return
	}
	e.cfg.Send(callerSite, msg.BackReply{
		Trace:        t,
		Caller:       caller,
		Result:       verdict,
		Participants: participants,
	})
}

// finishAtInitiator runs the report phase (Section 4.5): deliver the
// outcome to every participant. The initiator's own marks are processed
// inline; remote participants get Report messages.
func (e *Engine) finishAtInitiator(t ids.TraceID, outcome msg.Verdict, participants []ids.SiteID) {
	if outcome == msg.VerdictGarbage {
		e.count(metrics.BackTracesGarbage)
	} else {
		e.count(metrics.BackTracesLive)
	}
	for _, p := range participants {
		if p == e.cfg.Site {
			continue
		}
		e.cfg.Send(p, msg.Report{Trace: t, Outcome: outcome})
	}
	e.finishTraceLocally(t, outcome)
	if e.cfg.Completed != nil {
		e.cfg.Completed(t, outcome, participants)
	}
}

func (e *Engine) selfParticipants() []ids.SiteID {
	return []ids.SiteID{e.cfg.Site}
}

// --- visit-mark bookkeeping ---------------------------------------------------

func (e *Engine) marksFor(t ids.TraceID) *traceMarks {
	tm, ok := e.marks[t]
	if !ok {
		tm = &traceMarks{}
		if e.cfg.ReportTimeout > 0 {
			tm.expiry = e.cfg.Now().Add(e.cfg.ReportTimeout)
		}
		e.marks[t] = tm
	}
	return tm
}

func (e *Engine) recordInrefMark(t ids.TraceID, obj ids.ObjID) {
	tm := e.marksFor(t)
	tm.inrefs = append(tm.inrefs, obj)
}

func (e *Engine) recordOutrefMark(t ids.TraceID, target ids.Ref) {
	tm := e.marksFor(t)
	tm.outrefs = append(tm.outrefs, target)
}

// --- the clean rule (Section 6.4) ----------------------------------------------

// NotifyCleanedInref implements the clean rule for an inref: every trace
// with a call active on it returns Live.
func (e *Engine) NotifyCleanedInref(obj ids.ObjID) {
	e.forceLive(e.byInref[obj])
}

// NotifyCleanedOutref implements the clean rule for an outref.
func (e *Engine) NotifyCleanedOutref(target ids.Ref) {
	e.forceLive(e.byOutref[target])
}

func (e *Engine) forceLive(set map[ids.FrameID]struct{}) {
	if len(set) == 0 {
		return
	}
	fids := make([]ids.FrameID, 0, len(set))
	for fid := range set {
		fids = append(fids, fid)
	}
	sort.Slice(fids, func(i, j int) bool {
		if fids[i].Site != fids[j].Site {
			return fids[i].Site < fids[j].Site
		}
		return fids[i].Seq < fids[j].Seq
	})
	for _, fid := range fids {
		if f, ok := e.frames[fid]; ok {
			e.completeFrame(f, msg.VerdictLive)
		}
	}
}

// --- timeouts (Section 4.6) ------------------------------------------------------

// CheckTimeouts expires overdue frames (assuming their pending calls
// returned Live) and overdue visit marks (assuming the trace's outcome was
// Live). The site calls this periodically.
func (e *Engine) CheckTimeouts() {
	now := e.cfg.Now()
	if e.cfg.CallTimeout > 0 {
		var overdue []*frame
		for _, f := range e.frames {
			if !f.deadline.IsZero() && now.After(f.deadline) {
				overdue = append(overdue, f)
			}
		}
		sort.Slice(overdue, func(i, j int) bool { return overdue[i].id.Seq < overdue[j].id.Seq })
		for _, f := range overdue {
			if _, ok := e.frames[f.id]; ok {
				if e.cfg.OnTimeout != nil {
					e.cfg.OnTimeout(f.trace)
				}
				e.completeFrame(f, msg.VerdictLive)
			}
		}
	}
	if e.cfg.ReportTimeout > 0 {
		var expired []ids.TraceID
		for t, tm := range e.marks {
			if !tm.expiry.IsZero() && now.After(tm.expiry) {
				expired = append(expired, t)
			}
		}
		sort.Slice(expired, func(i, j int) bool { return expired[i].Less(expired[j]) })
		for _, t := range expired {
			if e.cfg.OnTimeout != nil {
				e.cfg.OnTimeout(t)
			}
			e.finishTraceLocally(t, msg.VerdictLive)
		}
	}
}

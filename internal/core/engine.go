// Package core implements the paper's primary contribution: the
// message-driven back-tracing engine of Sections 4 and 6.
//
// A back trace checks whether a suspected object is reachable from any
// root by tracing the reference graph backwards, leaping between outrefs
// and inrefs rather than individual references (Section 4.1):
//
//   - a *local step* goes from an outref to the inrefs it is locally
//     reachable from (the outref's inset, computed by the local tracer);
//   - a *remote step* goes from an inref to the corresponding outrefs on
//     its source sites.
//
// The two steps are the mutually recursive BackStepLocal/BackStepRemote of
// Section 4.4, realized here as a distributed state machine: every call
// creates an *activation frame* holding the caller's identity, the ioref
// the call is active on, a count of pending inner calls, and the result to
// return when the count reaches zero. Remote steps travel as BackCall
// messages and come back as BackReply messages; local steps are direct
// calls within the site. A trace therefore costs two messages per
// inter-site reference traversed plus one report per participant — the
// paper's 2E+P message complexity (Section 4.6).
//
// The engine also implements:
//
//   - the visit marks that keep a trace from looping (Section 4.4) and
//     their per-trace cleanup in the report phase (Section 4.5);
//   - per-ioref back thresholds, raised on every visit, so live suspects
//     stop generating traces while garbage retries until collected
//     (Section 4.3);
//   - the clean rule — "when an ioref is cleaned while a trace is active
//     there, the return value of the trace is set to Live" (Section 6.4);
//   - timeout handling: a lost call response or a lost report is assumed
//     Live (Section 4.6).
//
// The engine is not internally synchronized: the owning Site invokes every
// method while holding its own lock, which matches the paper's model of
// short atomic critical sections per site.
package core

import (
	"sort"
	"time"

	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/msg"
	"backtrace/internal/refs"
)

// Config parameterizes an Engine.
type Config struct {
	// Site is the owning site.
	Site ids.SiteID
	// Threshold is the suspicion threshold T: iorefs at distance ≤ T are
	// clean (Section 3).
	Threshold int
	// ThresholdBump is the amount δ added to an ioref's back threshold
	// each time a back trace visits it (Section 4.3).
	ThresholdBump int
	// CallTimeout bounds how long a frame waits for its inner calls; an
	// expired frame assumes Live (Section 4.6). Zero disables timeouts.
	CallTimeout time.Duration
	// ReportTimeout bounds how long a participant retains a trace's visit
	// marks while waiting for the final outcome; expiry assumes Live.
	// Zero disables timeouts.
	ReportTimeout time.Duration
	// Send transmits a message to another site.
	Send func(to ids.SiteID, m msg.Message)
	// Table is the site's ioref table.
	Table *refs.Table
	// Inset returns the current inset of a suspected outref (from the
	// site's installed back information, Section 5).
	Inset func(target ids.Ref) []ids.ObjID
	// Now is the clock (injectable for tests). Defaults to time.Now.
	Now func() time.Time
	// MemoizeLive enables generation-stamped Live-verdict memoization:
	// when a frame completes Live (proven, not assumed by timeout), the
	// ioref it was active on is recorded against the current local-trace
	// commit generation, and later back steps through it answer Live
	// without fanning out — until BumpGeneration (a commit installed new
	// distances and back information) or a Section 6.4 clean event
	// invalidates the entry.
	MemoizeLive bool
	// Counters receives engine metrics; may be nil.
	Counters *metrics.Counters
	// Completed, if non-nil, is invoked at the initiator when one of its
	// traces finishes, with the outcome and the participant set.
	Completed func(t ids.TraceID, outcome msg.Verdict, participants []ids.SiteID)
	// OnFlagged, if non-nil, is invoked when a report phase flags an
	// inref garbage (observability hook).
	OnFlagged func(obj ids.ObjID)
	// OnTimeout, if non-nil, is invoked when a back-trace wait expires
	// and is conservatively resolved as Live (observability hook).
	OnTimeout func(t ids.TraceID)
	// OnParticipantStart, if non-nil, is invoked when this site becomes
	// active in a back trace: the first call handled (or locally started)
	// for that trace while no activity was recorded. The site layer turns
	// the start/end pair into a participant span.
	OnParticipantStart func(t ids.TraceID)
	// OnParticipantEnd, if non-nil, is invoked when the site's last
	// activation frame for a trace completes (or a call was answered
	// without creating any frame); hops is the number of BackCall messages
	// handled during the active period. A trace that revisits the site
	// later produces a fresh start/end pair.
	OnParticipantEnd func(t ids.TraceID, hops int)
}

// frame is an activation frame (Section 4.4): "A frame contains the
// identity of the frame to return to (including the caller site, etc.),
// the ioref it is active on, a count of pending inner calls to BackStep,
// and a result value to return when the count becomes zero."
type frame struct {
	id         ids.FrameID
	trace      ids.TraceID
	initiator  ids.SiteID
	caller     ids.FrameID // zero for the outermost call
	callerSite ids.SiteID
	// The ioref the frame is active on: exactly one of onInref/onOutref
	// is meaningful, selected by kind.
	kind     msg.StepKind
	onInref  ids.ObjID
	onOutref ids.Ref
	pending  int
	// suspect is the batch suspect index this frame works on behalf of
	// (always 0 in a single-suspect trace).
	suspect uint32
	// deps accumulates the suspects whose visit marks this frame's
	// Garbage verdict relied on (revisit answers, Section 4.4); forwarded
	// in the reply so the initiator can run the demotion fixpoint.
	deps map[uint32]struct{}
	// gen is the commit generation at frame creation; a Live completion
	// is memoized only if the generation has not moved since, so a
	// concurrent CommitLocalTrace invalidates the proof automatically.
	gen uint64
	// noMemo suppresses memoization for verdicts assumed rather than
	// proven (timeout expiry, Section 4.6).
	noMemo bool
	// participants accumulates the sites reached in this frame's subtree,
	// always including this site.
	participants map[ids.SiteID]struct{}
	deadline     time.Time
}

// inrefMark / outrefMark record one visit mark together with the batch
// suspect that owns it, so the report phase can flag selectively.
type inrefMark struct {
	obj     ids.ObjID
	suspect uint32
}

type outrefMark struct {
	target  ids.Ref
	suspect uint32
}

// traceMarks records, per trace, the iorefs this site has marked visited,
// so the report phase can flag or unmark them (Section 4.5). expiry
// implements the lost-report timeout.
type traceMarks struct {
	inrefs  []inrefMark
	outrefs []outrefMark
	expiry  time.Time
}

// batchRoot is the initiator-side state of a multi-suspect batched trace:
// one trace id, several suspected outrefs, one verdict per suspect. Each
// suspect's outermost call reports back through a root slot; when all have
// answered, the demotion fixpoint decides which Garbage verdicts are
// trustworthy and one report phase resolves the whole batch (Section 4.5).
type batchRoot struct {
	trace    ids.TraceID
	suspects []ids.Ref
	results  []msg.Verdict
	done     []bool
	deps     []map[uint32]struct{}
	pending  int
	// participants accumulates the union of every suspect subtree's
	// participant set for the report phase.
	participants map[ids.SiteID]struct{}
}

// rootSlot routes a suspect's outermost reply to its batch root.
type rootSlot struct {
	trace   ids.TraceID
	suspect uint32
}

// traceActivity tracks one trace's live engagement at this site for the
// participant-span observability hooks: how many activation frames exist
// and how many BackCall messages were handled since the activity began.
type traceActivity struct {
	frames int
	hops   int
}

// Engine is one site's back-tracing engine.
type Engine struct {
	cfg Config

	nextTrace uint64
	nextFrame uint64
	frames    map[ids.FrameID]*frame
	// byInref/byOutref index the frames active on each ioref, for the
	// clean rule (Section 6.4).
	byInref  map[ids.ObjID]map[ids.FrameID]struct{}
	byOutref map[ids.Ref]map[ids.FrameID]struct{}
	marks    map[ids.TraceID]*traceMarks
	// activity tracks the traces currently active at this site, for the
	// participant-span hooks.
	activity map[ids.TraceID]*traceActivity

	// batches holds the multi-suspect traces this site initiated that are
	// still in flight; rootSlots routes each suspect's outermost reply.
	batches   map[ids.TraceID]*batchRoot
	rootSlots map[ids.FrameID]rootSlot

	// gen is the local-trace commit generation (bumped by CommitLocalTrace
	// via BumpGeneration); memoIn/memoOut record the generation at which an
	// ioref was last proven Live. An entry is valid only while its stamp
	// equals gen, so a commit invalidates every cached verdict at once.
	gen     uint64
	memoIn  map[ids.ObjID]uint64
	memoOut map[ids.Ref]uint64
}

// NewEngine creates an engine for a site.
func NewEngine(cfg Config) *Engine {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Engine{
		cfg:       cfg,
		frames:    make(map[ids.FrameID]*frame),
		byInref:   make(map[ids.ObjID]map[ids.FrameID]struct{}),
		byOutref:  make(map[ids.Ref]map[ids.FrameID]struct{}),
		marks:     make(map[ids.TraceID]*traceMarks),
		activity:  make(map[ids.TraceID]*traceActivity),
		batches:   make(map[ids.TraceID]*batchRoot),
		rootSlots: make(map[ids.FrameID]rootSlot),
		memoIn:    make(map[ids.ObjID]uint64),
		memoOut:   make(map[ids.Ref]uint64),
	}
}

// --- participant-activity tracking (observability) -------------------------

// ensureActivity opens (or returns) the trace's activity record, firing
// OnParticipantStart on the opening edge.
func (e *Engine) ensureActivity(t ids.TraceID) *traceActivity {
	a, ok := e.activity[t]
	if !ok {
		a = &traceActivity{}
		e.activity[t] = a
		if e.cfg.OnParticipantStart != nil {
			e.cfg.OnParticipantStart(t)
		}
	}
	return a
}

// maybeEndActivity fires OnParticipantEnd once the trace has no live
// frames left at this site. Safe to call repeatedly; the activity record
// is removed on the closing edge.
func (e *Engine) maybeEndActivity(t ids.TraceID) {
	a, ok := e.activity[t]
	if !ok || a.frames > 0 {
		return
	}
	delete(e.activity, t)
	if e.cfg.OnParticipantEnd != nil {
		e.cfg.OnParticipantEnd(t, a.hops)
	}
}

// SetThreshold updates the suspicion threshold (used by the adaptive
// threshold controller).
func (e *Engine) SetThreshold(t int) { e.cfg.Threshold = t }

// Threshold returns the current suspicion threshold.
func (e *Engine) Threshold() int { return e.cfg.Threshold }

// ActiveFrames returns the number of live activation frames (for tests and
// introspection).
func (e *Engine) ActiveFrames() int { return len(e.frames) }

// PendingMarks returns the number of traces whose visit marks this site
// still holds.
func (e *Engine) PendingMarks() int { return len(e.marks) }

// TraceSeq returns the last trace sequence number this engine assigned.
// Checkpointing persists it so a restored incarnation never reissues a
// trace id: visit marks for the dead incarnation's traces survive in PEER
// ioref tables, and a reissued id would read them as "already visited" —
// turning a live structure into a false Garbage verdict.
func (e *Engine) TraceSeq() uint64 { return e.nextTrace }

// SeedTraceSeq advances the trace sequence counter to at least n. Used on
// restore; it never moves the counter backwards.
func (e *Engine) SeedTraceSeq(n uint64) {
	if n > e.nextTrace {
		e.nextTrace = n
	}
}

func (e *Engine) count(name string) {
	if e.cfg.Counters != nil {
		e.cfg.Counters.Inc(name)
	}
}

// --- starting traces ------------------------------------------------------

// Eligible reports whether an outref satisfies the distance policy for
// triggering a back trace: it exists, it is suspected, and its distance has
// crossed its personal back threshold (Section 4.3). It does not consider
// traces already in flight; see ShouldStart and TraceVisiting.
func (e *Engine) Eligible(target ids.Ref) bool {
	o, ok := e.cfg.Table.Outref(target)
	if !ok || o.IsClean(e.cfg.Threshold) {
		return false
	}
	return o.Distance > o.BackThreshold
}

// MemoizedLive reports whether the outref was proven Live at the current
// commit generation; a true result counts a memo hit, since the caller is
// expected to skip the trace it was about to start.
func (e *Engine) MemoizedLive(target ids.Ref) bool {
	if !e.cfg.MemoizeLive {
		return false
	}
	if g, ok := e.memoOut[target]; ok && g == e.gen {
		e.count(metrics.BackTraceMemoHits)
		return true
	}
	return false
}

// TraceVisiting reports whether some in-flight back trace holds a visit
// mark on the outref. Such a suspect needs no trace of its own: if the
// visiting trace concludes Garbage its report phase flags every ioref it
// visited (Section 4.5), and if it concludes Live the suspect's raised
// back threshold defers the retry — so the scheduler joins the suspect to
// the active trace instead of launching a duplicate.
func (e *Engine) TraceVisiting(target ids.Ref) bool {
	o, ok := e.cfg.Table.Outref(target)
	return ok && len(o.Visited) > 0
}

// ShouldStart reports whether a back trace should be triggered from the
// given outref: it is eligible per the distance policy, no trace from this
// engine is already active on it (Section 4.3), and it is not memoized
// Live at the current generation.
func (e *Engine) ShouldStart(target ids.Ref) bool {
	if !e.Eligible(target) {
		return false
	}
	if len(e.byOutref[target]) != 0 {
		return false
	}
	return !e.MemoizedLive(target)
}

// StartTrace initiates a back trace from a suspected outref on this site
// (Section 4: "we start a back trace from an outref rather than an inref").
// It returns the trace id and false if the outref is missing or clean.
func (e *Engine) StartTrace(target ids.Ref) (ids.TraceID, bool) {
	o, ok := e.cfg.Table.Outref(target)
	if !ok || o.IsClean(e.cfg.Threshold) {
		return ids.NilTrace, false
	}
	e.nextTrace++
	t := ids.TraceID{Initiator: e.cfg.Site, Seq: e.nextTrace}
	e.count(metrics.BackTracesStarted)
	// The initiator is itself a participant: open its activity before the
	// outermost call so even a synchronous completion emits a span pair.
	e.ensureActivity(t)
	// The outermost call: caller is the nil frame on this site.
	e.stepLocal(t, e.cfg.Site, ids.NilFrame, e.cfg.Site, target, 0)
	e.maybeEndActivity(t)
	return t, true
}

// StartBatchTrace initiates one back trace carrying several suspected
// outrefs whose insets overlap. The trace shares one id (and hence one set
// of visit marks) across all suspects: the first suspect to reach a shared
// ioref explores it, later suspects' subtrees stop at the existing mark
// with a recorded dependency, and a single report phase resolves the whole
// batch — a Garbage verdict flags every ioref visited on behalf of a
// garbage-confirmed suspect (Section 4.5), a Live verdict resolves only the
// suspects actually proven reachable.
//
// Suspects that are missing or clean are dropped; with zero viable
// suspects no trace starts, and with exactly one the call degenerates to
// StartTrace.
func (e *Engine) StartBatchTrace(targets []ids.Ref) (ids.TraceID, bool) {
	viable := make([]ids.Ref, 0, len(targets))
	for _, target := range targets {
		if o, ok := e.cfg.Table.Outref(target); ok && !o.IsClean(e.cfg.Threshold) {
			viable = append(viable, target)
		}
	}
	switch len(viable) {
	case 0:
		return ids.NilTrace, false
	case 1:
		return e.StartTrace(viable[0])
	}
	e.nextTrace++
	t := ids.TraceID{Initiator: e.cfg.Site, Seq: e.nextTrace}
	e.count(metrics.BackTracesStarted)
	if e.cfg.Counters != nil {
		e.cfg.Counters.Max(metrics.BackTraceBatchSize, int64(len(viable)))
	}
	b := &batchRoot{
		trace:        t,
		suspects:     viable,
		results:      make([]msg.Verdict, len(viable)),
		done:         make([]bool, len(viable)),
		deps:         make([]map[uint32]struct{}, len(viable)),
		pending:      len(viable),
		participants: map[ids.SiteID]struct{}{e.cfg.Site: {}},
	}
	e.batches[t] = b
	// The batch root counts as an open frame so the initiator's activity
	// (and root span) stays open until the batch resolves.
	e.ensureActivity(t).frames++
	for i, target := range viable {
		// Each suspect's outermost call replies to a root slot instead of
		// the nil frame; overlap shows up as an immediate revisit answer
		// with a dependency on the first-visiting suspect.
		e.nextFrame++
		slot := ids.FrameID{Site: e.cfg.Site, Seq: e.nextFrame}
		e.rootSlots[slot] = rootSlot{trace: t, suspect: uint32(i)}
		e.stepLocal(t, e.cfg.Site, slot, e.cfg.Site, target, uint32(i))
	}
	e.maybeEndActivity(t)
	return t, true
}

// --- message entry points --------------------------------------------------

// HandleBackCall processes a BackCall message from another site.
func (e *Engine) HandleBackCall(from ids.SiteID, c msg.BackCall) {
	e.count(metrics.BackTraceCalls)
	// Open (or extend) this trace's activity even when the call is answered
	// without creating a frame, so every engagement yields a span pair.
	e.ensureActivity(c.Trace).hops++
	switch c.Kind {
	case msg.StepLocal:
		e.stepLocal(c.Trace, c.Initiator, c.Caller, from, c.Outref, c.Suspect)
	case msg.StepRemote:
		e.stepRemote(c.Trace, c.Initiator, c.Caller, from, c.Inref, c.Suspect)
	}
	e.maybeEndActivity(c.Trace)
}

// HandleBackReply processes a BackReply from another site.
func (e *Engine) HandleBackReply(from ids.SiteID, r msg.BackReply) {
	e.applyReply(r.Caller, r.Result, r.Participants, r.Deps)
}

// HandleReport processes the report phase at a participant (Section 4.5):
// on Garbage, flag the inrefs the trace visited here; on Live, clear the
// visit marks. For a batched trace the report's garbage-suspect set
// restricts flagging to marks owned by suspects confirmed garbage.
func (e *Engine) HandleReport(from ids.SiteID, r msg.Report) {
	e.finishTraceLocally(r.Trace, r.Outcome, r.GarbageSuspects)
}

// finishTraceLocally clears the trace's visit marks and, on a Garbage
// outcome, flags the visited inrefs. garbage is the batch form's set of
// garbage-confirmed suspects; nil means the single-suspect form, which
// flags every visited inref.
func (e *Engine) finishTraceLocally(t ids.TraceID, outcome msg.Verdict, garbage []uint32) {
	tm, ok := e.marks[t]
	if !ok {
		return
	}
	delete(e.marks, t)
	var gset map[uint32]struct{}
	if garbage != nil {
		gset = make(map[uint32]struct{}, len(garbage))
		for _, s := range garbage {
			gset[s] = struct{}{}
		}
	}
	flags := func(suspect uint32) bool {
		if outcome != msg.VerdictGarbage {
			return false
		}
		if gset == nil {
			return true
		}
		_, ok := gset[suspect]
		return ok
	}
	for _, m := range tm.inrefs {
		in, ok := e.cfg.Table.Inref(m.obj)
		if !ok {
			continue
		}
		in.ClearVisited(t)
		if flags(m.suspect) && !in.Garbage {
			e.cfg.Table.FlagGarbage(m.obj)
			e.count(metrics.InrefsFlagged)
			if e.cfg.OnFlagged != nil {
				e.cfg.OnFlagged(m.obj)
			}
		}
	}
	for _, m := range tm.outrefs {
		if o, ok := e.cfg.Table.Outref(m.target); ok {
			o.ClearVisited(t)
		}
	}
}

// --- the two back steps -----------------------------------------------------

// revisitDeps returns the dependency set for a Garbage revisit answer:
// the mark's owning suspect, unless the revisiting suspect owns the mark
// itself (the ordinary loop case, which needs no demotion bookkeeping).
func revisitDeps(owner, suspect uint32) []uint32 {
	if owner == suspect {
		return nil
	}
	return []uint32{owner}
}

// stepLocal is BackStepLocal (Section 4.4): examine the outref for a
// remote reference on this site and fan out to the inrefs in its inset.
func (e *Engine) stepLocal(t ids.TraceID, initiator ids.SiteID, caller ids.FrameID, callerSite ids.SiteID, target ids.Ref, suspect uint32) {
	o, ok := e.cfg.Table.Outref(target)
	if !ok {
		// "its ioref must have been deleted by the garbage collector".
		e.replyTo(caller, callerSite, t, msg.VerdictGarbage, e.selfParticipants(), nil)
		return
	}
	if o.IsClean(e.cfg.Threshold) {
		e.replyTo(caller, callerSite, t, msg.VerdictLive, e.selfParticipants(), nil)
		return
	}
	if e.cfg.MemoizeLive {
		if g, ok := e.memoOut[target]; ok && g == e.gen {
			// Proven Live at this generation: answer without fanning out.
			e.count(metrics.BackTraceMemoHits)
			e.replyTo(caller, callerSite, t, msg.VerdictLive, e.selfParticipants(), nil)
			return
		}
	}
	if owner, already := o.MarkVisited(t, suspect); already {
		// Already visited by this trace: avoid loops and revisits. In a
		// batched trace the answer leans on the owning suspect's verdict.
		e.replyTo(caller, callerSite, t, msg.VerdictGarbage, e.selfParticipants(), revisitDeps(owner, suspect))
		return
	}
	e.recordOutrefMark(t, target, suspect)
	o.BackThreshold += e.cfg.ThresholdBump // Section 4.3

	f := e.newFrame(t, initiator, caller, callerSite, suspect)
	f.kind = msg.StepLocal
	f.onOutref = target
	e.indexFrame(f)

	inset := e.cfg.Inset(target)
	// Fan out to every inref in the inset; these are local calls on this
	// site, so no messages are sent (the paper's message complexity
	// counts only inter-site reference traversals).
	f.pending = len(inset)
	if f.pending == 0 {
		e.completeFrame(f, msg.VerdictGarbage)
		return
	}
	fid := f.id
	for _, inrefObj := range inset {
		// The frame may complete (via Live short-circuit or the clean
		// rule) while iterating; further calls then have no effect
		// beyond marking, which is harmless.
		if _, alive := e.frames[fid]; !alive {
			return
		}
		e.stepRemote(t, initiator, fid, e.cfg.Site, inrefObj, suspect)
	}
}

// stepRemote is BackStepRemote (Section 4.4): examine the inref for a
// local object and fan out to the corresponding outrefs on its source
// sites.
func (e *Engine) stepRemote(t ids.TraceID, initiator ids.SiteID, caller ids.FrameID, callerSite ids.SiteID, inrefObj ids.ObjID, suspect uint32) {
	in, ok := e.cfg.Table.Inref(inrefObj)
	if !ok {
		e.replyTo(caller, callerSite, t, msg.VerdictGarbage, e.selfParticipants(), nil)
		return
	}
	if in.IsClean(e.cfg.Threshold) {
		e.replyTo(caller, callerSite, t, msg.VerdictLive, e.selfParticipants(), nil)
		return
	}
	if e.cfg.MemoizeLive {
		if g, ok := e.memoIn[inrefObj]; ok && g == e.gen {
			e.count(metrics.BackTraceMemoHits)
			e.replyTo(caller, callerSite, t, msg.VerdictLive, e.selfParticipants(), nil)
			return
		}
	}
	if owner, already := in.MarkVisited(t, suspect); already {
		e.replyTo(caller, callerSite, t, msg.VerdictGarbage, e.selfParticipants(), revisitDeps(owner, suspect))
		return
	}
	e.recordInrefMark(t, inrefObj, suspect)
	in.BackThreshold += e.cfg.ThresholdBump

	f := e.newFrame(t, initiator, caller, callerSite, suspect)
	f.kind = msg.StepRemote
	f.onInref = inrefObj
	e.indexFrame(f)

	sources := in.SourceSites()
	f.pending = len(sources)
	if f.pending == 0 {
		e.completeFrame(f, msg.VerdictGarbage)
		return
	}
	target := ids.MakeRef(e.cfg.Site, inrefObj)
	fid := f.id
	for _, src := range sources {
		if _, alive := e.frames[fid]; !alive {
			return // short-circuited while fanning out
		}
		e.cfg.Send(src, msg.BackCall{
			Trace:     t,
			Caller:    fid,
			Initiator: initiator,
			Kind:      msg.StepLocal,
			Outref:    target,
			Suspect:   suspect,
		})
	}
}

// --- frame bookkeeping -------------------------------------------------------

func (e *Engine) newFrame(t ids.TraceID, initiator ids.SiteID, caller ids.FrameID, callerSite ids.SiteID, suspect uint32) *frame {
	e.nextFrame++
	f := &frame{
		id:           ids.FrameID{Site: e.cfg.Site, Seq: e.nextFrame},
		trace:        t,
		initiator:    initiator,
		caller:       caller,
		callerSite:   callerSite,
		suspect:      suspect,
		gen:          e.gen,
		participants: map[ids.SiteID]struct{}{e.cfg.Site: {}},
	}
	if e.cfg.CallTimeout > 0 {
		f.deadline = e.cfg.Now().Add(e.cfg.CallTimeout)
	}
	e.frames[f.id] = f
	e.ensureActivity(t).frames++
	return f
}

func (e *Engine) indexFrame(f *frame) {
	switch f.kind {
	case msg.StepLocal:
		set := e.byOutref[f.onOutref]
		if set == nil {
			set = make(map[ids.FrameID]struct{})
			e.byOutref[f.onOutref] = set
		}
		set[f.id] = struct{}{}
	case msg.StepRemote:
		set := e.byInref[f.onInref]
		if set == nil {
			set = make(map[ids.FrameID]struct{})
			e.byInref[f.onInref] = set
		}
		set[f.id] = struct{}{}
	}
}

func (e *Engine) unindexFrame(f *frame) {
	switch f.kind {
	case msg.StepLocal:
		if set := e.byOutref[f.onOutref]; set != nil {
			delete(set, f.id)
			if len(set) == 0 {
				delete(e.byOutref, f.onOutref)
			}
		}
	case msg.StepRemote:
		if set := e.byInref[f.onInref]; set != nil {
			delete(set, f.id)
			if len(set) == 0 {
				delete(e.byInref, f.onInref)
			}
		}
	}
}

// applyReply folds one inner call's result into its frame (or batch root
// slot). Live short-circuits: the frame completes immediately and later
// replies to it are ignored (their frame is gone). Garbage replies merge
// the subtree's suspect dependencies into the frame for forwarding.
func (e *Engine) applyReply(fid ids.FrameID, result msg.Verdict, participants []ids.SiteID, deps []uint32) {
	if slot, ok := e.rootSlots[fid]; ok {
		e.applyBatchReply(fid, slot, result, participants, deps)
		return
	}
	f, ok := e.frames[fid]
	if !ok {
		return // frame already completed (short-circuit, clean rule, timeout)
	}
	for _, p := range participants {
		f.participants[p] = struct{}{}
	}
	if result == msg.VerdictLive {
		e.completeFrame(f, msg.VerdictLive)
		return
	}
	for _, d := range deps {
		if d != f.suspect {
			if f.deps == nil {
				f.deps = make(map[uint32]struct{})
			}
			f.deps[d] = struct{}{}
		}
	}
	f.pending--
	if f.pending <= 0 {
		// Every inner call returned Garbage (Live short-circuits above).
		e.completeFrame(f, msg.VerdictGarbage)
	}
}

// completeFrame finishes a frame with the given verdict, replying to the
// caller or — for the outermost frame — running the report phase. A
// proven-Live completion whose generation is still current memoizes the
// frame's ioref.
func (e *Engine) completeFrame(f *frame, verdict msg.Verdict) {
	delete(e.frames, f.id)
	e.unindexFrame(f)
	if a, ok := e.activity[f.trace]; ok {
		a.frames--
	}
	defer e.maybeEndActivity(f.trace)
	if verdict == msg.VerdictLive && e.cfg.MemoizeLive && !f.noMemo && f.gen == e.gen {
		switch f.kind {
		case msg.StepLocal:
			e.memoOut[f.onOutref] = e.gen
		case msg.StepRemote:
			e.memoIn[f.onInref] = e.gen
		}
	}
	parts := make([]ids.SiteID, 0, len(f.participants))
	for p := range f.participants {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })

	var deps []uint32
	if verdict == msg.VerdictGarbage && len(f.deps) > 0 {
		deps = make([]uint32, 0, len(f.deps))
		for d := range f.deps {
			deps = append(deps, d)
		}
		sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
	}

	if f.caller.IsZero() && f.callerSite == e.cfg.Site {
		e.finishAtInitiator(f.trace, verdict, parts)
		return
	}
	e.replyTo(f.caller, f.callerSite, f.trace, verdict, parts, deps)
}

// replyTo delivers a call's result to the caller frame, locally or by
// message.
func (e *Engine) replyTo(caller ids.FrameID, callerSite ids.SiteID, t ids.TraceID, verdict msg.Verdict, participants []ids.SiteID, deps []uint32) {
	if callerSite == e.cfg.Site {
		if caller.IsZero() {
			// Outermost synchronous failure (e.g. StartTrace raced with
			// trimming): finish the trace at the initiator.
			e.finishAtInitiator(t, verdict, participants)
			return
		}
		e.applyReply(caller, verdict, participants, deps)
		return
	}
	e.cfg.Send(callerSite, msg.BackReply{
		Trace:        t,
		Caller:       caller,
		Result:       verdict,
		Participants: participants,
		Deps:         deps,
	})
}

// applyBatchReply folds one suspect's outermost result into its batch
// root; the last reply resolves the batch.
func (e *Engine) applyBatchReply(fid ids.FrameID, slot rootSlot, result msg.Verdict, participants []ids.SiteID, deps []uint32) {
	delete(e.rootSlots, fid)
	b, ok := e.batches[slot.trace]
	if !ok || b.done[slot.suspect] {
		return
	}
	for _, p := range participants {
		b.participants[p] = struct{}{}
	}
	i := slot.suspect
	b.results[i] = result
	b.done[i] = true
	if result == msg.VerdictGarbage {
		for _, d := range deps {
			if d == i {
				continue
			}
			if b.deps[i] == nil {
				b.deps[i] = make(map[uint32]struct{})
			}
			b.deps[i][d] = struct{}{}
		}
	}
	b.pending--
	if b.pending == 0 {
		e.resolveBatch(b)
	}
}

// resolveBatch decides the final per-suspect verdicts of a batched trace
// and runs its report phase. A suspect's Garbage verdict is trustworthy
// only if every suspect it (transitively) depended on for a revisit answer
// is also Garbage — the fixpoint demotes the rest to Live, which is always
// safe (the suspect stays suspected and retries later, Section 4.3).
func (e *Engine) resolveBatch(b *batchRoot) {
	delete(e.batches, b.trace)
	garbage := make([]bool, len(b.suspects))
	for i := range garbage {
		garbage[i] = b.results[i] == msg.VerdictGarbage
	}
	for changed := true; changed; {
		changed = false
		for i := range garbage {
			if !garbage[i] {
				continue
			}
			for d := range b.deps[i] {
				if int(d) >= len(garbage) || !garbage[d] {
					garbage[i] = false
					changed = true
					break
				}
			}
		}
	}
	var gs []uint32
	for i, g := range garbage {
		if g {
			gs = append(gs, uint32(i))
		}
	}
	outcome := msg.VerdictLive
	if len(gs) > 0 {
		outcome = msg.VerdictGarbage
	}
	if outcome == msg.VerdictGarbage {
		e.count(metrics.BackTracesGarbage)
	} else {
		e.count(metrics.BackTracesLive)
	}
	parts := make([]ids.SiteID, 0, len(b.participants))
	for p := range b.participants {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	for _, p := range parts {
		if p == e.cfg.Site {
			continue
		}
		e.cfg.Send(p, msg.Report{Trace: b.trace, Outcome: outcome, GarbageSuspects: gs})
	}
	e.finishTraceLocally(b.trace, outcome, gs)
	if a, ok := e.activity[b.trace]; ok {
		a.frames-- // release the batch root's hold on the activity
	}
	defer e.maybeEndActivity(b.trace)
	if e.cfg.Completed != nil {
		e.cfg.Completed(b.trace, outcome, parts)
	}
}

// finishAtInitiator runs the report phase (Section 4.5): deliver the
// outcome to every participant. The initiator's own marks are processed
// inline; remote participants get Report messages.
func (e *Engine) finishAtInitiator(t ids.TraceID, outcome msg.Verdict, participants []ids.SiteID) {
	if outcome == msg.VerdictGarbage {
		e.count(metrics.BackTracesGarbage)
	} else {
		e.count(metrics.BackTracesLive)
	}
	for _, p := range participants {
		if p == e.cfg.Site {
			continue
		}
		e.cfg.Send(p, msg.Report{Trace: t, Outcome: outcome})
	}
	e.finishTraceLocally(t, outcome, nil)
	if e.cfg.Completed != nil {
		e.cfg.Completed(t, outcome, participants)
	}
}

func (e *Engine) selfParticipants() []ids.SiteID {
	return []ids.SiteID{e.cfg.Site}
}

// --- visit-mark bookkeeping ---------------------------------------------------

func (e *Engine) marksFor(t ids.TraceID) *traceMarks {
	tm, ok := e.marks[t]
	if !ok {
		tm = &traceMarks{}
		if e.cfg.ReportTimeout > 0 {
			tm.expiry = e.cfg.Now().Add(e.cfg.ReportTimeout)
		}
		e.marks[t] = tm
	}
	return tm
}

func (e *Engine) recordInrefMark(t ids.TraceID, obj ids.ObjID, suspect uint32) {
	tm := e.marksFor(t)
	tm.inrefs = append(tm.inrefs, inrefMark{obj: obj, suspect: suspect})
}

func (e *Engine) recordOutrefMark(t ids.TraceID, target ids.Ref, suspect uint32) {
	tm := e.marksFor(t)
	tm.outrefs = append(tm.outrefs, outrefMark{target: target, suspect: suspect})
}

// --- memoization generations (tentpole layer 2) -----------------------------

// BumpGeneration advances the local-trace commit generation, invalidating
// every memoized Live verdict at once: the commit installed new distances
// and back information, so cached proofs may rest on edges that no longer
// exist. The site calls this from CommitLocalTrace.
func (e *Engine) BumpGeneration() {
	e.gen++
	if len(e.memoIn) > 0 {
		e.memoIn = make(map[ids.ObjID]uint64)
	}
	if len(e.memoOut) > 0 {
		e.memoOut = make(map[ids.Ref]uint64)
	}
}

// Generation returns the current local-trace commit generation.
func (e *Engine) Generation() uint64 { return e.gen }

// --- the clean rule (Section 6.4) ----------------------------------------------

// NotifyCleanedInref implements the clean rule for an inref: every trace
// with a call active on it returns Live. The ioref's cached Live verdict
// (if any) is dropped too — its cleanliness now answers directly, and the
// Section 6.4 clean events are the memo's point invalidations between
// generation bumps.
func (e *Engine) NotifyCleanedInref(obj ids.ObjID) {
	e.forceLive(e.byInref[obj])
	delete(e.memoIn, obj)
}

// NotifyCleanedOutref implements the clean rule for an outref.
func (e *Engine) NotifyCleanedOutref(target ids.Ref) {
	e.forceLive(e.byOutref[target])
	delete(e.memoOut, target)
}

func (e *Engine) forceLive(set map[ids.FrameID]struct{}) {
	if len(set) == 0 {
		return
	}
	fids := make([]ids.FrameID, 0, len(set))
	for fid := range set {
		fids = append(fids, fid)
	}
	sort.Slice(fids, func(i, j int) bool {
		if fids[i].Site != fids[j].Site {
			return fids[i].Site < fids[j].Site
		}
		return fids[i].Seq < fids[j].Seq
	})
	for _, fid := range fids {
		if f, ok := e.frames[fid]; ok {
			e.completeFrame(f, msg.VerdictLive)
		}
	}
}

// --- timeouts (Section 4.6) ------------------------------------------------------

// CheckTimeouts expires overdue frames (assuming their pending calls
// returned Live) and overdue visit marks (assuming the trace's outcome was
// Live). The site calls this periodically.
func (e *Engine) CheckTimeouts() {
	now := e.cfg.Now()
	if e.cfg.CallTimeout > 0 {
		var overdue []*frame
		for _, f := range e.frames {
			if !f.deadline.IsZero() && now.After(f.deadline) {
				overdue = append(overdue, f)
			}
		}
		sort.Slice(overdue, func(i, j int) bool { return overdue[i].id.Seq < overdue[j].id.Seq })
		for _, f := range overdue {
			if _, ok := e.frames[f.id]; ok {
				if e.cfg.OnTimeout != nil {
					e.cfg.OnTimeout(f.trace)
				}
				// Assumed Live, not proven (Section 4.6): never memoized.
				f.noMemo = true
				e.completeFrame(f, msg.VerdictLive)
			}
		}
	}
	if e.cfg.ReportTimeout > 0 {
		var expired []ids.TraceID
		for t, tm := range e.marks {
			if !tm.expiry.IsZero() && now.After(tm.expiry) {
				expired = append(expired, t)
			}
		}
		sort.Slice(expired, func(i, j int) bool { return expired[i].Less(expired[j]) })
		for _, t := range expired {
			if e.cfg.OnTimeout != nil {
				e.cfg.OnTimeout(t)
			}
			e.finishTraceLocally(t, msg.VerdictLive, nil)
		}
	}
}

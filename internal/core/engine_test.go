package core

import (
	"testing"
	"time"

	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/msg"
	"backtrace/internal/refs"
)

// rig wires several engines together with an explicit message queue, so
// tests control delivery order deterministically and can drop or delay
// messages at precise points.
type rig struct {
	t        *testing.T
	engines  map[ids.SiteID]*Engine
	tables   map[ids.SiteID]*refs.Table
	insets   map[ids.SiteID]map[ids.Ref][]ids.ObjID
	queue    []msg.Envelope
	counters *metrics.Counters
	done     []completion
	now      time.Time
}

type completion struct {
	trace        ids.TraceID
	outcome      msg.Verdict
	participants []ids.SiteID
}

const (
	rigThreshold = 4
	rigT2        = 10
	rigBump      = 5
)

func newRig(t *testing.T, sites ...ids.SiteID) *rig {
	t.Helper()
	r := &rig{
		t:        t,
		engines:  make(map[ids.SiteID]*Engine),
		tables:   make(map[ids.SiteID]*refs.Table),
		insets:   make(map[ids.SiteID]map[ids.Ref][]ids.ObjID),
		counters: &metrics.Counters{},
		now:      time.Unix(1000, 0),
	}
	for _, s := range sites {
		site := s
		tbl := refs.NewTable(site, rigT2)
		r.tables[site] = tbl
		r.insets[site] = make(map[ids.Ref][]ids.ObjID)
		r.engines[site] = NewEngine(Config{
			Site:          site,
			Threshold:     rigThreshold,
			ThresholdBump: rigBump,
			CallTimeout:   time.Minute,
			ReportTimeout: 5 * time.Minute,
			Send: func(to ids.SiteID, m msg.Message) {
				r.queue = append(r.queue, msg.Envelope{From: site, To: to, M: m})
				r.counters.ObserveMessage(msg.Envelope{From: site, To: to, M: m}, false)
			},
			Table: tbl,
			Inset: func(target ids.Ref) []ids.ObjID {
				return r.insets[site][target]
			},
			Now: func() time.Time { return r.now },
			Completed: func(tr ids.TraceID, outcome msg.Verdict, parts []ids.SiteID) {
				r.done = append(r.done, completion{trace: tr, outcome: outcome, participants: parts})
			},
			Counters: r.counters,
		})
	}
	return r
}

// pump delivers every queued message (and messages those deliveries
// enqueue) in FIFO order.
func (r *rig) pump() {
	for len(r.queue) > 0 {
		env := r.queue[0]
		r.queue = r.queue[1:]
		r.deliver(env)
	}
}

func (r *rig) deliver(env msg.Envelope) {
	e, ok := r.engines[env.To]
	if !ok {
		return
	}
	switch m := env.M.(type) {
	case msg.BackCall:
		e.HandleBackCall(env.From, m)
	case msg.BackReply:
		e.HandleBackReply(env.From, m)
	case msg.Report:
		e.HandleReport(env.From, m)
	default:
		r.t.Fatalf("rig: unexpected message %s", msg.Name(env.M))
	}
}

// dropWhere removes queued messages matching pred, returning how many.
func (r *rig) dropWhere(pred func(msg.Envelope) bool) int {
	kept := r.queue[:0]
	n := 0
	for _, env := range r.queue {
		if pred(env) {
			n++
			continue
		}
		kept = append(kept, env)
	}
	r.queue = kept
	return n
}

// addSuspectInref installs an inref for obj at site with the given sources,
// all at a suspected distance.
func (r *rig) addSuspectInref(site ids.SiteID, obj ids.ObjID, dist int, sources ...ids.SiteID) {
	tbl := r.tables[site]
	for _, src := range sources {
		tbl.AddSource(obj, src)
		tbl.SetSourceDistance(obj, src, dist)
	}
}

// addOutref installs an outref at site for target with distance and inset.
func (r *rig) addOutref(site ids.SiteID, target ids.Ref, dist int, inset ...ids.ObjID) {
	o, _ := r.tables[site].EnsureOutref(target)
	o.Distance = dist
	o.Barrier = false
	r.insets[site][target] = inset
}

// buildRing builds an n-site garbage ring: site i has object 1 with an
// inref sourced from the previous site, and an outref to the next site's
// object 1 whose inset is {object 1}. Every ioref is suspected (distance
// well beyond rigThreshold and rigT2).
func (r *rig) buildRing(n int, dist int) {
	for i := 1; i <= n; i++ {
		site := ids.SiteID(i)
		prev := ids.SiteID((i+n-2)%n + 1)
		next := ids.SiteID(i%n + 1)
		r.addSuspectInref(site, 1, dist, prev)
		r.addOutref(site, ids.MakeRef(next, 1), dist+1, 1)
	}
}

func (r *rig) flaggedGarbage(site ids.SiteID, obj ids.ObjID) bool {
	in, ok := r.tables[site].Inref(obj)
	return ok && in.Garbage
}

func TestTwoSiteCycleConfirmedGarbage(t *testing.T) {
	r := newRig(t, 1, 2)
	r.buildRing(2, 40)

	tr, started := r.engines[1].StartTrace(ids.MakeRef(2, 1))
	if !started {
		t.Fatal("trace did not start")
	}
	r.pump()

	if len(r.done) != 1 {
		t.Fatalf("completions = %d, want 1", len(r.done))
	}
	c := r.done[0]
	if c.trace != tr || c.outcome != msg.VerdictGarbage {
		t.Fatalf("completion = %+v, want trace %v Garbage", c, tr)
	}
	if len(c.participants) != 2 {
		t.Fatalf("participants = %v, want both sites", c.participants)
	}
	if !r.flaggedGarbage(1, 1) || !r.flaggedGarbage(2, 1) {
		t.Fatal("inrefs on the confirmed cycle not flagged garbage")
	}
	// All bookkeeping released.
	for s, e := range r.engines {
		if e.ActiveFrames() != 0 {
			t.Errorf("site %v: %d frames left", s, e.ActiveFrames())
		}
		if e.PendingMarks() != 0 {
			t.Errorf("site %v: %d trace marks left", s, e.PendingMarks())
		}
	}
}

func TestTwoSiteCycleMessageComplexity(t *testing.T) {
	// A 2-site ring traverses E=2 inter-site references and has P=2
	// participants: 2E call+reply messages plus P-1 report messages
	// (the initiator reports to itself without a message).
	r := newRig(t, 1, 2)
	r.buildRing(2, 40)
	if _, ok := r.engines[1].StartTrace(ids.MakeRef(2, 1)); !ok {
		t.Fatal("no trace")
	}
	r.pump()

	calls := r.counters.Get("msg.BackCall")
	replies := r.counters.Get("msg.BackReply")
	reports := r.counters.Get("msg.Report")
	if calls != 2 || replies != 2 || reports != 1 {
		t.Fatalf("messages: calls=%d replies=%d reports=%d, want 2/2/1", calls, replies, reports)
	}
}

func TestRingCyclesOfManySizes(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 16} {
		sites := make([]ids.SiteID, n)
		for i := range sites {
			sites[i] = ids.SiteID(i + 1)
		}
		r := newRig(t, sites...)
		r.buildRing(n, 40)
		if _, ok := r.engines[1].StartTrace(ids.MakeRef(2, 1)); !ok {
			t.Fatalf("n=%d: no trace", n)
		}
		r.pump()
		if len(r.done) != 1 || r.done[0].outcome != msg.VerdictGarbage {
			t.Fatalf("n=%d: completions %+v", n, r.done)
		}
		if got := len(r.done[0].participants); got != n {
			t.Fatalf("n=%d: participants = %d, want %d", n, got, n)
		}
		for i := 1; i <= n; i++ {
			if !r.flaggedGarbage(ids.SiteID(i), 1) {
				t.Fatalf("n=%d: site %d inref not flagged", n, i)
			}
		}
		// Ring of n sites: E = n inter-site references, P = n sites.
		if calls := r.counters.Get("msg.BackCall"); calls != int64(n) {
			t.Fatalf("n=%d: calls = %d, want %d", n, calls, n)
		}
		if reports := r.counters.Get("msg.Report"); reports != int64(n-1) {
			t.Fatalf("n=%d: reports = %d, want %d", n, reports, n-1)
		}
	}
}

func TestLiveSuspectReturnsLive(t *testing.T) {
	// Site 2's inref is clean (distance 1): the back trace must return
	// Live and flag nothing.
	r := newRig(t, 1, 2)
	r.addSuspectInref(1, 1, 40, 2)
	r.addOutref(1, ids.MakeRef(2, 1), 41, 1)
	r.addSuspectInref(2, 1, 1, 1) // clean: distance 1 <= threshold 4
	r.addOutref(2, ids.MakeRef(1, 1), 40, 1)

	if _, ok := r.engines[1].StartTrace(ids.MakeRef(2, 1)); !ok {
		t.Fatal("no trace")
	}
	r.pump()
	if len(r.done) != 1 || r.done[0].outcome != msg.VerdictLive {
		t.Fatalf("completions = %+v, want one Live", r.done)
	}
	if r.flaggedGarbage(1, 1) || r.flaggedGarbage(2, 1) {
		t.Fatal("live trace flagged an inref as garbage")
	}
	if r.engines[1].PendingMarks() != 0 || r.engines[2].PendingMarks() != 0 {
		t.Fatal("visit marks not cleared after Live outcome")
	}
}

// TestFigure3Branching reproduces the paper's Figure 3: a back trace forks
// branches, one of which reaches clean iorefs (a long path from a root)
// while the other goes around the cycle; the trace must return Live.
func TestFigure3Branching(t *testing.T) {
	// Site 3 (R) holds inref c sourced from P(1) and Q(2).
	// P's outref for c has an inset leading to a CLEAN inref (the root
	// path); Q's outref for c leads around the suspected cycle.
	r := newRig(t, 1, 2, 3)
	// R: inref c = object 1, sources P and Q; initiating outref d -> own?
	// Start the trace from Q's outref to R to keep the shape simple.
	r.addSuspectInref(3, 1, 40, 1, 2)
	// P: outref for R:1 with inset {object 7}; inref 7 is CLEAN.
	r.addOutref(1, ids.MakeRef(3, 1), 41, 7)
	r.addSuspectInref(1, 7, 1, 3) // distance 1: clean
	// Q: outref for R:1 with inset {object 9}; inref 9 suspected, sourced
	// from R, whose outref is Q-side... close the cycle via R.
	r.addOutref(2, ids.MakeRef(3, 1), 41, 9)
	r.addSuspectInref(2, 9, 40, 3)
	r.addOutref(3, ids.MakeRef(2, 9), 41, 1)

	// Initiate at R from its outref to Q.
	if _, ok := r.engines[3].StartTrace(ids.MakeRef(2, 9)); !ok {
		t.Fatal("no trace")
	}
	r.pump()
	if len(r.done) != 1 || r.done[0].outcome != msg.VerdictLive {
		t.Fatalf("completions = %+v, want Live (root path wins)", r.done)
	}
	if r.flaggedGarbage(3, 1) || r.flaggedGarbage(2, 9) {
		t.Fatal("Live trace flagged inrefs")
	}
}

func TestStartTraceOnCleanOrMissingOutref(t *testing.T) {
	r := newRig(t, 1)
	if _, ok := r.engines[1].StartTrace(ids.MakeRef(2, 1)); ok {
		t.Fatal("trace started from missing outref")
	}
	r.addOutref(1, ids.MakeRef(2, 1), 2) // clean: distance 2 <= 4
	if _, ok := r.engines[1].StartTrace(ids.MakeRef(2, 1)); ok {
		t.Fatal("trace started from clean outref")
	}
}

func TestMissingInsetMeansGarbage(t *testing.T) {
	// A suspected outref with an empty inset: nothing locally reaches it,
	// so the call returns Garbage (the object holding it died).
	r := newRig(t, 1, 2)
	r.addSuspectInref(1, 1, 40, 2)
	r.addOutref(1, ids.MakeRef(2, 1), 41, 1)
	r.addSuspectInref(2, 1, 40, 1)
	r.addOutref(2, ids.MakeRef(1, 1), 40) // empty inset

	if _, ok := r.engines[1].StartTrace(ids.MakeRef(2, 1)); !ok {
		t.Fatal("no trace")
	}
	r.pump()
	if len(r.done) != 1 || r.done[0].outcome != msg.VerdictGarbage {
		t.Fatalf("completions = %+v, want Garbage", r.done)
	}
}

func TestDeletedOutrefDuringTraceReturnsGarbage(t *testing.T) {
	// The callee site has no outref for the reference (trimmed by its
	// collector): "its ioref must have been deleted by the garbage
	// collector; so the call returns Garbage".
	r := newRig(t, 1, 2)
	r.addSuspectInref(1, 1, 40, 2)
	r.addOutref(1, ids.MakeRef(2, 1), 41, 1)
	r.addSuspectInref(2, 1, 40, 1)
	// Site 2 has no outref back to site 1 at all; site 1's inref source
	// list still names site 2 (update message not yet processed).

	if _, ok := r.engines[1].StartTrace(ids.MakeRef(2, 1)); !ok {
		t.Fatal("no trace")
	}
	r.pump()
	if len(r.done) != 1 || r.done[0].outcome != msg.VerdictGarbage {
		t.Fatalf("completions = %+v, want Garbage", r.done)
	}
}

func TestBackThresholdRaisedOnVisit(t *testing.T) {
	r := newRig(t, 1, 2)
	r.buildRing(2, 40)
	o, _ := r.tables[1].Outref(ids.MakeRef(2, 1))
	in, _ := r.tables[1].Inref(1)
	beforeO, beforeIn := o.BackThreshold, in.BackThreshold

	r.engines[1].StartTrace(ids.MakeRef(2, 1))
	r.pump()

	if o.BackThreshold != beforeO+rigBump {
		t.Errorf("outref back threshold = %d, want %d", o.BackThreshold, beforeO+rigBump)
	}
	if in.BackThreshold != beforeIn+rigBump {
		t.Errorf("inref back threshold = %d, want %d", in.BackThreshold, beforeIn+rigBump)
	}
}

func TestShouldStartRespectsBackThreshold(t *testing.T) {
	r := newRig(t, 1, 2)
	// Distance 12 exceeds T2=10: should start.
	r.addSuspectInref(1, 1, 12, 2)
	r.addOutref(1, ids.MakeRef(2, 1), 12, 1)
	if !r.engines[1].ShouldStart(ids.MakeRef(2, 1)) {
		t.Fatal("ShouldStart = false for distance beyond T2")
	}
	// Distance 8 is suspected (> 4) but below T2: not yet.
	r.addOutref(1, ids.MakeRef(2, 2), 8)
	if r.engines[1].ShouldStart(ids.MakeRef(2, 2)) {
		t.Fatal("ShouldStart = true below the back threshold")
	}
	// Clean outref: never.
	r.addOutref(1, ids.MakeRef(2, 3), 2)
	if r.engines[1].ShouldStart(ids.MakeRef(2, 3)) {
		t.Fatal("ShouldStart = true for clean outref")
	}
	// Missing: never.
	if r.engines[1].ShouldStart(ids.MakeRef(9, 9)) {
		t.Fatal("ShouldStart = true for missing outref")
	}
}

func TestLiveSuspectStopsGeneratingTraces(t *testing.T) {
	// Section 4.3: "live suspects will stop generating back traces once
	// their back thresholds are above their distances."
	r := newRig(t, 1, 2)
	r.addSuspectInref(1, 1, 12, 2)
	r.addOutref(1, ids.MakeRef(2, 1), 13, 1)
	r.addSuspectInref(2, 1, 1, 1) // clean at site 2 -> Live outcome
	r.addOutref(2, ids.MakeRef(1, 1), 12, 1)

	starts := 0
	for i := 0; i < 5; i++ {
		if r.engines[1].ShouldStart(ids.MakeRef(2, 1)) {
			starts++
			r.engines[1].StartTrace(ids.MakeRef(2, 1))
			r.pump()
		}
	}
	if starts != 1 {
		t.Fatalf("live suspect generated %d traces, want exactly 1 (threshold rose)", starts)
	}
}

func TestCleanRuleForcesLive(t *testing.T) {
	// Pause delivery after site 1 sends its remote call, clean the inref
	// the trace is active on (as the transfer barrier would), then let
	// the Garbage reply arrive: the trace must still complete Live.
	r := newRig(t, 1, 2)
	r.buildRing(2, 40)

	r.engines[1].StartTrace(ids.MakeRef(2, 1))
	// Queue now holds the BackCall to site 2. The trace is active on
	// site 1's inref 1 (frame waiting for site 2's reply).
	in, _ := r.tables[1].Inref(1)
	in.Barrier = true
	r.engines[1].NotifyCleanedInref(1)

	if len(r.done) != 1 || r.done[0].outcome != msg.VerdictLive {
		t.Fatalf("completions = %+v, want immediate Live via clean rule", r.done)
	}
	r.pump() // late Garbage reply must be ignored harmlessly
	if len(r.done) != 1 {
		t.Fatalf("late reply produced extra completion: %+v", r.done)
	}
	if r.flaggedGarbage(1, 1) {
		t.Fatal("clean-rule Live trace flagged the inref")
	}
}

func TestCleanRuleOnOutref(t *testing.T) {
	r := newRig(t, 1, 2)
	r.buildRing(2, 40)
	// Make site 2 never answer, so site 1's frames stay active.
	r.engines[1].StartTrace(ids.MakeRef(2, 1))
	r.dropWhere(func(e msg.Envelope) bool { return e.To == 2 })

	o, _ := r.tables[1].Outref(ids.MakeRef(2, 1))
	o.Barrier = true
	r.engines[1].NotifyCleanedOutref(ids.MakeRef(2, 1))
	if len(r.done) != 1 || r.done[0].outcome != msg.VerdictLive {
		t.Fatalf("completions = %+v, want Live via outref clean rule", r.done)
	}
}

func TestCallTimeoutAssumesLive(t *testing.T) {
	r := newRig(t, 1, 2)
	r.buildRing(2, 40)
	r.engines[1].StartTrace(ids.MakeRef(2, 1))
	// Lose the call to site 2 entirely.
	r.dropWhere(func(e msg.Envelope) bool { return e.To == 2 })
	r.pump()
	if len(r.done) != 0 {
		t.Fatal("trace completed without reply or timeout")
	}

	r.now = r.now.Add(2 * time.Minute) // beyond CallTimeout
	r.engines[1].CheckTimeouts()
	r.pump()
	if len(r.done) != 1 || r.done[0].outcome != msg.VerdictLive {
		t.Fatalf("completions = %+v, want Live after call timeout", r.done)
	}
	if r.engines[1].ActiveFrames() != 0 {
		t.Fatal("frames leaked after timeout")
	}
}

func TestReportLossHandledByTimeout(t *testing.T) {
	r := newRig(t, 1, 2)
	r.buildRing(2, 40)
	r.engines[1].StartTrace(ids.MakeRef(2, 1))

	// Deliver everything except Report messages.
	for {
		idx := -1
		for i, env := range r.queue {
			if _, isReport := env.M.(msg.Report); !isReport {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		env := r.queue[idx]
		r.queue = append(r.queue[:idx], r.queue[idx+1:]...)
		r.deliver(env)
	}
	dropped := r.dropWhere(func(e msg.Envelope) bool {
		_, isReport := e.M.(msg.Report)
		return isReport
	})
	if dropped == 0 {
		t.Fatal("expected a Report message to drop")
	}
	if r.engines[2].PendingMarks() == 0 {
		t.Fatal("site 2 should still hold visit marks (report lost)")
	}

	// Site 2 times out waiting for the outcome and assumes Live: marks
	// cleared, inref NOT flagged (conservative), so a future trace can
	// still confirm the garbage.
	r.now = r.now.Add(10 * time.Minute)
	r.engines[2].CheckTimeouts()
	if r.engines[2].PendingMarks() != 0 {
		t.Fatal("marks not cleared by report timeout")
	}
	if r.flaggedGarbage(2, 1) {
		t.Fatal("report timeout must assume Live, not Garbage")
	}
	// The initiator completed Garbage and flagged its own inref.
	if !r.flaggedGarbage(1, 1) {
		t.Fatal("initiator should have flagged its inref")
	}
}

func TestConcurrentBackTracesOnSameCycle(t *testing.T) {
	// Two traces started at both sites of the same cycle (Section 4.7):
	// both must terminate; at least one confirms Garbage; all marks are
	// released; flagging is idempotent.
	r := newRig(t, 1, 2)
	r.buildRing(2, 40)

	r.engines[1].StartTrace(ids.MakeRef(2, 1))
	r.engines[2].StartTrace(ids.MakeRef(1, 1))
	r.pump()

	if len(r.done) != 2 {
		t.Fatalf("completions = %d, want 2", len(r.done))
	}
	garbage := 0
	for _, c := range r.done {
		if c.outcome == msg.VerdictGarbage {
			garbage++
		}
	}
	if garbage == 0 {
		t.Fatal("neither concurrent trace confirmed the garbage cycle")
	}
	if !r.flaggedGarbage(1, 1) || !r.flaggedGarbage(2, 1) {
		t.Fatal("cycle not fully flagged after concurrent traces")
	}
	for s, e := range r.engines {
		if e.ActiveFrames() != 0 || e.PendingMarks() != 0 {
			t.Errorf("site %v: leaked frames/marks", s)
		}
	}
}

func TestConcurrentTracesInterleaved(t *testing.T) {
	// Strictly alternate message delivery between two concurrent traces
	// to exercise interleaving rather than back-to-back execution.
	r := newRig(t, 1, 2, 3)
	r.buildRing(3, 40)

	r.engines[1].StartTrace(ids.MakeRef(2, 1))
	r.engines[2].StartTrace(ids.MakeRef(3, 1))

	for len(r.queue) > 0 {
		// Deliver the LAST queued message first to scramble ordering.
		env := r.queue[len(r.queue)-1]
		r.queue = r.queue[:len(r.queue)-1]
		r.deliver(env)
	}

	if len(r.done) != 2 {
		t.Fatalf("completions = %d, want 2", len(r.done))
	}
	if !r.flaggedGarbage(1, 1) || !r.flaggedGarbage(2, 1) || !r.flaggedGarbage(3, 1) {
		t.Fatal("3-site cycle not fully flagged")
	}
}

func TestSecondTraceAfterFlaggingIsHarmless(t *testing.T) {
	// A trace that runs after the cycle was flagged (but before local
	// traces deleted it) must not crash or unflag anything.
	r := newRig(t, 1, 2)
	r.buildRing(2, 40)
	r.engines[1].StartTrace(ids.MakeRef(2, 1))
	r.pump()
	if !r.flaggedGarbage(1, 1) {
		t.Fatal("setup: cycle not flagged")
	}
	r.engines[2].StartTrace(ids.MakeRef(1, 1))
	r.pump()
	if !r.flaggedGarbage(1, 1) || !r.flaggedGarbage(2, 1) {
		t.Fatal("flags lost after second trace")
	}
}

func TestRevisitWithinOneTraceReturnsGarbage(t *testing.T) {
	// A diamond: initiator's outref inset has two inrefs whose source
	// outrefs converge on one upstream inref. The second branch to reach
	// the shared inref must get Garbage (already visited) while the
	// whole trace still terminates correctly.
	r := newRig(t, 1, 2)
	// Site 1: inrefs 11 and 12, both sourced from site 2.
	r.addSuspectInref(1, 11, 40, 2)
	r.addSuspectInref(1, 12, 40, 2)
	// Site 2: outrefs to both, each with inset {21}; inref 21 sourced
	// from site 1, whose outref closes the cycle with inset {11, 12}.
	r.addOutref(2, ids.MakeRef(1, 11), 41, 21)
	r.addOutref(2, ids.MakeRef(1, 12), 41, 21)
	r.addSuspectInref(2, 21, 40, 1)
	r.addOutref(1, ids.MakeRef(2, 21), 41, 11, 12)

	if _, ok := r.engines[1].StartTrace(ids.MakeRef(2, 21)); !ok {
		t.Fatal("no trace")
	}
	r.pump()
	if len(r.done) != 1 || r.done[0].outcome != msg.VerdictGarbage {
		t.Fatalf("completions = %+v, want Garbage", r.done)
	}
	for _, obj := range []ids.ObjID{11, 12} {
		if !r.flaggedGarbage(1, obj) {
			t.Errorf("inref %v not flagged", obj)
		}
	}
	if !r.flaggedGarbage(2, 21) {
		t.Error("inref 21 not flagged")
	}
}

// TestIorefDeletedWhileAnotherTraceActive is the case Boyapati pointed out
// (paper acknowledgements, fixed in Section 4.7): one trace confirms
// garbage and the collector deletes iorefs while a second trace still has
// an activation frame on them. The frame's explicit return information
// must let the second trace complete cleanly.
func TestIorefDeletedWhileAnotherTraceActive(t *testing.T) {
	r := newRig(t, 1, 2)
	r.buildRing(2, 40)

	// Trace A confirms the cycle.
	r.engines[1].StartTrace(ids.MakeRef(2, 1))
	r.pump()
	if len(r.done) != 1 || r.done[0].outcome != msg.VerdictGarbage {
		t.Fatalf("setup: %+v", r.done)
	}

	// Trace B starts from site 2 and becomes active on site 2's iorefs,
	// waiting on a call to site 1.
	r.engines[2].StartTrace(ids.MakeRef(1, 1))
	if r.engines[2].ActiveFrames() == 0 {
		t.Fatal("trace B not active")
	}

	// Site 2's local trace now deletes the flagged cycle state while B's
	// frames are active on it (the deletion trace A's outcome caused).
	r.tables[2].RemoveInref(1)
	r.tables[2].RemoveOutref(ids.MakeRef(1, 1))

	// Deliver B's outstanding messages: replies route by frame id, not by
	// ioref, so B completes without touching the deleted entries.
	r.pump()
	if len(r.done) != 2 {
		t.Fatalf("trace B did not complete: %+v", r.done)
	}
	for s, e := range r.engines {
		if e.ActiveFrames() != 0 {
			t.Errorf("site %v: frames leaked", s)
		}
		if e.PendingMarks() != 0 {
			t.Errorf("site %v: marks leaked", s)
		}
	}
}

func TestRemoteStepRemoteCall(t *testing.T) {
	// The engine accepts StepRemote calls from remote sites too (our own
	// traces only send StepLocal across the wire, but the message shape
	// supports both directions).
	r := newRig(t, 1, 2)
	r.buildRing(2, 40)
	r.engines[1].HandleBackCall(2, msg.BackCall{
		Trace:     ids.TraceID{Initiator: 2, Seq: 1},
		Caller:    ids.FrameID{Site: 2, Seq: 7},
		Initiator: 2,
		Kind:      msg.StepRemote,
		Inref:     1,
	})
	// Site 1's inref 1 is suspected with source {2}: the call fans a
	// StepLocal back to site 2 and a frame waits.
	if r.engines[1].ActiveFrames() != 1 {
		t.Fatalf("frames = %d, want 1", r.engines[1].ActiveFrames())
	}
	if len(r.queue) != 1 {
		t.Fatalf("queue = %d messages, want the StepLocal call", len(r.queue))
	}
	call, ok := r.queue[0].M.(msg.BackCall)
	if !ok || call.Kind != msg.StepLocal || call.Outref != ids.MakeRef(1, 1) {
		t.Fatalf("unexpected outbound call: %+v", r.queue[0])
	}
}

func TestLateReplyToFinishedFrameIgnored(t *testing.T) {
	r := newRig(t, 1)
	// A reply for a frame that never existed must be a no-op.
	r.engines[1].HandleBackReply(2, msg.BackReply{
		Trace:  ids.TraceID{Initiator: 2, Seq: 9},
		Caller: ids.FrameID{Site: 1, Seq: 999},
		Result: msg.VerdictLive,
	})
	if len(r.done) != 0 || r.engines[1].ActiveFrames() != 0 {
		t.Fatal("stray reply had an effect")
	}
}

func TestReportForUnknownTraceIgnored(t *testing.T) {
	r := newRig(t, 1)
	r.engines[1].HandleReport(2, msg.Report{
		Trace:   ids.TraceID{Initiator: 2, Seq: 9},
		Outcome: msg.VerdictGarbage,
	})
	if r.engines[1].PendingMarks() != 0 {
		t.Fatal("stray report had an effect")
	}
}

func TestGarbageOutcomeCounters(t *testing.T) {
	r := newRig(t, 1, 2)
	r.buildRing(2, 40)
	r.engines[1].StartTrace(ids.MakeRef(2, 1))
	r.pump()
	if r.counters.Get(metrics.BackTracesStarted) != 1 {
		t.Error("started counter wrong")
	}
	if r.counters.Get(metrics.BackTracesGarbage) != 1 {
		t.Error("garbage outcome counter wrong")
	}
	if r.counters.Get(metrics.InrefsFlagged) != 2 {
		t.Errorf("flagged counter = %d, want 2", r.counters.Get(metrics.InrefsFlagged))
	}
}

// Package wire defines the codec boundary of the transports: how an
// in-memory msg.Envelope becomes bytes on a link and back.
//
// One codec implements the boundary: Binary, the hand-rolled, versioned
// binary encoding — one tag byte per message type, varint-packed
// identifiers and distances, no per-frame type dictionaries. The original
// encoding/gob codec was deprecated in the release that introduced Binary
// and has since been removed; its format byte (0x00) stays permanently
// reserved so a gob frame from an old peer is rejected with a clear error
// rather than misparsed.
//
// Every encoded frame begins with a one-byte format version, so a receiver
// can decode a mixed stream without out-of-band negotiation: DecodeAny
// dispatches on that byte. Unknown versions are an error, never a guess —
// a future format bump is detected, not misparsed.
package wire

import (
	"fmt"
	"sync"

	"backtrace/internal/msg"
)

// Frame format versions: the first byte of every encoded frame.
const (
	// VersionGob marked a frame in the removed encoding/gob format. The
	// byte stays reserved forever: it must never be reassigned, so a
	// stale gob frame is always rejected rather than misparsed.
	VersionGob = 0x00
	// VersionBinary marks a frame in this package's binary layout.
	VersionBinary = 0x01
)

// Codec converts envelopes to framed bytes and back. Implementations must
// be safe for concurrent use: one codec value is shared by every link of a
// transport.
//
// Encode appends the encoded frame to buf (which may be nil or recycled via
// GetBuffer/PutBuffer) and returns the extended slice, so steady-state
// encoding performs no allocations. Decode must not retain data: envelopes
// returned from Decode own their memory.
type Codec interface {
	// Name identifies the codec for flags, metrics, and logs.
	Name() string
	// Encode appends env's frame to buf and returns the result.
	Encode(env *msg.Envelope, buf []byte) ([]byte, error)
	// Decode parses one frame produced by this codec's Encode.
	Decode(data []byte) (msg.Envelope, error)
}

// Binary is the default codec: the versioned binary layout of this package.
type Binary struct{}

// ByName returns the codec registered under name: "binary" (the empty
// string selects the default, binary).
func ByName(name string) (Codec, error) {
	switch name {
	case "", "binary":
		return Binary{}, nil
	case "gob":
		return nil, fmt.Errorf("wire: the gob codec was removed; use binary")
	default:
		return nil, fmt.Errorf("wire: unknown codec %q (want binary)", name)
	}
}

// DecodeAny decodes a frame produced by any known codec, dispatching on the
// leading version byte. Transports use it on the receive path so peers
// running different codecs interoperate during a migration.
func DecodeAny(data []byte) (msg.Envelope, error) {
	if len(data) == 0 {
		return msg.Envelope{}, fmt.Errorf("wire: empty frame")
	}
	switch data[0] {
	case VersionGob:
		return msg.Envelope{}, fmt.Errorf("wire: frame version 0x00 (gob) is no longer supported; the sender must upgrade to the binary codec")
	case VersionBinary:
		return Binary{}.Decode(data)
	default:
		return msg.Envelope{}, fmt.Errorf("wire: unknown frame version 0x%02x", data[0])
	}
}

// bufPool recycles encode buffers so the steady-state encode path does not
// allocate. Buffers grow to the largest frame they have carried and are
// reused at that capacity.
var bufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// GetBuffer returns an empty buffer from the pool. Pass it to
// Codec.Encode and return the result to PutBuffer when the frame has been
// written out.
func GetBuffer() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuffer recycles a buffer obtained from GetBuffer (possibly grown by
// Encode). The caller must not use b afterwards.
func PutBuffer(b []byte) {
	bufPool.Put(&b)
}

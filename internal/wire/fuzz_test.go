package wire

import (
	"math/rand"
	"reflect"
	"testing"

	"backtrace/internal/ids"
	"backtrace/internal/msg"
)

// FuzzRoundTrip checks decode(encode(m)) == m for every message type under
// the binary codec. The fuzzer drives a structured generator: tag selects
// the message type (wrapped into range), seed the field values, so coverage
// spans all thirteen types — including nested wrappers and the batched-trace
// extended forms of BackCall/BackReply/Report.
func FuzzRoundTrip(f *testing.F) {
	for tag := 1; tag <= 13; tag++ {
		f.Add(int64(tag), uint8(tag))
	}
	bin := Binary{}
	f.Fuzz(func(t *testing.T, seed int64, tag uint8) {
		rng := rand.New(rand.NewSource(seed))
		env := msg.Envelope{
			From: 1 + ids.SiteID(rng.Intn(1<<16)),
			To:   1 + ids.SiteID(rng.Intn(1<<16)),
			M:    randMessage(rng, int(tag)%13+1, 0),
		}
		frame, err := bin.Encode(&env, nil)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := bin.Decode(frame)
		if err != nil {
			t.Fatalf("decode own frame (%s): %v", msg.Name(env.M), err)
		}
		if !reflect.DeepEqual(got, env) {
			t.Fatalf("round trip (%s):\n got %#v\nwant %#v", msg.Name(env.M), got, env)
		}
		// Version dispatch must agree with the direct decode.
		any, err := DecodeAny(frame)
		if err != nil || !reflect.DeepEqual(any, env) {
			t.Fatalf("DecodeAny = (%#v, %v), want (%#v, nil)", any, err, env)
		}
	})
}

// FuzzDecodeAny feeds arbitrary bytes to the frame decoder: it must reject
// or accept, never panic, over-allocate, or loop — a transport decodes
// peer-controlled input.
func FuzzDecodeAny(f *testing.F) {
	env := msg.Envelope{From: 1, To: 2, M: exemplarUpdate()}
	bin, _ := (Binary{}).Encode(&env, nil)
	f.Add(bin)
	f.Add([]byte{VersionGob, 0x01, 0x02}) // reserved gob version: must reject
	f.Add([]byte{VersionBinary, 1, 2, tagBatch, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeAny(data)
		if err == nil && env.M == nil {
			t.Fatalf("DecodeAny accepted a frame with no message: % x", data)
		}
	})
}

func exemplarUpdate() msg.Message {
	return msg.Update{
		Removals:  []ids.ObjID{3, 5},
		Distances: []msg.DistanceUpdate{{Obj: 9, Distance: 4}},
		Holds:     []ids.ObjID{1},
	}
}

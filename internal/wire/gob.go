package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"backtrace/internal/msg"
)

// GobCodec is the original encoding/gob transport encoding, framed with the
// VersionGob byte so it participates in DecodeAny version dispatch. Every
// frame is a self-contained gob stream (its own type dictionary), which is
// exactly why it is slow and fat on the hot path — the dictionary is
// re-sent per message.
//
// Deprecated: GobCodec exists for one release as a migration fallback
// (cluster.Options.Codec / -codec gob). New deployments use Binary.
type GobCodec struct{}

// NewGobCodec returns the deprecated gob codec, registering the message
// types with gob on first use.
func NewGobCodec() GobCodec {
	msg.RegisterGob()
	return GobCodec{}
}

// Name implements Codec.
func (GobCodec) Name() string { return "gob" }

// Encode implements Codec: a VersionGob byte followed by a self-contained
// gob stream of the envelope, appended to buf.
func (GobCodec) Encode(env *msg.Envelope, buf []byte) ([]byte, error) {
	w := gobBufPool.Get().(*bytes.Buffer)
	w.Reset()
	if err := gob.NewEncoder(w).Encode(env); err != nil {
		gobBufPool.Put(w)
		return nil, fmt.Errorf("wire: gob codec: %w", err)
	}
	buf = append(buf, VersionGob)
	buf = append(buf, w.Bytes()...)
	gobBufPool.Put(w)
	return buf, nil
}

// Decode implements Codec.
func (GobCodec) Decode(data []byte) (msg.Envelope, error) {
	return gobDecode(data)
}

func gobDecode(data []byte) (msg.Envelope, error) {
	if len(data) == 0 || data[0] != VersionGob {
		return msg.Envelope{}, fmt.Errorf("wire: gob codec: missing VersionGob frame byte")
	}
	var env msg.Envelope
	if err := gob.NewDecoder(bytes.NewReader(data[1:])).Decode(&env); err != nil {
		return msg.Envelope{}, fmt.Errorf("wire: gob codec: %w", err)
	}
	if env.M == nil {
		// gob happily decodes an envelope whose interface field was never
		// set; a frame carrying no message is invalid on any transport.
		return msg.Envelope{}, fmt.Errorf("wire: gob codec: frame has no message")
	}
	return env, nil
}

var gobBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func init() {
	// DecodeAny must be able to parse VersionGob frames even if no GobCodec
	// was ever constructed in this process (a binary-codec node receiving
	// from a gob-codec peer mid-migration).
	msg.RegisterGob()
}

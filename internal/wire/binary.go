package wire

import (
	"encoding/binary"
	"fmt"

	"backtrace/internal/ids"
	"backtrace/internal/msg"
)

// Binary frame layout (version 1):
//
//	frame   := version(1B = 0x01) | from(uvarint) | to(uvarint) | message
//	message := tag(1B) | payload
//
// Site ids, object ids, sequence numbers, and collection lengths are
// unsigned LEB128 varints (encoding/binary Uvarint); distances are zigzag
// varints because the infinity sentinel and deltas may be large but typical
// values are tiny. References are (site, obj) uvarint pairs; trace and
// frame ids are (site, seq) pairs. Wrapper messages (Batch, LinkData,
// LinkBatch) nest the inner message encoding recursively.
//
// The layout has no per-frame type dictionary or field names — the tag byte
// alone selects the payload shape — which is what buys the size and speed
// advantage over gob. Evolving a message therefore REQUIRES a new tag or a
// version bump; see docs/WIRE.md.

// Message tags. Appending a type is fine; renumbering is a version bump.
//
// Tags 14-16 are the batched-trace extensions of BackCall/BackReply/Report
// (suspect index, dependency set, garbage-suspect set). The encoder picks
// the extended tag only when one of the new fields is set, so single-
// suspect traffic stays byte-identical to the pre-batching format and old
// goldens remain exact; decoders accept both forms.
const (
	tagRefTransfer = 1
	tagInsert      = 2
	tagInsertAck   = 3
	tagReleasePin  = 4
	tagUpdate      = 5
	tagBackCall    = 6
	tagBackReply   = 7
	tagReport      = 8
	tagBatch       = 9
	tagLinkData    = 10
	tagLinkAck     = 11
	tagLinkReset   = 12
	tagLinkBatch   = 13
	tagBackCallB   = 14 // BackCall + suspect index
	tagBackReplyB  = 15 // BackReply + dependency suspects
	tagReportB     = 16 // Report + garbage-suspect set
)

// maxNest bounds wrapper recursion when decoding. Legitimate traffic nests
// at most three levels (LinkBatch > LinkData payload > Batch > protocol
// message); the bound exists so a corrupt or adversarial frame cannot
// recurse unboundedly.
const maxNest = 8

// Name implements Codec.
func (Binary) Name() string { return "binary" }

// Encode implements Codec: it appends the version-1 binary frame for env to
// buf and returns the extended slice. It never fails for messages built
// from the msg package's closed type set.
func (Binary) Encode(env *msg.Envelope, buf []byte) ([]byte, error) {
	buf = append(buf, VersionBinary)
	buf = binary.AppendUvarint(buf, uint64(env.From))
	buf = binary.AppendUvarint(buf, uint64(env.To))
	return appendMessage(buf, env.M)
}

// Decode implements Codec.
func (Binary) Decode(data []byte) (msg.Envelope, error) {
	r := reader{b: data}
	if v := r.byte(); v != VersionBinary {
		if r.err != nil {
			return msg.Envelope{}, r.err
		}
		return msg.Envelope{}, fmt.Errorf("wire: binary codec: frame version 0x%02x, want 0x%02x", v, VersionBinary)
	}
	var env msg.Envelope
	env.From = ids.SiteID(r.uvarint())
	env.To = ids.SiteID(r.uvarint())
	env.M = r.message(0)
	if r.err != nil {
		return msg.Envelope{}, r.err
	}
	if r.off != len(r.b) {
		return msg.Envelope{}, fmt.Errorf("wire: binary codec: %d trailing bytes after frame", len(r.b)-r.off)
	}
	return env, nil
}

// --- encoding -----------------------------------------------------------

func appendRef(buf []byte, r ids.Ref) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.Site))
	return binary.AppendUvarint(buf, uint64(r.Obj))
}

func appendTrace(buf []byte, t ids.TraceID) []byte {
	buf = binary.AppendUvarint(buf, uint64(t.Initiator))
	return binary.AppendUvarint(buf, t.Seq)
}

func appendFrame(buf []byte, f ids.FrameID) []byte {
	buf = binary.AppendUvarint(buf, uint64(f.Site))
	return binary.AppendUvarint(buf, f.Seq)
}

func appendObjIDs(buf []byte, objs []ids.ObjID) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(objs)))
	for _, obj := range objs {
		buf = binary.AppendUvarint(buf, uint64(obj))
	}
	return buf
}

func appendMessage(buf []byte, m msg.Message) ([]byte, error) {
	var err error
	switch mm := m.(type) {
	case msg.RefTransfer:
		buf = append(buf, tagRefTransfer)
		buf = appendRef(buf, mm.Payload)
		buf = binary.AppendUvarint(buf, uint64(mm.Pinner))
	case msg.Insert:
		buf = append(buf, tagInsert)
		buf = appendRef(buf, mm.Target)
		buf = binary.AppendUvarint(buf, uint64(mm.Holder))
		buf = binary.AppendUvarint(buf, uint64(mm.Pinner))
	case msg.InsertAck:
		buf = append(buf, tagInsertAck)
		buf = appendRef(buf, mm.Target)
	case msg.ReleasePin:
		buf = append(buf, tagReleasePin)
		buf = appendRef(buf, mm.Target)
	case msg.Update:
		buf = append(buf, tagUpdate)
		buf = appendObjIDs(buf, mm.Removals)
		buf = binary.AppendUvarint(buf, uint64(len(mm.Distances)))
		for _, du := range mm.Distances {
			buf = binary.AppendUvarint(buf, uint64(du.Obj))
			buf = binary.AppendVarint(buf, int64(du.Distance))
		}
		buf = appendObjIDs(buf, mm.Holds)
	case msg.BackCall:
		if mm.Suspect != 0 {
			buf = append(buf, tagBackCallB)
		} else {
			buf = append(buf, tagBackCall)
		}
		buf = appendTrace(buf, mm.Trace)
		buf = appendFrame(buf, mm.Caller)
		buf = binary.AppendUvarint(buf, uint64(mm.Initiator))
		buf = append(buf, byte(mm.Kind))
		buf = binary.AppendUvarint(buf, uint64(mm.Inref))
		buf = appendRef(buf, mm.Outref)
		if mm.Suspect != 0 {
			buf = binary.AppendUvarint(buf, uint64(mm.Suspect))
		}
	case msg.BackReply:
		extended := len(mm.Deps) > 0
		if extended {
			buf = append(buf, tagBackReplyB)
		} else {
			buf = append(buf, tagBackReply)
		}
		buf = appendTrace(buf, mm.Trace)
		buf = appendFrame(buf, mm.Caller)
		buf = append(buf, byte(mm.Result))
		buf = binary.AppendUvarint(buf, uint64(len(mm.Participants)))
		for _, p := range mm.Participants {
			buf = binary.AppendUvarint(buf, uint64(p))
		}
		if extended {
			buf = binary.AppendUvarint(buf, uint64(len(mm.Deps)))
			for _, d := range mm.Deps {
				buf = binary.AppendUvarint(buf, uint64(d))
			}
		}
	case msg.Report:
		extended := mm.GarbageSuspects != nil
		if extended {
			buf = append(buf, tagReportB)
		} else {
			buf = append(buf, tagReport)
		}
		buf = appendTrace(buf, mm.Trace)
		buf = append(buf, byte(mm.Outcome))
		if extended {
			buf = binary.AppendUvarint(buf, uint64(len(mm.GarbageSuspects)))
			for _, g := range mm.GarbageSuspects {
				buf = binary.AppendUvarint(buf, uint64(g))
			}
		}
	case msg.Batch:
		buf = append(buf, tagBatch)
		buf = binary.AppendUvarint(buf, uint64(len(mm.Items)))
		for _, item := range mm.Items {
			if buf, err = appendMessage(buf, item); err != nil {
				return nil, err
			}
		}
	case msg.LinkData:
		buf = append(buf, tagLinkData)
		buf = binary.AppendUvarint(buf, mm.Epoch)
		buf = binary.AppendUvarint(buf, mm.Seq)
		if buf, err = appendMessage(buf, mm.Payload); err != nil {
			return nil, err
		}
	case msg.LinkAck:
		buf = append(buf, tagLinkAck)
		buf = binary.AppendUvarint(buf, mm.Epoch)
		buf = binary.AppendUvarint(buf, mm.Cum)
		buf = binary.AppendUvarint(buf, mm.Inc)
	case msg.LinkReset:
		buf = append(buf, tagLinkReset)
		buf = binary.AppendUvarint(buf, mm.Epoch)
	case msg.LinkBatch:
		buf = append(buf, tagLinkBatch)
		buf = binary.AppendUvarint(buf, mm.Epoch)
		buf = binary.AppendUvarint(buf, mm.Base)
		buf = binary.AppendUvarint(buf, mm.AckEpoch)
		buf = binary.AppendUvarint(buf, mm.AckCum)
		buf = binary.AppendUvarint(buf, mm.AckInc)
		buf = binary.AppendUvarint(buf, uint64(len(mm.Items)))
		for _, item := range mm.Items {
			if buf, err = appendMessage(buf, item); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("wire: binary codec: cannot encode %T", m)
	}
	return buf, nil
}

// --- decoding -----------------------------------------------------------

// reader is a cursor over one frame with a sticky error, so decode code
// reads fields linearly and checks failure once at the end.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: binary codec: "+format, args...)
	}
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated frame at byte %d", r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at byte %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at byte %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads a collection length and rejects values that could not fit in
// the remaining bytes (each element takes at least one byte), so a corrupt
// length cannot trigger a huge allocation.
func (r *reader) count() int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("collection length %d exceeds remaining %d bytes", n, len(r.b)-r.off)
		return 0
	}
	return int(n)
}

func (r *reader) ref() ids.Ref {
	site := ids.SiteID(r.uvarint())
	obj := ids.ObjID(r.uvarint())
	return ids.Ref{Site: site, Obj: obj}
}

func (r *reader) trace() ids.TraceID {
	site := ids.SiteID(r.uvarint())
	seq := r.uvarint()
	return ids.TraceID{Initiator: site, Seq: seq}
}

func (r *reader) frame() ids.FrameID {
	site := ids.SiteID(r.uvarint())
	seq := r.uvarint()
	return ids.FrameID{Site: site, Seq: seq}
}

func (r *reader) objIDs() []ids.ObjID {
	n := r.count()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]ids.ObjID, n)
	for i := range out {
		out[i] = ids.ObjID(r.uvarint())
	}
	return out
}

func (r *reader) message(depth int) msg.Message {
	if r.err != nil {
		return nil
	}
	if depth > maxNest {
		r.fail("message nesting deeper than %d", maxNest)
		return nil
	}
	switch tag := r.byte(); tag {
	case tagRefTransfer:
		return msg.RefTransfer{Payload: r.ref(), Pinner: ids.SiteID(r.uvarint())}
	case tagInsert:
		return msg.Insert{Target: r.ref(), Holder: ids.SiteID(r.uvarint()), Pinner: ids.SiteID(r.uvarint())}
	case tagInsertAck:
		return msg.InsertAck{Target: r.ref()}
	case tagReleasePin:
		return msg.ReleasePin{Target: r.ref()}
	case tagUpdate:
		var u msg.Update
		u.Removals = r.objIDs()
		if n := r.count(); n > 0 && r.err == nil {
			u.Distances = make([]msg.DistanceUpdate, n)
			for i := range u.Distances {
				u.Distances[i].Obj = ids.ObjID(r.uvarint())
				u.Distances[i].Distance = int(r.varint())
			}
		}
		u.Holds = r.objIDs()
		return u
	case tagBackCall, tagBackCallB:
		c := msg.BackCall{
			Trace:     r.trace(),
			Caller:    r.frame(),
			Initiator: ids.SiteID(r.uvarint()),
			Kind:      msg.StepKind(r.byte()),
			Inref:     ids.ObjID(r.uvarint()),
			Outref:    r.ref(),
		}
		if tag == tagBackCallB {
			c.Suspect = uint32(r.uvarint())
		}
		return c
	case tagBackReply, tagBackReplyB:
		rep := msg.BackReply{
			Trace:  r.trace(),
			Caller: r.frame(),
			Result: msg.Verdict(r.byte()),
		}
		if n := r.count(); n > 0 && r.err == nil {
			rep.Participants = make([]ids.SiteID, n)
			for i := range rep.Participants {
				rep.Participants[i] = ids.SiteID(r.uvarint())
			}
		}
		if tag == tagBackReplyB {
			if n := r.count(); n > 0 && r.err == nil {
				rep.Deps = make([]uint32, n)
				for i := range rep.Deps {
					rep.Deps[i] = uint32(r.uvarint())
				}
			}
		}
		return rep
	case tagReport:
		return msg.Report{Trace: r.trace(), Outcome: msg.Verdict(r.byte())}
	case tagReportB:
		rep := msg.Report{Trace: r.trace(), Outcome: msg.Verdict(r.byte())}
		n := r.count()
		if r.err == nil {
			// Non-nil even when empty: the extended tag means the batch
			// form, whose semantics differ from the nil flag-all form.
			rep.GarbageSuspects = make([]uint32, n)
			for i := range rep.GarbageSuspects {
				rep.GarbageSuspects[i] = uint32(r.uvarint())
			}
		}
		return rep
	case tagBatch:
		var b msg.Batch
		if n := r.count(); n > 0 && r.err == nil {
			b.Items = make([]msg.Message, n)
			for i := range b.Items {
				b.Items[i] = r.message(depth + 1)
			}
		}
		return b
	case tagLinkData:
		return msg.LinkData{
			Epoch:   r.uvarint(),
			Seq:     r.uvarint(),
			Payload: r.message(depth + 1),
		}
	case tagLinkAck:
		return msg.LinkAck{Epoch: r.uvarint(), Cum: r.uvarint(), Inc: r.uvarint()}
	case tagLinkReset:
		return msg.LinkReset{Epoch: r.uvarint()}
	case tagLinkBatch:
		lb := msg.LinkBatch{
			Epoch:    r.uvarint(),
			Base:     r.uvarint(),
			AckEpoch: r.uvarint(),
			AckCum:   r.uvarint(),
			AckInc:   r.uvarint(),
		}
		if n := r.count(); n > 0 && r.err == nil {
			lb.Items = make([]msg.Message, n)
			for i := range lb.Items {
				lb.Items[i] = r.message(depth + 1)
			}
		}
		return lb
	default:
		r.fail("unknown message tag %d at byte %d", tag, r.off-1)
		return nil
	}
}

package wire

import (
	"testing"

	"backtrace/internal/msg"
)

// benchMix is the protocol mix the benchmarks push through each codec: one
// envelope per message type (see exemplars), which is also what the C17a
// experiment measures.
func benchMix() []msg.Envelope {
	ms := exemplars()
	envs := make([]msg.Envelope, len(ms))
	for i, m := range ms {
		envs[i] = msg.Envelope{From: 3, To: 9, M: m}
	}
	return envs
}

func benchCodecs() map[string]Codec {
	return map[string]Codec{"binary": Binary{}}
}

// BenchmarkWireEncode: frames marshalled per codec. b.N counts individual
// messages, so ns/op and allocs/op are per message across the mix.
func BenchmarkWireEncode(b *testing.B) {
	mix := benchMix()
	for name, c := range benchCodecs() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var bytes int64
			for i := 0; i < b.N; i++ {
				env := &mix[i%len(mix)]
				buf := GetBuffer()
				frame, err := c.Encode(env, buf)
				if err != nil {
					b.Fatal(err)
				}
				bytes += int64(len(frame))
				PutBuffer(frame)
			}
			b.SetBytes(bytes / int64(b.N))
		})
	}
}

// BenchmarkWireDecode: frames parsed per codec (pre-encoded outside the
// timed loop).
func BenchmarkWireDecode(b *testing.B) {
	mix := benchMix()
	for name, c := range benchCodecs() {
		frames := make([][]byte, len(mix))
		for i := range mix {
			frame, err := c.Encode(&mix[i], nil)
			if err != nil {
				b.Fatal(err)
			}
			frames[i] = frame
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Decode(frames[i%len(frames)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireRoundTrip is the headline number: encode+decode per message,
// the full cost a frame pays crossing a transport.
func BenchmarkWireRoundTrip(b *testing.B) {
	mix := benchMix()
	for name, c := range benchCodecs() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				env := &mix[i%len(mix)]
				buf := GetBuffer()
				frame, err := c.Encode(env, buf)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Decode(frame); err != nil {
					b.Fatal(err)
				}
				PutBuffer(frame)
			}
		})
	}
}

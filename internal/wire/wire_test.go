package wire

import (
	"math/rand"
	"reflect"
	"testing"

	"backtrace/internal/ids"
	"backtrace/internal/msg"
)

// exemplars returns one representative value per message type, with every
// field populated away from its zero value so an encoding that drops or
// reorders a field cannot round-trip.
func exemplars() []msg.Message {
	return []msg.Message{
		msg.RefTransfer{Payload: ids.MakeRef(3, 77), Pinner: 2},
		msg.Insert{Target: ids.MakeRef(4, 1005), Holder: 3, Pinner: 2},
		msg.InsertAck{Target: ids.MakeRef(4, 1005)},
		msg.ReleasePin{Target: ids.MakeRef(1, 9)},
		msg.Update{
			Removals: []ids.ObjID{5, 9, 1 << 40},
			Distances: []msg.DistanceUpdate{
				{Obj: 5, Distance: 0},
				{Obj: 1 << 33, Distance: 1 << 30},
				{Obj: 7, Distance: -3},
			},
			Holds: []ids.ObjID{1, 2, 3},
		},
		msg.BackCall{
			Trace:     ids.TraceID{Initiator: 6, Seq: 1 << 21},
			Caller:    ids.FrameID{Site: 2, Seq: 19},
			Initiator: 6,
			Kind:      msg.StepLocal,
			Inref:     ids.ObjID(88),
			Outref:    ids.MakeRef(5, 42),
		},
		msg.BackReply{
			Trace:        ids.TraceID{Initiator: 6, Seq: 7},
			Caller:       ids.FrameID{Site: 2, Seq: 19},
			Result:       msg.VerdictLive,
			Participants: []ids.SiteID{1, 5, 9},
		},
		msg.Report{Trace: ids.TraceID{Initiator: 1, Seq: 2}, Outcome: msg.VerdictGarbage},
		// The batched-trace extended forms (tags 14-16).
		msg.BackCall{
			Trace:     ids.TraceID{Initiator: 6, Seq: 1 << 21},
			Caller:    ids.FrameID{Site: 2, Seq: 19},
			Initiator: 6,
			Kind:      msg.StepRemote,
			Inref:     ids.ObjID(88),
			Outref:    ids.MakeRef(5, 42),
			Suspect:   3,
		},
		msg.BackReply{
			Trace:        ids.TraceID{Initiator: 6, Seq: 7},
			Caller:       ids.FrameID{Site: 2, Seq: 19},
			Result:       msg.VerdictGarbage,
			Participants: []ids.SiteID{1, 5},
			Deps:         []uint32{0, 2, 1 << 18},
		},
		msg.Report{
			Trace:           ids.TraceID{Initiator: 1, Seq: 2},
			Outcome:         msg.VerdictGarbage,
			GarbageSuspects: []uint32{1, 4},
		},
		msg.Batch{Items: []msg.Message{
			msg.InsertAck{Target: ids.MakeRef(2, 8)},
			msg.Report{Trace: ids.TraceID{Initiator: 3, Seq: 4}, Outcome: msg.VerdictLive},
		}},
		msg.LinkData{Epoch: 3, Seq: 1 << 17, Payload: msg.ReleasePin{Target: ids.MakeRef(1, 2)}},
		msg.LinkAck{Epoch: 3, Cum: 900, Inc: 2},
		msg.LinkReset{Epoch: 12},
		msg.LinkBatch{
			Epoch: 2, Base: 41,
			AckEpoch: 5, AckCum: 1044, AckInc: 1,
			Items: []msg.Message{
				msg.Update{Holds: []ids.ObjID{1}},
				msg.BackCall{Trace: ids.TraceID{Initiator: 1, Seq: 1}, Kind: msg.StepRemote, Inref: 5},
			},
		},
	}
}

func codecs(t *testing.T) []Codec {
	t.Helper()
	return []Codec{Binary{}}
}

func TestRoundTripEveryType(t *testing.T) {
	for _, c := range codecs(t) {
		for _, m := range exemplars() {
			env := msg.Envelope{From: 3, To: 9, M: m}
			frame, err := c.Encode(&env, nil)
			if err != nil {
				t.Fatalf("%s encode %s: %v", c.Name(), msg.Name(m), err)
			}
			got, err := c.Decode(frame)
			if err != nil {
				t.Fatalf("%s decode %s: %v", c.Name(), msg.Name(m), err)
			}
			if !reflect.DeepEqual(got, env) {
				t.Errorf("%s round trip %s:\n got %#v\nwant %#v", c.Name(), msg.Name(m), got, env)
			}
		}
	}
}

// TestDecodeAnyDispatch checks version dispatch: binary frames decode
// through DecodeAny, the reserved gob byte (0x00) is rejected with a clear
// error, and unknown versions fail.
func TestDecodeAnyDispatch(t *testing.T) {
	for _, c := range codecs(t) {
		env := msg.Envelope{From: 1, To: 2, M: msg.LinkAck{Epoch: 1, Cum: 5, Inc: 1}}
		frame, err := c.Encode(&env, GetBuffer())
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeAny(frame)
		if err != nil {
			t.Fatalf("DecodeAny(%s frame): %v", c.Name(), err)
		}
		if !reflect.DeepEqual(got, env) {
			t.Errorf("DecodeAny(%s frame) = %#v, want %#v", c.Name(), got, env)
		}
		PutBuffer(frame)
	}
	if _, err := DecodeAny([]byte{VersionGob, 1, 2, 3}); err == nil {
		t.Error("DecodeAny accepted a frame with the reserved gob version byte")
	}
	if _, err := DecodeAny([]byte{0x42}); err == nil {
		t.Error("DecodeAny accepted an unknown frame version")
	}
}

// TestByNameRejectsGob pins the removal: requesting the retired codec by
// name is a configuration error, not a silent fallback.
func TestByNameRejectsGob(t *testing.T) {
	if _, err := ByName("gob"); err == nil {
		t.Fatal("ByName(\"gob\") succeeded after the codec's removal")
	}
	if c, err := ByName(""); err != nil || c.Name() != "binary" {
		t.Fatalf("ByName(\"\") = %v, %v; want the binary default", c, err)
	}
}

func TestEncodeAppendsToBuf(t *testing.T) {
	env := msg.Envelope{From: 1, To: 2, M: msg.LinkReset{Epoch: 4}}
	prefix := []byte{0xAA, 0xBB}
	frame, err := (Binary{}).Encode(&env, append([]byte(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if frame[0] != 0xAA || frame[1] != 0xBB {
		t.Fatalf("Encode overwrote existing buffer contents: % x", frame[:2])
	}
	if _, err := (Binary{}).Decode(frame[2:]); err != nil {
		t.Fatalf("decode appended frame: %v", err)
	}
}

func TestDecodeRejectsCorruptFrames(t *testing.T) {
	env := msg.Envelope{From: 3, To: 9, M: exemplars()[4]} // Update: has collections
	frame, err := (Binary{}).Encode(&env, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"bad version":    {0x7F, 1, 2},
		"truncated":      frame[:len(frame)/2],
		"trailing bytes": append(append([]byte(nil), frame...), 0x00),
		"unknown tag":    {VersionBinary, 1, 2, 0xEE},
		// Collection length far beyond the remaining bytes must error, not
		// allocate.
		"bomb length": {VersionBinary, 1, 2, tagUpdate, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
	}
	for name, data := range cases {
		if _, err := (Binary{}).Decode(data); err == nil {
			t.Errorf("%s: Decode accepted corrupt frame % x", name, data)
		}
		if _, err := DecodeAny(data); err == nil && len(data) > 0 && data[0] == VersionBinary {
			t.Errorf("%s: DecodeAny accepted corrupt frame", name)
		}
	}
}

func TestDecodeRejectsDeepNesting(t *testing.T) {
	inner := msg.Message(msg.LinkReset{Epoch: 1})
	for i := 0; i < maxNest+2; i++ {
		inner = msg.Batch{Items: []msg.Message{inner}}
	}
	env := msg.Envelope{From: 1, To: 2, M: inner}
	frame, err := (Binary{}).Encode(&env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Binary{}).Decode(frame); err == nil {
		t.Fatal("Decode accepted nesting beyond maxNest")
	}
}

// randMessage builds a random message of the given tag; depth bounds
// wrapper nesting. Shared by the fuzz targets and the randomized round-trip
// test. Slices are left nil when empty so decode output compares equal.
func randMessage(rng *rand.Rand, tag, depth int) msg.Message {
	ref := func() ids.Ref { return ids.MakeRef(ids.SiteID(rng.Intn(1<<16)), ids.ObjID(rng.Uint64()>>rng.Intn(64))) }
	site := func() ids.SiteID { return ids.SiteID(rng.Intn(1 << 16)) }
	objs := func() []ids.ObjID {
		n := rng.Intn(4)
		if n == 0 {
			return nil
		}
		out := make([]ids.ObjID, n)
		for i := range out {
			out[i] = ids.ObjID(rng.Uint64() >> rng.Intn(64))
		}
		return out
	}
	items := func() []msg.Message {
		if depth >= 3 {
			return nil
		}
		n := rng.Intn(3)
		if n == 0 {
			return nil
		}
		out := make([]msg.Message, n)
		for i := range out {
			out[i] = randMessage(rng, rng.Intn(13)+1, depth+1)
		}
		return out
	}
	switch tag {
	case tagRefTransfer:
		return msg.RefTransfer{Payload: ref(), Pinner: site()}
	case tagInsert:
		return msg.Insert{Target: ref(), Holder: site(), Pinner: site()}
	case tagInsertAck:
		return msg.InsertAck{Target: ref()}
	case tagReleasePin:
		return msg.ReleasePin{Target: ref()}
	case tagUpdate:
		u := msg.Update{Removals: objs(), Holds: objs()}
		if n := rng.Intn(4); n > 0 {
			u.Distances = make([]msg.DistanceUpdate, n)
			for i := range u.Distances {
				u.Distances[i] = msg.DistanceUpdate{
					Obj:      ids.ObjID(rng.Uint64() >> rng.Intn(64)),
					Distance: rng.Intn(1<<31) - 1<<30,
				}
			}
		}
		return u
	case tagBackCall:
		return msg.BackCall{
			Trace:     ids.TraceID{Initiator: site(), Seq: rng.Uint64() >> rng.Intn(64)},
			Caller:    ids.FrameID{Site: site(), Seq: rng.Uint64() >> rng.Intn(64)},
			Initiator: site(),
			Kind:      msg.StepKind(rng.Intn(2) + 1),
			Inref:     ids.ObjID(rng.Uint64() >> rng.Intn(64)),
			Outref:    ref(),
			Suspect:   uint32(rng.Intn(3)) * uint32(rng.Intn(1<<10)), // often 0 → legacy tag
		}
	case tagBackReply:
		rep := msg.BackReply{
			Trace:  ids.TraceID{Initiator: site(), Seq: rng.Uint64() >> rng.Intn(64)},
			Caller: ids.FrameID{Site: site(), Seq: rng.Uint64() >> rng.Intn(64)},
			Result: msg.Verdict(rng.Intn(2)),
		}
		if n := rng.Intn(4); n > 0 {
			rep.Participants = make([]ids.SiteID, n)
			for i := range rep.Participants {
				rep.Participants[i] = site()
			}
		}
		// Nil or non-empty: an empty non-nil Deps slice would take the
		// legacy tag and decode back to nil.
		if n := rng.Intn(4); n > 0 {
			rep.Deps = make([]uint32, n)
			for i := range rep.Deps {
				rep.Deps[i] = rng.Uint32() >> rng.Intn(32)
			}
		}
		return rep
	case tagReport:
		rep := msg.Report{
			Trace:   ids.TraceID{Initiator: site(), Seq: rng.Uint64() >> rng.Intn(64)},
			Outcome: msg.Verdict(rng.Intn(2)),
		}
		if n := rng.Intn(4); n > 0 {
			rep.GarbageSuspects = make([]uint32, n)
			for i := range rep.GarbageSuspects {
				rep.GarbageSuspects[i] = rng.Uint32() >> rng.Intn(32)
			}
		}
		return rep
	case tagBatch:
		return msg.Batch{Items: items()}
	case tagLinkData:
		return msg.LinkData{
			Epoch:   rng.Uint64() >> rng.Intn(64),
			Seq:     rng.Uint64() >> rng.Intn(64),
			Payload: randMessage(rng, rng.Intn(12)+1, depth+1),
		}
	case tagLinkAck:
		return msg.LinkAck{Epoch: rng.Uint64() >> rng.Intn(64), Cum: rng.Uint64() >> rng.Intn(64), Inc: rng.Uint64() >> rng.Intn(64)}
	case tagLinkReset:
		return msg.LinkReset{Epoch: rng.Uint64() >> rng.Intn(64)}
	default:
		lb := msg.LinkBatch{
			Epoch:    rng.Uint64() >> rng.Intn(64),
			Base:     rng.Uint64() >> rng.Intn(64),
			AckEpoch: rng.Uint64() >> rng.Intn(64),
			AckCum:   rng.Uint64() >> rng.Intn(64),
			AckInc:   rng.Uint64() >> rng.Intn(64),
			Items:    items(),
		}
		return lb
	}
}

// TestRandomizedRoundTrip is the deterministic (non-fuzz) version of
// FuzzRoundTrip, so plain `go test` exercises the same property.
func TestRandomizedRoundTrip(t *testing.T) {
	for _, c := range codecs(t) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 2000; i++ {
			tag := rng.Intn(13) + 1
			env := msg.Envelope{
				From: ids.SiteID(rng.Intn(1 << 16)),
				To:   ids.SiteID(rng.Intn(1 << 16)),
				M:    randMessage(rng, tag, 0),
			}
			frame, err := c.Encode(&env, GetBuffer())
			if err != nil {
				t.Fatalf("%s encode #%d: %v", c.Name(), i, err)
			}
			got, err := c.Decode(frame)
			PutBuffer(frame)
			if err != nil {
				t.Fatalf("%s decode #%d (%s): %v", c.Name(), i, msg.Name(env.M), err)
			}
			if !reflect.DeepEqual(got, env) {
				t.Fatalf("%s round trip #%d (%s):\n got %#v\nwant %#v", c.Name(), i, msg.Name(env.M), got, env)
			}
		}
	}
}

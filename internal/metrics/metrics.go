// Package metrics provides thread-safe counters used by the experiment
// harness to measure the quantities the paper reasons about analytically:
// messages by type (for the 2E+P message-complexity claim), objects traced
// per local trace (for the Section 5 cost comparison), back-trace outcomes
// (for the back-threshold tuning claim), and space occupied by back
// information (for the O(ni·no) bound).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"backtrace/internal/msg"
)

// Counters accumulates named integer counters. The zero value is ready to
// use.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// Add increments a named counter by delta.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] += delta
}

// Inc increments a named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the value of a named counter (zero if never incremented).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Max raises a named counter to v if v is larger (for high-water marks such
// as peak back-information size).
func (c *Counters) Max(name string, v int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	if v > c.m[name] {
		c.m[name] = v
	}
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[string]int64)
}

// String renders the counters sorted by name, one per line.
func (c *Counters) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%-28s %d\n", k, snap[k])
	}
	return b.String()
}

// Message counter names. Each sent message is counted both under its type
// ("msg.BackCall") and under the total ("msg.total"); drops are counted
// under "msg.dropped".
const (
	MsgTotal   = "msg.total"
	MsgDropped = "msg.dropped"
)

// MsgName returns the counter name for a message type.
func MsgName(m msg.Message) string { return "msg." + msg.Name(m) }

// ObserveMessage records one send attempt; it is shaped to plug into
// transport.Observer.
func (c *Counters) ObserveMessage(env msg.Envelope, dropped bool) {
	if dropped {
		c.Inc(MsgDropped)
		return
	}
	c.Inc(MsgTotal)
	c.Inc(MsgName(env.M))
}

// Transport and reliable-link-layer counter names (transport.TCPNode and
// transport.Reliable).
const (
	// TransportSendFail counts TCP dial and encode failures; the failed
	// message is requeued and retried with backoff, so a nonzero count
	// with full delivery means the redial path healed the link.
	TransportSendFail = "transport.send_fail"
	// LinkRetransmits counts LinkData frames retransmitted after an ack
	// deadline passed.
	LinkRetransmits = "link.retransmit"
	// LinkDupDropped counts received LinkData frames discarded as
	// duplicates (already delivered or already buffered).
	LinkDupDropped = "link.dup_dropped"
	// LinkStaleDropped counts frames discarded for carrying an epoch older
	// than the link's current session.
	LinkStaleDropped = "link.stale_epoch_dropped"
	// LinkAcksSent counts LinkAck frames sent by receivers.
	LinkAcksSent = "link.acks_sent"
	// LinkResets counts link session resets (site restarts announced via
	// LinkReset, and resets applied on receiving one).
	LinkResets = "link.resets"
	// LinkResetDropped counts in-flight and queued frames abandoned when a
	// session reset — traffic addressed to a dead incarnation, which the
	// protocol tolerates as message loss.
	LinkResetDropped = "link.reset_dropped"
	// LinkReorderBuffered counts frames that arrived ahead of a gap and
	// were held in the receiver's reorder buffer.
	LinkReorderBuffered = "link.reorder_buffered"
)

// Back-trace and tracer counter names used across the harness.
const (
	BackTracesStarted   = "backtrace.started"
	BackTracesGarbage   = "backtrace.outcome.garbage"
	BackTracesLive      = "backtrace.outcome.live"
	BackTraceCalls      = "backtrace.calls"
	LocalTraces         = "localtrace.runs"
	ObjectsTraced       = "localtrace.objects"
	ObjectsRetraced     = "localtrace.objects.retraced"
	ObjectsCollected    = "localtrace.collected"
	OutsetUnions        = "outsets.unions"
	OutsetUnionsMemoHit = "outsets.unions.memoized"
	BackInfoEntries     = "backinfo.entries"
	BackInfoPeak        = "backinfo.peak"
	InrefsFlagged       = "inrefs.flagged.garbage"
)

// Mailbox-executor counter names (site.Config.InboxSize > 0).
const (
	// MailboxEnqueued counts inbound messages accepted into a site inbox.
	MailboxEnqueued = "mailbox.enqueued"
	// MailboxDepthPeak is the high-water mark of inbox depth at enqueue
	// time (recorded with Max).
	MailboxDepthPeak = "mailbox.depth.peak"
	// MailboxBackpressure counts enqueues that had to block because the
	// inbox was full.
	MailboxBackpressure = "mailbox.backpressure.waits"
)

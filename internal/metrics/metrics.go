// Package metrics provides thread-safe counters used by the experiment
// harness to measure the quantities the paper reasons about analytically:
// messages by type (for the 2E+P message-complexity claim), objects traced
// per local trace (for the Section 5 cost comparison), back-trace outcomes
// (for the back-threshold tuning claim), and space occupied by back
// information (for the O(ni·no) bound).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"backtrace/internal/msg"
)

// Counters accumulates named integer counters. The zero value is ready to
// use.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// Add increments a named counter by delta.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] += delta
}

// Inc increments a named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the value of a named counter (zero if never incremented).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Max raises a named counter to v if v is larger (for high-water marks such
// as peak back-information size).
func (c *Counters) Max(name string, v int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	if v > c.m[name] {
		c.m[name] = v
	}
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[string]int64)
}

// String renders the counters sorted by name, one per line.
func (c *Counters) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%-28s %d\n", k, snap[k])
	}
	return b.String()
}

// Message counter names. Each sent message is counted both under its type
// ("msg.BackCall") and under the total ("msg.total"); drops are counted
// under "msg.dropped".
const (
	MsgTotal   = "msg.total"
	MsgDropped = "msg.dropped"
)

// MsgName returns the counter name for a message type.
func MsgName(m msg.Message) string { return "msg." + msg.Name(m) }

// ObserveMessage records one send attempt; it is shaped to plug into
// transport.Observer.
func (c *Counters) ObserveMessage(env msg.Envelope, dropped bool) {
	if dropped {
		c.Inc(MsgDropped)
		return
	}
	c.Inc(MsgTotal)
	c.Inc(MsgName(env.M))
}

// Back-trace and tracer counter names used across the harness.
const (
	BackTracesStarted   = "backtrace.started"
	BackTracesGarbage   = "backtrace.outcome.garbage"
	BackTracesLive      = "backtrace.outcome.live"
	BackTraceCalls      = "backtrace.calls"
	LocalTraces         = "localtrace.runs"
	ObjectsTraced       = "localtrace.objects"
	ObjectsRetraced     = "localtrace.objects.retraced"
	ObjectsCollected    = "localtrace.collected"
	OutsetUnions        = "outsets.unions"
	OutsetUnionsMemoHit = "outsets.unions.memoized"
	BackInfoEntries     = "backinfo.entries"
	BackInfoPeak        = "backinfo.peak"
	InrefsFlagged       = "inrefs.flagged.garbage"
)

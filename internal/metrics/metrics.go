// Package metrics provides the legacy stringly-named counter API used by
// the experiment harness to measure the quantities the paper reasons about
// analytically: messages by type (for the 2E+P message-complexity claim),
// objects traced per local trace (for the Section 5 cost comparison),
// back-trace outcomes (for the back-threshold tuning claim), and space
// occupied by back information (for the O(ni·no) bound).
//
// Deprecated surface: Counters is now a compatibility shim over the typed
// obs.Registry — every Add lands in a declared obs.Counter and every Max in
// an obs.Gauge, so the same numbers back the legacy Snapshot map, the
// typed Site.Metrics()/Cluster.Metrics() snapshots, and the Prometheus
// /metrics endpoint. New code should use obs.Registry directly (reach it
// with Counters.Registry()).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"backtrace/internal/msg"
	"backtrace/internal/obs"
)

// Counters is the legacy named-counter facade. The zero value is ready to
// use (it creates its own registry on first write); NewCounters shares an
// existing registry instead.
//
// Deprecated: new call sites should declare typed instruments on the
// obs.Registry (see Registry) rather than accumulate by string name.
type Counters struct {
	mu  sync.Mutex
	reg *obs.Registry
}

// NewCounters creates a Counters facade over an existing registry, so the
// legacy API and typed instruments share one instrument set.
func NewCounters(reg *obs.Registry) *Counters {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Counters{reg: reg}
}

// Registry returns the typed registry backing this facade, creating it on
// first use. This is the migration path away from stringly-typed names.
func (c *Counters) Registry() *obs.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reg == nil {
		c.reg = obs.NewRegistry()
	}
	return c.reg
}

// Add increments a named counter by delta.
func (c *Counters) Add(name string, delta int64) {
	c.Registry().Counter(name, "").Add(delta)
}

// Inc increments a named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the value of a named counter or high-water mark (zero if
// never recorded).
func (c *Counters) Get(name string) int64 {
	v, _ := c.Registry().Value(name)
	return v
}

// Max raises a named high-water mark to v if v is larger (peaks such as
// back-information size are gauges in the registry).
func (c *Counters) Max(name string, v int64) {
	c.Registry().Gauge(name, "").Max(v)
}

// Snapshot returns a copy of all counters and high-water marks as one flat
// name → value map (histograms are only in the typed obs.Snapshot).
func (c *Counters) Snapshot() map[string]int64 {
	snap := c.Registry().Snapshot()
	out := make(map[string]int64, len(snap.Counters)+len(snap.Gauges))
	for k, v := range snap.Counters {
		out[k] = v
	}
	for k, v := range snap.Gauges {
		out[k] = v
	}
	return out
}

// Reset zeroes every instrument in the backing registry (declarations are
// kept).
func (c *Counters) Reset() {
	c.Registry().Reset()
}

// String renders the counters sorted by name, one per line.
func (c *Counters) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%-28s %d\n", k, snap[k])
	}
	return b.String()
}

// Message counter names. Counts are LOGICAL: a wrapper envelope (Batch,
// LinkData, LinkBatch) is unwrapped and each leaf protocol message is
// counted once under its type ("msg.BackCall") and under the total
// ("msg.total"), so the paper's 2E+P-1 complexity accounting is invariant
// under piggybacking and link-level batching. Physical envelopes are
// counted separately under "wire.frames"; drops under "msg.dropped" (per
// envelope — a dropped frame drops all its leaves together).
const (
	MsgTotal   = "msg.total"
	MsgDropped = "msg.dropped"
)

// Wire-level instrument names (the codec/batching layer of the transports).
const (
	// WireFrames counts physical envelopes handed to a transport — the
	// denominator of the batching win: wire.frames / msg.total < 1 when
	// coalescing happens.
	WireFrames = "wire.frames"
	// WireBytes totals encoded frame bytes on transports that serialize
	// (tcpnet, and memnet when configured with a codec round trip).
	WireBytes = "wire.bytes"
	// WireBatchSize is the high-water mark of leaves per flushed link batch
	// (recorded with Max).
	WireBatchSize = "wire.batch_size"
	// WireFlushes counts batcher flushes (ticks or size-triggered) that put
	// at least one frame on a link.
	WireFlushes = "wire.flushes"
)

// MsgName returns the counter name for a message type.
func MsgName(m msg.Message) string { return "msg." + msg.Name(m) }

// ObserveMessage records one send attempt; it is shaped to plug into
// transport.Observer. One call counts one physical frame and every logical
// leaf message inside it.
func (c *Counters) ObserveMessage(env msg.Envelope, dropped bool) {
	if dropped {
		c.Inc(MsgDropped)
		return
	}
	c.Inc(WireFrames)
	reg := c.Registry()
	msg.Leaves(env.M, func(leaf msg.Message) {
		reg.Counter(MsgTotal, "").Add(1)
		reg.Counter(MsgName(leaf), "").Add(1)
	})
}

// Transport and reliable-link-layer counter names (transport.TCPNode and
// transport.Reliable).
const (
	// TransportSendFail counts TCP dial and encode failures; the failed
	// message is requeued and retried with backoff, so a nonzero count
	// with full delivery means the redial path healed the link.
	TransportSendFail = "transport.send_fail"
	// LinkRetransmits counts LinkData frames retransmitted after an ack
	// deadline passed.
	LinkRetransmits = "link.retransmit"
	// LinkDupDropped counts received LinkData frames discarded as
	// duplicates (already delivered or already buffered).
	LinkDupDropped = "link.dup_dropped"
	// LinkStaleDropped counts frames discarded for carrying an epoch older
	// than the link's current session.
	LinkStaleDropped = "link.stale_epoch_dropped"
	// LinkAcksSent counts LinkAck frames sent by receivers.
	LinkAcksSent = "link.acks_sent"
	// LinkResets counts link session resets (site restarts announced via
	// LinkReset, and resets applied on receiving one).
	LinkResets = "link.resets"
	// LinkResetDropped counts in-flight and queued frames abandoned when a
	// session reset — traffic addressed to a dead incarnation, which the
	// protocol tolerates as message loss.
	LinkResetDropped = "link.reset_dropped"
	// LinkReorderBuffered counts frames that arrived ahead of a gap and
	// were held in the receiver's reorder buffer.
	LinkReorderBuffered = "link.reorder_buffered"
)

// Back-trace and tracer counter names used across the harness.
const (
	BackTracesStarted   = "backtrace.started"
	BackTracesGarbage   = "backtrace.outcome.garbage"
	BackTracesLive      = "backtrace.outcome.live"
	BackTraceCalls      = "backtrace.calls"
	// BackTraceInflight is the high-water mark of concurrently in-flight
	// traces initiated by a site (a gauge recorded with Max; bounded by
	// Config.MaxInflightTraces when the admission controller is on).
	BackTraceInflight = "backtrace.inflight"
	// BackTraceMemoHits counts back steps (and trigger scans) answered Live
	// from the generation-stamped memo without fanning out.
	BackTraceMemoHits = "backtrace.memo_hits"
	// BackTraceBatchSize is the high-water mark of suspects carried by one
	// batched trace (recorded with Max).
	BackTraceBatchSize = "backtrace.batch_size"
	// BackTraceJoined counts suspects that joined an active trace already
	// visiting their cone instead of launching a duplicate.
	BackTraceJoined = "backtrace.joined"
	// BackTraceDeferred counts suspects parked in the admission queue
	// because the in-flight cap was reached.
	BackTraceDeferred = "backtrace.deferred"
	LocalTraces         = "localtrace.runs"
	ObjectsTraced       = "localtrace.objects"
	ObjectsRetraced     = "localtrace.objects.retraced"
	ObjectsCollected    = "localtrace.collected"
	OutsetUnions        = "outsets.unions"
	OutsetUnionsMemoHit = "outsets.unions.memoized"
	BackInfoEntries     = "backinfo.entries"
	BackInfoPeak        = "backinfo.peak"
	InrefsFlagged       = "inrefs.flagged.garbage"
)

// Incremental-tracing counter names (site.Config.Incremental).
const (
	// IncrementalRemarks counts local traces that took the dirty-set remark
	// path instead of a full forward mark.
	IncrementalRemarks = "localtrace.incremental.remarks"
	// IncrementalFallbacks counts incremental-mode traces that fell back to
	// a full trace (first trace, invalidating mutation, dirty ratio, ...).
	IncrementalFallbacks = "localtrace.incremental.fallbacks"
	// IncrementalOutsetsReused counts remarks that carried the previous back
	// information over verbatim instead of recomputing outsets.
	IncrementalOutsetsReused = "localtrace.incremental.outsets_reused"
	// IncrementalDirtySeeds totals the changed entities remarks relaxed from.
	IncrementalDirtySeeds = "localtrace.incremental.dirty_seeds"
)

// Sharded-storage and parallel-tracer instrument names (site.Config.Shards
// and site.Config.TraceWorkers). HeapShards, ParallelWorkers and
// ParallelShardDirtyRatio are gauges; ParallelSteals is a counter.
const (
	// HeapShards is the number of heap/ioref-table shards the site runs.
	HeapShards = "heap.shards"
	// ParallelWorkers is the number of mark workers local traces run with.
	ParallelWorkers = "localtrace.parallel.workers"
	// ParallelSteals counts work-stealing events between mark-worker deques.
	ParallelSteals = "localtrace.parallel.steals"
	// ParallelShardDirtyRatio is the percentage of objects mutated in the
	// dirtiest heap shard since the last trace snapshot, observed at the
	// most recent snapshot (incremental sites only).
	ParallelShardDirtyRatio = "localtrace.parallel.shard_dirty_ratio"
)

// Mailbox-executor counter names (site.Config.InboxSize > 0).
const (
	// MailboxEnqueued counts inbound messages accepted into a site inbox.
	MailboxEnqueued = "mailbox.enqueued"
	// MailboxDepthPeak is the high-water mark of inbox depth at enqueue
	// time (recorded with Max).
	MailboxDepthPeak = "mailbox.depth.peak"
	// MailboxBackpressure counts enqueues that had to block because the
	// inbox was full.
	MailboxBackpressure = "mailbox.backpressure.waits"
)

package metrics

import (
	"strings"
	"sync"
	"testing"

	"backtrace/internal/ids"
	"backtrace/internal/msg"
)

func TestCountersBasics(t *testing.T) {
	var c Counters
	if c.Get("x") != 0 {
		t.Fatal("fresh counter nonzero")
	}
	c.Inc("x")
	c.Add("x", 4)
	if got := c.Get("x"); got != 5 {
		t.Fatalf("x = %d, want 5", got)
	}
	c.Max("peak", 3)
	c.Max("peak", 1)
	c.Max("peak", 7)
	if got := c.Get("peak"); got != 7 {
		t.Fatalf("peak = %d, want 7", got)
	}
}

func TestCountersSnapshotIsCopy(t *testing.T) {
	var c Counters
	c.Inc("a")
	snap := c.Snapshot()
	snap["a"] = 99
	if c.Get("a") != 1 {
		t.Fatal("snapshot aliases internal state")
	}
}

func TestCountersReset(t *testing.T) {
	var c Counters
	c.Inc("a")
	c.Reset()
	if c.Get("a") != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestCountersStringSorted(t *testing.T) {
	var c Counters
	c.Inc("bbb")
	c.Inc("aaa")
	s := c.String()
	if !strings.Contains(s, "aaa") || !strings.Contains(s, "bbb") {
		t.Fatalf("String() = %q", s)
	}
	if strings.Index(s, "aaa") > strings.Index(s, "bbb") {
		t.Fatal("String() not sorted")
	}
}

func TestObserveMessage(t *testing.T) {
	var c Counters
	env := msg.Envelope{From: 1, To: 2, M: msg.Report{}}
	c.ObserveMessage(env, false)
	c.ObserveMessage(env, false)
	c.ObserveMessage(env, true)
	if c.Get(MsgTotal) != 2 {
		t.Errorf("total = %d, want 2", c.Get(MsgTotal))
	}
	if c.Get(MsgDropped) != 1 {
		t.Errorf("dropped = %d, want 1", c.Get(MsgDropped))
	}
	if c.Get("msg.Report") != 2 {
		t.Errorf("msg.Report = %d, want 2", c.Get("msg.Report"))
	}
}

func TestMsgName(t *testing.T) {
	if got := MsgName(msg.BackCall{}); got != "msg.BackCall" {
		t.Fatalf("MsgName = %q", got)
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc("n")
				c.Max("m", int64(j))
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 8000 {
		t.Fatalf("n = %d, want 8000", got)
	}
	if got := c.Get("m"); got != 999 {
		t.Fatalf("m = %d, want 999", got)
	}
}

func TestMsgNameCoversAllTypes(t *testing.T) {
	all := []msg.Message{
		msg.RefTransfer{}, msg.Insert{}, msg.InsertAck{}, msg.ReleasePin{},
		msg.Update{}, msg.BackCall{}, msg.BackReply{}, msg.Report{},
	}
	seen := make(map[string]bool)
	for _, m := range all {
		name := msg.Name(m)
		if strings.Contains(name, "%") || name == "" {
			t.Errorf("bad name %q", name)
		}
		if seen[name] {
			t.Errorf("duplicate name %q", name)
		}
		seen[name] = true
	}
	_ = ids.NoSite
}

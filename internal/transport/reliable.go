package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"backtrace/internal/clock"
	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/msg"
)

// This file implements Reliable, a session layer that upgrades any Network
// to FIFO, at-most-once, retransmitted delivery.
//
// The paper assumes per-link in-order delivery (relation R1, Section 6.4)
// and tolerates outright loss only through the Section 4.6 timeout rule: a
// lost Call or Report makes the trace conservatively assume Live, costing a
// whole re-suspicion round per dropped packet. Reliable removes that cost
// on lossy substrates: every protocol message is wrapped in a LinkData
// frame carrying a per-link (source, destination) monotone sequence number
// and the sender's session epoch. Receivers acknowledge cumulatively,
// deduplicate, and buffer out-of-order frames so handlers see every message
// exactly once, in send order — R1 restored. Senders keep a bounded
// in-flight window and retransmit unacknowledged frames on exponential
// backoff with jitter.
//
// Site crashes are handled with incarnation epochs: a restarted site (see
// internal/site/persist.go) calls NotifyRestart, which bumps its epoch,
// wipes its link state, and announces a LinkReset to its peers. Peers
// abandon their old send sessions (frames in flight were addressed to the
// dead incarnation; dropping them is ordinary message loss, which the
// protocol tolerates by timeout) and open fresh sessions with a strictly
// larger epoch, so stale traffic is neither replayed into nor accepted
// from the new incarnation.

// ReliableOptions configures a Reliable session layer.
type ReliableOptions struct {
	// Window bounds the number of unacknowledged frames per link; sends
	// beyond it queue at the sender until acks open the window. Defaults
	// to 64.
	Window int
	// RetransmitInitial is the first ack deadline after a (re)transmission.
	// Defaults to 15ms.
	RetransmitInitial time.Duration
	// RetransmitMax caps the exponential backoff. Defaults to 500ms.
	RetransmitMax time.Duration
	// RetransmitJitter is the fraction of the backoff added as uniform
	// random extra delay, de-synchronizing retransmission bursts across
	// links. Defaults to 0.25.
	RetransmitJitter float64
	// Tick is the granularity of the retransmission scan. Defaults to a
	// third of RetransmitInitial (at least 1ms).
	Tick time.Duration
	// Seed seeds the jitter source, making retransmission schedules
	// reproducible. Zero selects a fixed default.
	Seed int64
	// Epoch is the initial incarnation for sites registered on this layer.
	// Defaults to 1. After a crash, pass the persisted incarnation + 1 via
	// NotifyRestart instead.
	Epoch uint64
	// BatchMax, when positive, turns on link-level batching: messages for
	// the same peer coalesce at the sender into one LinkBatch frame of up
	// to BatchMax payloads, flushed every FlushInterval (or immediately
	// when a batch fills). Acks the receiver owes are piggybacked on the
	// next data batch toward that peer instead of sent as standalone
	// LinkAck frames. Batching trades up to one FlushInterval of latency
	// for far fewer envelopes on the wire; logical message counts and
	// per-link FIFO order are unchanged.
	BatchMax int
	// FlushInterval is the batcher's flush cadence. Defaults to 1ms when
	// BatchMax is set; it should stay well below RetransmitInitial so
	// first transmissions never look like losses.
	FlushInterval time.Duration
	// Clock supplies retransmission deadlines and the scan cadence. Nil
	// means the wall clock.
	Clock clock.Clock
	// Counters, if non-nil, receives the link.* metrics.
	Counters *metrics.Counters
	// Observer, if non-nil, is called once per logical Send (not per
	// retransmission); dropped is true only when the layer is closed.
	Observer Observer
}

func (o ReliableOptions) withDefaults() ReliableOptions {
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.RetransmitInitial <= 0 {
		o.RetransmitInitial = 15 * time.Millisecond
	}
	if o.RetransmitMax <= 0 {
		o.RetransmitMax = 500 * time.Millisecond
	}
	if o.RetransmitJitter <= 0 {
		o.RetransmitJitter = 0.25
	}
	if o.Tick <= 0 {
		o.Tick = o.RetransmitInitial / 3
		if o.Tick < time.Millisecond {
			o.Tick = time.Millisecond
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BatchMax > 0 && o.FlushInterval <= 0 {
		o.FlushInterval = time.Millisecond
	}
	if o.Epoch == 0 {
		o.Epoch = 1
	}
	return o
}

// SessionNetwork is the optional interface implemented by session-layer
// transports. Site checkpointing records the incarnation, and crash
// recovery announces the restart so peers reset their links cleanly.
type SessionNetwork interface {
	Network
	// Incarnation returns the site's current session epoch.
	Incarnation(site ids.SiteID) uint64
	// NotifyRestart installs a new incarnation for a restarted site (at
	// least one greater than any previous), wipes the site's link state,
	// and sends LinkReset to the given peers.
	NotifyRestart(site ids.SiteID, incarnation uint64, peers []ids.SiteID)
}

type linkKey struct {
	from, to ids.SiteID
}

// linkFrame is one unacknowledged message in a sender's window.
type linkFrame struct {
	seq uint64
	m   msg.Message
}

// sendLink is the sender half of one link session.
type sendLink struct {
	epoch    uint64
	nextSeq  uint64      // next sequence number to assign
	inflight []linkFrame // in the window, unacknowledged; ascending, contiguous seq
	unsent   int         // batching: trailing inflight frames not yet transmitted
	pending  []msg.Message
	backoff  time.Duration
	retryAt  time.Time
	peerInc  uint64 // the peer's incarnation as last seen in an ack (0 = unknown)
}

// recvLink is the receiver half of one link session.
type recvLink struct {
	epoch    uint64
	expected uint64 // next sequence number to deliver
	buffer   map[uint64]msg.Message
}

// Reliable wraps an inner Network with per-link ack/retransmit sessions.
// Register sites and Send messages exactly as with the inner network; the
// handlers installed via Register receive every message exactly once, in
// per-link send order, as long as both endpoints of a link go through a
// Reliable layer. Frames from peers that do not (bare protocol messages)
// are passed through unchanged.
//
// Retransmission is time-driven, so Reliable requires an asynchronously
// delivering inner network (it is not meaningful over a stepped memnet).
type Reliable struct {
	inner Network
	opts  ReliableOptions
	clk   clock.Clock

	mu          sync.Mutex
	incarnation map[ids.SiteID]uint64
	sends       map[linkKey]*sendLink
	recvs       map[linkKey]*recvLink
	handlers    map[ids.SiteID]Handler
	ackPending  map[linkKey]msg.LinkAck // batching: acks owed, awaiting piggyback or flush
	rng         *rand.Rand
	outstanding int           // frames in flight or queued across all links
	idle        chan struct{} // non-nil while an AwaitIdle waits; closed at zero
	closed      bool

	done chan struct{}
	wg   sync.WaitGroup
}

var (
	_ Network        = (*Reliable)(nil)
	_ SessionNetwork = (*Reliable)(nil)
)

// NewReliable wraps inner with a reliable session layer and starts its
// retransmission scanner. Close the returned layer, not the inner network
// (Close closes both).
func NewReliable(inner Network, opts ReliableOptions) *Reliable {
	opts = opts.withDefaults()
	r := &Reliable{
		inner:       inner,
		opts:        opts,
		clk:         clock.OrWall(opts.Clock),
		incarnation: make(map[ids.SiteID]uint64),
		sends:       make(map[linkKey]*sendLink),
		recvs:       make(map[linkKey]*recvLink),
		handlers:    make(map[ids.SiteID]Handler),
		ackPending:  make(map[linkKey]msg.LinkAck),
		rng:         rand.New(rand.NewSource(opts.Seed)),
		done:        make(chan struct{}),
	}
	r.wg.Add(1)
	go r.retransmitLoop()
	if r.batching() {
		r.wg.Add(1)
		go r.flushLoop()
	}
	return r
}

// batching reports whether link-level batching is enabled.
func (r *Reliable) batching() bool { return r.opts.BatchMax > 0 }

// Inner returns the wrapped network (for fault injection in tests).
func (r *Reliable) Inner() Network { return r.inner }

// Register implements Network: h receives the deduplicated, reordered
// payload stream for site.
func (r *Reliable) Register(site ids.SiteID, h Handler) {
	r.mu.Lock()
	r.handlers[site] = h
	if _, ok := r.incarnation[site]; !ok {
		r.incarnation[site] = r.opts.Epoch
	}
	r.mu.Unlock()
	r.inner.Register(site, HandlerFunc(func(from ids.SiteID, m msg.Message) {
		r.receive(site, from, m)
	}))
}

// Send implements Network. The message is assigned the link's next sequence
// number and retransmitted until acknowledged; if the in-flight window is
// full it queues at the sender. Send never blocks on the receiver.
//
// With batching enabled the message is not transmitted here: it joins the
// link's unsent tail and goes out in a LinkBatch at the next flush (or
// immediately once BatchMax messages have accumulated).
func (r *Reliable) Send(from, to ids.SiteID, m msg.Message) {
	env := msg.Envelope{From: from, To: to, M: m}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.observe(env, true)
		return
	}
	key := linkKey{from, to}
	sl := r.sendLinkLocked(from, to)
	r.outstanding++
	var out []msg.Message
	if len(sl.inflight) < r.opts.Window {
		seq := sl.nextSeq
		sl.nextSeq++
		sl.inflight = append(sl.inflight, linkFrame{seq: seq, m: m})
		if len(sl.inflight) == 1 {
			r.armLocked(sl, r.clk.Now())
		}
		if r.batching() {
			sl.unsent++
			if sl.unsent >= r.opts.BatchMax {
				out = r.flushLinkLocked(key, sl)
			}
		} else {
			out = append(out, msg.LinkData{Epoch: sl.epoch, Seq: seq, Payload: m})
		}
	} else {
		sl.pending = append(sl.pending, m)
	}
	r.mu.Unlock()
	r.observe(env, false)
	for _, f := range out {
		r.inner.Send(from, to, f)
	}
}

// Close implements Network: it stops the retransmission scanner and closes
// the inner network.
func (r *Reliable) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	if r.idle != nil {
		close(r.idle) // wake any AwaitIdle so it can observe the close
		r.idle = nil
	}
	r.mu.Unlock()
	close(r.done)
	r.wg.Wait()
	r.inner.Close()
}

// noteIdleLocked wakes a pending AwaitIdle once nothing is outstanding. The
// caller holds r.mu.
func (r *Reliable) noteIdleLocked() {
	if r.outstanding == 0 && r.idle != nil {
		close(r.idle)
		r.idle = nil
	}
}

// Incarnation implements SessionNetwork.
func (r *Reliable) Incarnation(site ids.SiteID) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if inc, ok := r.incarnation[site]; ok {
		return inc
	}
	return r.opts.Epoch
}

// NotifyRestart implements SessionNetwork: site came back from a crash with
// the given incarnation (bumped further if not strictly greater than the
// current one). All of the site's send sessions restart at the new epoch
// with their queues dropped, its receive state is forgotten, and every peer
// is sent a LinkReset so it abandons its stale session toward the site.
func (r *Reliable) NotifyRestart(site ids.SiteID, incarnation uint64, peers []ids.SiteID) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	if cur := r.incarnation[site]; incarnation <= cur {
		incarnation = cur + 1
	}
	r.incarnation[site] = incarnation
	for key, sl := range r.sends {
		if key.from != site {
			continue
		}
		r.resetSendLinkLocked(sl, incarnation)
	}
	for key := range r.recvs {
		if key.to == site {
			delete(r.recvs, key)
		}
	}
	for key := range r.ackPending {
		// Acks the dead incarnation owed refer to receive state that no
		// longer exists.
		if key.from == site {
			delete(r.ackPending, key)
		}
	}
	r.count(metrics.LinkResets, 1)
	r.mu.Unlock()
	for _, p := range peers {
		if p == site {
			continue
		}
		r.inner.Send(site, p, msg.LinkReset{Epoch: incarnation})
	}
}

// AwaitIdle blocks until every send link has no in-flight or queued frames
// (everything sent has been acknowledged), or the timeout elapses. The wait
// is event-driven — ack processing signals a waiter channel when the last
// outstanding frame drains — and the timeout comes from the injected Clock.
func (r *Reliable) AwaitIdle(timeout time.Duration) error {
	deadline := r.clk.Now().Add(timeout)
	r.mu.Lock()
	for r.outstanding > 0 && !r.closed {
		if r.idle == nil {
			r.idle = make(chan struct{})
		}
		idle := r.idle
		n := r.outstanding
		r.mu.Unlock()
		remaining := deadline.Sub(r.clk.Now())
		if remaining <= 0 {
			return fmt.Errorf("reliable: %d frames unacknowledged after %v", n, timeout)
		}
		select {
		case <-idle:
		case <-r.clk.After(remaining):
		}
		r.mu.Lock()
	}
	r.mu.Unlock()
	return nil
}

// --- internals ----------------------------------------------------------

func (r *Reliable) observe(env msg.Envelope, dropped bool) {
	if r.opts.Observer != nil {
		r.opts.Observer(env, dropped)
	}
}

func (r *Reliable) count(name string, delta int64) {
	if r.opts.Counters != nil {
		r.opts.Counters.Add(name, delta)
	}
}

// gaugeMax raises a high-water gauge when counters are installed.
func (r *Reliable) gaugeMax(name string, v int64) {
	if r.opts.Counters != nil {
		r.opts.Counters.Max(name, v)
	}
}

// flushLinkLocked drains a link's unsent tail into LinkBatch frames of at
// most BatchMax payloads each, piggybacking any ack owed to the same peer
// onto the first one. The caller holds r.mu and sends the returned frames
// after unlocking.
func (r *Reliable) flushLinkLocked(key linkKey, sl *sendLink) []msg.Message {
	if sl.unsent == 0 {
		return nil
	}
	frames := sl.inflight[len(sl.inflight)-sl.unsent:]
	var out []msg.Message
	for start := 0; start < len(frames); start += r.opts.BatchMax {
		end := start + r.opts.BatchMax
		if end > len(frames) {
			end = len(frames)
		}
		chunk := frames[start:end]
		items := make([]msg.Message, len(chunk))
		for i, f := range chunk {
			items[i] = f.m
		}
		b := msg.LinkBatch{Epoch: sl.epoch, Base: chunk[0].seq, Items: items}
		if ack, owed := r.ackPending[key]; owed {
			b.AckEpoch, b.AckCum, b.AckInc = ack.Epoch, ack.Cum, ack.Inc
			delete(r.ackPending, key)
			r.count(metrics.LinkAcksSent, 1)
		}
		r.gaugeMax(metrics.WireBatchSize, int64(len(items)))
		out = append(out, b)
	}
	sl.unsent = 0
	r.count(metrics.WireFlushes, 1)
	return out
}

// flushAll transmits every link's unsent tail and every ack still owed with
// nothing to piggyback on. Links flush in deterministic (from, to) order so
// a virtual-clock run replays identically.
func (r *Reliable) flushAll() {
	type outFrame struct {
		key linkKey
		m   msg.Message
	}
	var out []outFrame
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	keys := make([]linkKey, 0, len(r.sends))
	for key := range r.sends {
		keys = append(keys, key)
	}
	for key := range r.ackPending {
		if _, dup := r.sends[key]; !dup {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, key := range keys {
		if sl := r.sends[key]; sl != nil {
			for _, m := range r.flushLinkLocked(key, sl) {
				out = append(out, outFrame{key, m})
			}
		}
		if ack, owed := r.ackPending[key]; owed {
			// No data went toward this peer: the ack travels alone.
			delete(r.ackPending, key)
			r.count(metrics.LinkAcksSent, 1)
			out = append(out, outFrame{key, ack})
		}
	}
	r.mu.Unlock()
	for _, f := range out {
		r.inner.Send(f.key.from, f.key.to, f.m)
	}
}

// flushLoop drives the batcher at FlushInterval cadence.
func (r *Reliable) flushLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.done:
			return
		case <-r.clk.After(r.opts.FlushInterval):
		}
		r.flushAll()
	}
}

// sendLinkLocked returns (creating if needed) the send session for a link.
func (r *Reliable) sendLinkLocked(from, to ids.SiteID) *sendLink {
	key := linkKey{from, to}
	sl := r.sends[key]
	if sl == nil {
		epoch := r.opts.Epoch
		if inc, ok := r.incarnation[from]; ok {
			epoch = inc
		}
		sl = &sendLink{epoch: epoch, nextSeq: 1}
		r.sends[key] = sl
	}
	return sl
}

// resetSendLinkLocked opens a fresh session at epoch, dropping anything in
// flight or queued (addressed to a dead incarnation: ordinary loss).
func (r *Reliable) resetSendLinkLocked(sl *sendLink, epoch uint64) {
	if n := len(sl.inflight) + len(sl.pending); n > 0 {
		r.count(metrics.LinkResetDropped, int64(n))
		r.outstanding -= n
		r.noteIdleLocked()
	}
	if epoch <= sl.epoch {
		epoch = sl.epoch + 1
	}
	sl.epoch = epoch
	sl.nextSeq = 1
	sl.inflight = nil
	sl.unsent = 0
	sl.pending = nil
}

// armLocked starts a fresh backoff window for a link's oldest unacked frame.
func (r *Reliable) armLocked(sl *sendLink, now time.Time) {
	sl.backoff = r.opts.RetransmitInitial
	sl.retryAt = now.Add(r.jitteredLocked(sl.backoff))
}

func (r *Reliable) jitteredLocked(d time.Duration) time.Duration {
	return d + time.Duration(r.opts.RetransmitJitter*r.rng.Float64()*float64(d))
}

// receive demultiplexes one frame arriving at self's inner handler.
func (r *Reliable) receive(self, from ids.SiteID, m msg.Message) {
	switch f := m.(type) {
	case msg.LinkData:
		r.receiveData(self, from, f)
	case msg.LinkBatch:
		r.receiveBatch(self, from, f)
	case msg.LinkAck:
		r.receiveAck(self, from, f)
	case msg.LinkReset:
		r.receiveReset(self, from, f)
	default:
		// A peer not running the session layer: pass through unchanged.
		r.mu.Lock()
		h := r.handlers[self]
		r.mu.Unlock()
		if h != nil {
			h.Deliver(from, m)
		}
	}
}

// receiveData runs the receiver side of the session: epoch checks, dedup,
// reorder buffering, in-order delivery, and a cumulative ack. The inner
// network invokes handlers serially per link, so per-link state is never
// processed concurrently.
func (r *Reliable) receiveData(self, from ids.SiteID, f msg.LinkData) {
	key := linkKey{from, self}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	rl := r.recvs[key]
	if rl == nil {
		rl = &recvLink{epoch: f.Epoch, expected: 1, buffer: make(map[uint64]msg.Message)}
		r.recvs[key] = rl
	}
	switch {
	case f.Epoch < rl.epoch:
		// Stale traffic from a previous session: never deliver, never ack.
		r.count(metrics.LinkStaleDropped, 1)
		r.mu.Unlock()
		return
	case f.Epoch > rl.epoch:
		// The sender opened a new session (e.g. after a restart).
		rl.epoch = f.Epoch
		rl.expected = 1
		rl.buffer = make(map[uint64]msg.Message)
	}
	var deliver []msg.Message
	switch {
	case f.Seq < rl.expected:
		// Duplicate of a delivered frame; re-ack so the sender stops.
		r.count(metrics.LinkDupDropped, 1)
	case f.Seq == rl.expected:
		deliver = append(deliver, f.Payload)
		rl.expected++
		for {
			p, ok := rl.buffer[rl.expected]
			if !ok {
				break
			}
			delete(rl.buffer, rl.expected)
			deliver = append(deliver, p)
			rl.expected++
		}
	default: // ahead of a gap
		if _, ok := rl.buffer[f.Seq]; ok {
			r.count(metrics.LinkDupDropped, 1)
		} else if len(rl.buffer) < 4*r.opts.Window {
			rl.buffer[f.Seq] = f.Payload
			r.count(metrics.LinkReorderBuffered, 1)
		}
		// Over the buffer bound the frame is dropped; the sender
		// retransmits it after the gap fills.
	}
	inc := r.incarnation[self]
	if inc == 0 {
		inc = r.opts.Epoch
	}
	ack := msg.LinkAck{Epoch: rl.epoch, Cum: rl.expected - 1, Inc: inc}
	batching := r.batching()
	if batching {
		// Acks are cumulative, so the latest one supersedes anything
		// already owed; it rides the next data batch toward the peer, or
		// goes out alone at the next flush tick.
		r.ackPending[linkKey{self, from}] = ack
	}
	h := r.handlers[self]
	r.mu.Unlock()

	if h != nil {
		for _, p := range deliver {
			h.Deliver(from, p)
		}
	}
	if !batching {
		r.count(metrics.LinkAcksSent, 1)
		r.inner.Send(self, from, ack)
	}
}

// receiveBatch unpacks a LinkBatch: its piggybacked ack first (opening the
// window before new data arrives on the reverse path), then each payload in
// sequence order through the ordinary LinkData machinery.
func (r *Reliable) receiveBatch(self, from ids.SiteID, b msg.LinkBatch) {
	if b.AckEpoch != 0 {
		r.receiveAck(self, from, msg.LinkAck{Epoch: b.AckEpoch, Cum: b.AckCum, Inc: b.AckInc})
	}
	for i, item := range b.Items {
		r.receiveData(self, from, msg.LinkData{Epoch: b.Epoch, Seq: b.Base + uint64(i), Payload: item})
	}
}

// receiveAck drops acknowledged frames from the window and promotes queued
// messages into the space opened.
func (r *Reliable) receiveAck(self, from ids.SiteID, a msg.LinkAck) {
	key := linkKey{self, from}
	var out []msg.Message
	r.mu.Lock()
	sl := r.sends[key]
	if sl == nil || r.closed {
		r.mu.Unlock()
		return
	}
	if a.Inc != 0 {
		if a.Inc < sl.peerInc {
			// Ack from a dead incarnation of the peer, delayed in the
			// network: ignore it entirely.
			r.mu.Unlock()
			return
		}
		if sl.peerInc != 0 && a.Inc > sl.peerInc {
			// The peer restarted and its LinkReset announcement was lost;
			// the incarnation piggybacked on the ack reveals it. Reset the
			// session just as if the LinkReset had arrived.
			sl.peerInc = a.Inc
			r.count(metrics.LinkResets, 1)
			next := sl.epoch + 1
			if inc := r.incarnation[self]; inc > next {
				next = inc
			}
			r.resetSendLinkLocked(sl, next)
			r.mu.Unlock()
			return
		}
		sl.peerInc = a.Inc
	}
	if a.Epoch != sl.epoch {
		r.mu.Unlock()
		return
	}
	progressed := false
	for len(sl.inflight) > 0 && sl.inflight[0].seq <= a.Cum {
		sl.inflight = sl.inflight[1:]
		r.outstanding--
		progressed = true
	}
	if progressed {
		r.noteIdleLocked()
		for len(sl.pending) > 0 && len(sl.inflight) < r.opts.Window {
			m := sl.pending[0]
			sl.pending = sl.pending[1:]
			seq := sl.nextSeq
			sl.nextSeq++
			sl.inflight = append(sl.inflight, linkFrame{seq: seq, m: m})
			if r.batching() {
				// Promoted frames join the unsent tail; the flusher
				// batches them instead of one LinkData per frame here.
				sl.unsent++
			} else {
				out = append(out, msg.LinkData{Epoch: sl.epoch, Seq: seq, Payload: m})
			}
		}
		if len(sl.inflight) > 0 {
			r.armLocked(sl, r.clk.Now())
		}
	}
	r.mu.Unlock()
	for _, m := range out {
		r.inner.Send(self, from, m)
	}
}

// receiveReset handles a peer's restart announcement: the send session
// toward it is dead (its receive state is gone), so open a fresh one, and
// forget receive state so stale buffered frames cannot linger.
func (r *Reliable) receiveReset(self, from ids.SiteID, lr msg.LinkReset) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.count(metrics.LinkResets, 1)
	if sl := r.sends[linkKey{self, from}]; sl != nil {
		next := sl.epoch + 1
		if inc := r.incarnation[self]; inc > next {
			next = inc
		}
		r.resetSendLinkLocked(sl, next)
		if lr.Epoch > sl.peerInc {
			sl.peerInc = lr.Epoch
		}
	}
	delete(r.recvs, linkKey{from, self})
	// Any ack owed toward the restarted peer refers to a forgotten session.
	delete(r.ackPending, linkKey{self, from})
	r.mu.Unlock()
}

// retransmitLoop periodically rescans links for overdue frames. All
// in-flight frames of an overdue link are resent (the receiver deduplicates
// ones that made it) and the link's backoff doubles up to the cap.
func (r *Reliable) retransmitLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.done:
			return
		case <-r.clk.After(r.opts.Tick):
		}
		r.retransmitDue(r.clk.Now())
	}
}

func (r *Reliable) retransmitDue(now time.Time) {
	type resend struct {
		key   linkKey
		frame msg.Message
	}
	var out []resend
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	for key, sl := range r.sends {
		if len(sl.inflight) == 0 || now.Before(sl.retryAt) {
			continue
		}
		if r.batching() {
			// Resend the whole window as chunked batches. The tail that
			// was never transmitted goes out with it, so clear the unsent
			// mark (first transmissions are not counted as retransmits).
			for start := 0; start < len(sl.inflight); start += r.opts.BatchMax {
				end := start + r.opts.BatchMax
				if end > len(sl.inflight) {
					end = len(sl.inflight)
				}
				chunk := sl.inflight[start:end]
				items := make([]msg.Message, len(chunk))
				for i, f := range chunk {
					items[i] = f.m
				}
				out = append(out, resend{key, msg.LinkBatch{Epoch: sl.epoch, Base: chunk[0].seq, Items: items}})
			}
			r.count(metrics.LinkRetransmits, int64(len(sl.inflight)-sl.unsent))
			sl.unsent = 0
		} else {
			for _, f := range sl.inflight {
				out = append(out, resend{key, msg.LinkData{Epoch: sl.epoch, Seq: f.seq, Payload: f.m}})
			}
			r.count(metrics.LinkRetransmits, int64(len(sl.inflight)))
		}
		sl.backoff *= 2
		if sl.backoff > r.opts.RetransmitMax {
			sl.backoff = r.opts.RetransmitMax
		}
		sl.retryAt = now.Add(r.jitteredLocked(sl.backoff))
	}
	r.mu.Unlock()
	for _, s := range out {
		r.inner.Send(s.key.from, s.key.to, s.frame)
	}
}

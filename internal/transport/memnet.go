package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"backtrace/internal/clock"
	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/msg"
	"backtrace/internal/wire"
)

// Options configures an in-memory network.
type Options struct {
	// Clock supplies timestamps for latency scheduling and quiesce
	// deadlines. Nil means the wall clock; the deterministic simulation
	// injects a virtual clock.
	Clock clock.Clock
	// Latency is the base one-way delivery delay. Zero means immediate.
	Latency time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter) per
	// message. Delivery remains FIFO per destination.
	Jitter time.Duration
	// DropProb is the probability in [0, 1] that any given message is
	// lost. The decision is made at send time.
	DropProb float64
	// DupProb is the probability in [0, 1] that a message is delivered
	// twice (the duplicate follows the original in the destination's
	// queue). Stresses receiver-side deduplication in transport.Reliable.
	DupProb float64
	// ReorderProb is the probability in [0, 1] that a message is swapped
	// with the message queued immediately before it at the destination,
	// violating per-link FIFO. Stresses the reorder buffering in
	// transport.Reliable.
	ReorderProb float64
	// Seed seeds the random source used for jitter and drops, making a
	// lossy run reproducible. Zero selects a fixed default seed.
	Seed int64
	// Stepped, when true, disables background delivery entirely: sent
	// messages accumulate in a pending queue until the test delivers them
	// explicitly with DeliverNext, DeliverAll, or DeliverMatching. This is
	// how the paper's race figures are replayed deterministically.
	Stepped bool
	// Observer, if non-nil, is called for every send attempt.
	Observer Observer
	// Codec, if non-nil, passes every sent envelope through a full
	// encode/decode round trip at send time, so in-process runs exercise
	// the same wire format as the TCP transport: what a handler receives
	// is the decoded copy, never the sender's value. The round trip is a
	// pure function of the message, so stepped-mode determinism is
	// preserved. Frames that fail to encode or decode are dropped (and
	// reported to the Observer), like any other transmission loss.
	Codec wire.Codec
	// Counters, if non-nil, receives wire.bytes for every frame encoded by
	// Codec.
	Counters *metrics.Counters
}

// Net is an in-process Network connecting sites in one OS process.
//
// In the default (asynchronous) mode each destination site has a delivery
// worker goroutine that pops messages in send order, waits out the simulated
// latency, and invokes the site's handler. In stepped mode there are no
// workers and the test controls delivery.
type Net struct {
	opts Options
	clk  clock.Clock

	mu       sync.Mutex
	handlers map[ids.SiteID]Handler
	workers  map[ids.SiteID]*memWorker
	crashed  map[ids.SiteID]bool
	cut      map[[2]ids.SiteID]bool // symmetric partition pairs
	rng      *rand.Rand
	pending  []delivery // stepped mode only
	inflight int
	quiet    chan struct{} // non-nil while a Quiesce waits; closed at inflight==0
	closed   bool
}

var _ Network = (*Net)(nil)

type delivery struct {
	env     msg.Envelope
	ready   time.Time
	dropped bool
	swap    bool // reorder injection: swap with the previously queued message
}

// NewNet builds an in-memory network with the given options.
func NewNet(opts Options) *Net {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	n := &Net{
		opts:     opts,
		clk:      clock.OrWall(opts.Clock),
		handlers: make(map[ids.SiteID]Handler),
		workers:  make(map[ids.SiteID]*memWorker),
		crashed:  make(map[ids.SiteID]bool),
		cut:      make(map[[2]ids.SiteID]bool),
		rng:      rand.New(rand.NewSource(seed)),
	}
	return n
}

// Register implements Network.
func (n *Net) Register(site ids.SiteID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[site] = h
	if !n.opts.Stepped {
		if _, ok := n.workers[site]; !ok {
			w := newMemWorker(n, site)
			n.workers[site] = w
			go w.run()
		}
	}
}

func pairKey(a, b ids.SiteID) [2]ids.SiteID {
	if a > b {
		a, b = b, a
	}
	return [2]ids.SiteID{a, b}
}

// Send implements Network.
func (n *Net) Send(from, to ids.SiteID, m msg.Message) {
	env := msg.Envelope{From: from, To: to, M: m}

	if c := n.opts.Codec; c != nil {
		dec, err := n.roundTrip(c, &env)
		if err != nil {
			if n.opts.Observer != nil {
				n.opts.Observer(env, true)
			}
			return
		}
		env = dec
	}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	dropped := n.crashed[from] || n.crashed[to] || n.cut[pairKey(from, to)]
	if !dropped && n.opts.DropProb > 0 && n.rng.Float64() < n.opts.DropProb {
		dropped = true
	}
	if _, ok := n.handlers[to]; !ok {
		dropped = true
	}
	obs := n.opts.Observer
	if dropped {
		n.mu.Unlock()
		if obs != nil {
			obs(env, true)
		}
		return
	}

	var extra time.Duration
	if n.opts.Jitter > 0 {
		extra = time.Duration(n.rng.Int63n(int64(n.opts.Jitter)))
	}
	dup := n.opts.DupProb > 0 && n.rng.Float64() < n.opts.DupProb
	swap := n.opts.ReorderProb > 0 && n.rng.Float64() < n.opts.ReorderProb
	d := delivery{env: env, ready: n.clk.Now().Add(n.opts.Latency + extra), swap: swap}
	n.inflight++
	if dup {
		n.inflight++
	}
	if n.opts.Stepped {
		n.insertPending(d)
		if dup {
			n.insertPending(delivery{env: env, ready: d.ready})
		}
		n.mu.Unlock()
	} else {
		w := n.workers[to]
		n.mu.Unlock()
		w.enqueue(d)
		if dup {
			w.enqueue(delivery{env: env, ready: d.ready})
		}
	}
	if obs != nil {
		obs(env, false)
	}
}

// roundTrip encodes env with the configured codec and decodes the frame
// back, counting the frame's size under wire.bytes. The decoded envelope
// shares no memory with the sender's message.
func (n *Net) roundTrip(c wire.Codec, env *msg.Envelope) (msg.Envelope, error) {
	buf := wire.GetBuffer()
	frame, err := c.Encode(env, buf)
	if err != nil {
		wire.PutBuffer(buf)
		return msg.Envelope{}, err
	}
	if n.opts.Counters != nil {
		n.opts.Counters.Add(metrics.WireBytes, int64(len(frame)))
	}
	dec, err := wire.DecodeAny(frame)
	wire.PutBuffer(frame)
	return dec, err
}

// insertPending appends d to the stepped-mode queue, swapping it before the
// previously queued message when reorder injection fired. Caller holds n.mu.
func (n *Net) insertPending(d delivery) {
	if d.swap && len(n.pending) > 0 {
		last := n.pending[len(n.pending)-1]
		n.pending[len(n.pending)-1] = d
		n.pending = append(n.pending, last)
		return
	}
	n.pending = append(n.pending, d)
}

// finishDelivery decrements the in-flight counter after a handler returns.
func (n *Net) finishDelivery() {
	n.mu.Lock()
	n.inflight--
	n.noteQuietLocked()
	n.mu.Unlock()
}

// noteQuietLocked wakes a pending Quiesce once nothing is in flight. The
// caller holds n.mu.
func (n *Net) noteQuietLocked() {
	if n.inflight == 0 && n.quiet != nil {
		close(n.quiet)
		n.quiet = nil
	}
}

// dispatch invokes the destination handler for one delivery and accounts
// for it. The caller must not hold n.mu.
func (n *Net) dispatch(d delivery) {
	n.mu.Lock()
	h := n.handlers[d.env.To]
	crashed := n.crashed[d.env.To]
	n.mu.Unlock()
	if h != nil && !crashed {
		h.Deliver(d.env.From, d.env.M)
	}
	n.finishDelivery()
}

// SetDropProb changes the message-loss probability at runtime (tests build
// their object graphs reliably, then inject loss for the collection phase).
func (n *Net) SetDropProb(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.opts.DropProb = p
}

// SetDupProb changes the duplication probability at runtime.
func (n *Net) SetDupProb(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.opts.DupProb = p
}

// SetReorderProb changes the reordering probability at runtime.
func (n *Net) SetReorderProb(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.opts.ReorderProb = p
}

// Crash marks a site as crashed: all messages to and from it are dropped
// (including ones already queued) until Restart is called. Crashing a site
// does not clear its registered handler.
func (n *Net) Crash(site ids.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[site] = true
}

// Restart clears a site's crashed status.
func (n *Net) Restart(site ids.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, site)
}

// Partition cuts the bidirectional link between two sites.
func (n *Net) Partition(a, b ids.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[pairKey(a, b)] = true
}

// Heal restores the link between two sites.
func (n *Net) Heal(a, b ids.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, pairKey(a, b))
}

// Quiesce blocks until no messages are in flight or queued, or until the
// timeout elapses. It returns an error on timeout. Quiesce is only
// meaningful in asynchronous mode; in stepped mode use DeliverAll.
//
// The wait is event-driven: delivery completion signals a waiter channel
// (no polling), and the timeout comes from the injected Clock, so a virtual
// clock can expire it deterministically.
func (n *Net) Quiesce(timeout time.Duration) error {
	deadline := n.clk.Now().Add(timeout)
	n.mu.Lock()
	for n.inflight > 0 && !n.closed {
		if n.quiet == nil {
			n.quiet = make(chan struct{})
		}
		quiet := n.quiet
		in := n.inflight
		n.mu.Unlock()
		remaining := deadline.Sub(n.clk.Now())
		if remaining <= 0 {
			return fmt.Errorf("network quiesce: %d messages still in flight after %v", in, timeout)
		}
		select {
		case <-quiet:
		case <-n.clk.After(remaining):
		}
		n.mu.Lock()
	}
	n.mu.Unlock()
	return nil
}

// Close implements Network. It stops delivery workers; queued messages are
// discarded.
func (n *Net) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.inflight = 0
	n.pending = nil
	n.noteQuietLocked()
	workers := make([]*memWorker, 0, len(n.workers))
	for _, w := range n.workers {
		workers = append(workers, w)
	}
	n.mu.Unlock()
	for _, w := range workers {
		w.stop()
	}
}

// --- stepped mode -----------------------------------------------------

// PendingCount returns the number of undelivered messages in stepped mode.
func (n *Net) PendingCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.pending)
}

// Pending returns a snapshot of the undelivered envelopes in send order.
func (n *Net) Pending() []msg.Envelope {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]msg.Envelope, len(n.pending))
	for i, d := range n.pending {
		out[i] = d.env
	}
	return out
}

// DeliverNext delivers the oldest pending message synchronously on the
// caller's goroutine. It reports whether a message was delivered.
func (n *Net) DeliverNext() bool {
	n.mu.Lock()
	if len(n.pending) == 0 {
		n.mu.Unlock()
		return false
	}
	d := n.pending[0]
	n.pending = n.pending[1:]
	n.mu.Unlock()
	n.dispatch(d)
	return true
}

// DeliverAll repeatedly delivers pending messages (including messages
// enqueued by the handlers it invokes) until none remain, and returns the
// number delivered. maxSteps guards against protocol livelock; DeliverAll
// panics if it is exceeded, which indicates a protocol bug.
func (n *Net) DeliverAll() int {
	const maxSteps = 1 << 20
	count := 0
	for n.DeliverNext() {
		count++
		if count > maxSteps {
			panic("transport: DeliverAll exceeded step budget; message livelock?")
		}
	}
	return count
}

// DeliverIndex delivers the i'th pending message (0-based, in send order)
// synchronously. It reports whether such a message existed. Randomized
// interleaving tests use it to scramble delivery order.
func (n *Net) DeliverIndex(i int) bool {
	n.mu.Lock()
	if i < 0 || i >= len(n.pending) {
		n.mu.Unlock()
		return false
	}
	d := n.pending[i]
	n.pending = append(n.pending[:i], n.pending[i+1:]...)
	n.mu.Unlock()
	n.dispatch(d)
	return true
}

// DeliverMatching delivers, in order, every pending message satisfying pred
// (messages enqueued during those deliveries are considered too). Messages
// not matching stay queued in order. It returns the number delivered.
func (n *Net) DeliverMatching(pred func(msg.Envelope) bool) int {
	count := 0
	for {
		n.mu.Lock()
		idx := -1
		for i, d := range n.pending {
			if pred(d.env) {
				idx = i
				break
			}
		}
		if idx < 0 {
			n.mu.Unlock()
			return count
		}
		d := n.pending[idx]
		n.pending = append(n.pending[:idx], n.pending[idx+1:]...)
		n.mu.Unlock()
		n.dispatch(d)
		count++
	}
}

// DropMatching discards every pending message satisfying pred and returns
// the number dropped. It simulates message loss at precise points.
func (n *Net) DropMatching(pred func(msg.Envelope) bool) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	kept := n.pending[:0]
	count := 0
	for _, d := range n.pending {
		if pred(d.env) {
			count++
			n.inflight--
			continue
		}
		kept = append(kept, d)
	}
	n.pending = kept
	n.noteQuietLocked()
	return count
}

// PendingLinks returns the distinct (from, to) pairs that currently have
// pending messages in stepped mode, sorted by (from, to). The simulation
// scheduler enumerates them to pick a link whose head to deliver, which
// explores every cross-link interleaving while preserving the per-link FIFO
// order the protocol assumes (R1).
func (n *Net) PendingLinks() [][2]ids.SiteID {
	n.mu.Lock()
	defer n.mu.Unlock()
	seen := make(map[[2]ids.SiteID]struct{})
	out := make([][2]ids.SiteID, 0, 8)
	for _, d := range n.pending {
		key := [2]ids.SiteID{d.env.From, d.env.To}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, key)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// linkHeadLocked returns the index of the oldest pending message on the
// (from, to) link, or -1. Caller holds n.mu.
func (n *Net) linkHeadLocked(from, to ids.SiteID) int {
	for i, d := range n.pending {
		if d.env.From == from && d.env.To == to {
			return i
		}
	}
	return -1
}

// DeliverLinkHead delivers the oldest pending message on the (from, to)
// link synchronously, preserving that link's FIFO order. It reports whether
// such a message existed.
func (n *Net) DeliverLinkHead(from, to ids.SiteID) bool {
	n.mu.Lock()
	i := n.linkHeadLocked(from, to)
	if i < 0 {
		n.mu.Unlock()
		return false
	}
	d := n.pending[i]
	n.pending = append(n.pending[:i], n.pending[i+1:]...)
	n.mu.Unlock()
	n.dispatch(d)
	return true
}

// DropLinkHead discards the oldest pending message on the (from, to) link —
// targeted loss injection for the simulation's fault schedules. It reports
// whether a message was dropped.
func (n *Net) DropLinkHead(from, to ids.SiteID) bool {
	n.mu.Lock()
	i := n.linkHeadLocked(from, to)
	if i < 0 {
		n.mu.Unlock()
		return false
	}
	env := n.pending[i].env
	n.pending = append(n.pending[:i], n.pending[i+1:]...)
	n.inflight--
	n.noteQuietLocked()
	obs := n.opts.Observer
	n.mu.Unlock()
	if obs != nil {
		// Count the injected loss like any other drop.
		obs(env, true)
	}
	return true
}

// DupLinkHead appends a duplicate of the oldest pending message on the
// (from, to) link to the back of the pending queue — duplication injection
// for the simulation's fault schedules. It reports whether a message was
// duplicated.
func (n *Net) DupLinkHead(from, to ids.SiteID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	i := n.linkHeadLocked(from, to)
	if i < 0 {
		return false
	}
	n.pending = append(n.pending, delivery{env: n.pending[i].env, ready: n.pending[i].ready})
	n.inflight++
	return true
}

// --- asynchronous delivery worker --------------------------------------

// memWorker delivers messages to a single destination site in FIFO order.
type memWorker struct {
	net  *Net
	site ids.SiteID

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []delivery
	halted bool
	done   chan struct{}
}

func newMemWorker(n *Net, site ids.SiteID) *memWorker {
	w := &memWorker{net: n, site: site, done: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	return w
}

func (w *memWorker) enqueue(d delivery) {
	w.mu.Lock()
	if w.halted {
		w.mu.Unlock()
		w.net.finishDelivery()
		return
	}
	if d.swap && len(w.queue) > 0 {
		last := w.queue[len(w.queue)-1]
		w.queue[len(w.queue)-1] = d
		w.queue = append(w.queue, last)
	} else {
		w.queue = append(w.queue, d)
	}
	w.cond.Signal()
	w.mu.Unlock()
}

func (w *memWorker) run() {
	defer close(w.done)
	for {
		w.mu.Lock()
		for len(w.queue) == 0 && !w.halted {
			w.cond.Wait()
		}
		if w.halted {
			// Drain remaining accounting so Quiesce does not hang.
			remaining := len(w.queue)
			w.queue = nil
			w.mu.Unlock()
			for i := 0; i < remaining; i++ {
				w.net.finishDelivery()
			}
			return
		}
		d := w.queue[0]
		w.queue = w.queue[1:]
		w.mu.Unlock()

		if wait := d.ready.Sub(w.net.clk.Now()); wait > 0 {
			w.net.clk.Sleep(wait)
		}
		w.net.dispatch(d)
	}
}

func (w *memWorker) stop() {
	w.mu.Lock()
	w.halted = true
	w.cond.Broadcast()
	w.mu.Unlock()
	<-w.done
}

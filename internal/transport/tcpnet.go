package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"backtrace/internal/ids"
	"backtrace/internal/msg"
)

// TCPNode is a Network implementation for one site running as its own OS
// process, exchanging gob-encoded envelopes over TCP. Every node knows the
// listen address of every site (static membership, as in the paper's
// setting of a fixed object store spread over sites).
//
// Connections are established lazily on first send and reused; each
// incoming connection is drained by its own goroutine, which invokes the
// handler inline so per-link FIFO order is preserved.
type TCPNode struct {
	self  ids.SiteID
	addrs map[ids.SiteID]string

	mu       sync.Mutex
	handler  Handler
	conns    map[ids.SiteID]*tcpConn
	accepted map[net.Conn]struct{}
	ln       net.Listener
	closed   bool
	obs      Observer

	wg sync.WaitGroup
}

var _ Network = (*TCPNode)(nil)

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

// NewTCPNode creates a node for site self that will listen on addrs[self]
// and send to the other addresses. Call Register to install the handler,
// then Listen to start accepting.
func NewTCPNode(self ids.SiteID, addrs map[ids.SiteID]string, obs Observer) (*TCPNode, error) {
	if _, ok := addrs[self]; !ok {
		return nil, fmt.Errorf("tcpnode: no listen address for self %v", self)
	}
	msg.RegisterGob()
	copied := make(map[ids.SiteID]string, len(addrs))
	for k, v := range addrs {
		copied[k] = v
	}
	return &TCPNode{
		self:     self,
		addrs:    copied,
		conns:    make(map[ids.SiteID]*tcpConn),
		accepted: make(map[net.Conn]struct{}),
		obs:      obs,
	}, nil
}

// Register implements Network. Only the node's own site may be registered.
func (t *TCPNode) Register(site ids.SiteID, h Handler) {
	if site != t.self {
		return
	}
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// Listen starts accepting connections on the node's address. It returns the
// bound address, which is useful when the configured address has port 0.
func (t *TCPNode) Listen() (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ln != nil {
		return t.ln.Addr().String(), nil
	}
	ln, err := net.Listen("tcp", t.addrs[t.self])
	if err != nil {
		return "", fmt.Errorf("tcpnode listen %v: %w", t.self, err)
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (t *TCPNode) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPNode) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var env msg.Envelope
		if err := dec.Decode(&env); err != nil {
			// EOF, a closed connection, or stream damage all end the
			// read loop; any messages lost with it are ordinary message
			// loss, which the protocol tolerates by timeout.
			return
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil && env.To == t.self {
			h.Deliver(env.From, env.M)
		}
	}
}

// Send implements Network. Failures (unknown site, dial or encode errors)
// are treated as message loss, which the protocol tolerates by timeout.
func (t *TCPNode) Send(from, to ids.SiteID, m msg.Message) {
	env := msg.Envelope{From: from, To: to, M: m}
	if from != t.self {
		t.observe(env, true)
		return
	}
	if to == t.self {
		// Loopback: deliver directly.
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil {
			h.Deliver(from, m)
			t.observe(env, false)
		} else {
			t.observe(env, true)
		}
		return
	}
	c, err := t.connTo(to)
	if err != nil {
		t.observe(env, true)
		return
	}
	c.mu.Lock()
	err = c.enc.Encode(env)
	c.mu.Unlock()
	if err != nil {
		// Drop the broken connection; the next send redials.
		t.mu.Lock()
		if t.conns[to] == c {
			delete(t.conns, to)
		}
		t.mu.Unlock()
		c.conn.Close()
		t.observe(env, true)
		return
	}
	t.observe(env, false)
}

func (t *TCPNode) observe(env msg.Envelope, dropped bool) {
	if t.obs != nil {
		t.obs(env, dropped)
	}
}

func (t *TCPNode) connTo(to ids.SiteID) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errors.New("tcpnode: closed")
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.addrs[to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcpnode: unknown site %v", to)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnode dial %v: %w", to, err)
	}
	c := &tcpConn{conn: conn, enc: gob.NewEncoder(conn)}
	t.mu.Lock()
	if existing, ok := t.conns[to]; ok {
		t.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	t.conns[to] = c
	t.mu.Unlock()
	return c, nil
}

// SetAddr updates the known address of a site (used when peers bind
// ephemeral ports and gossip their bound addresses out of band).
func (t *TCPNode) SetAddr(site ids.SiteID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[site] = addr
}

// Close implements Network: it stops the listener, closes connections, and
// waits for reader goroutines to exit.
func (t *TCPNode) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	ln := t.ln
	conns := make([]*tcpConn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	t.conns = make(map[ids.SiteID]*tcpConn)
	inbound := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.conn.Close()
	}
	for _, c := range inbound {
		c.Close()
	}
	t.wg.Wait()
}

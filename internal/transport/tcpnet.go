package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/msg"
)

// Redial/queue tuning for TCPNode's per-peer senders.
const (
	tcpRedialInitial = 5 * time.Millisecond
	tcpRedialMax     = 500 * time.Millisecond
	tcpDialTimeout   = time.Second
	tcpQueueCap      = 4096
)

// TCPNode is a Network implementation for one site running as its own OS
// process, exchanging gob-encoded envelopes over TCP. Every node knows the
// listen address of every site (static membership, as in the paper's
// setting of a fixed object store spread over sites).
//
// Each peer gets a dedicated sender goroutine draining a bounded pending
// queue, so Send never blocks on the network. The sender dials lazily,
// evicts the connection on encode failure and redials with exponential
// backoff, keeping the failed message at the front of the queue; dial and
// encode failures are counted under metrics.TransportSendFail. Messages
// already written into a connection that later dies are ordinary message
// loss, which the protocol tolerates by timeout (or which the Reliable
// session layer repairs by retransmission). Each incoming connection is
// drained by its own goroutine, which invokes the handler inline so
// per-link FIFO order is preserved.
type TCPNode struct {
	self  ids.SiteID
	addrs map[ids.SiteID]string

	mu       sync.Mutex
	handler  Handler
	senders  map[ids.SiteID]*tcpSender
	accepted map[net.Conn]struct{}
	ln       net.Listener
	closed   bool
	obs      Observer
	counters *metrics.Counters

	done chan struct{}
	wg   sync.WaitGroup
}

var _ Network = (*TCPNode)(nil)

// NewTCPNode creates a node for site self that will listen on addrs[self]
// and send to the other addresses. Call Register to install the handler,
// then Listen to start accepting.
func NewTCPNode(self ids.SiteID, addrs map[ids.SiteID]string, obs Observer) (*TCPNode, error) {
	if _, ok := addrs[self]; !ok {
		return nil, fmt.Errorf("tcpnode: no listen address for self %v", self)
	}
	msg.RegisterGob()
	copied := make(map[ids.SiteID]string, len(addrs))
	for k, v := range addrs {
		copied[k] = v
	}
	return &TCPNode{
		self:     self,
		addrs:    copied,
		senders:  make(map[ids.SiteID]*tcpSender),
		accepted: make(map[net.Conn]struct{}),
		obs:      obs,
		done:     make(chan struct{}),
	}, nil
}

// Register implements Network. Only the node's own site may be registered.
func (t *TCPNode) Register(site ids.SiteID, h Handler) {
	if site != t.self {
		return
	}
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// SetCounters installs a counter set; dial and encode failures are then
// recorded under metrics.TransportSendFail.
func (t *TCPNode) SetCounters(c *metrics.Counters) {
	t.mu.Lock()
	t.counters = c
	t.mu.Unlock()
}

// Listen starts accepting connections on the node's address. It returns the
// bound address, which is useful when the configured address has port 0.
func (t *TCPNode) Listen() (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ln != nil {
		return t.ln.Addr().String(), nil
	}
	ln, err := net.Listen("tcp", t.addrs[t.self])
	if err != nil {
		return "", fmt.Errorf("tcpnode listen %v: %w", t.self, err)
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (t *TCPNode) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPNode) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var env msg.Envelope
		if err := dec.Decode(&env); err != nil {
			// EOF, a closed connection, or stream damage all end the
			// read loop; any messages lost with it are ordinary message
			// loss, which the protocol tolerates by timeout.
			return
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil && env.To == t.self {
			h.Deliver(env.From, env.M)
		}
	}
}

// Send implements Network. The message is queued for the peer's sender
// goroutine; a full queue, an unknown site, or a spoofed source drops it
// (message loss, which the protocol tolerates by timeout). The Observer
// sees a successful send only once the message is actually written to a
// connection.
func (t *TCPNode) Send(from, to ids.SiteID, m msg.Message) {
	env := msg.Envelope{From: from, To: to, M: m}
	if from != t.self {
		t.observe(env, true)
		return
	}
	if to == t.self {
		// Loopback: deliver directly.
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil {
			h.Deliver(from, m)
			t.observe(env, false)
		} else {
			t.observe(env, true)
		}
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.observe(env, true)
		return
	}
	if _, ok := t.addrs[to]; !ok {
		t.mu.Unlock()
		t.observe(env, true)
		return
	}
	s := t.senders[to]
	if s == nil {
		s = newTCPSender(t, to)
		t.senders[to] = s
		t.wg.Add(1)
		go s.run()
	}
	t.mu.Unlock()
	if !s.enqueue(env) {
		t.observe(env, true)
	}
}

func (t *TCPNode) observe(env msg.Envelope, dropped bool) {
	if t.obs != nil {
		t.obs(env, dropped)
	}
}

func (t *TCPNode) countSendFail() {
	t.mu.Lock()
	c := t.counters
	t.mu.Unlock()
	if c != nil {
		c.Inc(metrics.TransportSendFail)
	}
}

// SetAddr updates the known address of a site (used when peers bind
// ephemeral ports and gossip their bound addresses out of band). The peer's
// sender picks the new address up at its next dial.
func (t *TCPNode) SetAddr(site ids.SiteID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[site] = addr
}

// Close implements Network: it stops the listener, shuts down the per-peer
// senders (dropping whatever is still queued), closes connections, and
// waits for all goroutines to exit.
func (t *TCPNode) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	ln := t.ln
	senders := make([]*tcpSender, 0, len(t.senders))
	for _, s := range t.senders {
		senders = append(senders, s)
	}
	inbound := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()

	close(t.done)
	if ln != nil {
		ln.Close()
	}
	for _, s := range senders {
		s.close()
	}
	for _, c := range inbound {
		c.Close()
	}
	t.wg.Wait()
}

// tcpSender owns the outgoing traffic toward one peer: a bounded FIFO
// queue, the current connection, and the redial backoff. A single goroutine
// (run) consumes the queue, so per-link send order is preserved.
type tcpSender struct {
	node *TCPNode
	to   ids.SiteID

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []msg.Envelope
	conn   net.Conn
	closed bool
}

func newTCPSender(node *TCPNode, to ids.SiteID) *tcpSender {
	s := &tcpSender{node: node, to: to}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue appends env to the pending queue; it reports false when the queue
// is full or the sender is closed.
func (s *tcpSender) enqueue(env msg.Envelope) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.queue) >= tcpQueueCap {
		return false
	}
	s.queue = append(s.queue, env)
	s.cond.Signal()
	return true
}

// close wakes the run loop and unblocks any in-progress encode by closing
// the live connection out from under it.
func (s *tcpSender) close() {
	s.mu.Lock()
	s.closed = true
	conn := s.conn
	s.conn = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

func (s *tcpSender) run() {
	defer s.node.wg.Done()
	var enc *gob.Encoder
	backoff := tcpRedialInitial
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			rest := s.queue
			s.queue = nil
			conn := s.conn
			s.conn = nil
			s.mu.Unlock()
			if conn != nil {
				conn.Close()
			}
			for _, env := range rest {
				s.node.observe(env, true)
			}
			return
		}
		env := s.queue[0]
		connected := s.conn != nil
		s.mu.Unlock()

		if !connected {
			conn, err := s.dial()
			if err != nil {
				s.node.countSendFail()
				s.sleep(backoff)
				backoff *= 2
				if backoff > tcpRedialMax {
					backoff = tcpRedialMax
				}
				continue
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				continue
			}
			s.conn = conn
			s.mu.Unlock()
			enc = gob.NewEncoder(conn)
			backoff = tcpRedialInitial
		}

		if err := enc.Encode(env); err != nil {
			// Evict the broken connection and redial; env stays at the
			// front of the queue and is retried on the fresh connection.
			s.node.countSendFail()
			s.mu.Lock()
			conn := s.conn
			s.conn = nil
			s.mu.Unlock()
			if conn != nil {
				conn.Close()
			}
			enc = nil
			continue
		}
		// This goroutine is the only consumer, so the front is still env.
		s.mu.Lock()
		if len(s.queue) > 0 {
			s.queue = s.queue[1:]
		}
		s.mu.Unlock()
		s.node.observe(env, false)
	}
}

// dial connects to the peer's current address (SetAddr may have changed it
// since the last attempt).
func (s *tcpSender) dial() (net.Conn, error) {
	s.node.mu.Lock()
	addr, ok := s.node.addrs[s.to]
	s.node.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcpnode: unknown site %v", s.to)
	}
	return net.DialTimeout("tcp", addr, tcpDialTimeout)
}

// sleep waits for the backoff interval, returning early if the node closes.
func (s *tcpSender) sleep(d time.Duration) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-s.node.done:
	}
}

package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/msg"
	"backtrace/internal/wire"
)

// Redial/queue tuning for TCPNode's per-peer senders.
const (
	tcpRedialInitial = 5 * time.Millisecond
	tcpRedialMax     = 500 * time.Millisecond
	tcpDialTimeout   = time.Second
	tcpQueueCap      = 4096
	// tcpMaxFrame bounds a received frame's declared length. No protocol
	// message comes anywhere near it; a larger header means a corrupt or
	// hostile stream, and the connection is dropped rather than the memory
	// allocated.
	tcpMaxFrame = 1 << 24
)

// TCPNode is a Network implementation for one site running as its own OS
// process, exchanging codec-framed envelopes over TCP. Every node knows the
// listen address of every site (static membership, as in the paper's
// setting of a fixed object store spread over sites).
//
// On the wire each envelope is one length-prefixed frame: a 4-byte
// big-endian length followed by that many bytes of wire.Codec output. The
// receive path decodes with wire.DecodeAny, dispatching on the frame's
// leading version byte, so a future codec revision can interoperate with
// current peers without negotiation.
//
// Each peer gets a dedicated sender goroutine draining a bounded pending
// queue, so Send never blocks on the network. The sender dials lazily,
// evicts the connection on write failure and redials with exponential
// backoff, keeping the failed message at the front of the queue; dial and
// write failures are counted under metrics.TransportSendFail. Messages
// already written into a connection that later dies are ordinary message
// loss, which the protocol tolerates by timeout (or which the Reliable
// session layer repairs by retransmission). Each incoming connection is
// drained by its own goroutine, which invokes the handler inline so
// per-link FIFO order is preserved.
type TCPNode struct {
	self  ids.SiteID
	addrs map[ids.SiteID]string
	codec wire.Codec

	mu       sync.Mutex
	handler  Handler
	senders  map[ids.SiteID]*tcpSender
	accepted map[net.Conn]struct{}
	ln       net.Listener
	closed   bool
	obs      Observer
	counters *metrics.Counters

	done chan struct{}
	wg   sync.WaitGroup
}

var _ Network = (*TCPNode)(nil)

// TCPOptions configures a TCPNode beyond its address book.
type TCPOptions struct {
	// Observer, if non-nil, is called for every send attempt.
	Observer Observer
	// Codec frames outgoing envelopes. Nil selects wire.Binary. The
	// receive path always accepts every known codec via wire.DecodeAny.
	Codec wire.Codec
	// Counters, if non-nil, receives metrics.TransportSendFail and
	// wire.bytes.
	Counters *metrics.Counters
}

// NewTCPNode creates a node for site self that will listen on addrs[self]
// and send to the other addresses with the default (binary) codec. Call
// Register to install the handler, then Listen to start accepting.
func NewTCPNode(self ids.SiteID, addrs map[ids.SiteID]string, obs Observer) (*TCPNode, error) {
	return NewTCPNodeOpts(self, addrs, TCPOptions{Observer: obs})
}

// NewTCPNodeOpts creates a node for site self with explicit transport
// options.
func NewTCPNodeOpts(self ids.SiteID, addrs map[ids.SiteID]string, opts TCPOptions) (*TCPNode, error) {
	if _, ok := addrs[self]; !ok {
		return nil, fmt.Errorf("tcpnode: no listen address for self %v", self)
	}
	if opts.Codec == nil {
		opts.Codec = wire.Binary{}
	}
	copied := make(map[ids.SiteID]string, len(addrs))
	for k, v := range addrs {
		copied[k] = v
	}
	return &TCPNode{
		self:     self,
		addrs:    copied,
		codec:    opts.Codec,
		senders:  make(map[ids.SiteID]*tcpSender),
		accepted: make(map[net.Conn]struct{}),
		obs:      opts.Observer,
		counters: opts.Counters,
		done:     make(chan struct{}),
	}, nil
}

// Register implements Network. Only the node's own site may be registered.
func (t *TCPNode) Register(site ids.SiteID, h Handler) {
	if site != t.self {
		return
	}
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// SetCounters installs a counter set; dial and encode failures are then
// recorded under metrics.TransportSendFail.
func (t *TCPNode) SetCounters(c *metrics.Counters) {
	t.mu.Lock()
	t.counters = c
	t.mu.Unlock()
}

// Listen starts accepting connections on the node's address. It returns the
// bound address, which is useful when the configured address has port 0.
func (t *TCPNode) Listen() (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ln != nil {
		return t.ln.Addr().String(), nil
	}
	ln, err := net.Listen("tcp", t.addrs[t.self])
	if err != nil {
		return "", fmt.Errorf("tcpnode listen %v: %w", t.self, err)
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (t *TCPNode) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPNode) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	var header [4]byte
	var payload []byte // reused across frames; Decode never retains it
	for {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			// EOF, a closed connection, or stream damage all end the
			// read loop; any messages lost with it are ordinary message
			// loss, which the protocol tolerates by timeout.
			return
		}
		n := binary.BigEndian.Uint32(header[:])
		if n == 0 || n > tcpMaxFrame {
			return // corrupt length header: drop the connection
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return
		}
		env, err := wire.DecodeAny(payload)
		if err != nil {
			// A frame that parses as a length but not as a message means
			// the stream is damaged; resynchronizing is hopeless, so drop
			// the connection and let the sender redial.
			return
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil && env.To == t.self {
			h.Deliver(env.From, env.M)
		}
	}
}

// Send implements Network. The message is queued for the peer's sender
// goroutine; a full queue, an unknown site, or a spoofed source drops it
// (message loss, which the protocol tolerates by timeout). The Observer
// sees a successful send only once the message is actually written to a
// connection.
func (t *TCPNode) Send(from, to ids.SiteID, m msg.Message) {
	env := msg.Envelope{From: from, To: to, M: m}
	if from != t.self {
		t.observe(env, true)
		return
	}
	if to == t.self {
		// Loopback: deliver directly.
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil {
			h.Deliver(from, m)
			t.observe(env, false)
		} else {
			t.observe(env, true)
		}
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.observe(env, true)
		return
	}
	if _, ok := t.addrs[to]; !ok {
		t.mu.Unlock()
		t.observe(env, true)
		return
	}
	s := t.senders[to]
	if s == nil {
		s = newTCPSender(t, to)
		t.senders[to] = s
		t.wg.Add(1)
		go s.run()
	}
	t.mu.Unlock()
	if !s.enqueue(env) {
		t.observe(env, true)
	}
}

func (t *TCPNode) observe(env msg.Envelope, dropped bool) {
	if t.obs != nil {
		t.obs(env, dropped)
	}
}

func (t *TCPNode) countSendFail() {
	t.mu.Lock()
	c := t.counters
	t.mu.Unlock()
	if c != nil {
		c.Inc(metrics.TransportSendFail)
	}
}

func (t *TCPNode) countBytes(n int) {
	t.mu.Lock()
	c := t.counters
	t.mu.Unlock()
	if c != nil {
		c.Add(metrics.WireBytes, int64(n))
	}
}

// SetAddr updates the known address of a site (used when peers bind
// ephemeral ports and gossip their bound addresses out of band). The peer's
// sender picks the new address up at its next dial.
func (t *TCPNode) SetAddr(site ids.SiteID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[site] = addr
}

// Close implements Network: it stops the listener, shuts down the per-peer
// senders (dropping whatever is still queued), closes connections, and
// waits for all goroutines to exit.
func (t *TCPNode) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	ln := t.ln
	senders := make([]*tcpSender, 0, len(t.senders))
	for _, s := range t.senders {
		senders = append(senders, s)
	}
	inbound := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()

	close(t.done)
	if ln != nil {
		ln.Close()
	}
	for _, s := range senders {
		s.close()
	}
	for _, c := range inbound {
		c.Close()
	}
	t.wg.Wait()
}

// tcpSender owns the outgoing traffic toward one peer: a bounded FIFO
// queue, the current connection, and the redial backoff. A single goroutine
// (run) consumes the queue, so per-link send order is preserved.
type tcpSender struct {
	node *TCPNode
	to   ids.SiteID

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []msg.Envelope
	conn   net.Conn
	closed bool
}

func newTCPSender(node *TCPNode, to ids.SiteID) *tcpSender {
	s := &tcpSender{node: node, to: to}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue appends env to the pending queue; it reports false when the queue
// is full or the sender is closed.
func (s *tcpSender) enqueue(env msg.Envelope) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.queue) >= tcpQueueCap {
		return false
	}
	s.queue = append(s.queue, env)
	s.cond.Signal()
	return true
}

// close wakes the run loop and unblocks any in-progress encode by closing
// the live connection out from under it.
func (s *tcpSender) close() {
	s.mu.Lock()
	s.closed = true
	conn := s.conn
	s.conn = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

func (s *tcpSender) run() {
	defer s.node.wg.Done()
	backoff := tcpRedialInitial
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			rest := s.queue
			s.queue = nil
			conn := s.conn
			s.conn = nil
			s.mu.Unlock()
			if conn != nil {
				conn.Close()
			}
			for _, env := range rest {
				s.node.observe(env, true)
			}
			return
		}
		env := s.queue[0]
		conn := s.conn
		s.mu.Unlock()

		if conn == nil {
			c, err := s.dial()
			if err != nil {
				s.node.countSendFail()
				s.sleep(backoff)
				backoff *= 2
				if backoff > tcpRedialMax {
					backoff = tcpRedialMax
				}
				continue
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				c.Close()
				continue
			}
			s.conn = c
			s.mu.Unlock()
			conn = c
			backoff = tcpRedialInitial
		}

		// One frame per envelope: a 4-byte length header reserved up
		// front, the codec output behind it, written with a single
		// conn.Write so the frame is never interleaved.
		buf := wire.GetBuffer()
		buf = append(buf, 0, 0, 0, 0)
		frame, err := s.node.codec.Encode(&env, buf)
		if err != nil {
			// Encoding is deterministic, so retrying the same message can
			// never succeed: count the failure and drop it (ordinary
			// message loss to the protocol).
			s.node.countSendFail()
			s.mu.Lock()
			if len(s.queue) > 0 {
				s.queue = s.queue[1:]
			}
			s.mu.Unlock()
			s.node.observe(env, true)
			continue
		}
		binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
		_, werr := conn.Write(frame)
		wire.PutBuffer(frame)
		if werr != nil {
			// Evict the broken connection and redial; env stays at the
			// front of the queue and is retried on the fresh connection.
			s.node.countSendFail()
			s.mu.Lock()
			if s.conn == conn {
				s.conn = nil
			}
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.node.countBytes(len(frame))
		// This goroutine is the only consumer, so the front is still env.
		s.mu.Lock()
		if len(s.queue) > 0 {
			s.queue = s.queue[1:]
		}
		s.mu.Unlock()
		s.node.observe(env, false)
	}
}

// dial connects to the peer's current address (SetAddr may have changed it
// since the last attempt).
func (s *tcpSender) dial() (net.Conn, error) {
	s.node.mu.Lock()
	addr, ok := s.node.addrs[s.to]
	s.node.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcpnode: unknown site %v", s.to)
	}
	return net.DialTimeout("tcp", addr, tcpDialTimeout)
}

// sleep waits for the backoff interval, returning early if the node closes.
func (s *tcpSender) sleep(d time.Duration) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-s.node.done:
	}
}

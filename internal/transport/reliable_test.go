package transport

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"backtrace/internal/clock"
	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/msg"
	"backtrace/internal/wire"
)

// chaosReliable builds a Reliable layer over a memnet with the given fault
// probabilities and registers collectors for sites 1..n.
func chaosReliable(t *testing.T, opts Options, n int) (*Reliable, *Net, map[ids.SiteID]*collector, *metrics.Counters) {
	t.Helper()
	counters := &metrics.Counters{}
	inner := NewNet(opts)
	r := NewReliable(inner, ReliableOptions{
		Seed:              7,
		RetransmitInitial: 2 * time.Millisecond,
		Counters:          counters,
	})
	t.Cleanup(r.Close)
	cols := make(map[ids.SiteID]*collector, n)
	for i := 1; i <= n; i++ {
		id := ids.SiteID(i)
		cols[id] = &collector{self: id}
		r.Register(id, cols[id])
	}
	return r, inner, cols, counters
}

// settleReliable waits for every sent frame to be acknowledged and every
// delivery (including trailing acks) to finish.
func settleReliable(t *testing.T, r *Reliable, inner *Net) {
	t.Helper()
	if err := r.AwaitIdle(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := inner.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestReliableExactlyOnceInOrderUnderChaos is the acceptance assertion for
// the session layer: under 30% loss plus duplication plus reordering, every
// message reaches its handler exactly once, in per-link send order.
func TestReliableExactlyOnceInOrderUnderChaos(t *testing.T) {
	r, inner, cols, counters := chaosReliable(t, Options{
		DropProb:    0.3,
		DupProb:     0.3,
		ReorderProb: 0.3,
		Seed:        42,
		Jitter:      200 * time.Microsecond,
	}, 3)

	const perLink = 400
	// Interleave two links from site 1 so per-link order is tested with
	// cross-link traffic in between.
	for i := uint64(1); i <= perLink; i++ {
		r.Send(1, 2, ping(i))
		r.Send(1, 3, ping(i))
	}
	settleReliable(t, r, inner)

	for _, to := range []ids.SiteID{2, 3} {
		got := cols[to].snapshot()
		if len(got) != perLink {
			t.Fatalf("site %v: delivered %d messages, want exactly %d", to, len(got), perLink)
		}
		for i, env := range got {
			if env.From != 1 {
				t.Fatalf("site %v: message %d from %v, want 1", to, i, env.From)
			}
			if pingSeq(env.M) != uint64(i+1) {
				t.Fatalf("site %v: out of order at %d: seq %d", to, i, pingSeq(env.M))
			}
		}
	}
	if counters.Get(metrics.LinkRetransmits) == 0 {
		t.Error("no retransmissions recorded under 30% loss")
	}
	if counters.Get(metrics.LinkDupDropped) == 0 {
		t.Error("no duplicates dropped under 30% duplication")
	}
	if counters.Get(metrics.LinkAcksSent) == 0 {
		t.Error("no acks recorded")
	}
}

// TestReliableWindowQueuesBeyondLimit: sends past the in-flight window queue
// at the sender and still arrive, in order, as acks open the window.
func TestReliableWindowQueuesBeyondLimit(t *testing.T) {
	counters := &metrics.Counters{}
	inner := NewNet(Options{})
	r := NewReliable(inner, ReliableOptions{
		Window:            4,
		RetransmitInitial: 2 * time.Millisecond,
		Counters:          counters,
	})
	defer r.Close()
	c1, c2 := &collector{self: 1}, &collector{self: 2}
	r.Register(1, c1)
	r.Register(2, c2)

	const total = 100
	for i := uint64(1); i <= total; i++ {
		r.Send(1, 2, ping(i))
	}
	settleReliable(t, r, inner)
	got := c2.snapshot()
	if len(got) != total {
		t.Fatalf("delivered %d, want %d", len(got), total)
	}
	for i, env := range got {
		if pingSeq(env.M) != uint64(i+1) {
			t.Fatalf("out of order at %d: seq %d", i, pingSeq(env.M))
		}
	}
}

// TestReliablePassthroughUnwrapped: bare protocol messages from a peer not
// running the session layer reach the handler unchanged.
func TestReliablePassthroughUnwrapped(t *testing.T) {
	inner := NewNet(Options{})
	r := NewReliable(inner, ReliableOptions{})
	defer r.Close()
	c2 := &collector{self: 2}
	r.Register(2, c2)

	inner.Send(1, 2, ping(9)) // bypasses the session layer entirely
	if err := inner.Quiesce(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := c2.snapshot()
	if len(got) != 1 || pingSeq(got[0].M) != 9 {
		t.Fatalf("passthrough delivery wrong: %+v", got)
	}
}

// TestReliableRestartResetsSession: after a site restart (NotifyRestart),
// peers open a fresh epoch, stale frames from the old session are rejected,
// and new traffic flows exactly once.
func TestReliableRestartResetsSession(t *testing.T) {
	r, inner, cols, counters := chaosReliable(t, Options{}, 2)

	for i := uint64(1); i <= 5; i++ {
		r.Send(1, 2, ping(i))
	}
	settleReliable(t, r, inner)
	if cols[2].count() != 5 {
		t.Fatalf("pre-restart: delivered %d, want 5", cols[2].count())
	}
	oldInc := r.Incarnation(2)

	// Site 2 crashes and restarts; recovery announces the new incarnation.
	r.NotifyRestart(2, oldInc+1, []ids.SiteID{1})
	if err := inner.Quiesce(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := r.Incarnation(2); got != oldInc+1 {
		t.Fatalf("incarnation = %d, want %d", got, oldInc+1)
	}
	if counters.Get(metrics.LinkResets) == 0 {
		t.Fatal("no link resets recorded")
	}

	// New traffic opens a post-restart session and flows normally.
	for i := uint64(6); i <= 10; i++ {
		r.Send(1, 2, ping(i))
	}
	settleReliable(t, r, inner)

	// A stale frame from site 1's pre-restart session (epoch 1) must be
	// rejected, not delivered: the receiver's session is now at a higher
	// epoch.
	inner.Send(1, 2, msg.LinkData{Epoch: 1, Seq: 2, Payload: ping(99)})
	settleReliable(t, r, inner)

	got := cols[2].snapshot()
	if len(got) != 10 {
		t.Fatalf("delivered %d total, want 10 (stale frame must not deliver)", len(got))
	}
	for _, env := range got {
		if pingSeq(env.M) == 99 {
			t.Fatal("stale old-epoch frame was delivered after restart")
		}
	}
	if counters.Get(metrics.LinkStaleDropped) == 0 {
		t.Error("stale frame not counted as dropped")
	}
}

// TestReliableRestartDropsQueuedTraffic: frames in flight toward a crashed
// site are abandoned on reset (counted, not replayed into the new
// incarnation).
func TestReliableRestartDropsQueuedTraffic(t *testing.T) {
	// Only site 1 is up: site 2 is "down" (unregistered), so frames toward
	// it vanish in the inner network and sit unacknowledged in the window.
	r, inner, _, counters := chaosReliable(t, Options{}, 1)

	for i := uint64(1); i <= 7; i++ {
		r.Send(1, 2, ping(i))
	}

	// Site 2 restarts from a checkpoint and announces it. Site 1 abandons
	// the seven frames: they were addressed to the dead incarnation.
	r.NotifyRestart(2, 0, []ids.SiteID{1})
	settleReliable(t, r, inner)

	if got := counters.Get(metrics.LinkResetDropped); got != 7 {
		t.Fatalf("reset dropped %d frames, want 7", got)
	}
	// Traffic sent after the reset starts a new session and arrives.
	c2 := &collector{self: 2}
	r.Register(2, c2)
	r.Send(1, 2, ping(100))
	settleReliable(t, r, inner)
	got := c2.snapshot()
	if len(got) != 1 || pingSeq(got[0].M) != 100 {
		t.Fatalf("post-reset delivery wrong: %+v", got)
	}
}

// TestReliableCrashRetransmitHealsWithoutReset: a transient outage (network
// partition, no restart) is healed purely by retransmission — nothing is
// lost and nothing is duplicated.
func TestReliableCrashRetransmitHealsWithoutReset(t *testing.T) {
	r, inner, cols, _ := chaosReliable(t, Options{}, 2)

	inner.Partition(1, 2)
	for i := uint64(1); i <= 20; i++ {
		r.Send(1, 2, ping(i))
	}
	time.Sleep(10 * time.Millisecond)
	if cols[2].count() != 0 {
		t.Fatal("partitioned link delivered")
	}
	inner.Heal(1, 2)
	settleReliable(t, r, inner)

	got := cols[2].snapshot()
	if len(got) != 20 {
		t.Fatalf("delivered %d after heal, want 20", len(got))
	}
	for i, env := range got {
		if pingSeq(env.M) != uint64(i+1) {
			t.Fatalf("out of order at %d: seq %d", i, pingSeq(env.M))
		}
	}
}

// TestReliableAwaitIdleReportsStuckFrames: with the link cut, AwaitIdle
// times out and says how many frames are unacknowledged.
func TestReliableAwaitIdleReportsStuckFrames(t *testing.T) {
	r, inner, _, _ := chaosReliable(t, Options{}, 2)
	inner.Partition(1, 2)
	r.Send(1, 2, ping(1))
	err := r.AwaitIdle(20 * time.Millisecond)
	if err == nil {
		t.Fatal("AwaitIdle succeeded with an unacknowledgeable frame")
	}
	if !strings.Contains(err.Error(), "1 frame") {
		t.Fatalf("error %q does not mention the stuck frame", err)
	}
}

// TestReliableCloseIsIdempotent mirrors the memnet close contract.
func TestReliableCloseIsIdempotent(t *testing.T) {
	inner := NewNet(Options{})
	r := NewReliable(inner, ReliableOptions{})
	c := &collector{self: 2}
	r.Register(2, c)
	r.Close()
	r.Close() // must not panic
	r.Send(1, 2, ping(1))
	if c.count() != 0 {
		t.Error("send after close was delivered")
	}
}

// batchedReliable builds a batching Reliable over a memnet, with an inner
// observer counting physical envelopes by type.
func batchedReliable(t *testing.T, opts Options, batch int, n int) (*Reliable, *Net, map[ids.SiteID]*collector, *metrics.Counters, *envelopeTally) {
	t.Helper()
	tally := &envelopeTally{}
	opts.Observer = tally.observe
	counters := &metrics.Counters{}
	inner := NewNet(opts)
	r := NewReliable(inner, ReliableOptions{
		Seed:              7,
		RetransmitInitial: 5 * time.Millisecond,
		FlushInterval:     time.Millisecond,
		BatchMax:          batch,
		Counters:          counters,
	})
	t.Cleanup(r.Close)
	cols := make(map[ids.SiteID]*collector, n)
	for i := 1; i <= n; i++ {
		id := ids.SiteID(i)
		cols[id] = &collector{self: id}
		r.Register(id, cols[id])
	}
	return r, inner, cols, counters, tally
}

// envelopeTally counts the physical envelopes entering the inner network.
type envelopeTally struct {
	mu              sync.Mutex
	total           int
	batches         int
	standaloneAcks  int
	piggybackedAcks int
}

func (e *envelopeTally) observe(env msg.Envelope, dropped bool) {
	if dropped {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.total++
	switch m := env.M.(type) {
	case msg.LinkBatch:
		e.batches++
		if m.AckEpoch != 0 {
			e.piggybackedAcks++
		}
	case msg.LinkAck:
		e.standaloneAcks++
	}
}

func (e *envelopeTally) snapshot() envelopeTally {
	e.mu.Lock()
	defer e.mu.Unlock()
	return envelopeTally{total: e.total, batches: e.batches,
		standaloneAcks: e.standaloneAcks, piggybackedAcks: e.piggybackedAcks}
}

// TestReliableBatchingExactlyOnceUnderChaos re-runs the session layer's
// acceptance assertion with link-level batching on: 30% loss plus
// duplication plus reordering, and every message still reaches its handler
// exactly once, in per-link send order.
func TestReliableBatchingExactlyOnceUnderChaos(t *testing.T) {
	r, inner, cols, counters, tally := batchedReliable(t, Options{
		DropProb:    0.3,
		DupProb:     0.3,
		ReorderProb: 0.3,
		Seed:        42,
		Jitter:      200 * time.Microsecond,
	}, 8, 3)

	const perLink = 400
	for i := uint64(1); i <= perLink; i++ {
		r.Send(1, 2, ping(i))
		r.Send(1, 3, ping(i))
	}
	settleReliable(t, r, inner)

	for _, to := range []ids.SiteID{2, 3} {
		got := cols[to].snapshot()
		if len(got) != perLink {
			t.Fatalf("site %v: delivered %d messages, want exactly %d", to, len(got), perLink)
		}
		for i, env := range got {
			if pingSeq(env.M) != uint64(i+1) {
				t.Fatalf("site %v: out of order at %d: seq %d", to, i, pingSeq(env.M))
			}
		}
	}
	if counters.Get(metrics.LinkRetransmits) == 0 {
		t.Error("no retransmissions recorded under 30% loss")
	}
	if tal := tally.snapshot(); tal.batches == 0 {
		t.Error("no LinkBatch frames on the wire with batching enabled")
	}
	if counters.Get(metrics.WireFlushes) == 0 {
		t.Error("no batch flushes counted")
	}
}

// TestReliableBatchingCoalescesFrames: on a clean link, a burst of sends
// coalesces into far fewer physical envelopes than messages, without losing
// or reordering anything.
func TestReliableBatchingCoalescesFrames(t *testing.T) {
	r, inner, cols, counters, tally := batchedReliable(t, Options{}, 16, 2)

	const total = 320
	for i := uint64(1); i <= total; i++ {
		r.Send(1, 2, ping(i))
	}
	settleReliable(t, r, inner)

	got := cols[2].snapshot()
	if len(got) != total {
		t.Fatalf("delivered %d, want %d", len(got), total)
	}
	for i, env := range got {
		if pingSeq(env.M) != uint64(i+1) {
			t.Fatalf("out of order at %d: seq %d", i, pingSeq(env.M))
		}
	}
	tal := tally.snapshot()
	// A tight send loop against a 16-deep batcher must coalesce well below
	// one envelope per message; allow generous slack for flush-tick races.
	if tal.total >= total {
		t.Errorf("batching sent %d envelopes for %d messages (no coalescing)", tal.total, total)
	}
	if tal.batches == 0 {
		t.Error("no LinkBatch frames observed")
	}
	if hw := counters.Get(metrics.WireBatchSize); hw < 2 {
		t.Errorf("batch size high-water %d, want >= 2", hw)
	}
}

// TestReliableBatchingPiggybacksAcks: an ack owed for received traffic
// rides the next reverse-direction data batch instead of going out as a
// standalone LinkAck frame. The batcher runs on a virtual clock so the test
// controls exactly when flushes happen.
func TestReliableBatchingPiggybacksAcks(t *testing.T) {
	tally := &envelopeTally{}
	vc := clock.NewVirtual(time.Unix(0, 0))
	inner := NewNet(Options{Observer: tally.observe})
	r := NewReliable(inner, ReliableOptions{
		Seed:              7,
		RetransmitInitial: time.Minute, // never fires: only explicit flushes transmit
		FlushInterval:     time.Millisecond,
		BatchMax:          8,
		Clock:             vc,
		Counters:          &metrics.Counters{},
	})
	defer r.Close()
	c1, c2 := &collector{self: 1}, &collector{self: 2}
	r.Register(1, c1)
	r.Register(2, c2)

	// tick fires one flush interval and lets the resulting deliveries land.
	tick := func() {
		t.Helper()
		time.Sleep(5 * time.Millisecond) // let flushLoop re-arm its timer
		vc.Advance(2 * time.Millisecond)
		time.Sleep(5 * time.Millisecond)
		if err := inner.Quiesce(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// Wave 1: data 1->2 sits in the batcher until the flush tick; site 2
	// then owes an ack for it.
	for i := uint64(1); i <= 3; i++ {
		r.Send(1, 2, ping(i))
	}
	tick()
	if got := c2.count(); got != 3 {
		t.Fatalf("site 2 delivered %d, want 3", got)
	}

	// Wave 2: data 2->1 flushes while the ack is owed, so the ack must ride
	// the batch.
	for i := uint64(1); i <= 3; i++ {
		r.Send(2, 1, ping(i))
	}
	tick()
	if got := c1.count(); got != 3 {
		t.Fatalf("site 1 delivered %d, want 3", got)
	}
	tal := tally.snapshot()
	if tal.piggybackedAcks == 0 {
		t.Errorf("no piggybacked acks (batches %d, standalone acks %d)", tal.batches, tal.standaloneAcks)
	}
	if tal.standaloneAcks != 0 {
		t.Errorf("%d standalone acks before any ack-only flush was due", tal.standaloneAcks)
	}

	// A final tick with no reverse data: site 1's owed ack for wave 2 now
	// travels alone.
	tick()
	if tal := tally.snapshot(); tal.standaloneAcks == 0 {
		t.Error("ack with nothing to piggyback on never flushed standalone")
	}
}

// TestReliableCrossCodecEquivalence (wire migration property): the same
// traffic pushed through the session layer over a lossy, duplicating,
// reordering memnet arrives bit-identical whether the network round-trips
// every frame through the binary codec or no codec at all. Loss forces
// retransmissions, so frames are encoded and decoded repeatedly along the
// way.
func TestReliableCrossCodecEquivalence(t *testing.T) {
	const total = 120
	mix := func(i uint64) msg.Message {
		switch i % 4 {
		case 0:
			return msg.Update{
				Removals:  []ids.ObjID{ids.ObjID(i), ids.ObjID(i * 3)},
				Distances: []msg.DistanceUpdate{{Obj: ids.ObjID(i), Distance: int(i % 17)}},
				Holds:     []ids.ObjID{ids.ObjID(i + 1)},
			}
		case 1:
			return msg.BackCall{
				Trace:     ids.TraceID{Initiator: 1, Seq: i},
				Caller:    ids.FrameID{Site: 1, Seq: i},
				Initiator: 1,
				Kind:      msg.StepRemote,
				Inref:     ids.ObjID(i),
				Outref:    ids.MakeRef(2, ids.ObjID(i*7)),
			}
		case 2:
			return msg.BackReply{
				Trace:        ids.TraceID{Initiator: 1, Seq: i},
				Caller:       ids.FrameID{Site: 1, Seq: i},
				Result:       msg.VerdictLive,
				Participants: []ids.SiteID{1, 2, ids.SiteID(i%9 + 1)},
			}
		default:
			return msg.RefTransfer{Payload: ids.MakeRef(2, ids.ObjID(i)), Pinner: 1}
		}
	}

	codecs := map[string]wire.Codec{"none": nil, "binary": wire.Binary{}}
	delivered := make(map[string][]msg.Envelope, len(codecs))
	for name, codec := range codecs {
		inner := NewNet(Options{
			DropProb:    0.25,
			DupProb:     0.15,
			ReorderProb: 0.2,
			Seed:        99,
			Codec:       codec,
		})
		r := NewReliable(inner, ReliableOptions{
			Seed:              7,
			RetransmitInitial: 2 * time.Millisecond,
			BatchMax:          4,
			Counters:          &metrics.Counters{},
		})
		c2 := &collector{self: 2}
		r.Register(1, &collector{self: 1})
		r.Register(2, c2)
		for i := uint64(1); i <= total; i++ {
			r.Send(1, 2, mix(i))
		}
		settleReliable(t, r, inner)
		delivered[name] = c2.snapshot()
		r.Close()
	}

	want := delivered["none"]
	if len(want) != total {
		t.Fatalf("codec none delivered %d, want %d", len(want), total)
	}
	for _, name := range []string{"binary"} {
		got := delivered[name]
		if len(got) != total {
			t.Fatalf("codec %s delivered %d, want %d", name, len(got), total)
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("codec %s message %d differs:\n got %#v\nwant %#v", name, i, got[i], want[i])
			}
		}
	}
}

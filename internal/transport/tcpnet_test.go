package transport

import (
	"testing"
	"time"

	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/msg"
)

// startTCPPair builds two connected TCP nodes on loopback ephemeral ports.
func startTCPPair(t *testing.T) (*TCPNode, *TCPNode, *collector, *collector) {
	t.Helper()
	addrs := map[ids.SiteID]string{
		1: "127.0.0.1:0",
		2: "127.0.0.1:0",
	}
	n1, err := NewTCPNode(1, addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NewTCPNode(2, addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1 := &collector{self: 1}
	c2 := &collector{self: 2}
	n1.Register(1, c1)
	n2.Register(2, c2)
	a1, err := n1.Listen()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := n2.Listen()
	if err != nil {
		t.Fatal(err)
	}
	n1.SetAddr(2, a2)
	n2.SetAddr(1, a1)
	t.Cleanup(func() {
		n1.Close()
		n2.Close()
	})
	return n1, n2, c1, c2
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestTCPBasicRoundTrip(t *testing.T) {
	n1, n2, c1, c2 := startTCPPair(t)

	n1.Send(1, 2, ping(7))
	waitFor(t, func() bool { return c2.count() == 1 }, "delivery to site 2")
	got := c2.snapshot()
	if got[0].From != 1 || pingSeq(got[0].M) != 7 {
		t.Fatalf("got %+v, want from=1 seq=7", got[0])
	}

	n2.Send(2, 1, ping(9))
	waitFor(t, func() bool { return c1.count() == 1 }, "delivery to site 1")
}

func TestTCPFIFO(t *testing.T) {
	n1, _, _, c2 := startTCPPair(t)
	const total = 300
	for i := uint64(1); i <= total; i++ {
		n1.Send(1, 2, ping(i))
	}
	waitFor(t, func() bool { return c2.count() == total }, "all deliveries")
	for i, env := range c2.snapshot() {
		if pingSeq(env.M) != uint64(i+1) {
			t.Fatalf("out of order at %d: seq %d", i, pingSeq(env.M))
		}
	}
}

func TestTCPLoopback(t *testing.T) {
	n1, _, c1, _ := startTCPPair(t)
	n1.Send(1, 1, ping(3))
	if c1.count() != 1 {
		t.Fatalf("loopback delivered %d, want 1 (synchronous)", c1.count())
	}
}

func TestTCPSendToUnknownSiteIsDrop(t *testing.T) {
	dropped := make(chan msg.Envelope, 1)
	addrs := map[ids.SiteID]string{1: "127.0.0.1:0"}
	n1, err := NewTCPNode(1, addrs, func(e msg.Envelope, d bool) {
		if d {
			dropped <- e
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n1.Register(1, &collector{self: 1})
	if _, err := n1.Listen(); err != nil {
		t.Fatal(err)
	}
	n1.Send(1, 99, ping(1))
	select {
	case <-dropped:
	case <-time.After(time.Second):
		t.Fatal("drop not observed")
	}
}

func TestTCPSpoofedFromIsDropped(t *testing.T) {
	n1, _, _, c2 := startTCPPair(t)
	n1.Send(3, 2, ping(1)) // from != self
	time.Sleep(50 * time.Millisecond)
	if c2.count() != 0 {
		t.Fatal("spoofed-source message was sent")
	}
}

func TestTCPPeerRestartRedials(t *testing.T) {
	addrs := map[ids.SiteID]string{
		1: "127.0.0.1:0",
		2: "127.0.0.1:0",
	}
	n1, err := NewTCPNode(1, addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n1.Register(1, &collector{self: 1})
	a1, err := n1.Listen()
	if err != nil {
		t.Fatal(err)
	}

	n2, err := NewTCPNode(2, addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2 := &collector{self: 2}
	n2.Register(2, c2)
	a2, err := n2.Listen()
	if err != nil {
		t.Fatal(err)
	}
	n1.SetAddr(2, a2)
	n2.SetAddr(1, a1)

	n1.Send(1, 2, ping(1))
	waitFor(t, func() bool { return c2.count() == 1 }, "first delivery")

	// Kill site 2 and bring up a replacement on a fresh port.
	n2.Close()
	n2b, err := NewTCPNode(2, addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n2b.Close()
	c2b := &collector{self: 2}
	n2b.Register(2, c2b)
	a2b, err := n2b.Listen()
	if err != nil {
		t.Fatal(err)
	}
	n1.SetAddr(2, a2b)

	// The first send after the crash may be lost on the stale connection
	// (that is message loss, which the protocol tolerates); a retry must
	// get through on a fresh connection.
	deadline := time.Now().Add(5 * time.Second)
	for c2b.count() == 0 && time.Now().Before(deadline) {
		n1.Send(1, 2, ping(2))
		time.Sleep(10 * time.Millisecond)
	}
	if c2b.count() == 0 {
		t.Fatal("no delivery to restarted peer")
	}
}

// TestTCPListenerRestartFlushesQueue kills the peer mid-stream, keeps
// sending until a failure is counted under transport.send_fail, restarts a
// listener on the same address, and then — without any further Send calls —
// the messages still queued at the sender must flush over a fresh
// connection.
func TestTCPListenerRestartFlushesQueue(t *testing.T) {
	addrs := map[ids.SiteID]string{
		1: "127.0.0.1:0",
		2: "127.0.0.1:0",
	}
	n1, err := NewTCPNode(1, addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	counters := &metrics.Counters{}
	n1.SetCounters(counters)
	n1.Register(1, &collector{self: 1})
	a1, err := n1.Listen()
	if err != nil {
		t.Fatal(err)
	}

	n2, err := NewTCPNode(2, addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2 := &collector{self: 2}
	n2.Register(2, c2)
	a2, err := n2.Listen()
	if err != nil {
		t.Fatal(err)
	}
	n1.SetAddr(2, a2)
	n2.SetAddr(1, a1)

	n1.Send(1, 2, ping(1))
	waitFor(t, func() bool { return c2.count() == 1 }, "first delivery")

	// Kill the listener mid-stream and send until a failure is counted.
	// Messages written into the dead connection before the failure are
	// ordinary loss; everything from the failed message on stays queued.
	n2.Close()
	seq := uint64(1)
	deadline := time.Now().Add(5 * time.Second)
	for counters.Get(metrics.TransportSendFail) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no send failure observed after peer death")
		}
		seq++
		n1.Send(1, 2, ping(seq))
		time.Sleep(2 * time.Millisecond)
	}

	// Bring a replacement up on the same address.
	n2b, err := NewTCPNode(2, map[ids.SiteID]string{1: a1, 2: a2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n2b.Close()
	c2b := &collector{self: 2}
	n2b.Register(2, c2b)
	if _, err := n2b.Listen(); err != nil {
		t.Fatal(err)
	}

	// No further sends: the queue must drain on its own, through the last
	// message enqueued before the restart.
	last := seq
	waitFor(t, func() bool {
		for _, env := range c2b.snapshot() {
			if pingSeq(env.M) == last {
				return true
			}
		}
		return false
	}, "queued tail to flush after listener restart")
}

func TestTCPAllMessageTypesSurviveWire(t *testing.T) {
	n1, _, _, c2 := startTCPPair(t)
	r := ids.MakeRef(2, 17)
	all := []msg.Message{
		msg.RefTransfer{Payload: r, Pinner: 1},
		msg.Insert{Target: r, Holder: 1, Pinner: 3},
		msg.InsertAck{Target: r},
		msg.ReleasePin{Target: r},
		msg.Update{Removals: []ids.ObjID{4, 5}, Distances: []msg.DistanceUpdate{{Obj: 4, Distance: 3}}},
		msg.BackCall{Trace: ids.TraceID{Initiator: 1, Seq: 2}, Caller: ids.FrameID{Site: 1, Seq: 3}, Initiator: 1, Kind: msg.StepLocal, Outref: r},
		msg.BackReply{Trace: ids.TraceID{Initiator: 1, Seq: 2}, Result: msg.VerdictLive, Participants: []ids.SiteID{1, 2}},
		msg.Report{Trace: ids.TraceID{Initiator: 1, Seq: 2}, Outcome: msg.VerdictGarbage},
		msg.Batch{Items: []msg.Message{msg.ReleasePin{Target: r}, msg.Report{Outcome: msg.VerdictLive}}},
	}
	for _, m := range all {
		n1.Send(1, 2, m)
	}
	waitFor(t, func() bool { return c2.count() == len(all) }, "all message kinds")
	got := c2.snapshot()
	for i, env := range got {
		if msg.Name(env.M) != msg.Name(all[i]) {
			t.Errorf("message %d decoded as %s, want %s", i, msg.Name(env.M), msg.Name(all[i]))
		}
	}
	// Spot-check a payload survived intact.
	upd, ok := got[4].M.(msg.Update)
	if !ok || len(upd.Removals) != 2 || upd.Distances[0].Distance != 3 {
		t.Errorf("Update payload corrupted: %+v", got[4].M)
	}
}

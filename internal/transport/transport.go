// Package transport provides the networking substrate that connects sites.
//
// Two implementations of the Network interface are provided:
//
//   - Net (memnet.go): an in-process network for simulation and testing. It
//     supports per-message latency and jitter, probabilistic message loss,
//     partitions, site crashes, and a deterministic *stepped* mode in which
//     messages accumulate until the test delivers them explicitly — the
//     mechanism used to replay the exact interleavings of the paper's
//     Figures 5 and 6.
//
//   - TCPNode (tcpnet.go): a real TCP transport exchanging length-prefixed
//     wire.Codec frames (the binary codec), for running sites as separate
//     OS processes (cmd/dgcnode), with per-peer pending queues and
//     reconnect-with-backoff.
//
// Both preserve FIFO delivery per (source, destination) link, matching the
// paper's in-order delivery assumption (relation R1 in the Section 6.4
// safety proof).
//
// Reliable (reliable.go) wraps either one in an ack/retransmit session
// layer: per-link sequence numbers, cumulative acks, a bounded in-flight
// window with exponential-backoff retransmission, receiver-side dedup and
// reorder buffering, and incarnation epochs that reset link sessions
// across site crashes. It upgrades a lossy, duplicating, or reordering
// substrate to the exactly-once in-order delivery the protocol assumes.
// With ReliableOptions.BatchMax set it also batches: messages to the same
// peer coalesce into one LinkBatch frame per flush tick, with the acks the
// receiver owes piggybacked on reverse-direction batches.
package transport

import (
	"backtrace/internal/ids"
	"backtrace/internal/msg"
)

// Handler receives messages delivered to a site. Deliver is invoked
// serially per destination site, so a handler observes each link's
// messages in send order (the protocol's R1 assumption). A handler may
// apply the message on the calling thread or merely enqueue it for its own
// dispatcher (the site mailbox executor does the latter); either way it
// must preserve the arrival order it was handed. Deliver may block briefly
// when the handler's queue is full — that backpressure stalls only the
// one destination's delivery worker.
type Handler interface {
	Deliver(from ids.SiteID, m msg.Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from ids.SiteID, m msg.Message)

// Deliver implements Handler.
func (f HandlerFunc) Deliver(from ids.SiteID, m msg.Message) { f(from, m) }

var _ Handler = HandlerFunc(nil)

// Network is the interface sites use to exchange messages.
type Network interface {
	// Register installs the handler for a site. It must be called before
	// any message is sent to that site.
	Register(site ids.SiteID, h Handler)
	// Send transmits m from one site to another. Send never blocks on the
	// receiver; delivery is asynchronous. Sending to an unregistered,
	// crashed, or partitioned site silently drops the message (the
	// protocol tolerates loss by timeout, Section 4.6).
	Send(from, to ids.SiteID, m msg.Message)
	// Close shuts the network down and waits for delivery workers to stop.
	Close()
}

// Observer is an optional callback invoked for every send attempt; dropped
// reports whether the message was lost (crash, partition, or random drop).
// Metrics counters hook in here.
type Observer func(env msg.Envelope, dropped bool)

package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"backtrace/internal/ids"
	"backtrace/internal/msg"
)

// collector is a Handler that records everything it receives.
type collector struct {
	mu   sync.Mutex
	got  []msg.Envelope
	self ids.SiteID
}

func (c *collector) Deliver(from ids.SiteID, m msg.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, msg.Envelope{From: from, To: c.self, M: m})
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func (c *collector) snapshot() []msg.Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]msg.Envelope, len(c.got))
	copy(out, c.got)
	return out
}

func ping(n uint64) msg.Message {
	return msg.Report{Trace: ids.TraceID{Initiator: 1, Seq: n}}
}

func pingSeq(m msg.Message) uint64 {
	r, ok := m.(msg.Report)
	if !ok {
		return 0
	}
	return r.Trace.Seq
}

func TestMemNetBasicDelivery(t *testing.T) {
	n := NewNet(Options{})
	defer n.Close()
	c := &collector{self: 2}
	n.Register(2, c)

	n.Send(1, 2, ping(7))
	if err := n.Quiesce(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := c.snapshot()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	if got[0].From != 1 || pingSeq(got[0].M) != 7 {
		t.Errorf("got %+v, want from=1 seq=7", got[0])
	}
}

func TestMemNetFIFOPerLink(t *testing.T) {
	n := NewNet(Options{Jitter: time.Millisecond})
	defer n.Close()
	c := &collector{self: 2}
	n.Register(2, c)

	const total = 200
	for i := uint64(1); i <= total; i++ {
		n.Send(1, 2, ping(i))
	}
	if err := n.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := c.snapshot()
	if len(got) != total {
		t.Fatalf("delivered %d, want %d", len(got), total)
	}
	for i, env := range got {
		if pingSeq(env.M) != uint64(i+1) {
			t.Fatalf("out of order at %d: seq %d", i, pingSeq(env.M))
		}
	}
}

func TestMemNetDropAll(t *testing.T) {
	dropped := int32(0)
	n := NewNet(Options{
		DropProb: 1.0,
		Observer: func(env msg.Envelope, d bool) {
			if d {
				atomic.AddInt32(&dropped, 1)
			}
		},
	})
	defer n.Close()
	c := &collector{self: 2}
	n.Register(2, c)

	for i := 0; i < 10; i++ {
		n.Send(1, 2, ping(uint64(i)))
	}
	if err := n.Quiesce(time.Second); err != nil {
		t.Fatal(err)
	}
	if c.count() != 0 {
		t.Errorf("delivered %d messages with DropProb=1, want 0", c.count())
	}
	if atomic.LoadInt32(&dropped) != 10 {
		t.Errorf("observer saw %d drops, want 10", dropped)
	}
}

func TestMemNetUnregisteredDestinationDrops(t *testing.T) {
	n := NewNet(Options{})
	defer n.Close()
	n.Send(1, 9, ping(1)) // site 9 never registered
	if err := n.Quiesce(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestMemNetCrashAndRestart(t *testing.T) {
	n := NewNet(Options{})
	defer n.Close()
	c := &collector{self: 2}
	n.Register(2, c)

	n.Crash(2)
	n.Send(1, 2, ping(1))
	if err := n.Quiesce(time.Second); err != nil {
		t.Fatal(err)
	}
	if c.count() != 0 {
		t.Fatalf("crashed site received %d messages", c.count())
	}

	n.Restart(2)
	n.Send(1, 2, ping(2))
	if err := n.Quiesce(time.Second); err != nil {
		t.Fatal(err)
	}
	if c.count() != 1 {
		t.Fatalf("restarted site received %d messages, want 1", c.count())
	}
}

func TestMemNetCrashedSenderDrops(t *testing.T) {
	n := NewNet(Options{})
	defer n.Close()
	c := &collector{self: 2}
	n.Register(2, c)

	n.Crash(1)
	n.Send(1, 2, ping(1))
	if err := n.Quiesce(time.Second); err != nil {
		t.Fatal(err)
	}
	if c.count() != 0 {
		t.Fatalf("message from crashed sender delivered")
	}
}

func TestMemNetPartitionAndHeal(t *testing.T) {
	n := NewNet(Options{})
	defer n.Close()
	c1 := &collector{self: 1}
	c2 := &collector{self: 2}
	c3 := &collector{self: 3}
	n.Register(1, c1)
	n.Register(2, c2)
	n.Register(3, c3)

	n.Partition(1, 2)
	n.Send(1, 2, ping(1))
	n.Send(2, 1, ping(2))
	n.Send(1, 3, ping(3)) // unaffected link
	if err := n.Quiesce(time.Second); err != nil {
		t.Fatal(err)
	}
	if c1.count() != 0 || c2.count() != 0 {
		t.Errorf("partitioned sites received messages: c1=%d c2=%d", c1.count(), c2.count())
	}
	if c3.count() != 1 {
		t.Errorf("unpartitioned site received %d, want 1", c3.count())
	}

	n.Heal(1, 2)
	n.Send(1, 2, ping(4))
	if err := n.Quiesce(time.Second); err != nil {
		t.Fatal(err)
	}
	if c2.count() != 1 {
		t.Errorf("after heal, c2 received %d, want 1", c2.count())
	}
}

func TestMemNetSteppedDelivery(t *testing.T) {
	n := NewNet(Options{Stepped: true})
	defer n.Close()
	c := &collector{self: 2}
	n.Register(2, c)

	n.Send(1, 2, ping(1))
	n.Send(1, 2, ping(2))
	if c.count() != 0 {
		t.Fatal("stepped net delivered without being asked")
	}
	if n.PendingCount() != 2 {
		t.Fatalf("PendingCount = %d, want 2", n.PendingCount())
	}
	if !n.DeliverNext() {
		t.Fatal("DeliverNext returned false with pending messages")
	}
	if c.count() != 1 {
		t.Fatalf("after one step, delivered %d, want 1", c.count())
	}
	if got := n.DeliverAll(); got != 1 {
		t.Fatalf("DeliverAll delivered %d, want 1", got)
	}
	if n.DeliverNext() {
		t.Fatal("DeliverNext returned true with empty queue")
	}
}

func TestMemNetSteppedCascade(t *testing.T) {
	// A handler that forwards each message once; DeliverAll must drain the
	// cascade.
	n := NewNet(Options{Stepped: true})
	defer n.Close()
	c := &collector{self: 3}
	n.Register(3, c)
	n.Register(2, HandlerFunc(func(from ids.SiteID, m msg.Message) {
		n.Send(2, 3, m)
	}))

	n.Send(1, 2, ping(1))
	if got := n.DeliverAll(); got != 2 {
		t.Fatalf("DeliverAll delivered %d, want 2 (original + forwarded)", got)
	}
	if c.count() != 1 {
		t.Fatalf("final destination got %d, want 1", c.count())
	}
}

func TestMemNetDeliverMatching(t *testing.T) {
	n := NewNet(Options{Stepped: true})
	defer n.Close()
	c2 := &collector{self: 2}
	c3 := &collector{self: 3}
	n.Register(2, c2)
	n.Register(3, c3)

	n.Send(1, 2, ping(1))
	n.Send(1, 3, ping(2))
	n.Send(1, 2, ping(3))

	got := n.DeliverMatching(func(e msg.Envelope) bool { return e.To == 3 })
	if got != 1 {
		t.Fatalf("DeliverMatching delivered %d, want 1", got)
	}
	if c3.count() != 1 || c2.count() != 0 {
		t.Fatalf("selective delivery wrong: c2=%d c3=%d", c2.count(), c3.count())
	}
	if n.PendingCount() != 2 {
		t.Fatalf("PendingCount = %d, want 2", n.PendingCount())
	}
}

func TestMemNetDropMatching(t *testing.T) {
	n := NewNet(Options{Stepped: true})
	defer n.Close()
	c := &collector{self: 2}
	n.Register(2, c)

	n.Send(1, 2, ping(1))
	n.Send(1, 2, ping(2))
	dropped := n.DropMatching(func(e msg.Envelope) bool { return pingSeq(e.M) == 1 })
	if dropped != 1 {
		t.Fatalf("DropMatching dropped %d, want 1", dropped)
	}
	n.DeliverAll()
	got := c.snapshot()
	if len(got) != 1 || pingSeq(got[0].M) != 2 {
		t.Fatalf("surviving delivery wrong: %+v", got)
	}
}

func TestMemNetQuiesceTimesOutWithStuckMessages(t *testing.T) {
	// In stepped mode, undelivered messages keep inflight > 0, so Quiesce
	// must report a timeout rather than succeed.
	n := NewNet(Options{Stepped: true})
	defer n.Close()
	n.Register(2, &collector{self: 2})
	n.Send(1, 2, ping(1))
	if err := n.Quiesce(50 * time.Millisecond); err == nil {
		t.Fatal("Quiesce succeeded with a pending message")
	}
}

func TestMemNetDuplicateInjection(t *testing.T) {
	n := NewNet(Options{DupProb: 1.0})
	defer n.Close()
	c := &collector{self: 2}
	n.Register(2, c)

	const sends = 10
	for i := uint64(1); i <= sends; i++ {
		n.Send(1, 2, ping(i))
	}
	if err := n.Quiesce(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c.count() != 2*sends {
		t.Fatalf("delivered %d with DupProb=1, want %d", c.count(), 2*sends)
	}
	// Each original is immediately followed by its duplicate.
	got := c.snapshot()
	for i := 0; i < len(got); i += 2 {
		if pingSeq(got[i].M) != pingSeq(got[i+1].M) {
			t.Fatalf("messages %d/%d are not a dup pair: %d vs %d",
				i, i+1, pingSeq(got[i].M), pingSeq(got[i+1].M))
		}
	}
}

func TestMemNetReorderInjection(t *testing.T) {
	n := NewNet(Options{Stepped: true, ReorderProb: 1.0})
	defer n.Close()
	c := &collector{self: 2}
	n.Register(2, c)

	n.Send(1, 2, ping(1))
	n.Send(1, 2, ping(2)) // swaps before ping(1)
	n.DeliverAll()
	got := c.snapshot()
	if len(got) != 2 || pingSeq(got[0].M) != 2 || pingSeq(got[1].M) != 1 {
		t.Fatalf("reorder injection did not swap: %+v", got)
	}
}

func TestMemNetReorderInjectionAsync(t *testing.T) {
	// A little latency lets the destination queue accumulate so swaps have
	// a neighbour to swap with.
	n := NewNet(Options{ReorderProb: 1.0, Seed: 3, Latency: 2 * time.Millisecond})
	defer n.Close()
	c := &collector{self: 2}
	n.Register(2, c)

	const sends = 50
	for i := uint64(1); i <= sends; i++ {
		n.Send(1, 2, ping(i))
	}
	if err := n.Quiesce(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c.count() != sends {
		t.Fatalf("delivered %d, want %d", c.count(), sends)
	}
	inOrder := true
	for i, env := range c.snapshot() {
		if pingSeq(env.M) != uint64(i+1) {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("ReorderProb=1 delivered everything in order")
	}
}

func TestMemNetConcurrentSenders(t *testing.T) {
	n := NewNet(Options{})
	defer n.Close()
	c := &collector{self: 5}
	n.Register(5, c)

	const senders, per = 8, 50
	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		wg.Add(1)
		go func(site ids.SiteID) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n.Send(site, 5, ping(uint64(i)))
			}
		}(ids.SiteID(s))
	}
	wg.Wait()
	if err := n.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c.count() != senders*per {
		t.Fatalf("delivered %d, want %d", c.count(), senders*per)
	}
}

func TestMemNetLatency(t *testing.T) {
	n := NewNet(Options{Latency: 30 * time.Millisecond})
	defer n.Close()
	c := &collector{self: 2}
	n.Register(2, c)

	start := time.Now()
	n.Send(1, 2, ping(1))
	if err := n.Quiesce(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("delivery took %v, want >= ~30ms latency", elapsed)
	}
}

func TestMemNetCloseIsIdempotentAndStopsSends(t *testing.T) {
	n := NewNet(Options{})
	c := &collector{self: 2}
	n.Register(2, c)
	n.Close()
	n.Close() // must not panic
	n.Send(1, 2, ping(1))
	if c.count() != 0 {
		t.Error("send after close was delivered")
	}
}

package tracer

import (
	"math/rand"
	"reflect"
	"testing"

	"backtrace/internal/heap"
	"backtrace/internal/ids"
	"backtrace/internal/refs"
)

// fixture builds a single site's heap and tables for tracer tests.
type fixture struct {
	t   *testing.T
	h   *heap.Heap
	tbl *refs.Table
}

func newFixture(t *testing.T, site ids.SiteID) *fixture {
	t.Helper()
	return &fixture{t: t, h: heap.New(site), tbl: refs.NewTable(site, 100)}
}

func (f *fixture) obj() ids.Ref     { return f.h.Alloc() }
func (f *fixture) rootObj() ids.Ref { return f.h.AllocRoot() }
func (f *fixture) edge(from, to ids.Ref) {
	f.t.Helper()
	if err := f.h.AddField(from.Obj, to); err != nil {
		f.t.Fatal(err)
	}
	if to.Site != f.h.Site() {
		f.tbl.EnsureOutref(to)
	}
}

// inref registers a remote source for a local object at a given distance.
func (f *fixture) inref(obj ids.Ref, src ids.SiteID, dist int) {
	f.t.Helper()
	f.tbl.AddSource(obj.Obj, src)
	f.tbl.SetSourceDistance(obj.Obj, src, dist)
}

func refSlice(rs ...ids.Ref) []ids.Ref { return rs }

func TestMarkSweepBasics(t *testing.T) {
	f := newFixture(t, 1)
	root := f.rootObj()
	a := f.obj()
	b := f.obj()
	dead := f.obj()
	f.edge(root, a)
	f.edge(a, b)

	res := Run(f.h, f.tbl, 2, AlgoBottomUp)
	if !res.IsLiveObj(root.Obj) || !res.IsLiveObj(a.Obj) || !res.IsLiveObj(b.Obj) {
		t.Fatal("reachable objects not marked")
	}
	if res.IsLiveObj(dead.Obj) {
		t.Fatal("unreachable object marked")
	}
	if len(res.Dead) != 1 || res.Dead[0] != dead.Obj {
		t.Fatalf("Dead = %v, want [%v]", res.Dead, dead.Obj)
	}
	if !res.IsCleanObj(b.Obj) {
		t.Fatal("object reachable from persistent root should be clean")
	}
}

func TestInrefIsRoot(t *testing.T) {
	f := newFixture(t, 1)
	a := f.obj()
	b := f.obj()
	f.edge(a, b)
	f.inref(a, 2, 1)

	res := Run(f.h, f.tbl, 2, AlgoBottomUp)
	if !res.IsLiveObj(a.Obj) || !res.IsLiveObj(b.Obj) {
		t.Fatal("objects reachable from inref must survive")
	}
	if !res.IsCleanObj(b.Obj) {
		t.Fatal("object reachable from clean inref (dist 1 <= threshold 2) should be clean")
	}
}

func TestGarbageFlaggedInrefIsNotRoot(t *testing.T) {
	f := newFixture(t, 1)
	a := f.obj()
	b := f.obj()
	f.edge(a, b)
	f.inref(a, 2, 1)
	in, _ := f.tbl.Inref(a.Obj)
	in.Garbage = true

	res := Run(f.h, f.tbl, 2, AlgoBottomUp)
	if res.IsLiveObj(a.Obj) || res.IsLiveObj(b.Obj) {
		t.Fatal("objects behind a garbage-flagged inref must die (Section 4.5)")
	}
	if len(res.Dead) != 2 {
		t.Fatalf("Dead = %v, want both objects", res.Dead)
	}
}

func TestAppRootsAreRoots(t *testing.T) {
	f := newFixture(t, 1)
	a := f.obj()
	b := f.obj()
	f.edge(a, b)
	f.h.AddAppRoot(a) // mutator variable holds a

	remote := ids.MakeRef(2, 7)
	f.tbl.EnsureOutref(remote)
	f.h.AddAppRoot(remote) // mutator variable holds a remote ref

	res := Run(f.h, f.tbl, 2, AlgoBottomUp)
	if !res.IsCleanObj(a.Obj) || !res.IsCleanObj(b.Obj) {
		t.Fatal("objects held by application roots must be clean (Section 6.3)")
	}
	if d, ok := res.OutrefDist[remote]; !ok || d != 1 {
		t.Fatalf("remote app root outref distance = %d (%v), want 1", d, ok)
	}
}

func TestDistancePropagation(t *testing.T) {
	// Two inrefs at distances 1 and 3 both reach outref r; a persistent
	// root reaches outref s. The outref distance is 1 + the smallest
	// root distance that reaches it.
	f := newFixture(t, 1)
	a := f.obj()
	b := f.obj()
	mid := f.obj()
	f.inref(a, 2, 1)
	f.inref(b, 3, 3)
	r := ids.MakeRef(4, 1)
	s := ids.MakeRef(4, 2)
	f.edge(a, mid)
	f.edge(b, mid)
	f.edge(mid, r)
	root := f.rootObj()
	f.edge(root, s)

	res := Run(f.h, f.tbl, 0, AlgoBottomUp)
	if d := res.OutrefDist[r]; d != 2 {
		t.Fatalf("outref r distance = %d, want 1+min(1,3)=2", d)
	}
	if d := res.OutrefDist[s]; d != 1 {
		t.Fatalf("outref s distance = %d, want 1 (root + one hop)", d)
	}
}

func TestDistanceSaturation(t *testing.T) {
	f := newFixture(t, 1)
	a := f.obj()
	f.inref(a, 2, refs.DistInfinity)
	r := ids.MakeRef(3, 1)
	f.edge(a, r)

	res := Run(f.h, f.tbl, 2, AlgoBottomUp)
	if d := res.OutrefDist[r]; d != refs.DistInfinity {
		t.Fatalf("distance = %d, want saturation at infinity", d)
	}
}

func TestUntracedOutrefsListed(t *testing.T) {
	f := newFixture(t, 1)
	a := f.obj() // unreachable; holds the only use of outref r
	r := ids.MakeRef(2, 5)
	f.edge(a, r)
	stale := ids.MakeRef(3, 9)
	f.tbl.EnsureOutref(stale) // no object references it at all

	res := Run(f.h, f.tbl, 2, AlgoBottomUp)
	want := refSlice(ids.MakeRef(2, 5), ids.MakeRef(3, 9))
	if !reflect.DeepEqual(res.Untraced, want) {
		t.Fatalf("Untraced = %v, want %v", res.Untraced, want)
	}
}

func TestMissingOutrefDetected(t *testing.T) {
	f := newFixture(t, 1)
	root := f.rootObj()
	r := ids.MakeRef(2, 5)
	// Bypass fixture.edge so no outref entry is created.
	if err := f.h.AddField(root.Obj, r); err != nil {
		t.Fatal(err)
	}
	res := Run(f.h, f.tbl, 2, AlgoBottomUp)
	if len(res.Missing) != 1 || res.Missing[0] != r {
		t.Fatalf("Missing = %v, want [%v]", res.Missing, r)
	}
}

// TestFigure2Insets reproduces the paper's Figure 2 at site Q: inrefs a
// (from P) and b (from R), outrefs c and d, with a→c, b→c, b→d locally.
// The inset of outref c must be {a, b} and of d must be {b}.
func TestFigure2Insets(t *testing.T) {
	for _, algo := range []OutsetAlgorithm{AlgoBottomUp, AlgoIndependent} {
		t.Run(algo.String(), func(t *testing.T) {
			f := newFixture(t, 2) // site Q
			a := f.obj()
			b := f.obj()
			f.inref(a, 1, 10) // suspected (threshold below)
			f.inref(b, 3, 10)
			c := ids.MakeRef(1, 50) // object c in site P
			d := ids.MakeRef(3, 60) // object d in site R
			f.edge(a, c)
			f.edge(b, c)
			f.edge(b, d)

			res := Run(f.h, f.tbl, 2, algo)
			if got := res.Back.Inset(c); !reflect.DeepEqual(got, []ids.ObjID{a.Obj, b.Obj}) {
				t.Errorf("inset of c = %v, want [a b] = [%v %v]", got, a.Obj, b.Obj)
			}
			if got := res.Back.Inset(d); !reflect.DeepEqual(got, []ids.ObjID{b.Obj}) {
				t.Errorf("inset of d = %v, want [b] = [%v]", got, b.Obj)
			}
			if got := res.Back.Outset(a.Obj); !reflect.DeepEqual(got, refSlice(c)) {
				t.Errorf("outset of a = %v, want [c]", got)
			}
			if got := res.Back.Outset(b.Obj); !reflect.DeepEqual(got, refSlice(c, d)) {
				t.Errorf("outset of b = %v, want [c d]", got)
			}
		})
	}
}

// TestFigure4SharedTail reproduces the Figure 4 situation: inref a reaches
// outref c through z; inref b reaches z only through y (so a naive forward
// trace from b would stop at the already-marked z and miss c), and b also
// reaches outref d. Both algorithms must nevertheless compute the full
// reachability: inset(c) = {a, b}, inset(d) = {b}.
func TestFigure4SharedTail(t *testing.T) {
	for _, algo := range []OutsetAlgorithm{AlgoBottomUp, AlgoIndependent} {
		t.Run(algo.String(), func(t *testing.T) {
			f := newFixture(t, 2)
			a := f.obj()
			b := f.obj()
			z := f.obj()
			y := f.obj()
			f.inref(a, 1, 10)
			f.inref(b, 3, 10)
			c := ids.MakeRef(1, 70)
			d := ids.MakeRef(3, 80)
			f.edge(a, z)
			f.edge(z, c)
			f.edge(b, y)
			f.edge(y, z)
			f.edge(y, d)

			res := Run(f.h, f.tbl, 2, algo)
			if got := res.Back.Inset(c); !reflect.DeepEqual(got, []ids.ObjID{a.Obj, b.Obj}) {
				t.Errorf("inset of c = %v, want {a,b}", got)
			}
			if got := res.Back.Inset(d); !reflect.DeepEqual(got, []ids.ObjID{b.Obj}) {
				t.Errorf("inset of d = %v, want {b}", got)
			}
		})
	}
}

// TestFigure4BackEdgeSCC exercises the failure mode the paper fixes with
// strongly connected components: x → z → x is a cycle and only x references
// the outref c, so a naive bottom-up pass that finalizes Outset[z] before
// x completes would record null for z. Both inrefs (on x and on z) must
// see outset {c}.
func TestFigure4BackEdgeSCC(t *testing.T) {
	for _, algo := range []OutsetAlgorithm{AlgoBottomUp, AlgoIndependent} {
		t.Run(algo.String(), func(t *testing.T) {
			f := newFixture(t, 2)
			x := f.obj()
			z := f.obj()
			f.inref(x, 1, 10)
			f.inref(z, 3, 10)
			c := ids.MakeRef(1, 70)
			f.edge(x, z)
			f.edge(z, x) // back edge forming the SCC
			f.edge(x, c)

			res := Run(f.h, f.tbl, 2, algo)
			if got := res.Back.Outset(x.Obj); !reflect.DeepEqual(got, refSlice(c)) {
				t.Errorf("outset of x = %v, want {c}", got)
			}
			if got := res.Back.Outset(z.Obj); !reflect.DeepEqual(got, refSlice(c)) {
				t.Errorf("outset of z = %v, want {c} (SCC sharing)", got)
			}
			if got := res.Back.Inset(c); !reflect.DeepEqual(got, []ids.ObjID{x.Obj, z.Obj}) {
				t.Errorf("inset of c = %v, want {x,z}", got)
			}
		})
	}
}

func TestOutsetStopsAtCleanObjects(t *testing.T) {
	// A suspected inref whose only path to an outref passes through a
	// clean object: the outref is clean (reached from the clean root at
	// small distance), so the outset must be empty — "a back trace from a
	// live suspect does not spread to the clean parts of the object
	// graph" (Section 4.2).
	f := newFixture(t, 1)
	root := f.rootObj()
	mid := f.obj()
	sus := f.obj()
	r := ids.MakeRef(2, 5)
	f.edge(root, mid)
	f.edge(mid, r)
	f.edge(sus, mid)
	f.inref(sus, 2, 10) // suspected at threshold 2

	res := Run(f.h, f.tbl, 2, AlgoBottomUp)
	if got := res.Back.Outset(sus.Obj); len(got) != 0 {
		t.Fatalf("outset = %v, want empty (path goes through clean object)", got)
	}
	if d := res.OutrefDist[r]; d != 1 {
		t.Fatalf("outref distance = %d, want 1", d)
	}
}

func TestSuspectedInrefWithCleanObjectHasEmptyOutset(t *testing.T) {
	// The inref is suspected (distance 10) but its object is also
	// reachable from a persistent root, so the object itself is clean and
	// the outset must be empty.
	f := newFixture(t, 1)
	root := f.rootObj()
	a := f.obj()
	r := ids.MakeRef(2, 5)
	f.edge(root, a)
	f.edge(a, r)
	f.inref(a, 2, 10)

	res := Run(f.h, f.tbl, 2, AlgoBottomUp)
	if got := res.Back.Outset(a.Obj); len(got) != 0 {
		t.Fatalf("outset = %v, want empty", got)
	}
	if _, ok := res.Back.Outsets[a.Obj]; !ok {
		t.Fatal("suspected inref should still have an (empty) outset entry")
	}
}

func TestOutsetSharingInChainAndSCC(t *testing.T) {
	// A long chain and a large SCC must share canonical outset storage:
	// "objects arranged in a chain or a strongly connected component have
	// the same outset" (Section 5.2). We verify via the memo-hit counter
	// and by checking slice identity of the shared outsets.
	f := newFixture(t, 1)
	const n = 50
	objs := make([]ids.Ref, n)
	for i := range objs {
		objs[i] = f.obj()
	}
	for i := 0; i+1 < n; i++ {
		f.edge(objs[i], objs[i+1])
	}
	r := ids.MakeRef(2, 5)
	f.edge(objs[n-1], r)
	// Inrefs on every chain element, all suspected.
	for i, o := range objs {
		f.inref(o, 2, 10+i)
	}

	res := Run(f.h, f.tbl, 2, AlgoBottomUp)
	first := res.Back.Outset(objs[0].Obj)
	if len(first) != 1 || first[0] != r {
		t.Fatalf("outset of chain head = %v, want {r}", first)
	}
	for _, o := range objs {
		got := res.Back.Outset(o.Obj)
		if len(got) != 1 || got[0] != r {
			t.Fatalf("outset of %v = %v, want {r}", o, got)
		}
		if &got[0] != &first[0] {
			t.Fatal("equal outsets do not share canonical storage")
		}
	}
}

func TestIndependentRetracesButBottomUpDoesNot(t *testing.T) {
	// A diamond fan: k suspected inrefs all reaching one long shared tail.
	// The independent algorithm retraces the tail per inref; bottom-up
	// scans each object once.
	f := newFixture(t, 1)
	const k, tail = 10, 100
	heads := make([]ids.Ref, k)
	for i := range heads {
		heads[i] = f.obj()
		f.inref(heads[i], 2, 10)
	}
	prev := f.obj()
	for i := range heads {
		f.edge(heads[i], prev)
	}
	for i := 0; i < tail; i++ {
		next := f.obj()
		f.edge(prev, next)
		prev = next
	}
	r := ids.MakeRef(2, 5)
	f.edge(prev, r)

	ind := Run(f.h, f.tbl, 2, AlgoIndependent)
	bu := Run(f.h, f.tbl, 2, AlgoBottomUp)
	if ind.Stats.OutsetRetraced == 0 {
		t.Error("independent algorithm reported zero retraced objects on a shared tail")
	}
	if bu.Stats.OutsetVisits > int64(k+tail+2) {
		t.Errorf("bottom-up visited %d objects, want <= %d (each once)", bu.Stats.OutsetVisits, k+tail+2)
	}
	for _, h := range heads {
		if !reflect.DeepEqual(ind.Back.Outset(h.Obj), bu.Back.Outset(h.Obj)) {
			t.Fatal("algorithms disagree on outsets")
		}
	}
}

// buildRandomSite constructs a random single-site graph with remote edges
// and random inref distances, for the cross-algorithm property test.
func buildRandomSite(rng *rand.Rand, nObjs, nEdges, nInrefs, nRemote int) (*heap.Heap, *refs.Table) {
	h := heap.New(1)
	tbl := refs.NewTable(1, 100)
	objs := make([]ids.Ref, nObjs)
	for i := range objs {
		objs[i] = h.Alloc()
	}
	if rng.Intn(2) == 0 && nObjs > 0 {
		h.MarkPersistentRoot(objs[0].Obj)
	}
	for i := 0; i < nEdges; i++ {
		from := objs[rng.Intn(nObjs)]
		to := objs[rng.Intn(nObjs)]
		h.AddField(from.Obj, to)
	}
	for i := 0; i < nRemote; i++ {
		from := objs[rng.Intn(nObjs)]
		target := ids.MakeRef(ids.SiteID(2+rng.Intn(3)), ids.ObjID(1+rng.Intn(20)))
		h.AddField(from.Obj, target)
		tbl.EnsureOutref(target)
	}
	for i := 0; i < nInrefs; i++ {
		obj := objs[rng.Intn(nObjs)]
		src := ids.SiteID(2 + rng.Intn(3))
		tbl.AddSource(obj.Obj, src)
		tbl.SetSourceDistance(obj.Obj, src, rng.Intn(10))
	}
	return h, tbl
}

func TestOutsetAlgorithmsAgreeOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		nObjs := 1 + rng.Intn(40)
		h, tbl := buildRandomSite(rng, nObjs, rng.Intn(3*nObjs), rng.Intn(nObjs+1), rng.Intn(10))
		threshold := rng.Intn(6)
		ind := Run(h, tbl, threshold, AlgoIndependent)
		bu := Run(h, tbl, threshold, AlgoBottomUp)

		if len(ind.Back.Outsets) != len(bu.Back.Outsets) {
			t.Fatalf("iter %d: outset counts differ: %d vs %d", iter, len(ind.Back.Outsets), len(bu.Back.Outsets))
		}
		for in, want := range ind.Back.Outsets {
			got := bu.Back.Outsets[in]
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("iter %d: outset of inref %v differs: independent=%v bottom-up=%v", iter, in, want, got)
			}
		}
		if !reflect.DeepEqual(ind.Marked, bu.Marked) {
			t.Fatalf("iter %d: mark phases differ", iter)
		}
	}
}

func TestBackInfoInsetsMatchOutsets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		nObjs := 1 + rng.Intn(30)
		h, tbl := buildRandomSite(rng, nObjs, rng.Intn(3*nObjs), rng.Intn(nObjs+1), rng.Intn(8))
		res := Run(h, tbl, rng.Intn(5), AlgoBottomUp)
		// Every (inref, outref) pair must appear in both views.
		pairs := 0
		for in, outs := range res.Back.Outsets {
			for _, o := range outs {
				pairs++
				found := false
				for _, back := range res.Back.Inset(o) {
					if back == in {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("iter %d: pair (%v,%v) missing from insets", iter, in, o)
				}
			}
		}
		if got := res.Back.Entries(); got != pairs {
			t.Fatalf("iter %d: Entries() = %d, want %d", iter, got, pairs)
		}
	}
}

func TestEmptyBackInfo(t *testing.T) {
	bi := EmptyBackInfo()
	if bi.Entries() != 0 || bi.Outset(1) != nil || bi.Inset(ids.MakeRef(1, 1)) != nil {
		t.Fatal("EmptyBackInfo not empty")
	}
}

func TestRunOnEmptySite(t *testing.T) {
	h := heap.New(1)
	tbl := refs.NewTable(1, 100)
	res := Run(h, tbl, 2, AlgoBottomUp)
	if len(res.Dead) != 0 || res.Marked.Len() != 0 || res.Back.Entries() != 0 {
		t.Fatal("empty site produced non-empty trace result")
	}
}

func TestAlgorithmString(t *testing.T) {
	if AlgoBottomUp.String() != "bottom-up" || AlgoIndependent.String() != "independent" {
		t.Fatal("algorithm names wrong")
	}
	if OutsetAlgorithm(9).String() == "" {
		t.Fatal("unknown algorithm name empty")
	}
}

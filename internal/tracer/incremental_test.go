package tracer

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"backtrace/internal/heap"
	"backtrace/internal/ids"
	"backtrace/internal/refs"
)

// sameResult fails unless the incremental result matches the full-trace
// result on every field a commit consumes: marks, outref distances, dead
// set, untraced set, missing set, and back information.
func sameResult(t *testing.T, ctx string, inc, full *Result) {
	t.Helper()
	if !reflect.DeepEqual(inc.Marked, full.Marked) {
		t.Fatalf("%s: Marked diverges:\nincremental %v\nfull        %v", ctx, inc.Marked, full.Marked)
	}
	if !reflect.DeepEqual(inc.OutrefDist, full.OutrefDist) {
		t.Fatalf("%s: OutrefDist diverges:\nincremental %v\nfull        %v", ctx, inc.OutrefDist, full.OutrefDist)
	}
	sortObjs := func(s []ids.ObjID) []ids.ObjID {
		out := append([]ids.ObjID(nil), s...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	sortRefs := func(s []ids.Ref) []ids.Ref {
		out := append([]ids.Ref(nil), s...)
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		return out
	}
	if got, want := sortObjs(inc.Dead), sortObjs(full.Dead); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: Dead diverges:\nincremental %v\nfull        %v", ctx, got, want)
	}
	if got, want := sortRefs(inc.Untraced), sortRefs(full.Untraced); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: Untraced diverges:\nincremental %v\nfull        %v", ctx, got, want)
	}
	if got, want := sortRefs(inc.Missing), sortRefs(full.Missing); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: Missing diverges:\nincremental %v\nfull        %v", ctx, got, want)
	}
	if !reflect.DeepEqual(inc.Back.Outsets, full.Back.Outsets) {
		t.Fatalf("%s: Back.Outsets diverges:\nincremental %v\nfull        %v", ctx, inc.Back.Outsets, full.Back.Outsets)
	}
	if !reflect.DeepEqual(inc.Back.Insets, full.Back.Insets) {
		t.Fatalf("%s: Back.Insets diverges:\nincremental %v\nfull        %v", ctx, inc.Back.Insets, full.Back.Insets)
	}
}

// TestIncrementalEquivalence is the exactness property test: over seeded
// randomized mutation sequences (mirroring the legal site flows — monotone
// mutations most rounds, occasional invalidating ones to exercise the
// fallback), every Incremental.Run result must be identical to a full
// tracer.Run on a deep snapshot of the same state. Dead objects are swept
// after each trace, as the site's commit does, which is what makes the
// incremental dead-set rule exact.
func TestIncrementalEquivalence(t *testing.T) {
	const (
		numSeeds  = 30
		rounds    = 15
		threshold = 2
	)
	for seed := int64(1); seed <= numSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			h := heap.New(1)
			tbl := refs.NewTable(1, threshold+2)
			h.EnableDeltaTracking()
			tbl.EnableDeltaTracking()
			// Tiny property-test heaps would constantly trip the dirty-ratio
			// knob; the point here is exactness of the remark, so disable it.
			inc := &Incremental{MaxDirtyRatio: 1e9}

			var objs []ids.Ref
			for i := 0; i < 4; i++ {
				objs = append(objs, h.AllocRoot())
			}
			remarks, fulls := 0, 0

			mutate := func(allowInvalidating bool) {
				op := rng.Intn(20)
				if !allowInvalidating && op >= 17 {
					op = rng.Intn(10) // remap to a monotone field add
				}
				switch op {
				case 0, 1, 2, 3:
					objs = append(objs, h.Alloc())
				case 4, 5, 6, 7, 8, 9:
					src := objs[rng.Intn(len(objs))]
					dst := objs[rng.Intn(len(objs))]
					_ = h.AddField(src.Obj, dst)
				case 10, 11:
					// New remote edge, with the outref the protocol creates.
					src := objs[rng.Intn(len(objs))]
					remote := ids.Ref{Site: 2, Obj: ids.ObjID(rng.Intn(30) + 1)}
					_ = h.AddField(src.Obj, remote)
					tbl.EnsureOutref(remote)
				case 12, 13:
					// New or improved inref (a reference arriving).
					obj := objs[rng.Intn(len(objs))]
					tbl.AddSource(obj.Obj, 3)
					tbl.SetSourceDistance(obj.Obj, 3, rng.Intn(threshold+3))
				case 14:
					// Improved inref distance only.
					obj := objs[rng.Intn(len(objs))]
					if in, ok := tbl.Inref(obj.Obj); ok {
						if d := in.Distance(); d > 0 {
							tbl.SetSourceDistance(obj.Obj, 3, d-1)
						}
					}
				case 15:
					h.AddAppRoot(objs[rng.Intn(len(objs))])
				case 16:
					// A variable holding a remote reference; the protocol
					// always creates the outref alongside it.
					remote := ids.Ref{Site: 2, Obj: ids.ObjID(rng.Intn(30) + 1)}
					h.AddAppRoot(remote)
					tbl.EnsureOutref(remote)
				case 17:
					// Invalidating: field removal.
					src := objs[rng.Intn(len(objs))]
					o, ok := h.Get(src.Obj)
					if ok && o.NumFields() > 0 {
						_, _ = h.RemoveField(src.Obj, o.Field(rng.Intn(o.NumFields())))
					}
				case 18:
					// Invalidating: inref worsened or dropped.
					obj := objs[rng.Intn(len(objs))]
					if rng.Intn(2) == 0 {
						tbl.RemoveSource(obj.Obj, 3)
					} else {
						tbl.FlagGarbage(obj.Obj)
					}
				case 19:
					// Invalidating: app root dropped.
					h.RemoveAppRoot(objs[rng.Intn(len(objs))])
				}
			}

			for round := 0; round < rounds; round++ {
				// Most rounds stay monotone so the remark path runs; every
				// fourth round may inject invalidating ops to exercise the
				// fallback and the recovery after it.
				allowInvalidating := round%4 == 3
				for step := 0; step < 15; step++ {
					mutate(allowInvalidating)
				}

				// Full trace on an independent deep copy of the same state.
				want := Run(h.Snapshot(), tbl.Snapshot(), threshold, AlgoBottomUp)

				sh, hd := h.TraceSnapshot()
				stbl, td := tbl.TraceSnapshot()
				got := inc.Run(sh, stbl, hd, td, threshold, AlgoBottomUp)
				if got.Stats.Incremental {
					remarks++
				} else {
					fulls++
				}

				sameResult(t, fmt.Sprintf("seed %d round %d (incremental=%v reason=%q)",
					seed, round, got.Stats.Incremental, got.Stats.FallbackReason), got, want)

				// Commit as the site would: sweep every dead object. (Outref
				// trimming is skipped; it is invalidating and only forces
				// more full traces.)
				for _, obj := range got.Dead {
					h.Delete(obj)
					tbl.RemoveInref(obj)
				}
			}
			if remarks == 0 {
				t.Errorf("seed %d: no round took the incremental path (%d full)", seed, fulls)
			}
		})
	}
}

// TestIncrementalIdleReusesOutsets checks the memoization fast path: with no
// mutations at all between traces, the remark relaxes nothing and carries
// the previous back information over verbatim.
func TestIncrementalIdleReusesOutsets(t *testing.T) {
	const threshold = 2
	h := heap.New(1)
	tbl := refs.NewTable(1, threshold+2)
	h.EnableDeltaTracking()
	tbl.EnableDeltaTracking()

	// A suspected inref chain so the back info is non-trivial: in(5) → a → b
	// → remote outref.
	a, b := h.Alloc(), h.Alloc()
	remote := ids.Ref{Site: 2, Obj: 9}
	if err := h.AddField(a.Obj, b); err != nil {
		t.Fatal(err)
	}
	if err := h.AddField(b.Obj, remote); err != nil {
		t.Fatal(err)
	}
	tbl.EnsureOutref(remote)
	tbl.AddSource(a.Obj, 3)
	tbl.SetSourceDistance(a.Obj, 3, threshold+3)

	inc := &Incremental{MaxDirtyRatio: 1e9}
	sh, hd := h.TraceSnapshot()
	stbl, td := tbl.TraceSnapshot()
	first := inc.Run(sh, stbl, hd, td, threshold, AlgoBottomUp)
	if first.Stats.Incremental {
		t.Fatal("first run should be a full trace")
	}
	if len(first.Back.Outsets) == 0 {
		t.Fatal("setup produced no suspected inrefs")
	}

	sh, hd = h.TraceSnapshot()
	stbl, td = tbl.TraceSnapshot()
	second := inc.Run(sh, stbl, hd, td, threshold, AlgoBottomUp)
	if !second.Stats.Incremental {
		t.Fatalf("idle second run fell back: %q", second.Stats.FallbackReason)
	}
	if !second.Stats.OutsetsReused {
		t.Fatal("idle remark recomputed outsets")
	}
	if second.Back != first.Back {
		t.Fatal("idle remark did not reuse the previous BackInfo")
	}
	if second.Stats.DirtySeeds != 0 {
		t.Fatalf("idle remark had %d seeds", second.Stats.DirtySeeds)
	}

	// A mutation inside the suspect cone must force recomputation.
	c := h.Alloc()
	if err := h.AddField(b.Obj, c); err != nil {
		t.Fatal(err)
	}
	sh, hd = h.TraceSnapshot()
	stbl, td = tbl.TraceSnapshot()
	third := inc.Run(sh, stbl, hd, td, threshold, AlgoBottomUp)
	if !third.Stats.Incremental {
		t.Fatalf("third run fell back: %q", third.Stats.FallbackReason)
	}
	if third.Stats.OutsetsReused {
		t.Fatal("remark reused outsets despite a dirty edge in the suspect cone")
	}
}

// TestIncrementalFallbackReasons checks that each fallback condition names
// itself.
func TestIncrementalFallbackReasons(t *testing.T) {
	const threshold = 2
	h := heap.New(1)
	tbl := refs.NewTable(1, threshold+2)
	h.EnableDeltaTracking()
	tbl.EnableDeltaTracking()
	root := h.AllocRoot()

	inc := &Incremental{MaxDirtyRatio: 1e9}
	run := func() *Result {
		sh, hd := h.TraceSnapshot()
		stbl, td := tbl.TraceSnapshot()
		return inc.Run(sh, stbl, hd, td, threshold, AlgoBottomUp)
	}
	if r := run(); r.Stats.FallbackReason != "first-trace" {
		t.Fatalf("first run: reason %q", r.Stats.FallbackReason)
	}

	// Invalidating mutation.
	h.AddAppRoot(root)
	h.RemoveAppRoot(root)
	other := h.Alloc()
	if err := h.AddField(root.Obj, other); err != nil {
		t.Fatal(err)
	}
	if _, err := h.RemoveField(root.Obj, other); err != nil {
		t.Fatal(err)
	}
	// The cancelling pairs above leave no delta; now a real removal.
	if err := h.AddField(root.Obj, other); err != nil {
		t.Fatal(err)
	}
	if r := run(); r.Stats.Incremental != true {
		t.Fatalf("monotone round fell back: %q", r.Stats.FallbackReason)
	}
	if _, err := h.RemoveField(root.Obj, other); err != nil {
		t.Fatal(err)
	}
	if r := run(); r.Stats.FallbackReason != "invalidating-mutation" {
		t.Fatalf("removal round: reason %q", r.Stats.FallbackReason)
	}

	// Threshold change.
	sh, hd := h.TraceSnapshot()
	stbl, td := tbl.TraceSnapshot()
	if r := inc.Run(sh, stbl, hd, td, threshold+1, AlgoBottomUp); r.Stats.FallbackReason != "threshold-changed" {
		t.Fatalf("threshold round: reason %q", r.Stats.FallbackReason)
	}

	// Algorithm change.
	sh, hd = h.TraceSnapshot()
	stbl, td = tbl.TraceSnapshot()
	if r := inc.Run(sh, stbl, hd, td, threshold+1, AlgoIndependent); r.Stats.FallbackReason != "algorithm-changed" {
		t.Fatalf("algorithm round: reason %q", r.Stats.FallbackReason)
	}

	// Dirty ratio: flood the heap with changes.
	inc2 := &Incremental{MaxDirtyRatio: 0.01}
	h2 := heap.New(1)
	tbl2 := refs.NewTable(1, threshold+2)
	h2.EnableDeltaTracking()
	tbl2.EnableDeltaTracking()
	r2 := h2.AllocRoot()
	for i := 0; i < 50; i++ {
		h2.Alloc()
	}
	sh2, hd2 := h2.TraceSnapshot()
	stbl2, td2 := tbl2.TraceSnapshot()
	inc2.Run(sh2, stbl2, hd2, td2, threshold, AlgoBottomUp)
	for i := 0; i < 10; i++ {
		next := h2.Alloc()
		_ = h2.AddField(r2.Obj, next)
	}
	sh2, hd2 = h2.TraceSnapshot()
	stbl2, td2 = tbl2.TraceSnapshot()
	if r := inc2.Run(sh2, stbl2, hd2, td2, threshold, AlgoBottomUp); r.Stats.FallbackReason != "dirty-ratio" {
		t.Fatalf("flood round: reason %q", r.Stats.FallbackReason)
	}
}

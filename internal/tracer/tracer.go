package tracer

import (
	"fmt"
	"sort"
	"time"

	"backtrace/internal/heap"
	"backtrace/internal/ids"
	"backtrace/internal/refs"
)

// OutsetAlgorithm selects how outsets of suspected inrefs are computed.
type OutsetAlgorithm int

const (
	// AlgoBottomUp is the Section 5.2 single-pass algorithm (default):
	// Tarjan SCCs, interned canonical outsets, memoized unions.
	AlgoBottomUp OutsetAlgorithm = iota + 1
	// AlgoIndependent is the Section 5.1 algorithm: an independent trace
	// from every suspected inref, possibly retracing objects.
	AlgoIndependent
)

// String returns the algorithm's name.
func (a OutsetAlgorithm) String() string {
	switch a {
	case AlgoBottomUp:
		return "bottom-up"
	case AlgoIndependent:
		return "independent"
	default:
		return fmt.Sprintf("OutsetAlgorithm(%d)", int(a))
	}
}

// Stats reports the cost of one local trace.
type Stats struct {
	// ObjectsTraced counts objects scanned by the forward marking phase
	// (each exactly once).
	ObjectsTraced int64
	// OutsetVisits counts object scans during outset computation.
	OutsetVisits int64
	// OutsetRetraced counts scans beyond an object's first during outset
	// computation (nonzero only for AlgoIndependent).
	OutsetRetraced int64
	// Unions and MemoHits count outset union operations and how many were
	// answered from the memo tables (AlgoBottomUp only).
	Unions   int64
	MemoHits int64
	// SuspectedInrefs and SuspectedOutrefs count the suspected iorefs at
	// this trace (ni and no in the paper's space bound).
	SuspectedInrefs  int
	SuspectedOutrefs int
	// Duration is the wall-clock time of the trace computation (forward
	// mark + outset computation), used to report trace latency when the
	// computation runs off the site lock.
	Duration time.Duration

	// Incremental reports whether the result was produced by the dirty-set
	// remark rather than a full forward mark.
	Incremental bool
	// FallbackReason names why an incremental-mode trace ran full; empty
	// when the remark ran (or the tracer was not in incremental mode).
	FallbackReason string
	// DirtySeeds counts the changed entities the remark relaxed from.
	DirtySeeds int
	// OutsetsReused reports whether the back information was carried over
	// unchanged from the previous trace instead of being recomputed.
	OutsetsReused bool

	// Workers is the number of mark workers the trace ran with (1 for the
	// sequential path); Steals counts work-stealing events between their
	// deques. Scheduling-dependent, so excluded from result equivalence.
	Workers int
	Steals  int64
}

// Scratch holds reusable trace buffers so consecutive full traces stop
// allocating fresh mark and distance maps every round. A Result produced
// with a Scratch aliases its maps and slices: it is valid only until the
// next Run with the same Scratch. The owning Site commits each result
// before starting the next trace, which provides exactly that lifetime.
type Scratch struct {
	marked     *MarkSet
	outrefDist map[ids.Ref]int
	roots      []root
	stack      []ids.ObjID
	dead       []ids.ObjID
	untraced   []ids.Ref
}

// Result is the outcome of one local trace, computed without mutating the
// heap or the ioref tables. The owning Site applies it (sweeping dead
// objects, trimming outrefs, installing distances and back information) at
// commit time; see Section 6.2 for why computation and installation are
// separated.
type Result struct {
	// Threshold is the suspicion threshold the trace classified with.
	Threshold int
	// Marked maps every object reached from a root (persistent roots,
	// application roots, and non-garbage-flagged inrefs) to the distance
	// of the first root that reached it, partitioned by heap shard.
	Marked *MarkSet
	// Dead lists the objects that were present and unreached — garbage to
	// sweep, in ascending order.
	Dead []ids.ObjID
	// OutrefDist maps each outref the trace reached to its new distance.
	OutrefDist map[ids.Ref]int
	// Untraced lists outrefs the trace did not reach — candidates for
	// trimming (ascending order). The commit skips any that are pinned or
	// barrier-cleaned by then.
	Untraced []ids.Ref
	// Missing lists remote references found in reachable objects with no
	// outref table entry; always empty unless a protocol invariant broke.
	Missing []ids.Ref
	// Back is the freshly computed back information for suspected iorefs.
	Back *BackInfo
	// Stats reports the trace's cost.
	Stats Stats
}

// IsCleanObj reports whether the trace classified a local object as clean
// (reached from a root at distance ≤ threshold).
func (r *Result) IsCleanObj(obj ids.ObjID) bool {
	d, ok := r.Marked.Get(obj)
	return ok && d <= r.Threshold
}

// IsLiveObj reports whether the trace reached the object at all.
func (r *Result) IsLiveObj(obj ids.ObjID) bool {
	_, ok := r.Marked.Get(obj)
	return ok
}

// Run performs a local trace of the heap at the given suspicion threshold:
// the distance-ordered forward mark of Sections 2–3 followed by the
// Section 5 computation of back information with the selected algorithm.
// It does not modify the heap or the tables, so it may run on a Snapshot
// of both while the live site state keeps changing — the off-lock local
// trace enabled by the Section 6.2 double buffering.
func Run(h *heap.Heap, tbl *refs.Table, threshold int, algo OutsetAlgorithm) *Result {
	return RunWithScratch(h, tbl, threshold, algo, nil)
}

// RunWithScratch is Run reusing the buffers in sc (which may be nil). See
// Scratch for the aliasing contract.
func RunWithScratch(h *heap.Heap, tbl *refs.Table, threshold int, algo OutsetAlgorithm, sc *Scratch) *Result {
	start := time.Now()
	mr := forwardMark(h, tbl, sc)

	env := &outsetEnv{h: h, tbl: tbl, mr: mr, threshold: threshold}
	var (
		outsets map[ids.ObjID][]ids.Ref
		ost     outsetStats
	)
	switch algo {
	case AlgoIndependent:
		outsets, ost = outsetsIndependent(env)
	default:
		outsets, ost = outsetsBottomUp(env)
	}

	res := &Result{
		Threshold:  threshold,
		Marked:     mr.marked,
		OutrefDist: mr.outrefDist,
		Missing:    mr.missingOutrefs,
		Back:       NewBackInfo(outsets),
		Stats: Stats{
			ObjectsTraced:   mr.objectsTraced,
			OutsetVisits:    ost.objectsVisited,
			OutsetRetraced:  ost.objectsRetraced,
			Unions:          ost.unions,
			MemoHits:        ost.memoHits,
			SuspectedInrefs: len(outsets),
		},
	}
	if sc != nil {
		res.Dead = sc.dead[:0]
		res.Untraced = sc.untraced[:0]
	}

	for _, obj := range h.Objects() {
		if _, ok := mr.marked.Get(obj); !ok {
			res.Dead = append(res.Dead, obj)
		}
	}
	for _, o := range tbl.Outrefs() {
		if _, ok := mr.outrefDist[o.Target]; !ok {
			res.Untraced = append(res.Untraced, o.Target)
		}
	}
	for _, d := range mr.outrefDist {
		if d > threshold+1 {
			res.Stats.SuspectedOutrefs++
		}
	}
	sort.Slice(res.Untraced, func(i, j int) bool { return res.Untraced[i].Less(res.Untraced[j]) })
	sort.Slice(res.Missing, func(i, j int) bool { return res.Missing[i].Less(res.Missing[j]) })
	if sc != nil {
		sc.dead = res.Dead
		sc.untraced = res.Untraced
	}
	res.Stats.Duration = time.Since(start)
	return res
}

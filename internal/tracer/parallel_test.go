package tracer

import (
	"fmt"
	"math/rand"
	"testing"

	"backtrace/internal/heap"
	"backtrace/internal/ids"
	"backtrace/internal/refs"
)

// mutateState applies one weighted random mutation to the heap/table pair,
// mirroring the legal site flows (the same mix the incremental equivalence
// test uses). With allowInvalidating false the op is remapped into the
// monotone range.
func mutateState(rng *rand.Rand, h *heap.Heap, tbl *refs.Table, objs *[]ids.Ref, threshold int, allowInvalidating bool) {
	op := rng.Intn(20)
	if !allowInvalidating && op >= 17 {
		op = rng.Intn(10)
	}
	switch op {
	case 0, 1, 2, 3:
		*objs = append(*objs, h.Alloc())
	case 4, 5, 6, 7, 8, 9:
		src := (*objs)[rng.Intn(len(*objs))]
		dst := (*objs)[rng.Intn(len(*objs))]
		_ = h.AddField(src.Obj, dst)
	case 10, 11:
		src := (*objs)[rng.Intn(len(*objs))]
		remote := ids.Ref{Site: 2, Obj: ids.ObjID(rng.Intn(30) + 1)}
		_ = h.AddField(src.Obj, remote)
		tbl.EnsureOutref(remote)
	case 12, 13:
		obj := (*objs)[rng.Intn(len(*objs))]
		tbl.AddSource(obj.Obj, 3)
		tbl.SetSourceDistance(obj.Obj, 3, rng.Intn(threshold+3))
	case 14:
		obj := (*objs)[rng.Intn(len(*objs))]
		if in, ok := tbl.Inref(obj.Obj); ok {
			if d := in.Distance(); d > 0 {
				tbl.SetSourceDistance(obj.Obj, 3, d-1)
			}
		}
	case 15:
		h.AddAppRoot((*objs)[rng.Intn(len(*objs))])
	case 16:
		remote := ids.Ref{Site: 2, Obj: ids.ObjID(rng.Intn(30) + 1)}
		h.AddAppRoot(remote)
		tbl.EnsureOutref(remote)
	case 17:
		src := (*objs)[rng.Intn(len(*objs))]
		o, ok := h.Get(src.Obj)
		if ok && o.NumFields() > 0 {
			_, _ = h.RemoveField(src.Obj, o.Field(rng.Intn(o.NumFields())))
		}
	case 18:
		obj := (*objs)[rng.Intn(len(*objs))]
		if rng.Intn(2) == 0 {
			tbl.RemoveSource(obj.Obj, 3)
		} else {
			tbl.FlagGarbage(obj.Obj)
		}
	case 19:
		h.RemoveAppRoot((*objs)[rng.Intn(len(*objs))])
	}
}

// TestParallelEquivalence is the bit-identical property for full traces:
// over seeded randomized states on varying shard counts, RunParallel must
// match sequential Run on every comparable result field, for every worker
// count in {1, 2, 4, 8} and both outset algorithms.
func TestParallelEquivalence(t *testing.T) {
	const (
		numSeeds  = 30
		rounds    = 6
		threshold = 2
	)
	for seed := int64(1); seed <= numSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			shards := []int{1, 2, 3, 8}[seed%4]
			algo := AlgoBottomUp
			if seed%5 == 0 {
				algo = AlgoIndependent
			}
			h := heap.NewSharded(1, shards)
			tbl := refs.NewTableSharded(1, threshold+2, shards)

			var objs []ids.Ref
			for i := 0; i < 4; i++ {
				objs = append(objs, h.AllocRoot())
			}
			for round := 0; round < rounds; round++ {
				for step := 0; step < 25; step++ {
					mutateState(rng, h, tbl, &objs, threshold, round%4 == 3)
				}
				want := Run(h, tbl, threshold, algo)
				for _, workers := range []int{1, 2, 4, 8} {
					got := RunParallel(h, tbl, threshold, algo, workers)
					sameResult(t, fmt.Sprintf("seed %d round %d shards %d workers %d algo %v",
						seed, round, shards, workers, algo), got, want)
					if !EqualResults(got, want) {
						t.Fatalf("seed %d round %d workers %d: EqualResults disagrees with field comparison",
							seed, round, workers)
					}
				}
				// Sweep as the site's commit would.
				for _, obj := range want.Dead {
					h.Delete(obj)
					tbl.RemoveInref(obj)
				}
			}
		})
	}
}

// TestParallelIncrementalEquivalence covers the parallel remark: an
// Incremental tracer with Workers > 1 (parallel full-trace fallbacks AND
// work-stealing dirty-seed remarks) must stay identical to a sequential
// full trace of the same state. Every fifth round is idle, which must take
// the memoized back-info reuse path (zero seeds relaxed, previous outsets
// carried over) and still compare equal.
func TestParallelIncrementalEquivalence(t *testing.T) {
	const (
		numSeeds  = 30
		rounds    = 10
		threshold = 2
	)
	for seed := int64(1); seed <= numSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			workers := []int{2, 4, 8}[seed%3]
			shards := []int{1, 2, 8}[seed%3]
			h := heap.NewSharded(1, shards)
			tbl := refs.NewTableSharded(1, threshold+2, shards)
			h.EnableDeltaTracking()
			tbl.EnableDeltaTracking()
			inc := &Incremental{MaxDirtyRatio: 1e9, Workers: workers}

			var objs []ids.Ref
			for i := 0; i < 4; i++ {
				objs = append(objs, h.AllocRoot())
			}
			remarks, reused := 0, 0
			for round := 0; round < rounds; round++ {
				idle := round > 0 && round%5 == 4
				if !idle {
					for step := 0; step < 15; step++ {
						mutateState(rng, h, tbl, &objs, threshold, round%4 == 3)
					}
				}
				want := Run(h.Snapshot(), tbl.Snapshot(), threshold, AlgoBottomUp)

				sh, hd := h.TraceSnapshot()
				stbl, td := tbl.TraceSnapshot()
				got := inc.Run(sh, stbl, hd, td, threshold, AlgoBottomUp)
				if got.Stats.Incremental {
					remarks++
				}
				if got.Stats.OutsetsReused {
					reused++
				}
				if idle && !got.Stats.OutsetsReused {
					t.Errorf("seed %d round %d: idle round did not reuse back info (incremental=%v reason=%q)",
						seed, round, got.Stats.Incremental, got.Stats.FallbackReason)
				}
				sameResult(t, fmt.Sprintf("seed %d round %d workers %d shards %d (incremental=%v reason=%q)",
					seed, round, workers, shards, got.Stats.Incremental, got.Stats.FallbackReason), got, want)

				for _, obj := range got.Dead {
					h.Delete(obj)
					tbl.RemoveInref(obj)
				}
			}
			if remarks == 0 {
				t.Errorf("seed %d: no round took the incremental path", seed)
			}
			if reused == 0 {
				t.Errorf("seed %d: no round reused the memoized back info", seed)
			}
		})
	}
}

package tracer

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"backtrace/internal/ids"
)

// refSetFromBytes builds a small sorted deduplicated ref set from fuzz
// bytes.
func refSetFromBytes(bs []byte) []ids.Ref {
	set := make(map[ids.Ref]struct{})
	for _, b := range bs {
		set[ids.MakeRef(ids.SiteID(b%4+2), ids.ObjID(b%16+1))] = struct{}{}
	}
	out := make([]ids.Ref, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func TestInternerCanonicalSharing(t *testing.T) {
	it := newInterner()
	a := refSetFromBytes([]byte{1, 2, 3})
	b := refSetFromBytes([]byte{3, 2, 1})
	ida := it.intern(a)
	idb := it.intern(b)
	if ida != idb {
		t.Fatal("equal sets interned to different ids")
	}
	if ida == emptyOutset {
		t.Fatal("non-empty set interned as empty")
	}
	if it.intern(nil) != emptyOutset {
		t.Fatal("nil set not the empty outset")
	}
}

func TestInternerUnionSemantics(t *testing.T) {
	f := func(x, y []byte) bool {
		it := newInterner()
		a := it.intern(refSetFromBytes(x))
		b := it.intern(refSetFromBytes(y))
		u := it.union(a, b)
		// Model answer via a map.
		want := make(map[ids.Ref]struct{})
		for _, r := range it.refs(a) {
			want[r] = struct{}{}
		}
		for _, r := range it.refs(b) {
			want[r] = struct{}{}
		}
		got := it.refs(u)
		if len(got) != len(want) {
			return false
		}
		for _, r := range got {
			if _, ok := want[r]; !ok {
				return false
			}
		}
		// Sortedness of the canonical form.
		for i := 1; i < len(got); i++ {
			if !got[i-1].Less(got[i]) {
				return false
			}
		}
		// Commutativity and idempotence land on the same ids.
		if it.union(b, a) != u || it.union(u, u) != u || it.union(u, a) != u {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInternerUnionAssociative(t *testing.T) {
	f := func(x, y, z []byte) bool {
		it := newInterner()
		a := it.intern(refSetFromBytes(x))
		b := it.intern(refSetFromBytes(y))
		c := it.intern(refSetFromBytes(z))
		return it.union(it.union(a, b), c) == it.union(a, it.union(b, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInternerAddRef(t *testing.T) {
	f := func(x []byte, b byte) bool {
		it := newInterner()
		a := it.intern(refSetFromBytes(x))
		r := ids.MakeRef(ids.SiteID(b%4+2), ids.ObjID(b%16+1))
		u := it.addRef(a, r)
		got := it.refs(u)
		found := false
		for _, g := range got {
			if g == r {
				found = true
			}
		}
		if !found {
			return false
		}
		// addRef is equivalent to union with the singleton.
		s := it.intern([]ids.Ref{r})
		if it.union(a, s) != u {
			return false
		}
		// Adding an element already present is the identity.
		return it.addRef(u, r) == u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInternerMemoization(t *testing.T) {
	it := newInterner()
	a := it.intern(refSetFromBytes([]byte{1, 2}))
	b := it.intern(refSetFromBytes([]byte{3, 4}))
	it.union(a, b)
	before := it.memoHits
	it.union(a, b)
	it.union(b, a) // symmetric key
	if it.memoHits != before+2 {
		t.Fatalf("memoHits = %d, want %d", it.memoHits, before+2)
	}
	r := ids.MakeRef(2, 1)
	it.addRef(a, r)
	hits := it.memoHits
	it.addRef(a, r)
	if it.memoHits != hits+1 {
		t.Fatal("addRef not memoized")
	}
}

func TestMergeRefs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		x := make([]byte, rng.Intn(10))
		y := make([]byte, rng.Intn(10))
		rng.Read(x)
		rng.Read(y)
		a, b := refSetFromBytes(x), refSetFromBytes(y)
		got := mergeRefs(a, b)
		want := refSetFromBytes(append(append([]byte{}, x...), y...))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("mergeRefs(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestOutsetKeyInjective(t *testing.T) {
	// Distinct sets must produce distinct keys (the canonical map relies
	// on it); in particular boundary-crossing byte patterns.
	sets := [][]ids.Ref{
		nil,
		{ids.MakeRef(1, 1)},
		{ids.MakeRef(1, 256)},
		{ids.MakeRef(256, 1)},
		{ids.MakeRef(1, 1), ids.MakeRef(1, 2)},
		{ids.MakeRef(1, 1), ids.MakeRef(2, 1)},
		{ids.MakeRef(0x01020304, 0x05060708090a0b0c)},
	}
	seen := make(map[string]int)
	for i, s := range sets {
		k := outsetKey(s)
		if j, ok := seen[k]; ok {
			t.Fatalf("sets %d and %d collide on key %q", i, j, k)
		}
		seen[k] = i
	}
}

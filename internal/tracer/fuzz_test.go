package tracer

import (
	"reflect"
	"testing"

	"backtrace/internal/heap"
	"backtrace/internal/ids"
	"backtrace/internal/refs"
)

// FuzzOutsetAlgorithmsAgree decodes a byte string into a single-site graph
// (objects, edges, remote references, inref distances, a threshold) and
// checks that the Section 5.1 and 5.2 algorithms produce identical back
// information and identical mark phases. `go test` runs the seed corpus;
// `go test -fuzz=FuzzOutsetAlgorithmsAgree` explores further.
func FuzzOutsetAlgorithmsAgree(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 254, 253, 252, 251, 250, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Add([]byte("cycles cycles cycles"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		const n = 12 // objects
		h := heap.New(1)
		tbl := refs.NewTable(1, 1<<20)
		objs := make([]ids.Ref, n)
		for i := range objs {
			objs[i] = h.Alloc()
		}
		pos := 0
		next := func() byte {
			b := data[pos%len(data)]
			pos++
			return b
		}
		threshold := int(next() % 5)
		if next()%2 == 0 {
			if err := h.MarkPersistentRoot(objs[0].Obj); err != nil {
				t.Fatal(err)
			}
		}
		edges := int(next()%32) + 1
		for i := 0; i < edges; i++ {
			from := objs[int(next())%n]
			switch next() % 4 {
			case 0: // remote reference
				target := ids.MakeRef(ids.SiteID(2+next()%3), ids.ObjID(1+next()%8))
				if err := h.AddField(from.Obj, target); err != nil {
					t.Fatal(err)
				}
				tbl.EnsureOutref(target)
				if o, ok := tbl.Outref(target); ok {
					o.Barrier = false
				}
			default: // local reference
				if err := h.AddField(from.Obj, objs[int(next())%n]); err != nil {
					t.Fatal(err)
				}
			}
		}
		inrefs := int(next() % 8)
		for i := 0; i < inrefs; i++ {
			obj := objs[int(next())%n]
			src := ids.SiteID(2 + next()%3)
			tbl.AddSource(obj.Obj, src)
			tbl.SetSourceDistance(obj.Obj, src, int(next()%12))
		}

		ind := Run(h, tbl, threshold, AlgoIndependent)
		bu := Run(h, tbl, threshold, AlgoBottomUp)

		if !reflect.DeepEqual(ind.Marked, bu.Marked) {
			t.Fatalf("mark phases differ")
		}
		if !reflect.DeepEqual(ind.OutrefDist, bu.OutrefDist) {
			t.Fatalf("outref distances differ")
		}
		if len(ind.Back.Outsets) != len(bu.Back.Outsets) {
			t.Fatalf("outset counts differ: %d vs %d", len(ind.Back.Outsets), len(bu.Back.Outsets))
		}
		for in, want := range ind.Back.Outsets {
			got := bu.Back.Outsets[in]
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("outset of %v differs: %v vs %v", in, want, got)
			}
		}
		// The space identity must hold for both.
		if ind.Back.Entries() != bu.Back.Entries() {
			t.Fatalf("entry counts differ")
		}
	})
}

package tracer

import (
	"sort"

	"backtrace/internal/heap"
	"backtrace/internal/ids"
	"backtrace/internal/refs"
)

// root is one starting point of the forward trace: a local object together
// with the distance of the root it represents (0 for persistent and
// application roots, the inref distance otherwise).
type root struct {
	obj  ids.ObjID
	dist int
}

// markResult is the outcome of the forward marking phase.
type markResult struct {
	// marked maps every reached object to the distance of the root whose
	// trace first reached it (the minimum, because roots are processed in
	// ascending distance order with single marking).
	marked *MarkSet
	// outrefDist is the new estimated distance of each outref the trace
	// reached: one plus the distance of the inref being traced when first
	// reached (Section 3).
	outrefDist map[ids.Ref]int
	// missingOutrefs lists remote references encountered in reachable
	// objects for which the outref table has no entry — a protocol
	// invariant violation surfaced for tests.
	missingOutrefs []ids.Ref
	// objectsTraced counts objects scanned (each exactly once).
	objectsTraced int64
}

// forwardMark performs the distance-ordered local trace of Sections 2–3:
//
//   - roots are the persistent roots and application roots (distance 0,
//     Section 6.3) and every inref not flagged garbage (its own distance);
//   - roots are traced in increasing distance order, each object is scanned
//     exactly once, and when the trace first reaches an outref its distance
//     becomes one plus the distance of the root being traced.
//
// Remote references held directly in application-root variables mark the
// corresponding outrefs at distance 1.
func forwardMark(h *heap.Heap, tbl *refs.Table, sc *Scratch) *markResult {
	res := &markResult{}
	var roots []root
	var stack []ids.ObjID
	if sc != nil {
		if sc.marked == nil || sc.marked.NumShards() != h.NumShards() {
			sc.marked = NewMarkSet(h.NumShards())
			sc.outrefDist = make(map[ids.Ref]int)
		}
		sc.marked.Clear()
		clear(sc.outrefDist)
		res.marked = sc.marked
		res.outrefDist = sc.outrefDist
		roots = sc.roots[:0]
		stack = sc.stack[:0]
	} else {
		res.marked = NewMarkSet(h.NumShards())
		res.outrefDist = make(map[ids.Ref]int)
	}

	for _, obj := range h.PersistentRoots() {
		roots = append(roots, root{obj: obj, dist: 0})
	}
	for _, r := range h.AppRoots() {
		if r.Site == h.Site() {
			roots = append(roots, root{obj: r.Obj, dist: 0})
		} else if _, ok := res.outrefDist[r]; !ok {
			// A variable holding a remote reference is a root one
			// inter-site hop away from the target.
			res.outrefDist[r] = 1
			if _, ok := tbl.Outref(r); !ok {
				res.missingOutrefs = append(res.missingOutrefs, r)
			}
		}
	}
	for _, in := range tbl.Inrefs() {
		if in.Garbage {
			// Flagged by a completed back trace: no longer a root, so
			// the local trace collects the cycle (Section 4.5).
			continue
		}
		roots = append(roots, root{obj: in.Obj, dist: in.Distance()})
	}

	// Ascending distance; ties broken by object id for determinism.
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].dist != roots[j].dist {
			return roots[i].dist < roots[j].dist
		}
		return roots[i].obj < roots[j].obj
	})

	for _, rt := range roots {
		if !h.Contains(rt.obj) {
			continue
		}
		if _, ok := res.marked.Get(rt.obj); ok {
			continue
		}
		res.marked.Set(rt.obj, rt.dist)
		stack = append(stack[:0], rt.obj)
		for len(stack) > 0 {
			obj := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			res.objectsTraced++
			o, ok := h.Get(obj)
			if !ok {
				continue
			}
			for i := 0; i < o.NumFields(); i++ {
				f := o.Field(i)
				if f.IsZero() {
					continue
				}
				if f.Site == h.Site() {
					if !h.Contains(f.Obj) {
						continue
					}
					if _, seen := res.marked.Get(f.Obj); !seen {
						res.marked.Set(f.Obj, rt.dist)
						stack = append(stack, f.Obj)
					}
					continue
				}
				// Remote reference: first reach sets the outref's
				// distance (Section 3: "its distance is set to one plus
				// that of the inref being traced").
				if _, seen := res.outrefDist[f]; !seen {
					res.outrefDist[f] = refs.AddDist(rt.dist, 1)
					if _, ok := tbl.Outref(f); !ok {
						res.missingOutrefs = append(res.missingOutrefs, f)
					}
				}
			}
		}
	}
	if sc != nil {
		sc.roots = roots
		sc.stack = stack
	}
	return res
}

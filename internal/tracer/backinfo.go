// Package tracer implements a site's local garbage collection: the
// distance-ordered forward trace (Sections 2 and 3 of the paper) and the
// computation of back information — the outsets of suspected inrefs and,
// equivalently, the insets of suspected outrefs (Section 5).
//
// The tracer is a pure computation: Run reads the heap and ioref tables and
// produces a Result; the owning Site decides when to apply it (the paper's
// Section 6.2 double-buffering of back information falls out of this
// split — the Site keeps using the old BackInfo until it commits the new
// one).
package tracer

import (
	"sort"

	"backtrace/internal/ids"
)

// BackInfo is the reachability information between suspected inrefs and
// suspected outrefs computed by a local trace (Section 5): Outsets maps a
// suspected inref (by local object id) to the suspected outrefs locally
// reachable from it; Insets is the inverse view, mapping a suspected outref
// to the suspected inrefs it is locally reachable from.
//
// "Outsets and insets are simply two different representations of
// reachability information from inrefs to outrefs" — both are materialized
// because the transfer barrier consumes outsets (clean all outrefs in
// i.outset) while back traces consume insets (local steps).
//
// All slices are sorted and deduplicated; BackInfo is immutable once built.
type BackInfo struct {
	Outsets map[ids.ObjID][]ids.Ref
	Insets  map[ids.Ref][]ids.ObjID
}

// NewBackInfo builds a BackInfo from an outset map, deriving the inset view.
// The input slices must already be sorted canonical sets (the interner
// guarantees this); they are aliased, not copied.
func NewBackInfo(outsets map[ids.ObjID][]ids.Ref) *BackInfo {
	bi := &BackInfo{
		Outsets: outsets,
		Insets:  make(map[ids.Ref][]ids.ObjID),
	}
	inrefs := make([]ids.ObjID, 0, len(outsets))
	for in := range outsets {
		inrefs = append(inrefs, in)
	}
	sort.Slice(inrefs, func(i, j int) bool { return inrefs[i] < inrefs[j] })
	for _, in := range inrefs {
		for _, o := range outsets[in] {
			bi.Insets[o] = append(bi.Insets[o], in)
		}
	}
	return bi
}

// EmptyBackInfo returns a BackInfo with no entries (a site's state before
// its first local trace).
func EmptyBackInfo() *BackInfo {
	return &BackInfo{
		Outsets: make(map[ids.ObjID][]ids.Ref),
		Insets:  make(map[ids.Ref][]ids.ObjID),
	}
}

// Outset returns the suspected outrefs locally reachable from the given
// suspected inref (nil if the inref has no entry).
func (bi *BackInfo) Outset(inref ids.ObjID) []ids.Ref {
	return bi.Outsets[inref]
}

// Inset returns the suspected inrefs the given suspected outref is locally
// reachable from (nil if the outref has no entry).
func (bi *BackInfo) Inset(outref ids.Ref) []ids.ObjID {
	return bi.Insets[outref]
}

// Entries returns the total number of (inref, outref) reachability pairs —
// the quantity bounded by O(ni·no) in the paper's space analysis.
func (bi *BackInfo) Entries() int {
	n := 0
	for _, s := range bi.Outsets {
		n += len(s)
	}
	return n
}

// --- canonical outset interning (Section 5.2) ---------------------------
//
// "The outset table maps a suspect to an outset id and the outset itself is
// stored separately in a canonical form. Thus, suspected objects that have
// the same outset share storage. ... the results of uniting outsets are
// memoized."

// outsetID indexes an interned canonical outset; 0 is the empty outset.
type outsetID int32

// emptyOutset is the id of the canonical empty outset.
const emptyOutset outsetID = 0

// interner stores canonical (sorted, deduplicated) outsets, shares storage
// between equal outsets, and memoizes unions.
type interner struct {
	sets  [][]ids.Ref         // id -> canonical refs; sets[0] is empty
	byKey map[string]outsetID // canonical key -> id
	memo  map[[2]outsetID]outsetID
	// singles memoizes addRef: (set, ref) -> result. Keyed via a small
	// struct to avoid building canonical keys on the hot path.
	singles map[singleKey]outsetID

	unions   int64 // total union/addRef operations requested
	memoHits int64 // operations answered from a memo table
}

type singleKey struct {
	set outsetID
	ref ids.Ref
}

func newInterner() *interner {
	it := &interner{
		byKey:   make(map[string]outsetID),
		memo:    make(map[[2]outsetID]outsetID),
		singles: make(map[singleKey]outsetID),
	}
	it.sets = append(it.sets, nil) // id 0: empty outset
	it.byKey[""] = emptyOutset
	return it
}

// key builds the canonical map key for a sorted ref slice.
func outsetKey(refs []ids.Ref) string {
	buf := make([]byte, 0, len(refs)*12)
	for _, r := range refs {
		buf = append(buf,
			byte(r.Site>>24), byte(r.Site>>16), byte(r.Site>>8), byte(r.Site),
			byte(r.Obj>>56), byte(r.Obj>>48), byte(r.Obj>>40), byte(r.Obj>>32),
			byte(r.Obj>>24), byte(r.Obj>>16), byte(r.Obj>>8), byte(r.Obj))
	}
	return string(buf)
}

// intern returns the id of the canonical outset equal to refs, which must
// be sorted and deduplicated. The slice is stored (not copied) when new.
func (it *interner) intern(refs []ids.Ref) outsetID {
	if len(refs) == 0 {
		return emptyOutset
	}
	k := outsetKey(refs)
	if id, ok := it.byKey[k]; ok {
		return id
	}
	id := outsetID(len(it.sets))
	it.sets = append(it.sets, refs)
	it.byKey[k] = id
	return id
}

// refs returns the canonical ref slice for an outset id. Callers must not
// modify it.
func (it *interner) refs(id outsetID) []ids.Ref {
	return it.sets[id]
}

// union returns the id of a ∪ b, memoized.
func (it *interner) union(a, b outsetID) outsetID {
	it.unions++
	if a == b || b == emptyOutset {
		it.memoHits++
		return a
	}
	if a == emptyOutset {
		it.memoHits++
		return b
	}
	k := [2]outsetID{a, b}
	if a > b {
		k = [2]outsetID{b, a}
	}
	if id, ok := it.memo[k]; ok {
		it.memoHits++
		return id
	}
	merged := mergeRefs(it.sets[a], it.sets[b])
	id := it.intern(merged)
	it.memo[k] = id
	return id
}

// addRef returns the id of set ∪ {r}, memoized.
func (it *interner) addRef(set outsetID, r ids.Ref) outsetID {
	it.unions++
	sk := singleKey{set: set, ref: r}
	if id, ok := it.singles[sk]; ok {
		it.memoHits++
		return id
	}
	base := it.sets[set]
	idx := sort.Search(len(base), func(i int) bool { return !base[i].Less(r) })
	var id outsetID
	if idx < len(base) && base[idx] == r {
		id = set
	} else {
		merged := make([]ids.Ref, 0, len(base)+1)
		merged = append(merged, base[:idx]...)
		merged = append(merged, r)
		merged = append(merged, base[idx:]...)
		id = it.intern(merged)
	}
	it.singles[sk] = id
	return id
}

// mergeRefs merges two sorted deduplicated ref slices into a new one.
func mergeRefs(a, b []ids.Ref) []ids.Ref {
	out := make([]ids.Ref, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch a[i].Compare(b[j]) {
		case -1:
			out = append(out, a[i])
			i++
		case +1:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

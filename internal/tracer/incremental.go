package tracer

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"backtrace/internal/heap"
	"backtrace/internal/ids"
	"backtrace/internal/refs"
)

// This file implements the incremental local trace: a dirty-set remark that
// reuses the previous trace's marks, outref distances, and back information,
// re-tracing only from what changed.
//
// The incremental path is exact, not approximate. It runs only when every
// change since the previous trace is monotone — edges and objects added,
// roots added, inref distances lowered — and for monotone changes the
// forward mark of Sections 2–3 is a minimum fixpoint: an object's mark is
// the smallest distance over the roots that reach it, and an outref's
// distance is one plus the smallest mark over its holders (saturating).
// Improve-only relaxation from the changed entities therefore converges to
// exactly the result a full trace would compute on the same snapshot. Any
// change that could raise a distance or revoke reachability (field or root
// removal, inref worsening, outref removal) invalidates that argument, and
// the tracer falls back to a full trace — so every committed result, on
// either path, is the paper's trace verbatim and the Section 6 safety story
// is unchanged.
//
// Back information is memoized at the granularity of the whole suspect
// region: the previous BackInfo is reused verbatim unless some relaxation
// or dirty edge touched a suspected entity (old or new distance beyond the
// threshold) or the suspected-inref membership changed — the events that
// can alter some inref's traced cone. Otherwise the Section 5 outset pass
// reruns on the snapshot, costing O(suspect region), not O(heap).

// Incremental carries trace-to-trace state for one site's incremental
// local traces. The zero value is ready to use; the first Run performs a
// full trace. Not safe for concurrent use — the owning site's trace mutex
// already serializes local traces.
type Incremental struct {
	// MaxDirtyRatio is the fallback knob: when the number of changed
	// entities exceeds this fraction of the heap size, an incremental
	// remark is unlikely to beat a plain full trace (which never pays the
	// per-seed bookkeeping), so the tracer runs full. Zero means
	// DefaultMaxDirtyRatio.
	MaxDirtyRatio float64

	// Workers selects the mark parallelism: above one, full-trace
	// fallbacks run the work-stealing RunParallel and remarks relax their
	// seeds on a work-stealing pool over the shard-partitioned mark set.
	// The committed result is identical either way; see parallel.go for
	// the fixpoint argument.
	Workers int

	prevRes *Result
	algo    OutsetAlgorithm

	// Counters for observability (cumulative over the site's lifetime).
	Runs          int64 // total Run calls
	FullTraces    int64 // runs that fell back to a full trace
	Remarks       int64 // runs that took the incremental path
	OutsetReuses  int64 // remarks that reused the previous BackInfo
	SeedsRelaxed  int64 // total dirty seeds processed by remarks
	ObjectsRemark int64 // total objects scanned by remarks
}

// DefaultMaxDirtyRatio is the fallback threshold used when MaxDirtyRatio
// is zero: above a quarter of the heap dirty, run a full trace.
const DefaultMaxDirtyRatio = 0.25

// Reset discards the previous trace's result so the next Run performs a
// full trace. Call it when a computed trace was abandoned before commit
// (its snapshot consumed the deltas but its result was thrown away).
func (inc *Incremental) Reset() {
	inc.prevRes = nil
}

// Run performs a local trace on the snapshot (h, tbl), using the deltas to
// remark incrementally when possible and falling back to a full trace
// otherwise. The result is identical to Run(h, tbl, threshold, algo) either
// way. The previous Run's Result and the maps inside it are reused and must
// no longer be read by the caller.
func (inc *Incremental) Run(h *heap.Heap, tbl *refs.Table, hd *heap.Delta, td *refs.Delta, threshold int, algo OutsetAlgorithm) *Result {
	inc.Runs++
	reason := inc.fallbackReason(h, hd, td, threshold, algo)
	if reason == "" {
		res := inc.remark(h, tbl, hd, td, threshold, algo)
		inc.Remarks++
		inc.prevRes, inc.algo = res, algo
		return res
	}
	inc.FullTraces++
	res := RunParallel(h, tbl, threshold, algo, inc.Workers)
	res.Stats.FallbackReason = reason
	inc.prevRes, inc.algo = res, algo
	return res
}

// fallbackReason decides whether the incremental remark is applicable;
// a non-empty reason means a full trace must run.
func (inc *Incremental) fallbackReason(h *heap.Heap, hd *heap.Delta, td *refs.Delta, threshold int, algo OutsetAlgorithm) string {
	switch {
	case inc.prevRes == nil || hd == nil || td == nil || hd.Full || td.Full:
		return "first-trace"
	case threshold != inc.prevRes.Threshold:
		return "threshold-changed"
	case algo != inc.algo:
		return "algorithm-changed"
	case len(inc.prevRes.Missing) > 0:
		// A missing outref means a protocol invariant already broke; the
		// remark's staleness argument assumes table/heap agreement.
		return "prev-missing"
	case hd.Invalidating() || td.Invalidating():
		return "invalidating-mutation"
	}
	ratio := inc.MaxDirtyRatio
	if ratio == 0 {
		ratio = DefaultMaxDirtyRatio
	}
	if dirty := hd.Size() + td.Size(); float64(dirty) > ratio*float64(h.Len()) {
		return "dirty-ratio"
	}
	return ""
}

// remark performs the improve-only relaxation from the deltas' seeds.
func (inc *Incremental) remark(h *heap.Heap, tbl *refs.Table, hd *heap.Delta, td *refs.Delta, threshold int, algo OutsetAlgorithm) *Result {
	start := time.Now()
	prev := inc.prevRes
	marked := prev.Marked
	outrefDist := prev.OutrefDist

	res := &Result{
		Threshold:  threshold,
		Marked:     marked,
		OutrefDist: outrefDist,
	}
	res.Stats.Incremental = true

	// touched becomes true when any change could have altered a suspected
	// inref's cone: a mark or outref-distance transition with the old or
	// new value beyond the (outref: threshold+1) suspicion boundary, a new
	// edge out of a suspected object, or a suspected-inref membership
	// change. Clean-to-clean transitions cannot appear in any cone — the
	// Section 5 pass never visits clean objects — so they leave the
	// memoized back information valid.
	touched := false

	var queue []ids.ObjID
	seeds := 0

	improve := func(obj ids.ObjID, d int) {
		if !h.Contains(obj) {
			return
		}
		cur, ok := marked.Get(obj)
		if ok && cur <= d {
			return
		}
		if (ok && cur > threshold) || d > threshold {
			touched = true
		}
		marked.Set(obj, d)
		queue = append(queue, obj)
	}
	relaxOut := func(r ids.Ref, d int) {
		cur, ok := outrefDist[r]
		if ok && cur <= d {
			return
		}
		if (ok && cur > threshold+1) || d > threshold+1 {
			touched = true
		}
		outrefDist[r] = d
		if !ok {
			if _, present := tbl.Outref(r); !present {
				res.Missing = append(res.Missing, r)
			}
		}
	}

	// Seed from the deltas.
	for _, obj := range hd.LocalRootsAdded {
		seeds++
		improve(obj, 0)
	}
	for _, r := range hd.RemoteRootsAdded {
		seeds++
		relaxOut(r, 1)
	}
	for _, obj := range td.InrefsImproved {
		seeds++
		in, ok := tbl.Inref(obj)
		if !ok || in.Garbage {
			continue // worsened entries force a full trace before this point
		}
		// Membership change in the suspected-inref set invalidates the
		// memoized outsets even when no cone content changed: the set of
		// entries itself differs.
		_, wasSuspected := prev.Back.Outsets[obj]
		if (in.Distance() > threshold) != wasSuspected {
			touched = true
		}
		improve(obj, in.Distance())
	}
	for _, obj := range hd.FieldsAdded {
		if m, ok := marked.Get(obj); ok {
			seeds++
			if m > threshold {
				touched = true
			}
			queue = append(queue, obj)
		}
	}
	res.Stats.DirtySeeds = seeds

	if inc.Workers > 1 && len(queue) > 0 {
		// Work-stealing relaxation over the shard-partitioned mark set;
		// outrefDist stays a stable base the workers only read, with
		// per-worker minima merged below it afterwards.
		inc.remarkParallel(h, tbl, res, queue, threshold, &touched)
	} else {
		// Improve-only relaxation: rescan each queued object at its
		// current mark. An object can be queued more than once as its mark
		// improves; scans use the latest value, so later pops are cheap
		// re-walks.
		site := h.Site()
		for len(queue) > 0 {
			obj := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			res.Stats.ObjectsTraced++
			m, _ := marked.Get(obj)
			o, ok := h.Get(obj)
			if !ok {
				continue
			}
			for i := 0; i < o.NumFields(); i++ {
				f := o.Field(i)
				if f.IsZero() {
					continue
				}
				if f.Site == site {
					improve(f.Obj, m)
				} else {
					relaxOut(f, refs.AddDist(m, 1))
				}
			}
		}
	}

	// Dead objects under monotone change can only be fresh allocations
	// nothing reached: every previously live object is still reachable
	// (nothing was removed), and the previous trace's dead were swept at
	// its commit.
	for _, obj := range hd.Allocated {
		if _, ok := marked.Get(obj); !ok && h.Contains(obj) {
			res.Dead = append(res.Dead, obj)
		}
	}

	// Untraced and suspected-outref stats are O(outrefs), not O(heap).
	for _, o := range tbl.Outrefs() {
		if _, ok := outrefDist[o.Target]; !ok {
			res.Untraced = append(res.Untraced, o.Target)
		}
	}
	for _, d := range outrefDist {
		if d > threshold+1 {
			res.Stats.SuspectedOutrefs++
		}
	}

	if !touched {
		res.Back = prev.Back
		res.Stats.OutsetsReused = true
		res.Stats.SuspectedInrefs = len(prev.Back.Outsets)
		inc.OutsetReuses++
	} else {
		env := &outsetEnv{h: h, tbl: tbl, mr: &markResult{marked: marked, outrefDist: outrefDist}, threshold: threshold}
		var (
			outsets map[ids.ObjID][]ids.Ref
			ost     outsetStats
		)
		switch algo {
		case AlgoIndependent:
			outsets, ost = outsetsIndependent(env)
		default:
			outsets, ost = outsetsBottomUp(env)
		}
		res.Back = NewBackInfo(outsets)
		res.Stats.OutsetVisits = ost.objectsVisited
		res.Stats.OutsetRetraced = ost.objectsRetraced
		res.Stats.Unions = ost.unions
		res.Stats.MemoHits = ost.memoHits
		res.Stats.SuspectedInrefs = len(outsets)
	}

	sort.Slice(res.Missing, func(i, j int) bool { return res.Missing[i].Less(res.Missing[j]) })
	inc.SeedsRelaxed += int64(seeds)
	inc.ObjectsRemark += res.Stats.ObjectsTraced
	res.Stats.Duration = time.Since(start)
	return res
}

// remarkParallel drains the seed queue with the work-stealing engine. The
// mark set is shared, guarded by one mutex per shard; outref distances are
// accumulated as per-worker minima over the untouched base map and merged
// deterministically afterwards, so the relaxation reaches the same minimum
// fixpoint as the sequential drain.
//
// The touched flag may come out true here where the sequential drain would
// leave it false (a worker can observe an intermediate distance beyond the
// suspicion boundary that the sequential order never materializes), and
// vice versa for transient values that a different interleaving skips
// straight past. Both directions are sound: touched=false certifies that
// no suspected entity's state differs from the previous trace — reuse is
// exact — and touched=true merely recomputes outsets from the final marks,
// which produces identical content. Only Stats and pointer identity can
// differ, and equivalence comparisons are content-based.
func (inc *Incremental) remarkParallel(h *heap.Heap, tbl *refs.Table, res *Result, queue []ids.ObjID, threshold int, touched *bool) {
	marked := res.Marked
	outrefDist := res.OutrefDist
	locks := make([]sync.Mutex, marked.NumShards())
	var touchedA atomic.Bool
	site := h.Site()

	eng := newParEngine(inc.Workers, func(w *parWorker, obj ids.ObjID) {
		w.scanned++
		si := marked.ShardOf(obj)
		locks[si].Lock()
		m, ok := marked.Shard(si)[obj]
		locks[si].Unlock()
		if !ok {
			return
		}
		o, ok := h.Get(obj)
		if !ok {
			return
		}
		for i := 0; i < o.NumFields(); i++ {
			f := o.Field(i)
			if f.IsZero() {
				continue
			}
			if f.Site == site {
				if !h.Contains(f.Obj) {
					continue
				}
				sj := marked.ShardOf(f.Obj)
				locks[sj].Lock()
				cur, ok := marked.Shard(sj)[f.Obj]
				if ok && cur <= m {
					locks[sj].Unlock()
					continue
				}
				if (ok && cur > threshold) || m > threshold {
					touchedA.Store(true)
				}
				marked.Shard(sj)[f.Obj] = m
				locks[sj].Unlock()
				w.push(f.Obj)
				continue
			}
			nd := refs.AddDist(m, 1)
			cur, ok := outrefDist[f]
			if ov, inOv := w.outMin[f]; inOv && (!ok || ov < cur) {
				cur, ok = ov, true
			}
			if ok && cur <= nd {
				continue
			}
			if (ok && cur > threshold+1) || nd > threshold+1 {
				touchedA.Store(true)
			}
			w.outMin[f] = nd
		}
	})
	eng.seed(queue)
	eng.run()

	for _, w := range eng.workers {
		res.Stats.ObjectsTraced += w.scanned
		for r, d := range w.outMin {
			cur, ok := outrefDist[r]
			if ok && cur <= d {
				continue
			}
			outrefDist[r] = d
			if !ok {
				if _, present := tbl.Outref(r); !present {
					res.Missing = append(res.Missing, r)
				}
			}
		}
	}
	if touchedA.Load() {
		*touched = true
	}
	res.Stats.Workers = inc.Workers
	res.Stats.Steals = eng.steals.Load()
}

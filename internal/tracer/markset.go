package tracer

import "backtrace/internal/ids"

// MarkSet is the marked-object table of one local trace, partitioned by the
// same object-id hash as the heap it was traced from: entry for object o
// lives in shard o mod NumShards. The partitioning lets the parallel tracer
// materialize shards concurrently and lets the parallel remark guard each
// shard with its own lock, while reflect.DeepEqual still compares two
// MarkSets by content — the equivalence property tests depend on that, so
// the struct holds no locks or counters of its own.
//
// MarkSet itself is not synchronized: concurrent writers must either work
// on distinct shards or serialize per shard externally.
type MarkSet struct {
	shards []map[ids.ObjID]int
}

// NewMarkSet creates an empty mark set with the given shard count (clamped
// to at least 1). Traces use the heap's shard count so marks and objects
// partition identically.
func NewMarkSet(shards int) *MarkSet {
	if shards < 1 {
		shards = 1
	}
	ms := &MarkSet{shards: make([]map[ids.ObjID]int, shards)}
	for i := range ms.shards {
		ms.shards[i] = make(map[ids.ObjID]int)
	}
	return ms
}

// NumShards returns the shard count.
func (m *MarkSet) NumShards() int { return len(m.shards) }

// ShardOf returns the shard index owning an object id; it matches
// heap.ShardOf for a heap of the same shard count.
func (m *MarkSet) ShardOf(obj ids.ObjID) int {
	return int(uint64(obj) % uint64(len(m.shards)))
}

// Shard returns the raw map of one shard. Callers writing to it must only
// insert objects the shard owns, and must respect the synchronization
// contract above.
func (m *MarkSet) Shard(i int) map[ids.ObjID]int { return m.shards[i] }

// Get returns the mark distance of an object and whether it is marked.
func (m *MarkSet) Get(obj ids.ObjID) (int, bool) {
	d, ok := m.shards[m.ShardOf(obj)][obj]
	return d, ok
}

// Set records an object's mark distance.
func (m *MarkSet) Set(obj ids.ObjID, d int) {
	m.shards[m.ShardOf(obj)][obj] = d
}

// Len returns the number of marked objects.
func (m *MarkSet) Len() int {
	n := 0
	for _, sh := range m.shards {
		n += len(sh)
	}
	return n
}

// Clear removes all marks, keeping the shard maps allocated for reuse.
func (m *MarkSet) Clear() {
	for _, sh := range m.shards {
		clear(sh)
	}
}

package tracer

import "backtrace/internal/ids"

// EqualResults reports whether two trace results describe the same
// collector outcome: identical marks and mark distances, outref distances,
// dead/untraced/missing sets, and back information. Stats are excluded —
// they carry cost and scheduling counters (durations, worker and steal
// counts) that legitimately differ between the sequential, parallel, and
// incremental paths. The comparison is content-based: nil compares equal
// to empty (the paths differ in which they produce for absent sets), and
// mark sets compare equal across different shard partitionings.
func EqualResults(a, b *Result) bool {
	if a == nil || b == nil {
		return a == b
	}
	return equalMarks(a.Marked, b.Marked) &&
		equalRefDists(a.OutrefDist, b.OutrefDist) &&
		equalObjIDs(a.Dead, b.Dead) &&
		equalRefs(a.Untraced, b.Untraced) &&
		equalRefs(a.Missing, b.Missing) &&
		equalBack(a.Back, b.Back)
}

func equalMarks(a, b *MarkSet) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Len() != b.Len() {
		return false
	}
	for _, sh := range a.shards {
		for obj, d := range sh {
			if bd, ok := b.Get(obj); !ok || bd != d {
				return false
			}
		}
	}
	return true
}

func equalRefDists(a, b map[ids.Ref]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func equalObjIDs(a, b []ids.ObjID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalRefs(a, b []ids.Ref) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalBack(a, b *BackInfo) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Outsets) != len(b.Outsets) || len(a.Insets) != len(b.Insets) {
		return false
	}
	for in, refs := range a.Outsets {
		brefs, ok := b.Outsets[in]
		if !ok || !equalRefs(refs, brefs) {
			return false
		}
	}
	for out, objs := range a.Insets {
		bobjs, ok := b.Insets[out]
		if !ok || !equalObjIDs(objs, bobjs) {
			return false
		}
	}
	return true
}

package tracer

import (
	"sort"

	"backtrace/internal/heap"
	"backtrace/internal/ids"
	"backtrace/internal/refs"
)

// outsetEnv bundles what both outset algorithms need to classify graph
// nodes during the computation of back information (Section 5).
type outsetEnv struct {
	h         *heap.Heap
	tbl       *refs.Table
	mr        *markResult
	threshold int
}

// suspectedObj reports whether a local object is suspected: reached by the
// forward trace, but only from roots beyond the suspicion threshold
// ("objects and outrefs traced from [clean inrefs] are said to be clean;
// the remaining are said to be suspected", Section 3). Unmarked objects are
// garbage, not suspected; the traversal skips them because they are about
// to be swept.
func (e *outsetEnv) suspectedObj(obj ids.ObjID) bool {
	d, ok := e.mr.marked.Get(obj)
	return ok && d > e.threshold
}

// suspectedOutref reports whether a remote reference should appear in
// outsets: its outref was reached by the trace and it was reached only
// from suspected roots — equivalently, its freshly computed distance
// exceeds threshold+1 (an outref traced from a clean inref has distance at
// most threshold+1 and is clean, Section 3). Insert-barrier pins and
// transfer-barrier marks are deliberately ignored here: computing an inset
// for a temporarily-clean outref is conservative (a back trace checks
// cleanliness before using the inset), and it keeps the back information
// valid when the pin or barrier mark expires.
func (e *outsetEnv) suspectedOutref(r ids.Ref) bool {
	d, ok := e.mr.outrefDist[r]
	return ok && d > e.threshold+1
}

// suspectedInrefs returns the inrefs for which outsets must be computed:
// distance beyond the threshold and not flagged garbage, ordered by object.
func (e *outsetEnv) suspectedInrefs() []*refs.Inref {
	var out []*refs.Inref
	for _, in := range e.tbl.Inrefs() {
		if in.Garbage {
			continue
		}
		if in.Distance() > e.threshold {
			out = append(out, in)
		}
	}
	return out
}

// outsetStats reports the cost of an outset computation for the Section 5
// complexity comparison.
type outsetStats struct {
	objectsVisited  int64 // object scans including re-scans
	objectsRetraced int64 // scans beyond an object's first (Section 5.1 only)
	unions          int64 // union/addRef operations (Section 5.2 only)
	memoHits        int64 // unions answered by the memo tables
}

// --- Section 5.1: independent tracing from each suspected inref ---------

// outsetsIndependent computes outsets by tracing from each suspected inref
// independently, "ignoring the traces from other suspected inrefs": each
// trace uses its own colour, so objects may be traced multiple times —
// O(ni·(n+e)) in the worst case.
func outsetsIndependent(e *outsetEnv) (map[ids.ObjID][]ids.Ref, outsetStats) {
	var stats outsetStats
	outsets := make(map[ids.ObjID][]ids.Ref)
	everVisited := make(map[ids.ObjID]bool)

	for _, in := range e.suspectedInrefs() {
		visited := make(map[ids.ObjID]bool)
		set := make(map[ids.Ref]struct{})
		var stack []ids.ObjID
		if e.suspectedObj(in.Obj) {
			visited[in.Obj] = true
			stack = append(stack, in.Obj)
		}
		for len(stack) > 0 {
			obj := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stats.objectsVisited++
			if everVisited[obj] {
				stats.objectsRetraced++
			}
			everVisited[obj] = true
			o, ok := e.h.Get(obj)
			if !ok {
				continue
			}
			for i := 0; i < o.NumFields(); i++ {
				z := o.Field(i)
				if z.IsZero() {
					continue
				}
				if z.Site != e.h.Site() {
					if e.suspectedOutref(z) {
						set[z] = struct{}{}
					}
					continue
				}
				if !e.suspectedObj(z.Obj) || visited[z.Obj] {
					continue
				}
				visited[z.Obj] = true
				stack = append(stack, z.Obj)
			}
		}
		outsets[in.Obj] = sortedRefSet(set)
	}
	return outsets, stats
}

func sortedRefSet(set map[ids.Ref]struct{}) []ids.Ref {
	out := make([]ids.Ref, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// --- Section 5.2: single-pass bottom-up computation ----------------------

// The paper's TraceSuspected combines depth-first traversal, Tarjan's
// strongly-connected-components algorithm, and bottom-up outset
// accumulation: every object is traced exactly once, objects in one SCC
// share one outset, and outsets are interned in canonical form with unions
// memoized so the expected cost is near-linear.
//
// The implementation below is an iterative version of the paper's recursive
// pseudocode (explicit frame stack), so arbitrarily deep suspect chains
// cannot exhaust the goroutine stack.

const leaderInfinity = int(^uint(0) >> 1) // "Leader[z] := infinity"

type buFrame struct {
	obj   ids.ObjID
	next  int // next field index to examine
	child ids.ObjID
}

type bottomUpState struct {
	env     *outsetEnv
	it      *interner
	mark    map[ids.ObjID]int // visitation order, from 1 ("Mark[x] := Counter")
	leader  map[ids.ObjID]int
	outset  map[ids.ObjID]outsetID
	scc     []ids.ObjID // auxiliary stack of the SCC algorithm
	counter int
	visits  int64
}

// outsetsBottomUp computes outsets with the Section 5.2 algorithm.
func outsetsBottomUp(e *outsetEnv) (map[ids.ObjID][]ids.Ref, outsetStats) {
	st := &bottomUpState{
		env:    e,
		it:     newInterner(),
		mark:   make(map[ids.ObjID]int),
		leader: make(map[ids.ObjID]int),
		outset: make(map[ids.ObjID]outsetID),
	}
	suspects := e.suspectedInrefs()
	for _, in := range suspects {
		if e.suspectedObj(in.Obj) && st.mark[in.Obj] == 0 {
			st.trace(in.Obj)
		}
	}
	outsets := make(map[ids.ObjID][]ids.Ref, len(suspects))
	for _, in := range suspects {
		if e.suspectedObj(in.Obj) {
			outsets[in.Obj] = st.it.refs(st.outset[in.Obj])
		} else {
			outsets[in.Obj] = nil
		}
	}
	return outsets, outsetStats{
		objectsVisited: st.visits,
		unions:         st.it.unions,
		memoHits:       st.it.memoHits,
	}
}

// trace runs the combined DFS/SCC/outset pass from one suspected object.
func (st *bottomUpState) trace(start ids.ObjID) {
	e := st.env
	st.enter(start)
	frames := []buFrame{{obj: start}}

	for len(frames) > 0 {
		f := &frames[len(frames)-1]
		x := f.obj

		// A child frame just finished: fold its outset and leader into x
		// ("Outset[x] := Outset[x] ∪ Outset[z]; Leader[x] := min(...)").
		if f.child != ids.NoObj {
			st.fold(x, f.child)
			f.child = ids.NoObj
		}

		descended := false
		if o, ok := e.h.Get(x); ok {
			for f.next < o.NumFields() {
				z := o.Field(f.next)
				f.next++
				if z.IsZero() {
					continue
				}
				if z.Site != e.h.Site() {
					// "if z is remote add z to Outset[x]" — suspected
					// outrefs only.
					if e.suspectedOutref(z) {
						st.outset[x] = st.it.addRef(st.outset[x], z)
					}
					continue
				}
				if !e.suspectedObj(z.Obj) {
					continue // "if z is clean continue loop" (or dead)
				}
				if st.mark[z.Obj] != 0 {
					// Already traced (possibly still on the SCC stack):
					// fold immediately, no recursion.
					st.fold(x, z.Obj)
					continue
				}
				// Descend.
				st.enter(z.Obj)
				f.child = z.Obj
				frames = append(frames, buFrame{obj: z.Obj})
				descended = true
				break
			}
		}
		if descended {
			continue
		}

		// x is complete. If it is its component's leader, pop the
		// component and share x's outset with every member.
		if st.leader[x] == st.mark[x] {
			for {
				z := st.scc[len(st.scc)-1]
				st.scc = st.scc[:len(st.scc)-1]
				st.outset[z] = st.outset[x]
				st.leader[z] = leaderInfinity
				if z == x {
					break
				}
			}
		}
		frames = frames[:len(frames)-1]
	}
}

// enter begins tracing object x: assign its visitation mark, push it on the
// SCC stack, and initialize its outset and leader.
func (st *bottomUpState) enter(x ids.ObjID) {
	st.counter++
	st.visits++
	st.mark[x] = st.counter
	st.leader[x] = st.counter
	st.outset[x] = emptyOutset
	st.scc = append(st.scc, x)
}

// fold merges a traced child's outset and leader into x.
func (st *bottomUpState) fold(x, z ids.ObjID) {
	st.outset[x] = st.it.union(st.outset[x], st.outset[z])
	if lz := st.leader[z]; lz < st.leader[x] {
		st.leader[x] = lz
	}
}

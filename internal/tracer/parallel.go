package tracer

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"backtrace/internal/heap"
	"backtrace/internal/ids"
	"backtrace/internal/refs"
)

// This file implements the parallel local trace: a work-stealing mark whose
// result is bit-identical to the sequential tracer's.
//
// Why the results agree: the sequential forward mark of Sections 2–3
// processes roots in ascending distance order with single marking, so an
// object's mark is the MINIMUM root distance over the roots that reach it,
// and an outref's distance is one plus the minimum final mark over the
// objects holding it (folded with the distance-1 application-root seeds).
// Both are minimum fixpoints of improve-only relaxation, and a fixpoint
// does not care about evaluation order: the parallel mark runs the same
// relaxation with a compare-and-swap minimum per object and re-queues an
// object whenever its mark improves, so every object is eventually scanned
// at its final mark and every outref sees one-plus-that. The merge then
// sorts everything the sequential path sorts (dead objects, untraced and
// missing outrefs) and partitions marks by the same heap-shard hash, so
// maps and slices compare DeepEqual against a sequential run on the same
// snapshot. Scheduling-dependent quantities (scan counts, steals) live only
// in Stats, which equivalence deliberately ignores.
//
// The mark table is a dense []int64 indexed by object id (the heap's
// allocation high-water mark bounds it), storing distance+1 so the zero
// value means "unmarked" and no sentinel fill pass is needed. Workers CAS
// ids without checking heap membership first — marking a deleted or absent
// id is harmless, because scans look the object up (and skip it) and
// materialization walks heap shards, never the dense array, so phantom
// marks can't leak into the result.

// parChunk is the granularity of work stealing: workers keep a private
// LIFO stack for locality and expose surplus in chunks of this size.
const parChunk = 256

// parEngine runs one relaxation to fixpoint over a set of workers.
type parEngine struct {
	workers []*parWorker
	// pending counts chunks published to deques and not yet fully
	// processed. A worker exits only when its private stack is empty, it
	// found nothing to pop or steal, and pending is zero; remaining work
	// then necessarily sits in some still-running worker's private stack,
	// and that worker cannot exit before draining it.
	pending atomic.Int64
	steals  atomic.Int64
	// scan processes one work item; it may push follow-up work on w.
	scan func(w *parWorker, obj ids.ObjID)
}

// parWorker is one mark worker: a private stack, a deque of stealable
// chunks, and per-worker accumulators merged deterministically afterwards.
type parWorker struct {
	eng   *parEngine
	id    int
	local []ids.ObjID

	mu     sync.Mutex
	chunks [][]ids.ObjID

	// outMin is the worker's running minimum of outref distances; the
	// merge folds all workers' minima together.
	outMin  map[ids.Ref]int
	scanned int64
}

func newParEngine(workers int, scan func(w *parWorker, obj ids.ObjID)) *parEngine {
	e := &parEngine{workers: make([]*parWorker, workers), scan: scan}
	for i := range e.workers {
		e.workers[i] = &parWorker{eng: e, id: i, outMin: make(map[ids.Ref]int)}
	}
	return e
}

// seed distributes initial work items round-robin across workers' private
// stacks. Must be called before run.
func (e *parEngine) seed(objs []ids.ObjID) {
	for i, obj := range objs {
		w := e.workers[i%len(e.workers)]
		w.local = append(w.local, obj)
	}
}

// run executes the relaxation to fixpoint and blocks until all workers
// exit.
func (e *parEngine) run() {
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *parWorker) {
			defer wg.Done()
			w.run()
		}(w)
	}
	wg.Wait()
}

// push adds a work item to the worker's private stack, publishing a
// stealable chunk when the stack grows past four chunks' worth.
func (w *parWorker) push(obj ids.ObjID) {
	w.local = append(w.local, obj)
	if len(w.local) >= 4*parChunk {
		n := len(w.local)
		c := make([]ids.ObjID, parChunk)
		copy(c, w.local[n-parChunk:])
		w.local = w.local[:n-parChunk]
		w.eng.pending.Add(1)
		w.mu.Lock()
		w.chunks = append(w.chunks, c)
		w.mu.Unlock()
	}
}

func (w *parWorker) popOwn() []ids.ObjID {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n := len(w.chunks); n > 0 {
		c := w.chunks[n-1]
		w.chunks = w.chunks[:n-1]
		return c
	}
	return nil
}

// stealFrom takes the victim's oldest chunk (FIFO end — the opposite end
// from the victim's own pops, minimizing contention and stealing the
// largest subtrees first).
func (w *parWorker) stealFrom(v *parWorker) []ids.ObjID {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.chunks) > 0 {
		c := v.chunks[0]
		v.chunks = v.chunks[1:]
		return c
	}
	return nil
}

func (w *parWorker) run() {
	e := w.eng
	for {
		if n := len(w.local); n > 0 {
			obj := w.local[n-1]
			w.local = w.local[:n-1]
			e.scan(w, obj)
			continue
		}
		if c := w.popOwn(); c != nil {
			w.processChunk(c)
			continue
		}
		if c := w.stealAny(); c != nil {
			e.steals.Add(1)
			w.processChunk(c)
			continue
		}
		if e.pending.Load() == 0 {
			return
		}
		runtime.Gosched()
	}
}

func (w *parWorker) stealAny() []ids.ObjID {
	n := len(w.eng.workers)
	for i := 1; i < n; i++ {
		if c := w.stealFrom(w.eng.workers[(w.id+i)%n]); c != nil {
			return c
		}
	}
	return nil
}

func (w *parWorker) processChunk(c []ids.ObjID) {
	for _, obj := range c {
		w.eng.scan(w, obj)
	}
	w.eng.pending.Add(-1)
}

// casMin lowers *addr to v if v improves on the current value (0 means
// unset). It reports whether it improved — the caller must then re-queue
// the object so it is rescanned at the new, lower mark.
func casMin(addr *int64, v int64) bool {
	for {
		old := atomic.LoadInt64(addr)
		if old != 0 && old <= v {
			return false
		}
		if atomic.CompareAndSwapInt64(addr, old, v) {
			return true
		}
	}
}

// RunParallel performs the same local trace as Run with the given number of
// mark workers, producing a bit-identical Result (Stats excepted). Workers
// of one or less delegate to the sequential path. Like Run it does not
// modify the heap or tables; unlike Run it requires that nothing else
// mutates them while it executes (the site guarantees this by tracing
// snapshots).
func RunParallel(h *heap.Heap, tbl *refs.Table, threshold int, algo OutsetAlgorithm, workers int) *Result {
	if workers <= 1 {
		return Run(h, tbl, threshold, algo)
	}
	start := time.Now()
	mr, steals := parallelMark(h, tbl, workers)

	env := &outsetEnv{h: h, tbl: tbl, mr: mr, threshold: threshold}
	var (
		outsets map[ids.ObjID][]ids.Ref
		ost     outsetStats
	)
	switch algo {
	case AlgoIndependent:
		outsets, ost = outsetsIndependent(env)
	default:
		outsets, ost = outsetsBottomUp(env)
	}

	res := &Result{
		Threshold:  threshold,
		Marked:     mr.marked,
		OutrefDist: mr.outrefDist,
		Missing:    mr.missingOutrefs,
		Back:       NewBackInfo(outsets),
		Stats: Stats{
			ObjectsTraced:   mr.objectsTraced,
			OutsetVisits:    ost.objectsVisited,
			OutsetRetraced:  ost.objectsRetraced,
			Unions:          ost.unions,
			MemoHits:        ost.memoHits,
			SuspectedInrefs: len(outsets),
			Workers:         workers,
			Steals:          steals,
		},
	}

	res.Dead = parallelDead(h, mr.marked)
	for _, o := range tbl.Outrefs() {
		if _, ok := mr.outrefDist[o.Target]; !ok {
			res.Untraced = append(res.Untraced, o.Target)
		}
	}
	for _, d := range mr.outrefDist {
		if d > threshold+1 {
			res.Stats.SuspectedOutrefs++
		}
	}
	res.Stats.Duration = time.Since(start)
	return res
}

// parallelMark runs the work-stealing relaxation and returns the merged
// mark result plus the steal count.
func parallelMark(h *heap.Heap, tbl *refs.Table, workers int) (*markResult, int64) {
	marks := make([]int64, uint64(h.NextID())+1)
	site := h.Site()

	// Collect roots and seed the dense mark table; duplicate seeds of one
	// object are fine (rescans are idempotent).
	var seeds []ids.ObjID
	seedMark := func(obj ids.ObjID, dist int) {
		if uint64(obj) >= uint64(len(marks)) {
			return
		}
		if casMin(&marks[obj], int64(dist)+1) {
			seeds = append(seeds, obj)
		}
	}
	for _, obj := range h.PersistentRoots() {
		seedMark(obj, 0)
	}
	// Remote application roots seed outref distances at 1, exactly like
	// the sequential path; they participate in the final minimum merge.
	appSeeds := make(map[ids.Ref]int)
	for _, r := range h.AppRoots() {
		if r.Site == site {
			seedMark(r.Obj, 0)
		} else {
			appSeeds[r] = 1
		}
	}
	for _, in := range tbl.Inrefs() {
		if in.Garbage {
			continue
		}
		seedMark(in.Obj, in.Distance())
	}

	eng := newParEngine(workers, func(w *parWorker, obj ids.ObjID) {
		w.scanned++
		enc := atomic.LoadInt64(&marks[obj])
		o, ok := h.Get(obj)
		if !ok {
			return // phantom mark: id not (or no longer) in the heap
		}
		d := int(enc - 1)
		for i := 0; i < o.NumFields(); i++ {
			f := o.Field(i)
			if f.IsZero() {
				continue
			}
			if f.Site == site {
				if uint64(f.Obj) >= uint64(len(marks)) {
					continue
				}
				if casMin(&marks[f.Obj], enc) {
					w.push(f.Obj)
				}
				continue
			}
			nd := refs.AddDist(d, 1)
			if cur, ok := w.outMin[f]; !ok || nd < cur {
				w.outMin[f] = nd
			}
		}
	})
	eng.seed(seeds)
	eng.run()

	res := &markResult{outrefDist: make(map[ids.Ref]int)}
	for r, d := range appSeeds {
		res.outrefDist[r] = d
	}
	for _, w := range eng.workers {
		res.objectsTraced += w.scanned
		for r, d := range w.outMin {
			if cur, ok := res.outrefDist[r]; !ok || d < cur {
				res.outrefDist[r] = d
			}
		}
	}
	for r := range res.outrefDist {
		if _, ok := tbl.Outref(r); !ok {
			res.missingOutrefs = append(res.missingOutrefs, r)
		}
	}
	sort.Slice(res.missingOutrefs, func(i, j int) bool {
		return res.missingOutrefs[i].Less(res.missingOutrefs[j])
	})

	// Materialize per-shard mark maps concurrently from the dense array;
	// only objects actually in the heap are consulted, which filters the
	// phantom marks.
	res.marked = NewMarkSet(h.NumShards())
	var wg sync.WaitGroup
	for i := 0; i < h.NumShards(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Pre-size to the shard's population: marks are the common case,
			// and a too-large hint only wastes buckets, never correctness
			// (map capacity is invisible to DeepEqual).
			m := make(map[ids.ObjID]int, h.ShardLen(i))
			res.marked.shards[i] = m
			h.EachObjectInShard(i, func(id ids.ObjID, _ *heap.Object) {
				if enc := atomic.LoadInt64(&marks[id]); enc != 0 {
					m[id] = int(enc - 1)
				}
			})
		}(i)
	}
	wg.Wait()
	return res, eng.steals.Load()
}

// parallelDead collects the unmarked heap objects: per-shard collection and
// sort on one goroutine per shard, then a k-way merge into the globally
// ascending order the sequential path produces.
func parallelDead(h *heap.Heap, ms *MarkSet) []ids.ObjID {
	parts := make([][]ids.ObjID, h.NumShards())
	var wg sync.WaitGroup
	for i := 0; i < h.NumShards(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := ms.Shard(i)
			h.EachObjectInShard(i, func(id ids.ObjID, _ *heap.Object) {
				if _, ok := m[id]; !ok {
					parts[i] = append(parts[i], id)
				}
			})
			sort.Slice(parts[i], func(a, b int) bool { return parts[i][a] < parts[i][b] })
		}(i)
	}
	wg.Wait()

	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	dead := make([]ids.ObjID, 0, total)
	heads := make([]int, len(parts))
	for len(dead) < total {
		best := -1
		for i, p := range parts {
			if heads[i] >= len(p) {
				continue
			}
			if best < 0 || p[heads[i]] < parts[best][heads[best]] {
				best = i
			}
		}
		dead = append(dead, parts[best][heads[best]])
		heads[best]++
	}
	return dead
}

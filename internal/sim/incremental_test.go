package sim

import (
	"os"
	"testing"
)

// incrementalCorpusFile is the checked-in witness schedule for incremental
// tracing: a clean run, generated with Config.Incremental, in which an
// invalidating mutation (the write barrier observing an unlink or a dropped
// variable) lands while a back trace is active, and later local traces both
// fall back and remark.
const incrementalCorpusFile = "testdata/schedules/incremental-invalidation-during-trace.json"

// driveIncremental replays a schedule step by step, reporting whether any
// invalidating mutation (unlink or variable drop — the events whose deltas
// force a full-trace fallback) applied while a back trace held active
// frames somewhere. The returned Result carries the final counters.
func driveIncremental(cfg Config, events []Event) (overlap bool, res *Result) {
	cfg = cfg.withDefaults()
	w := newWorld(cfg)
	defer w.close()
	r := newRunner(w)
	for _, src := range events {
		ev := src
		framesBefore := 0
		if ev.Kind == EvUnlink || ev.Kind == EvVarDrop {
			for _, s := range w.liveSites() {
				framesBefore += w.cluster.Site(s).ActiveFrames()
			}
		}
		if !r.apply(&ev) {
			r.res.Skipped++
			continue
		}
		if (ev.Kind == EvUnlink || ev.Kind == EvVarDrop) && framesBefore > 0 {
			overlap = true
		}
		r.res.Events = append(r.res.Events, ev)
		if viol := r.postEvent(ev); len(viol) > 0 {
			r.res.SafetyViolations = viol
			r.res.ViolationStep = len(r.res.Events) - 1
			break
		}
	}
	r.finish()
	return overlap, r.res
}

// TestIncrementalExploreClean sweeps seeds with incremental tracing enabled,
// across the C14 fault mixes: both oracles must stay silent on every seed,
// and the sweep as a whole must actually exercise the remark path (the
// whole point of running the checker in this mode).
func TestIncrementalExploreClean(t *testing.T) {
	mixes := []struct {
		name   string
		faults string
		seeds  int
	}{
		{"default", "", 15},
		{"crash-restart", "crash@150:2,restart@300:2", 5},
		{"partition-heal", "partition@150:1-3,heal@300:1-3", 5},
		{"drop", "drop@100:8", 5},
		{"mixed", "crash@120:2,partition@160:1-3,restart@260:2,heal@320:1-3,drop@200:4", 5},
	}
	var remarks, fallbacks int64
	for _, mix := range mixes {
		mix := mix
		t.Run(mix.name, func(t *testing.T) {
			cfg := Config{Seed: 1, Incremental: true, Faults: mix.faults}
			report, err := Explore(cfg, mix.seeds, func(seed int64, res *Result) {
				remarks += res.Counters["localtrace.incremental.remarks"]
				fallbacks += res.Counters["localtrace.incremental.fallbacks"]
			})
			if err != nil {
				t.Fatal(err)
			}
			if report.Failures != 0 {
				t.Fatalf("%d/%d seeds failed (first: %v)", report.Failures, report.Seeds,
					report.FirstFailure.Violations())
			}
			if report.DistinctDigests != report.Seeds {
				t.Fatalf("only %d distinct interleavings over %d seeds", report.DistinctDigests, report.Seeds)
			}
		})
	}
	if remarks == 0 {
		t.Fatal("no run took the incremental remark path")
	}
	if fallbacks == 0 {
		t.Fatal("no run exercised the full-trace fallback")
	}
	t.Logf("sweep totals: %d remarks, %d fallbacks", remarks, fallbacks)
}

// TestIncrementalReplayDeterminism: an incremental-mode run must replay to
// the identical digest — the remark's trace-to-trace state is a pure
// function of the event sequence.
func TestIncrementalReplayDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, Incremental: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("seed run failed: %v", res.Violations())
	}
	again := Replay(res.Config, res.Events)
	if again.Digest != res.Digest {
		t.Fatalf("incremental replay diverged:\n  %s\n  %s", res.Digest, again.Digest)
	}
}

// TestIncrementalCorpusWitness re-drives the checked-in incremental corpus
// schedule and asserts it still exercises what it is in the corpus for: a
// write-barrier invalidation landing during an active back trace, followed
// by both fallback and remark traces, with both oracles silent.
func TestIncrementalCorpusWitness(t *testing.T) {
	sched, err := ReadScheduleFile(incrementalCorpusFile)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Config.Incremental {
		t.Fatal("corpus schedule does not enable incremental tracing")
	}
	overlap, res := driveIncremental(sched.Config, sched.Events)
	if res.Failed() {
		t.Fatalf("corpus schedule failed: %v", res.Violations())
	}
	if res.Skipped != 0 {
		t.Fatalf("corpus schedule skipped %d events", res.Skipped)
	}
	if !overlap {
		t.Fatal("no invalidating mutation applied while a back trace was active")
	}
	if res.Counters["localtrace.incremental.remarks"] == 0 {
		t.Fatal("schedule ran no incremental remarks")
	}
	if res.Counters["localtrace.incremental.fallbacks"] == 0 {
		t.Fatal("schedule ran no full-trace fallbacks")
	}
}

// TestGenerateIncrementalCorpus regenerates the incremental corpus schedule.
// Skipped unless INCR_CORPUS_OUT names the output path; it sweeps seeds
// until one produces a clean incremental run whose schedule overlaps an
// invalidating mutation with an active back trace and exercises both the
// remark and the fallback path.
func TestGenerateIncrementalCorpus(t *testing.T) {
	out := os.Getenv("INCR_CORPUS_OUT")
	if out == "" {
		t.Skip("set INCR_CORPUS_OUT to regenerate the incremental corpus schedule")
	}
	for seed := int64(1); seed <= 500; seed++ {
		cfg := Config{Seed: seed, Incremental: true}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Fatalf("seed %d tripped an oracle: %v", seed, res.Violations())
		}
		overlap, rres := driveIncremental(res.Config, res.Events)
		if !overlap || rres.Skipped != 0 || rres.Failed() {
			continue
		}
		if rres.Counters["localtrace.incremental.remarks"] < 3 ||
			rres.Counters["localtrace.incremental.fallbacks"] < 2 ||
			rres.Counters["backtrace.started"] < 1 {
			continue
		}
		s := Schedule{Config: res.Config, Expect: ExpectClean, Events: res.Events}
		if err := s.WriteFile(out); err != nil {
			t.Fatal(err)
		}
		t.Logf("seed %d written to %s (%d events, %d remarks, %d fallbacks)",
			seed, out, len(res.Events),
			rres.Counters["localtrace.incremental.remarks"],
			rres.Counters["localtrace.incremental.fallbacks"])
		return
	}
	t.Fatal("no seed satisfied the corpus criteria")
}

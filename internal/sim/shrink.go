package sim

// Shrink minimizes a failing event sequence with delta debugging (ddmin):
// it repeatedly replays subsequences and keeps the smallest one that still
// trips the same oracle class as the original. The result is 1-minimal —
// removing any single remaining chunk of the final granularity makes the
// failure vanish — and, being a plain event list, writes straight into a
// replayable schedule file.
//
// Replay skips events whose preconditions no longer hold, so arbitrary
// subsequences stay legal: dropping an alloc simply voids the later events
// that named its object.
func Shrink(cfg Config, events []Event) []Event {
	orig := Replay(cfg, events)
	var fails func([]Event) bool
	switch {
	case len(orig.SafetyViolations) > 0:
		// Shrink against safety specifically: tiny subsequences could fail
		// completeness for unrelated reasons and hijack the search.
		fails = func(sub []Event) bool {
			return len(Replay(cfg, sub).SafetyViolations) > 0
		}
	case orig.Failed():
		fails = func(sub []Event) bool { return Replay(cfg, sub).Failed() }
	default:
		// Not reproducible from the recorded events; nothing to shrink.
		return events
	}
	// Iterate to a fixpoint: ddmin leaves a 1-minimal subsequence of the
	// input, but replaying it may still skip events (their preconditions
	// vanished with earlier removals). The applied subset is an equivalent,
	// shorter schedule — minimize again from there until nothing shrinks.
	for {
		events = ddmin(events, fails)
		applied := Replay(cfg, events)
		if applied.Skipped == 0 || len(applied.Events) >= len(events) || !fails(applied.Events) {
			return events
		}
		events = applied.Events
	}
}

// ddmin is the classic Zeller/Hildebrandt delta-debugging minimization.
func ddmin(events []Event, fails func([]Event) bool) []Event {
	n := 2
	for len(events) >= 2 {
		chunk := len(events) / n
		reduced := false
		// Try each complement (the sequence minus one chunk).
		for i := 0; i < n; i++ {
			lo := i * chunk
			hi := lo + chunk
			if i == n-1 {
				hi = len(events)
			}
			complement := make([]Event, 0, len(events)-(hi-lo))
			complement = append(complement, events[:lo]...)
			complement = append(complement, events[hi:]...)
			if len(complement) > 0 && fails(complement) {
				events = complement
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if n >= len(events) {
			break
		}
		n = min(n*2, len(events))
	}
	return events
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package sim

import (
	"bytes"
	"fmt"
	"time"

	"backtrace/internal/clock"
	"backtrace/internal/cluster"
	"backtrace/internal/event"
	"backtrace/internal/ids"
	"backtrace/internal/msg"
	"backtrace/internal/obs"
	"backtrace/internal/site"
	"backtrace/internal/wire"
)

// Config parameterizes one simulated world. The zero value is usable;
// withDefaults fills it in. The world build is a pure function of Config —
// the seed drives only the scheduler's choices — so a schedule file's config
// block reconstructs the exact same initial state on replay.
type Config struct {
	// Sites is the number of sites (minimum 2).
	Sites int `json:"sites"`
	// Seed drives the generating scheduler's choices. Replay ignores it.
	Seed int64 `json:"seed"`
	// Steps bounds the generated event count per run.
	Steps int `json:"steps"`
	// Threshold is the suspicion threshold T; BackThreshold is T2.
	Threshold     int `json:"threshold"`
	BackThreshold int `json:"back_threshold"`
	// ChainLen is the length of the planted live cross-site chain. Every
	// hop crosses sites, so distance estimates along it climb past the
	// thresholds and the collector back-traces live suspects — the state
	// the Section 6 barriers exist to protect.
	ChainLen int `json:"chain_len"`
	// Rings is the number of planted garbage cycles, each spanning every
	// site. The completeness oracle requires them all collected by the end
	// of the run.
	Rings int `json:"rings"`
	// SkipTransferBarrier disables the Section 6.1.1 transfer barrier in
	// every site — the injected regression the model checker must catch.
	SkipTransferBarrier bool `json:"skip_transfer_barrier,omitempty"`
	// Incremental enables incremental local tracing on every site, so the
	// model checker exercises the dirty-set remark and its write-barrier
	// invalidation against the same safety/completeness oracles.
	Incremental bool `json:"incremental,omitempty"`
	// Shards requests a minimum heap/ioref-table shard count per site;
	// TraceWorkers runs local traces on a work-stealing parallel marker.
	// Both are result-invariant (parallel traces are bit-identical to
	// sequential ones), so the model checker can exercise the sharded
	// snapshot and parallel mark paths under the same deterministic
	// schedules and oracles.
	Shards       int `json:"shards,omitempty"`
	TraceWorkers int `json:"trace_workers,omitempty"`
	// Codec names a wire codec ("binary") that every message
	// round-trips through at the network boundary, so the model checker
	// exercises the serialization path under its schedules and oracles.
	// The round trip is a pure function of the message, preserving
	// determinism. Empty disables it (in-memory handoff, the fast path).
	Codec string `json:"codec,omitempty"`
	// Batch coalesces the messages each site emits within one protocol
	// step into Batch wrappers (site-level piggybacking) — the
	// deterministic batching path under the stepped network. The oracles
	// unwrap the batches, so logical message accounting is unchanged.
	Batch bool `json:"batch,omitempty"`
	// Faults is the fault-schedule DSL (see faults.go); generation only.
	Faults string `json:"faults,omitempty"`
	// MaxInflightTraces caps concurrent back traces per site; 0 means
	// unlimited (the legacy trigger path). The scheduler's deferral and
	// admission decisions are deterministic, so schedules replay exactly.
	MaxInflightTraces int `json:"max_inflight_traces,omitempty"`
	// TraceBatch groups up to this many overlapping suspects into one
	// multi-suspect back trace; 0 or 1 keeps single-suspect traces.
	TraceBatch int `json:"trace_batch,omitempty"`
	// MemoizeLive turns on generation-stamped Live-verdict memoization, so
	// the model checker exercises the memo short-circuit and its
	// commit-generation invalidation against the safety oracle.
	MemoizeLive bool `json:"memoize_live,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.Sites < 2 {
		c.Sites = 3
	}
	if c.Steps <= 0 {
		c.Steps = 600
	}
	if c.Threshold <= 0 {
		c.Threshold = 2
	}
	if c.BackThreshold <= 0 {
		c.BackThreshold = c.Threshold + 2
	}
	if c.ChainLen <= 0 {
		c.ChainLen = c.Sites + c.BackThreshold + 1
	}
	if c.Rings < 0 {
		c.Rings = 0
	} else if c.Rings == 0 {
		c.Rings = 2
	}
	return c
}

// codec resolves the configured codec name. An unknown name is a harness
// misconfiguration (the CLI validates its flag), so it panics rather than
// silently running a different world than the config block claims.
func (c Config) codec() wire.Codec {
	if c.Codec == "" {
		return nil
	}
	codec, err := wire.ByName(c.Codec)
	if err != nil {
		panic(fmt.Sprintf("sim: config: %v", err))
	}
	return codec
}

// quantum is how far virtual time advances per scheduler event.
const quantum = 2 * time.Millisecond

// Back-trace timeouts in virtual time. They are far longer than
// Steps×quantum, so they fire only when the drain phase advances the clock
// deliberately — i.e. timeouts rescue crashed-participant traces but never
// interfere with healthy runs.
const (
	simCallTimeout   = 30 * time.Second
	simReportTimeout = 60 * time.Second
)

// world is the mutable state of one simulation run: the cluster under test
// plus the bookkeeping the scheduler and the oracles need (agent variables,
// planted structures, crash checkpoints, fault state).
type world struct {
	cfg     Config
	clk     *clock.Virtual
	cluster *cluster.Cluster
	spans   *recorder

	// roots is each site's persistent root object.
	roots map[ids.SiteID]ids.Ref
	// vars is each site agent's variable multiset: references the agent
	// legally holds (each entry backed by one heap app-root count). Only
	// references in vars∪{root} may be operands of mutator events — the
	// model's stand-in for "you cannot name an object you never reached".
	vars map[ids.SiteID][]ids.Ref
	// chain and rings record the planted structures for the oracles.
	chain []ids.Ref
	rings []ids.Ref

	// begun marks sites with a computed-but-uncommitted local trace.
	begun map[ids.SiteID]bool
	// crashed sites and their crash-time durable images.
	crashed     map[ids.SiteID]bool
	checkpoints map[ids.SiteID][]byte
	// crashLost names objects destroyed by a crash: present in the dying
	// site's heap but absent from its durable checkpoint. References to
	// them dangle forever, and the safety oracle must not read that as an
	// unsafe collection — the crash, not the collector, took them.
	crashLost map[ids.Ref]struct{}
	// partitioned tracks cut links (for heal-all at drain).
	partitioned map[[2]ids.SiteID]bool
	// lossy records whether any drop/dup/crash/partition happened; it
	// scopes the completeness oracle (the paper assumes reliable links, so
	// unlimited-loss runs only promise planted-cycle collection).
	lossy bool
}

// recorder implements obs.Observer, collecting every span and typed event
// emitted anywhere in the cluster in emission order. The simulation is
// single-threaded, so the order — and, under the virtual clock, every
// timestamp — is deterministic; the digest hashes the serialized spans, and
// tests assert against the typed event stream (trace verdicts, collections).
type recorder struct {
	spans  []obs.Span
	events []event.Event
}

func (r *recorder) OnEvent(e event.Event) { r.events = append(r.events, e) }
func (r *recorder) OnSpan(sp obs.Span)    { r.spans = append(r.spans, sp) }

// newWorld builds the deterministic initial state:
//
//   - one persistent root per site;
//   - a live chain hanging off site 1's root whose every hop crosses sites,
//     long enough that its distance estimates exceed both thresholds —
//     suspected yet live, the state the Section 6 barriers protect (no
//     variables hold chain objects: an application root would anchor the
//     distance estimate at zero and end the suspicion);
//   - per-site bait containers: site B's agent holds a variable on a local
//     object whose only field points at a deep chain object owned elsewhere.
//     Reading the bait is the one legal way an agent acquires a reference
//     to a suspect, which it can then transfer while unlinks sever the old
//     paths — the Section 6.1 races the barriers exist to survive. (The
//     bait registers B as a source with an unknown distance, so it does not
//     lower the target's estimate until B commits a trace while the bait
//     edge or a variable still supports it.)
//   - Config.Rings garbage cycles spanning every site (the planted cycles
//     the completeness oracle tracks).
func newWorld(cfg Config) *world {
	cfg = cfg.withDefaults()
	w := &world{
		cfg:         cfg,
		clk:         clock.NewVirtual(time.Time{}),
		spans:       &recorder{},
		roots:       make(map[ids.SiteID]ids.Ref),
		vars:        make(map[ids.SiteID][]ids.Ref),
		begun:       make(map[ids.SiteID]bool),
		crashed:     make(map[ids.SiteID]bool),
		checkpoints: make(map[ids.SiteID][]byte),
		crashLost:   make(map[ids.Ref]struct{}),
		partitioned: make(map[[2]ids.SiteID]bool),
	}
	w.cluster = cluster.New(cluster.Options{
		NumSites:                  cfg.Sites,
		Stepped:                   true,
		Clock:                     w.clk,
		SuspicionThreshold:        cfg.Threshold,
		BackThreshold:             cfg.BackThreshold,
		AutoBackTrace:             true,
		CallTimeout:               simCallTimeout,
		ReportTimeout:             simReportTimeout,
		SkipTransferBarrierUnsafe: cfg.SkipTransferBarrier,
		Incremental:               cfg.Incremental,
		Shards:                    cfg.Shards,
		TraceWorkers:              cfg.TraceWorkers,
		Codec:                     cfg.codec(),
		Piggyback:                 cfg.Batch,
		MaxInflightTraces:         cfg.MaxInflightTraces,
		TraceBatch:                cfg.TraceBatch,
		MemoizeLive:               cfg.MemoizeLive,
		Observer:                  w.spans,
	})

	for i := 1; i <= cfg.Sites; i++ {
		id := ids.SiteID(i)
		w.roots[id] = w.cluster.Site(id).NewRootObject()
	}

	// Planted live chain: root@S1 → c0@S2 → c1@S3 → … with every link
	// crossing sites.
	prev := w.roots[1]
	for i := 0; i < cfg.ChainLen; i++ {
		owner := ids.SiteID(i%cfg.Sites + 1)
		if owner == prev.Site { // force an inter-site hop
			owner = owner%ids.SiteID(cfg.Sites) + 1
		}
		obj := w.cluster.Site(owner).NewObject()
		w.cluster.MustLink(prev, obj)
		w.chain = append(w.chain, obj)
		prev = obj
	}

	// Bait containers: hand each agent one deep chain object it may legally
	// reach. Targets are distinct and deeper than the back threshold, so
	// they are exactly the suspects back traces will run on.
	target := cfg.ChainLen - 1
	for i := 1; i <= cfg.Sites && target >= cfg.BackThreshold; i++ {
		b := ids.SiteID(i)
		x := w.chain[target]
		if x.Site == b { // bait must point at a remote suspect
			if target-1 < cfg.BackThreshold {
				continue
			}
			target--
			x = w.chain[target]
		}
		y := w.cluster.Site(b).NewObject()
		w.cluster.Site(b).AddAppRoot(y)
		w.vars[b] = append(w.vars[b], y)
		w.cluster.MustLink(y, x)
		target--
	}

	// Planted cycles, each with a bait of its own: the agent at the first
	// ring node's site holds a variable on a local container whose only
	// field is the ring's first cross-site edge — the same outref the cycle
	// edge ring[0]→ring[1] uses. The bait keeps the cycle live (and its
	// distance estimates anchored) until the agent unlinks it, at which
	// point the estimates climb and the cycle becomes exactly the suspect
	// state of Section 6.1: reading the bait first hands the agent a
	// reference into the cycle that it can transfer across sites while the
	// old path disappears. The drain phase drops every variable, so the
	// completeness oracle still requires all rings collected by run end.
	for r := 0; r < cfg.Rings; r++ {
		ring := w.cluster.BuildRing()
		w.rings = append(w.rings, ring...)
		b := ring[0].Site
		y := w.cluster.Site(b).NewObject()
		w.cluster.Site(b).AddAppRoot(y)
		w.vars[b] = append(w.vars[b], y)
		w.cluster.MustLink(y, ring[1])
	}
	w.cluster.Settle()
	return w
}

func (w *world) close() { w.cluster.Close() }

// holdsVar reports whether the site's agent may legally use ref: it is the
// site's root or appears in the agent's variable set.
func (w *world) holdsVar(s ids.SiteID, ref ids.Ref) bool {
	if w.roots[s] == ref {
		return true
	}
	for _, v := range w.vars[s] {
		if v == ref {
			return true
		}
	}
	return false
}

// dropVar removes one instance of ref from the agent's variable set.
func (w *world) dropVar(s ids.SiteID, ref ids.Ref) bool {
	for i, v := range w.vars[s] {
		if v == ref {
			w.vars[s] = append(w.vars[s][:i], w.vars[s][i+1:]...)
			return true
		}
	}
	return false
}

// crash checkpoints the site's durable state, marks it crashed, and loses
// everything volatile: the agent's variables, and every message in flight to
// or from the dead incarnation (the session layer's crash-epoch reset in
// miniature — see transport/reliable.go).
func (w *world) crash(s ids.SiteID) error {
	pre := w.cluster.Site(s).AuditSnapshot()
	var buf bytes.Buffer
	if err := w.cluster.Site(s).WriteCheckpoint(&buf); err != nil {
		return fmt.Errorf("sim: crash %v: %w", s, err)
	}
	w.checkpoints[s] = buf.Bytes()
	if _, ck, err := site.DecodeCheckpointAudit(bytes.NewReader(buf.Bytes())); err == nil {
		for obj := range pre.Objects {
			if _, survives := ck.Objects[obj]; !survives {
				w.crashLost[ids.MakeRef(s, obj)] = struct{}{}
			}
		}
		// An Insert in flight to the dying site records a remote holder the
		// durable image knows nothing about; the crash destroys it together
		// with the (volatile) sender-side pin that was bridging the gap. If
		// the checkpoint has no other recorded source for the target, the
		// restored incarnation will legitimately collect it and the remote
		// holder's reference dangles — crash amnesia, not unsafe collection,
		// so excuse the target like any other crash casualty.
		for _, env := range w.cluster.Net().Pending() {
			if env.To != s {
				continue
			}
			// Batched runs carry Inserts inside Batch wrappers: account
			// for every leaf.
			msg.Leaves(env.M, func(m msg.Message) {
				ins, isInsert := m.(msg.Insert)
				if !isInsert || ins.Target.Site != s {
					return
				}
				if len(ck.InrefSources[ins.Target.Obj]) == 0 {
					w.crashLost[ins.Target] = struct{}{}
				}
			})
		}
	}
	w.cluster.Net().Crash(s)
	w.cluster.Net().DropMatching(func(e msg.Envelope) bool {
		return e.From == s || e.To == s
	})
	w.vars[s] = nil
	w.begun[s] = false
	w.crashed[s] = true
	w.lossy = true
	return nil
}

// restart resurrects a crashed site from its checkpoint: a fresh Site with
// only the durable state, registered on the network in place of the dead
// incarnation. Restored iorefs are barrier-clean until its first local trace
// (see site/persist.go).
func (w *world) restart(s ids.SiteID) error {
	data, ok := w.checkpoints[s]
	if !ok {
		return fmt.Errorf("sim: restart %v: no checkpoint", s)
	}
	ns, err := site.Restore(w.restoreConfig(s), bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("sim: restart %v: %w", s, err)
	}
	w.cluster.ReplaceSite(s, ns)
	w.cluster.Net().Restart(s)
	delete(w.checkpoints, s)
	w.crashed[s] = false
	return nil
}

// restoreConfig mirrors the site configuration cluster.New used, so the
// restored incarnation behaves identically to the original.
func (w *world) restoreConfig(s ids.SiteID) site.Config {
	return site.Config{
		ID:                        s,
		Network:                   w.cluster.Net(),
		SuspicionThreshold:        w.cfg.Threshold,
		BackThreshold:             w.cfg.BackThreshold,
		CallTimeout:               simCallTimeout,
		ReportTimeout:             simReportTimeout,
		AutoBackTrace:             true,
		Clock:                     w.clk,
		SkipTransferBarrierUnsafe: w.cfg.SkipTransferBarrier,
		Piggyback:                 w.cfg.Batch,
		Incremental:               w.cfg.Incremental,
		Shards:                    w.cfg.Shards,
		TraceWorkers:              w.cfg.TraceWorkers,
		MaxInflightTraces:         w.cfg.MaxInflightTraces,
		TraceBatch:                w.cfg.TraceBatch,
		MemoizeLive:               w.cfg.MemoizeLive,
		Counters:                  w.cluster.Counters(),
		Observer:                  w.cluster.Observer(),
	}
}

// heldRefs returns every reference the site's agent may name: the site's
// root followed by its variables, in a deterministic order.
func (w *world) heldRefs(s ids.SiteID) []ids.Ref {
	out := make([]ids.Ref, 0, 1+len(w.vars[s]))
	out = append(out, w.roots[s])
	return append(out, w.vars[s]...)
}

// localContainers returns the held references that are local objects — the
// legal containers for link/unlink/read.
func (w *world) localContainers(s ids.SiteID) []ids.Ref {
	out := []ids.Ref{w.roots[s]}
	for _, v := range w.vars[s] {
		if v.Site == s {
			out = append(out, v)
		}
	}
	return out
}

// peekLink returns the head (oldest pending) message of the A→B link.
func (w *world) peekLink(a, b ids.SiteID) (msg.Envelope, bool) {
	for _, env := range w.cluster.Net().Pending() {
		if env.From == a && env.To == b {
			return env, true
		}
	}
	return msg.Envelope{}, false
}

// liveSites returns the non-crashed site identifiers in order.
func (w *world) liveSites() []ids.SiteID {
	out := make([]ids.SiteID, 0, w.cfg.Sites)
	for i := 1; i <= w.cfg.Sites; i++ {
		if !w.crashed[ids.SiteID(i)] {
			out = append(out, ids.SiteID(i))
		}
	}
	return out
}

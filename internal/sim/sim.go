// Package sim is the deterministic simulation harness: a single-threaded
// virtual-time scheduler that drives a stepped cluster one event at a time,
// a fault injector, and the safety/completeness oracles of the paper's
// Section 1 claims. Every run is a pure function of (Config, Seed) — or, on
// replay, of (Config, Events) — so any failure the explorer finds shrinks
// to a schedule file that reproduces it exactly.
package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math/rand"
	"sort"
	"time"

	"backtrace/internal/ids"
	"backtrace/internal/msg"
	"backtrace/internal/site"
)

// Result is the outcome of one simulated run.
type Result struct {
	// Config the world was built from (after defaulting).
	Config Config
	// Events actually applied, in order — a replayable schedule.
	Events []Event
	// Skipped counts replayed events whose preconditions no longer held
	// (shrinking removes events other events depended on; skipping keeps the
	// remainder legal). Always zero for generated runs.
	Skipped int
	// SafetyViolations is non-empty if the safety oracle fired; the run
	// stops at the first violating event (index ViolationStep).
	SafetyViolations []string
	ViolationStep    int
	// CompletenessViolations is non-empty if, after the drain, planted
	// cycles survived (or, for loss-free runs, any garbage at all).
	CompletenessViolations []string
	// Digest fingerprints the run: every event-log line, the final global
	// audit, and every emitted span. Two runs are the same interleaving iff
	// their digests match.
	Digest string
	// EventLog is the human-readable per-event log the digest hashes.
	EventLog []string
	// FaultCtx records what the collector was doing when each crash or
	// partition hit (used to select corpus schedules that actually race a
	// fault against an active back trace or an in-flight report).
	FaultCtx []FaultContext
	// Spans is the number of observability spans the run emitted.
	Spans int
	// Delivered and Dropped count message events.
	Delivered int
	Dropped   int
	// Counters is the cluster's final counter snapshot (collector activity:
	// traces run, remarks vs fallbacks, back traces, messages). Not part of
	// the digest.
	Counters map[string]int64
}

// FaultContext snapshots collector activity at the instant a fault applied.
type FaultContext struct {
	// Step is the index into Events of the fault event.
	Step int
	// Kind is the fault's event kind.
	Kind string
	// ActiveFrames is the number of live back-trace activation frames
	// across all live sites just before the fault.
	ActiveFrames int
	// ReportsInFlight is the number of pending Report messages the fault
	// could affect (crossing the cut for partitions; touching the site for
	// crashes).
	ReportsInFlight int
}

// Failed reports whether either oracle fired.
func (r *Result) Failed() bool {
	return len(r.SafetyViolations) > 0 || len(r.CompletenessViolations) > 0
}

// Violations returns all oracle complaints.
func (r *Result) Violations() []string {
	out := append([]string{}, r.SafetyViolations...)
	return append(out, r.CompletenessViolations...)
}

// runner executes one run: the world plus the digest and log accumulators.
type runner struct {
	w    *world
	res  *Result
	hash hash.Hash
}

func newRunner(w *world) *runner {
	return &runner{
		w:    w,
		res:  &Result{Config: w.cfg, ViolationStep: -1},
		hash: sha256.New(),
	}
}

// Run generates and executes one seeded run: at each step the scheduler
// either injects the next due fault from the plan or asks the RNG for an
// event, applies it, advances virtual time by one quantum, and evaluates the
// safety oracle. The applied events are recorded, so the returned Result
// doubles as a schedule replayable without the RNG.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	plan, err := ParseFaults(cfg.Faults)
	if err != nil {
		return nil, err
	}
	units := expandFaults(plan)
	w := newWorld(cfg)
	defer w.close()
	r := newRunner(w)
	rng := rand.New(rand.NewSource(cfg.Seed))
	next := 0
	for step := 0; step < cfg.Steps; step++ {
		var ev Event
		if next < len(units) && units[next].step <= step {
			ev = r.faultEvent(units[next], rng)
			next++
		} else {
			ev = r.genEvent(rng)
		}
		if ev.Kind == "" {
			continue
		}
		if !r.apply(&ev) {
			continue
		}
		r.res.Events = append(r.res.Events, ev)
		if viol := r.postEvent(ev); len(viol) > 0 {
			r.res.SafetyViolations = viol
			r.res.ViolationStep = len(r.res.Events) - 1
			break
		}
	}
	r.finish()
	return r.res, nil
}

// Replay executes a recorded event sequence against a freshly built world.
// No RNG is consulted: the events are already concrete. Events whose
// preconditions no longer hold (possible only for shrunk subsequences) are
// skipped, keeping the remainder legal.
func Replay(cfg Config, events []Event) *Result {
	cfg = cfg.withDefaults()
	w := newWorld(cfg)
	defer w.close()
	r := newRunner(w)
	for _, src := range events {
		ev := src
		if !r.apply(&ev) {
			r.res.Skipped++
			continue
		}
		r.res.Events = append(r.res.Events, ev)
		if viol := r.postEvent(ev); len(viol) > 0 {
			r.res.SafetyViolations = viol
			r.res.ViolationStep = len(r.res.Events) - 1
			break
		}
	}
	r.finish()
	return r.res
}

// apply executes one event if its preconditions hold, mutating ev only to
// record information the generator could not know in advance (the reference
// an alloc returns). It reports whether the event applied.
func (r *runner) apply(ev *Event) bool {
	w := r.w
	net := w.cluster.Net()
	switch ev.Kind {
	case EvDeliver:
		// N > 1 is a burst: up to N messages from the link head, in order.
		// One scheduler event either way — the oracle runs after the burst.
		n := ev.N
		if n < 1 {
			n = 1
		}
		delivered := 0
		for i := 0; i < n; i++ {
			env, ok := w.peekLink(ev.A, ev.B)
			if !ok || !net.DeliverLinkHead(ev.A, ev.B) {
				break
			}
			// A delivered RefTransfer hands the receiver's agent a variable
			// on the payload (the site pinned it with an app root; see
			// site.SendRef) — mirror that in the mutator model. Batched
			// runs can carry several transfers in one envelope.
			if !w.crashed[ev.B] {
				msg.Leaves(env.M, func(m msg.Message) {
					if rt, isRT := m.(msg.RefTransfer); isRT {
						w.vars[ev.B] = append(w.vars[ev.B], rt.Payload)
					}
				})
			}
			delivered++
		}
		r.res.Delivered += delivered
		return delivered > 0
	case EvDrop:
		if !net.DropLinkHead(ev.A, ev.B) {
			return false
		}
		w.lossy = true
		r.res.Dropped++
		return true
	case EvDup:
		env, ok := w.peekLink(ev.A, ev.B)
		if !ok || !dupSafe(env.M) || !net.DupLinkHead(ev.A, ev.B) {
			return false
		}
		w.lossy = true // duplication also violates the paper's R1 link model
		return true
	case EvTraceBegin:
		if w.crashed[ev.Site] || w.begun[ev.Site] {
			return false
		}
		w.cluster.Site(ev.Site).BeginLocalTrace()
		w.begun[ev.Site] = true
		return true
	case EvTraceCommit:
		if w.crashed[ev.Site] {
			return false
		}
		// Without a prior trace_begin this is a full local round: compute
		// and commit back-to-back, with nothing interleaved between the
		// phases. A begin/commit pair expresses the interesting split.
		if !w.begun[ev.Site] {
			w.cluster.Site(ev.Site).BeginLocalTrace()
		}
		w.cluster.Site(ev.Site).CommitLocalTrace()
		w.begun[ev.Site] = false
		return true
	case EvTimeouts:
		if w.crashed[ev.Site] {
			return false
		}
		w.cluster.Site(ev.Site).CheckTimeouts()
		return true
	case EvAlloc:
		if w.crashed[ev.Site] {
			return false
		}
		ref := w.cluster.Site(ev.Site).NewObject()
		w.cluster.Site(ev.Site).AddAppRoot(ref)
		w.vars[ev.Site] = append(w.vars[ev.Site], ref)
		ev.Ref = ref
		return true
	case EvRead:
		if w.crashed[ev.Site] || ev.Ref.Site != ev.Site || !w.holdsVar(ev.Site, ev.Ref) {
			return false
		}
		fields, err := w.cluster.Site(ev.Site).Fields(ev.Ref.Obj)
		if err != nil || ev.N < 0 || ev.N >= len(fields) || fields[ev.N].IsZero() {
			return false
		}
		f := fields[ev.N]
		w.cluster.Site(ev.Site).AddAppRoot(f)
		w.vars[ev.Site] = append(w.vars[ev.Site], f)
		return true
	case EvLink:
		if w.crashed[ev.Site] {
			return false
		}
		c := ids.MakeRef(ev.Site, ev.Obj)
		if !w.holdsVar(ev.Site, c) || !w.holdsVar(ev.Site, ev.Ref) {
			return false
		}
		return w.cluster.Site(ev.Site).AddReference(ev.Obj, ev.Ref) == nil
	case EvUnlink:
		if w.crashed[ev.Site] {
			return false
		}
		if !w.holdsVar(ev.Site, ids.MakeRef(ev.Site, ev.Obj)) {
			return false
		}
		return w.cluster.Site(ev.Site).RemoveReference(ev.Obj, ev.Ref) == nil
	case EvSend:
		if w.crashed[ev.Site] || w.crashed[ev.B] || ev.B == ev.Site {
			return false
		}
		// A send across a cut link would be dropped silently; skip so that
		// "lossy" stays an explicit scheduler decision.
		if w.partitioned[cutKey(ev.Site, ev.B)] || !w.holdsVar(ev.Site, ev.Ref) {
			return false
		}
		return w.cluster.Site(ev.Site).SendRef(ev.B, ev.Ref) == nil
	case EvVarDrop:
		if w.crashed[ev.Site] || !w.dropVar(ev.Site, ev.Ref) {
			return false
		}
		w.cluster.Site(ev.Site).DropAppRoot(ev.Ref)
		return true
	case EvCrash:
		if w.crashed[ev.Site] || len(w.liveSites()) <= 1 {
			return false
		}
		r.noteFaultContext(ev)
		return w.crash(ev.Site) == nil
	case EvRestart:
		if !w.crashed[ev.Site] {
			return false
		}
		return w.restart(ev.Site) == nil
	case EvPartition:
		k := cutKey(ev.A, ev.B)
		if ev.A == ev.B || w.partitioned[k] {
			return false
		}
		r.noteFaultContext(ev)
		net.Partition(ev.A, ev.B)
		w.partitioned[k] = true
		w.lossy = true
		return true
	case EvHeal:
		k := cutKey(ev.A, ev.B)
		if !w.partitioned[k] {
			return false
		}
		net.Heal(ev.A, ev.B)
		delete(w.partitioned, k)
		return true
	}
	return false
}

// noteFaultContext records what the collector was doing the instant a crash
// or partition applied.
func (r *runner) noteFaultContext(ev *Event) {
	frames := 0
	for _, s := range r.w.liveSites() {
		frames += r.w.cluster.Site(s).ActiveFrames()
	}
	reports := 0
	for _, env := range r.w.cluster.Net().Pending() {
		from, to := env.From, env.To
		msg.Leaves(env.M, func(m msg.Message) {
			if _, isReport := m.(msg.Report); !isReport {
				return
			}
			switch ev.Kind {
			case EvCrash:
				if from == ev.Site || to == ev.Site {
					reports++
				}
			case EvPartition:
				if cutKey(from, to) == cutKey(ev.A, ev.B) {
					reports++
				}
			}
		})
	}
	r.res.FaultCtx = append(r.res.FaultCtx, FaultContext{
		Step:            len(r.res.Events),
		Kind:            ev.Kind,
		ActiveFrames:    frames,
		ReportsInFlight: reports,
	})
}

// dupSafe reports whether duplicating m is within the system's contract.
// Update, Insert, and InsertAck are idempotent; the rest (RefTransfer,
// ReleasePin, back-trace calls) are exactly-once messages that the reliable
// session layer deduplicates in production, so the stepped simulator — which
// bypasses that layer — must not duplicate them.
func dupSafe(m msg.Message) bool {
	switch m.(type) {
	case msg.Update, msg.Insert, msg.InsertAck:
		return true
	}
	return false
}

// postEvent advances virtual time one quantum, evaluates the safety oracle,
// and folds the event-log line into the digest. It returns the oracle's
// violations.
func (r *runner) postEvent(ev Event) []string {
	r.w.clk.Advance(quantum)
	snap := r.w.safety()
	line := fmt.Sprintf("%04d %-28s | objs=%d live=%d pend=%d",
		len(r.res.Events)-1, ev.String(), snap.objects, snap.live,
		r.w.cluster.Net().PendingCount())
	r.res.EventLog = append(r.res.EventLog, line)
	r.hash.Write([]byte(line))
	r.hash.Write([]byte{'\n'})
	return snap.violations
}

// drainRounds bounds the quiescence phase; each round advances past the
// report timeout, so even traces orphaned by a crash resolve well within it.
const drainRounds = 60

// finish completes the run: unless safety already failed, it heals every
// fault, drains the system to quiescence, and evaluates the completeness
// oracle; then it folds the final state and the span stream into the digest.
func (r *runner) finish() {
	if len(r.res.SafetyViolations) == 0 {
		if errs := r.drain(); len(errs) > 0 {
			r.res.CompletenessViolations = errs
		} else {
			r.res.CompletenessViolations = r.w.completenessViolations()
		}
	}
	r.finalizeDigest()
}

// drain is the deterministic "let the system finish" epilogue: heal all
// partitions, restore all crashed sites, flush the network, then alternate
// timeout scans and full trace rounds — with virtual time jumping past the
// report timeout each round so orphaned back-trace state expires — until no
// garbage and no messages remain.
func (r *runner) drain() []string {
	w := r.w
	var cuts [][2]ids.SiteID
	for k := range w.partitioned {
		cuts = append(cuts, k)
	}
	sort.Slice(cuts, func(i, j int) bool {
		if cuts[i][0] != cuts[j][0] {
			return cuts[i][0] < cuts[j][0]
		}
		return cuts[i][1] < cuts[j][1]
	})
	for _, k := range cuts {
		w.cluster.Net().Heal(k[0], k[1])
		delete(w.partitioned, k)
	}
	for i := 1; i <= w.cfg.Sites; i++ {
		id := ids.SiteID(i)
		if w.crashed[id] {
			if err := w.restart(id); err != nil {
				return []string{fmt.Sprintf("drain: %v", err)}
			}
		}
	}
	for i := 1; i <= w.cfg.Sites; i++ {
		id := ids.SiteID(i)
		if w.begun[id] {
			w.cluster.Site(id).CommitLocalTrace()
			w.begun[id] = false
		}
	}
	// The agents retire: every variable drops, so baited cycles become
	// garbage and the completeness oracle's "all planted cycles collected"
	// applies to them (unless an agent linked a cycle under a persistent
	// root first — the oracle checks final persistent reachability).
	for _, s := range w.liveSites() {
		for _, v := range w.vars[s] {
			w.cluster.Site(s).DropAppRoot(v)
		}
		w.vars[s] = nil
	}
	// Transfers still in flight re-create a mutator hold at the receiver
	// when delivered (handleRefTransfer registers the payload as an app
	// root); the retiring agents drop those holds too, or a reference
	// parked in the network at drain time would keep its target — and any
	// cycle behind it — alive forever. Deliveries never generate new
	// transfers (only mutator sends do), so one sweep covers them all.
	var acquired []struct {
		to  ids.SiteID
		ref ids.Ref
	}
	for _, env := range w.cluster.Net().Pending() {
		to := env.To
		msg.Leaves(env.M, func(m msg.Message) {
			if rt, ok := m.(msg.RefTransfer); ok {
				acquired = append(acquired, struct {
					to  ids.SiteID
					ref ids.Ref
				}{to, rt.Payload})
			}
		})
	}
	w.cluster.Net().DeliverAll()
	for _, a := range acquired {
		w.cluster.Site(a.to).DropAppRoot(a.ref)
	}
	for round := 0; round < drainRounds; round++ {
		w.clk.Advance(simReportTimeout + time.Second)
		w.cluster.CheckAllTimeouts()
		w.cluster.RunRound()
		if w.cluster.GarbageCount() == 0 && w.cluster.Net().PendingCount() == 0 {
			w.cluster.RunRound() // settle trailing acks and farewells
			return nil
		}
	}
	return nil
}

// finalizeDigest folds the end-of-run global audit and the span stream into
// the digest. The audit dump is fully sorted; spans are hashed in emission
// order, which the single-threaded scheduler makes deterministic.
func (r *runner) finalizeDigest() {
	audits, err := r.w.globalAudits()
	if err != nil {
		r.hash.Write([]byte(err.Error()))
	} else {
		for i := 1; i <= r.w.cfg.Sites; i++ {
			id := ids.SiteID(i)
			dumpAudit(r.hash, id, audits[id])
		}
	}
	for _, sp := range r.w.spans.spans {
		b, _ := json.Marshal(sp)
		r.hash.Write(b)
		r.hash.Write([]byte{'\n'})
	}
	r.res.Spans = len(r.w.spans.spans)
	r.res.Digest = hex.EncodeToString(r.hash.Sum(nil))
	r.res.Counters = r.w.cluster.Counters().Snapshot()
}

// dumpAudit writes a canonical (sorted) serialization of one site's audit.
func dumpAudit(h hash.Hash, id ids.SiteID, a site.Audit) {
	fmt.Fprintf(h, "audit %v\n", id)
	objs := make([]ids.ObjID, 0, len(a.Objects))
	for o := range a.Objects {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	for _, o := range objs {
		fmt.Fprintf(h, "  obj %v %v\n", o, a.Objects[o])
	}
	proots := append([]ids.ObjID{}, a.PersistentRoots...)
	sort.Slice(proots, func(i, j int) bool { return proots[i] < proots[j] })
	fmt.Fprintf(h, "  proots %v\n", proots)
	aroots := append([]ids.Ref{}, a.AppRoots...)
	sort.Slice(aroots, func(i, j int) bool { return aroots[i].Less(aroots[j]) })
	fmt.Fprintf(h, "  aroots %v\n", aroots)
	outs := make([]ids.Ref, 0, len(a.Outrefs))
	for o := range a.Outrefs {
		outs = append(outs, o)
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].Less(outs[j]) })
	fmt.Fprintf(h, "  outrefs %v\n", outs)
	ins := make([]ids.ObjID, 0, len(a.InrefSources))
	for o := range a.InrefSources {
		ins = append(ins, o)
	}
	sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
	for _, o := range ins {
		srcs := append([]ids.SiteID{}, a.InrefSources[o]...)
		sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
		fmt.Fprintf(h, "  inref %v %v\n", o, srcs)
	}
	flagged := append([]ids.ObjID{}, a.GarbageFlagged...)
	sort.Slice(flagged, func(i, j int) bool { return flagged[i] < flagged[j] })
	fmt.Fprintf(h, "  flagged %v\n", flagged)
}

// genEvent asks the RNG for the next event. The weights favour deliveries —
// the collector makes progress only through messages — with mutator churn,
// trace phases, and the occasional timeout scan behind them. The candidate
// sets are enumerated in deterministic order, so one seed always yields one
// schedule.
func (r *runner) genEvent(rng *rand.Rand) Event {
	w := r.w
	live := w.liveSites()
	if len(live) == 0 {
		return Event{}
	}
	links := w.cluster.Net().PendingLinks()
	roll := rng.Intn(100)
	switch {
	case roll < 55 && len(links) > 0:
		l := links[rng.Intn(len(links))]
		ev := Event{Kind: EvDeliver, A: l[0], B: l[1]}
		if rng.Intn(4) == 0 {
			// A burst flushes a backed-up link in one step — deep FIFO
			// queues (a transfer ahead of a pile of updates) are common in
			// the interesting interleavings.
			ev.N = 2 + rng.Intn(6)
		}
		return ev
	case roll < 83:
		return r.genMutate(rng, live)
	case roll < 96:
		s := live[rng.Intn(len(live))]
		if w.begun[s] {
			return Event{Kind: EvTraceCommit, Site: s}
		}
		if rng.Intn(3) == 0 {
			// Bare commit: a full local round in one event.
			return Event{Kind: EvTraceCommit, Site: s}
		}
		return Event{Kind: EvTraceBegin, Site: s}
	default:
		return Event{Kind: EvTimeouts, Site: live[rng.Intn(len(live))]}
	}
}

// genMutate picks one legal mutator operation for a random live site's
// agent. Falls back to alloc — always legal — when the drawn operation has
// no legal operands.
func (r *runner) genMutate(rng *rand.Rand, live []ids.SiteID) Event {
	w := r.w
	s := live[rng.Intn(len(live))]
	alloc := Event{Kind: EvAlloc, Site: s}
	held := w.heldRefs(s)
	containers := w.localContainers(s)
	op := rng.Intn(100)
	switch {
	case op < 15:
		return alloc
	case op < 40: // read a field into a variable
		c := containers[rng.Intn(len(containers))]
		fields, err := w.cluster.Site(s).Fields(c.Obj)
		if err != nil || len(fields) == 0 {
			return alloc
		}
		n := rng.Intn(len(fields))
		if fields[n].IsZero() {
			return alloc
		}
		return Event{Kind: EvRead, Site: s, Ref: c, N: n}
	case op < 65: // store a held reference into a local object
		c := containers[rng.Intn(len(containers))]
		t := held[rng.Intn(len(held))]
		return Event{Kind: EvLink, Site: s, Obj: c.Obj, Ref: t}
	case op < 78: // remove a reference from a local object
		c := containers[rng.Intn(len(containers))]
		fields, err := w.cluster.Site(s).Fields(c.Obj)
		if err != nil || len(fields) == 0 {
			return alloc
		}
		n := rng.Intn(len(fields))
		if fields[n].IsZero() {
			return alloc
		}
		return Event{Kind: EvUnlink, Site: s, Obj: c.Obj, Ref: fields[n]}
	case op < 92: // pass a held reference to another site
		if len(live) < 2 {
			return alloc
		}
		var others []ids.SiteID
		for _, o := range live {
			if o != s {
				others = append(others, o)
			}
		}
		return Event{
			Kind: EvSend,
			Site: s,
			B:    others[rng.Intn(len(others))],
			Ref:  held[rng.Intn(len(held))],
		}
	default: // drop a variable
		if len(w.vars[s]) == 0 {
			return alloc
		}
		return Event{Kind: EvVarDrop, Site: s, Ref: w.vars[s][rng.Intn(len(w.vars[s]))]}
	}
}

// faultEvent turns one fault-plan unit into a concrete event. Drop and dup
// pick their victim link with the RNG; units with no possible victim this
// step yield a zero event (the scheduler moves on).
func (r *runner) faultEvent(u faultOp, rng *rand.Rand) Event {
	switch u.kind {
	case EvCrash:
		return Event{Kind: EvCrash, Site: u.a}
	case EvRestart:
		return Event{Kind: EvRestart, Site: u.a}
	case EvPartition:
		return Event{Kind: EvPartition, A: u.a, B: u.b}
	case EvHeal:
		return Event{Kind: EvHeal, A: u.a, B: u.b}
	case EvDrop:
		links := r.w.cluster.Net().PendingLinks()
		if len(links) == 0 {
			return Event{}
		}
		l := links[rng.Intn(len(links))]
		return Event{Kind: EvDrop, A: l[0], B: l[1]}
	case EvDup:
		var safe [][2]ids.SiteID
		for _, l := range r.w.cluster.Net().PendingLinks() {
			if env, ok := r.w.peekLink(l[0], l[1]); ok && dupSafe(env.M) {
				safe = append(safe, l)
			}
		}
		if len(safe) == 0 {
			return Event{}
		}
		l := safe[rng.Intn(len(safe))]
		return Event{Kind: EvDup, A: l[0], B: l[1]}
	}
	return Event{}
}

// expandFaults turns a parsed plan into single-event units: a drop/dup burst
// of n becomes n units on consecutive steps.
func expandFaults(plan []faultOp) []faultOp {
	var units []faultOp
	for _, op := range plan {
		if op.kind == EvDrop || op.kind == EvDup {
			for i := 0; i < op.n; i++ {
				u := op
				u.step = op.step + i
				u.n = 1
				units = append(units, u)
			}
			continue
		}
		units = append(units, op)
	}
	sort.SliceStable(units, func(i, j int) bool { return units[i].step < units[j].step })
	return units
}

// cutKey normalizes an unordered site pair.
func cutKey(a, b ids.SiteID) [2]ids.SiteID {
	if a > b {
		a, b = b, a
	}
	return [2]ids.SiteID{a, b}
}

package sim

import (
	"encoding/json"
	"fmt"
	"os"

	"backtrace/internal/ids"
)

// ScheduleVersion identifies the on-disk schedule format.
const ScheduleVersion = 1

// Event is one scheduler step: a message delivery, a collector phase, a
// mutator operation, or a fault. Events are fully concrete — they name the
// link, site, object, or reference they act on — so a recorded schedule
// replays without consulting the RNG that generated it.
type Event struct {
	// Kind discriminates the event; see the Ev* constants.
	Kind string `json:"k"`
	// Site is the acting site for site-scoped events (traces, timeouts,
	// mutator operations, crash/restart).
	Site ids.SiteID `json:"site,omitempty"`
	// A and B are the link endpoints for deliver/drop/dup (a message from A
	// to B) and the pair for partition/heal.
	A ids.SiteID `json:"a,omitempty"`
	B ids.SiteID `json:"b,omitempty"`
	// Obj is the local container object for link/unlink.
	Obj ids.ObjID `json:"obj,omitempty"`
	// Ref is the reference operand: the target of link/unlink/send/var_drop,
	// the container whose field is read for read, and the reference the
	// generator allocated for alloc (informational; replay re-allocates).
	Ref ids.Ref `json:"ref"`
	// N is the field index for read, and the burst size for deliver
	// (deliver up to N messages from the link head; 0 and 1 mean one).
	N int `json:"n,omitempty"`
}

// Event kinds. The zoo is deliberately small: everything the collector does
// is driven by message deliveries and the three collector phases; everything
// the application does is one of six legal mutator operations; everything
// that can go wrong is one of six faults.
const (
	EvDeliver     = "deliver"      // deliver head message(s) of link A→B (N = burst size)
	EvDrop        = "drop"         // drop head message of link A→B (loss)
	EvDup         = "dup"          // duplicate head message of link A→B
	EvTraceBegin  = "trace_begin"  // Site computes a local trace (Section 6.2 phase 1)
	EvTraceCommit = "trace_commit" // Site commits the computed trace (phase 2)
	EvTimeouts    = "timeouts"     // Site scans for overdue back-trace state (Section 4.6)
	EvAlloc       = "alloc"        // Site's agent allocates an object and holds it in a variable
	EvLink        = "link"         // Site's agent stores Ref into local object Obj
	EvUnlink      = "unlink"       // Site's agent removes Ref from local object Obj
	EvRead        = "read"         // Site's agent reads field N of local object Ref into a variable
	EvSend        = "send"         // Site's agent passes Ref to site B (Section 6.1 transfer)
	EvVarDrop     = "var_drop"     // Site's agent drops one variable holding Ref
	EvCrash       = "crash"        // Site crashes: volatile state and in-flight messages lost
	EvRestart     = "restart"      // Site restores from its crash-time checkpoint
	EvPartition   = "partition"    // cut the A↔B link
	EvHeal        = "heal"         // restore the A↔B link
)

// String renders the event canonically; the determinism digest hashes these
// lines, so the format is part of the replay contract.
func (e Event) String() string {
	switch e.Kind {
	case EvDeliver:
		if e.N > 1 {
			return fmt.Sprintf("%s %v->%v x%d", e.Kind, e.A, e.B, e.N)
		}
		return fmt.Sprintf("%s %v->%v", e.Kind, e.A, e.B)
	case EvDrop, EvDup, EvPartition, EvHeal:
		return fmt.Sprintf("%s %v->%v", e.Kind, e.A, e.B)
	case EvTraceBegin, EvTraceCommit, EvTimeouts, EvCrash, EvRestart:
		return fmt.Sprintf("%s %v", e.Kind, e.Site)
	case EvAlloc:
		return fmt.Sprintf("%s %v %v", e.Kind, e.Site, e.Ref)
	case EvLink, EvUnlink:
		return fmt.Sprintf("%s %v %v<-%v", e.Kind, e.Site, e.Obj, e.Ref)
	case EvRead:
		return fmt.Sprintf("%s %v %v[%d]", e.Kind, e.Site, e.Ref, e.N)
	case EvSend:
		return fmt.Sprintf("%s %v %v->%v", e.Kind, e.Site, e.Ref, e.B)
	case EvVarDrop:
		return fmt.Sprintf("%s %v %v", e.Kind, e.Site, e.Ref)
	default:
		return fmt.Sprintf("%s?", e.Kind)
	}
}

// Schedule is a replayable simulation run: the configuration that builds the
// world plus the exact event sequence to apply to it. Failure shrinking
// writes these files; TestReplayCorpus and `dgcsim -replay` read them.
type Schedule struct {
	Version int    `json:"version"`
	Config  Config `json:"config"`
	// Expect states the oracle outcome the schedule reproduces: "" (or
	// "clean") for a run both oracles must pass, "safety" for a run the
	// safety oracle must fail (a caught-regression witness). TestReplayCorpus
	// enforces it.
	Expect string  `json:"expect,omitempty"`
	Events []Event `json:"events"`
}

// Expectation values for Schedule.Expect.
const (
	ExpectClean  = "clean"
	ExpectSafety = "safety"
)

// WriteFile serializes the schedule as indented JSON.
func (s Schedule) WriteFile(path string) error {
	s.Version = ScheduleVersion
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("sim: encode schedule: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadScheduleFile loads a schedule written by WriteFile.
func ReadScheduleFile(path string) (Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Schedule{}, fmt.Errorf("sim: read schedule: %w", err)
	}
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return Schedule{}, fmt.Errorf("sim: decode schedule %s: %w", path, err)
	}
	if s.Version != ScheduleVersion {
		return Schedule{}, fmt.Errorf("sim: schedule %s has version %d, want %d", path, s.Version, ScheduleVersion)
	}
	return s, nil
}

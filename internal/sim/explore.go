package sim

import (
	"fmt"
	"time"
)

// ExploreReport aggregates one seed sweep.
type ExploreReport struct {
	// Seeds is how many seeds ran; Failures how many tripped an oracle.
	Seeds    int
	Failures int
	// DistinctDigests counts distinct interleavings observed (same-digest
	// runs exercised the identical schedule).
	DistinctDigests int
	// Events and Delivered total across all runs; Elapsed is wall time.
	Events    int
	Delivered int
	Elapsed   time.Duration
	// FirstFailure is the first failing run, if any — the natural shrink
	// target.
	FirstFailure *Result
	// FailedSeeds lists every failing seed.
	FailedSeeds []int64
}

// EventsPerSec is the sweep's throughput (scheduler events per wall second).
func (e ExploreReport) EventsPerSec() float64 {
	if e.Elapsed <= 0 {
		return 0
	}
	return float64(e.Events) / e.Elapsed.Seconds()
}

// String summarizes the sweep.
func (e ExploreReport) String() string {
	return fmt.Sprintf("seeds=%d failures=%d distinct=%d events=%d delivered=%d elapsed=%s events/sec=%.0f",
		e.Seeds, e.Failures, e.DistinctDigests, e.Events, e.Delivered,
		e.Elapsed.Round(time.Millisecond), e.EventsPerSec())
}

// Explore sweeps seeds cfg.Seed, cfg.Seed+1, …, cfg.Seed+seeds-1, running
// one full simulation per seed. onResult, when non-nil, sees every run as it
// finishes (progress reporting, failure collection). Exploration does not
// stop at the first failure: the report counts them all.
func Explore(cfg Config, seeds int, onResult func(seed int64, res *Result)) (ExploreReport, error) {
	start := time.Now()
	report := ExploreReport{Seeds: seeds}
	digests := make(map[string]struct{})
	for i := 0; i < seeds; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		res, err := Run(c)
		if err != nil {
			return report, err
		}
		digests[res.Digest] = struct{}{}
		report.Events += len(res.Events)
		report.Delivered += res.Delivered
		if res.Failed() {
			report.Failures++
			report.FailedSeeds = append(report.FailedSeeds, c.Seed)
			if report.FirstFailure == nil {
				report.FirstFailure = res
			}
		}
		if onResult != nil {
			onResult(c.Seed, res)
		}
	}
	report.DistinctDigests = len(digests)
	report.Elapsed = time.Since(start)
	return report, nil
}

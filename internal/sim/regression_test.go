package sim

import (
	"testing"

	"backtrace/internal/ids"
)

// witnessEvents is a hand-built interleaving that needs the Section 6.1
// transfer barrier: site 1's agent reads its bait variable (acquiring a
// reference to the suspect S2:o6 deep in the live chain), transfers it to
// site 3 while unlinking the old path, and the back trace races the second
// transfer hop. With the barrier the trace returns Live; with
// Config.SkipTransferBarrier it flags the live chain Garbage.
func witnessEvents() []Event {
	r1 := ids.MakeRef(2, 6)   // the suspect: deep chain object owned by site 2
	bait := ids.MakeRef(1, 6) // site 1's bait container pointing at r1
	var evs []Event
	add := func(e Event) { evs = append(evs, e) }
	burst := func(a, b ids.SiteID, n int) { add(Event{Kind: EvDeliver, A: a, B: b, N: n}) }
	commit := func(s ids.SiteID) { add(Event{Kind: EvTraceCommit, Site: s}) }
	add(Event{Kind: EvRead, Site: 1, Ref: bait, N: 0})
	add(Event{Kind: EvSend, Site: 1, B: 3, Ref: r1})
	add(Event{Kind: EvVarDrop, Site: 1, Ref: r1})
	add(Event{Kind: EvUnlink, Site: 1, Obj: bait.Obj, Ref: r1})
	commit(3)
	burst(3, 1, 4)
	burst(3, 2, 4)
	commit(1)
	burst(1, 2, 4)
	commit(2)
	burst(2, 3, 4)
	burst(2, 1, 4)
	burst(1, 3, 4)
	burst(3, 2, 2)
	burst(2, 1, 2)
	add(Event{Kind: EvSend, Site: 3, B: 2, Ref: r1})
	add(Event{Kind: EvVarDrop, Site: 3, Ref: r1})
	burst(3, 2, 2)
	burst(2, 3, 4)
	commit(3)
	burst(3, 1, 4)
	burst(3, 2, 4)
	commit(1)
	for i := 0; i < 3; i++ {
		for _, p := range [][2]ids.SiteID{{1, 2}, {2, 1}, {1, 3}, {3, 1}, {2, 3}, {3, 2}} {
			burst(p[0], p[1], 4)
		}
	}
	return evs
}

// TestInjectedRegressionCaught is the model checker's acceptance test: a
// branch-local regression — deliberately skipping the Section 6.1.1 transfer
// barrier — must be caught as a safety violation, and the correct system must
// pass the identical schedule. This is the "any injected regression is caught"
// half of the subsystem's contract.
func TestInjectedRegressionCaught(t *testing.T) {
	events := witnessEvents()

	broken := Replay(Config{SkipTransferBarrier: true}, events)
	if len(broken.SafetyViolations) == 0 {
		t.Fatal("skipping the transfer barrier was not caught as a safety violation")
	}

	fixed := Replay(Config{}, events)
	if fixed.Failed() {
		t.Fatalf("the correct system failed the witness schedule: %v", fixed.Violations())
	}
}

// TestShrinkWitness: ddmin minimizes the witness to a replayable schedule of
// at most 30 events that still trips the safety oracle under the injected
// regression and still passes on the correct system.
func TestShrinkWitness(t *testing.T) {
	cfg := Config{SkipTransferBarrier: true}
	events := witnessEvents()
	shrunk := Shrink(cfg, events)

	if len(shrunk) > 30 {
		t.Fatalf("shrunk schedule has %d events, want <= 30", len(shrunk))
	}
	if len(shrunk) >= len(events) {
		t.Fatalf("shrinking did not reduce the schedule (%d -> %d events)", len(events), len(shrunk))
	}

	broken := Replay(cfg, shrunk)
	if len(broken.SafetyViolations) == 0 {
		t.Fatal("shrunk schedule no longer trips the safety oracle")
	}
	// Polarity must survive shrinking: the minimized schedule is a barrier
	// witness, not a generic failure.
	fixed := Replay(Config{}, shrunk)
	if fixed.Failed() {
		t.Fatalf("the correct system failed the shrunk schedule: %v", fixed.Violations())
	}
}

// TestShrinkCleanRunIsIdentity: shrinking a passing run returns it unchanged
// (nothing to minimize).
func TestShrinkCleanRunIsIdentity(t *testing.T) {
	res, err := Run(Config{Seed: 1, Steps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("short run failed: %v", res.Violations())
	}
	shrunk := Shrink(res.Config, res.Events)
	if len(shrunk) != len(res.Events) {
		t.Fatalf("shrinking a clean run changed it: %d -> %d events", len(res.Events), len(shrunk))
	}
}

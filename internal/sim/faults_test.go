package sim

import (
	"strings"
	"testing"
)

func TestParseFaultsErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error; "" means valid
	}{
		{"", ""},
		{"crash@120:2", ""},
		{"crash@120:2, restart@300:2", ""},
		{"partition@200:1-3,heal@400:1-3", ""},
		{"drop@80:5,dup@90:3", ""},
		{"crash:2", "missing @step"},
		{"crash@120", "missing :arg"},
		{"crash@x:2", "bad step"},
		{"crash@-1:2", "bad step"},
		{"crash@120:zero", "bad site"},
		{"crash@120:0", "bad site"},
		{"partition@200:13", "want A-B"},
		{"partition@200:1-1", "bad pair"},
		{"partition@200:0-3", "bad pair"},
		{"drop@80:0", "bad count"},
		{"dup@90:-2", "bad count"},
		{"meteor@10:1", "unknown fault"},
	}
	for _, tc := range cases {
		_, err := ParseFaults(tc.spec)
		if tc.want == "" {
			if err != nil {
				t.Errorf("ParseFaults(%q) unexpected error: %v", tc.spec, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseFaults(%q) = %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
}

// runFaultSchedule runs one seeded simulation under a DSL fault plan and
// requires both oracles to pass.
func runFaultSchedule(t *testing.T, faults string, seed int64) *Result {
	t.Helper()
	res, err := Run(Config{Seed: seed, Steps: 400, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("faults=%q seed=%d: %v", faults, seed, res.Violations())
	}
	return res
}

// faultCtxKinds collects the kinds of the recorded fault contexts.
func faultCtxKinds(res *Result) []string {
	var out []string
	for _, fc := range res.FaultCtx {
		out = append(out, fc.Kind)
	}
	return out
}

func TestCrashRestartSchedule(t *testing.T) {
	res := runFaultSchedule(t, "crash@150:2,restart@300:2", 0)
	kinds := faultCtxKinds(res)
	if len(kinds) != 1 || kinds[0] != EvCrash {
		t.Fatalf("fault contexts = %v, want exactly one crash", kinds)
	}
	var sawCrash, sawRestart bool
	for _, ev := range res.Events {
		switch ev.Kind {
		case EvCrash:
			sawCrash = true
		case EvRestart:
			sawRestart = true
		}
	}
	if !sawCrash || !sawRestart {
		t.Fatalf("schedule missing crash(%v)/restart(%v) events", sawCrash, sawRestart)
	}
}

func TestPartitionHealSchedule(t *testing.T) {
	res := runFaultSchedule(t, "partition@150:1-3,heal@300:1-3", 0)
	kinds := faultCtxKinds(res)
	if len(kinds) != 1 || kinds[0] != EvPartition {
		t.Fatalf("fault contexts = %v, want exactly one partition", kinds)
	}
}

func TestDropDupSchedule(t *testing.T) {
	res := runFaultSchedule(t, "drop@60:5,dup@200:3", 0)
	if res.Dropped == 0 {
		t.Fatal("drop plan dropped nothing")
	}
	var dups int
	for _, ev := range res.Events {
		if ev.Kind == EvDup {
			dups++
		}
	}
	if dups == 0 {
		t.Fatal("dup plan duplicated nothing")
	}
}

// TestFaultSweep runs a handful of seeds under each fault mix — the smoke
// version of the nightly fault exploration.
func TestFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep is not short")
	}
	mixes := []string{
		"crash@150:2,restart@300:2",
		"partition@150:1-2,heal@280:1-2",
		"drop@100:8",
		"dup@100:6",
		"crash@120:3,partition@160:1-2,restart@250:3,heal@320:1-2,drop@200:3",
	}
	for _, faults := range mixes {
		rep, err := Explore(Config{Steps: 400, Faults: faults}, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failures > 0 {
			t.Errorf("faults=%q: %d/%d seeds failed (first: %v)",
				faults, rep.Failures, rep.Seeds, rep.FirstFailure.Violations())
		}
	}
}

// TestLossyRunsSkipCompleteness: a run that dropped a message is exempt from
// the completeness oracle (the paper assumes reliable links) but never from
// safety — encoded here by checking that a heavy-loss run still finishes
// without safety violations.
func TestLossyRunsSkipCompleteness(t *testing.T) {
	res, err := Run(Config{Seed: 5, Steps: 300, Faults: "drop@50:20,drop@150:20"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SafetyViolations) > 0 {
		t.Fatalf("safety must hold under loss: %v", res.SafetyViolations)
	}
	if len(res.CompletenessViolations) > 0 {
		t.Fatalf("lossy runs are exempt from completeness, got: %v", res.CompletenessViolations)
	}
}

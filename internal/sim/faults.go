package sim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"backtrace/internal/ids"
)

// The fault-schedule DSL names faults to inject at fixed scheduler steps.
// A plan is a comma-separated list of clauses:
//
//	crash@120:2        crash site 2 at step 120
//	restart@300:2      restore site 2 from its crash checkpoint at step 300
//	partition@200:1-3  cut the link between sites 1 and 3 at step 200
//	heal@400:1-3       restore that link at step 400
//	drop@80:5          drop 5 pending link-head messages starting at step 80
//	dup@90:3           duplicate 3 pending link-head messages starting at step 90
//
// The DSL exists only for the generator: each clause is turned into concrete
// schedule events as the run reaches its step, and those events — not the
// DSL — are what a schedule file records, so replays need no parsing.

// faultOp is one parsed clause.
type faultOp struct {
	step int
	kind string     // EvCrash, EvRestart, EvPartition, EvHeal, EvDrop, EvDup
	a, b ids.SiteID // site (a) or pair (a,b)
	n    int        // burst size for drop/dup
}

// ParseFaults parses the DSL into a step-ordered plan. An empty string is a
// valid empty plan.
func ParseFaults(spec string) ([]faultOp, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var plan []faultOp
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		name, rest, ok := strings.Cut(clause, "@")
		if !ok {
			return nil, fmt.Errorf("sim: fault clause %q: missing @step", clause)
		}
		stepStr, arg, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("sim: fault clause %q: missing :arg", clause)
		}
		step, err := strconv.Atoi(stepStr)
		if err != nil || step < 0 {
			return nil, fmt.Errorf("sim: fault clause %q: bad step %q", clause, stepStr)
		}
		op := faultOp{step: step}
		switch name {
		case "crash", "restart":
			site, err := strconv.Atoi(arg)
			if err != nil || site <= 0 {
				return nil, fmt.Errorf("sim: fault clause %q: bad site %q", clause, arg)
			}
			op.kind = EvCrash
			if name == "restart" {
				op.kind = EvRestart
			}
			op.a = ids.SiteID(site)
		case "partition", "heal":
			aStr, bStr, ok := strings.Cut(arg, "-")
			if !ok {
				return nil, fmt.Errorf("sim: fault clause %q: want A-B", clause)
			}
			a, err1 := strconv.Atoi(aStr)
			b, err2 := strconv.Atoi(bStr)
			if err1 != nil || err2 != nil || a <= 0 || b <= 0 || a == b {
				return nil, fmt.Errorf("sim: fault clause %q: bad pair %q", clause, arg)
			}
			op.kind = EvPartition
			if name == "heal" {
				op.kind = EvHeal
			}
			op.a, op.b = ids.SiteID(a), ids.SiteID(b)
		case "drop", "dup":
			n, err := strconv.Atoi(arg)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("sim: fault clause %q: bad count %q", clause, arg)
			}
			op.kind = EvDrop
			if name == "dup" {
				op.kind = EvDup
			}
			op.n = n
		default:
			return nil, fmt.Errorf("sim: fault clause %q: unknown fault %q", clause, name)
		}
		plan = append(plan, op)
	}
	sort.SliceStable(plan, func(i, j int) bool { return plan[i].step < plan[j].step })
	return plan, nil
}

package sim

import (
	"path/filepath"
	"testing"
)

// TestReplayCorpus replays every schedule under testdata/schedules/ and
// enforces its Expect annotation: "safety" schedules are caught-regression
// witnesses that must trip the safety oracle; "clean" (or unannotated)
// schedules must pass both oracles. Each schedule replays twice and must
// produce the identical digest — the corpus doubles as a determinism
// regression suite.
func TestReplayCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/schedules/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no schedules in testdata/schedules/")
	}
	results := make(map[string]*Result)
	for _, path := range files {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			sched, err := ReadScheduleFile(path)
			if err != nil {
				t.Fatal(err)
			}
			res := Replay(sched.Config, sched.Events)
			results[name] = res
			switch sched.Expect {
			case ExpectSafety:
				if len(res.SafetyViolations) == 0 {
					t.Fatal("expected a safety violation, run was clean")
				}
			case ExpectClean, "":
				if res.Failed() {
					t.Fatalf("expected a clean run, got: %v", res.Violations())
				}
				if res.Skipped != 0 {
					t.Fatalf("clean corpus schedule skipped %d events", res.Skipped)
				}
			default:
				t.Fatalf("unknown expect annotation %q", sched.Expect)
			}
			again := Replay(sched.Config, sched.Events)
			if again.Digest != res.Digest {
				t.Fatalf("replaying twice gave different digests:\n  %s\n  %s", res.Digest, again.Digest)
			}
		})
	}

	// The named fault schedules must actually race a fault against collector
	// activity — that is what they are in the corpus for.
	t.Run("crash-during-back-trace races an active trace", func(t *testing.T) {
		res, ok := results["crash-during-back-trace.json"]
		if !ok {
			t.Fatal("corpus is missing crash-during-back-trace.json")
		}
		found := false
		for _, fc := range res.FaultCtx {
			if fc.Kind == EvCrash && fc.ActiveFrames > 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("no crash hit an active back trace; contexts: %+v", res.FaultCtx)
		}
	})
	t.Run("partition-during-report cuts an in-flight report", func(t *testing.T) {
		res, ok := results["partition-during-report.json"]
		if !ok {
			t.Fatal("corpus is missing partition-during-report.json")
		}
		found := false
		for _, fc := range res.FaultCtx {
			if fc.Kind == EvPartition && fc.ReportsInFlight > 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("no partition cut an in-flight report; contexts: %+v", res.FaultCtx)
		}
	})
}

// TestScheduleRoundTrip: WriteFile/ReadScheduleFile preserve a schedule
// exactly, and the version check rejects foreign files.
func TestScheduleRoundTrip(t *testing.T) {
	res, err := Run(Config{Seed: 9, Steps: 50})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sched.json")
	s := Schedule{Config: res.Config, Expect: ExpectClean, Events: res.Events}
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScheduleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != ScheduleVersion || got.Expect != ExpectClean {
		t.Fatalf("round trip lost metadata: %+v", got)
	}
	if len(got.Events) != len(res.Events) {
		t.Fatalf("round trip lost events: %d -> %d", len(res.Events), len(got.Events))
	}
	replayed := Replay(got.Config, got.Events)
	if replayed.Digest != res.Digest {
		t.Fatal("round-tripped schedule replays to a different digest")
	}
}

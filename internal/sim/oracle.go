package sim

import (
	"bytes"
	"fmt"
	"sort"

	"backtrace/internal/ids"
	"backtrace/internal/msg"
	"backtrace/internal/site"
)

// The oracles check the two properties the paper claims (Section 1):
//
//   - Safety — "only garbage is collected". After EVERY scheduler event the
//     safety oracle recomputes global reachability over the union heap (live
//     sites, crashed sites' durable checkpoints, and references carried by
//     in-flight transfer messages) and fails if a reachable reference
//     resolves to a deleted object, or if an inref the collector has flagged
//     Garbage (a back-trace verdict awaiting the sweep) is globally live.
//
//   - Completeness — "all garbage cycles are eventually collected". At the
//     end of a run, after faults heal and the drain rounds run, every
//     planted cycle must be gone; runs that never lost a message must also
//     reach zero global garbage and a consistent cross-site audit.

// globalAudits snapshots every site: live sites directly, crashed sites via
// the durable checkpoint captured at crash time (exactly what a future
// recovery resurrects, so it is the store's authoritative content).
func (w *world) globalAudits() (map[ids.SiteID]site.Audit, error) {
	audits := make(map[ids.SiteID]site.Audit, w.cfg.Sites)
	for i := 1; i <= w.cfg.Sites; i++ {
		id := ids.SiteID(i)
		if w.crashed[id] {
			ckptID, a, err := site.DecodeCheckpointAudit(bytes.NewReader(w.checkpoints[id]))
			if err != nil {
				return nil, fmt.Errorf("sim: audit crashed %v: %w", id, err)
			}
			if ckptID != id {
				return nil, fmt.Errorf("sim: checkpoint for %v names %v", id, ckptID)
			}
			audits[id] = a
			continue
		}
		audits[id] = w.cluster.Site(id).AuditSnapshot()
	}
	return audits, nil
}

// globalLive computes the reachable reference set over the union heap and
// reports dangling references discovered on live paths. Roots are: every
// persistent root (live and checkpointed sites alike — persistence survives
// crashes), every application root on live sites (mutator variables and
// protocol retentions), and the payload of every in-flight RefTransfer
// (the reference exists in the network even while no heap names it).
func (w *world) globalLive(audits map[ids.SiteID]site.Audit) (map[ids.Ref]struct{}, []string) {
	live := make(map[ids.Ref]struct{})
	var dangling []string
	var stack []ids.Ref
	push := func(r ids.Ref, from string) {
		if r.IsZero() {
			return
		}
		a, known := audits[r.Site]
		if !known {
			return
		}
		if _, seen := live[r]; seen {
			return
		}
		if _, exists := a.Objects[r.Obj]; !exists {
			if _, lost := w.crashLost[r]; lost {
				// The object died with a crash (volatile, not in the
				// durable image); the dangling reference is the crash's
				// doing, not an unsafe collection.
				return
			}
			dangling = append(dangling,
				fmt.Sprintf("safety: live reference %v (via %s) resolves to no object", r, from))
			return
		}
		live[r] = struct{}{}
		stack = append(stack, r)
	}
	for i := 1; i <= w.cfg.Sites; i++ {
		id := ids.SiteID(i)
		a := audits[id]
		for _, obj := range a.PersistentRoots {
			push(ids.MakeRef(id, obj), fmt.Sprintf("%v persistent root", id))
		}
		for _, r := range a.AppRoots {
			push(r, fmt.Sprintf("%v app root", id))
		}
	}
	for _, env := range w.cluster.Net().Pending() {
		from, to := env.From, env.To
		// Unwrap Batch envelopes: a transfer riding a piggybacked batch is
		// as live as one travelling alone.
		msg.Leaves(env.M, func(m msg.Message) {
			if rt, ok := m.(msg.RefTransfer); ok {
				push(rt.Payload, fmt.Sprintf("in-flight transfer %v->%v", from, to))
			}
		})
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range audits[r.Site].Objects[r.Obj] {
			push(f, r.String())
		}
	}
	return live, dangling
}

// persistentLive computes reachability from persistent roots alone over the
// final union heap. After drain the agents have retired (every mutator
// variable dropped, every in-flight transfer delivered and released), so
// persistent roots are the only legitimate source of liveness; anything
// else still holding an object is protocol retention the completeness
// oracle must not credit.
func (w *world) persistentLive() map[ids.Ref]struct{} {
	live := make(map[ids.Ref]struct{})
	audits, err := w.globalAudits()
	if err != nil {
		return live
	}
	var stack []ids.Ref
	push := func(r ids.Ref) {
		if r.IsZero() {
			return
		}
		a, known := audits[r.Site]
		if !known {
			return
		}
		if _, seen := live[r]; seen {
			return
		}
		if _, exists := a.Objects[r.Obj]; !exists {
			return
		}
		live[r] = struct{}{}
		stack = append(stack, r)
	}
	for i := 1; i <= w.cfg.Sites; i++ {
		id := ids.SiteID(i)
		for _, obj := range audits[id].PersistentRoots {
			push(ids.MakeRef(id, obj))
		}
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range audits[r.Site].Objects[r.Obj] {
			push(f)
		}
	}
	return live
}

// safetySnapshot is one safety-oracle evaluation plus the cheap state
// fingerprint the determinism digest folds in after every event.
type safetySnapshot struct {
	violations []string
	objects    int // total objects across all audits
	live       int // reachable references
}

// safety runs the safety oracle; empty violations mean the cut is safe.
// Deterministic: violations are sorted.
func (w *world) safety() safetySnapshot {
	audits, err := w.globalAudits()
	if err != nil {
		return safetySnapshot{violations: []string{err.Error()}}
	}
	live, violations := w.globalLive(audits)
	snap := safetySnapshot{live: len(live)}
	for i := 1; i <= w.cfg.Sites; i++ {
		id := ids.SiteID(i)
		snap.objects += len(audits[id].Objects)
		for _, obj := range audits[id].GarbageFlagged {
			if _, isLive := live[ids.MakeRef(id, obj)]; isLive {
				violations = append(violations,
					fmt.Sprintf("safety: %v flagged Garbage by a back trace but globally reachable", ids.MakeRef(id, obj)))
			}
		}
	}
	sort.Strings(violations)
	snap.violations = violations
	return snap
}

// completenessViolations runs the completeness oracle. Call it only after
// drain: faults healed, crashed sites restored, network quiet.
//
// The paper's eventual-collection claim assumes reliable links, so the
// oracle holds loss-free runs — no drop, no dup, no crash, no partition —
// to the full standard: every planted cycle collected (unless an agent
// linked it under a persistent root before retiring, in which case keeping
// it is correct), zero global garbage, and a consistent cross-site audit.
// Runs that lost messages are exempt: loss can legitimately leak retention
// — a destroyed ReleasePin pins its target forever, keeping whatever hangs
// off it alive — and the protocol has no release retransmission, exactly
// the reliable-delivery assumption the paper states. Safety, by contrast,
// is checked after every event of every run, faults or not.
func (w *world) completenessViolations() []string {
	if w.lossy {
		return nil
	}
	var violations []string
	persistent := w.persistentLive()
	for _, r := range w.rings {
		if _, live := persistent[r]; live {
			continue
		}
		if w.cluster.Site(r.Site).ContainsObject(r.Obj) {
			violations = append(violations,
				fmt.Sprintf("completeness: planted cycle object %v not collected", r))
		}
	}
	if g := w.cluster.GarbageCount(); g > 0 {
		violations = append(violations,
			fmt.Sprintf("completeness: %d garbage objects survive a loss-free run", g))
	}
	for _, v := range w.cluster.InvariantViolations() {
		violations = append(violations, "invariant: "+v)
	}
	sort.Strings(violations)
	return violations
}

package sim

import (
	"testing"

	"backtrace/internal/event"
)

// TestDeterminism is the replay contract: the same seed produces the
// identical run — event for event, log line for log line, digest for digest
// — and replaying the recorded schedule (no RNG) reproduces it again.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 7}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same seed, different digests:\n  %s\n  %s", a.Digest, b.Digest)
	}
	if len(a.EventLog) != len(b.EventLog) {
		t.Fatalf("same seed, different log lengths: %d vs %d", len(a.EventLog), len(b.EventLog))
	}
	for i := range a.EventLog {
		if a.EventLog[i] != b.EventLog[i] {
			t.Fatalf("log line %d differs:\n  %s\n  %s", i, a.EventLog[i], b.EventLog[i])
		}
	}

	r := Replay(cfg, a.Events)
	if r.Skipped != 0 {
		t.Fatalf("replay of a generated run skipped %d events", r.Skipped)
	}
	if r.Digest != a.Digest {
		t.Fatalf("replay digest differs from the generating run:\n  %s\n  %s", a.Digest, r.Digest)
	}
}

// TestDeterminismAcrossConfigs guards the digest against accidental
// dependence on ambient state: different seeds must (overwhelmingly) give
// different interleavings, and a config change must change the run.
func TestDeterminismAcrossConfigs(t *testing.T) {
	base, err := Run(Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	other, err := Run(Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if base.Digest == other.Digest {
		t.Fatal("different seeds produced the identical digest")
	}
	bigger, err := Run(Config{Seed: 11, Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	if base.Digest == bigger.Digest {
		t.Fatal("different site counts produced the identical digest")
	}
}

// TestSmokeSeeds is the regular-CI model-checking smoke: twenty seeds of
// the default world must pass both oracles.
func TestSmokeSeeds(t *testing.T) {
	rep, err := Explore(Config{}, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures > 0 {
		ff := rep.FirstFailure
		t.Fatalf("%d/%d seeds failed (first: seed %d, %v)",
			rep.Failures, rep.Seeds, rep.FailedSeeds[0], ff.Violations())
	}
	if rep.DistinctDigests < rep.Seeds {
		t.Fatalf("only %d distinct interleavings across %d seeds", rep.DistinctDigests, rep.Seeds)
	}
}

// TestRunExercisesTheCollector asserts a default run actually drives the
// machinery the oracles watch: messages deliver, back traces run and
// complete, garbage is collected, spans are emitted.
func TestRunExercisesTheCollector(t *testing.T) {
	res, err := Run(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("default run failed: %v", res.Violations())
	}
	if res.Delivered == 0 {
		t.Fatal("run delivered no messages")
	}
	if res.Spans == 0 {
		t.Fatal("run emitted no spans")
	}
	w := newWorld(res.Config)
	defer w.close()
	r := newRunner(w)
	for _, src := range res.Events {
		ev := src
		if r.apply(&ev) {
			r.res.Events = append(r.res.Events, ev)
			r.postEvent(ev)
		}
	}
	r.finish()
	var started, completed, collected int
	for _, e := range w.spans.events {
		switch e.Kind {
		case event.TraceStarted:
			started++
		case event.TraceCompleted:
			completed++
		case event.ObjectsCollected:
			collected += e.N
		}
	}
	if started == 0 || completed == 0 {
		t.Fatalf("run exercised no back traces (started=%d completed=%d)", started, completed)
	}
	if collected == 0 {
		t.Fatal("run collected no objects (planted cycles should die)")
	}
}

// TestBareCommitIsAFullRound: a trace_commit without a prior trace_begin
// computes and commits in one event, equivalent to an adjacent begin+commit
// pair.
func TestBareCommitIsAFullRound(t *testing.T) {
	bare := Replay(Config{}, []Event{{Kind: EvTraceCommit, Site: 1}})
	paired := Replay(Config{}, []Event{{Kind: EvTraceBegin, Site: 1}, {Kind: EvTraceCommit, Site: 1}})
	if bare.Skipped != 0 || paired.Skipped != 0 {
		t.Fatalf("skipped events: bare=%d paired=%d", bare.Skipped, paired.Skipped)
	}
	if bare.Failed() || paired.Failed() {
		t.Fatalf("violations: bare=%v paired=%v", bare.Violations(), paired.Violations())
	}
}

// TestDeliverBurst: a deliver with N>1 moves up to N messages in one
// scheduler event and renders distinctly in the log (the digest contract).
func TestDeliverBurst(t *testing.T) {
	res := Replay(Config{}, []Event{
		{Kind: EvTraceCommit, Site: 1}, // each commit queues one Update on 1->2
		{Kind: EvTraceCommit, Site: 1},
		{Kind: EvDeliver, A: 1, B: 2, N: 8},
	})
	if res.Skipped != 0 {
		t.Fatalf("burst deliver skipped (%d)", res.Skipped)
	}
	if res.Delivered < 2 {
		t.Fatalf("burst delivered %d messages, want the whole backlog", res.Delivered)
	}
	if n := len(res.Events); n != 3 {
		t.Fatalf("burst must be one scheduler event, schedule has %d events", n)
	}
	ev := Event{Kind: EvDeliver, A: 1, B: 2, N: 8}
	if got, want := ev.String(), "deliver S1->S2 x8"; got != want {
		t.Fatalf("burst String() = %q, want %q", got, want)
	}
}

// Package workload generates the synthetic object graphs the experiment
// harness sweeps: inter-site garbage rings, random cyclic graphs with
// tunable cross-site edge density, and hypertext document webs — the
// paper's motivating example of "large, complex cycles".
//
// A generator produces a Spec, an abstract placement-and-edges description
// that both the real cluster (Build) and the baseline collectors consume,
// so every algorithm in a comparison sees exactly the same graph.
package workload

import (
	"fmt"
	"math/rand"

	"backtrace/internal/cluster"
	"backtrace/internal/ids"
)

// ObjSpec describes one object: which site it lives on and whether it is a
// persistent root.
type ObjSpec struct {
	Site ids.SiteID
	Root bool
}

// Spec is an abstract multi-site object graph.
type Spec struct {
	// Name identifies the workload in experiment output.
	Name string
	// Sites is the number of sites (1..Sites).
	Sites int
	// Objects lists the objects; indices are the node identifiers that
	// Edges refers to.
	Objects []ObjSpec
	// Edges lists directed references as [from, to] object indices.
	Edges [][2]int
}

// Validate checks internal consistency.
func (s *Spec) Validate() error {
	for i, o := range s.Objects {
		if o.Site < 1 || int(o.Site) > s.Sites {
			return fmt.Errorf("workload %s: object %d on invalid site %v", s.Name, i, o.Site)
		}
	}
	for _, e := range s.Edges {
		for _, end := range e {
			if end < 0 || end >= len(s.Objects) {
				return fmt.Errorf("workload %s: edge endpoint %d out of range", s.Name, end)
			}
		}
	}
	return nil
}

// InterSiteEdges counts edges whose endpoints live on different sites —
// the E of the paper's 2E+P message-complexity formula.
func (s *Spec) InterSiteEdges() int {
	n := 0
	for _, e := range s.Edges {
		if s.Objects[e[0]].Site != s.Objects[e[1]].Site {
			n++
		}
	}
	return n
}

// SitesTouched returns the number of distinct sites holding objects — the
// P of the message-complexity formula when the whole spec is one cycle.
func (s *Spec) SitesTouched() int {
	set := make(map[ids.SiteID]struct{})
	for _, o := range s.Objects {
		set[o.Site] = struct{}{}
	}
	return len(set)
}

// Build instantiates the spec on a cluster, returning the created object
// references (indexed like Objects). Cross-site edges go through the full
// reference-passing protocol.
func Build(c *cluster.Cluster, s Spec) ([]ids.Ref, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	refsOut := make([]ids.Ref, len(s.Objects))
	for i, o := range s.Objects {
		st := c.Site(o.Site)
		if st == nil {
			return nil, fmt.Errorf("workload %s: cluster has no site %v", s.Name, o.Site)
		}
		if o.Root {
			refsOut[i] = st.NewRootObject()
		} else {
			refsOut[i] = st.NewObject()
		}
	}
	for _, e := range s.Edges {
		if err := c.Link(refsOut[e[0]], refsOut[e[1]]); err != nil {
			return nil, fmt.Errorf("workload %s: link %d->%d: %w", s.Name, e[0], e[1], err)
		}
	}
	return refsOut, nil
}

// --- generators -----------------------------------------------------------

// Ring builds a garbage cycle of one object per site across n sites: the
// minimal inter-site cycle family the message-complexity experiment
// sweeps.
func Ring(n int) Spec {
	s := Spec{Name: fmt.Sprintf("ring-%d", n), Sites: n}
	for i := 0; i < n; i++ {
		s.Objects = append(s.Objects, ObjSpec{Site: ids.SiteID(i + 1)})
	}
	for i := 0; i < n; i++ {
		s.Edges = append(s.Edges, [2]int{i, (i + 1) % n})
	}
	return s
}

// RootedRing is Ring plus a persistent root on site 1 referencing the
// first ring member — a live cycle for safety experiments.
func RootedRing(n int) Spec {
	s := Ring(n)
	s.Name = fmt.Sprintf("rooted-ring-%d", n)
	root := len(s.Objects)
	s.Objects = append(s.Objects, ObjSpec{Site: 1, Root: true})
	s.Edges = append(s.Edges, [2]int{root, 0})
	return s
}

// Chain builds an acyclic chain of one object per site, anchored at a
// persistent root on site 1 when rooted is true.
func Chain(n int, rooted bool) Spec {
	s := Spec{Name: fmt.Sprintf("chain-%d", n), Sites: n}
	for i := 0; i < n; i++ {
		s.Objects = append(s.Objects, ObjSpec{Site: ids.SiteID(i + 1)})
	}
	for i := 0; i+1 < n; i++ {
		s.Edges = append(s.Edges, [2]int{i, i + 1})
	}
	if rooted {
		root := len(s.Objects)
		s.Objects = append(s.Objects, ObjSpec{Site: 1, Root: true})
		s.Edges = append(s.Edges, [2]int{root, 0})
	}
	return s
}

// DenseCycle builds a strongly connected component of k objects per site
// over n sites, with every object referencing its successor and a random
// extra chord set — a worst-case cycle for message complexity (many
// inter-site references).
func DenseCycle(n, perSite int, chords int, seed int64) Spec {
	rng := rand.New(rand.NewSource(seed))
	total := n * perSite
	s := Spec{Name: fmt.Sprintf("dense-%dx%d", n, perSite), Sites: n}
	for i := 0; i < total; i++ {
		s.Objects = append(s.Objects, ObjSpec{Site: ids.SiteID(i%n + 1)})
	}
	for i := 0; i < total; i++ {
		s.Edges = append(s.Edges, [2]int{i, (i + 1) % total})
	}
	for c := 0; c < chords; c++ {
		from := rng.Intn(total)
		to := rng.Intn(total)
		s.Edges = append(s.Edges, [2]int{from, to})
	}
	return s
}

// RandomConfig parameterizes RandomGraph.
type RandomConfig struct {
	Sites   int
	Objects int
	// AvgOut is the mean out-degree; edges pick targets uniformly.
	AvgOut float64
	// RemoteProb is the probability an edge targets another site
	// (objects are clustered, so inter-site references are uncommon —
	// Section 2).
	RemoteProb float64
	// Roots is the number of persistent roots (placed round-robin).
	Roots int
	Seed  int64
}

// RandomGraph builds a clustered random graph: objects are placed
// round-robin on sites; each edge stays site-local with probability
// 1-RemoteProb.
func RandomGraph(cfg RandomConfig) Spec {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := Spec{
		Name:  fmt.Sprintf("random-%ds-%do", cfg.Sites, cfg.Objects),
		Sites: cfg.Sites,
	}
	bySite := make([][]int, cfg.Sites+1)
	for i := 0; i < cfg.Objects; i++ {
		site := ids.SiteID(i%cfg.Sites + 1)
		s.Objects = append(s.Objects, ObjSpec{Site: site, Root: i < cfg.Roots})
		bySite[site] = append(bySite[site], i)
	}
	nEdges := int(float64(cfg.Objects) * cfg.AvgOut)
	for e := 0; e < nEdges; e++ {
		from := rng.Intn(cfg.Objects)
		var to int
		if rng.Float64() < cfg.RemoteProb {
			to = rng.Intn(cfg.Objects)
		} else {
			local := bySite[s.Objects[from].Site]
			to = local[rng.Intn(len(local))]
		}
		s.Edges = append(s.Edges, [2]int{from, to})
	}
	return s
}

// HypertextConfig parameterizes HypertextWeb.
type HypertextConfig struct {
	Sites int
	// Docs is the number of documents; each is a set of pages with
	// next/prev/contents links forming cycles.
	Docs int
	// PagesPerDoc is the number of pages in each document.
	PagesPerDoc int
	// CrossLinks is the number of random links between documents.
	CrossLinks int
	// LiveFrac is the fraction of documents reachable from the root
	// directory; the rest are orphaned (deleted from the directory) and
	// form distributed garbage cycles.
	LiveFrac float64
	Seed     int64
}

// HypertextWeb models the paper's motivating example: hypertext documents
// whose pages form large, complex cycles spread across sites. Each
// document's pages are distributed round-robin over sites and linked
// next/prev plus back to a per-document table of contents; a root
// directory on site 1 references the table of contents of live documents.
func HypertextWeb(cfg HypertextConfig) Spec {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := Spec{
		Name:  fmt.Sprintf("hypertext-%dd", cfg.Docs),
		Sites: cfg.Sites,
	}
	dir := 0
	s.Objects = append(s.Objects, ObjSpec{Site: 1, Root: true}) // directory

	tocs := make([]int, cfg.Docs)
	pages := make([][]int, cfg.Docs)
	nextSite := 0
	place := func() ids.SiteID {
		nextSite++
		return ids.SiteID(nextSite%cfg.Sites + 1)
	}
	for d := 0; d < cfg.Docs; d++ {
		toc := len(s.Objects)
		tocs[d] = toc
		s.Objects = append(s.Objects, ObjSpec{Site: place()})
		for p := 0; p < cfg.PagesPerDoc; p++ {
			idx := len(s.Objects)
			s.Objects = append(s.Objects, ObjSpec{Site: place()})
			pages[d] = append(pages[d], idx)
		}
		// TOC references every page; pages link next/prev and back to
		// the TOC — plenty of cycles crossing sites.
		for i, p := range pages[d] {
			s.Edges = append(s.Edges, [2]int{toc, p})
			s.Edges = append(s.Edges, [2]int{p, toc})
			if i+1 < len(pages[d]) {
				s.Edges = append(s.Edges, [2]int{p, pages[d][i+1]})
				s.Edges = append(s.Edges, [2]int{pages[d][i+1], p})
			}
		}
		if rng.Float64() < cfg.LiveFrac {
			s.Edges = append(s.Edges, [2]int{dir, toc})
		}
	}
	for c := 0; c < cfg.CrossLinks; c++ {
		from := rng.Intn(cfg.Docs)
		to := rng.Intn(cfg.Docs)
		fp := pages[from][rng.Intn(len(pages[from]))]
		s.Edges = append(s.Edges, [2]int{fp, tocs[to]})
	}
	return s
}

package workload

import (
	"testing"

	"backtrace/internal/cluster"
)

func testCluster(n int) *cluster.Cluster {
	return cluster.New(cluster.Options{
		NumSites:           n,
		SuspicionThreshold: 3,
		BackThreshold:      7,
		ThresholdBump:      4,
		AutoBackTrace:      true,
	})
}

func TestRingSpec(t *testing.T) {
	s := Ring(4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Objects) != 4 || len(s.Edges) != 4 {
		t.Fatalf("ring-4: %d objects, %d edges", len(s.Objects), len(s.Edges))
	}
	if s.InterSiteEdges() != 4 {
		t.Fatalf("ring-4 inter-site edges = %d, want 4", s.InterSiteEdges())
	}
	if s.SitesTouched() != 4 {
		t.Fatalf("ring-4 sites = %d, want 4", s.SitesTouched())
	}
}

func TestRootedRingLive(t *testing.T) {
	c := testCluster(3)
	defer c.Close()
	refs, err := Build(c, RootedRing(3))
	if err != nil {
		t.Fatal(err)
	}
	c.RunRounds(15)
	for _, r := range refs {
		if !c.Site(r.Site).ContainsObject(r.Obj) {
			t.Fatalf("live object %v collected", r)
		}
	}
}

func TestRingBuildsCollectableGarbage(t *testing.T) {
	c := testCluster(3)
	defer c.Close()
	if _, err := Build(c, Ring(3)); err != nil {
		t.Fatal(err)
	}
	if g := c.GarbageCount(); g != 3 {
		t.Fatalf("garbage = %d, want 3", g)
	}
	_, collected := c.CollectUntilStable(40)
	if collected != 3 {
		t.Fatalf("collected %d, want 3", collected)
	}
}

func TestChainSpecs(t *testing.T) {
	unrooted := Chain(4, false)
	if unrooted.InterSiteEdges() != 3 {
		t.Fatalf("chain-4 inter-site edges = %d, want 3", unrooted.InterSiteEdges())
	}
	rooted := Chain(4, true)
	if len(rooted.Objects) != 5 {
		t.Fatal("rooted chain missing root object")
	}
	c := testCluster(4)
	defer c.Close()
	if _, err := Build(c, unrooted); err != nil {
		t.Fatal(err)
	}
	// Acyclic garbage needs no back tracing: local traces + updates
	// collect one link per round from the head.
	collected := c.RunRounds(6)
	if collected != 4 {
		t.Fatalf("chain collected = %d, want 4", collected)
	}
}

func TestDenseCycleValid(t *testing.T) {
	s := DenseCycle(4, 5, 10, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Objects) != 20 {
		t.Fatalf("objects = %d, want 20", len(s.Objects))
	}
	if len(s.Edges) != 30 {
		t.Fatalf("edges = %d, want 20 ring + 10 chords", len(s.Edges))
	}
}

func TestRandomGraphProperties(t *testing.T) {
	cfg := RandomConfig{Sites: 4, Objects: 100, AvgOut: 2, RemoteProb: 0.2, Roots: 3, Seed: 7}
	s := RandomGraph(cfg)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Objects) != 100 || len(s.Edges) != 200 {
		t.Fatalf("sizes wrong: %d objects %d edges", len(s.Objects), len(s.Edges))
	}
	roots := 0
	for _, o := range s.Objects {
		if o.Root {
			roots++
		}
	}
	if roots != 3 {
		t.Fatalf("roots = %d, want 3", roots)
	}
	// Clustering: far fewer inter-site edges than total.
	if is := s.InterSiteEdges(); is > 80 {
		t.Fatalf("inter-site edges = %d, too many for RemoteProb 0.2", is)
	}
	// Determinism.
	s2 := RandomGraph(cfg)
	if len(s2.Edges) != len(s.Edges) || s2.Edges[0] != s.Edges[0] {
		t.Fatal("RandomGraph not deterministic for fixed seed")
	}
}

func TestHypertextWebShape(t *testing.T) {
	cfg := HypertextConfig{Sites: 4, Docs: 6, PagesPerDoc: 5, CrossLinks: 4, LiveFrac: 0.5, Seed: 3}
	s := HypertextWeb(cfg)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	wantObjs := 1 + 6*(1+5)
	if len(s.Objects) != wantObjs {
		t.Fatalf("objects = %d, want %d", len(s.Objects), wantObjs)
	}
	if !s.Objects[0].Root {
		t.Fatal("directory not a root")
	}
	if s.InterSiteEdges() == 0 {
		t.Fatal("hypertext web has no inter-site edges")
	}
}

func TestHypertextEndToEndCollection(t *testing.T) {
	// Orphaned documents are distributed garbage cycles; the collector
	// must reclaim exactly them.
	c := testCluster(4)
	defer c.Close()
	cfg := HypertextConfig{Sites: 4, Docs: 5, PagesPerDoc: 4, CrossLinks: 0, LiveFrac: 0.4, Seed: 11}
	refs, err := Build(c, HypertextWeb(cfg))
	if err != nil {
		t.Fatal(err)
	}
	garbageBefore := c.GarbageCount()
	if garbageBefore == 0 {
		t.Skip("seed produced no orphaned documents")
	}
	rounds, collected := c.CollectUntilStable(60)
	t.Logf("hypertext: %d orphan objects collected in %d rounds", collected, rounds)
	if collected != garbageBefore {
		t.Fatalf("collected %d, want %d", collected, garbageBefore)
	}
	live := c.GlobalLive()
	for _, r := range refs {
		_, isLive := live[r]
		exists := c.Site(r.Site).ContainsObject(r.Obj)
		if isLive && !exists {
			t.Fatalf("live page %v collected", r)
		}
	}
	if got := c.InvariantViolations(); len(got) != 0 {
		t.Fatalf("invariants: %v", got)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := Spec{Name: "bad-site", Sites: 2, Objects: []ObjSpec{{Site: 5}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid site accepted")
	}
	bad2 := Spec{Name: "bad-edge", Sites: 1, Objects: []ObjSpec{{Site: 1}}, Edges: [][2]int{{0, 3}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	c := testCluster(1)
	defer c.Close()
	if _, err := Build(c, bad); err == nil {
		t.Fatal("Build accepted invalid spec")
	}
	tooManySites := Ring(3)
	if _, err := Build(c, tooManySites); err == nil {
		t.Fatal("Build accepted spec needing more sites than cluster has")
	}
}

package clock

import (
	"testing"
	"time"
)

func TestWallBasics(t *testing.T) {
	before := time.Now()
	got := Wall.Now()
	if got.Before(before.Add(-time.Second)) {
		t.Fatalf("Wall.Now() = %v, far before time.Now() = %v", got, before)
	}
	select {
	case <-Wall.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("Wall.After(1ms) never fired")
	}
}

func TestOrWall(t *testing.T) {
	if OrWall(nil) != Wall {
		t.Fatal("OrWall(nil) != Wall")
	}
	v := NewVirtual(time.Time{})
	if OrWall(v) != v {
		t.Fatal("OrWall(v) did not return v")
	}
}

func TestVirtualNowAndAdvance(t *testing.T) {
	v := NewVirtual(time.Time{})
	if !v.Now().Equal(Epoch) {
		t.Fatalf("fresh virtual clock at %v, want %v", v.Now(), Epoch)
	}
	v.Advance(3 * time.Second)
	if want := Epoch.Add(3 * time.Second); !v.Now().Equal(want) {
		t.Fatalf("after Advance(3s): %v, want %v", v.Now(), want)
	}
	v.Advance(-time.Hour) // negative advances clamp to zero
	if want := Epoch.Add(3 * time.Second); !v.Now().Equal(want) {
		t.Fatalf("negative advance moved the clock: %v, want %v", v.Now(), want)
	}
}

func TestVirtualAfterFiresOnAdvance(t *testing.T) {
	v := NewVirtual(time.Time{})
	ch := v.After(100 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("timer fired before any Advance")
	default:
	}
	v.Advance(50 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("timer fired before its deadline")
	default:
	}
	v.Advance(50 * time.Millisecond)
	select {
	case at := <-ch:
		if want := Epoch.Add(100 * time.Millisecond); !at.Equal(want) {
			t.Fatalf("timer fired with time %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
}

func TestVirtualAfterNonPositive(t *testing.T) {
	v := NewVirtual(time.Time{})
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-v.After(-time.Second):
	default:
		t.Fatal("After(-1s) did not fire immediately")
	}
}

func TestVirtualNextTimer(t *testing.T) {
	v := NewVirtual(time.Time{})
	if _, ok := v.NextTimer(); ok {
		t.Fatal("fresh clock reports a pending timer")
	}
	v.After(200 * time.Millisecond)
	v.After(100 * time.Millisecond)
	at, ok := v.NextTimer()
	if !ok || !at.Equal(Epoch.Add(100*time.Millisecond)) {
		t.Fatalf("NextTimer = %v, %v; want %v, true", at, ok, Epoch.Add(100*time.Millisecond))
	}
	v.Advance(time.Second)
	if _, ok := v.NextTimer(); ok {
		t.Fatal("timers still pending after Advance past every deadline")
	}
}

func TestVirtualSleepWakesOnAdvance(t *testing.T) {
	v := NewVirtual(time.Time{})
	done := make(chan struct{})
	go func() {
		v.Sleep(10 * time.Millisecond)
		close(done)
	}()
	// Advance repeatedly until the sleeper registered its timer and woke.
	deadline := time.After(5 * time.Second)
	for {
		v.Advance(10 * time.Millisecond)
		select {
		case <-done:
			return
		case <-deadline:
			t.Fatal("virtual Sleep never woke")
		case <-time.After(time.Millisecond):
		}
	}
}

// Package clock abstracts time for the collector's runtime components.
//
// Every component that reads the wall clock (span timestamps, retransmission
// deadlines, mailbox queue-delay accounting, quiesce timeouts) does so
// through a Clock. Production code uses Wall, which delegates to the time
// package. The deterministic simulation harness (internal/sim) injects a
// Virtual clock, which advances only when the simulation scheduler says so:
// the same schedule then produces byte-for-byte identical timestamps, span
// trees, and timeout firings on every run.
package clock

import (
	"sync"
	"time"
)

// Clock is the time source injected into sites, transports, and mailboxes.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that receives the clock's time once, when at
	// least d has elapsed. For Wall this is time.After; for Virtual the
	// channel fires when Advance moves the clock past the deadline.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until at least d has elapsed on this clock.
	Sleep(d time.Duration)
}

// --- wall clock ----------------------------------------------------------

type wallClock struct{}

func (wallClock) Now() time.Time                         { return time.Now() }
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (wallClock) Sleep(d time.Duration)                  { time.Sleep(d) }

// Wall is the real-time clock backed by the time package.
var Wall Clock = wallClock{}

// OrWall returns c, or Wall when c is nil — the defaulting rule every
// component applies to its optional Clock configuration field.
func OrWall(c Clock) Clock {
	if c == nil {
		return Wall
	}
	return c
}

// --- virtual clock -------------------------------------------------------

// Virtual is a manually advanced clock. Now returns the virtual time, which
// moves only through Advance (or Set). Timers created with After fire when
// an Advance carries the clock to or past their deadline, in deadline order.
//
// Virtual is safe for concurrent use, but the deterministic simulation uses
// it single-threaded: one scheduler goroutine advances time between events.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*virtualWaiter // unordered; scanned on Advance
}

type virtualWaiter struct {
	at time.Time
	ch chan time.Time
}

// Epoch is the default start instant for virtual clocks: an arbitrary fixed
// UTC time, so virtual timestamps are stable across runs, machines, and
// time zones.
var Epoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// NewVirtual returns a virtual clock starting at start; a zero start means
// Epoch.
func NewVirtual(start time.Time) *Virtual {
	if start.IsZero() {
		start = Epoch
	}
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock. A non-positive d fires immediately.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.mu.Lock()
	defer v.mu.Unlock()
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.waiters = append(v.waiters, &virtualWaiter{at: v.now.Add(d), ch: ch})
	return ch
}

// Sleep implements Clock: it blocks until another goroutine advances the
// clock past the deadline. Never call it from the goroutine that drives
// Advance.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// Advance moves the clock forward by d and fires every timer whose deadline
// has been reached, earliest first.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	now := v.now
	var due []*virtualWaiter
	kept := v.waiters[:0]
	for _, w := range v.waiters {
		if !w.at.After(now) {
			due = append(due, w)
		} else {
			kept = append(kept, w)
		}
	}
	v.waiters = kept
	v.mu.Unlock()
	// Fire outside the lock, earliest deadline first, so waiters observe a
	// deterministic wake order.
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && due[j].at.Before(due[j-1].at); j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	for _, w := range due {
		w.ch <- now
	}
}

// NextTimer reports the earliest pending timer deadline, if any. The
// simulation scheduler uses it to jump virtual time straight to the next
// event instead of ticking.
func (v *Virtual) NextTimer() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	var best time.Time
	ok := false
	for _, w := range v.waiters {
		if !ok || w.at.Before(best) {
			best, ok = w.at, true
		}
	}
	return best, ok
}

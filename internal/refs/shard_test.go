package refs

import (
	"reflect"
	"testing"

	"backtrace/internal/ids"
)

// TestInrefShardCacheInvalidation is the regression test for the per-shard
// sorted cache: a membership change in one shard must rebuild only that
// shard's order on the next Inrefs() call, while the other shards keep
// contributing their cached slices to the k-way merge.
func TestInrefShardCacheInvalidation(t *testing.T) {
	const shards = 4
	tbl := NewTableSharded(1, 8, shards)
	if got := tbl.NumShards(); got != shards {
		t.Fatalf("NumShards = %d, want %d", got, shards)
	}
	// One inref per shard (hash sharding is obj % shards).
	for obj := ids.ObjID(1); obj <= 8; obj++ {
		tbl.AddSource(obj, 2)
	}

	rebuilds := func() []int {
		out := make([]int, shards)
		for i := range out {
			out[i] = tbl.InrefShardRebuilds(i)
		}
		return out
	}

	tbl.Inrefs()
	base := rebuilds()
	for i, n := range base {
		if n != 1 {
			t.Fatalf("shard %d rebuilt %d times after first Inrefs, want 1", i, n)
		}
	}

	// Non-membership mutation: distance updates must not invalidate any
	// shard's sorted order.
	tbl.SetSourceDistance(3, 2, 7)
	tbl.Inrefs()
	if got := rebuilds(); !reflect.DeepEqual(got, base) {
		t.Fatalf("distance update invalidated sorted caches: rebuilds %v, want %v", got, base)
	}

	// Membership change in shard 1 (obj 9 hashes to 9 % 4 = 1): only that
	// shard may rebuild.
	target := tbl.ShardOf(9)
	tbl.AddSource(9, 2)
	tbl.Inrefs()
	want := append([]int(nil), base...)
	want[target]++
	if got := rebuilds(); !reflect.DeepEqual(got, want) {
		t.Fatalf("after insert in shard %d: rebuilds %v, want %v", target, got, want)
	}

	// Removal in a different shard: again only that shard rebuilds.
	target2 := tbl.ShardOf(6)
	tbl.RemoveInref(6)
	tbl.Inrefs()
	want[target2]++
	if got := rebuilds(); !reflect.DeepEqual(got, want) {
		t.Fatalf("after remove in shard %d: rebuilds %v, want %v", target2, got, want)
	}
}

// TestShardedInrefsSorted checks the cross-shard merge: hash sharding
// interleaves identifiers, so Inrefs() must still come back globally sorted
// and identical to the single-shard table's view of the same contents.
func TestShardedInrefsSorted(t *testing.T) {
	sharded := NewTableSharded(1, 8, 5)
	flat := NewTable(1, 8)
	for _, obj := range []ids.ObjID{17, 3, 25, 4, 11, 2, 9, 30, 1} {
		sharded.AddSource(obj, 2)
		flat.AddSource(obj, 2)
	}
	got := sharded.Inrefs()
	want := flat.Inrefs()
	if len(got) != len(want) {
		t.Fatalf("sharded Inrefs has %d entries, flat has %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Obj != want[i].Obj {
			t.Fatalf("position %d: sharded obj %v, flat obj %v", i, got[i].Obj, want[i].Obj)
		}
		if i > 0 && got[i-1].Obj >= got[i].Obj {
			t.Fatalf("Inrefs not strictly sorted at %d: %v >= %v", i, got[i-1].Obj, got[i].Obj)
		}
	}
}

// Package refs implements a site's tables of inter-site references: the
// inref table (incoming references with their source lists and per-source
// distance estimates) and the outref table (outgoing references with their
// distance estimates and insert-barrier pins), as described in Sections 2,
// 3, and 6 of the paper.
//
// Terminology follows the paper: an *inref* records that remote sites hold
// references to a local object; an *outref* records that this site holds a
// reference to a remote object; *iorefs* are both collectively. An ioref is
// *clean* if it is presumed reachable from a persistent root — because its
// estimated distance is at or below the suspicion threshold, because the
// transfer barrier cleaned it (Section 6.1.1), or, for outrefs, because it
// is pinned by the insert barrier (Section 6.1.2) or held by a mutator
// variable. Otherwise it is *suspected*.
//
// Like package heap, the tables are hash-sharded by object identifier: each
// shard owns its own lock, its own sorted-order cache, its own dirty set,
// and its own slice of the copy-on-write trace snapshot. Protocol-level
// mutation still runs under the owning Site's write lock; the shard locks
// make single-entry reads safe against the concurrent snapshot patching
// and introspection the sharded site allows.
package refs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"backtrace/internal/ids"
)

// DistInfinity is the distance of garbage: no path from any persistent
// root. Arithmetic never overflows because propagation adds at most one per
// step and saturates.
const DistInfinity = math.MaxInt32

// AddDist adds a hop count to a distance, saturating at DistInfinity.
func AddDist(d, hops int) int {
	if d >= DistInfinity-hops {
		return DistInfinity
	}
	return d + hops
}

// Inref is one entry in the inref table: a local object that remote sites
// hold references to (Section 2, Figure 1).
type Inref struct {
	// Obj is the local object the incoming references point to.
	Obj ids.ObjID
	// Sources maps each source site known to hold the reference to the
	// estimated distance via that source (Section 3: "A distance field is
	// associated with each source site in an inref").
	Sources map[ids.SiteID]int
	// Barrier is true while the transfer barrier holds this inref clean;
	// the next local trace resets it (Section 6.1.1).
	Barrier bool
	// Garbage is set when a back trace confirmed this inref garbage in
	// its report phase; the local trace then stops using it as a root
	// (Section 4.5).
	Garbage bool
	// BackThreshold is this ioref's personal back-trace trigger. It
	// starts at the configured T2 and is raised each time a back trace
	// visits the ioref, so live suspects stop generating traces
	// (Section 4.3).
	BackThreshold int
	// Visited holds the back traces that have visited this inref and not
	// yet completed (Section 4.4, Section 4.7), mapped to the batch
	// suspect index on whose behalf the visit happened (always 0 for
	// single-suspect traces).
	Visited map[ids.TraceID]uint32
}

// Distance returns the inref's distance: the smallest distance over its
// sources, or DistInfinity if the source list is empty.
func (in *Inref) Distance() int {
	d := DistInfinity
	for _, sd := range in.Sources {
		if sd < d {
			d = sd
		}
	}
	return d
}

// IsClean reports whether the inref is clean at the given suspicion
// threshold. A garbage-flagged inref is never clean.
func (in *Inref) IsClean(threshold int) bool {
	if in.Garbage {
		return false
	}
	return in.Barrier || in.Distance() <= threshold
}

// SourceSites returns the source sites in ascending order.
func (in *Inref) SourceSites() []ids.SiteID {
	out := make([]ids.SiteID, 0, len(in.Sources))
	for s := range in.Sources {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MarkVisited records a back trace's visit on behalf of a batch suspect;
// it reports whether the trace had already visited (in which case the
// caller returns Garbage immediately, Section 4.4) along with the suspect
// that owns the existing mark.
func (in *Inref) MarkVisited(t ids.TraceID, suspect uint32) (owner uint32, already bool) {
	if owner, ok := in.Visited[t]; ok {
		return owner, true
	}
	if in.Visited == nil {
		in.Visited = make(map[ids.TraceID]uint32)
	}
	in.Visited[t] = suspect
	return suspect, false
}

// ClearVisited removes a completed trace's visit mark.
func (in *Inref) ClearVisited(t ids.TraceID) {
	delete(in.Visited, t)
}

// Outref is one entry in the outref table: a remote object this site holds
// a reference to (Section 2, Figure 1).
type Outref struct {
	// Target is the remote object referenced.
	Target ids.Ref
	// Distance is the estimated distance propagated by local traces
	// (Section 3).
	Distance int
	// Pins counts insert-barrier holds: while positive, the outref is
	// retained and clean regardless of distance (Section 6.1.2).
	Pins int
	// Barrier is true while the transfer barrier holds this outref clean;
	// the next local trace resets it (Section 6.1.1).
	Barrier bool
	// BackThreshold is this ioref's personal back-trace trigger
	// (Section 4.3); see Inref.BackThreshold.
	BackThreshold int
	// Visited holds the back traces currently marking this outref
	// (Section 4.4), mapped to the owning batch suspect index; see
	// Inref.Visited.
	Visited map[ids.TraceID]uint32
}

// IsClean reports whether the outref is clean at the given suspicion
// threshold. Cleanliness follows the paper's trace-based definition:
// "inrefs with distances ≤ the threshold — and objects and outrefs traced
// from them — are said to be clean" (Section 3). An outref's distance is
// one plus the distance of the inref (or root) it was traced from, so an
// outref is clean iff its distance is at most threshold+1. (Comparing
// against the bare threshold would wrongly suspect a live outref traced
// from a clean inref sitting exactly at the threshold; its inset contains
// no suspected inrefs, so a back trace would confirm live objects garbage.)
func (o *Outref) IsClean(threshold int) bool {
	return o.Barrier || o.Pins > 0 || o.Distance <= threshold+1
}

// MarkVisited records a back trace's visit on behalf of a batch suspect;
// see Inref.MarkVisited.
func (o *Outref) MarkVisited(t ids.TraceID, suspect uint32) (owner uint32, already bool) {
	if owner, ok := o.Visited[t]; ok {
		return owner, true
	}
	if o.Visited == nil {
		o.Visited = make(map[ids.TraceID]uint32)
	}
	o.Visited[t] = suspect
	return suspect, false
}

// ClearVisited removes a completed trace's visit mark.
func (o *Outref) ClearVisited(t ids.TraceID) {
	delete(o.Visited, t)
}

// inShard is one hash partition of the inref table. Each shard caches its
// own sorted order: a membership change invalidates only that shard's
// cache, so the per-trace sorted scan rebuilds O(changed shards), not the
// whole table.
type inShard struct {
	mu     sync.RWMutex
	inrefs map[ids.ObjID]*Inref

	// sorted caches this shard's inrefs ordered by object identifier; it
	// is invalidated only when shard membership changes (insert or
	// remove), not on distance or flag updates. rebuilds counts cache
	// rebuilds, as instrumentation for the per-shard invalidation
	// regression test.
	sorted      []*Inref
	sortedValid bool
	rebuilds    int

	dirtyIn map[ids.ObjID]struct{}
}

// outShard is one hash partition of the outref table.
type outShard struct {
	mu       sync.RWMutex
	outrefs  map[ids.Ref]*Outref
	dirtyOut map[ids.Ref]struct{}
}

// Table holds one site's inref and outref tables.
type Table struct {
	site ids.SiteID
	ins  []*inShard
	outs []*outShard

	// defaultBackThreshold initializes the BackThreshold of new iorefs
	// (the paper's T2, Section 4.3).
	defaultBackThreshold int

	// merged caches the table-wide Inrefs() ordering, built by merging
	// the per-shard sorted caches. mergedValid is atomic because
	// different-shard membership changes may invalidate it concurrently;
	// mergedMu serializes the rebuild against concurrent readers.
	mergedMu    sync.Mutex
	merged      []*Inref
	mergedValid atomic.Bool

	// --- incremental-trace write barrier (see TraceSnapshot) ---

	// tracking is written only while whole-table exclusion holds
	// (construction or the site write lock). dirtyIn/dirtyOut live on the
	// shards: obj/ref entries whose tracer-visible state may differ from
	// snap. Tracer-invisible fields (Barrier, Pins, outref Distance,
	// BackThreshold, Visited) are not tracked.
	tracking bool
	snap     *Table
}

// Delta describes how the tracer-visible table state changed between two
// TraceSnapshot calls. Like heap.Delta, classification happens at snapshot
// time against the shadow copy, so changes that cancel out produce no
// entries.
//
// An inref is "improved" when its effective root distance decreased: a new
// inref appeared, a source distance dropped, or the minimum over sources
// fell. It is "worsened" when the distance rose, the inref vanished, or it
// was flagged garbage — changes that can only be absorbed by a full trace.
// Outref removals are likewise treated as invalidating (the missing-outref
// check of a full trace could newly fire); additions only extend the
// untraced scan and are monotone.
type Delta struct {
	Full bool

	InrefsImproved []ids.ObjID
	InrefsWorsened []ids.ObjID
	OutrefsAdded   []ids.Ref
	OutrefsRemoved []ids.Ref
}

// Empty reports whether the delta records no tracer-visible change.
func (d *Delta) Empty() bool {
	return !d.Full &&
		len(d.InrefsImproved) == 0 && len(d.InrefsWorsened) == 0 &&
		len(d.OutrefsAdded) == 0 && len(d.OutrefsRemoved) == 0
}

// Invalidating reports whether the delta contains a change the monotone
// incremental remark cannot absorb exactly.
func (d *Delta) Invalidating() bool {
	return len(d.InrefsWorsened) > 0 || len(d.OutrefsRemoved) > 0
}

// Size returns the number of changed entries (for the dirty-ratio knob).
func (d *Delta) Size() int {
	return len(d.InrefsImproved) + len(d.InrefsWorsened) +
		len(d.OutrefsAdded) + len(d.OutrefsRemoved)
}

// NewTable creates empty single-shard tables for a site. backThreshold is
// the initial per-ioref back threshold T2.
func NewTable(site ids.SiteID, backThreshold int) *Table {
	return NewTableSharded(site, backThreshold, 1)
}

// NewTableSharded creates empty tables with the given shard count (clamped
// to at least 1). Sites pass the same count as their heap so inrefs and
// marks partition identically.
func NewTableSharded(site ids.SiteID, backThreshold int, shards int) *Table {
	if shards < 1 {
		shards = 1
	}
	t := &Table{
		site:                 site,
		ins:                  make([]*inShard, shards),
		outs:                 make([]*outShard, shards),
		defaultBackThreshold: backThreshold,
	}
	for i := range t.ins {
		t.ins[i] = &inShard{inrefs: make(map[ids.ObjID]*Inref)}
		t.outs[i] = &outShard{outrefs: make(map[ids.Ref]*Outref)}
	}
	return t
}

// Site returns the owning site.
func (t *Table) Site() ids.SiteID { return t.site }

// NumShards returns the table's shard count.
func (t *Table) NumShards() int { return len(t.ins) }

// ShardOf returns the shard index owning an object identifier; it matches
// heap.ShardOf for a heap of the same shard count.
func (t *Table) ShardOf(obj ids.ObjID) int {
	return int(uint64(obj) % uint64(len(t.ins)))
}

func (t *Table) inShardFor(obj ids.ObjID) *inShard { return t.ins[t.ShardOf(obj)] }

func (t *Table) outShardFor(r ids.Ref) *outShard { return t.outs[t.ShardOf(r.Obj)] }

// InrefShardRebuilds returns how many times shard i's sorted cache has been
// rebuilt (test instrumentation for per-shard cache invalidation).
func (t *Table) InrefShardRebuilds(i int) int {
	sh := t.ins[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.rebuilds
}

// EnableDeltaTracking turns on the write barrier that records dirty
// entries for TraceSnapshot. Sites configured for incremental tracing call
// this once at construction; it requires whole-table exclusion.
func (t *Table) EnableDeltaTracking() {
	if t.tracking {
		return
	}
	t.tracking = true
	for i := range t.ins {
		t.ins[i].dirtyIn = make(map[ids.ObjID]struct{})
		t.outs[i].dirtyOut = make(map[ids.Ref]struct{})
	}
}

// The touch helpers run with the shard lock held.

func (t *Table) touchIn(sh *inShard, obj ids.ObjID) {
	if t.tracking {
		sh.dirtyIn[obj] = struct{}{}
	}
}

func (t *Table) touchOut(sh *outShard, target ids.Ref) {
	if t.tracking {
		sh.dirtyOut[target] = struct{}{}
	}
}

// --- inrefs --------------------------------------------------------------

// Inref returns the inref for a local object, if present.
func (t *Table) Inref(obj ids.ObjID) (*Inref, bool) {
	sh := t.inShardFor(obj)
	sh.mu.RLock()
	in, ok := sh.inrefs[obj]
	sh.mu.RUnlock()
	return in, ok
}

// EnsureInref returns the inref for obj, creating an empty one if absent.
func (t *Table) EnsureInref(obj ids.ObjID) *Inref {
	sh := t.inShardFor(obj)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	in, ok := sh.inrefs[obj]
	if !ok {
		in = &Inref{
			Obj:           obj,
			Sources:       make(map[ids.SiteID]int),
			BackThreshold: t.defaultBackThreshold,
		}
		sh.inrefs[obj] = in
		sh.sortedValid = false
		t.mergedValid.Store(false)
		t.touchIn(sh, obj)
	}
	return in
}

// AddSource records that a source site holds a reference to obj. If the
// source is new its distance is conservatively set to 1 (Section 3); an
// existing source's distance is left unchanged.
func (t *Table) AddSource(obj ids.ObjID, src ids.SiteID) *Inref {
	sh := t.inShardFor(obj)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	in, ok := sh.inrefs[obj]
	if !ok {
		in = &Inref{
			Obj:           obj,
			Sources:       make(map[ids.SiteID]int),
			BackThreshold: t.defaultBackThreshold,
		}
		sh.inrefs[obj] = in
		sh.sortedValid = false
		t.mergedValid.Store(false)
		t.touchIn(sh, obj)
	}
	if _, ok := in.Sources[src]; !ok {
		in.Sources[src] = 1
		t.touchIn(sh, obj)
	}
	return in
}

// SetSourceDistance updates the distance for one source of obj's inref, if
// both exist (distance changes arrive in update messages, Section 3).
func (t *Table) SetSourceDistance(obj ids.ObjID, src ids.SiteID, dist int) {
	sh := t.inShardFor(obj)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	in, ok := sh.inrefs[obj]
	if !ok {
		return
	}
	if old, ok := in.Sources[src]; !ok || old == dist {
		return
	}
	in.Sources[src] = dist
	t.touchIn(sh, obj)
}

// RemoveSource removes src from obj's source list (the sender trimmed its
// outref); an inref whose source list empties is removed entirely and the
// removal is reported (Section 2: "An inref with an empty source list is
// removed").
func (t *Table) RemoveSource(obj ids.ObjID, src ids.SiteID) (removedInref bool) {
	sh := t.inShardFor(obj)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	in, ok := sh.inrefs[obj]
	if !ok {
		return false
	}
	if _, had := in.Sources[src]; had {
		delete(in.Sources, src)
		t.touchIn(sh, obj)
	}
	if len(in.Sources) == 0 {
		delete(sh.inrefs, obj)
		sh.sortedValid = false
		t.mergedValid.Store(false)
		t.touchIn(sh, obj)
		return true
	}
	return false
}

// RemoveInref deletes an inref outright (collector cleanup).
func (t *Table) RemoveInref(obj ids.ObjID) {
	sh := t.inShardFor(obj)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.inrefs[obj]; !ok {
		return
	}
	delete(sh.inrefs, obj)
	sh.sortedValid = false
	t.mergedValid.Store(false)
	t.touchIn(sh, obj)
}

// FlagGarbage sets the inref's garbage flag (a back trace confirmed it
// garbage in its report phase, Section 4.5). Routed through the table so
// incremental tracing sees the root disappear.
func (t *Table) FlagGarbage(obj ids.ObjID) {
	sh := t.inShardFor(obj)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	in, ok := sh.inrefs[obj]
	if !ok || in.Garbage {
		return
	}
	in.Garbage = true
	t.touchIn(sh, obj)
}

// sortedLocked returns the shard's sorted cache, rebuilding it if
// membership changed since the last call. Caller holds sh.mu.
func (sh *inShard) sortedLocked() []*Inref {
	if !sh.sortedValid {
		sh.sorted = sh.sorted[:0]
		for _, in := range sh.inrefs {
			sh.sorted = append(sh.sorted, in)
		}
		sort.Slice(sh.sorted, func(i, j int) bool { return sh.sorted[i].Obj < sh.sorted[j].Obj })
		sh.sortedValid = true
		sh.rebuilds++
	}
	return sh.sorted
}

// Inrefs returns all inrefs ordered by object identifier. The slice is a
// cache owned by the table: callers must not modify it, and it is valid
// until the next insert or remove. A membership change rebuilds only the
// sorted order of the shard it happened in; unchanged shards contribute
// their cached order to the merge.
func (t *Table) Inrefs() []*Inref {
	t.mergedMu.Lock()
	defer t.mergedMu.Unlock()
	if t.mergedValid.Load() {
		return t.merged
	}
	if len(t.ins) == 1 {
		sh := t.ins[0]
		sh.mu.Lock()
		t.merged = sh.sortedLocked()
		sh.mu.Unlock()
		t.mergedValid.Store(true)
		return t.merged
	}
	parts := make([][]*Inref, len(t.ins))
	total := 0
	for i, sh := range t.ins {
		sh.mu.Lock()
		parts[i] = sh.sortedLocked()
		sh.mu.Unlock()
		total += len(parts[i])
	}
	t.merged = mergeSortedInrefs(parts, t.merged[:0], total)
	t.mergedValid.Store(true)
	return t.merged
}

// mergeSortedInrefs k-way merges per-shard sorted slices into dst. Hash
// sharding interleaves identifiers across shards, so concatenation is not
// sorted; the merge repeatedly takes the smallest head.
func mergeSortedInrefs(parts [][]*Inref, dst []*Inref, total int) []*Inref {
	if cap(dst) < total {
		dst = make([]*Inref, 0, total)
	}
	heads := make([]int, len(parts))
	for len(dst) < total {
		best := -1
		for i, p := range parts {
			if heads[i] >= len(p) {
				continue
			}
			if best < 0 || p[heads[i]].Obj < parts[best][heads[best]].Obj {
				best = i
			}
		}
		dst = append(dst, parts[best][heads[best]])
		heads[best]++
	}
	return dst
}

// NumInrefs returns the number of inrefs.
func (t *Table) NumInrefs() int {
	n := 0
	for _, sh := range t.ins {
		sh.mu.RLock()
		n += len(sh.inrefs)
		sh.mu.RUnlock()
	}
	return n
}

// EachInref invokes fn for every inref in unspecified order, without
// allocating (for order-insensitive scans like update reconciliation).
// fn must not add or remove inrefs.
func (t *Table) EachInref(fn func(*Inref)) {
	for _, sh := range t.ins {
		sh.mu.RLock()
		for _, in := range sh.inrefs {
			fn(in)
		}
		sh.mu.RUnlock()
	}
}

// EachInrefInShard invokes fn for every inref in one shard, in unspecified
// order, holding the shard read lock (for the parallel tracer's root scan).
func (t *Table) EachInrefInShard(i int, fn func(*Inref)) {
	sh := t.ins[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, in := range sh.inrefs {
		fn(in)
	}
}

// --- outrefs -------------------------------------------------------------

// Outref returns the outref for a remote target, if present.
func (t *Table) Outref(target ids.Ref) (*Outref, bool) {
	sh := t.outShardFor(target)
	sh.mu.RLock()
	o, ok := sh.outrefs[target]
	sh.mu.RUnlock()
	return o, ok
}

// EnsureOutref returns the outref for target, creating one if absent. A
// freshly created outref starts with distance 1 (the most optimistic
// estimate for a reference that just arrived; the next local trace and
// update messages will correct it) and with the transfer-barrier clean mark
// set, since a new outref is only created when a mutator is actively
// passing the reference (Section 6.1.2, case 4: "Y creates a clean outref
// for z").
func (t *Table) EnsureOutref(target ids.Ref) (o *Outref, created bool) {
	sh := t.outShardFor(target)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	o, ok := sh.outrefs[target]
	if !ok {
		o = &Outref{
			Target:        target,
			Distance:      1,
			Barrier:       true,
			BackThreshold: t.defaultBackThreshold,
		}
		sh.outrefs[target] = o
		created = true
		t.touchOut(sh, target)
	}
	return o, created
}

// RemoveOutref deletes an outref (trimmed after a local trace).
func (t *Table) RemoveOutref(target ids.Ref) {
	sh := t.outShardFor(target)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.outrefs[target]; !ok {
		return
	}
	delete(sh.outrefs, target)
	t.touchOut(sh, target)
}

// Outrefs returns all outrefs ordered by target reference.
func (t *Table) Outrefs() []*Outref {
	out := make([]*Outref, 0, t.NumOutrefs())
	for _, sh := range t.outs {
		sh.mu.RLock()
		for _, o := range sh.outrefs {
			out = append(out, o)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target.Less(out[j].Target) })
	return out
}

// NumOutrefs returns the number of outrefs.
func (t *Table) NumOutrefs() int {
	n := 0
	for _, sh := range t.outs {
		sh.mu.RLock()
		n += len(sh.outrefs)
		sh.mu.RUnlock()
	}
	return n
}

// EachOutrefInShard invokes fn for every outref in one shard, in
// unspecified order, holding the shard read lock.
func (t *Table) EachOutrefInShard(i int, fn func(*Outref)) {
	sh := t.outs[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, o := range sh.outrefs {
		fn(o)
	}
}

// Pin increments the insert-barrier pin count of the outref for target,
// creating the outref if needed (the sender must retain it).
func (t *Table) Pin(target ids.Ref) *Outref {
	o, _ := t.EnsureOutref(target)
	o.Pins++
	return o
}

// Unpin decrements the pin count; it is a no-op if the outref is missing or
// unpinned (a duplicate ReleasePin after message retry is harmless).
func (t *Table) Unpin(target ids.Ref) {
	o, ok := t.Outref(target)
	if !ok {
		return
	}
	if o.Pins > 0 {
		o.Pins--
	}
}

// eachShardConcurrent runs fn(i) for every shard index, on one goroutine
// per shard when the table has more than one.
func (t *Table) eachShardConcurrent(fn func(i int)) {
	if len(t.ins) == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for i := range t.ins {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// Snapshot returns a deep copy of both tables for use by an off-lock local
// trace; shards are copied concurrently. Everything the tracer reads is
// copied — source lists with distances, barrier and garbage flags, pins,
// distances, back thresholds. The per-trace Visited marks are deliberately
// NOT carried over: they belong to the live table (the back-tracing engine
// mutates them under the site lock) and the tracer never reads them.
func (t *Table) Snapshot() *Table {
	cp := NewTableSharded(t.site, t.defaultBackThreshold, len(t.ins))
	t.eachShardConcurrent(func(i int) {
		src, dst := t.ins[i], cp.ins[i]
		src.mu.RLock()
		dst.inrefs = make(map[ids.ObjID]*Inref, len(src.inrefs))
		for obj, in := range src.inrefs {
			srcs := make(map[ids.SiteID]int, len(in.Sources))
			for s, d := range in.Sources {
				srcs[s] = d
			}
			dst.inrefs[obj] = &Inref{
				Obj:           in.Obj,
				Sources:       srcs,
				Barrier:       in.Barrier,
				Garbage:       in.Garbage,
				BackThreshold: in.BackThreshold,
			}
		}
		src.mu.RUnlock()

		osrc, odst := t.outs[i], cp.outs[i]
		osrc.mu.RLock()
		odst.outrefs = make(map[ids.Ref]*Outref, len(osrc.outrefs))
		for target, o := range osrc.outrefs {
			odst.outrefs[target] = &Outref{
				Target:        o.Target,
				Distance:      o.Distance,
				Pins:          o.Pins,
				Barrier:       o.Barrier,
				BackThreshold: o.BackThreshold,
			}
		}
		osrc.mu.RUnlock()
	})
	return cp
}

// TraceSnapshot returns a read-only snapshot of the tables plus the Delta
// of tracer-visible changes since the previous TraceSnapshot call,
// mirroring heap.TraceSnapshot: the first call deep-copies, later calls
// patch each shard of the retained shadow copy concurrently, in O(dirty)
// total. The snapshot is faithful only for what the tracer reads — inref
// existence, source distances, garbage flags, and outref existence;
// tracer-invisible fields (Barrier, Pins, outref Distance) may be stale in
// patched entries. The returned table is patched in place by the next
// call; the site's trace mutex serializes.
func (t *Table) TraceSnapshot() (*Table, *Delta) {
	if !t.tracking {
		t.EnableDeltaTracking()
	}
	if t.snap == nil {
		t.snap = t.Snapshot()
		for i := range t.ins {
			t.ins[i].mu.Lock()
			clear(t.ins[i].dirtyIn)
			t.ins[i].mu.Unlock()
			t.outs[i].mu.Lock()
			clear(t.outs[i].dirtyOut)
			t.outs[i].mu.Unlock()
		}
		return t.snap, &Delta{Full: true}
	}
	parts := make([]Delta, len(t.ins))
	t.eachShardConcurrent(func(i int) {
		t.patchShard(i, &parts[i])
	})
	d := &Delta{}
	for i := range parts {
		p := &parts[i]
		d.InrefsImproved = append(d.InrefsImproved, p.InrefsImproved...)
		d.InrefsWorsened = append(d.InrefsWorsened, p.InrefsWorsened...)
		d.OutrefsAdded = append(d.OutrefsAdded, p.OutrefsAdded...)
		d.OutrefsRemoved = append(d.OutrefsRemoved, p.OutrefsRemoved...)
	}
	sort.Slice(d.InrefsImproved, func(i, j int) bool { return d.InrefsImproved[i] < d.InrefsImproved[j] })
	sort.Slice(d.InrefsWorsened, func(i, j int) bool { return d.InrefsWorsened[i] < d.InrefsWorsened[j] })
	sort.Slice(d.OutrefsAdded, func(i, j int) bool { return d.OutrefsAdded[i].Less(d.OutrefsAdded[j]) })
	sort.Slice(d.OutrefsRemoved, func(i, j int) bool { return d.OutrefsRemoved[i].Less(d.OutrefsRemoved[j]) })
	return t.snap, d
}

// patchShard brings shard i of the shadow tables up to date from the live
// shard's dirty sets, accumulating the shard's Delta contribution. It
// locks the live shard; the shadow is owned by the snapshot lineage.
func (t *Table) patchShard(i int, d *Delta) {
	sh, snapSh := t.ins[i], t.snap.ins[i]
	sh.mu.Lock()
	for obj := range sh.dirtyIn {
		liveIn, liveOK := sh.inrefs[obj]
		snapIn, snapOK := snapSh.inrefs[obj]
		// An inref acts as a trace root iff it exists and is not flagged
		// garbage; its root distance is the minimum over sources.
		oldRoot := snapOK && !snapIn.Garbage
		newRoot := liveOK && !liveIn.Garbage
		oldDist := 0
		if oldRoot {
			oldDist = snapIn.Distance()
		}
		newDist := 0
		if newRoot {
			newDist = liveIn.Distance()
		}
		switch {
		case newRoot && (!oldRoot || newDist < oldDist):
			d.InrefsImproved = append(d.InrefsImproved, obj)
		case oldRoot && (!newRoot || newDist > oldDist):
			d.InrefsWorsened = append(d.InrefsWorsened, obj)
		}
		if liveOK {
			srcs := make(map[ids.SiteID]int, len(liveIn.Sources))
			for s, sd := range liveIn.Sources {
				srcs[s] = sd
			}
			if snapOK {
				// Patch the existing struct in place: the snapshot's sorted
				// caches hold pointers, so replacing the struct would leave
				// a stale entry behind without invalidating the cache.
				snapIn.Sources = srcs
				snapIn.Barrier = liveIn.Barrier
				snapIn.Garbage = liveIn.Garbage
				snapIn.BackThreshold = liveIn.BackThreshold
			} else {
				snapSh.inrefs[obj] = &Inref{
					Obj:           liveIn.Obj,
					Sources:       srcs,
					Barrier:       liveIn.Barrier,
					Garbage:       liveIn.Garbage,
					BackThreshold: liveIn.BackThreshold,
				}
				snapSh.sortedValid = false
				t.snap.mergedValid.Store(false)
			}
		} else if snapOK {
			delete(snapSh.inrefs, obj)
			snapSh.sortedValid = false
			t.snap.mergedValid.Store(false)
		}
	}
	clear(sh.dirtyIn)
	sh.mu.Unlock()

	osh, snapOsh := t.outs[i], t.snap.outs[i]
	osh.mu.Lock()
	for target := range osh.dirtyOut {
		liveO, liveOK := osh.outrefs[target]
		_, snapOK := snapOsh.outrefs[target]
		switch {
		case liveOK && !snapOK:
			d.OutrefsAdded = append(d.OutrefsAdded, target)
		case !liveOK && snapOK:
			d.OutrefsRemoved = append(d.OutrefsRemoved, target)
		}
		if liveOK {
			snapOsh.outrefs[target] = &Outref{
				Target:        liveO.Target,
				Distance:      liveO.Distance,
				Pins:          liveO.Pins,
				Barrier:       liveO.Barrier,
				BackThreshold: liveO.BackThreshold,
			}
		} else {
			delete(snapOsh.outrefs, target)
		}
	}
	clear(osh.dirtyOut)
	osh.mu.Unlock()
}

// ResetTraceSnapshot discards the shadow copy so the next TraceSnapshot is
// Full (used after an abandoned trace consumed the delta).
func (t *Table) ResetTraceSnapshot() {
	t.snap = nil
	if t.tracking {
		for i := range t.ins {
			t.ins[i].mu.Lock()
			clear(t.ins[i].dirtyIn)
			t.ins[i].mu.Unlock()
			t.outs[i].mu.Lock()
			clear(t.outs[i].dirtyOut)
			t.outs[i].mu.Unlock()
		}
	}
}

// ResetBarriers clears the transfer-barrier clean marks on every ioref;
// the local trace calls this when it installs freshly computed distances
// and back information (Section 6.1.1: barrier-cleaned outrefs "remain
// clean until the site does the next local trace").
func (t *Table) ResetBarriers() {
	for _, sh := range t.ins {
		sh.mu.Lock()
		for _, in := range sh.inrefs {
			in.Barrier = false
		}
		sh.mu.Unlock()
	}
	for _, sh := range t.outs {
		sh.mu.Lock()
		for _, o := range sh.outrefs {
			o.Barrier = false
		}
		sh.mu.Unlock()
	}
}

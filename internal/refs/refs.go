// Package refs implements a site's tables of inter-site references: the
// inref table (incoming references with their source lists and per-source
// distance estimates) and the outref table (outgoing references with their
// distance estimates and insert-barrier pins), as described in Sections 2,
// 3, and 6 of the paper.
//
// Terminology follows the paper: an *inref* records that remote sites hold
// references to a local object; an *outref* records that this site holds a
// reference to a remote object; *iorefs* are both collectively. An ioref is
// *clean* if it is presumed reachable from a persistent root — because its
// estimated distance is at or below the suspicion threshold, because the
// transfer barrier cleaned it (Section 6.1.1), or, for outrefs, because it
// is pinned by the insert barrier (Section 6.1.2) or held by a mutator
// variable. Otherwise it is *suspected*.
//
// Like package heap, the tables are not safe for concurrent use; the owning
// Site serializes access.
package refs

import (
	"math"
	"sort"

	"backtrace/internal/ids"
)

// DistInfinity is the distance of garbage: no path from any persistent
// root. Arithmetic never overflows because propagation adds at most one per
// step and saturates.
const DistInfinity = math.MaxInt32

// AddDist adds a hop count to a distance, saturating at DistInfinity.
func AddDist(d, hops int) int {
	if d >= DistInfinity-hops {
		return DistInfinity
	}
	return d + hops
}

// Inref is one entry in the inref table: a local object that remote sites
// hold references to (Section 2, Figure 1).
type Inref struct {
	// Obj is the local object the incoming references point to.
	Obj ids.ObjID
	// Sources maps each source site known to hold the reference to the
	// estimated distance via that source (Section 3: "A distance field is
	// associated with each source site in an inref").
	Sources map[ids.SiteID]int
	// Barrier is true while the transfer barrier holds this inref clean;
	// the next local trace resets it (Section 6.1.1).
	Barrier bool
	// Garbage is set when a back trace confirmed this inref garbage in
	// its report phase; the local trace then stops using it as a root
	// (Section 4.5).
	Garbage bool
	// BackThreshold is this ioref's personal back-trace trigger. It
	// starts at the configured T2 and is raised each time a back trace
	// visits the ioref, so live suspects stop generating traces
	// (Section 4.3).
	BackThreshold int
	// Visited holds the identifiers of back traces that have visited this
	// inref and not yet completed (Section 4.4, Section 4.7).
	Visited map[ids.TraceID]struct{}
}

// Distance returns the inref's distance: the smallest distance over its
// sources, or DistInfinity if the source list is empty.
func (in *Inref) Distance() int {
	d := DistInfinity
	for _, sd := range in.Sources {
		if sd < d {
			d = sd
		}
	}
	return d
}

// IsClean reports whether the inref is clean at the given suspicion
// threshold. A garbage-flagged inref is never clean.
func (in *Inref) IsClean(threshold int) bool {
	if in.Garbage {
		return false
	}
	return in.Barrier || in.Distance() <= threshold
}

// SourceSites returns the source sites in ascending order.
func (in *Inref) SourceSites() []ids.SiteID {
	out := make([]ids.SiteID, 0, len(in.Sources))
	for s := range in.Sources {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MarkVisited records a back trace's visit; it reports whether the trace
// had already visited (in which case the caller returns Garbage
// immediately, Section 4.4).
func (in *Inref) MarkVisited(t ids.TraceID) (already bool) {
	if _, ok := in.Visited[t]; ok {
		return true
	}
	if in.Visited == nil {
		in.Visited = make(map[ids.TraceID]struct{})
	}
	in.Visited[t] = struct{}{}
	return false
}

// ClearVisited removes a completed trace's visit mark.
func (in *Inref) ClearVisited(t ids.TraceID) {
	delete(in.Visited, t)
}

// Outref is one entry in the outref table: a remote object this site holds
// a reference to (Section 2, Figure 1).
type Outref struct {
	// Target is the remote object referenced.
	Target ids.Ref
	// Distance is the estimated distance propagated by local traces
	// (Section 3).
	Distance int
	// Pins counts insert-barrier holds: while positive, the outref is
	// retained and clean regardless of distance (Section 6.1.2).
	Pins int
	// Barrier is true while the transfer barrier holds this outref clean;
	// the next local trace resets it (Section 6.1.1).
	Barrier bool
	// BackThreshold is this ioref's personal back-trace trigger
	// (Section 4.3); see Inref.BackThreshold.
	BackThreshold int
	// Visited holds the back traces currently marking this outref
	// (Section 4.4).
	Visited map[ids.TraceID]struct{}
}

// IsClean reports whether the outref is clean at the given suspicion
// threshold. Cleanliness follows the paper's trace-based definition:
// "inrefs with distances ≤ the threshold — and objects and outrefs traced
// from them — are said to be clean" (Section 3). An outref's distance is
// one plus the distance of the inref (or root) it was traced from, so an
// outref is clean iff its distance is at most threshold+1. (Comparing
// against the bare threshold would wrongly suspect a live outref traced
// from a clean inref sitting exactly at the threshold; its inset contains
// no suspected inrefs, so a back trace would confirm live objects garbage.)
func (o *Outref) IsClean(threshold int) bool {
	return o.Barrier || o.Pins > 0 || o.Distance <= threshold+1
}

// MarkVisited records a back trace's visit; it reports whether the trace
// had already visited.
func (o *Outref) MarkVisited(t ids.TraceID) (already bool) {
	if _, ok := o.Visited[t]; ok {
		return true
	}
	if o.Visited == nil {
		o.Visited = make(map[ids.TraceID]struct{})
	}
	o.Visited[t] = struct{}{}
	return false
}

// ClearVisited removes a completed trace's visit mark.
func (o *Outref) ClearVisited(t ids.TraceID) {
	delete(o.Visited, t)
}

// Table holds one site's inref and outref tables.
type Table struct {
	site    ids.SiteID
	inrefs  map[ids.ObjID]*Inref
	outrefs map[ids.Ref]*Outref

	// defaultBackThreshold initializes the BackThreshold of new iorefs
	// (the paper's T2, Section 4.3).
	defaultBackThreshold int

	// sorted caches the Inrefs() ordering; it is invalidated only when
	// table membership changes (insert or remove), not on distance or flag
	// updates, so the per-trace suspected-inref scan stops re-sorting an
	// unchanged table every round.
	sorted      []*Inref
	sortedValid bool

	// --- incremental-trace write barrier (see TraceSnapshot) ---

	tracking bool
	snap     *Table
	// dirtyIn names objects whose inref existence, source distances, or
	// garbage flag may differ from snap; dirtyOut names targets whose
	// outref existence may differ. Tracer-invisible fields (Barrier, Pins,
	// outref Distance, BackThreshold, Visited) are not tracked.
	dirtyIn  map[ids.ObjID]struct{}
	dirtyOut map[ids.Ref]struct{}
}

// Delta describes how the tracer-visible table state changed between two
// TraceSnapshot calls. Like heap.Delta, classification happens at snapshot
// time against the shadow copy, so changes that cancel out produce no
// entries.
//
// An inref is "improved" when its effective root distance decreased: a new
// inref appeared, a source distance dropped, or the minimum over sources
// fell. It is "worsened" when the distance rose, the inref vanished, or it
// was flagged garbage — changes that can only be absorbed by a full trace.
// Outref removals are likewise treated as invalidating (the missing-outref
// check of a full trace could newly fire); additions only extend the
// untraced scan and are monotone.
type Delta struct {
	Full bool

	InrefsImproved []ids.ObjID
	InrefsWorsened []ids.ObjID
	OutrefsAdded   []ids.Ref
	OutrefsRemoved []ids.Ref
}

// Empty reports whether the delta records no tracer-visible change.
func (d *Delta) Empty() bool {
	return !d.Full &&
		len(d.InrefsImproved) == 0 && len(d.InrefsWorsened) == 0 &&
		len(d.OutrefsAdded) == 0 && len(d.OutrefsRemoved) == 0
}

// Invalidating reports whether the delta contains a change the monotone
// incremental remark cannot absorb exactly.
func (d *Delta) Invalidating() bool {
	return len(d.InrefsWorsened) > 0 || len(d.OutrefsRemoved) > 0
}

// Size returns the number of changed entries (for the dirty-ratio knob).
func (d *Delta) Size() int {
	return len(d.InrefsImproved) + len(d.InrefsWorsened) +
		len(d.OutrefsAdded) + len(d.OutrefsRemoved)
}

// NewTable creates empty tables for a site. backThreshold is the initial
// per-ioref back threshold T2.
func NewTable(site ids.SiteID, backThreshold int) *Table {
	return &Table{
		site:                 site,
		inrefs:               make(map[ids.ObjID]*Inref),
		outrefs:              make(map[ids.Ref]*Outref),
		defaultBackThreshold: backThreshold,
	}
}

// Site returns the owning site.
func (t *Table) Site() ids.SiteID { return t.site }

// EnableDeltaTracking turns on the write barrier that records dirty
// entries for TraceSnapshot. Sites configured for incremental tracing call
// this once at construction.
func (t *Table) EnableDeltaTracking() {
	if t.tracking {
		return
	}
	t.tracking = true
	t.dirtyIn = make(map[ids.ObjID]struct{})
	t.dirtyOut = make(map[ids.Ref]struct{})
}

func (t *Table) touchIn(obj ids.ObjID) {
	if t.tracking {
		t.dirtyIn[obj] = struct{}{}
	}
}

func (t *Table) touchOut(target ids.Ref) {
	if t.tracking {
		t.dirtyOut[target] = struct{}{}
	}
}

// --- inrefs --------------------------------------------------------------

// Inref returns the inref for a local object, if present.
func (t *Table) Inref(obj ids.ObjID) (*Inref, bool) {
	in, ok := t.inrefs[obj]
	return in, ok
}

// EnsureInref returns the inref for obj, creating an empty one if absent.
func (t *Table) EnsureInref(obj ids.ObjID) *Inref {
	in, ok := t.inrefs[obj]
	if !ok {
		in = &Inref{
			Obj:           obj,
			Sources:       make(map[ids.SiteID]int),
			BackThreshold: t.defaultBackThreshold,
		}
		t.inrefs[obj] = in
		t.sortedValid = false
		t.touchIn(obj)
	}
	return in
}

// AddSource records that a source site holds a reference to obj. If the
// source is new its distance is conservatively set to 1 (Section 3); an
// existing source's distance is left unchanged.
func (t *Table) AddSource(obj ids.ObjID, src ids.SiteID) *Inref {
	in := t.EnsureInref(obj)
	if _, ok := in.Sources[src]; !ok {
		in.Sources[src] = 1
		t.touchIn(obj)
	}
	return in
}

// SetSourceDistance updates the distance for one source of obj's inref, if
// both exist (distance changes arrive in update messages, Section 3).
func (t *Table) SetSourceDistance(obj ids.ObjID, src ids.SiteID, dist int) {
	in, ok := t.inrefs[obj]
	if !ok {
		return
	}
	if old, ok := in.Sources[src]; !ok || old == dist {
		return
	}
	in.Sources[src] = dist
	t.touchIn(obj)
}

// RemoveSource removes src from obj's source list (the sender trimmed its
// outref); an inref whose source list empties is removed entirely and the
// removal is reported (Section 2: "An inref with an empty source list is
// removed").
func (t *Table) RemoveSource(obj ids.ObjID, src ids.SiteID) (removedInref bool) {
	in, ok := t.inrefs[obj]
	if !ok {
		return false
	}
	if _, had := in.Sources[src]; had {
		delete(in.Sources, src)
		t.touchIn(obj)
	}
	if len(in.Sources) == 0 {
		delete(t.inrefs, obj)
		t.sortedValid = false
		t.touchIn(obj)
		return true
	}
	return false
}

// RemoveInref deletes an inref outright (collector cleanup).
func (t *Table) RemoveInref(obj ids.ObjID) {
	if _, ok := t.inrefs[obj]; !ok {
		return
	}
	delete(t.inrefs, obj)
	t.sortedValid = false
	t.touchIn(obj)
}

// FlagGarbage sets the inref's garbage flag (a back trace confirmed it
// garbage in its report phase, Section 4.5). Routed through the table so
// incremental tracing sees the root disappear.
func (t *Table) FlagGarbage(obj ids.ObjID) {
	in, ok := t.inrefs[obj]
	if !ok || in.Garbage {
		return
	}
	in.Garbage = true
	t.touchIn(obj)
}

// Inrefs returns all inrefs ordered by object identifier. The slice is a
// cache owned by the table, rebuilt only when membership changed since the
// last call: callers must not modify it, and it is valid until the next
// insert or remove.
func (t *Table) Inrefs() []*Inref {
	if !t.sortedValid {
		t.sorted = t.sorted[:0]
		for _, in := range t.inrefs {
			t.sorted = append(t.sorted, in)
		}
		sort.Slice(t.sorted, func(i, j int) bool { return t.sorted[i].Obj < t.sorted[j].Obj })
		t.sortedValid = true
	}
	return t.sorted
}

// NumInrefs returns the number of inrefs.
func (t *Table) NumInrefs() int { return len(t.inrefs) }

// EachInref invokes fn for every inref in unspecified order, without
// allocating (for order-insensitive scans like update reconciliation).
// fn must not add or remove inrefs.
func (t *Table) EachInref(fn func(*Inref)) {
	for _, in := range t.inrefs {
		fn(in)
	}
}

// --- outrefs -------------------------------------------------------------

// Outref returns the outref for a remote target, if present.
func (t *Table) Outref(target ids.Ref) (*Outref, bool) {
	o, ok := t.outrefs[target]
	return o, ok
}

// EnsureOutref returns the outref for target, creating one if absent. A
// freshly created outref starts with distance 1 (the most optimistic
// estimate for a reference that just arrived; the next local trace and
// update messages will correct it) and with the transfer-barrier clean mark
// set, since a new outref is only created when a mutator is actively
// passing the reference (Section 6.1.2, case 4: "Y creates a clean outref
// for z").
func (t *Table) EnsureOutref(target ids.Ref) (o *Outref, created bool) {
	o, ok := t.outrefs[target]
	if !ok {
		o = &Outref{
			Target:        target,
			Distance:      1,
			Barrier:       true,
			BackThreshold: t.defaultBackThreshold,
		}
		t.outrefs[target] = o
		created = true
		t.touchOut(target)
	}
	return o, created
}

// RemoveOutref deletes an outref (trimmed after a local trace).
func (t *Table) RemoveOutref(target ids.Ref) {
	if _, ok := t.outrefs[target]; !ok {
		return
	}
	delete(t.outrefs, target)
	t.touchOut(target)
}

// Outrefs returns all outrefs ordered by target reference.
func (t *Table) Outrefs() []*Outref {
	out := make([]*Outref, 0, len(t.outrefs))
	for _, o := range t.outrefs {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target.Less(out[j].Target) })
	return out
}

// NumOutrefs returns the number of outrefs.
func (t *Table) NumOutrefs() int { return len(t.outrefs) }

// Pin increments the insert-barrier pin count of the outref for target,
// creating the outref if needed (the sender must retain it).
func (t *Table) Pin(target ids.Ref) *Outref {
	o, _ := t.EnsureOutref(target)
	o.Pins++
	return o
}

// Unpin decrements the pin count; it is a no-op if the outref is missing or
// unpinned (a duplicate ReleasePin after message retry is harmless).
func (t *Table) Unpin(target ids.Ref) {
	o, ok := t.outrefs[target]
	if !ok {
		return
	}
	if o.Pins > 0 {
		o.Pins--
	}
}

// Snapshot returns a deep copy of both tables for use by an off-lock local
// trace. Everything the tracer reads is copied — source lists with
// distances, barrier and garbage flags, pins, distances, back thresholds.
// The per-trace Visited marks are deliberately NOT carried over: they
// belong to the live table (the back-tracing engine mutates them under the
// site lock) and the tracer never reads them.
func (t *Table) Snapshot() *Table {
	cp := &Table{
		site:                 t.site,
		inrefs:               make(map[ids.ObjID]*Inref, len(t.inrefs)),
		outrefs:              make(map[ids.Ref]*Outref, len(t.outrefs)),
		defaultBackThreshold: t.defaultBackThreshold,
	}
	for obj, in := range t.inrefs {
		srcs := make(map[ids.SiteID]int, len(in.Sources))
		for s, d := range in.Sources {
			srcs[s] = d
		}
		cp.inrefs[obj] = &Inref{
			Obj:           in.Obj,
			Sources:       srcs,
			Barrier:       in.Barrier,
			Garbage:       in.Garbage,
			BackThreshold: in.BackThreshold,
		}
	}
	for target, o := range t.outrefs {
		cp.outrefs[target] = &Outref{
			Target:        o.Target,
			Distance:      o.Distance,
			Pins:          o.Pins,
			Barrier:       o.Barrier,
			BackThreshold: o.BackThreshold,
		}
	}
	return cp
}

// TraceSnapshot returns a read-only snapshot of the tables plus the Delta
// of tracer-visible changes since the previous TraceSnapshot call,
// mirroring heap.TraceSnapshot: the first call deep-copies, later calls
// patch the retained shadow copy in O(dirty). The snapshot is faithful only
// for what the tracer reads — inref existence, source distances, garbage
// flags, and outref existence; tracer-invisible fields (Barrier, Pins,
// outref Distance) may be stale in patched entries. The returned table is
// patched in place by the next call; the site's trace mutex serializes.
func (t *Table) TraceSnapshot() (*Table, *Delta) {
	if !t.tracking {
		t.EnableDeltaTracking()
	}
	if t.snap == nil {
		t.snap = t.Snapshot()
		clear(t.dirtyIn)
		clear(t.dirtyOut)
		return t.snap, &Delta{Full: true}
	}
	d := &Delta{}
	snap := t.snap
	for obj := range t.dirtyIn {
		liveIn, liveOK := t.inrefs[obj]
		snapIn, snapOK := snap.inrefs[obj]
		// An inref acts as a trace root iff it exists and is not flagged
		// garbage; its root distance is the minimum over sources.
		oldRoot := snapOK && !snapIn.Garbage
		newRoot := liveOK && !liveIn.Garbage
		oldDist := 0
		if oldRoot {
			oldDist = snapIn.Distance()
		}
		newDist := 0
		if newRoot {
			newDist = liveIn.Distance()
		}
		switch {
		case newRoot && (!oldRoot || newDist < oldDist):
			d.InrefsImproved = append(d.InrefsImproved, obj)
		case oldRoot && (!newRoot || newDist > oldDist):
			d.InrefsWorsened = append(d.InrefsWorsened, obj)
		}
		if liveOK {
			srcs := make(map[ids.SiteID]int, len(liveIn.Sources))
			for s, sd := range liveIn.Sources {
				srcs[s] = sd
			}
			if snapOK {
				// Patch the existing struct in place: the snapshot's sorted
				// cache holds pointers, so replacing the struct would leave
				// a stale entry behind without invalidating the cache.
				snapIn.Sources = srcs
				snapIn.Barrier = liveIn.Barrier
				snapIn.Garbage = liveIn.Garbage
				snapIn.BackThreshold = liveIn.BackThreshold
			} else {
				snap.inrefs[obj] = &Inref{
					Obj:           liveIn.Obj,
					Sources:       srcs,
					Barrier:       liveIn.Barrier,
					Garbage:       liveIn.Garbage,
					BackThreshold: liveIn.BackThreshold,
				}
				snap.sortedValid = false
			}
		} else if snapOK {
			delete(snap.inrefs, obj)
			snap.sortedValid = false
		}
	}
	for target := range t.dirtyOut {
		liveO, liveOK := t.outrefs[target]
		_, snapOK := snap.outrefs[target]
		switch {
		case liveOK && !snapOK:
			d.OutrefsAdded = append(d.OutrefsAdded, target)
		case !liveOK && snapOK:
			d.OutrefsRemoved = append(d.OutrefsRemoved, target)
		}
		if liveOK {
			snap.outrefs[target] = &Outref{
				Target:        liveO.Target,
				Distance:      liveO.Distance,
				Pins:          liveO.Pins,
				Barrier:       liveO.Barrier,
				BackThreshold: liveO.BackThreshold,
			}
		} else {
			delete(snap.outrefs, target)
		}
	}
	clear(t.dirtyIn)
	clear(t.dirtyOut)
	sort.Slice(d.InrefsImproved, func(i, j int) bool { return d.InrefsImproved[i] < d.InrefsImproved[j] })
	sort.Slice(d.InrefsWorsened, func(i, j int) bool { return d.InrefsWorsened[i] < d.InrefsWorsened[j] })
	sort.Slice(d.OutrefsAdded, func(i, j int) bool { return d.OutrefsAdded[i].Less(d.OutrefsAdded[j]) })
	sort.Slice(d.OutrefsRemoved, func(i, j int) bool { return d.OutrefsRemoved[i].Less(d.OutrefsRemoved[j]) })
	return snap, d
}

// ResetTraceSnapshot discards the shadow copy so the next TraceSnapshot is
// Full (used after an abandoned trace consumed the delta).
func (t *Table) ResetTraceSnapshot() {
	t.snap = nil
	if t.tracking {
		clear(t.dirtyIn)
		clear(t.dirtyOut)
	}
}

// ResetBarriers clears the transfer-barrier clean marks on every ioref;
// the local trace calls this when it installs freshly computed distances
// and back information (Section 6.1.1: barrier-cleaned outrefs "remain
// clean until the site does the next local trace").
func (t *Table) ResetBarriers() {
	for _, in := range t.inrefs {
		in.Barrier = false
	}
	for _, o := range t.outrefs {
		o.Barrier = false
	}
}

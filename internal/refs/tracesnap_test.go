package refs

import (
	"math/rand"
	"testing"

	"backtrace/internal/ids"
)

// TestInrefsSortedCache checks that Inrefs() returns a deterministic
// ascending order, reuses its cache while membership is stable, and rebuilds
// it on insert and remove.
func TestInrefsSortedCache(t *testing.T) {
	tbl := NewTable(1, 7)
	for _, obj := range []ids.ObjID{30, 10, 20} {
		tbl.AddSource(obj, 2)
	}
	first := tbl.Inrefs()
	want := []ids.ObjID{10, 20, 30}
	for i, in := range first {
		if in.Obj != want[i] {
			t.Fatalf("Inrefs()[%d].Obj = %v, want %v", i, in.Obj, want[i])
		}
	}

	// Distance and flag updates must not rebuild (same backing array) and
	// must keep the order.
	tbl.SetSourceDistance(20, 2, 9)
	tbl.FlagGarbage(30)
	second := tbl.Inrefs()
	if &first[0] != &second[0] {
		t.Fatal("Inrefs() rebuilt its cache on a non-membership change")
	}

	// Insert invalidates and the new entry appears in order.
	tbl.AddSource(15, 3)
	third := tbl.Inrefs()
	want = []ids.ObjID{10, 15, 20, 30}
	if len(third) != len(want) {
		t.Fatalf("after insert: %d inrefs, want %d", len(third), len(want))
	}
	for i, in := range third {
		if in.Obj != want[i] {
			t.Fatalf("after insert: Inrefs()[%d].Obj = %v, want %v", i, in.Obj, want[i])
		}
	}

	// Remove invalidates too.
	if !tbl.RemoveSource(10, 2) {
		t.Fatal("RemoveSource(10) did not remove the inref")
	}
	fourth := tbl.Inrefs()
	want = []ids.ObjID{15, 20, 30}
	if len(fourth) != len(want) {
		t.Fatalf("after remove: %d inrefs, want %d", len(fourth), len(want))
	}
	for i, in := range fourth {
		if in.Obj != want[i] {
			t.Fatalf("after remove: Inrefs()[%d].Obj = %v, want %v", i, in.Obj, want[i])
		}
	}
}

// sameTableView fails unless snap mirrors live's tracer-visible state:
// inref set with distances and garbage flags, and outref existence.
func sameTableView(t *testing.T, live, snap *Table) {
	t.Helper()
	li, si := live.Inrefs(), snap.Inrefs()
	if len(li) != len(si) {
		t.Fatalf("inref count: live %d snap %d", len(li), len(si))
	}
	for i := range li {
		if li[i].Obj != si[i].Obj {
			t.Fatalf("inref %d: live obj %v snap obj %v", i, li[i].Obj, si[i].Obj)
		}
		if li[i].Distance() != si[i].Distance() {
			t.Fatalf("inref %v: live dist %d snap dist %d", li[i].Obj, li[i].Distance(), si[i].Distance())
		}
		if li[i].Garbage != si[i].Garbage {
			t.Fatalf("inref %v: live garbage %v snap garbage %v", li[i].Obj, li[i].Garbage, si[i].Garbage)
		}
		if li[i] == si[i] {
			t.Fatalf("inref %v: snapshot shares the live *Inref", li[i].Obj)
		}
	}
	lo, so := live.Outrefs(), snap.Outrefs()
	if len(lo) != len(so) {
		t.Fatalf("outref count: live %d snap %d", len(lo), len(so))
	}
	for i := range lo {
		if lo[i].Target != so[i].Target {
			t.Fatalf("outref %d: live %v snap %v", i, lo[i].Target, so[i].Target)
		}
	}
}

// TestTableTraceSnapshotEquivalence drives randomized table mutations and
// checks the patched shadow snapshot against the live view every round.
func TestTableTraceSnapshotEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tbl := NewTable(1, 7)
		tbl.EnableDeltaTracking()
		for round := 0; round < 12; round++ {
			for step := 0; step < 25; step++ {
				obj := ids.ObjID(rng.Intn(12) + 1)
				src := ids.SiteID(rng.Intn(3) + 2)
				switch rng.Intn(6) {
				case 0:
					tbl.AddSource(obj, src)
				case 1:
					tbl.SetSourceDistance(obj, src, rng.Intn(10))
				case 2:
					tbl.RemoveSource(obj, src)
				case 3:
					tbl.FlagGarbage(obj)
				case 4:
					tbl.EnsureOutref(ids.Ref{Site: src, Obj: obj})
				case 5:
					tbl.RemoveOutref(ids.Ref{Site: src, Obj: obj})
				}
			}
			snap, d := tbl.TraceSnapshot()
			if (round == 0) != d.Full {
				t.Fatalf("seed %d round %d: Full = %v", seed, round, d.Full)
			}
			sameTableView(t, tbl, snap)
		}
	}
}

// TestTableTraceSnapshotClassification checks the delta buckets on targeted
// mutations.
func TestTableTraceSnapshotClassification(t *testing.T) {
	tbl := NewTable(1, 7)
	tbl.EnableDeltaTracking()
	tbl.AddSource(10, 2)
	tbl.SetSourceDistance(10, 2, 5)
	out := ids.Ref{Site: 2, Obj: 99}
	tbl.EnsureOutref(out)
	if _, d := tbl.TraceSnapshot(); !d.Full {
		t.Fatal("first delta not Full")
	}

	// Monotone changes: new inref, lowered distance, new outref.
	tbl.AddSource(20, 3)
	tbl.SetSourceDistance(10, 2, 3)
	out2 := ids.Ref{Site: 3, Obj: 50}
	tbl.EnsureOutref(out2)
	_, d := tbl.TraceSnapshot()
	if len(d.InrefsImproved) != 2 || d.InrefsImproved[0] != 10 || d.InrefsImproved[1] != 20 {
		t.Fatalf("InrefsImproved = %v, want [10 20]", d.InrefsImproved)
	}
	if len(d.OutrefsAdded) != 1 || d.OutrefsAdded[0] != out2 {
		t.Fatalf("OutrefsAdded = %v, want [%v]", d.OutrefsAdded, out2)
	}
	if d.Invalidating() {
		t.Fatalf("monotone delta reported Invalidating: %+v", d)
	}

	// No-op distance write produces no delta at all.
	tbl.SetSourceDistance(10, 2, 3)
	if _, d := tbl.TraceSnapshot(); !d.Empty() {
		t.Fatalf("no-op distance write left a delta: %+v", d)
	}

	// Invalidating changes: raised distance, garbage flag, removed inref,
	// removed outref.
	tbl.SetSourceDistance(10, 2, 8)
	tbl.FlagGarbage(20)
	tbl.RemoveOutref(out)
	_, d = tbl.TraceSnapshot()
	if len(d.InrefsWorsened) != 2 || d.InrefsWorsened[0] != 10 || d.InrefsWorsened[1] != 20 {
		t.Fatalf("InrefsWorsened = %v, want [10 20]", d.InrefsWorsened)
	}
	if len(d.OutrefsRemoved) != 1 || d.OutrefsRemoved[0] != out {
		t.Fatalf("OutrefsRemoved = %v, want [%v]", d.OutrefsRemoved, out)
	}
	if !d.Invalidating() {
		t.Fatalf("worsening delta not Invalidating: %+v", d)
	}

	// Cancelling ops: outref added and removed again, inref source added
	// and removed again.
	out3 := ids.Ref{Site: 4, Obj: 1}
	tbl.EnsureOutref(out3)
	tbl.RemoveOutref(out3)
	tbl.AddSource(30, 4)
	tbl.RemoveSource(30, 4)
	if _, d := tbl.TraceSnapshot(); !d.Empty() {
		t.Fatalf("cancelling ops left a delta: %+v", d)
	}
}

package refs

import (
	"testing"
	"testing/quick"

	"backtrace/internal/ids"
)

const testT2 = 8 // default back threshold used by table tests

func TestAddDistSaturates(t *testing.T) {
	tests := []struct {
		d, hops, want int
	}{
		{0, 1, 1},
		{5, 3, 8},
		{DistInfinity, 1, DistInfinity},
		{DistInfinity - 1, 1, DistInfinity},
		{DistInfinity - 1, 5, DistInfinity},
	}
	for _, tt := range tests {
		if got := AddDist(tt.d, tt.hops); got != tt.want {
			t.Errorf("AddDist(%d, %d) = %d, want %d", tt.d, tt.hops, tt.want, got)
		}
	}
}

func TestInrefDistanceIsMinOverSources(t *testing.T) {
	tbl := NewTable(1, testT2)
	in := tbl.AddSource(5, 2)
	if d := in.Distance(); d != 1 {
		t.Fatalf("new source distance = %d, want 1", d)
	}
	tbl.SetSourceDistance(5, 2, 7)
	tbl.AddSource(5, 3)
	tbl.SetSourceDistance(5, 3, 4)
	if d := in.Distance(); d != 4 {
		t.Fatalf("Distance = %d, want min(7,4)=4", d)
	}
}

func TestInrefDistanceEmptyIsInfinity(t *testing.T) {
	in := &Inref{Obj: 1, Sources: map[ids.SiteID]int{}}
	if in.Distance() != DistInfinity {
		t.Fatal("empty source list should have infinite distance")
	}
}

func TestAddSourceDoesNotLowerExistingDistance(t *testing.T) {
	tbl := NewTable(1, testT2)
	tbl.AddSource(5, 2)
	tbl.SetSourceDistance(5, 2, 9)
	in := tbl.AddSource(5, 2) // re-add existing source
	if got := in.Sources[2]; got != 9 {
		t.Fatalf("re-adding source reset distance to %d, want 9", got)
	}
}

func TestSetSourceDistanceIgnoresUnknown(t *testing.T) {
	tbl := NewTable(1, testT2)
	tbl.SetSourceDistance(5, 2, 3) // no inref at all
	if _, ok := tbl.Inref(5); ok {
		t.Fatal("SetSourceDistance created an inref")
	}
	tbl.AddSource(5, 2)
	tbl.SetSourceDistance(5, 3, 3) // unknown source
	in, _ := tbl.Inref(5)
	if _, ok := in.Sources[3]; ok {
		t.Fatal("SetSourceDistance created a source entry")
	}
}

func TestInrefCleanliness(t *testing.T) {
	tbl := NewTable(1, 4)
	in := tbl.AddSource(5, 2)
	tbl.SetSourceDistance(5, 2, 4)
	if !in.IsClean(4) {
		t.Error("distance == threshold should be clean")
	}
	tbl.SetSourceDistance(5, 2, 5)
	if in.IsClean(4) {
		t.Error("distance > threshold should be suspected")
	}
	in.Barrier = true
	if !in.IsClean(4) {
		t.Error("barrier-cleaned inref should be clean")
	}
	in.Garbage = true
	if in.IsClean(4) {
		t.Error("garbage-flagged inref must never be clean")
	}
}

func TestRemoveSourceDropsEmptyInref(t *testing.T) {
	tbl := NewTable(1, testT2)
	tbl.AddSource(5, 2)
	tbl.AddSource(5, 3)
	if removed := tbl.RemoveSource(5, 2); removed {
		t.Fatal("inref removed while a source remained")
	}
	if removed := tbl.RemoveSource(5, 3); !removed {
		t.Fatal("inref not removed when source list emptied")
	}
	if _, ok := tbl.Inref(5); ok {
		t.Fatal("empty inref still present")
	}
	if removed := tbl.RemoveSource(5, 9); removed {
		t.Fatal("removing from missing inref reported removal")
	}
}

func TestInrefVisitedMarks(t *testing.T) {
	in := &Inref{Obj: 1}
	tr := ids.TraceID{Initiator: 2, Seq: 1}
	if _, already := in.MarkVisited(tr, 0); already {
		t.Fatal("first visit reported as already visited")
	}
	owner, already := in.MarkVisited(tr, 3)
	if !already {
		t.Fatal("second visit not reported as already visited")
	}
	if owner != 0 {
		t.Fatalf("revisit owner = %d, want the first visitor's suspect 0", owner)
	}
	tr2 := ids.TraceID{Initiator: 3, Seq: 1}
	if _, already := in.MarkVisited(tr2, 5); already {
		t.Fatal("distinct trace reported as already visited")
	}
	if owner, already := in.MarkVisited(tr2, 0); !already || owner != 5 {
		t.Fatalf("revisit of second trace: owner=%d already=%v, want 5 true", owner, already)
	}
	in.ClearVisited(tr)
	if _, already := in.MarkVisited(tr, 0); already {
		t.Fatal("visit after clear reported as already visited")
	}
}

func TestEnsureOutrefDefaults(t *testing.T) {
	tbl := NewTable(1, testT2)
	target := ids.MakeRef(2, 7)
	o, created := tbl.EnsureOutref(target)
	if !created {
		t.Fatal("first EnsureOutref did not create")
	}
	if o.Distance != 1 {
		t.Errorf("new outref distance = %d, want 1", o.Distance)
	}
	if !o.Barrier {
		t.Error("new outref should start barrier-clean (Section 6.1.2 case 4)")
	}
	if o.BackThreshold != testT2 {
		t.Errorf("new outref back threshold = %d, want %d", o.BackThreshold, testT2)
	}
	if _, created := tbl.EnsureOutref(target); created {
		t.Fatal("second EnsureOutref created again")
	}
}

func TestOutrefCleanliness(t *testing.T) {
	o := &Outref{Target: ids.MakeRef(2, 7), Distance: 10}
	if o.IsClean(4) {
		t.Error("distant outref should be suspected")
	}
	o.Distance = 4
	if !o.IsClean(4) {
		t.Error("distance == threshold should be clean")
	}
	o.Distance = 10
	o.Pins = 1
	if !o.IsClean(4) {
		t.Error("pinned outref must be clean")
	}
	o.Pins = 0
	o.Barrier = true
	if !o.IsClean(4) {
		t.Error("barrier-cleaned outref must be clean")
	}
}

func TestPinUnpin(t *testing.T) {
	tbl := NewTable(1, testT2)
	target := ids.MakeRef(2, 7)
	o := tbl.Pin(target)
	if o.Pins != 1 {
		t.Fatalf("Pins = %d, want 1", o.Pins)
	}
	tbl.Pin(target)
	if o.Pins != 2 {
		t.Fatalf("Pins = %d, want 2", o.Pins)
	}
	tbl.Unpin(target)
	tbl.Unpin(target)
	if o.Pins != 0 {
		t.Fatalf("Pins = %d, want 0", o.Pins)
	}
	tbl.Unpin(target) // extra unpin must be a harmless no-op
	if o.Pins != 0 {
		t.Fatalf("Pins went negative: %d", o.Pins)
	}
	tbl.Unpin(ids.MakeRef(9, 9)) // missing outref: no-op
}

func TestResetBarriers(t *testing.T) {
	tbl := NewTable(1, testT2)
	in := tbl.AddSource(5, 2)
	in.Barrier = true
	o, _ := tbl.EnsureOutref(ids.MakeRef(2, 7))
	o.Barrier = true
	o.Pins = 1
	tbl.ResetBarriers()
	if in.Barrier || o.Barrier {
		t.Fatal("ResetBarriers left a barrier mark set")
	}
	if o.Pins != 1 {
		t.Fatal("ResetBarriers must not touch pins")
	}
}

func TestTablesSortedIteration(t *testing.T) {
	tbl := NewTable(1, testT2)
	tbl.AddSource(9, 2)
	tbl.AddSource(3, 2)
	tbl.AddSource(7, 2)
	ins := tbl.Inrefs()
	if len(ins) != 3 || ins[0].Obj != 3 || ins[1].Obj != 7 || ins[2].Obj != 9 {
		t.Fatalf("Inrefs order wrong: %v", []ids.ObjID{ins[0].Obj, ins[1].Obj, ins[2].Obj})
	}
	tbl.EnsureOutref(ids.MakeRef(3, 1))
	tbl.EnsureOutref(ids.MakeRef(2, 9))
	tbl.EnsureOutref(ids.MakeRef(2, 4))
	outs := tbl.Outrefs()
	if len(outs) != 3 || outs[0].Target != ids.MakeRef(2, 4) ||
		outs[1].Target != ids.MakeRef(2, 9) || outs[2].Target != ids.MakeRef(3, 1) {
		t.Fatalf("Outrefs order wrong")
	}
	if tbl.NumInrefs() != 3 || tbl.NumOutrefs() != 3 {
		t.Fatalf("counts wrong: %d inrefs, %d outrefs", tbl.NumInrefs(), tbl.NumOutrefs())
	}
}

func TestSourceSitesSorted(t *testing.T) {
	tbl := NewTable(1, testT2)
	tbl.AddSource(5, 4)
	tbl.AddSource(5, 2)
	tbl.AddSource(5, 3)
	in, _ := tbl.Inref(5)
	got := in.SourceSites()
	want := []ids.SiteID{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SourceSites = %v, want %v", got, want)
		}
	}
}

func TestInrefDistanceNeverBelowMinSourceProperty(t *testing.T) {
	// Property: Distance() equals the minimum over source distances for
	// arbitrary source sets.
	f := func(dists []uint16) bool {
		in := &Inref{Obj: 1, Sources: make(map[ids.SiteID]int)}
		min := DistInfinity
		for i, d := range dists {
			v := int(d)
			in.Sources[ids.SiteID(i+1)] = v
			if v < min {
				min = v
			}
		}
		return in.Distance() == min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package heap

import (
	"reflect"
	"sort"
	"testing"

	"backtrace/internal/ids"
)

// TestShardOfPartition checks that every object lands in exactly the shard
// its ID hashes to and that per-shard iteration covers the heap without
// overlap.
func TestShardOfPartition(t *testing.T) {
	const shards = 4
	h := NewSharded(1, shards)
	var all []ids.ObjID
	for i := 0; i < 40; i++ {
		all = append(all, h.Alloc().Obj)
	}

	seen := make(map[ids.ObjID]int)
	total := 0
	for i := 0; i < shards; i++ {
		h.EachObjectInShard(i, func(obj ids.ObjID, _ *Object) {
			if got := h.ShardOf(obj); got != i {
				t.Fatalf("object %v iterated in shard %d but ShardOf = %d", obj, i, got)
			}
			seen[obj]++
			total++
		})
		if got := h.ShardLen(i); got == 0 {
			t.Fatalf("shard %d empty: 40 sequential IDs should hit all %d shards", i, shards)
		}
	}
	if total != len(all) {
		t.Fatalf("per-shard iteration visited %d objects, heap has %d", total, len(all))
	}
	for _, obj := range all {
		if seen[obj] != 1 {
			t.Fatalf("object %v visited %d times", obj, seen[obj])
		}
	}
	if h.Len() != len(all) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(all))
	}
}

// TestShardedObjectsSorted checks the cross-shard Objects() view stays
// globally sorted even though hash sharding interleaves IDs.
func TestShardedObjectsSorted(t *testing.T) {
	h := NewSharded(1, 3)
	for i := 0; i < 25; i++ {
		h.Alloc()
	}
	h.Delete(7)
	h.Delete(12)
	objs := h.Objects()
	if !sort.SliceIsSorted(objs, func(i, j int) bool { return objs[i] < objs[j] }) {
		t.Fatalf("Objects() not sorted: %v", objs)
	}
	if len(objs) != 23 {
		t.Fatalf("Objects() has %d entries, want 23", len(objs))
	}
}

// TestFieldsOfMatchesGet checks the single-lock FieldsOf fast path returns
// the same view as Get().Fields().
func TestFieldsOfMatchesGet(t *testing.T) {
	h := NewSharded(1, 4)
	a := h.AllocRoot()
	b := h.Alloc()
	if err := h.AddField(a.Obj, b); err != nil {
		t.Fatal(err)
	}
	if err := h.AddField(a.Obj, ids.Ref{Site: 2, Obj: 9}); err != nil {
		t.Fatal(err)
	}
	got, ok := h.FieldsOf(a.Obj)
	if !ok {
		t.Fatal("FieldsOf reported object missing")
	}
	o, _ := h.Get(a.Obj)
	if want := o.Fields(); !reflect.DeepEqual(got, want) {
		t.Fatalf("FieldsOf = %v, Get().Fields() = %v", got, want)
	}
	if _, ok := h.FieldsOf(999); ok {
		t.Fatal("FieldsOf found a nonexistent object")
	}
}

// TestShardedSnapshotEquivalence checks that the concurrent per-shard deep
// copy and the incremental per-shard patching both reproduce exactly the
// state a single-shard heap would capture.
func TestShardedSnapshotEquivalence(t *testing.T) {
	build := func(shards int) *Heap {
		h := NewSharded(1, shards)
		root := h.AllocRoot()
		var prev ids.Ref
		for i := 0; i < 30; i++ {
			o := h.Alloc()
			if i%3 == 0 {
				_ = h.AddField(root.Obj, o)
			} else if !prev.IsZero() {
				_ = h.AddField(prev.Obj, o)
			}
			prev = o
		}
		h.AddAppRoot(ids.Ref{Site: 2, Obj: 5})
		return h
	}
	flat, sharded := build(1), build(4)

	flatSnap, shardSnap := flat.Snapshot(), sharded.Snapshot()
	if !reflect.DeepEqual(flatSnap.Objects(), shardSnap.Objects()) {
		t.Fatalf("snapshot object sets differ: %v vs %v", flatSnap.Objects(), shardSnap.Objects())
	}
	for _, obj := range flatSnap.Objects() {
		fw, _ := flatSnap.FieldsOf(obj)
		gw, ok := shardSnap.FieldsOf(obj)
		if !ok || !reflect.DeepEqual(fw, gw) {
			t.Fatalf("snapshot fields differ for %v: %v vs %v (ok=%v)", obj, fw, gw, ok)
		}
	}
	if !reflect.DeepEqual(flatSnap.AppRoots(), shardSnap.AppRoots()) {
		t.Fatalf("snapshot app roots differ")
	}

	// Incremental: patch only dirty shards and compare against a fresh copy.
	sharded.EnableDeltaTracking()
	sharded.TraceSnapshot()
	mutated := sharded.Alloc()
	_ = h2AddField(t, sharded, 1, mutated)
	sharded.Delete(9)
	snap2, d := sharded.TraceSnapshot()
	if len(d.Allocated) == 0 || len(d.Deleted) == 0 {
		t.Fatalf("delta missing mutations: allocated %v deleted %v", d.Allocated, d.Deleted)
	}
	full := sharded.Snapshot()
	if !reflect.DeepEqual(full.Objects(), snap2.Objects()) {
		t.Fatalf("patched snapshot object set %v, want %v", snap2.Objects(), full.Objects())
	}
}

func h2AddField(t *testing.T, h *Heap, obj ids.ObjID, target ids.Ref) error {
	t.Helper()
	if err := h.AddField(obj, target); err != nil {
		t.Fatal(err)
	}
	return nil
}

// TestMaxShardDirtyRatio checks the skew gauge: clean after a snapshot,
// nonzero after a mutation, and reflecting the dirtiest shard only.
func TestMaxShardDirtyRatio(t *testing.T) {
	h := NewSharded(1, 4)
	if got := h.MaxShardDirtyRatio(); got != 0 {
		t.Fatalf("ratio %v with tracking off, want 0", got)
	}
	h.EnableDeltaTracking()
	for i := 0; i < 16; i++ {
		h.Alloc()
	}
	h.TraceSnapshot()
	if got := h.MaxShardDirtyRatio(); got != 0 {
		t.Fatalf("ratio %v right after snapshot, want 0", got)
	}
	// Dirty one object: exactly one shard has 1 dirty of 4 objects.
	if err := h.AddField(4, ids.Ref{Site: 2, Obj: 1}); err != nil {
		t.Fatal(err)
	}
	if got := h.MaxShardDirtyRatio(); got != 0.25 {
		t.Fatalf("ratio %v after one mutation, want 0.25", got)
	}
}

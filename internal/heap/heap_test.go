package heap

import (
	"testing"
	"testing/quick"

	"backtrace/internal/ids"
)

func TestAllocAssignsUniqueIDs(t *testing.T) {
	h := New(1)
	seen := make(map[ids.ObjID]bool)
	for i := 0; i < 100; i++ {
		r := h.Alloc()
		if r.Site != 1 {
			t.Fatalf("Alloc returned site %v, want S1", r.Site)
		}
		if seen[r.Obj] {
			t.Fatalf("duplicate ObjID %v", r.Obj)
		}
		seen[r.Obj] = true
	}
	if h.Len() != 100 {
		t.Fatalf("Len = %d, want 100", h.Len())
	}
}

func TestAllocRootAndRootMarks(t *testing.T) {
	h := New(1)
	r := h.AllocRoot()
	if !h.IsPersistentRoot(r.Obj) {
		t.Fatal("AllocRoot object not a persistent root")
	}
	o := h.Alloc()
	if h.IsPersistentRoot(o.Obj) {
		t.Fatal("plain Alloc object is a persistent root")
	}
	if err := h.MarkPersistentRoot(o.Obj); err != nil {
		t.Fatal(err)
	}
	if !h.IsPersistentRoot(o.Obj) {
		t.Fatal("MarkPersistentRoot did not take effect")
	}
	h.UnmarkPersistentRoot(o.Obj)
	if h.IsPersistentRoot(o.Obj) {
		t.Fatal("UnmarkPersistentRoot did not take effect")
	}
	roots := h.PersistentRoots()
	if len(roots) != 1 || roots[0] != r.Obj {
		t.Fatalf("PersistentRoots = %v, want [%v]", roots, r.Obj)
	}
}

func TestMarkPersistentRootMissingObject(t *testing.T) {
	h := New(1)
	if err := h.MarkPersistentRoot(99); err == nil {
		t.Fatal("expected error marking missing object as root")
	}
}

func TestAddRemoveField(t *testing.T) {
	h := New(1)
	a := h.Alloc()
	b := h.Alloc()
	remote := ids.MakeRef(2, 7)

	if err := h.AddField(a.Obj, b); err != nil {
		t.Fatal(err)
	}
	if err := h.AddField(a.Obj, remote); err != nil {
		t.Fatal(err)
	}
	if err := h.AddField(a.Obj, b); err != nil {
		t.Fatal(err)
	}
	obj, _ := h.Get(a.Obj)
	if obj.NumFields() != 3 {
		t.Fatalf("NumFields = %d, want 3", obj.NumFields())
	}

	removed, err := h.RemoveField(a.Obj, b)
	if err != nil || !removed {
		t.Fatalf("RemoveField = %v, %v", removed, err)
	}
	obj, _ = h.Get(a.Obj)
	if obj.NumFields() != 2 {
		t.Fatalf("NumFields after remove = %d, want 2 (only first occurrence removed)", obj.NumFields())
	}
	if obj.Field(0) != remote || obj.Field(1) != b {
		t.Fatalf("fields after remove = %v", obj.Fields())
	}

	removed, err = h.RemoveField(a.Obj, ids.MakeRef(9, 9))
	if err != nil || removed {
		t.Fatalf("RemoveField of absent target = %v, %v; want false, nil", removed, err)
	}
}

func TestFieldOpsOnMissingObject(t *testing.T) {
	h := New(1)
	if err := h.AddField(5, ids.MakeRef(1, 1)); err == nil {
		t.Error("AddField on missing object: no error")
	}
	if _, err := h.RemoveField(5, ids.MakeRef(1, 1)); err == nil {
		t.Error("RemoveField on missing object: no error")
	}
	if err := h.ClearFields(5); err == nil {
		t.Error("ClearFields on missing object: no error")
	}
}

func TestDeleteRemovesObjectAndRootStatus(t *testing.T) {
	h := New(1)
	r := h.AllocRoot()
	h.Delete(r.Obj)
	if h.Contains(r.Obj) {
		t.Fatal("deleted object still present")
	}
	if h.IsPersistentRoot(r.Obj) {
		t.Fatal("deleted object still a persistent root")
	}
}

func TestFieldsReturnsCopy(t *testing.T) {
	h := New(1)
	a := h.Alloc()
	b := h.Alloc()
	if err := h.AddField(a.Obj, b); err != nil {
		t.Fatal(err)
	}
	o, _ := h.Get(a.Obj)
	fields := o.Fields()
	fields[0] = ids.MakeRef(9, 9)
	if o.Field(0) != b {
		t.Fatal("Fields() exposed internal storage")
	}
}

func TestAppRootCounting(t *testing.T) {
	h := New(1)
	r := ids.MakeRef(2, 3)
	if h.RemoveAppRoot(r) {
		t.Fatal("RemoveAppRoot on empty heap returned true")
	}
	h.AddAppRoot(r)
	h.AddAppRoot(r)
	if !h.HoldsAppRoot(r) {
		t.Fatal("HoldsAppRoot false after AddAppRoot")
	}
	if !h.RemoveAppRoot(r) || !h.HoldsAppRoot(r) {
		t.Fatal("first release should leave one hold")
	}
	if !h.RemoveAppRoot(r) || h.HoldsAppRoot(r) {
		t.Fatal("second release should clear the hold")
	}
	if got := h.AppRoots(); len(got) != 0 {
		t.Fatalf("AppRoots = %v, want empty", got)
	}
}

func TestLocalReachable(t *testing.T) {
	// a -> b -> c, d isolated, b -> remote (must not be followed).
	h := New(1)
	a := h.Alloc()
	b := h.Alloc()
	c := h.Alloc()
	d := h.Alloc()
	_ = d
	if err := h.AddField(a.Obj, b); err != nil {
		t.Fatal(err)
	}
	if err := h.AddField(b.Obj, c); err != nil {
		t.Fatal(err)
	}
	if err := h.AddField(b.Obj, ids.MakeRef(2, 1)); err != nil {
		t.Fatal(err)
	}

	got := h.LocalReachable([]ids.Ref{a})
	if len(got) != 3 {
		t.Fatalf("reachable set size %d, want 3: %v", len(got), got)
	}
	for _, want := range []ids.ObjID{a.Obj, b.Obj, c.Obj} {
		if _, ok := got[want]; !ok {
			t.Errorf("object %v missing from reachable set", want)
		}
	}
}

func TestLocalReachableCycle(t *testing.T) {
	h := New(1)
	a := h.Alloc()
	b := h.Alloc()
	if err := h.AddField(a.Obj, b); err != nil {
		t.Fatal(err)
	}
	if err := h.AddField(b.Obj, a); err != nil {
		t.Fatal(err)
	}
	got := h.LocalReachable([]ids.Ref{a})
	if len(got) != 2 {
		t.Fatalf("cycle reachable size %d, want 2", len(got))
	}
}

func TestLocalReachableIgnoresForeignStarts(t *testing.T) {
	h := New(1)
	h.Alloc()
	got := h.LocalReachable([]ids.Ref{ids.MakeRef(2, 1)})
	if len(got) != 0 {
		t.Fatalf("foreign start produced reachable set %v", got)
	}
}

func TestRemoteRefsFrom(t *testing.T) {
	h := New(1)
	a := h.Alloc()
	b := h.Alloc()
	r1 := ids.MakeRef(2, 1)
	r2 := ids.MakeRef(3, 5)
	if err := h.AddField(a.Obj, r1); err != nil {
		t.Fatal(err)
	}
	if err := h.AddField(a.Obj, b); err != nil {
		t.Fatal(err)
	}
	if err := h.AddField(b.Obj, r2); err != nil {
		t.Fatal(err)
	}
	if err := h.AddField(b.Obj, r1); err != nil { // duplicate remote
		t.Fatal(err)
	}

	objs := map[ids.ObjID]struct{}{a.Obj: {}, b.Obj: {}}
	got := h.RemoteRefsFrom(objs)
	if len(got) != 2 || got[0] != r1 || got[1] != r2 {
		t.Fatalf("RemoteRefsFrom = %v, want [%v %v]", got, r1, r2)
	}
}

func TestAdopt(t *testing.T) {
	h := New(1)
	fields := []ids.Ref{ids.MakeRef(2, 1), ids.MakeRef(1, 1)}
	r := h.Adopt(fields, 128)
	o, ok := h.Get(r.Obj)
	if !ok {
		t.Fatal("adopted object missing")
	}
	if o.Size() != 128 || o.NumFields() != 2 {
		t.Fatalf("adopted object wrong: size=%d fields=%d", o.Size(), o.NumFields())
	}
	fields[0] = ids.MakeRef(9, 9)
	if o.Field(0) == fields[0] {
		t.Fatal("Adopt aliased caller's slice")
	}
}

func TestReachabilityMonotoneProperty(t *testing.T) {
	// Property: adding a field can only grow the reachable set.
	f := func(edges []uint8) bool {
		h := New(1)
		const n = 10
		refs := make([]ids.Ref, n)
		for i := range refs {
			refs[i] = h.Alloc()
		}
		for i := 0; i+1 < len(edges); i += 2 {
			from := refs[int(edges[i])%n]
			to := refs[int(edges[i+1])%n]
			if err := h.AddField(from.Obj, to); err != nil {
				return false
			}
		}
		before := h.LocalReachable([]ids.Ref{refs[0]})
		if err := h.AddField(refs[0].Obj, refs[n-1]); err != nil {
			return false
		}
		after := h.LocalReachable([]ids.Ref{refs[0]})
		if len(after) < len(before) {
			return false
		}
		for o := range before {
			if _, ok := after[o]; !ok {
				return false
			}
		}
		_, ok := after[refs[n-1].Obj]
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Package heap implements a site's local object store: objects with
// reference fields, persistent roots, and application roots (the mutator's
// local variables, Section 2 and Section 6.3 of the paper).
//
// The store is split into N shards keyed by object-identifier hash. Each
// shard owns its own lock, its own maps, its own write-barrier dirty set,
// and its own slice of the copy-on-write trace snapshot, so mutator
// operations touching distinct shards do not contend and trace snapshots
// patch shards concurrently. Single-key operations are safe for concurrent
// use; whole-heap operations (Snapshot, TraceSnapshot, Objects, audits)
// still rely on the owning Site to exclude concurrent mutators — the Site
// takes its write lock for those, and its read lock plus the per-shard
// locks for the short mutator critical sections the paper's model assumes.
package heap

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"backtrace/internal/ids"
)

// Object is one object in a site's store: an identifier, reference fields,
// and a nominal payload size in bytes (used only for accounting, e.g. the
// bytes moved by the migration baseline).
type Object struct {
	id     ids.ObjID
	fields []ids.Ref
	size   int
}

// ID returns the object's identifier within its owning site.
func (o *Object) ID() ids.ObjID { return o.id }

// Size returns the object's nominal payload size in bytes.
func (o *Object) Size() int { return o.size }

// Fields returns a copy of the object's reference fields. It is safe only
// when field mutators are excluded (snapshot heaps, or the site write
// lock); concurrent introspection should use Heap.FieldsOf.
func (o *Object) Fields() []ids.Ref {
	out := make([]ids.Ref, len(o.fields))
	copy(out, o.fields)
	return out
}

// NumFields returns the number of reference fields.
func (o *Object) NumFields() int { return len(o.fields) }

// Field returns the i'th reference field.
func (o *Object) Field(i int) ids.Ref { return o.fields[i] }

// DefaultObjectSize is the nominal payload size of objects allocated
// without an explicit size.
const DefaultObjectSize = 64

// shard is one hash partition of the store. The mutex guards every map in
// the shard; the dirty sets exist only while delta tracking is enabled.
type shard struct {
	mu      sync.RWMutex
	objects map[ids.ObjID]*Object

	persistentRoots map[ids.ObjID]struct{}
	// appRoots counts mutator variables holding each reference; the
	// reference may be local or remote. Local tracing treats these as
	// roots (Section 6.3), and remote entries keep the corresponding
	// outrefs live and clean. Sharded by the reference's object id.
	appRoots map[ids.Ref]int

	// --- incremental-trace write barrier (see TraceSnapshot) ---

	// dirtyObjs names objects whose existence or fields may differ from
	// the shadow shard (allocated, deleted, or field-mutated since the
	// last snapshot); dirtyPersist and dirtyAppRoots are the same for
	// root status.
	dirtyObjs     map[ids.ObjID]struct{}
	dirtyPersist  map[ids.ObjID]struct{}
	dirtyAppRoots map[ids.Ref]struct{}
}

func newShard() *shard {
	return &shard{
		objects:         make(map[ids.ObjID]*Object),
		persistentRoots: make(map[ids.ObjID]struct{}),
		appRoots:        make(map[ids.Ref]int),
	}
}

// Heap is one site's object store.
type Heap struct {
	site   ids.SiteID
	shards []*shard
	next   atomic.Uint64 // allocation high-water mark (ids.ObjID)

	// tracking, when true, makes every mutator operation record what it
	// touched in its shard's dirty set so TraceSnapshot can produce an
	// O(dirty) snapshot and Delta instead of an O(heap) deep copy. Off by
	// default: the bookkeeping is pure overhead for sites that run full
	// traces. Written only while whole-heap exclusion holds (construction
	// or the site write lock).
	tracking bool
	// snap is the shadow copy maintained by TraceSnapshot: a second Heap
	// (same shard count) that mirrors this one as of the last snapshot.
	// It shares no Object structs with the live heap, so a local trace
	// may read it off-lock while mutators keep writing here.
	snap *Heap
}

// Delta describes how the heap changed between two TraceSnapshot calls, in
// the terms the incremental tracer consumes. Classification happens at
// snapshot time by diffing against the shadow copy, so operations that
// cancel out (an edge added and removed again, a variable taken and
// dropped) produce no entries at all.
//
// FieldsAdded lists objects that only gained fields — a monotone change the
// incremental remark handles by rescanning the object. FieldsRemoved lists
// objects that lost at least one field — an invalidating change that forces
// a full trace. Root transitions are split the same way; remote roots are
// the mutator variables holding references owned elsewhere (they seed
// outref distances rather than object marks).
type Delta struct {
	// Full marks the first snapshot (or one taken after tracking was
	// enabled mid-life): no previous state to diff against, so the caller
	// must run a full trace.
	Full bool

	FieldsAdded   []ids.ObjID
	FieldsRemoved []ids.ObjID
	Allocated     []ids.ObjID
	Deleted       []ids.ObjID

	LocalRootsAdded    []ids.ObjID
	LocalRootsRemoved  []ids.ObjID
	RemoteRootsAdded   []ids.Ref
	RemoteRootsRemoved []ids.Ref
}

// Empty reports whether the delta records no change at all.
func (d *Delta) Empty() bool {
	return !d.Full &&
		len(d.FieldsAdded) == 0 && len(d.FieldsRemoved) == 0 &&
		len(d.Allocated) == 0 && len(d.Deleted) == 0 &&
		len(d.LocalRootsAdded) == 0 && len(d.LocalRootsRemoved) == 0 &&
		len(d.RemoteRootsAdded) == 0 && len(d.RemoteRootsRemoved) == 0
}

// Invalidating reports whether the delta contains a change that can revoke
// reachability or raise a distance — the changes the monotone incremental
// remark cannot absorb exactly.
func (d *Delta) Invalidating() bool {
	return len(d.FieldsRemoved) > 0 ||
		len(d.LocalRootsRemoved) > 0 || len(d.RemoteRootsRemoved) > 0
}

// Size returns the number of changed entities, the quantity the dirty-ratio
// fallback knob compares against the heap size.
func (d *Delta) Size() int {
	return len(d.FieldsAdded) + len(d.FieldsRemoved) +
		len(d.Allocated) + len(d.Deleted) +
		len(d.LocalRootsAdded) + len(d.LocalRootsRemoved) +
		len(d.RemoteRootsAdded) + len(d.RemoteRootsRemoved)
}

// New creates an empty single-shard heap for the given site. Library tests
// and baselines use this; sites pass an explicit shard count via
// NewSharded.
func New(site ids.SiteID) *Heap { return NewSharded(site, 1) }

// NewSharded creates an empty heap with the given shard count (clamped to
// at least 1). The shard count is fixed for the heap's lifetime and is
// inherited by its snapshots, so mark tables derived from one heap lineage
// always partition identically.
func NewSharded(site ids.SiteID, shards int) *Heap {
	if shards < 1 {
		shards = 1
	}
	h := &Heap{site: site, shards: make([]*shard, shards)}
	for i := range h.shards {
		h.shards[i] = newShard()
	}
	return h
}

// NumShards returns the heap's shard count.
func (h *Heap) NumShards() int { return len(h.shards) }

// ShardOf returns the shard index owning an object id. References are
// sharded by their object id, so local objects and the application roots
// naming them land in the same shard.
func (h *Heap) ShardOf(obj ids.ObjID) int {
	return int(uint64(obj) % uint64(len(h.shards)))
}

func (h *Heap) shardFor(obj ids.ObjID) *shard { return h.shards[h.ShardOf(obj)] }

// EnableDeltaTracking turns on the write barrier that records dirty
// objects and roots for TraceSnapshot. Sites configured for incremental
// tracing call this once at construction; it requires whole-heap exclusion
// (no concurrent shard operations).
func (h *Heap) EnableDeltaTracking() {
	if h.tracking {
		return
	}
	h.tracking = true
	for _, sh := range h.shards {
		sh.dirtyObjs = make(map[ids.ObjID]struct{})
		sh.dirtyPersist = make(map[ids.ObjID]struct{})
		sh.dirtyAppRoots = make(map[ids.Ref]struct{})
	}
}

// The touch helpers run with the shard lock held.

func (h *Heap) touchObj(sh *shard, obj ids.ObjID) {
	if h.tracking {
		sh.dirtyObjs[obj] = struct{}{}
	}
}

func (h *Heap) touchPersist(sh *shard, obj ids.ObjID) {
	if h.tracking {
		sh.dirtyPersist[obj] = struct{}{}
	}
}

func (h *Heap) touchAppRoot(sh *shard, r ids.Ref) {
	if h.tracking {
		sh.dirtyAppRoots[r] = struct{}{}
	}
}

// Site returns the owning site's identifier.
func (h *Heap) Site() ids.SiteID { return h.site }

// Len returns the number of objects in the heap.
func (h *Heap) Len() int {
	n := 0
	for _, sh := range h.shards {
		sh.mu.RLock()
		n += len(sh.objects)
		sh.mu.RUnlock()
	}
	return n
}

// ShardLen returns the number of objects in one shard.
func (h *Heap) ShardLen(i int) int {
	sh := h.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.objects)
}

// Alloc creates a new object with no fields and DefaultObjectSize payload,
// returning its fully qualified reference.
func (h *Heap) Alloc() ids.Ref { return h.AllocSized(DefaultObjectSize) }

// AllocSized creates a new object with the given nominal payload size.
func (h *Heap) AllocSized(size int) ids.Ref {
	id := ids.ObjID(h.next.Add(1))
	o := &Object{id: id, size: size}
	sh := h.shardFor(id)
	sh.mu.Lock()
	sh.objects[id] = o
	h.touchObj(sh, id)
	sh.mu.Unlock()
	return ids.MakeRef(h.site, id)
}

// AllocRoot creates a new object and marks it a persistent root.
func (h *Heap) AllocRoot() ids.Ref {
	id := ids.ObjID(h.next.Add(1))
	o := &Object{id: id, size: DefaultObjectSize}
	sh := h.shardFor(id)
	sh.mu.Lock()
	sh.objects[id] = o
	sh.persistentRoots[id] = struct{}{}
	h.touchObj(sh, id)
	h.touchPersist(sh, id)
	sh.mu.Unlock()
	return ids.MakeRef(h.site, id)
}

// MarkPersistentRoot designates an existing local object as a persistent
// root (an entry point into the store, such as a name server or directory).
func (h *Heap) MarkPersistentRoot(obj ids.ObjID) error {
	sh := h.shardFor(obj)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.objects[obj]; !ok {
		return fmt.Errorf("heap %v: mark root: no object %v", h.site, obj)
	}
	sh.persistentRoots[obj] = struct{}{}
	h.touchPersist(sh, obj)
	return nil
}

// UnmarkPersistentRoot removes root status from a local object.
func (h *Heap) UnmarkPersistentRoot(obj ids.ObjID) {
	sh := h.shardFor(obj)
	sh.mu.Lock()
	delete(sh.persistentRoots, obj)
	h.touchPersist(sh, obj)
	sh.mu.Unlock()
}

// IsPersistentRoot reports whether a local object is a persistent root.
func (h *Heap) IsPersistentRoot(obj ids.ObjID) bool {
	sh := h.shardFor(obj)
	sh.mu.RLock()
	_, ok := sh.persistentRoots[obj]
	sh.mu.RUnlock()
	return ok
}

// PersistentRoots returns the local persistent roots in ascending order.
func (h *Heap) PersistentRoots() []ids.ObjID {
	var out []ids.ObjID
	for _, sh := range h.shards {
		sh.mu.RLock()
		for o := range sh.persistentRoots {
			out = append(out, o)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Get returns the object with the given identifier. The returned Object's
// fields must only be read when field mutators are excluded (snapshot
// heaps, or the site write lock); use FieldsOf for concurrent
// introspection.
func (h *Heap) Get(obj ids.ObjID) (*Object, bool) {
	sh := h.shardFor(obj)
	sh.mu.RLock()
	o, ok := sh.objects[obj]
	sh.mu.RUnlock()
	return o, ok
}

// FieldsOf returns a copy of an object's reference fields, taken under the
// shard lock so it is safe against concurrent field mutation.
func (h *Heap) FieldsOf(obj ids.ObjID) ([]ids.Ref, bool) {
	sh := h.shardFor(obj)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	o, ok := sh.objects[obj]
	if !ok {
		return nil, false
	}
	return o.Fields(), true
}

// Contains reports whether the heap holds the object.
func (h *Heap) Contains(obj ids.ObjID) bool {
	sh := h.shardFor(obj)
	sh.mu.RLock()
	_, ok := sh.objects[obj]
	sh.mu.RUnlock()
	return ok
}

// Objects returns all object identifiers in ascending order.
func (h *Heap) Objects() []ids.ObjID {
	out := make([]ids.ObjID, 0, h.Len())
	for _, sh := range h.shards {
		sh.mu.RLock()
		for o := range sh.objects {
			out = append(out, o)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EachObjectInShard invokes fn for every object in one shard, in
// unspecified order, holding the shard read lock. The parallel tracer uses
// it to partition heap scans without allocating id slices; fn must not
// mutate the heap.
func (h *Heap) EachObjectInShard(i int, fn func(ids.ObjID, *Object)) {
	sh := h.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for id, o := range sh.objects {
		fn(id, o)
	}
}

// AddField appends a reference field to a local object (reference
// creation: "copying a reference z into object y", Section 6.1).
func (h *Heap) AddField(obj ids.ObjID, target ids.Ref) error {
	sh := h.shardFor(obj)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	o, ok := sh.objects[obj]
	if !ok {
		return fmt.Errorf("heap %v: add field: no object %v", h.site, obj)
	}
	o.fields = append(o.fields, target)
	h.touchObj(sh, obj)
	return nil
}

// RemoveField deletes the first field of obj equal to target (reference
// deletion). It reports whether a field was removed.
func (h *Heap) RemoveField(obj ids.ObjID, target ids.Ref) (bool, error) {
	sh := h.shardFor(obj)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	o, ok := sh.objects[obj]
	if !ok {
		return false, fmt.Errorf("heap %v: remove field: no object %v", h.site, obj)
	}
	for i, f := range o.fields {
		if f == target {
			o.fields = append(o.fields[:i], o.fields[i+1:]...)
			h.touchObj(sh, obj)
			return true, nil
		}
	}
	return false, nil
}

// ClearFields removes every reference field of obj.
func (h *Heap) ClearFields(obj ids.ObjID) error {
	sh := h.shardFor(obj)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	o, ok := sh.objects[obj]
	if !ok {
		return fmt.Errorf("heap %v: clear fields: no object %v", h.site, obj)
	}
	o.fields = nil
	h.touchObj(sh, obj)
	return nil
}

// Delete removes an object from the heap (called by the collector when the
// object is garbage, and by the migration baseline after moving it).
func (h *Heap) Delete(obj ids.ObjID) {
	sh := h.shardFor(obj)
	sh.mu.Lock()
	delete(sh.objects, obj)
	delete(sh.persistentRoots, obj)
	h.touchObj(sh, obj)
	h.touchPersist(sh, obj)
	sh.mu.Unlock()
}

// Install recreates an object under a specific identifier (checkpoint
// recovery). It fails if the identifier is already in use.
func (h *Heap) Install(id ids.ObjID, fields []ids.Ref, size int, root bool) error {
	if id == ids.NoObj {
		return fmt.Errorf("heap %v: install: zero object id", h.site)
	}
	sh := h.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.objects[id]; ok {
		return fmt.Errorf("heap %v: install: object %v already exists", h.site, id)
	}
	o := &Object{id: id, size: size}
	o.fields = make([]ids.Ref, len(fields))
	copy(o.fields, fields)
	sh.objects[id] = o
	h.touchObj(sh, id)
	if root {
		sh.persistentRoots[id] = struct{}{}
		h.touchPersist(sh, id)
	}
	h.SetNextID(id)
	return nil
}

// Snapshot returns a deep copy of the heap: objects (with copied field
// slices), persistent roots, application roots, and the allocation
// high-water mark. Shards are copied concurrently, each under its own read
// lock. The copy shares nothing with the original, so a local trace can
// read it while mutators keep modifying the live heap — the
// short-critical-section snapshot that lets tracer.Run execute outside the
// site lock (Section 6.2).
func (h *Heap) Snapshot() *Heap {
	cp := NewSharded(h.site, len(h.shards))
	cp.next.Store(h.next.Load())
	h.eachShardConcurrent(func(i int) {
		src, dst := h.shards[i], cp.shards[i]
		src.mu.RLock()
		defer src.mu.RUnlock()
		dst.objects = make(map[ids.ObjID]*Object, len(src.objects))
		for id, o := range src.objects {
			fields := make([]ids.Ref, len(o.fields))
			copy(fields, o.fields)
			dst.objects[id] = &Object{id: o.id, fields: fields, size: o.size}
		}
		dst.persistentRoots = make(map[ids.ObjID]struct{}, len(src.persistentRoots))
		for o := range src.persistentRoots {
			dst.persistentRoots[o] = struct{}{}
		}
		dst.appRoots = make(map[ids.Ref]int, len(src.appRoots))
		for r, n := range src.appRoots {
			dst.appRoots[r] = n
		}
	})
	return cp
}

// eachShardConcurrent runs fn(i) for every shard index, on one goroutine
// per shard when the heap has more than one.
func (h *Heap) eachShardConcurrent(fn func(i int)) {
	if len(h.shards) == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for i := range h.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// TraceSnapshot returns a read-only snapshot of the heap plus the Delta of
// changes since the previous TraceSnapshot call. The first call (and any
// call before EnableDeltaTracking) deep-copies the whole heap and returns a
// Full delta; subsequent calls patch each shard of the retained shadow copy
// from that shard's dirty set — concurrently across shards, O(dirty) in
// total — and diff each dirty entity against its shadow state, so an idle
// heap snapshots in O(1) regardless of size.
//
// The returned heap is the shadow copy itself: it shares no Object structs
// with the live heap (an off-lock trace may read it while mutators write
// here), but it is patched in place by the NEXT TraceSnapshot call — the
// caller must be done with it by then. The site's trace mutex provides
// exactly that serialization.
func (h *Heap) TraceSnapshot() (*Heap, *Delta) {
	if !h.tracking {
		h.EnableDeltaTracking()
	}
	if h.snap == nil {
		h.snap = h.Snapshot()
		for _, sh := range h.shards {
			sh.mu.Lock()
			clear(sh.dirtyObjs)
			clear(sh.dirtyPersist)
			clear(sh.dirtyAppRoots)
			sh.mu.Unlock()
		}
		return h.snap, &Delta{Full: true}
	}
	parts := make([]Delta, len(h.shards))
	h.eachShardConcurrent(func(i int) {
		h.patchShard(h.shards[i], h.snap.shards[i], &parts[i])
	})
	h.snap.next.Store(h.next.Load())
	d := &Delta{}
	for i := range parts {
		p := &parts[i]
		d.FieldsAdded = append(d.FieldsAdded, p.FieldsAdded...)
		d.FieldsRemoved = append(d.FieldsRemoved, p.FieldsRemoved...)
		d.Allocated = append(d.Allocated, p.Allocated...)
		d.Deleted = append(d.Deleted, p.Deleted...)
		d.LocalRootsAdded = append(d.LocalRootsAdded, p.LocalRootsAdded...)
		d.LocalRootsRemoved = append(d.LocalRootsRemoved, p.LocalRootsRemoved...)
		d.RemoteRootsAdded = append(d.RemoteRootsAdded, p.RemoteRootsAdded...)
		d.RemoteRootsRemoved = append(d.RemoteRootsRemoved, p.RemoteRootsRemoved...)
	}
	d.sort()
	return h.snap, d
}

// patchShard brings one shadow shard up to date from the live shard's dirty
// set, accumulating the shard's contribution to the Delta. It locks the
// live shard; the shadow shard is owned exclusively by the snapshot
// lineage (the site's trace mutex).
func (h *Heap) patchShard(live, snap *shard, d *Delta) {
	live.mu.Lock()
	defer live.mu.Unlock()
	for obj := range live.dirtyObjs {
		liveO, liveOK := live.objects[obj]
		snapO, snapOK := snap.objects[obj]
		switch {
		case liveOK && !snapOK:
			fields := make([]ids.Ref, len(liveO.fields))
			copy(fields, liveO.fields)
			snap.objects[obj] = &Object{id: liveO.id, fields: fields, size: liveO.size}
			d.Allocated = append(d.Allocated, obj)
		case !liveOK && snapOK:
			delete(snap.objects, obj)
			d.Deleted = append(d.Deleted, obj)
		case liveOK && snapOK:
			added, removed := fieldDiff(snapO.fields, liveO.fields)
			if added || removed {
				fields := make([]ids.Ref, len(liveO.fields))
				copy(fields, liveO.fields)
				snapO.fields = fields
				if removed {
					d.FieldsRemoved = append(d.FieldsRemoved, obj)
				} else {
					d.FieldsAdded = append(d.FieldsAdded, obj)
				}
			}
		}
	}
	for obj := range live.dirtyPersist {
		_, liveRoot := live.persistentRoots[obj]
		_, snapRoot := snap.persistentRoots[obj]
		switch {
		case liveRoot && !snapRoot:
			snap.persistentRoots[obj] = struct{}{}
			d.LocalRootsAdded = append(d.LocalRootsAdded, obj)
		case !liveRoot && snapRoot:
			delete(snap.persistentRoots, obj)
			d.LocalRootsRemoved = append(d.LocalRootsRemoved, obj)
		}
	}
	for r := range live.dirtyAppRoots {
		liveN := live.appRoots[r]
		snapN := snap.appRoots[r]
		if liveN > 0 {
			snap.appRoots[r] = liveN
		} else {
			delete(snap.appRoots, r)
		}
		held, was := liveN > 0, snapN > 0
		switch {
		case held && !was:
			if r.Site == h.site {
				d.LocalRootsAdded = append(d.LocalRootsAdded, r.Obj)
			} else {
				d.RemoteRootsAdded = append(d.RemoteRootsAdded, r)
			}
		case !held && was:
			if r.Site == h.site {
				d.LocalRootsRemoved = append(d.LocalRootsRemoved, r.Obj)
			} else {
				d.RemoteRootsRemoved = append(d.RemoteRootsRemoved, r)
			}
		}
	}
	clear(live.dirtyObjs)
	clear(live.dirtyPersist)
	clear(live.dirtyAppRoots)
}

// ResetTraceSnapshot discards the shadow copy so the next TraceSnapshot is
// Full. Used when a trace built on the snapshot lineage was abandoned (the
// delta it consumed is gone) and after wholesale state replacement.
func (h *Heap) ResetTraceSnapshot() {
	h.snap = nil
	if h.tracking {
		for _, sh := range h.shards {
			sh.mu.Lock()
			clear(sh.dirtyObjs)
			clear(sh.dirtyPersist)
			clear(sh.dirtyAppRoots)
			sh.mu.Unlock()
		}
	}
}

// MaxShardDirtyRatio returns the largest per-shard ratio of dirty entities
// to shard objects since the last TraceSnapshot (0 when tracking is off or
// the heap is empty). Incremental sites export it as the
// localtrace.parallel.shard_dirty_ratio gauge: a ratio near 1 on one shard
// while others idle shows mutation skew that per-shard snapshot patching
// absorbs and a global deep copy would not.
func (h *Heap) MaxShardDirtyRatio() float64 {
	if !h.tracking {
		return 0
	}
	max := 0.0
	for _, sh := range h.shards {
		sh.mu.RLock()
		dirty := len(sh.dirtyObjs) + len(sh.dirtyPersist) + len(sh.dirtyAppRoots)
		n := len(sh.objects)
		sh.mu.RUnlock()
		if n == 0 {
			n = 1
		}
		if r := float64(dirty) / float64(n); r > max {
			max = r
		}
	}
	return max
}

func (d *Delta) sort() {
	objs := func(s []ids.ObjID) {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	refs := func(s []ids.Ref) {
		sort.Slice(s, func(i, j int) bool { return s[i].Less(s[j]) })
	}
	objs(d.FieldsAdded)
	objs(d.FieldsRemoved)
	objs(d.Allocated)
	objs(d.Deleted)
	objs(d.LocalRootsAdded)
	objs(d.LocalRootsRemoved)
	refs(d.RemoteRootsAdded)
	refs(d.RemoteRootsRemoved)
}

// fieldDiff compares two field multisets: added reports a reference present
// more times in new than old, removed the reverse. An edge added and then
// removed again between snapshots reports neither.
func fieldDiff(old, new []ids.Ref) (added, removed bool) {
	if len(old) == 0 || len(new) == 0 {
		return len(new) > len(old), len(old) > len(new)
	}
	counts := make(map[ids.Ref]int, len(old))
	for _, f := range old {
		counts[f]++
	}
	for _, f := range new {
		counts[f]--
	}
	for _, n := range counts {
		if n > 0 {
			removed = true
		} else if n < 0 {
			added = true
		}
	}
	return added, removed
}

// NextID returns the allocation high-water mark (for checkpointing).
func (h *Heap) NextID() ids.ObjID { return ids.ObjID(h.next.Load()) }

// SetNextID raises the allocation high-water mark (checkpoint recovery);
// it never lowers it.
func (h *Heap) SetNextID(n ids.ObjID) {
	for {
		cur := h.next.Load()
		if uint64(n) <= cur || h.next.CompareAndSwap(cur, uint64(n)) {
			return
		}
	}
}

// Adopt installs an object received from another site under a fresh local
// identifier (used by the migration baseline) and returns its new local
// reference. The object's fields are supplied by the caller.
func (h *Heap) Adopt(fields []ids.Ref, size int) ids.Ref {
	id := ids.ObjID(h.next.Add(1))
	o := &Object{id: id, size: size}
	o.fields = make([]ids.Ref, len(fields))
	copy(o.fields, fields)
	sh := h.shardFor(id)
	sh.mu.Lock()
	sh.objects[id] = o
	h.touchObj(sh, id)
	sh.mu.Unlock()
	return ids.MakeRef(h.site, id)
}

// --- application roots --------------------------------------------------

// AddAppRoot records that a mutator variable on this site holds the given
// reference (local or remote). Multiple holds are counted.
func (h *Heap) AddAppRoot(r ids.Ref) {
	sh := h.shardFor(r.Obj)
	sh.mu.Lock()
	sh.appRoots[r]++
	h.touchAppRoot(sh, r)
	sh.mu.Unlock()
}

// RemoveAppRoot releases one mutator-variable hold on the reference. It
// reports whether a hold existed.
func (h *Heap) RemoveAppRoot(r ids.Ref) bool {
	sh := h.shardFor(r.Obj)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n, ok := sh.appRoots[r]
	if !ok {
		return false
	}
	if n <= 1 {
		delete(sh.appRoots, r)
	} else {
		sh.appRoots[r] = n - 1
	}
	h.touchAppRoot(sh, r)
	return true
}

// AppRoots returns the distinct references held by mutator variables, in
// ascending order.
func (h *Heap) AppRoots() []ids.Ref {
	var out []ids.Ref
	for _, sh := range h.shards {
		sh.mu.RLock()
		for r := range sh.appRoots {
			out = append(out, r)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// HoldsAppRoot reports whether any mutator variable holds the reference.
func (h *Heap) HoldsAppRoot(r ids.Ref) bool {
	sh := h.shardFor(r.Obj)
	sh.mu.RLock()
	n := sh.appRoots[r]
	sh.mu.RUnlock()
	return n > 0
}

// --- reachability helpers (used by local tracing and by tests) ----------

// lockAllRead takes every shard's read lock in index order; the returned
// function releases them.
func (h *Heap) lockAllRead() func() {
	for _, sh := range h.shards {
		sh.mu.RLock()
	}
	return func() {
		for _, sh := range h.shards {
			sh.mu.RUnlock()
		}
	}
}

// LocalReachable computes the set of local objects reachable from the given
// starting references by following only local references (remote fields are
// not followed). Starting references owned by other sites are ignored.
func (h *Heap) LocalReachable(starts []ids.Ref) map[ids.ObjID]struct{} {
	defer h.lockAllRead()()
	seen := make(map[ids.ObjID]struct{})
	var stack []ids.ObjID
	push := func(r ids.Ref) {
		if r.Site != h.site {
			return
		}
		if _, ok := h.shardFor(r.Obj).objects[r.Obj]; !ok {
			return
		}
		if _, ok := seen[r.Obj]; ok {
			return
		}
		seen[r.Obj] = struct{}{}
		stack = append(stack, r.Obj)
	}
	for _, s := range starts {
		push(s)
	}
	for len(stack) > 0 {
		obj := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range h.shardFor(obj).objects[obj].fields {
			push(f)
		}
	}
	return seen
}

// RemoteRefsFrom returns, in ascending order, the distinct remote references
// held in the fields of the given set of local objects.
func (h *Heap) RemoteRefsFrom(objs map[ids.ObjID]struct{}) []ids.Ref {
	defer h.lockAllRead()()
	set := make(map[ids.Ref]struct{})
	for obj := range objs {
		o, ok := h.shardFor(obj).objects[obj]
		if !ok {
			continue
		}
		for _, f := range o.fields {
			if f.Site != h.site && !f.IsZero() {
				set[f] = struct{}{}
			}
		}
	}
	out := make([]ids.Ref, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

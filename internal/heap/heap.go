// Package heap implements a site's local object store: objects with
// reference fields, persistent roots, and application roots (the mutator's
// local variables, Section 2 and Section 6.3 of the paper).
//
// A Heap is deliberately not safe for concurrent use; the owning Site
// serializes every access (mutator operations, local traces, and message
// handlers all go through the site's lock). Keeping synchronization at the
// site level matches the paper's model of short atomic critical sections.
package heap

import (
	"fmt"
	"sort"

	"backtrace/internal/ids"
)

// Object is one object in a site's store: an identifier, reference fields,
// and a nominal payload size in bytes (used only for accounting, e.g. the
// bytes moved by the migration baseline).
type Object struct {
	id     ids.ObjID
	fields []ids.Ref
	size   int
}

// ID returns the object's identifier within its owning site.
func (o *Object) ID() ids.ObjID { return o.id }

// Size returns the object's nominal payload size in bytes.
func (o *Object) Size() int { return o.size }

// Fields returns a copy of the object's reference fields.
func (o *Object) Fields() []ids.Ref {
	out := make([]ids.Ref, len(o.fields))
	copy(out, o.fields)
	return out
}

// NumFields returns the number of reference fields.
func (o *Object) NumFields() int { return len(o.fields) }

// Field returns the i'th reference field.
func (o *Object) Field(i int) ids.Ref { return o.fields[i] }

// DefaultObjectSize is the nominal payload size of objects allocated
// without an explicit size.
const DefaultObjectSize = 64

// Heap is one site's object store.
type Heap struct {
	site    ids.SiteID
	objects map[ids.ObjID]*Object
	next    ids.ObjID

	persistentRoots map[ids.ObjID]struct{}
	// appRoots counts mutator variables holding each reference; the
	// reference may be local or remote. Local tracing treats these as
	// roots (Section 6.3), and remote entries keep the corresponding
	// outrefs live and clean.
	appRoots map[ids.Ref]int

	// --- incremental-trace write barrier (see TraceSnapshot) ---

	// tracking, when true, makes every mutator operation record what it
	// touched so TraceSnapshot can produce an O(dirty) snapshot and Delta
	// instead of an O(heap) deep copy. Off by default: the bookkeeping is
	// pure overhead for sites that run full traces.
	tracking bool
	// snap is the shadow copy maintained by TraceSnapshot: a second Heap
	// that mirrors this one as of the last snapshot. It shares no Object
	// structs with the live heap, so a local trace may read it off-lock
	// while mutators keep writing here.
	snap *Heap
	// dirtyObjs names objects whose existence or fields may differ from
	// snap (allocated, deleted, or field-mutated since the last snapshot).
	dirtyObjs map[ids.ObjID]struct{}
	// dirtyPersist names objects whose persistent-root status may have
	// changed; dirtyAppRoots names references whose application-root
	// holding status may have changed.
	dirtyPersist  map[ids.ObjID]struct{}
	dirtyAppRoots map[ids.Ref]struct{}
}

// Delta describes how the heap changed between two TraceSnapshot calls, in
// the terms the incremental tracer consumes. Classification happens at
// snapshot time by diffing against the shadow copy, so operations that
// cancel out (an edge added and removed again, a variable taken and
// dropped) produce no entries at all.
//
// FieldsAdded lists objects that only gained fields — a monotone change the
// incremental remark handles by rescanning the object. FieldsRemoved lists
// objects that lost at least one field — an invalidating change that forces
// a full trace. Root transitions are split the same way; remote roots are
// the mutator variables holding references owned elsewhere (they seed
// outref distances rather than object marks).
type Delta struct {
	// Full marks the first snapshot (or one taken after tracking was
	// enabled mid-life): no previous state to diff against, so the caller
	// must run a full trace.
	Full bool

	FieldsAdded   []ids.ObjID
	FieldsRemoved []ids.ObjID
	Allocated     []ids.ObjID
	Deleted       []ids.ObjID

	LocalRootsAdded    []ids.ObjID
	LocalRootsRemoved  []ids.ObjID
	RemoteRootsAdded   []ids.Ref
	RemoteRootsRemoved []ids.Ref
}

// Empty reports whether the delta records no change at all.
func (d *Delta) Empty() bool {
	return !d.Full &&
		len(d.FieldsAdded) == 0 && len(d.FieldsRemoved) == 0 &&
		len(d.Allocated) == 0 && len(d.Deleted) == 0 &&
		len(d.LocalRootsAdded) == 0 && len(d.LocalRootsRemoved) == 0 &&
		len(d.RemoteRootsAdded) == 0 && len(d.RemoteRootsRemoved) == 0
}

// Invalidating reports whether the delta contains a change that can revoke
// reachability or raise a distance — the changes the monotone incremental
// remark cannot absorb exactly.
func (d *Delta) Invalidating() bool {
	return len(d.FieldsRemoved) > 0 ||
		len(d.LocalRootsRemoved) > 0 || len(d.RemoteRootsRemoved) > 0
}

// Size returns the number of changed entities, the quantity the dirty-ratio
// fallback knob compares against the heap size.
func (d *Delta) Size() int {
	return len(d.FieldsAdded) + len(d.FieldsRemoved) +
		len(d.Allocated) + len(d.Deleted) +
		len(d.LocalRootsAdded) + len(d.LocalRootsRemoved) +
		len(d.RemoteRootsAdded) + len(d.RemoteRootsRemoved)
}

// New creates an empty heap for the given site.
func New(site ids.SiteID) *Heap {
	return &Heap{
		site:            site,
		objects:         make(map[ids.ObjID]*Object),
		persistentRoots: make(map[ids.ObjID]struct{}),
		appRoots:        make(map[ids.Ref]int),
	}
}

// EnableDeltaTracking turns on the write barrier that records dirty
// objects and roots for TraceSnapshot. Sites configured for incremental
// tracing call this once at construction.
func (h *Heap) EnableDeltaTracking() {
	if h.tracking {
		return
	}
	h.tracking = true
	h.dirtyObjs = make(map[ids.ObjID]struct{})
	h.dirtyPersist = make(map[ids.ObjID]struct{})
	h.dirtyAppRoots = make(map[ids.Ref]struct{})
}

func (h *Heap) touchObj(obj ids.ObjID) {
	if h.tracking {
		h.dirtyObjs[obj] = struct{}{}
	}
}

func (h *Heap) touchPersist(obj ids.ObjID) {
	if h.tracking {
		h.dirtyPersist[obj] = struct{}{}
	}
}

func (h *Heap) touchAppRoot(r ids.Ref) {
	if h.tracking {
		h.dirtyAppRoots[r] = struct{}{}
	}
}

// Site returns the owning site's identifier.
func (h *Heap) Site() ids.SiteID { return h.site }

// Len returns the number of objects in the heap.
func (h *Heap) Len() int { return len(h.objects) }

// Alloc creates a new object with no fields and DefaultObjectSize payload,
// returning its fully qualified reference.
func (h *Heap) Alloc() ids.Ref { return h.AllocSized(DefaultObjectSize) }

// AllocSized creates a new object with the given nominal payload size.
func (h *Heap) AllocSized(size int) ids.Ref {
	h.next++
	o := &Object{id: h.next, size: size}
	h.objects[h.next] = o
	h.touchObj(h.next)
	return ids.MakeRef(h.site, h.next)
}

// AllocRoot creates a new object and marks it a persistent root.
func (h *Heap) AllocRoot() ids.Ref {
	r := h.Alloc()
	h.persistentRoots[r.Obj] = struct{}{}
	h.touchPersist(r.Obj)
	return r
}

// MarkPersistentRoot designates an existing local object as a persistent
// root (an entry point into the store, such as a name server or directory).
func (h *Heap) MarkPersistentRoot(obj ids.ObjID) error {
	if _, ok := h.objects[obj]; !ok {
		return fmt.Errorf("heap %v: mark root: no object %v", h.site, obj)
	}
	h.persistentRoots[obj] = struct{}{}
	h.touchPersist(obj)
	return nil
}

// UnmarkPersistentRoot removes root status from a local object.
func (h *Heap) UnmarkPersistentRoot(obj ids.ObjID) {
	delete(h.persistentRoots, obj)
	h.touchPersist(obj)
}

// IsPersistentRoot reports whether a local object is a persistent root.
func (h *Heap) IsPersistentRoot(obj ids.ObjID) bool {
	_, ok := h.persistentRoots[obj]
	return ok
}

// PersistentRoots returns the local persistent roots in ascending order.
func (h *Heap) PersistentRoots() []ids.ObjID {
	out := make([]ids.ObjID, 0, len(h.persistentRoots))
	for o := range h.persistentRoots {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Get returns the object with the given identifier.
func (h *Heap) Get(obj ids.ObjID) (*Object, bool) {
	o, ok := h.objects[obj]
	return o, ok
}

// Contains reports whether the heap holds the object.
func (h *Heap) Contains(obj ids.ObjID) bool {
	_, ok := h.objects[obj]
	return ok
}

// Objects returns all object identifiers in ascending order.
func (h *Heap) Objects() []ids.ObjID {
	out := make([]ids.ObjID, 0, len(h.objects))
	for o := range h.objects {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddField appends a reference field to a local object (reference
// creation: "copying a reference z into object y", Section 6.1).
func (h *Heap) AddField(obj ids.ObjID, target ids.Ref) error {
	o, ok := h.objects[obj]
	if !ok {
		return fmt.Errorf("heap %v: add field: no object %v", h.site, obj)
	}
	o.fields = append(o.fields, target)
	h.touchObj(obj)
	return nil
}

// RemoveField deletes the first field of obj equal to target (reference
// deletion). It reports whether a field was removed.
func (h *Heap) RemoveField(obj ids.ObjID, target ids.Ref) (bool, error) {
	o, ok := h.objects[obj]
	if !ok {
		return false, fmt.Errorf("heap %v: remove field: no object %v", h.site, obj)
	}
	for i, f := range o.fields {
		if f == target {
			o.fields = append(o.fields[:i], o.fields[i+1:]...)
			h.touchObj(obj)
			return true, nil
		}
	}
	return false, nil
}

// ClearFields removes every reference field of obj.
func (h *Heap) ClearFields(obj ids.ObjID) error {
	o, ok := h.objects[obj]
	if !ok {
		return fmt.Errorf("heap %v: clear fields: no object %v", h.site, obj)
	}
	o.fields = nil
	h.touchObj(obj)
	return nil
}

// Delete removes an object from the heap (called by the collector when the
// object is garbage, and by the migration baseline after moving it).
func (h *Heap) Delete(obj ids.ObjID) {
	delete(h.objects, obj)
	delete(h.persistentRoots, obj)
	h.touchObj(obj)
	h.touchPersist(obj)
}

// Install recreates an object under a specific identifier (checkpoint
// recovery). It fails if the identifier is already in use.
func (h *Heap) Install(id ids.ObjID, fields []ids.Ref, size int, root bool) error {
	if id == ids.NoObj {
		return fmt.Errorf("heap %v: install: zero object id", h.site)
	}
	if _, ok := h.objects[id]; ok {
		return fmt.Errorf("heap %v: install: object %v already exists", h.site, id)
	}
	o := &Object{id: id, size: size}
	o.fields = make([]ids.Ref, len(fields))
	copy(o.fields, fields)
	h.objects[id] = o
	h.touchObj(id)
	if root {
		h.persistentRoots[id] = struct{}{}
		h.touchPersist(id)
	}
	if id > h.next {
		h.next = id
	}
	return nil
}

// Snapshot returns a deep copy of the heap: objects (with copied field
// slices), persistent roots, application roots, and the allocation
// high-water mark. The copy shares nothing with the original, so a local
// trace can read it while mutators keep modifying the live heap — the
// short-critical-section snapshot that lets tracer.Run execute outside the
// site lock (Section 6.2).
func (h *Heap) Snapshot() *Heap {
	cp := &Heap{
		site:            h.site,
		objects:         make(map[ids.ObjID]*Object, len(h.objects)),
		next:            h.next,
		persistentRoots: make(map[ids.ObjID]struct{}, len(h.persistentRoots)),
		appRoots:        make(map[ids.Ref]int, len(h.appRoots)),
	}
	for id, o := range h.objects {
		fields := make([]ids.Ref, len(o.fields))
		copy(fields, o.fields)
		cp.objects[id] = &Object{id: o.id, fields: fields, size: o.size}
	}
	for o := range h.persistentRoots {
		cp.persistentRoots[o] = struct{}{}
	}
	for r, n := range h.appRoots {
		cp.appRoots[r] = n
	}
	return cp
}

// TraceSnapshot returns a read-only snapshot of the heap plus the Delta of
// changes since the previous TraceSnapshot call. The first call (and any
// call before EnableDeltaTracking) deep-copies the whole heap and returns a
// Full delta; subsequent calls patch the retained shadow copy in O(dirty)
// and diff each dirty entity against its shadow state, so an idle heap
// snapshots in O(1) regardless of size.
//
// The returned heap is the shadow copy itself: it shares no Object structs
// with the live heap (an off-lock trace may read it while mutators write
// here), but it is patched in place by the NEXT TraceSnapshot call — the
// caller must be done with it by then. The site's trace mutex provides
// exactly that serialization.
func (h *Heap) TraceSnapshot() (*Heap, *Delta) {
	if !h.tracking {
		h.EnableDeltaTracking()
	}
	if h.snap == nil {
		h.snap = h.Snapshot()
		clear(h.dirtyObjs)
		clear(h.dirtyPersist)
		clear(h.dirtyAppRoots)
		return h.snap, &Delta{Full: true}
	}
	d := &Delta{}
	snap := h.snap
	for obj := range h.dirtyObjs {
		liveO, liveOK := h.objects[obj]
		snapO, snapOK := snap.objects[obj]
		switch {
		case liveOK && !snapOK:
			fields := make([]ids.Ref, len(liveO.fields))
			copy(fields, liveO.fields)
			snap.objects[obj] = &Object{id: liveO.id, fields: fields, size: liveO.size}
			d.Allocated = append(d.Allocated, obj)
		case !liveOK && snapOK:
			delete(snap.objects, obj)
			d.Deleted = append(d.Deleted, obj)
		case liveOK && snapOK:
			added, removed := fieldDiff(snapO.fields, liveO.fields)
			if added || removed {
				fields := make([]ids.Ref, len(liveO.fields))
				copy(fields, liveO.fields)
				snapO.fields = fields
				if removed {
					d.FieldsRemoved = append(d.FieldsRemoved, obj)
				} else {
					d.FieldsAdded = append(d.FieldsAdded, obj)
				}
			}
		}
	}
	for obj := range h.dirtyPersist {
		_, liveRoot := h.persistentRoots[obj]
		_, snapRoot := snap.persistentRoots[obj]
		switch {
		case liveRoot && !snapRoot:
			snap.persistentRoots[obj] = struct{}{}
			d.LocalRootsAdded = append(d.LocalRootsAdded, obj)
		case !liveRoot && snapRoot:
			delete(snap.persistentRoots, obj)
			d.LocalRootsRemoved = append(d.LocalRootsRemoved, obj)
		}
	}
	for r := range h.dirtyAppRoots {
		liveN := h.appRoots[r]
		snapN := snap.appRoots[r]
		if liveN > 0 {
			snap.appRoots[r] = liveN
		} else {
			delete(snap.appRoots, r)
		}
		held, was := liveN > 0, snapN > 0
		switch {
		case held && !was:
			if r.Site == h.site {
				d.LocalRootsAdded = append(d.LocalRootsAdded, r.Obj)
			} else {
				d.RemoteRootsAdded = append(d.RemoteRootsAdded, r)
			}
		case !held && was:
			if r.Site == h.site {
				d.LocalRootsRemoved = append(d.LocalRootsRemoved, r.Obj)
			} else {
				d.RemoteRootsRemoved = append(d.RemoteRootsRemoved, r)
			}
		}
	}
	snap.next = h.next
	clear(h.dirtyObjs)
	clear(h.dirtyPersist)
	clear(h.dirtyAppRoots)
	d.sort()
	return snap, d
}

// ResetTraceSnapshot discards the shadow copy so the next TraceSnapshot is
// Full. Used when a trace built on the snapshot lineage was abandoned (the
// delta it consumed is gone) and after wholesale state replacement.
func (h *Heap) ResetTraceSnapshot() {
	h.snap = nil
	if h.tracking {
		clear(h.dirtyObjs)
		clear(h.dirtyPersist)
		clear(h.dirtyAppRoots)
	}
}

func (d *Delta) sort() {
	objs := func(s []ids.ObjID) {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	refs := func(s []ids.Ref) {
		sort.Slice(s, func(i, j int) bool { return s[i].Less(s[j]) })
	}
	objs(d.FieldsAdded)
	objs(d.FieldsRemoved)
	objs(d.Allocated)
	objs(d.Deleted)
	objs(d.LocalRootsAdded)
	objs(d.LocalRootsRemoved)
	refs(d.RemoteRootsAdded)
	refs(d.RemoteRootsRemoved)
}

// fieldDiff compares two field multisets: added reports a reference present
// more times in new than old, removed the reverse. An edge added and then
// removed again between snapshots reports neither.
func fieldDiff(old, new []ids.Ref) (added, removed bool) {
	if len(old) == 0 || len(new) == 0 {
		return len(new) > len(old), len(old) > len(new)
	}
	counts := make(map[ids.Ref]int, len(old))
	for _, f := range old {
		counts[f]++
	}
	for _, f := range new {
		counts[f]--
	}
	for _, n := range counts {
		if n > 0 {
			removed = true
		} else if n < 0 {
			added = true
		}
	}
	return added, removed
}

// NextID returns the allocation high-water mark (for checkpointing).
func (h *Heap) NextID() ids.ObjID { return h.next }

// SetNextID raises the allocation high-water mark (checkpoint recovery);
// it never lowers it.
func (h *Heap) SetNextID(n ids.ObjID) {
	if n > h.next {
		h.next = n
	}
}

// Adopt installs an object received from another site under a fresh local
// identifier (used by the migration baseline) and returns its new local
// reference. The object's fields are supplied by the caller.
func (h *Heap) Adopt(fields []ids.Ref, size int) ids.Ref {
	r := h.AllocSized(size)
	o := h.objects[r.Obj]
	o.fields = make([]ids.Ref, len(fields))
	copy(o.fields, fields)
	return r
}

// --- application roots --------------------------------------------------

// AddAppRoot records that a mutator variable on this site holds the given
// reference (local or remote). Multiple holds are counted.
func (h *Heap) AddAppRoot(r ids.Ref) {
	h.appRoots[r]++
	h.touchAppRoot(r)
}

// RemoveAppRoot releases one mutator-variable hold on the reference. It
// reports whether a hold existed.
func (h *Heap) RemoveAppRoot(r ids.Ref) bool {
	n, ok := h.appRoots[r]
	if !ok {
		return false
	}
	if n <= 1 {
		delete(h.appRoots, r)
	} else {
		h.appRoots[r] = n - 1
	}
	h.touchAppRoot(r)
	return true
}

// AppRoots returns the distinct references held by mutator variables, in
// ascending order.
func (h *Heap) AppRoots() []ids.Ref {
	out := make([]ids.Ref, 0, len(h.appRoots))
	for r := range h.appRoots {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// HoldsAppRoot reports whether any mutator variable holds the reference.
func (h *Heap) HoldsAppRoot(r ids.Ref) bool {
	return h.appRoots[r] > 0
}

// --- reachability helpers (used by local tracing and by tests) ----------

// LocalReachable computes the set of local objects reachable from the given
// starting references by following only local references (remote fields are
// not followed). Starting references owned by other sites are ignored.
func (h *Heap) LocalReachable(starts []ids.Ref) map[ids.ObjID]struct{} {
	seen := make(map[ids.ObjID]struct{})
	var stack []ids.ObjID
	push := func(r ids.Ref) {
		if r.Site != h.site {
			return
		}
		if _, ok := h.objects[r.Obj]; !ok {
			return
		}
		if _, ok := seen[r.Obj]; ok {
			return
		}
		seen[r.Obj] = struct{}{}
		stack = append(stack, r.Obj)
	}
	for _, s := range starts {
		push(s)
	}
	for len(stack) > 0 {
		obj := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range h.objects[obj].fields {
			push(f)
		}
	}
	return seen
}

// RemoteRefsFrom returns, in ascending order, the distinct remote references
// held in the fields of the given set of local objects.
func (h *Heap) RemoteRefsFrom(objs map[ids.ObjID]struct{}) []ids.Ref {
	set := make(map[ids.Ref]struct{})
	for obj := range objs {
		o, ok := h.objects[obj]
		if !ok {
			continue
		}
		for _, f := range o.fields {
			if f.Site != h.site && !f.IsZero() {
				set[f] = struct{}{}
			}
		}
	}
	out := make([]ids.Ref, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

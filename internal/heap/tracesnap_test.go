package heap

import (
	"math/rand"
	"testing"

	"backtrace/internal/ids"
)

// sameTracerView fails the test unless snap presents exactly the
// tracer-visible state of live: object set, per-object fields (in order),
// persistent roots, and application roots.
func sameTracerView(t *testing.T, live, snap *Heap) {
	t.Helper()
	liveObjs, snapObjs := live.Objects(), snap.Objects()
	if len(liveObjs) != len(snapObjs) {
		t.Fatalf("object count: live %d snap %d", len(liveObjs), len(snapObjs))
	}
	for i, obj := range liveObjs {
		if snapObjs[i] != obj {
			t.Fatalf("object set diverges at %d: live %v snap %v", i, obj, snapObjs[i])
		}
		lo, _ := live.Get(obj)
		so, _ := snap.Get(obj)
		if lo.NumFields() != so.NumFields() {
			t.Fatalf("obj %v: field count live %d snap %d", obj, lo.NumFields(), so.NumFields())
		}
		for f := 0; f < lo.NumFields(); f++ {
			if lo.Field(f) != so.Field(f) {
				t.Fatalf("obj %v field %d: live %v snap %v", obj, f, lo.Field(f), so.Field(f))
			}
		}
		if lo == so {
			t.Fatalf("obj %v: snapshot shares the live *Object", obj)
		}
	}
	lp, sp := live.PersistentRoots(), snap.PersistentRoots()
	if len(lp) != len(sp) {
		t.Fatalf("persistent roots: live %v snap %v", lp, sp)
	}
	for i := range lp {
		if lp[i] != sp[i] {
			t.Fatalf("persistent roots: live %v snap %v", lp, sp)
		}
	}
	la, sa := live.AppRoots(), snap.AppRoots()
	if len(la) != len(sa) {
		t.Fatalf("app roots: live %v snap %v", la, sa)
	}
	for i := range la {
		if la[i] != sa[i] {
			t.Fatalf("app roots: live %v snap %v", la, sa)
		}
	}
	if live.NextID() != snap.NextID() {
		t.Fatalf("next id: live %v snap %v", live.NextID(), snap.NextID())
	}
}

// TestTraceSnapshotEquivalence drives a randomized mutation sequence and
// checks after every round that the patched shadow snapshot is
// indistinguishable from a fresh deep copy.
func TestTraceSnapshotEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := New(1)
		h.EnableDeltaTracking()

		var objs []ids.Ref
		for i := 0; i < 5; i++ {
			objs = append(objs, h.AllocRoot())
		}

		for round := 0; round < 12; round++ {
			for step := 0; step < 30; step++ {
				switch rng.Intn(8) {
				case 0:
					objs = append(objs, h.Alloc())
				case 1:
					src := objs[rng.Intn(len(objs))]
					dst := objs[rng.Intn(len(objs))]
					_ = h.AddField(src.Obj, dst)
				case 2:
					src := objs[rng.Intn(len(objs))]
					dst := objs[rng.Intn(len(objs))]
					_, _ = h.RemoveField(src.Obj, dst)
				case 3:
					// Remote reference into a field.
					src := objs[rng.Intn(len(objs))]
					remote := ids.Ref{Site: 2, Obj: ids.ObjID(rng.Intn(50) + 1)}
					_ = h.AddField(src.Obj, remote)
				case 4:
					r := objs[rng.Intn(len(objs))]
					if h.IsPersistentRoot(r.Obj) {
						h.UnmarkPersistentRoot(r.Obj)
					} else {
						_ = h.MarkPersistentRoot(r.Obj)
					}
				case 5:
					r := objs[rng.Intn(len(objs))]
					if rng.Intn(2) == 0 {
						h.AddAppRoot(r)
					} else {
						h.RemoveAppRoot(r)
					}
				case 6:
					remote := ids.Ref{Site: 3, Obj: ids.ObjID(rng.Intn(20) + 1)}
					if rng.Intn(2) == 0 {
						h.AddAppRoot(remote)
					} else {
						h.RemoveAppRoot(remote)
					}
				case 7:
					if len(objs) > 3 {
						i := rng.Intn(len(objs))
						h.Delete(objs[i].Obj)
						objs = append(objs[:i], objs[i+1:]...)
					}
				}
			}
			snap, d := h.TraceSnapshot()
			if round == 0 && !d.Full {
				t.Fatalf("seed %d: first delta not Full", seed)
			}
			if round > 0 && d.Full {
				t.Fatalf("seed %d round %d: unexpected Full delta", seed, round)
			}
			sameTracerView(t, h, snap)
		}
	}
}

// TestTraceSnapshotCancellingOps checks that operations undone before the
// snapshot produce no delta entries at all.
func TestTraceSnapshotCancellingOps(t *testing.T) {
	h := New(1)
	h.EnableDeltaTracking()
	a := h.AllocRoot()
	b := h.Alloc()
	if _, d := h.TraceSnapshot(); !d.Full {
		t.Fatal("first delta not Full")
	}

	// Edge added then removed again: no field delta.
	if err := h.AddField(a.Obj, b); err != nil {
		t.Fatal(err)
	}
	if _, err := h.RemoveField(a.Obj, b); err != nil {
		t.Fatal(err)
	}
	// Variable taken then dropped: no root delta.
	h.AddAppRoot(b)
	h.RemoveAppRoot(b)
	// Remote variable taken then dropped.
	remote := ids.Ref{Site: 9, Obj: 4}
	h.AddAppRoot(remote)
	h.RemoveAppRoot(remote)
	// Persistent root toggled back.
	if err := h.MarkPersistentRoot(b.Obj); err != nil {
		t.Fatal(err)
	}
	h.UnmarkPersistentRoot(b.Obj)

	if _, d := h.TraceSnapshot(); !d.Empty() {
		t.Fatalf("cancelling ops left a delta: %+v", d)
	}
}

// TestTraceSnapshotClassification checks each delta bucket on targeted
// mutations.
func TestTraceSnapshotClassification(t *testing.T) {
	h := New(1)
	h.EnableDeltaTracking()
	a := h.AllocRoot()
	h.TraceSnapshot()

	b := h.Alloc()
	if err := h.AddField(a.Obj, b); err != nil {
		t.Fatal(err)
	}
	remote := ids.Ref{Site: 2, Obj: 7}
	h.AddAppRoot(remote)
	h.AddAppRoot(b)
	_, d := h.TraceSnapshot()
	if len(d.Allocated) != 1 || d.Allocated[0] != b.Obj {
		t.Fatalf("Allocated = %v, want [%v]", d.Allocated, b.Obj)
	}
	if len(d.FieldsAdded) != 1 || d.FieldsAdded[0] != a.Obj {
		t.Fatalf("FieldsAdded = %v, want [%v]", d.FieldsAdded, a.Obj)
	}
	if len(d.RemoteRootsAdded) != 1 || d.RemoteRootsAdded[0] != remote {
		t.Fatalf("RemoteRootsAdded = %v, want [%v]", d.RemoteRootsAdded, remote)
	}
	if len(d.LocalRootsAdded) != 1 || d.LocalRootsAdded[0] != b.Obj {
		t.Fatalf("LocalRootsAdded = %v, want [%v]", d.LocalRootsAdded, b.Obj)
	}
	if d.Invalidating() {
		t.Fatalf("monotone delta reported Invalidating: %+v", d)
	}

	// Now the invalidating buckets.
	if _, err := h.RemoveField(a.Obj, b); err != nil {
		t.Fatal(err)
	}
	h.RemoveAppRoot(remote)
	h.RemoveAppRoot(b)
	c := h.Alloc()
	h.Delete(c.Obj)
	_, d = h.TraceSnapshot()
	if len(d.FieldsRemoved) != 1 || d.FieldsRemoved[0] != a.Obj {
		t.Fatalf("FieldsRemoved = %v, want [%v]", d.FieldsRemoved, a.Obj)
	}
	if len(d.RemoteRootsRemoved) != 1 || d.RemoteRootsRemoved[0] != remote {
		t.Fatalf("RemoteRootsRemoved = %v, want [%v]", d.RemoteRootsRemoved, remote)
	}
	if len(d.LocalRootsRemoved) != 1 || d.LocalRootsRemoved[0] != b.Obj {
		t.Fatalf("LocalRootsRemoved = %v, want [%v]", d.LocalRootsRemoved, b.Obj)
	}
	// c was allocated and deleted between snapshots: no trace of it.
	if len(d.Allocated) != 0 || len(d.Deleted) != 0 {
		t.Fatalf("alloc+delete between snapshots leaked: %+v", d)
	}
	if !d.Invalidating() {
		t.Fatalf("removals not Invalidating: %+v", d)
	}
}

// TestTraceSnapshotReset checks that ResetTraceSnapshot forces the next
// snapshot to be Full again.
func TestTraceSnapshotReset(t *testing.T) {
	h := New(1)
	h.EnableDeltaTracking()
	h.AllocRoot()
	h.TraceSnapshot()
	h.Alloc()
	h.ResetTraceSnapshot()
	snap, d := h.TraceSnapshot()
	if !d.Full {
		t.Fatal("delta after reset not Full")
	}
	sameTracerView(t, h, snap)
}

package viz

import (
	"strings"
	"testing"

	"backtrace/internal/cluster"
)

func testCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c := cluster.New(cluster.Options{
		NumSites:           3,
		SuspicionThreshold: 3,
		BackThreshold:      1 << 20,
		AutoBackTrace:      false,
	})
	t.Cleanup(c.Close)
	return c
}

func TestClusterDOTStructure(t *testing.T) {
	c := testCluster(t)
	root := c.Site(1).NewRootObject()
	x := c.Site(2).NewObject()
	c.MustLink(root, x)
	c.BuildRing()
	c.RunRounds(8) // make the ring suspected

	dot := ClusterDOT(c)
	for _, want := range []string{
		"digraph backtrace {",
		"subgraph cluster_1", "subgraph cluster_2", "subgraph cluster_3",
		"palegreen",      // the persistent root
		"orange",         // suspected ring members / edges
		"style=dashed",   // inter-site edges
		"s1_o1 -> s2_o1", // root -> x crosses sites 1->2 (first objects)
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q\n%s", want, dot)
		}
	}
	// Balanced braces.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces")
	}
}

func TestClusterDOTFlaggedGarbage(t *testing.T) {
	c := cluster.New(cluster.Options{
		NumSites:           2,
		SuspicionThreshold: 3,
		BackThreshold:      7,
		ThresholdBump:      4,
		AutoBackTrace:      false,
	})
	defer c.Close()
	objs := c.BuildRing()
	c.RunRounds(8)
	// Confirm the cycle garbage but do NOT run the local traces that
	// delete it: the DOT must show the flagged (red) state.
	if _, ok := c.Site(1).StartBackTrace(objs[1]); !ok {
		t.Fatal("no trace")
	}
	c.Settle()
	dot := ClusterDOT(c)
	if !strings.Contains(dot, "lightcoral") {
		t.Errorf("flagged inrefs not rendered red:\n%s", dot)
	}
}

func TestClusterDOTPinnedEdge(t *testing.T) {
	c := testCluster(t)
	y := c.Site(2).NewObject()
	if err := c.Site(2).SendRef(1, y); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	// Site 1 holds y; forward to site 3 but leave the transfer pending so
	// the pin is visible.
	if err := c.Site(1).SendRef(3, y); err != nil {
		t.Fatal(err)
	}
	x := c.Site(1).NewObject()
	if err := c.Site(1).AddReference(x.Obj, y); err != nil {
		t.Fatal(err)
	}
	dot := ClusterDOT(c)
	if !strings.Contains(dot, "color=blue") {
		t.Errorf("pinned outref edge not blue:\n%s", dot)
	}
}

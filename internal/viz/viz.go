// Package viz renders a cluster's state as a Graphviz DOT document: one
// subgraph per site, objects colored by their collector classification
// (persistent root, clean, suspected, garbage-flagged), reference edges
// with inter-site edges styled by the holding outref's cleanliness. Useful
// for debugging protocols and for teaching the algorithm.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"backtrace/internal/cluster"
	"backtrace/internal/ids"
	"backtrace/internal/site"
)

// siteView bundles the per-site state the renderer needs.
type siteView struct {
	id      ids.SiteID
	audit   site.Audit
	inrefs  map[ids.ObjID]site.InrefInfo
	outrefs map[ids.Ref]site.OutrefInfo
}

// ClusterDOT renders the whole cluster.
func ClusterDOT(c *cluster.Cluster) string {
	var views []siteView
	for _, s := range c.Sites() {
		v := siteView{
			id:      s.ID(),
			audit:   s.AuditSnapshot(),
			inrefs:  make(map[ids.ObjID]site.InrefInfo),
			outrefs: make(map[ids.Ref]site.OutrefInfo),
		}
		for _, in := range s.Inrefs() {
			v.inrefs[in.Obj] = in
		}
		for _, o := range s.Outrefs() {
			v.outrefs[o.Target] = o
		}
		views = append(views, v)
	}

	var b strings.Builder
	b.WriteString("digraph backtrace {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=circle, style=filled, fontsize=10];\n")

	for _, v := range views {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n", v.id)
		fmt.Fprintf(&b, "    label=\"site %v\";\n    color=gray;\n", v.id)
		objs := make([]ids.ObjID, 0, len(v.audit.Objects))
		for obj := range v.audit.Objects {
			objs = append(objs, obj)
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		roots := make(map[ids.ObjID]bool, len(v.audit.PersistentRoots))
		for _, r := range v.audit.PersistentRoots {
			roots[r] = true
		}
		for _, obj := range objs {
			fmt.Fprintf(&b, "    %s [label=\"%v\", fillcolor=%s%s];\n",
				nodeID(v.id, obj), obj, fillColor(v, obj, roots[obj]), extraStyle(roots[obj]))
		}
		b.WriteString("  }\n")
	}

	// Edges (after all nodes, so cross-subgraph edges resolve).
	for _, v := range views {
		objs := make([]ids.ObjID, 0, len(v.audit.Objects))
		for obj := range v.audit.Objects {
			objs = append(objs, obj)
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		for _, obj := range objs {
			for _, f := range v.audit.Objects[obj] {
				if f.IsZero() {
					continue
				}
				attrs := ""
				if f.Site != v.id {
					attrs = " [style=dashed, color=" + outrefColor(v, f) + "]"
				}
				fmt.Fprintf(&b, "  %s -> %s%s;\n", nodeID(v.id, obj), nodeID(f.Site, f.Obj), attrs)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func nodeID(s ids.SiteID, o ids.ObjID) string {
	return fmt.Sprintf("s%d_o%d", s, o)
}

// fillColor classifies an object: persistent roots green, garbage-flagged
// inrefs red, suspected inrefs orange, everything else white.
func fillColor(v siteView, obj ids.ObjID, root bool) string {
	if root {
		return "palegreen"
	}
	if in, ok := v.inrefs[obj]; ok {
		switch {
		case in.Garbage:
			return "lightcoral"
		case !in.Clean:
			return "orange"
		}
		return "lightblue"
	}
	return "white"
}

func extraStyle(root bool) string {
	if root {
		return ", penwidth=2"
	}
	return ""
}

// outrefColor styles an inter-site edge by the holder's outref state.
func outrefColor(v siteView, target ids.Ref) string {
	o, ok := v.outrefs[target]
	switch {
	case !ok:
		return "gray" // no outref recorded (should not happen at quiescence)
	case o.Pinned:
		return "blue"
	case !o.Clean:
		return "orange"
	default:
		return "black"
	}
}

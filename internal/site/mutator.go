package site

import (
	"fmt"

	"backtrace/internal/ids"
	"backtrace/internal/msg"
)

// This file is the mutator API (Section 2): applications create objects,
// insert and delete references, hold references in variables (application
// roots), and pass references between sites. Every operation that moves a
// reference across sites goes through the transfer and insert barriers of
// Section 6.1.
//
// Operations that touch only the heap (allocation, root flips, field
// removal) take the site READ lock: the heap is internally sharded with
// per-shard locks, so such mutators on distinct shards run concurrently
// and contend only with whole-site critical sections (trace snapshots,
// message handlers), never with each other. Operations that consult or
// mutate the ioref tables, or that send messages, keep the write lock.

// NewObject allocates an object on this site and returns its reference.
func (s *Site) NewObject() ids.Ref {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.heap.Alloc()
}

// NewRootObject allocates an object and designates it a persistent root
// (an entry point into the store, such as a directory).
func (s *Site) NewRootObject() ids.Ref {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.heap.AllocRoot()
}

// NewHeldObject allocates an object and registers a mutator-variable hold
// on it in the same critical section, so no trace snapshot can observe the
// object unrooted. Mutators that keep the returned reference in a variable
// (rather than immediately linking it) must use this instead of NewObject:
// the Section 2 model requires every reference a mutator can still use to
// be visible to the collector as a root. The hold is released with
// DropAppRoot.
func (s *Site) NewHeldObject() ids.Ref {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.heap.Alloc()
	s.heap.AddAppRoot(r)
	return r
}

// AddAppRoot records that a mutator variable on this site holds the given
// reference. References received from other sites (SendRef, Traverse) are
// registered automatically; use this for references obtained by reading
// local objects.
func (s *Site) AddAppRoot(r ids.Ref) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.heap.AddAppRoot(r)
}

// DropAppRoot releases one mutator-variable hold on the reference.
func (s *Site) DropAppRoot(r ids.Ref) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.heap.RemoveAppRoot(r)
}

// AddReference copies a reference into a local object — the paper's local
// copy (Section 6.1.1). The container must be a local object. If the
// target is remote, an outref must already exist or the target must be
// held by a mutator variable; in a well-typed mutator this always holds,
// because the only ways to obtain a remote reference are reading a local
// field (outref exists) or receiving it from another site (SendRef
// registered it).
//
// The paper's safety argument assumes the mutator obtained the reference
// by traversing a path to it, which fired the transfer barrier on the way
// in. Since this API cannot verify that discipline, it conservatively
// applies the barrier itself: a copy can create new paths to a suspect, so
// the suspect's iorefs are cleaned until the next local trace recomputes
// the back information. The cost is at most a deferred back trace; the
// benefit is that no caller can violate the local safety invariant.
func (s *Site) AddReference(container ids.ObjID, target ids.Ref) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.flushOutbox()
	if !s.heap.Contains(container) {
		return fmt.Errorf("site %v: add reference: no object %v", s.cfg.ID, container)
	}
	if target.Site != s.cfg.ID {
		o, ok := s.table.Outref(target)
		if !ok {
			// The mutator conjured a remote reference this site never
			// received: a protocol violation in the caller.
			return fmt.Errorf("site %v: add reference: no outref for %v (reference was never transferred here)", s.cfg.ID, target)
		}
		if !o.IsClean(s.threshold) && !s.cfg.SkipTransferBarrierUnsafe {
			s.cleanOutref(target)
		}
	} else {
		if !s.heap.Contains(target.Obj) {
			return fmt.Errorf("site %v: add reference: target %v does not exist", s.cfg.ID, target)
		}
		s.applyTransferBarrierInref(target.Obj)
	}
	return s.heap.AddField(container, target)
}

// RemoveReference deletes one occurrence of target from a local object's
// fields (the paper ignores deletions for back-information safety; the
// next local trace reflects them).
func (s *Site) RemoveReference(container ids.ObjID, target ids.Ref) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, err := s.heap.RemoveField(container, target)
	return err
}

// Fields returns the reference fields of a local object. The copy is taken
// under the object's shard lock, so it is consistent even against
// concurrent read-locked mutators on the same shard.
func (s *Site) Fields(obj ids.ObjID) ([]ids.Ref, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	fields, ok := s.heap.FieldsOf(obj)
	if !ok {
		return nil, fmt.Errorf("site %v: fields: no object %v", s.cfg.ID, obj)
	}
	return fields, nil
}

// MarkPersistentRoot promotes an existing local object to a persistent
// root; UnmarkPersistentRoot demotes it (turning everything reachable only
// from it into garbage).
func (s *Site) MarkPersistentRoot(obj ids.ObjID) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.heap.MarkPersistentRoot(obj)
}

// UnmarkPersistentRoot removes the persistent-root designation.
func (s *Site) UnmarkPersistentRoot(obj ids.ObjID) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.heap.UnmarkPersistentRoot(obj)
}

// SendRef passes a reference to another site, as the target, argument, or
// result of a remote call (Section 6.1.1). The receiving site registers
// the reference as a mutator variable (application root), applies the
// transfer barrier, and runs the insert protocol if it had no outref.
//
// Per the insert barrier (Section 6.1.2), this site retains the reference
// — an insert-barrier pin on its outref, or an application-root hold if it
// owns the target — until the owner confirms it has recorded the new
// holder; the confirmation arrives as a ReleasePin message.
func (s *Site) SendRef(to ids.SiteID, target ids.Ref) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.flushOutbox()
	return s.sendRefLocked(to, target)
}

func (s *Site) sendRefLocked(to ids.SiteID, target ids.Ref) error {
	if target.IsZero() {
		return fmt.Errorf("site %v: send ref: zero reference", s.cfg.ID)
	}
	if target.Site == s.cfg.ID {
		if !s.heap.Contains(target.Obj) {
			return fmt.Errorf("site %v: send ref: no local object %v", s.cfg.ID, target.Obj)
		}
		// Retain the object until the receiver's insert (or the
		// receiver itself, if it is the owner) is recorded.
		s.heap.AddAppRoot(target)
	} else {
		if _, ok := s.table.Outref(target); !ok {
			return fmt.Errorf("site %v: send ref: no outref for %v", s.cfg.ID, target)
		}
		s.table.Pin(target)
	}
	if to == s.cfg.ID {
		// Degenerate self-send: just release the retention again.
		s.releasePinLocked(target)
		s.heap.AddAppRoot(target)
		if target.Site == s.cfg.ID {
			s.applyTransferBarrierInref(target.Obj)
		}
		return nil
	}
	s.send(to, msg.RefTransfer{Payload: target, Pinner: s.cfg.ID})
	return nil
}

// Traverse follows a remote reference: the mutator moves to the target's
// site, which registers the reference as an application root and applies
// the transfer barrier ("a mutator may traverse an inter-site reference by
// passing the reference in a message from the source site to the target
// site", Section 2). The caller typically continues operating on the
// target site afterwards.
func (s *Site) Traverse(target ids.Ref) error {
	if target.Site == s.cfg.ID {
		return fmt.Errorf("site %v: traverse: %v is local", s.cfg.ID, target)
	}
	return s.SendRef(target.Site, target)
}

package site

import (
	"strings"
	"testing"
	"time"

	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/msg"
	"backtrace/internal/transport"
)

// newPair builds two sites on a stepped in-memory network.
func newPair(t *testing.T) (*Site, *Site, *transport.Net) {
	t.Helper()
	net := transport.NewNet(transport.Options{Stepped: true})
	t.Cleanup(net.Close)
	a := New(Config{ID: 1, Network: net, SuspicionThreshold: 3, BackThreshold: 7})
	b := New(Config{ID: 2, Network: net, SuspicionThreshold: 3, BackThreshold: 7})
	return a, b, net
}

func TestMutatorAPIErrors(t *testing.T) {
	a, _, _ := newPair(t)

	if err := a.AddReference(99, ids.MakeRef(1, 1)); err == nil {
		t.Error("AddReference with missing container accepted")
	}
	x := a.NewObject()
	if err := a.AddReference(x.Obj, ids.MakeRef(1, 999)); err == nil {
		t.Error("AddReference to missing local target accepted")
	}
	if err := a.AddReference(x.Obj, ids.MakeRef(2, 1)); err == nil {
		t.Error("AddReference to never-transferred remote target accepted")
	}
	if err := a.SendRef(2, ids.Ref{}); err == nil {
		t.Error("SendRef of zero ref accepted")
	}
	if err := a.SendRef(2, ids.MakeRef(1, 999)); err == nil {
		t.Error("SendRef of missing local object accepted")
	}
	if err := a.SendRef(2, ids.MakeRef(3, 9)); err == nil {
		t.Error("SendRef of unheld remote ref accepted")
	}
	if err := a.Traverse(ids.MakeRef(1, 1)); err == nil {
		t.Error("Traverse of local ref accepted")
	}
	if _, err := a.Fields(12345); err == nil {
		t.Error("Fields of missing object accepted")
	}
	if err := a.MarkPersistentRoot(12345); err == nil {
		t.Error("MarkPersistentRoot of missing object accepted")
	}
}

func TestRemoveReference(t *testing.T) {
	a, _, _ := newPair(t)
	x := a.NewObject()
	y := a.NewObject()
	if err := a.AddReference(x.Obj, y); err != nil {
		t.Fatal(err)
	}
	if err := a.RemoveReference(x.Obj, y); err != nil {
		t.Fatal(err)
	}
	fields, err := a.Fields(x.Obj)
	if err != nil || len(fields) != 0 {
		t.Fatalf("fields = %v, %v", fields, err)
	}
}

func TestTransferBarrierCleansSuspectedInrefAndOutset(t *testing.T) {
	_, b, _ := newPair(t)

	// At B: object x with a suspected inref from site 1, referencing a
	// remote object r at site 1 (suspected outref).
	x := b.NewObject()
	r := ids.MakeRef(1, 50)
	b.mu.Lock()
	b.table.AddSource(x.Obj, 1)
	b.table.SetSourceDistance(x.Obj, 1, 20)
	if err := b.heap.AddField(x.Obj, r); err != nil {
		b.mu.Unlock()
		t.Fatal(err)
	}
	b.table.EnsureOutref(r)
	b.mu.Unlock()

	// A local trace computes the back information: outset(x) = {r}.
	b.RunLocalTrace()
	b.mu.Lock()
	in, ok := b.table.Inref(x.Obj)
	if !ok || in.IsClean(b.cfg.SuspicionThreshold) {
		b.mu.Unlock()
		t.Fatal("setup: inref should exist and be suspected")
	}
	o, ok := b.table.Outref(r)
	if !ok || o.IsClean(b.cfg.SuspicionThreshold) {
		b.mu.Unlock()
		t.Fatalf("setup: outref should be suspected (dist=%d)", o.Distance)
	}
	if got := b.back.Outset(x.Obj); len(got) != 1 || got[0] != r {
		b.mu.Unlock()
		t.Fatalf("setup: outset(x) = %v, want {r}", got)
	}
	b.mu.Unlock()

	// A mutator transfers a reference to x here: the transfer barrier
	// must clean the inref AND every outref in its outset (Section 6.1.1).
	b.Deliver(1, msg.RefTransfer{Payload: x, Pinner: ids.NoSite})

	b.mu.Lock()
	defer b.mu.Unlock()
	if !in.Barrier || !in.IsClean(b.cfg.SuspicionThreshold) {
		t.Error("transfer barrier did not clean the inref")
	}
	if !o.Barrier || !o.IsClean(b.cfg.SuspicionThreshold) {
		t.Error("transfer barrier did not clean the outrefs in the inset")
	}
}

func TestCompletionsDrained(t *testing.T) {
	a, _, _ := newPair(t)
	if got := a.Completions(); len(got) != 0 {
		t.Fatalf("fresh site has completions: %v", got)
	}
}

func TestDeliverUnknownMessageTypesIgnored(t *testing.T) {
	a, _, _ := newPair(t)
	// InsertAck and ReleasePin for unknown targets must be no-ops.
	a.Deliver(2, msg.InsertAck{Target: ids.MakeRef(2, 9)})
	a.Deliver(2, msg.ReleasePin{Target: ids.MakeRef(2, 9)})
	a.Deliver(2, msg.Update{Removals: []ids.ObjID{42}})
	a.Deliver(2, msg.Report{Trace: ids.TraceID{Initiator: 2, Seq: 1}})
}

func TestInsertForMissingObjectStillReleasesPin(t *testing.T) {
	a, b, net := newPair(t)
	// B claims to hold a reference to a non-existent object at A, with A
	// itself as pinner (degenerate); the insert must not create an inref.
	b.Deliver(1, msg.RefTransfer{Payload: ids.MakeRef(1, 999), Pinner: 1})
	net.DeliverAll()
	if a.NumInrefs() != 0 {
		t.Fatal("inref created for missing object")
	}
	_ = a
}

func TestAdaptiveThresholdRaisesAfterLiveStreak(t *testing.T) {
	net := transport.NewNet(transport.Options{Stepped: true})
	defer net.Close()
	counters := &metrics.Counters{}
	a := New(Config{
		ID: 1, Network: net,
		SuspicionThreshold: 3, BackThreshold: 5, ThresholdBump: 2,
		AdaptiveThreshold: true, Counters: counters,
	})
	b := New(Config{
		ID: 2, Network: net,
		SuspicionThreshold: 3, BackThreshold: 5,
		Counters: counters,
	})
	_ = b

	before := a.SuspicionThreshold()
	// Three Live outcomes in a row must raise T by one.
	for i := 0; i < 3; i++ {
		a.onTraceCompleted(ids.TraceID{Initiator: 1, Seq: uint64(i)}, msg.VerdictLive, nil)
	}
	if got := a.SuspicionThreshold(); got != before+1 {
		t.Fatalf("threshold = %d after live streak, want %d", got, before+1)
	}
	// A Garbage outcome resets the streak.
	a.onTraceCompleted(ids.TraceID{Initiator: 1, Seq: 9}, msg.VerdictGarbage, nil)
	a.onTraceCompleted(ids.TraceID{Initiator: 1, Seq: 10}, msg.VerdictLive, nil)
	a.onTraceCompleted(ids.TraceID{Initiator: 1, Seq: 11}, msg.VerdictLive, nil)
	if got := a.SuspicionThreshold(); got != before+1 {
		t.Fatalf("threshold rose without a full live streak: %d", got)
	}
}

// TestTCPEndToEndCycleCollection runs two real sites over TCP loopback and
// collects a two-site garbage cycle — the full stack, sockets included.
func TestTCPEndToEndCycleCollection(t *testing.T) {
	counters := &metrics.Counters{}
	addrs := map[ids.SiteID]string{1: "127.0.0.1:0", 2: "127.0.0.1:0"}

	n1, err := transport.NewTCPNode(1, addrs, counters.ObserveMessage)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := transport.NewTCPNode(2, addrs, counters.ObserveMessage)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()

	s1 := New(Config{ID: 1, Network: n1, SuspicionThreshold: 3, BackThreshold: 7,
		AutoBackTrace: true, CallTimeout: 2 * time.Second, ReportTimeout: 10 * time.Second,
		Counters: counters})
	s2 := New(Config{ID: 2, Network: n2, SuspicionThreshold: 3, BackThreshold: 7,
		AutoBackTrace: true, CallTimeout: 2 * time.Second, ReportTimeout: 10 * time.Second,
		Counters: counters})

	a1, err := n1.Listen()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := n2.Listen()
	if err != nil {
		t.Fatal(err)
	}
	n1.SetAddr(2, a2)
	n2.SetAddr(1, a1)

	link := func(holder, owner *Site, from, target ids.Ref) {
		t.Helper()
		if err := owner.SendRef(from.Site, target); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			if err := holder.AddReference(from.Obj, target); err == nil {
				holder.DropAppRoot(target)
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("transfer of %v never arrived", target)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	root := s1.NewRootObject()
	live := s2.NewObject()
	link(s1, s2, root, live)
	x := s1.NewObject()
	y := s2.NewObject()
	link(s1, s2, x, y)
	link(s2, s1, y, x)

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		s1.RunLocalTrace()
		s2.RunLocalTrace()
		time.Sleep(20 * time.Millisecond)
		s1.CheckTimeouts()
		s2.CheckTimeouts()
		if !s1.ContainsObject(x.Obj) && !s2.ContainsObject(y.Obj) {
			break
		}
	}
	if s1.ContainsObject(x.Obj) || s2.ContainsObject(y.Obj) {
		t.Fatal("cycle not collected over TCP")
	}
	if !s1.ContainsObject(root.Obj) || !s2.ContainsObject(live.Obj) {
		t.Fatal("live object collected")
	}
}

// TestTraceEngineInstrumentsDeclared pins the /metrics contract the CI
// smoke scrape greps for: site.New declares the trace-traffic instruments
// up front, so they render (at zero) before any back trace runs and with
// the engine knobs off.
func TestTraceEngineInstrumentsDeclared(t *testing.T) {
	net := transport.NewNet(transport.Options{Stepped: true})
	t.Cleanup(net.Close)
	counters := &metrics.Counters{}
	s := New(Config{ID: 1, Network: net, SuspicionThreshold: 3, BackThreshold: 7, Counters: counters})
	t.Cleanup(s.Close)

	var b strings.Builder
	if err := counters.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"\nbacktrace_inflight 0\n",
		"\nbacktrace_memo_hits 0\n",
		"\nbacktrace_batch_size 0\n",
		"\nbacktrace_joined 0\n",
		"\nbacktrace_deferred 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", strings.TrimSpace(want))
		}
	}
}

package site

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"backtrace/internal/ids"
	"backtrace/internal/msg"
	"backtrace/internal/transport"
)

// buildPersistPair creates two sites with a live chain and a cross-site
// garbage cycle, distances propagated.
func buildPersistPair(t *testing.T) (*Site, *Site, *transport.Net, [4]ids.Ref) {
	t.Helper()
	net := transport.NewNet(transport.Options{Stepped: true})
	t.Cleanup(net.Close)
	a := New(Config{ID: 1, Network: net, SuspicionThreshold: 3, BackThreshold: 7, AutoBackTrace: true})
	b := New(Config{ID: 2, Network: net, SuspicionThreshold: 3, BackThreshold: 7, AutoBackTrace: true})

	link := func(holder, owner *Site, from, target ids.Ref) {
		t.Helper()
		if err := owner.SendRef(from.Site, target); err != nil {
			t.Fatal(err)
		}
		net.DeliverAll()
		if err := holder.AddReference(from.Obj, target); err != nil {
			t.Fatal(err)
		}
		holder.DropAppRoot(target)
		net.DeliverAll()
	}

	root := a.NewRootObject()
	live := b.NewObject()
	link(a, b, root, live)
	x := a.NewObject()
	y := b.NewObject()
	link(a, b, x, y)
	link(b, a, y, x)

	// A few rounds of distance propagation (not enough to collect).
	for i := 0; i < 2; i++ {
		a.RunLocalTrace()
		net.DeliverAll()
		b.RunLocalTrace()
		net.DeliverAll()
	}
	return a, b, net, [4]ids.Ref{root, live, x, y}
}

func TestCheckpointRoundTrip(t *testing.T) {
	_, b, _, refs := buildPersistPair(t)

	var buf bytes.Buffer
	if err := b.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore onto a fresh network (standalone comparison).
	net2 := transport.NewNet(transport.Options{Stepped: true})
	defer net2.Close()
	b2, err := Restore(Config{Network: net2, SuspicionThreshold: 3, BackThreshold: 7}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if b2.ID() != 2 {
		t.Fatalf("restored site id %v", b2.ID())
	}
	if b2.NumObjects() != b.NumObjects() {
		t.Fatalf("objects: restored %d, original %d", b2.NumObjects(), b.NumObjects())
	}
	if b2.NumInrefs() != b.NumInrefs() || b2.NumOutrefs() != b.NumOutrefs() {
		t.Fatal("ioref tables differ after restore")
	}
	// Live and cycle objects present.
	for _, r := range []ids.Ref{refs[1], refs[3]} {
		if !b2.ContainsObject(r.Obj) {
			t.Fatalf("restored site missing object %v", r)
		}
	}
	// Restored iorefs are conservatively clean until the first trace.
	for _, in := range b2.Inrefs() {
		if !in.Clean {
			t.Errorf("restored inref %v not clean", in.Obj)
		}
	}
	for _, o := range b2.Outrefs() {
		if !o.Clean {
			t.Errorf("restored outref %v not clean", o.Target)
		}
	}
}

func TestCheckpointVersionAndIDChecks(t *testing.T) {
	_, b, _, _ := buildPersistPair(t)
	var buf bytes.Buffer
	if err := b.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	net2 := transport.NewNet(transport.Options{Stepped: true})
	defer net2.Close()
	if _, err := Restore(Config{ID: 9, Network: net2}, &buf); err == nil {
		t.Fatal("restore with mismatched site id accepted")
	}
	if _, err := Restore(Config{Network: net2}, bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("restore of junk accepted")
	}
}

func TestCheckpointFileAtomic(t *testing.T) {
	_, b, _, _ := buildPersistPair(t)
	path := filepath.Join(t.TempDir(), "site2.ckpt")
	if err := b.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a newer checkpoint (rename path).
	if err := b.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	net2 := transport.NewNet(transport.Options{Stepped: true})
	defer net2.Close()
	b2, err := RestoreFile(Config{Network: net2, SuspicionThreshold: 3, BackThreshold: 7}, path)
	if err != nil {
		t.Fatal(err)
	}
	if b2.NumObjects() != b.NumObjects() {
		t.Fatal("file round trip lost objects")
	}
	if _, err := RestoreFile(Config{Network: net2}, filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("restore of missing file accepted")
	}
}

// TestRestoreOverSessionNetworkBumpsIncarnation: on a session-layer network
// (transport.Reliable), a checkpoint records the site's incarnation and
// Restore announces the restart with a strictly larger one, so peers reset
// their link sessions instead of wedging on stale sequence state.
func TestRestoreOverSessionNetworkBumpsIncarnation(t *testing.T) {
	inner := transport.NewNet(transport.Options{})
	rel := transport.NewReliable(inner, transport.ReliableOptions{
		RetransmitInitial: 2 * time.Millisecond,
	})
	t.Cleanup(rel.Close)
	a := New(Config{ID: 1, Network: rel, SuspicionThreshold: 3, BackThreshold: 7})
	b := New(Config{ID: 2, Network: rel, SuspicionThreshold: 3, BackThreshold: 7})

	settle := func() {
		t.Helper()
		if err := rel.AwaitIdle(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		if err := inner.Quiesce(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// One cross-site reference so the checkpoint names site 1 as a peer.
	x := a.NewRootObject()
	y := b.NewObject()
	if err := b.SendRef(1, y); err != nil {
		t.Fatal(err)
	}
	settle()
	if err := a.AddReference(x.Obj, y); err != nil {
		t.Fatal(err)
	}
	a.DropAppRoot(y)
	settle()

	var buf bytes.Buffer
	if err := b.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	rec, err := decodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	old := rel.Incarnation(2)
	if rec.Incarnation != old {
		t.Fatalf("checkpoint recorded incarnation %d, network says %d", rec.Incarnation, old)
	}

	b2, err := Restore(Config{Network: rel, SuspicionThreshold: 3, BackThreshold: 7}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Incarnation(2); got != old+1 {
		t.Fatalf("post-restore incarnation %d, want %d", got, old+1)
	}

	// The link must come back usable: a post-restart exchange settles with
	// nothing stuck in a session window.
	a.RunLocalTrace()
	b2.RunLocalTrace()
	settle()
	if b2.NumInrefs() == 0 {
		t.Fatal("restored site lost its inref")
	}
}

// TestCrashRecoveryCollectsCycle is the end-to-end story: site 2 crashes
// after checkpointing, comes back from the checkpoint (losing volatile
// state), the protocol heals, and the cross-site garbage cycle is still
// collected while live objects survive.
func TestCrashRecoveryCollectsCycle(t *testing.T) {
	a, b, net, refs := buildPersistPair(t)
	root, live, x, y := refs[0], refs[1], refs[2], refs[3]

	var buf bytes.Buffer
	if err := b.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Crash site 2: drop everything in flight to or from it, then bring
	// up the replacement from the checkpoint. Register replaces the old
	// handler on the network, so the old site is effectively dead.
	net.DropMatching(func(e msg.Envelope) bool { return e.To == 2 || e.From == 2 })
	b2, err := Restore(Config{Network: net, SuspicionThreshold: 3, BackThreshold: 7, AutoBackTrace: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}

	// Continue collection rounds on the pair (a, b2).
	for round := 0; round < 25; round++ {
		a.RunLocalTrace()
		net.DeliverAll()
		b2.RunLocalTrace()
		net.DeliverAll()
		if !a.ContainsObject(x.Obj) && !b2.ContainsObject(y.Obj) {
			break
		}
	}

	if a.ContainsObject(x.Obj) || b2.ContainsObject(y.Obj) {
		t.Fatal("cycle not collected after crash recovery")
	}
	if !a.ContainsObject(root.Obj) || !b2.ContainsObject(live.Obj) {
		t.Fatal("live object lost in crash recovery")
	}
}

// TestCheckpointFraming pins the checkpoint file frame: magic + format byte
// ahead of the payload, an unknown format byte rejected, and checkpoints
// written before the frame existed (bare gob streams) still restoring.
func TestCheckpointFraming(t *testing.T) {
	_, b, _, _ := buildPersistPair(t)
	var buf bytes.Buffer
	if err := b.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	framed := buf.Bytes()
	if !bytes.HasPrefix(framed, checkpointMagic) || framed[len(checkpointMagic)] != checkpointFormatGob {
		t.Fatalf("checkpoint does not start with magic+format: % x", framed[:6])
	}

	// Unknown payload format byte is rejected before the decoder runs.
	bad := append([]byte(nil), framed...)
	bad[len(checkpointMagic)] = 0x7F
	net2 := transport.NewNet(transport.Options{Stepped: true})
	defer net2.Close()
	if _, err := Restore(Config{Network: net2}, bytes.NewReader(bad)); err == nil {
		t.Fatal("restore accepted an unknown checkpoint payload format")
	}

	// Legacy checkpoint: the payload without the frame. Both Restore and
	// DecodeCheckpointAudit must fall back to bare-gob decoding.
	legacy := framed[len(checkpointMagic)+1:]
	b2, err := Restore(Config{Network: net2, SuspicionThreshold: 3, BackThreshold: 7},
		bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy checkpoint restore: %v", err)
	}
	if b2.ID() != 2 || b2.NumObjects() != b.NumObjects() {
		t.Fatal("legacy restore produced a different site")
	}
	id, audit, err := DecodeCheckpointAudit(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy checkpoint audit: %v", err)
	}
	if id != 2 || len(audit.Objects) != b.NumObjects() {
		t.Fatal("legacy audit decode differs")
	}
}

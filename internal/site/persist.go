package site

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"backtrace/internal/event"
	"backtrace/internal/ids"
	"backtrace/internal/transport"
)

// This file implements site checkpointing and crash recovery. The paper
// targets persistent object stores (Thor), where a site's objects and its
// inter-site reference lists survive crashes while in-flight protocol
// state does not.
//
// Durable state: the heap (objects, fields, persistent roots), the inref
// table (source lists, per-source distances, garbage flags, back
// thresholds), and the outref table (distances, back thresholds). Volatile
// state — application roots (mutator variables), insert-barrier pins,
// activation frames, visit marks, and the computed back information — is
// deliberately NOT checkpointed: the paper's timeout rules already cover a
// participant that forgets a trace (peers assume Live, Section 4.6), and
// back information is recomputed by the first post-recovery local trace.
//
// Until that first trace runs, every restored ioref carries the transfer-
// barrier clean mark: a back trace visiting the recovering site returns
// Live (safe), exactly the "clean until the next local trace" state the
// barriers already create.

// snapshotVersion identifies the checkpoint record layout.
const snapshotVersion = 1

// Checkpoints are framed like wire messages: a magic string naming the file
// type, then one format byte selecting the payload encoding, then the
// payload. The frame lets the payload encoding evolve independently of the
// record layout (snapshotRec.Version) and rejects non-checkpoint files
// before the decoder touches them.
var checkpointMagic = []byte("DGCK")

// checkpointFormatGob is the only payload encoding so far: a gob-encoded
// snapshotRec. Checkpoints written before the frame existed start directly
// with the gob stream; decodeSnapshot still reads those.
const checkpointFormatGob = 0x01

// decodeSnapshot reads a checkpoint stream — framed or legacy bare-gob —
// into a snapshotRec and validates the record version.
func decodeSnapshot(r io.Reader) (snapshotRec, error) {
	br := bufio.NewReader(r)
	if head, err := br.Peek(len(checkpointMagic)); err == nil && bytes.Equal(head, checkpointMagic) {
		if _, err := br.Discard(len(checkpointMagic)); err != nil {
			return snapshotRec{}, fmt.Errorf("checkpoint: %w", err)
		}
		format, err := br.ReadByte()
		if err != nil {
			return snapshotRec{}, fmt.Errorf("checkpoint: read format byte: %w", err)
		}
		if format != checkpointFormatGob {
			return snapshotRec{}, fmt.Errorf("checkpoint: unsupported payload format 0x%02x", format)
		}
	}
	var rec snapshotRec
	if err := gob.NewDecoder(br).Decode(&rec); err != nil {
		return snapshotRec{}, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if rec.Version != snapshotVersion {
		return snapshotRec{}, fmt.Errorf("checkpoint: unsupported record version %d", rec.Version)
	}
	return rec, nil
}

type objectRec struct {
	ID     ids.ObjID
	Fields []ids.Ref
	Size   int
	Root   bool
}

type sourceRec struct {
	Site ids.SiteID
	Dist int
}

type inrefRec struct {
	Obj           ids.ObjID
	Sources       []sourceRec
	Garbage       bool
	BackThreshold int
}

type outrefRec struct {
	Target        ids.Ref
	Distance      int
	BackThreshold int
}

type snapshotRec struct {
	Version       int
	Site          ids.SiteID
	NextObj       ids.ObjID
	Objects       []objectRec
	Inrefs        []inrefRec
	Outrefs       []outrefRec
	SuspThreshold int
	// Incarnation is the site's session epoch at checkpoint time (zero when
	// the network has no session layer). Recovery restarts with a strictly
	// larger incarnation so peers reset their link sessions instead of
	// replaying stale traffic into the new lifetime. Gob tolerates the
	// field's absence in old checkpoints, so the version stays unchanged.
	Incarnation uint64
	// NextTrace is the back-trace sequence counter at checkpoint time.
	// Restore seeds the new incarnation's counter past it (see
	// traceSeqRestartSkip): trace ids must stay unique across incarnations
	// because peers keep per-trace visit marks — a reissued id would make a
	// fresh trace read the dead incarnation's marks as its own visits and
	// flag live structures Garbage. Gob tolerates absence in old
	// checkpoints.
	NextTrace uint64
}

// traceSeqRestartSkip is how far past the checkpointed trace counter a
// restored incarnation starts. A checkpoint can predate the crash (the
// production Checkpoint API is periodic), so the dead incarnation may have
// issued ids beyond the recorded counter; skipping a generous block keeps
// the new incarnation out of any sequence range the old one could
// plausibly have consumed.
const traceSeqRestartSkip = 1 << 20

// WriteCheckpoint serializes the site's durable state. It takes the site
// write lock: heap-only mutators run under the read lock plus per-shard
// locks, so only the write lock yields a consistent multi-shard cut.
// Encoding happens after the lock is released.
func (s *Site) WriteCheckpoint(w io.Writer) error {
	s.mu.Lock()
	rec := snapshotRec{
		Version:       snapshotVersion,
		Site:          s.cfg.ID,
		NextObj:       s.heap.NextID(),
		SuspThreshold: s.threshold,
	}
	if sn, ok := s.cfg.Network.(transport.SessionNetwork); ok {
		rec.Incarnation = sn.Incarnation(s.cfg.ID)
	}
	rec.NextTrace = s.engine.TraceSeq()
	for _, obj := range s.heap.Objects() {
		o, _ := s.heap.Get(obj)
		rec.Objects = append(rec.Objects, objectRec{
			ID:     obj,
			Fields: o.Fields(),
			Size:   o.Size(),
			Root:   s.heap.IsPersistentRoot(obj),
		})
	}
	for _, in := range s.table.Inrefs() {
		ir := inrefRec{Obj: in.Obj, Garbage: in.Garbage, BackThreshold: in.BackThreshold}
		for _, src := range in.SourceSites() {
			ir.Sources = append(ir.Sources, sourceRec{Site: src, Dist: in.Sources[src]})
		}
		rec.Inrefs = append(rec.Inrefs, ir)
	}
	for _, o := range s.table.Outrefs() {
		rec.Outrefs = append(rec.Outrefs, outrefRec{
			Target:        o.Target,
			Distance:      o.Distance,
			BackThreshold: o.BackThreshold,
		})
	}
	s.mu.Unlock()

	if _, err := w.Write(append(append([]byte(nil), checkpointMagic...), checkpointFormatGob)); err != nil {
		return fmt.Errorf("site %v: write checkpoint header: %w", s.cfg.ID, err)
	}
	if err := gob.NewEncoder(w).Encode(rec); err != nil {
		return fmt.Errorf("site %v: encode checkpoint: %w", s.cfg.ID, err)
	}
	return nil
}

// Checkpoint writes the durable state to a file, atomically (temp file +
// rename), so a crash during checkpointing never corrupts the previous
// checkpoint.
func (s *Site) Checkpoint(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("site %v: checkpoint: %w", s.cfg.ID, err)
	}
	defer os.Remove(tmp.Name())
	if err := s.WriteCheckpoint(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("site %v: checkpoint sync: %w", s.cfg.ID, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("site %v: checkpoint close: %w", s.cfg.ID, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("site %v: checkpoint rename: %w", s.cfg.ID, err)
	}
	s.mu.Lock()
	s.emit(event.Event{Kind: event.CheckpointWritten})
	s.mu.Unlock()
	return nil
}

// Restore builds a site from a checkpoint, registers it on cfg.Network,
// and returns it. cfg.ID must match the checkpointed site. Restored iorefs
// start barrier-clean; run a local trace to recompute distances and back
// information.
func Restore(cfg Config, r io.Reader) (*Site, error) {
	rec, err := decodeSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("restore site: %w", err)
	}
	if cfg.ID == ids.NoSite {
		cfg.ID = rec.Site
	}
	if cfg.ID != rec.Site {
		return nil, fmt.Errorf("restore site: checkpoint is for %v, config says %v", rec.Site, cfg.ID)
	}
	s := New(cfg)
	if err := func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, o := range rec.Objects {
			if err := s.heap.Install(o.ID, o.Fields, o.Size, o.Root); err != nil {
				return fmt.Errorf("restore site %v: %w", cfg.ID, err)
			}
		}
		s.heap.SetNextID(rec.NextObj)
		for _, ir := range rec.Inrefs {
			in := s.table.EnsureInref(ir.Obj)
			for _, src := range ir.Sources {
				in.Sources[src.Site] = src.Dist
			}
			in.Garbage = ir.Garbage
			in.BackThreshold = ir.BackThreshold
			in.Barrier = !ir.Garbage // conservatively clean until the first trace
		}
		for _, orc := range rec.Outrefs {
			o, _ := s.table.EnsureOutref(orc.Target)
			o.Distance = orc.Distance
			o.BackThreshold = orc.BackThreshold
			o.Barrier = true // conservatively clean until the first trace
		}
		// Adopt the checkpointed suspicion threshold when AdaptiveThreshold
		// had raised it beyond the configured value, so a restart does not
		// forget the tuning.
		if rec.SuspThreshold > s.threshold {
			s.threshold = rec.SuspThreshold
			s.engine.SetThreshold(s.threshold)
		}
		// Keep trace ids unique across incarnations (Section 4.7's "unique
		// id" must hold for the site's whole lifetime, crashes included).
		s.engine.SeedTraceSeq(rec.NextTrace + traceSeqRestartSkip)
		s.emit(event.Event{Kind: event.SiteRestored})
		return nil
	}(); err != nil {
		return nil, err
	}
	// On a session-layer network, announce the restart: the new incarnation
	// is strictly larger than any the checkpoint saw, and every site named
	// in the checkpoint's reference lists is told to reset its link session
	// (Send would replay stale sequence state otherwise).
	if sn, ok := cfg.Network.(transport.SessionNetwork); ok {
		sn.NotifyRestart(cfg.ID, rec.Incarnation+1, checkpointPeers(rec))
	}
	return s, nil
}

// checkpointPeers collects every peer site named in a checkpoint: sources
// of inrefs and owners of outref targets.
func checkpointPeers(rec snapshotRec) []ids.SiteID {
	set := make(map[ids.SiteID]struct{})
	for _, ir := range rec.Inrefs {
		for _, src := range ir.Sources {
			set[src.Site] = struct{}{}
		}
	}
	for _, orc := range rec.Outrefs {
		set[orc.Target.Site] = struct{}{}
	}
	delete(set, rec.Site)
	peers := make([]ids.SiteID, 0, len(set))
	for p := range set {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	return peers
}

// DecodeCheckpointAudit decodes a checkpoint into the Audit view of the
// durable state it captured, without constructing a Site. The simulation's
// safety oracle uses it to include crashed sites in global reachability:
// a crashed site's persistent objects are still part of the store and its
// checkpoint is exactly what a future recovery will resurrect.
//
// Volatile state is absent by construction: AppRoots is empty (mutator
// variables die with the crash), and GarbageFlagged reflects the flags at
// checkpoint time.
func DecodeCheckpointAudit(r io.Reader) (ids.SiteID, Audit, error) {
	rec, err := decodeSnapshot(r)
	if err != nil {
		return ids.NoSite, Audit{}, fmt.Errorf("decode checkpoint audit: %w", err)
	}
	a := Audit{
		Objects:      make(map[ids.ObjID][]ids.Ref, len(rec.Objects)),
		Outrefs:      make(map[ids.Ref]struct{}, len(rec.Outrefs)),
		InrefSources: make(map[ids.ObjID][]ids.SiteID, len(rec.Inrefs)),
	}
	for _, o := range rec.Objects {
		a.Objects[o.ID] = append([]ids.Ref(nil), o.Fields...)
		if o.Root {
			a.PersistentRoots = append(a.PersistentRoots, o.ID)
		}
	}
	for _, orc := range rec.Outrefs {
		a.Outrefs[orc.Target] = struct{}{}
	}
	for _, ir := range rec.Inrefs {
		srcs := make([]ids.SiteID, 0, len(ir.Sources))
		for _, src := range ir.Sources {
			srcs = append(srcs, src.Site)
		}
		a.InrefSources[ir.Obj] = srcs
		if ir.Garbage {
			a.GarbageFlagged = append(a.GarbageFlagged, ir.Obj)
		}
	}
	return rec.Site, a, nil
}

// RestoreFile is Restore reading from a checkpoint file.
func RestoreFile(cfg Config, path string) (*Site, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("restore site: %w", err)
	}
	defer f.Close()
	return Restore(cfg, f)
}

package site

import (
	"fmt"
	"sync"
	"time"

	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/msg"
)

// inbound is one queued inbox entry: the sending site, its message, and
// when it was enqueued (for the queue-delay histogram).
type inbound struct {
	from ids.SiteID
	m    msg.Message
	at   time.Time
}

// mailbox is a site's bounded inbox plus its dispatch goroutine. Transport
// threads append with enqueue (blocking while the queue is at capacity —
// backpressure that pushes queueing back into the network rather than
// growing without bound), and a single dispatcher applies messages to the
// site in arrival order. One dispatcher per site preserves the per-link
// FIFO delivery the protocol assumes (R1): the transport already delivers
// each link in order, and a single consumer cannot reorder what it dequeues.
type mailbox struct {
	s        *Site
	capacity int

	mu       sync.Mutex
	notEmpty *sync.Cond // a message arrived, or the mailbox closed
	notFull  *sync.Cond // a slot freed for a blocked producer
	queue    []inbound
	busy     int // queued messages plus any message being dispatched
	closed   bool
	idle     chan struct{} // non-nil while a waiter needs a busy==0 signal
	done     chan struct{} // closed when the dispatcher exits
}

func newMailbox(s *Site, capacity int) *mailbox {
	mb := &mailbox{s: s, capacity: capacity, done: make(chan struct{})}
	mb.notEmpty = sync.NewCond(&mb.mu)
	mb.notFull = sync.NewCond(&mb.mu)
	go mb.run()
	return mb
}

// enqueue appends a message, blocking while the queue is at capacity.
// Messages offered after stop are dropped — indistinguishable from loss in
// flight, which the protocol tolerates.
func (mb *mailbox) enqueue(from ids.SiteID, m msg.Message) {
	mb.mu.Lock()
	waited := false
	for len(mb.queue) >= mb.capacity && !mb.closed {
		waited = true
		mb.notFull.Wait()
	}
	if mb.closed {
		mb.mu.Unlock()
		return
	}
	mb.queue = append(mb.queue, inbound{from: from, m: m, at: mb.s.clk.Now()})
	mb.busy++
	depth := len(mb.queue)
	mb.notEmpty.Signal()
	mb.mu.Unlock()

	c := mb.s.cfg.Counters
	c.Inc(metrics.MailboxEnqueued)
	c.Max(metrics.MailboxDepthPeak, int64(depth))
	mb.s.gaugeDepth.Set(int64(depth))
	if waited {
		c.Inc(metrics.MailboxBackpressure)
	}
}

// run is the dispatch loop: dequeue one message, apply it to the site
// (taking the site lock outside the mailbox lock), repeat until stopped.
func (mb *mailbox) run() {
	defer close(mb.done)
	for {
		mb.mu.Lock()
		for len(mb.queue) == 0 && !mb.closed {
			mb.notEmpty.Wait()
		}
		if mb.closed {
			mb.busy -= len(mb.queue)
			mb.queue = nil
			mb.notFull.Broadcast()
			mb.noteIdleLocked()
			mb.mu.Unlock()
			return
		}
		in := mb.queue[0]
		mb.queue = mb.queue[1:]
		mb.notFull.Signal()
		mb.mu.Unlock()

		mb.s.deliverQueued(in.from, in.m, mb.s.clk.Now().Sub(in.at))

		mb.mu.Lock()
		mb.busy--
		mb.noteIdleLocked()
		mb.mu.Unlock()
	}
}

// noteIdleLocked wakes any awaitIdle waiter once the last in-flight message
// has been fully dispatched. Called with mb.mu held.
func (mb *mailbox) noteIdleLocked() {
	if mb.busy == 0 && mb.idle != nil {
		close(mb.idle)
		mb.idle = nil
	}
}

// depth returns queued messages plus any message mid-dispatch, so depth()==0
// means the site has fully absorbed everything enqueued so far.
func (mb *mailbox) depth() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.busy
}

// awaitIdle blocks until depth reaches zero or the timeout elapses. The
// dispatcher closes the idle channel when the last in-flight message has
// been applied, so waiters sleep instead of polling; the timeout runs on the
// site clock, so virtual-time harnesses control it like every other timer.
func (mb *mailbox) awaitIdle(timeout time.Duration) error {
	clk := mb.s.clk
	deadline := clk.Now().Add(timeout)
	for {
		mb.mu.Lock()
		if mb.busy == 0 {
			mb.mu.Unlock()
			return nil
		}
		if mb.idle == nil {
			mb.idle = make(chan struct{})
		}
		idle := mb.idle
		depth := mb.busy
		mb.mu.Unlock()

		remaining := deadline.Sub(clk.Now())
		if remaining <= 0 {
			return fmt.Errorf("site %v: inbox not idle after %v (depth %d)", mb.s.cfg.ID, timeout, depth)
		}
		select {
		case <-idle:
		case <-clk.After(remaining):
			// Deadline reached; the next loop iteration reports the error
			// (or success, if the inbox drained at the last instant).
		}
	}
}

// stop shuts the dispatcher down, abandoning queued messages, and waits for
// it to exit. Safe to call repeatedly.
func (mb *mailbox) stop() {
	mb.mu.Lock()
	if !mb.closed {
		mb.closed = true
		mb.notEmpty.Broadcast()
		mb.notFull.Broadcast()
	}
	mb.mu.Unlock()
	<-mb.done
}

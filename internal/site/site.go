// Package site composes a complete site of the back-tracing collector: the
// object heap, the inref/outref tables, the local tracer, and the back-
// tracing engine, wired to a transport.Network.
//
// A Site is the unit of locality in the paper: it traces its own objects
// independently, exchanges insert/update messages to maintain inter-site
// reference lists (Section 2), propagates distance estimates (Section 3),
// computes back information during local traces (Section 5), participates
// in back traces (Section 4), and applies the transfer and insert barriers
// that keep everything safe under concurrent mutation (Section 6).
//
// # Per-site concurrency architecture
//
// Mutable collector state is guarded by one RWMutex, but — unlike the
// original single-mutex design — the heavy phases no longer run inside it:
//
//   - The heap and ioref table are sharded by object-id hash into
//     max(GOMAXPROCS, Config.Shards) shards, each with its own lock,
//     write-barrier dirty set, and copy-on-write trace snapshot.
//     Heap-only mutator operations (allocation, root flips, field
//     removal) take the site read lock plus the owning shard's lock, so
//     mutators on distinct shards proceed concurrently; operations that
//     touch iorefs or send messages, and all message handlers, remain
//     short critical sections under the write lock, matching the
//     paper's model.
//   - The local trace computation (tracer.Run: forward mark + outset
//     computation) runs entirely OUTSIDE the lock, on a snapshot of the
//     heap and ioref tables taken under a short critical section —
//     shards are snapshotted concurrently, and with Config.TraceWorkers
//     above one the forward mark itself runs as a work-stealing
//     parallel trace with results bit-identical to the sequential
//     tracer. The
//     Section 6.2 double-buffered back information makes this safe: back
//     traces keep using the old copy, and transfer barriers that fire
//     during the computation are recorded and replayed onto the new copy
//     at commit. Config.LockedTrace restores the old
//     whole-trace-under-the-lock behaviour for baseline benchmarks.
//   - Introspection (Inrefs, Outrefs, counters, heap size, audits) takes
//     only the read lock, so tools and experiments never stall collectors.
//   - With Config.InboxSize > 0 the site runs a mailbox executor: network
//     threads enqueue inbound messages into a bounded inbox (blocking when
//     full — backpressure) and a single dispatch goroutine applies them in
//     arrival order, preserving per-link FIFO (the paper's R1) while
//     keeping transport threads off the site lock.
package site

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"backtrace/internal/clock"
	"backtrace/internal/core"
	"backtrace/internal/event"
	"backtrace/internal/heap"
	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/msg"
	"backtrace/internal/obs"
	"backtrace/internal/refs"
	"backtrace/internal/tracer"
	"backtrace/internal/transport"
)

// Config parameterizes a Site.
type Config struct {
	// ID is the site's identifier (must be unique in the cluster).
	ID ids.SiteID
	// Network connects the site to its peers.
	Network transport.Network
	// SuspicionThreshold is T (Section 3): iorefs with estimated distance
	// beyond T are suspected. Defaults to 3.
	SuspicionThreshold int
	// BackThreshold is T2 (Section 4.3), the initial per-ioref trigger for
	// starting a back trace; it should be T plus a conservative cycle
	// length estimate. Defaults to SuspicionThreshold + 4.
	BackThreshold int
	// ThresholdBump is δ, added to an ioref's back threshold each time a
	// back trace visits it. Defaults to 4.
	ThresholdBump int
	// OutsetAlgorithm selects the Section 5 inset computation; defaults
	// to the Section 5.2 bottom-up algorithm.
	OutsetAlgorithm tracer.OutsetAlgorithm
	// CallTimeout / ReportTimeout bound back-trace waits (Section 4.6);
	// zero disables timeouts (appropriate with a reliable transport).
	CallTimeout   time.Duration
	ReportTimeout time.Duration
	// AutoBackTrace, when true, starts back traces automatically after
	// each local trace from every outref whose distance has crossed its
	// back threshold.
	AutoBackTrace bool
	// AdaptiveThreshold, when true, raises the suspicion threshold after
	// repeated Live back-trace outcomes (the tuning knob Section 3
	// suggests: "if too many suspects are found live, the threshold
	// should be increased").
	AdaptiveThreshold bool
	// MaxInflightTraces caps the back traces this site may have in flight
	// as initiator. Suspects beyond the cap are parked in a
	// distance-priority admission queue and started as completions free
	// slots; trigger scans resume round-robin where the previous scan
	// stopped, so one commit cannot flood the network. Zero means
	// unlimited (the legacy trigger behaviour).
	MaxInflightTraces int
	// TraceBatch, when above one, groups up to that many suspected
	// outrefs whose insets overlap (per the installed back information)
	// into one multi-suspect batched trace at trigger time, so a garbage
	// cycle with many suspected entry points is resolved by one trace
	// instead of one per suspect. Zero or one keeps one trace per
	// suspect.
	TraceBatch int
	// MemoizeLive enables generation-stamped Live-verdict memoization in
	// the back-tracing engine: iorefs proven Live answer later back steps
	// without fanning out until the next trace commit (or a Section 6.4
	// clean event) invalidates the cached verdict.
	MemoizeLive bool
	// Piggyback, when true, coalesces the messages produced within one
	// protocol step (a message delivery, a trace commit, a timeout scan)
	// into one Batch envelope per destination — the piggybacking the
	// paper suggests for the small back-trace messages (Section 4.6).
	Piggyback bool
	// InboxSize, when positive, runs the site as a mailbox executor:
	// Deliver enqueues into a bounded inbox of this capacity (blocking
	// when full) and a dispatch goroutine applies messages in arrival
	// order. Zero keeps the synchronous model, where Deliver applies the
	// message on the caller's thread — required for the deterministic
	// stepped replays. Sites with an inbox must be Close()d.
	InboxSize int
	// LockedTrace, when true, computes local traces entirely under the
	// site lock (the pre-mailbox design). It exists as the baseline for
	// the off-lock benchmarks; leave it false otherwise.
	LockedTrace bool
	// Incremental enables incremental local tracing: mutator write
	// barriers track dirty objects and iorefs, BeginLocalTrace takes
	// O(dirty) patched snapshots instead of deep copies, and the tracer
	// remarks from the dirty set — reusing the previous trace's marks,
	// distances, and back information — whenever every change since the
	// last trace was monotone, falling back to a full trace otherwise.
	// Results are identical to full traces either way; see
	// docs/ALGORITHM.md.
	Incremental bool
	// MaxDirtyRatio bounds the incremental remark: when changed entities
	// exceed this fraction of the heap, the trace runs full (a remark
	// would touch most of the heap anyway, with worse constants). Zero
	// means tracer.DefaultMaxDirtyRatio. Only meaningful with Incremental.
	MaxDirtyRatio float64
	// Shards requests a minimum shard count for the heap and ioref table.
	// The site always uses max(GOMAXPROCS, Shards) shards, so mutator
	// operations on distinct objects contend on distinct locks and trace
	// snapshots copy/patch shards concurrently. Shard count never affects
	// observable results — only lock granularity and snapshot parallelism.
	Shards int
	// TraceWorkers is the number of mark workers local traces run with.
	// Above one, full traces use the work-stealing parallel marker and
	// incremental remarks relax dirty seeds on a worker pool; results are
	// bit-identical to the sequential tracer. Zero or one keeps the
	// sequential path.
	TraceWorkers int
	// Clock supplies every timestamp the site takes: span start/end times,
	// mailbox queue-delay accounting, and the engine's timeout deadlines.
	// Nil means the wall clock; the deterministic simulation injects a
	// virtual clock so the same schedule reproduces identical span trees.
	Clock clock.Clock
	// SkipTransferBarrierUnsafe disables the Section 6.1.1 transfer
	// barrier. It exists ONLY as fault injection for the simulation model
	// checker (internal/sim), which must demonstrate that a collector
	// missing the barrier produces detectable safety violations. Never
	// enable it outside that harness.
	SkipTransferBarrierUnsafe bool
	// Counters receives metrics; may be nil (a fresh set is created).
	//
	// Deprecated: Counters is the legacy stringly-named facade. Prefer
	// reading the typed registry via Site.Metrics(); this field remains so
	// several sites can share one instrument set.
	Counters *metrics.Counters
	// Events, if non-nil, receives structured observability events
	// (trace lifecycle, barriers, sweeps, timeouts).
	Events *event.Log
	// Observer, if non-nil, receives every observability event and every
	// completed span (back-trace roots, participant engagements, local
	// traces, report phases). Callbacks run under the site lock and MUST
	// NOT call back into the Site; use obs.Tee to fan out to several
	// observers.
	Observer obs.Observer
}

func (c Config) withDefaults() Config {
	if c.SuspicionThreshold == 0 {
		c.SuspicionThreshold = 3
	}
	if c.BackThreshold == 0 {
		c.BackThreshold = c.SuspicionThreshold + 4
	}
	if c.ThresholdBump == 0 {
		c.ThresholdBump = 4
	}
	if c.OutsetAlgorithm == 0 {
		c.OutsetAlgorithm = tracer.AlgoBottomUp
	}
	if c.Counters == nil {
		c.Counters = &metrics.Counters{}
	}
	return c
}

// Site is one node of the distributed store.
type Site struct {
	cfg Config
	// clk is Config.Clock with the wall-clock default applied; every
	// timestamp the site takes goes through it.
	clk clock.Clock

	// traceMu serializes local-trace lifecycles (Begin through Commit) so
	// at most one trace computation is in flight per site. It is always
	// acquired before mu, never while holding it.
	traceMu sync.Mutex

	// mu guards everything below. Writers (mutator operations, message
	// handlers, trace commits) take the write lock; introspection takes
	// the read lock.
	mu     sync.RWMutex
	heap   *heap.Heap
	table  *refs.Table
	engine *core.Engine
	back   *tracer.BackInfo

	// threshold is the current suspicion threshold T. It starts at
	// Config.SuspicionThreshold and may be raised by AdaptiveThreshold;
	// it lives here rather than in cfg so Config stays a copyable value.
	threshold int

	// tracing is true from a local trace's snapshot until its commit (or
	// abandonment); transfer barriers record their applications while it
	// is set so the commit can replay them onto the new back information.
	tracing bool
	// traceEpoch counts trace commits and wholesale state replacements; a
	// Begin records it at snapshot time and discards its result if the
	// epoch moved before installation.
	traceEpoch uint64
	// pending holds a computed-but-uncommitted local trace (Section 6.2:
	// the "new copy" being prepared while back traces still use the old).
	pending *tracer.Result
	// pendingBarrierInrefs / pendingBarrierOutrefs record transfer-barrier
	// applications that arrived while tracing; their cleaning is
	// re-applied to the new copy at commit.
	pendingBarrierInrefs  []ids.ObjID
	pendingBarrierOutrefs []ids.Ref

	// incr carries trace-to-trace state for incremental local traces
	// (Config.Incremental); scratch holds the reusable full-trace buffers
	// used otherwise. Both are guarded by traceMu, not mu: they are
	// touched only inside a local-trace lifecycle.
	incr    *tracer.Incremental
	scratch *tracer.Scratch

	liveStreak int // consecutive Live outcomes, for AdaptiveThreshold

	// --- trace-scheduler state (guarded by mu) ---

	// inflight counts back traces this site initiated that have not
	// completed; the admission controller compares it to
	// Config.MaxInflightTraces.
	inflight int
	// pendingTraces is the admission queue: suspects that were eligible
	// when the cap was reached, admitted in farthest-distance-first (then
	// oldest-first) order as slots free up. pendingSet dedupes it.
	pendingTraces []pendingTrace
	pendingSet    map[ids.Ref]struct{}
	pendingSeq    uint64
	// admitPending is set by the trace-completed callback (which runs
	// inside an engine call and must not re-enter it) and drained at the
	// next safe point of the entry path that triggered the completion.
	admitPending bool
	// scanCursor is where the last trigger scan stopped; the next scan
	// resumes after it (round-robin fairness across suspects).
	scanCursor    ids.Ref
	scanCursorSet bool

	// inbox is the bounded mailbox (nil when InboxSize == 0).
	inbox *mailbox

	// outbox holds messages coalesced per destination while a protocol
	// step runs (Piggyback mode); outboxOrder keeps flushing
	// deterministic.
	outbox      map[ids.SiteID][]msg.Message
	outboxOrder []ids.SiteID

	// pendingInserts tracks insert messages awaiting acknowledgement;
	// they are retransmitted at each local trace so a lost insert heals.
	pendingInserts map[ids.Ref]msg.Insert
	// farewell counts down the empty update messages still owed to peers
	// we no longer hold outrefs for, so a lost removal update heals.
	farewell map[ids.SiteID]int

	completions []TraceOutcome

	// --- observability state (guarded by mu, like everything above) ---

	// partStart records when this site became active in each back trace;
	// the participant-end hook turns the pair into a SpanParticipant.
	// For traces this site initiated the entry also anchors the root span
	// (the outermost frame lives exactly as long as the trace).
	partStart map[ids.TraceID]time.Time
	// traceQueueWait accumulates, per active trace, the mailbox queueing
	// delay of the messages consumed on its behalf.
	traceQueueWait map[ids.TraceID]time.Duration
	// curQueueWait is the queue delay of the message currently being
	// dispatched; the first trace-carrying message in the delivery (one
	// Batch can carry several) consumes and zeroes it.
	curQueueWait time.Duration
	// localTraceT0 is the wall-clock start of the local trace between
	// BeginLocalTrace and CommitLocalTrace (guarded by traceMu).
	localTraceT0 time.Time

	// Typed instruments, declared once at construction on the shared
	// registry so the hot paths never take the registry lock.
	histRTT      *obs.Histogram
	histLocalDur *obs.Histogram
	histQueue    *obs.Histogram
	gaugeDepth   *obs.Gauge
	gaugeDirty   *obs.Gauge
}

// pendingTrace is one parked suspect in the admission queue.
type pendingTrace struct {
	target ids.Ref
	dist   int    // outref distance at enqueue time (farther = more suspect)
	seq    uint64 // enqueue order, for age tie-breaking
}

// TraceOutcome records one completed back trace initiated by this site.
type TraceOutcome struct {
	Trace        ids.TraceID
	Outcome      msg.Verdict
	Participants []ids.SiteID
}

var _ transport.Handler = (*Site)(nil)

// New creates a site and registers it on the network.
func New(cfg Config) *Site {
	cfg = cfg.withDefaults()
	shards := runtime.GOMAXPROCS(0)
	if cfg.Shards > shards {
		shards = cfg.Shards
	}
	s := &Site{
		cfg:            cfg,
		clk:            clock.OrWall(cfg.Clock),
		heap:           heap.NewSharded(cfg.ID, shards),
		table:          refs.NewTableSharded(cfg.ID, cfg.BackThreshold, shards),
		back:           tracer.EmptyBackInfo(),
		threshold:      cfg.SuspicionThreshold,
		pendingInserts: make(map[ids.Ref]msg.Insert),
		farewell:       make(map[ids.SiteID]int),
		pendingSet:     make(map[ids.Ref]struct{}),
		outbox:         make(map[ids.SiteID][]msg.Message),
		partStart:      make(map[ids.TraceID]time.Time),
		traceQueueWait: make(map[ids.TraceID]time.Duration),
	}
	if cfg.Incremental {
		s.heap.EnableDeltaTracking()
		s.table.EnableDeltaTracking()
		s.incr = &tracer.Incremental{
			MaxDirtyRatio: cfg.MaxDirtyRatio,
			Workers:       cfg.TraceWorkers,
		}
	} else {
		s.scratch = &tracer.Scratch{}
	}
	reg := cfg.Counters.Registry()
	s.histRTT = reg.Histogram(obs.MetricBackTraceRTT,
		"wall-clock duration of back traces initiated by this site", nil)
	s.histLocalDur = reg.Histogram(obs.MetricLocalTraceDuration,
		"wall-clock duration of local traces (begin through commit)", nil)
	s.histQueue = reg.Histogram(obs.MetricMailboxQueueDelay,
		"time inbound messages spent queued in a site mailbox", nil)
	s.gaugeDepth = reg.Gauge(obs.MetricMailboxDepth,
		"inbox depth observed at the most recent enqueue")
	s.gaugeDirty = reg.Gauge(metrics.ParallelShardDirtyRatio,
		"percent of the dirtiest heap shard mutated since the last trace snapshot")
	reg.Gauge(metrics.HeapShards,
		"number of heap and ioref-table shards").Set(int64(shards))
	workers := cfg.TraceWorkers
	if workers < 1 {
		workers = 1
	}
	reg.Gauge(metrics.ParallelWorkers,
		"number of mark workers local traces run with").Set(int64(workers))
	// Declare the trace-traffic instruments up front so scrapes see them
	// at zero even before the first back trace (or with the engine off).
	reg.Gauge(metrics.BackTraceInflight,
		"high-water mark of concurrently in-flight back traces initiated by this site")
	reg.Gauge(metrics.BackTraceBatchSize,
		"high-water mark of suspects carried by one multi-suspect back trace")
	reg.Counter(metrics.BackTraceMemoHits,
		"back steps and trigger scans answered from a memoized Live verdict")
	reg.Counter(metrics.BackTraceJoined,
		"suspects absorbed into an active back trace already visiting their cone")
	reg.Counter(metrics.BackTraceDeferred,
		"suspects parked in the admission queue because the in-flight cap was reached")
	s.engine = core.NewEngine(core.Config{
		Site:          cfg.ID,
		Threshold:     s.threshold,
		ThresholdBump: cfg.ThresholdBump,
		CallTimeout:   cfg.CallTimeout,
		ReportTimeout: cfg.ReportTimeout,
		MemoizeLive:   cfg.MemoizeLive,
		Now:           s.clk.Now,
		Send:          s.send,
		Table:         s.table,
		Inset:         func(target ids.Ref) []ids.ObjID { return s.back.Inset(target) },
		Counters:      cfg.Counters,
		Completed:     s.onTraceCompleted,
		OnFlagged: func(obj ids.ObjID) {
			s.emit(event.Event{Kind: event.InrefFlagged, Obj: obj})
		},
		OnTimeout: func(t ids.TraceID) {
			s.emit(event.Event{Kind: event.TimeoutAssumedLive, Trace: t})
		},
		OnParticipantStart: s.onParticipantStart,
		OnParticipantEnd:   s.onParticipantEnd,
	})
	if cfg.InboxSize > 0 {
		s.inbox = newMailbox(s, cfg.InboxSize)
	}
	cfg.Network.Register(cfg.ID, s)
	return s
}

// Close stops the mailbox dispatch goroutine, discarding any queued
// messages (the protocol tolerates message loss). It is a no-op for sites
// without an inbox and is safe to call more than once.
func (s *Site) Close() {
	if s.inbox != nil {
		s.inbox.stop()
	}
}

// InboxDepth returns the number of inbound messages queued or being
// dispatched; zero for sites without an inbox.
func (s *Site) InboxDepth() int {
	if s.inbox == nil {
		return 0
	}
	return s.inbox.depth()
}

// AwaitInboxIdle blocks until the inbox is empty and no message is being
// dispatched, or the timeout elapses. It returns immediately for sites
// without an inbox.
func (s *Site) AwaitInboxIdle(timeout time.Duration) error {
	if s.inbox == nil {
		return nil
	}
	return s.inbox.awaitIdle(timeout)
}

// ID returns the site's identifier.
func (s *Site) ID() ids.SiteID { return s.cfg.ID }

// Counters returns the site's metrics counters.
//
// Deprecated: use Metrics for a typed snapshot, or Registry on the
// returned value for declaring new instruments.
func (s *Site) Counters() *metrics.Counters { return s.cfg.Counters }

// Metrics returns a point-in-time snapshot of every typed instrument
// backing this site's metrics (counters, gauges, and latency histograms).
// Sites created with a shared Counters set report the shared values.
func (s *Site) Metrics() obs.Snapshot { return s.cfg.Counters.Registry().Snapshot() }

// send transmits (or, in Piggyback mode, queues) one protocol message. It
// is called with the site lock held; flushOutbox runs before the lock is
// released by every entry point that can send.
func (s *Site) send(to ids.SiteID, m msg.Message) {
	if !s.cfg.Piggyback {
		s.cfg.Network.Send(s.cfg.ID, to, m)
		return
	}
	if _, ok := s.outbox[to]; !ok {
		s.outboxOrder = append(s.outboxOrder, to)
	}
	s.outbox[to] = append(s.outbox[to], m)
}

// flushOutbox ships the coalesced messages: one Batch envelope per
// destination (or the bare message when only one queued).
func (s *Site) flushOutbox() {
	if !s.cfg.Piggyback || len(s.outboxOrder) == 0 {
		return
	}
	for _, to := range s.outboxOrder {
		items := s.outbox[to]
		delete(s.outbox, to)
		switch len(items) {
		case 0:
		case 1:
			s.cfg.Network.Send(s.cfg.ID, to, items[0])
		default:
			s.cfg.Network.Send(s.cfg.ID, to, msg.Batch{Items: items})
		}
	}
	s.outboxOrder = s.outboxOrder[:0]
}

// emit appends an observability event if a log is configured, and forwards
// it to the configured observer.
func (s *Site) emit(e event.Event) {
	e.Site = s.cfg.ID
	if s.cfg.Events != nil {
		s.cfg.Events.Append(e)
	}
	if s.cfg.Observer != nil {
		s.cfg.Observer.OnEvent(e)
	}
}

// emitSpan stamps the site onto a finished span and forwards it to the
// configured observer. Called with the site lock held (or, for local-trace
// spans, under traceMu), which is why Observer callbacks must not call back
// into the Site.
func (s *Site) emitSpan(sp obs.Span) {
	if s.cfg.Observer == nil {
		return
	}
	sp.Site = s.cfg.ID
	s.cfg.Observer.OnSpan(sp)
}

// onParticipantStart runs (with the lock held) when the engine first
// engages this site in a back trace.
func (s *Site) onParticipantStart(t ids.TraceID) {
	s.partStart[t] = s.clk.Now()
}

// onParticipantEnd runs (with the lock held) when the last activation
// frame for a trace completes here; it closes the participant span and
// releases the trace's queue-wait accumulator.
func (s *Site) onParticipantEnd(t ids.TraceID, hops int) {
	start := s.partStart[t]
	delete(s.partStart, t)
	wait := s.traceQueueWait[t]
	delete(s.traceQueueWait, t)
	s.emitSpan(obs.Span{
		Trace:     t,
		Kind:      obs.SpanParticipant,
		Start:     start,
		End:       s.clk.Now(),
		Hops:      hops,
		QueueWait: wait,
	})
}

// noteTraceQueueWait attributes the queue delay of the message being
// dispatched to the trace it belongs to. The first trace-carrying message
// of a delivery consumes the delay; later items of the same Batch add
// nothing.
func (s *Site) noteTraceQueueWait(t ids.TraceID) {
	if s.curQueueWait > 0 {
		s.traceQueueWait[t] += s.curQueueWait
		s.curQueueWait = 0
	}
}

// onTraceCompleted runs (with the lock held) when a trace this site
// initiated finishes.
func (s *Site) onTraceCompleted(t ids.TraceID, outcome msg.Verdict, participants []ids.SiteID) {
	if s.inflight > 0 {
		s.inflight--
	}
	if len(s.pendingTraces) > 0 {
		// A slot freed up. This callback runs inside an engine call, so
		// admission is deferred to the entry path's next safe point.
		s.admitPending = true
	}
	s.completions = append(s.completions, TraceOutcome{Trace: t, Outcome: outcome, Participants: participants})
	s.emit(event.Event{Kind: event.TraceCompleted, Trace: t, Verdict: outcome, N: len(participants)})
	// Close the root span. The initiator's activity opened with the trace
	// and its outermost frame is still live here, so partStart[t] is the
	// trace's start; the participant span itself closes just after this
	// callback returns.
	now := s.clk.Now()
	start := s.partStart[t]
	if start.IsZero() {
		start = now
	}
	s.histRTT.Observe(now.Sub(start).Seconds())
	s.emitSpan(obs.Span{
		Trace:        t,
		Kind:         obs.SpanBackTrace,
		Start:        start,
		End:          now,
		Verdict:      outcome,
		Participants: participants,
	})
	if !s.cfg.AdaptiveThreshold {
		return
	}
	if outcome == msg.VerdictLive {
		s.liveStreak++
		if s.liveStreak >= 3 {
			// Too many live suspects: raise T (Section 3).
			s.threshold++
			s.engine.SetThreshold(s.threshold)
			s.liveStreak = 0
		}
	} else {
		s.liveStreak = 0
	}
}

// Completions drains and returns the outcomes of back traces initiated by
// this site since the previous call. Draining is a write, and engine
// callbacks may have queued piggybacked messages, so it flushes the outbox
// like every other write entry point.
func (s *Site) Completions() []TraceOutcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.flushOutbox()
	out := s.completions
	s.completions = nil
	return out
}

// Deliver implements transport.Handler: it dispatches one inbound message.
// With an inbox configured it only enqueues (blocking while the inbox is
// full); otherwise it applies the message on the caller's thread. The
// transport invokes it serially per link, so enqueue order preserves R1.
func (s *Site) Deliver(from ids.SiteID, m msg.Message) {
	if s.inbox != nil {
		s.inbox.enqueue(from, m)
		return
	}
	s.deliverNow(from, m)
}

// deliverNow applies one inbound message under the site lock. It is the
// synchronous half of Deliver.
func (s *Site) deliverNow(from ids.SiteID, m msg.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.flushOutbox()
	s.deliverLocked(from, m)
	s.drainAdmissionsLocked()
}

// deliverQueued is the mailbox dispatcher's entry point: like deliverNow,
// but it records how long the message waited in the inbox so the delay can
// be attributed to the back trace it belongs to.
func (s *Site) deliverQueued(from ids.SiteID, m msg.Message, wait time.Duration) {
	s.histQueue.Observe(wait.Seconds())
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.flushOutbox()
	s.curQueueWait = wait
	s.deliverLocked(from, m)
	s.curQueueWait = 0
	s.drainAdmissionsLocked()
}

func (s *Site) deliverLocked(from ids.SiteID, m msg.Message) {
	switch mm := m.(type) {
	case msg.RefTransfer:
		s.handleRefTransfer(from, mm)
	case msg.Insert:
		s.handleInsert(from, mm)
	case msg.InsertAck:
		// The holder's outref is now protected by the owner's source
		// list: stop retransmitting the insert.
		delete(s.pendingInserts, mm.Target)
	case msg.ReleasePin:
		s.handleReleasePin(from, mm)
	case msg.Update:
		s.handleUpdate(from, mm)
	case msg.BackCall:
		s.noteTraceQueueWait(mm.Trace)
		s.engine.HandleBackCall(from, mm)
	case msg.BackReply:
		// A late reply (frame already closed by timeout or short-circuit)
		// must not re-open the trace's wait accumulator.
		if _, active := s.partStart[mm.Trace]; active {
			s.noteTraceQueueWait(mm.Trace)
		}
		s.engine.HandleBackReply(from, mm)
	case msg.Report:
		t0 := s.clk.Now()
		s.engine.HandleReport(from, mm)
		s.emitSpan(obs.Span{
			Trace:   mm.Trace,
			Kind:    obs.SpanReport,
			Start:   t0,
			End:     s.clk.Now(),
			Verdict: mm.Outcome,
		})
	case msg.Batch:
		for _, item := range mm.Items {
			s.deliverLocked(from, item)
		}
	}
}

// CheckTimeouts expires overdue back-trace state (Section 4.6). Call it
// periodically when running over an unreliable transport.
func (s *Site) CheckTimeouts() {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.flushOutbox()
	s.engine.CheckTimeouts()
	s.drainAdmissionsLocked()
}

// assertOutboxFlushed panics if a write entry point left piggybacked
// messages stranded in the outbox. Read-only entry points hold only the
// read lock and so cannot flush; they assert instead, turning a stranded
// Batch into a loud failure rather than a silent protocol stall.
func (s *Site) assertOutboxFlushed() {
	if len(s.outboxOrder) != 0 {
		panic(fmt.Sprintf("site %v: %d destination(s) stranded in piggyback outbox", s.cfg.ID, len(s.outboxOrder)))
	}
}

// SuspicionThreshold returns the site's current suspicion threshold T
// (which AdaptiveThreshold may have raised).
func (s *Site) SuspicionThreshold() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	return s.threshold
}

// --- introspection for tests, tools, and experiments ---------------------

// NumObjects returns the number of objects in the heap.
func (s *Site) NumObjects() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	return s.heap.Len()
}

// ContainsObject reports whether the heap holds the object.
func (s *Site) ContainsObject(obj ids.ObjID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	return s.heap.Contains(obj)
}

// NumInrefs and NumOutrefs report table sizes.
func (s *Site) NumInrefs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	return s.table.NumInrefs()
}

// NumOutrefs reports the outref table size.
func (s *Site) NumOutrefs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	return s.table.NumOutrefs()
}

// InrefInfo describes one inref for introspection.
type InrefInfo struct {
	Obj      ids.ObjID
	Distance int
	Sources  []ids.SiteID
	Clean    bool
	Garbage  bool
}

// Inrefs returns a snapshot of the inref table.
func (s *Site) Inrefs() []InrefInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	out := make([]InrefInfo, 0, s.table.NumInrefs())
	for _, in := range s.table.Inrefs() {
		out = append(out, InrefInfo{
			Obj:      in.Obj,
			Distance: in.Distance(),
			Sources:  in.SourceSites(),
			Clean:    in.IsClean(s.threshold),
			Garbage:  in.Garbage,
		})
	}
	return out
}

// OutrefInfo describes one outref for introspection.
type OutrefInfo struct {
	Target        ids.Ref
	Distance      int
	Clean         bool
	Pinned        bool
	BackThreshold int
	Inset         []ids.ObjID
}

// Outrefs returns a snapshot of the outref table.
func (s *Site) Outrefs() []OutrefInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	out := make([]OutrefInfo, 0, s.table.NumOutrefs())
	for _, o := range s.table.Outrefs() {
		out = append(out, OutrefInfo{
			Target:        o.Target,
			Distance:      o.Distance,
			Clean:         o.IsClean(s.threshold),
			Pinned:        o.Pins > 0,
			BackThreshold: o.BackThreshold,
			Inset:         s.back.Inset(o.Target),
		})
	}
	return out
}

// BackInfoEntries returns the current number of (inref, outref) pairs in
// the installed back information — the paper's O(ni·no)-bounded quantity.
func (s *Site) BackInfoEntries() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	return s.back.Entries()
}

// ActiveFrames exposes the engine's live activation-frame count.
func (s *Site) ActiveFrames() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	return s.engine.ActiveFrames()
}

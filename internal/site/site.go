// Package site composes a complete site of the back-tracing collector: the
// object heap, the inref/outref tables, the local tracer, and the back-
// tracing engine, wired to a transport.Network.
//
// A Site is the unit of locality in the paper: it traces its own objects
// independently, exchanges insert/update messages to maintain inter-site
// reference lists (Section 2), propagates distance estimates (Section 3),
// computes back information during local traces (Section 5), participates
// in back traces (Section 4), and applies the transfer and insert barriers
// that keep everything safe under concurrent mutation (Section 6).
//
// All state is guarded by one mutex; message handlers, mutator operations,
// and collector phases are short critical sections, matching the paper's
// concurrency model.
package site

import (
	"sync"
	"time"

	"backtrace/internal/core"
	"backtrace/internal/event"
	"backtrace/internal/heap"
	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/msg"
	"backtrace/internal/refs"
	"backtrace/internal/tracer"
	"backtrace/internal/transport"
)

// Config parameterizes a Site.
type Config struct {
	// ID is the site's identifier (must be unique in the cluster).
	ID ids.SiteID
	// Network connects the site to its peers.
	Network transport.Network
	// SuspicionThreshold is T (Section 3): iorefs with estimated distance
	// beyond T are suspected. Defaults to 3.
	SuspicionThreshold int
	// BackThreshold is T2 (Section 4.3), the initial per-ioref trigger for
	// starting a back trace; it should be T plus a conservative cycle
	// length estimate. Defaults to SuspicionThreshold + 4.
	BackThreshold int
	// ThresholdBump is δ, added to an ioref's back threshold each time a
	// back trace visits it. Defaults to 4.
	ThresholdBump int
	// OutsetAlgorithm selects the Section 5 inset computation; defaults
	// to the Section 5.2 bottom-up algorithm.
	OutsetAlgorithm tracer.OutsetAlgorithm
	// CallTimeout / ReportTimeout bound back-trace waits (Section 4.6);
	// zero disables timeouts (appropriate with a reliable transport).
	CallTimeout   time.Duration
	ReportTimeout time.Duration
	// AutoBackTrace, when true, starts back traces automatically after
	// each local trace from every outref whose distance has crossed its
	// back threshold.
	AutoBackTrace bool
	// AdaptiveThreshold, when true, raises the suspicion threshold after
	// repeated Live back-trace outcomes (the tuning knob Section 3
	// suggests: "if too many suspects are found live, the threshold
	// should be increased").
	AdaptiveThreshold bool
	// Piggyback, when true, coalesces the messages produced within one
	// protocol step (a message delivery, a trace commit, a timeout scan)
	// into one Batch envelope per destination — the piggybacking the
	// paper suggests for the small back-trace messages (Section 4.6).
	Piggyback bool
	// Counters receives metrics; may be nil (a fresh set is created).
	Counters *metrics.Counters
	// Events, if non-nil, receives structured observability events
	// (trace lifecycle, barriers, sweeps, timeouts).
	Events *event.Log
}

func (c Config) withDefaults() Config {
	if c.SuspicionThreshold == 0 {
		c.SuspicionThreshold = 3
	}
	if c.BackThreshold == 0 {
		c.BackThreshold = c.SuspicionThreshold + 4
	}
	if c.ThresholdBump == 0 {
		c.ThresholdBump = 4
	}
	if c.OutsetAlgorithm == 0 {
		c.OutsetAlgorithm = tracer.AlgoBottomUp
	}
	if c.Counters == nil {
		c.Counters = &metrics.Counters{}
	}
	return c
}

// Site is one node of the distributed store.
type Site struct {
	cfg Config

	mu     sync.Mutex
	heap   *heap.Heap
	table  *refs.Table
	engine *core.Engine
	back   *tracer.BackInfo

	// pending holds a computed-but-uncommitted local trace (Section 6.2:
	// the "new copy" being prepared while back traces still use the old).
	pending *tracer.Result
	// pendingBarrierInrefs / pendingBarrierOutrefs record transfer-barrier
	// applications that arrived while pending != nil; their cleaning is
	// re-applied to the new copy at commit.
	pendingBarrierInrefs  []ids.ObjID
	pendingBarrierOutrefs []ids.Ref

	liveStreak int // consecutive Live outcomes, for AdaptiveThreshold

	// outbox holds messages coalesced per destination while a protocol
	// step runs (Piggyback mode); outboxOrder keeps flushing
	// deterministic.
	outbox      map[ids.SiteID][]msg.Message
	outboxOrder []ids.SiteID

	// pendingInserts tracks insert messages awaiting acknowledgement;
	// they are retransmitted at each local trace so a lost insert heals.
	pendingInserts map[ids.Ref]msg.Insert
	// farewell counts down the empty update messages still owed to peers
	// we no longer hold outrefs for, so a lost removal update heals.
	farewell map[ids.SiteID]int

	completions []TraceOutcome
}

// TraceOutcome records one completed back trace initiated by this site.
type TraceOutcome struct {
	Trace        ids.TraceID
	Outcome      msg.Verdict
	Participants []ids.SiteID
}

var _ transport.Handler = (*Site)(nil)

// New creates a site and registers it on the network.
func New(cfg Config) *Site {
	cfg = cfg.withDefaults()
	s := &Site{
		cfg:            cfg,
		heap:           heap.New(cfg.ID),
		table:          refs.NewTable(cfg.ID, cfg.BackThreshold),
		back:           tracer.EmptyBackInfo(),
		pendingInserts: make(map[ids.Ref]msg.Insert),
		farewell:       make(map[ids.SiteID]int),
		outbox:         make(map[ids.SiteID][]msg.Message),
	}
	s.engine = core.NewEngine(core.Config{
		Site:          cfg.ID,
		Threshold:     cfg.SuspicionThreshold,
		ThresholdBump: cfg.ThresholdBump,
		CallTimeout:   cfg.CallTimeout,
		ReportTimeout: cfg.ReportTimeout,
		Send:          s.send,
		Table:         s.table,
		Inset:         func(target ids.Ref) []ids.ObjID { return s.back.Inset(target) },
		Counters:      cfg.Counters,
		Completed:     s.onTraceCompleted,
		OnFlagged: func(obj ids.ObjID) {
			s.emit(event.Event{Kind: event.InrefFlagged, Obj: obj})
		},
		OnTimeout: func(t ids.TraceID) {
			s.emit(event.Event{Kind: event.TimeoutAssumedLive, Trace: t})
		},
	})
	cfg.Network.Register(cfg.ID, s)
	return s
}

// ID returns the site's identifier.
func (s *Site) ID() ids.SiteID { return s.cfg.ID }

// Counters returns the site's metrics counters.
func (s *Site) Counters() *metrics.Counters { return s.cfg.Counters }

// send transmits (or, in Piggyback mode, queues) one protocol message. It
// is called with the site lock held; flushOutbox runs before the lock is
// released by every entry point that can send.
func (s *Site) send(to ids.SiteID, m msg.Message) {
	if !s.cfg.Piggyback {
		s.cfg.Network.Send(s.cfg.ID, to, m)
		return
	}
	if _, ok := s.outbox[to]; !ok {
		s.outboxOrder = append(s.outboxOrder, to)
	}
	s.outbox[to] = append(s.outbox[to], m)
}

// flushOutbox ships the coalesced messages: one Batch envelope per
// destination (or the bare message when only one queued).
func (s *Site) flushOutbox() {
	if !s.cfg.Piggyback || len(s.outboxOrder) == 0 {
		return
	}
	for _, to := range s.outboxOrder {
		items := s.outbox[to]
		delete(s.outbox, to)
		switch len(items) {
		case 0:
		case 1:
			s.cfg.Network.Send(s.cfg.ID, to, items[0])
		default:
			s.cfg.Network.Send(s.cfg.ID, to, msg.Batch{Items: items})
		}
	}
	s.outboxOrder = s.outboxOrder[:0]
}

// emit appends an observability event if a log is configured.
func (s *Site) emit(e event.Event) {
	if s.cfg.Events != nil {
		e.Site = s.cfg.ID
		s.cfg.Events.Append(e)
	}
}

// onTraceCompleted runs (with the lock held) when a trace this site
// initiated finishes.
func (s *Site) onTraceCompleted(t ids.TraceID, outcome msg.Verdict, participants []ids.SiteID) {
	s.completions = append(s.completions, TraceOutcome{Trace: t, Outcome: outcome, Participants: participants})
	s.emit(event.Event{Kind: event.TraceCompleted, Trace: t, Verdict: outcome, N: len(participants)})
	if !s.cfg.AdaptiveThreshold {
		return
	}
	if outcome == msg.VerdictLive {
		s.liveStreak++
		if s.liveStreak >= 3 {
			// Too many live suspects: raise T (Section 3).
			s.cfg.SuspicionThreshold++
			s.engine.SetThreshold(s.cfg.SuspicionThreshold)
			s.liveStreak = 0
		}
	} else {
		s.liveStreak = 0
	}
}

// Completions drains and returns the outcomes of back traces initiated by
// this site since the previous call.
func (s *Site) Completions() []TraceOutcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.completions
	s.completions = nil
	return out
}

// Deliver implements transport.Handler: it dispatches one inbound message.
// The transport invokes it serially per site.
func (s *Site) Deliver(from ids.SiteID, m msg.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.flushOutbox()
	s.deliverLocked(from, m)
}

func (s *Site) deliverLocked(from ids.SiteID, m msg.Message) {
	switch mm := m.(type) {
	case msg.RefTransfer:
		s.handleRefTransfer(from, mm)
	case msg.Insert:
		s.handleInsert(from, mm)
	case msg.InsertAck:
		// The holder's outref is now protected by the owner's source
		// list: stop retransmitting the insert.
		delete(s.pendingInserts, mm.Target)
	case msg.ReleasePin:
		s.handleReleasePin(from, mm)
	case msg.Update:
		s.handleUpdate(from, mm)
	case msg.BackCall:
		s.engine.HandleBackCall(from, mm)
	case msg.BackReply:
		s.engine.HandleBackReply(from, mm)
	case msg.Report:
		s.engine.HandleReport(from, mm)
	case msg.Batch:
		for _, item := range mm.Items {
			s.deliverLocked(from, item)
		}
	}
}

// CheckTimeouts expires overdue back-trace state (Section 4.6). Call it
// periodically when running over an unreliable transport.
func (s *Site) CheckTimeouts() {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.flushOutbox()
	s.engine.CheckTimeouts()
}

// SuspicionThreshold returns the site's current suspicion threshold T
// (which AdaptiveThreshold may have raised).
func (s *Site) SuspicionThreshold() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.SuspicionThreshold
}

// --- introspection for tests, tools, and experiments ---------------------

// NumObjects returns the number of objects in the heap.
func (s *Site) NumObjects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heap.Len()
}

// ContainsObject reports whether the heap holds the object.
func (s *Site) ContainsObject(obj ids.ObjID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heap.Contains(obj)
}

// NumInrefs and NumOutrefs report table sizes.
func (s *Site) NumInrefs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.NumInrefs()
}

// NumOutrefs reports the outref table size.
func (s *Site) NumOutrefs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.NumOutrefs()
}

// InrefInfo describes one inref for introspection.
type InrefInfo struct {
	Obj      ids.ObjID
	Distance int
	Sources  []ids.SiteID
	Clean    bool
	Garbage  bool
}

// Inrefs returns a snapshot of the inref table.
func (s *Site) Inrefs() []InrefInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]InrefInfo, 0, s.table.NumInrefs())
	for _, in := range s.table.Inrefs() {
		out = append(out, InrefInfo{
			Obj:      in.Obj,
			Distance: in.Distance(),
			Sources:  in.SourceSites(),
			Clean:    in.IsClean(s.cfg.SuspicionThreshold),
			Garbage:  in.Garbage,
		})
	}
	return out
}

// OutrefInfo describes one outref for introspection.
type OutrefInfo struct {
	Target        ids.Ref
	Distance      int
	Clean         bool
	Pinned        bool
	BackThreshold int
	Inset         []ids.ObjID
}

// Outrefs returns a snapshot of the outref table.
func (s *Site) Outrefs() []OutrefInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]OutrefInfo, 0, s.table.NumOutrefs())
	for _, o := range s.table.Outrefs() {
		out = append(out, OutrefInfo{
			Target:        o.Target,
			Distance:      o.Distance,
			Clean:         o.IsClean(s.cfg.SuspicionThreshold),
			Pinned:        o.Pins > 0,
			BackThreshold: o.BackThreshold,
			Inset:         s.back.Inset(o.Target),
		})
	}
	return out
}

// BackInfoEntries returns the current number of (inref, outref) pairs in
// the installed back information — the paper's O(ni·no)-bounded quantity.
func (s *Site) BackInfoEntries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.back.Entries()
}

// ActiveFrames exposes the engine's live activation-frame count.
func (s *Site) ActiveFrames() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.ActiveFrames()
}

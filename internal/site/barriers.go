package site

import (
	"backtrace/internal/event"
	"backtrace/internal/ids"
	"backtrace/internal/msg"
)

// This file implements the Section 6.1 machinery: the transfer barrier
// (6.1.1), the remote-copy cases and insert barrier (6.1.2), and the clean
// rule notifications (6.4) they entail. All handlers run with the site
// lock held.

// handleRefTransfer processes an inbound reference transfer: the sending
// site's mutator passed Payload to this site (remote copy or traversal).
func (s *Site) handleRefTransfer(from ids.SiteID, m msg.RefTransfer) {
	z := m.Payload
	// The mutator on this site now holds the reference in a variable
	// (application root) until it explicitly drops it; this is what makes
	// the non-atomic mutator of Section 6.3 safe.
	s.heap.AddAppRoot(z)

	if z.Site == s.cfg.ID {
		// Case 1: the object is local. The transfer barrier applies to
		// its inref, and the sender's retention can be released — the
		// owner (this site) has the transfer.
		s.applyTransferBarrierInref(z.Obj)
		s.sendReleasePin(m.Pinner, z)
		return
	}

	if o, ok := s.table.Outref(z); ok {
		// Cases 2 and 3: an outref exists. If it is suspected, clean it.
		if !o.IsClean(s.threshold) && !s.cfg.SkipTransferBarrierUnsafe {
			s.cleanOutref(z)
		}
		s.sendReleasePin(m.Pinner, z)
		return
	}

	// Case 4: no outref. Create a clean one and run the insert protocol;
	// the sender stays pinned until the owner records us. The insert is
	// remembered and retransmitted at each local trace until the owner
	// acknowledges it (loss healing, Section 4.6 spirit).
	s.table.EnsureOutref(z)
	s.notePendingBarrierOutref(z)
	ins := msg.Insert{Target: z, Holder: s.cfg.ID, Pinner: m.Pinner}
	s.pendingInserts[z] = ins
	s.send(z.Site, ins)
}

// handleInsert processes an insert message at the owner: record the new
// holder in the inref's source list, apply the transfer barrier to the
// inref (Section 6.1.2, case 4), acknowledge the holder, and release the
// original sender's pin.
//
// The pin is released only when the insert actually adds a new source.
// Inserts are retransmitted at every local trace until acknowledged, so
// the owner can legitimately see the same insert twice; the pin is a
// counted retention, and a second release would not be absorbed — it
// would eat into an unrelated hold on the same reference, such as the
// sending mutator's own variable. (Found by the simulation model checker:
// two commits at the holder before the owner drained its link queued a
// retransmit behind the original, the double release destroyed the
// allocating agent's app root, and the owner collected a live object.)
// FIFO links make the source test sound: any Removal that could revive
// "newness" for a later insert of the same holder is ordered after the
// retransmits that precede it.
func (s *Site) handleInsert(from ids.SiteID, m msg.Insert) {
	if m.Target.Site != s.cfg.ID {
		return // misrouted
	}
	if !s.heap.Contains(m.Target.Obj) {
		// The object is gone: the reference was to garbage already
		// collected (possible only if the sender's retention lapsed,
		// e.g. after message loss). Nothing to record, but still
		// acknowledge so the holder stops retransmitting — each
		// retransmit would otherwise trigger another release below.
		s.send(m.Holder, msg.InsertAck{Target: m.Target})
		s.sendReleasePin(m.Pinner, m.Target)
		return
	}
	isNewSource := true
	if in, ok := s.table.Inref(m.Target.Obj); ok {
		_, had := in.Sources[m.Holder]
		isNewSource = !had
	}
	s.table.AddSource(m.Target.Obj, m.Holder)
	s.applyTransferBarrierInref(m.Target.Obj)
	s.send(m.Holder, msg.InsertAck{Target: m.Target})
	if isNewSource {
		s.sendReleasePin(m.Pinner, m.Target)
	}
}

// handleReleasePin releases the retention this site took when it sent the
// reference (insert barrier, Section 6.1.2).
func (s *Site) handleReleasePin(from ids.SiteID, m msg.ReleasePin) {
	s.releasePinLocked(m.Target)
}

func (s *Site) releasePinLocked(target ids.Ref) {
	if target.Site == s.cfg.ID {
		s.heap.RemoveAppRoot(target)
		return
	}
	s.table.Unpin(target)
}

// sendReleasePin routes a pin release to the original sender, handling the
// case where the sender is this site.
func (s *Site) sendReleasePin(pinner ids.SiteID, target ids.Ref) {
	if pinner == ids.NoSite {
		return
	}
	if pinner == s.cfg.ID {
		s.releasePinLocked(target)
		return
	}
	s.send(pinner, msg.ReleasePin{Target: target})
}

// applyTransferBarrierInref implements the transfer barrier (Section
// 6.1.1): "When a mutator transfers (or traverses) a reference i to site
// Q, if Q has a suspected inref for i, it cleans inref i and the outrefs
// in i.outset."
//
// Cleaning notifies the engine so any back trace active on the cleaned
// iorefs returns Live (the clean rule, Section 6.4). If a local trace is
// between computation and commit, the application is recorded and replayed
// against the new back information at commit (Section 6.2).
func (s *Site) applyTransferBarrierInref(obj ids.ObjID) {
	if s.cfg.SkipTransferBarrierUnsafe {
		// Fault injection for the simulation model checker: pretend the
		// implementation forgot the Section 6.1.1 barrier.
		return
	}
	in, ok := s.table.Inref(obj)
	if !ok || in.Garbage {
		return
	}
	// The barrier must be set even when the inref is currently clean by
	// distance: distance cleanliness is revocable before the next local
	// trace — a farewell Removal or a distance update from a source can
	// raise the estimate past the threshold while the transferred
	// reference sits only in a mutator variable the committed back
	// information knows nothing about. (Found by the simulation model
	// checker: a two-hop transfer whose intermediary discards its outref
	// re-dirties the inref and a back trace flags the live target.) The
	// barrier is cheap — the next local trace commit clears it.
	in.Barrier = true
	s.emit(event.Event{Kind: event.TransferBarrier, Obj: obj})
	s.engine.NotifyCleanedInref(obj)
	for _, target := range s.back.Outset(obj) {
		s.cleanOutref(target)
	}
	if s.tracing {
		s.pendingBarrierInrefs = append(s.pendingBarrierInrefs, obj)
	}
}

// cleanOutref barrier-cleans one outref and notifies the engine.
func (s *Site) cleanOutref(target ids.Ref) {
	o, ok := s.table.Outref(target)
	if !ok {
		return
	}
	if !o.Barrier {
		o.Barrier = true
		s.emit(event.Event{Kind: event.OutrefCleaned, Ref: target})
	}
	s.engine.NotifyCleanedOutref(target)
	s.notePendingBarrierOutref(target)
}

// notePendingBarrierOutref records a barrier-cleaned (or freshly created)
// outref so its clean mark survives the commit of an in-flight local trace
// (Section 6.2).
func (s *Site) notePendingBarrierOutref(target ids.Ref) {
	if s.tracing {
		s.pendingBarrierOutrefs = append(s.pendingBarrierOutrefs, target)
	}
}

package site

import (
	"testing"
	"time"

	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/transport"
)

// newAsyncPair builds two sites on an asynchronous network, the receiver
// running a mailbox executor with the given inbox capacity.
func newAsyncPair(t *testing.T, inbox int) (*Site, *Site, *transport.Net) {
	t.Helper()
	net := transport.NewNet(transport.Options{})
	a := New(Config{ID: 1, Network: net, SuspicionThreshold: 3, BackThreshold: 7})
	b := New(Config{ID: 2, Network: net, SuspicionThreshold: 3, BackThreshold: 7, InboxSize: inbox})
	t.Cleanup(func() {
		a.Close()
		b.Close()
		net.Close()
	})
	return a, b, net
}

// settle waits for the network and the receiver's inbox to drain.
func settle(t *testing.T, net *transport.Net, sites ...*Site) {
	t.Helper()
	for i := 0; i < 3; i++ {
		if err := net.Quiesce(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		for _, s := range sites {
			if err := s.AwaitInboxIdle(10 * time.Second); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestMailboxProcessesTransfersInOrder drives the full insert protocol
// through a tiny inbox: the capacity-1 mailbox forces backpressure on the
// delivery worker while preserving per-link FIFO, so every transfer must
// still complete and the tables must agree on both sides.
func TestMailboxProcessesTransfersInOrder(t *testing.T) {
	a, b, net := newAsyncPair(t, 1)

	const n = 50
	sent := make([]ids.Ref, n)
	for i := range sent {
		sent[i] = a.NewObject()
		if err := a.SendRef(2, sent[i]); err != nil {
			t.Fatal(err)
		}
	}
	settle(t, net, a, b)

	if got := a.NumInrefs(); got != n {
		t.Fatalf("owner has %d inrefs, want %d", got, n)
	}
	if got := b.NumOutrefs(); got != n {
		t.Fatalf("holder has %d outrefs, want %d", got, n)
	}
	c := b.Counters()
	if got := c.Get(metrics.MailboxEnqueued); got < n {
		t.Fatalf("mailbox.enqueued = %d, want >= %d", got, n)
	}
	if got := c.Get(metrics.MailboxDepthPeak); got < 1 {
		t.Fatalf("mailbox.depth.peak = %d, want >= 1", got)
	}
	if b.InboxDepth() != 0 {
		t.Fatalf("inbox depth %d after settle", b.InboxDepth())
	}
}

// TestMailboxCloseUnblocksAndDropsQueued checks that Close is safe while
// traffic is still arriving and that it is idempotent.
func TestMailboxCloseUnblocksAndDropsQueued(t *testing.T) {
	a, b, net := newAsyncPair(t, 2)

	for i := 0; i < 20; i++ {
		r := a.NewObject()
		if err := a.SendRef(2, r); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	b.Close() // idempotent
	if err := net.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if b.InboxDepth() != 0 {
		t.Fatalf("inbox depth %d after close", b.InboxDepth())
	}
}

// TestOffLockTraceMatchesLockedTrace commits the same heap through the
// off-lock snapshot path and the LockedTrace baseline and expects identical
// sweeps.
func TestOffLockTraceMatchesLockedTrace(t *testing.T) {
	for _, locked := range []bool{false, true} {
		net := transport.NewNet(transport.Options{Stepped: true})
		s := New(Config{ID: 1, Network: net, SuspicionThreshold: 3, BackThreshold: 7, LockedTrace: locked})
		root := s.NewRootObject()
		kept := s.NewObject()
		if err := s.AddReference(root.Obj, kept); err != nil {
			t.Fatal(err)
		}
		s.NewObject() // unreferenced: garbage
		s.NewObject()
		rep := s.RunLocalTrace()
		if rep.Collected != 2 {
			t.Fatalf("locked=%v: collected %d, want 2", locked, rep.Collected)
		}
		if !s.ContainsObject(kept.Obj) || !s.ContainsObject(root.Obj) {
			t.Fatalf("locked=%v: live objects swept", locked)
		}
		net.Close()
	}
}

package site

import (
	"sort"
	"time"

	"backtrace/internal/event"
	"backtrace/internal/heap"
	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/msg"
	"backtrace/internal/obs"
	"backtrace/internal/refs"
	"backtrace/internal/tracer"
)

// This file orchestrates the collector phases at one site: the two-phase
// local trace (computation, then commit — the Section 6.2 double buffering
// of back information), the update-message protocol that trims source
// lists and propagates distances (Sections 2–3), and the policy for
// triggering back traces (Section 4.3).

// TraceReport summarizes one committed local trace.
type TraceReport struct {
	// Collected is the number of objects swept.
	Collected int
	// OutrefsTrimmed is the number of outrefs dropped.
	OutrefsTrimmed int
	// UpdatesSent is the number of update messages sent to target sites.
	UpdatesSent int
	// BackTracesStarted is the number of back traces triggered after the
	// commit (only with AutoBackTrace).
	BackTracesStarted int
	// Stats carries the tracer's cost counters.
	Stats tracer.Stats
}

// RunLocalTrace computes and immediately commits a local trace. Most
// callers use this; tests exercising Section 6.2 interleavings call
// BeginLocalTrace and CommitLocalTrace separately.
func (s *Site) RunLocalTrace() TraceReport {
	s.BeginLocalTrace()
	return s.CommitLocalTrace()
}

// BeginLocalTrace computes a local trace — the forward mark, new outref
// distances, and the new copy of the back information — without installing
// any of it. Back traces arriving before the commit keep using the old
// copy; transfer barriers applied before the commit are recorded and
// replayed onto the new copy (Section 6.2).
//
// The computation itself runs OUTSIDE the site lock, on a snapshot of the
// heap and ioref tables taken under a short critical section. This is
// exactly what Section 6.2's double buffering buys: the live state may
// keep changing during the computation, because back traces still use the
// old back information, garbage stays garbage (no root or message can name
// an unreachable object), and barriers that fire meanwhile are recorded
// (s.tracing) and replayed at commit. Config.LockedTrace restores the old
// whole-computation-under-the-lock behaviour for baseline measurements.
func (s *Site) BeginLocalTrace() {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	s.localTraceT0 = s.clk.Now()

	if s.cfg.LockedTrace {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.startTraceLocked()
		s.installPendingLocked(s.computeTrace(s.heap, s.table, s.threshold))
		return
	}

	s.mu.Lock()
	// Incremental sites snapshot by patching the retained shadow copy with
	// the dirty set — O(changes), not O(heap). The shadow copy shares no
	// structures with the live state, so the off-lock read below stays
	// safe; traceMu guarantees the previous trace is done with it.
	var h *heap.Heap
	var tbl *refs.Table
	var hd *heap.Delta
	var td *refs.Delta
	if s.cfg.Incremental {
		s.gaugeDirty.Set(int64(100 * s.heap.MaxShardDirtyRatio()))
		h, hd = s.heap.TraceSnapshot()
		tbl, td = s.table.TraceSnapshot()
	} else {
		h = s.heap.Snapshot()
		tbl = s.table.Snapshot()
	}
	threshold := s.threshold
	epoch := s.traceEpoch
	s.startTraceLocked()
	s.mu.Unlock()

	var res *tracer.Result
	if s.cfg.Incremental {
		res = s.incr.Run(h, tbl, hd, td, threshold, s.cfg.OutsetAlgorithm)
	} else {
		res = s.runFull(h, tbl, threshold)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.traceEpoch != epoch || !s.tracing {
		// The state this result was computed from was replaced wholesale
		// (e.g. a checkpoint restore) while we traced: drop the result
		// rather than install conclusions about a heap that no longer
		// exists. traceMu makes this unreachable for ordinary
		// Begin/Commit interleavings.
		if s.cfg.Incremental {
			// The snapshot consumed the dirty sets but its result was
			// dropped: forget both lineages so the next trace starts full.
			s.incr.Reset()
			s.heap.ResetTraceSnapshot()
			s.table.ResetTraceSnapshot()
		}
		return
	}
	s.installPendingLocked(res)
}

// computeTrace runs the tracer under the site lock (LockedTrace mode),
// routing through the incremental state or the scratch buffers according
// to configuration.
func (s *Site) computeTrace(h *heap.Heap, tbl *refs.Table, threshold int) *tracer.Result {
	if s.cfg.Incremental {
		// Even under the lock, incremental mode traces the patched
		// snapshot: the remark's previous-result lineage must refer to one
		// consistent sequence of states.
		s.gaugeDirty.Set(int64(100 * s.heap.MaxShardDirtyRatio()))
		sh, hd := s.heap.TraceSnapshot()
		stbl, td := s.table.TraceSnapshot()
		return s.incr.Run(sh, stbl, hd, td, threshold, s.cfg.OutsetAlgorithm)
	}
	return s.runFull(h, tbl, threshold)
}

// runFull computes a non-incremental trace: the work-stealing parallel
// tracer when Config.TraceWorkers exceeds one, the sequential
// scratch-buffered tracer otherwise. Results are bit-identical.
func (s *Site) runFull(h *heap.Heap, tbl *refs.Table, threshold int) *tracer.Result {
	if s.cfg.TraceWorkers > 1 {
		return tracer.RunParallel(h, tbl, threshold, s.cfg.OutsetAlgorithm, s.cfg.TraceWorkers)
	}
	return tracer.RunWithScratch(h, tbl, threshold, s.cfg.OutsetAlgorithm, s.scratch)
}

// startTraceLocked opens the trace window: barriers applied from here to
// the commit are recorded for replay onto the new back information.
func (s *Site) startTraceLocked() {
	s.tracing = true
	s.pending = nil
	s.pendingBarrierInrefs = nil
	s.pendingBarrierOutrefs = nil
}

// installPendingLocked stages a computed trace result for commit and
// records its cost.
func (s *Site) installPendingLocked(res *tracer.Result) {
	s.pending = res
	s.cfg.Counters.Inc(metrics.LocalTraces)
	s.cfg.Counters.Add(metrics.ObjectsTraced, res.Stats.ObjectsTraced)
	s.cfg.Counters.Add(metrics.ObjectsRetraced, res.Stats.OutsetRetraced)
	s.cfg.Counters.Add(metrics.OutsetUnions, res.Stats.Unions)
	s.cfg.Counters.Add(metrics.OutsetUnionsMemoHit, res.Stats.MemoHits)
	if res.Stats.Steals > 0 {
		s.cfg.Counters.Add(metrics.ParallelSteals, res.Stats.Steals)
	}
	if s.cfg.Incremental {
		if res.Stats.Incremental {
			s.cfg.Counters.Inc(metrics.IncrementalRemarks)
			s.cfg.Counters.Add(metrics.IncrementalDirtySeeds, int64(res.Stats.DirtySeeds))
			if res.Stats.OutsetsReused {
				s.cfg.Counters.Inc(metrics.IncrementalOutsetsReused)
			}
		} else {
			s.cfg.Counters.Inc(metrics.IncrementalFallbacks)
		}
	}
}

// CommitLocalTrace atomically installs the most recent BeginLocalTrace:
// sweeps garbage, trims outrefs, applies new distances, replaces the back
// information, resets expired barrier marks, replays barriers that arrived
// during the trace, sends update messages, and (optionally) triggers back
// traces.
func (s *Site) CommitLocalTrace() TraceReport {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	t0 := s.localTraceT0
	s.localTraceT0 = time.Time{}
	s.mu.Lock()
	res := s.pending
	s.pending = nil
	s.tracing = false
	s.traceEpoch++
	if res == nil {
		s.mu.Unlock()
		return TraceReport{}
	}
	var rep TraceReport
	rep.Stats = res.Stats

	// 1. Sweep objects that were unreachable at computation time. (They
	// cannot have become reachable since: no root or message can name an
	// unreachable object.)
	for _, obj := range res.Dead {
		if s.heap.Contains(obj) {
			s.heap.Delete(obj)
			rep.Collected++
		}
	}
	s.cfg.Counters.Add(metrics.ObjectsCollected, int64(rep.Collected))

	// 2. New outref distances. Transitions to clean fire the clean rule.
	// Sorted iteration keeps the clean-rule notifications (which can send
	// messages) in a deterministic order — a requirement of the replayable
	// simulation harness.
	distTargets := make([]ids.Ref, 0, len(res.OutrefDist))
	for target := range res.OutrefDist {
		distTargets = append(distTargets, target)
	}
	sort.Slice(distTargets, func(i, j int) bool { return distTargets[i].Less(distTargets[j]) })
	for _, target := range distTargets {
		dist := res.OutrefDist[target]
		o, ok := s.table.Outref(target)
		if !ok {
			continue
		}
		wasClean := o.IsClean(s.threshold)
		o.Distance = dist
		if !wasClean && o.IsClean(s.threshold) {
			s.engine.NotifyCleanedOutref(target)
		}
	}

	// 3. Trim untraced outrefs — except those retained by the insert
	// barrier (pins), barrier-cleaned by a transfer that happened AFTER
	// this trace was computed (pre-computation barriers are superseded:
	// "outrefs cleaned by the transfer barrier remain clean until the
	// site does the next local trace"), or held in a mutator variable
	// that appeared after the computation.
	postBarrier := make(map[ids.Ref]struct{}, len(s.pendingBarrierOutrefs))
	for _, target := range s.pendingBarrierOutrefs {
		postBarrier[target] = struct{}{}
	}
	removals := make(map[ids.SiteID][]ids.ObjID)
	for _, target := range res.Untraced {
		o, ok := s.table.Outref(target)
		if !ok {
			continue
		}
		if _, barred := postBarrier[target]; barred || o.Pins > 0 || s.heap.HoldsAppRoot(target) {
			continue
		}
		s.table.RemoveOutref(target)
		removals[target.Site] = append(removals[target.Site], target.Obj)
		rep.OutrefsTrimmed++
	}

	// 4. Install the new back information (the Section 6.2 atomic swap),
	// reset the transfer-barrier marks that the new information
	// supersedes, and replay barriers that arrived during the trace on
	// the new copy.
	s.back = res.Back
	s.table.ResetBarriers()
	for _, obj := range s.pendingBarrierInrefs {
		if in, ok := s.table.Inref(obj); ok && !in.Garbage {
			in.Barrier = true
			for _, target := range s.back.Outset(obj) {
				if o, ok := s.table.Outref(target); ok {
					o.Barrier = true
				}
			}
		}
	}
	for _, target := range s.pendingBarrierOutrefs {
		if o, ok := s.table.Outref(target); ok {
			o.Barrier = true
		}
	}
	s.pendingBarrierInrefs = nil
	s.pendingBarrierOutrefs = nil

	entries := int64(s.back.Entries())
	s.cfg.Counters.Add(metrics.BackInfoEntries, entries)
	s.cfg.Counters.Max(metrics.BackInfoPeak, entries)

	// 5. Build one update message per target site: source-list removals
	// for trimmed outrefs, distance changes for retained ones (Sections
	// 2–3), and the complete holds list for idempotent reconciliation.
	// Peers we owe farewell updates to (no outrefs left) get a few empty
	// updates so a lost removal heals.
	updates := make(map[ids.SiteID]*msg.Update)
	ensure := func(site ids.SiteID) *msg.Update {
		u, ok := updates[site]
		if !ok {
			u = &msg.Update{}
			updates[site] = u
		}
		return u
	}
	for siteID, objs := range removals {
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		ensure(siteID).Removals = objs
	}
	for _, o := range s.table.Outrefs() {
		u := ensure(o.Target.Site)
		u.Holds = append(u.Holds, o.Target.Obj)
		if _, traced := res.OutrefDist[o.Target]; traced {
			u.Distances = append(u.Distances, msg.DistanceUpdate{
				Obj:      o.Target.Obj,
				Distance: o.Distance,
			})
		}
	}
	for peer := range s.farewell {
		ensure(peer)
	}
	sites := make([]ids.SiteID, 0, len(updates))
	for siteID := range updates {
		sites = append(sites, siteID)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, siteID := range sites {
		if siteID == s.cfg.ID {
			continue
		}
		u := updates[siteID]
		s.send(siteID, *u)
		rep.UpdatesSent++
		switch {
		case len(u.Holds) > 0:
			s.farewell[siteID] = 3
		default:
			n, owed := s.farewell[siteID]
			switch {
			case owed && n <= 1:
				delete(s.farewell, siteID)
			case owed:
				s.farewell[siteID] = n - 1
			case len(u.Removals) > 0:
				s.farewell[siteID] = 2
			}
		}
	}

	// 5b. Retransmit unacknowledged inserts for outrefs that still exist,
	// in sorted order so retransmission traffic replays deterministically.
	insTargets := make([]ids.Ref, 0, len(s.pendingInserts))
	for target := range s.pendingInserts {
		insTargets = append(insTargets, target)
	}
	sort.Slice(insTargets, func(i, j int) bool { return insTargets[i].Less(insTargets[j]) })
	for _, target := range insTargets {
		if _, ok := s.table.Outref(target); !ok {
			delete(s.pendingInserts, target)
			continue
		}
		s.send(target.Site, s.pendingInserts[target])
	}

	if rep.Collected > 0 {
		s.emit(event.Event{Kind: event.ObjectsCollected, N: rep.Collected})
	}
	if rep.OutrefsTrimmed > 0 {
		s.emit(event.Event{Kind: event.OutrefsTrimmed, N: rep.OutrefsTrimmed})
	}

	// 6. Trigger back traces from outrefs whose distance has crossed
	// their back threshold (Section 4.3).
	if s.cfg.AutoBackTrace {
		rep.BackTracesStarted = s.triggerBackTracesLocked()
	}

	// Close the local-trace span (begin through commit).
	if !t0.IsZero() {
		now := s.clk.Now()
		s.histLocalDur.Observe(now.Sub(t0).Seconds())
		s.emitSpan(obs.Span{
			Kind:      obs.SpanLocalTrace,
			Start:     t0,
			End:       now,
			Collected: rep.Collected,
		})
	}
	s.flushOutbox()
	s.mu.Unlock()
	return rep
}

// handleUpdate processes a peer's post-trace update message: drop the
// sender from the source lists of removed references, reconcile against
// the sender's complete holds list (healing any previously lost update),
// and install new distances. Cleanliness transitions fire the clean rule.
func (s *Site) handleUpdate(from ids.SiteID, m msg.Update) {
	for _, obj := range m.Removals {
		s.table.RemoveSource(obj, from)
	}
	// Reconciliation: any inref still listing the sender for an object
	// the sender no longer holds an outref to must lose that source.
	holds := make(map[ids.ObjID]struct{}, len(m.Holds))
	for _, obj := range m.Holds {
		holds[obj] = struct{}{}
	}
	var stale []ids.ObjID
	s.table.EachInref(func(in *refs.Inref) {
		if _, listed := in.Sources[from]; !listed {
			return
		}
		if _, held := holds[in.Obj]; !held {
			stale = append(stale, in.Obj)
		}
	})
	for _, obj := range stale {
		s.table.RemoveSource(obj, from)
	}
	for _, du := range m.Distances {
		in, ok := s.table.Inref(du.Obj)
		if !ok {
			continue
		}
		wasClean := in.IsClean(s.threshold)
		s.table.SetSourceDistance(du.Obj, from, du.Distance)
		if !wasClean && in.IsClean(s.threshold) {
			s.engine.NotifyCleanedInref(du.Obj)
		}
	}
}

// TriggerBackTraces scans the outref table and starts a back trace from
// every suspected outref whose distance exceeds its back threshold
// (Section 4.3). It returns the number of traces started.
func (s *Site) TriggerBackTraces() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.flushOutbox()
	return s.triggerBackTracesLocked()
}

func (s *Site) triggerBackTracesLocked() int {
	started := 0
	for _, o := range s.table.Outrefs() {
		if s.engine.ShouldStart(o.Target) {
			if t, ok := s.engine.StartTrace(o.Target); ok {
				s.emit(event.Event{Kind: event.TraceStarted, Trace: t, Ref: o.Target})
				started++
			}
		}
	}
	return started
}

// StartBackTrace starts a back trace from a specific outref, bypassing the
// back-threshold policy (used by tests and experiments). It reports
// whether a trace started.
func (s *Site) StartBackTrace(target ids.Ref) (ids.TraceID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.flushOutbox()
	t, ok := s.engine.StartTrace(target)
	if ok {
		s.emit(event.Event{Kind: event.TraceStarted, Trace: t, Ref: target})
	}
	return t, ok
}

// GarbageFlaggedInrefs returns the local objects whose inrefs a completed
// back trace has flagged as garbage.
func (s *Site) GarbageFlaggedInrefs() []ids.ObjID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	var out []ids.ObjID
	for _, in := range s.table.Inrefs() {
		if in.Garbage {
			out = append(out, in.Obj)
		}
	}
	return out
}

// InrefDistance returns the current distance of the inref for obj, or
// refs.DistInfinity if there is none.
func (s *Site) InrefDistance(obj ids.ObjID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	if in, ok := s.table.Inref(obj); ok {
		return in.Distance()
	}
	return refs.DistInfinity
}

// OutrefDistance returns the current distance of the outref for target, or
// refs.DistInfinity if there is none.
func (s *Site) OutrefDistance(target ids.Ref) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	if o, ok := s.table.Outref(target); ok {
		return o.Distance
	}
	return refs.DistInfinity
}

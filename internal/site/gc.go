package site

import (
	"sort"
	"time"

	"backtrace/internal/event"
	"backtrace/internal/heap"
	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/msg"
	"backtrace/internal/obs"
	"backtrace/internal/refs"
	"backtrace/internal/tracer"
)

// This file orchestrates the collector phases at one site: the two-phase
// local trace (computation, then commit — the Section 6.2 double buffering
// of back information), the update-message protocol that trims source
// lists and propagates distances (Sections 2–3), and the policy for
// triggering back traces (Section 4.3).

// TraceReport summarizes one committed local trace.
type TraceReport struct {
	// Collected is the number of objects swept.
	Collected int
	// OutrefsTrimmed is the number of outrefs dropped.
	OutrefsTrimmed int
	// UpdatesSent is the number of update messages sent to target sites.
	UpdatesSent int
	// BackTracesStarted is the number of back traces triggered after the
	// commit (only with AutoBackTrace).
	BackTracesStarted int
	// Stats carries the tracer's cost counters.
	Stats tracer.Stats
}

// RunLocalTrace computes and immediately commits a local trace. Most
// callers use this; tests exercising Section 6.2 interleavings call
// BeginLocalTrace and CommitLocalTrace separately.
func (s *Site) RunLocalTrace() TraceReport {
	s.BeginLocalTrace()
	return s.CommitLocalTrace()
}

// BeginLocalTrace computes a local trace — the forward mark, new outref
// distances, and the new copy of the back information — without installing
// any of it. Back traces arriving before the commit keep using the old
// copy; transfer barriers applied before the commit are recorded and
// replayed onto the new copy (Section 6.2).
//
// The computation itself runs OUTSIDE the site lock, on a snapshot of the
// heap and ioref tables taken under a short critical section. This is
// exactly what Section 6.2's double buffering buys: the live state may
// keep changing during the computation, because back traces still use the
// old back information, garbage stays garbage (no root or message can name
// an unreachable object), and barriers that fire meanwhile are recorded
// (s.tracing) and replayed at commit. Config.LockedTrace restores the old
// whole-computation-under-the-lock behaviour for baseline measurements.
func (s *Site) BeginLocalTrace() {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	s.localTraceT0 = s.clk.Now()

	if s.cfg.LockedTrace {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.startTraceLocked()
		s.installPendingLocked(s.computeTrace(s.heap, s.table, s.threshold))
		return
	}

	s.mu.Lock()
	// Incremental sites snapshot by patching the retained shadow copy with
	// the dirty set — O(changes), not O(heap). The shadow copy shares no
	// structures with the live state, so the off-lock read below stays
	// safe; traceMu guarantees the previous trace is done with it.
	var h *heap.Heap
	var tbl *refs.Table
	var hd *heap.Delta
	var td *refs.Delta
	if s.cfg.Incremental {
		s.gaugeDirty.Set(int64(100 * s.heap.MaxShardDirtyRatio()))
		h, hd = s.heap.TraceSnapshot()
		tbl, td = s.table.TraceSnapshot()
	} else {
		h = s.heap.Snapshot()
		tbl = s.table.Snapshot()
	}
	threshold := s.threshold
	epoch := s.traceEpoch
	s.startTraceLocked()
	s.mu.Unlock()

	var res *tracer.Result
	if s.cfg.Incremental {
		res = s.incr.Run(h, tbl, hd, td, threshold, s.cfg.OutsetAlgorithm)
	} else {
		res = s.runFull(h, tbl, threshold)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.traceEpoch != epoch || !s.tracing {
		// The state this result was computed from was replaced wholesale
		// (e.g. a checkpoint restore) while we traced: drop the result
		// rather than install conclusions about a heap that no longer
		// exists. traceMu makes this unreachable for ordinary
		// Begin/Commit interleavings.
		if s.cfg.Incremental {
			// The snapshot consumed the dirty sets but its result was
			// dropped: forget both lineages so the next trace starts full.
			s.incr.Reset()
			s.heap.ResetTraceSnapshot()
			s.table.ResetTraceSnapshot()
		}
		return
	}
	s.installPendingLocked(res)
}

// computeTrace runs the tracer under the site lock (LockedTrace mode),
// routing through the incremental state or the scratch buffers according
// to configuration.
func (s *Site) computeTrace(h *heap.Heap, tbl *refs.Table, threshold int) *tracer.Result {
	if s.cfg.Incremental {
		// Even under the lock, incremental mode traces the patched
		// snapshot: the remark's previous-result lineage must refer to one
		// consistent sequence of states.
		s.gaugeDirty.Set(int64(100 * s.heap.MaxShardDirtyRatio()))
		sh, hd := s.heap.TraceSnapshot()
		stbl, td := s.table.TraceSnapshot()
		return s.incr.Run(sh, stbl, hd, td, threshold, s.cfg.OutsetAlgorithm)
	}
	return s.runFull(h, tbl, threshold)
}

// runFull computes a non-incremental trace: the work-stealing parallel
// tracer when Config.TraceWorkers exceeds one, the sequential
// scratch-buffered tracer otherwise. Results are bit-identical.
func (s *Site) runFull(h *heap.Heap, tbl *refs.Table, threshold int) *tracer.Result {
	if s.cfg.TraceWorkers > 1 {
		return tracer.RunParallel(h, tbl, threshold, s.cfg.OutsetAlgorithm, s.cfg.TraceWorkers)
	}
	return tracer.RunWithScratch(h, tbl, threshold, s.cfg.OutsetAlgorithm, s.scratch)
}

// startTraceLocked opens the trace window: barriers applied from here to
// the commit are recorded for replay onto the new back information.
func (s *Site) startTraceLocked() {
	s.tracing = true
	s.pending = nil
	s.pendingBarrierInrefs = nil
	s.pendingBarrierOutrefs = nil
}

// installPendingLocked stages a computed trace result for commit and
// records its cost.
func (s *Site) installPendingLocked(res *tracer.Result) {
	s.pending = res
	s.cfg.Counters.Inc(metrics.LocalTraces)
	s.cfg.Counters.Add(metrics.ObjectsTraced, res.Stats.ObjectsTraced)
	s.cfg.Counters.Add(metrics.ObjectsRetraced, res.Stats.OutsetRetraced)
	s.cfg.Counters.Add(metrics.OutsetUnions, res.Stats.Unions)
	s.cfg.Counters.Add(metrics.OutsetUnionsMemoHit, res.Stats.MemoHits)
	if res.Stats.Steals > 0 {
		s.cfg.Counters.Add(metrics.ParallelSteals, res.Stats.Steals)
	}
	if s.cfg.Incremental {
		if res.Stats.Incremental {
			s.cfg.Counters.Inc(metrics.IncrementalRemarks)
			s.cfg.Counters.Add(metrics.IncrementalDirtySeeds, int64(res.Stats.DirtySeeds))
			if res.Stats.OutsetsReused {
				s.cfg.Counters.Inc(metrics.IncrementalOutsetsReused)
			}
		} else {
			s.cfg.Counters.Inc(metrics.IncrementalFallbacks)
		}
	}
}

// CommitLocalTrace atomically installs the most recent BeginLocalTrace:
// sweeps garbage, trims outrefs, applies new distances, replaces the back
// information, resets expired barrier marks, replays barriers that arrived
// during the trace, sends update messages, and (optionally) triggers back
// traces.
func (s *Site) CommitLocalTrace() TraceReport {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	t0 := s.localTraceT0
	s.localTraceT0 = time.Time{}
	s.mu.Lock()
	res := s.pending
	s.pending = nil
	s.tracing = false
	s.traceEpoch++
	if res == nil {
		s.mu.Unlock()
		return TraceReport{}
	}
	var rep TraceReport
	rep.Stats = res.Stats

	// 1. Sweep objects that were unreachable at computation time. (They
	// cannot have become reachable since: no root or message can name an
	// unreachable object.)
	for _, obj := range res.Dead {
		if s.heap.Contains(obj) {
			s.heap.Delete(obj)
			rep.Collected++
		}
	}
	s.cfg.Counters.Add(metrics.ObjectsCollected, int64(rep.Collected))

	// 2. New outref distances. Transitions to clean fire the clean rule.
	// Sorted iteration keeps the clean-rule notifications (which can send
	// messages) in a deterministic order — a requirement of the replayable
	// simulation harness.
	distTargets := make([]ids.Ref, 0, len(res.OutrefDist))
	for target := range res.OutrefDist {
		distTargets = append(distTargets, target)
	}
	sort.Slice(distTargets, func(i, j int) bool { return distTargets[i].Less(distTargets[j]) })
	for _, target := range distTargets {
		dist := res.OutrefDist[target]
		o, ok := s.table.Outref(target)
		if !ok {
			continue
		}
		wasClean := o.IsClean(s.threshold)
		o.Distance = dist
		if !wasClean && o.IsClean(s.threshold) {
			s.engine.NotifyCleanedOutref(target)
		}
	}

	// 3. Trim untraced outrefs — except those retained by the insert
	// barrier (pins), barrier-cleaned by a transfer that happened AFTER
	// this trace was computed (pre-computation barriers are superseded:
	// "outrefs cleaned by the transfer barrier remain clean until the
	// site does the next local trace"), or held in a mutator variable
	// that appeared after the computation.
	postBarrier := make(map[ids.Ref]struct{}, len(s.pendingBarrierOutrefs))
	for _, target := range s.pendingBarrierOutrefs {
		postBarrier[target] = struct{}{}
	}
	removals := make(map[ids.SiteID][]ids.ObjID)
	for _, target := range res.Untraced {
		o, ok := s.table.Outref(target)
		if !ok {
			continue
		}
		if _, barred := postBarrier[target]; barred || o.Pins > 0 || s.heap.HoldsAppRoot(target) {
			continue
		}
		s.table.RemoveOutref(target)
		removals[target.Site] = append(removals[target.Site], target.Obj)
		rep.OutrefsTrimmed++
	}

	// 4. Install the new back information (the Section 6.2 atomic swap),
	// reset the transfer-barrier marks that the new information
	// supersedes, and replay barriers that arrived during the trace on
	// the new copy. The commit also advances the engine's memoization
	// generation: cached Live verdicts were proven against the old
	// distances and back information, so they expire here (tentpole
	// layer 2's invalidation point).
	s.back = res.Back
	s.engine.BumpGeneration()
	s.table.ResetBarriers()
	for _, obj := range s.pendingBarrierInrefs {
		if in, ok := s.table.Inref(obj); ok && !in.Garbage {
			in.Barrier = true
			for _, target := range s.back.Outset(obj) {
				if o, ok := s.table.Outref(target); ok {
					o.Barrier = true
				}
			}
		}
	}
	for _, target := range s.pendingBarrierOutrefs {
		if o, ok := s.table.Outref(target); ok {
			o.Barrier = true
		}
	}
	s.pendingBarrierInrefs = nil
	s.pendingBarrierOutrefs = nil

	entries := int64(s.back.Entries())
	s.cfg.Counters.Add(metrics.BackInfoEntries, entries)
	s.cfg.Counters.Max(metrics.BackInfoPeak, entries)

	// 5. Build one update message per target site: source-list removals
	// for trimmed outrefs, distance changes for retained ones (Sections
	// 2–3), and the complete holds list for idempotent reconciliation.
	// Peers we owe farewell updates to (no outrefs left) get a few empty
	// updates so a lost removal heals.
	updates := make(map[ids.SiteID]*msg.Update)
	ensure := func(site ids.SiteID) *msg.Update {
		u, ok := updates[site]
		if !ok {
			u = &msg.Update{}
			updates[site] = u
		}
		return u
	}
	for siteID, objs := range removals {
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		ensure(siteID).Removals = objs
	}
	for _, o := range s.table.Outrefs() {
		u := ensure(o.Target.Site)
		u.Holds = append(u.Holds, o.Target.Obj)
		if _, traced := res.OutrefDist[o.Target]; traced {
			u.Distances = append(u.Distances, msg.DistanceUpdate{
				Obj:      o.Target.Obj,
				Distance: o.Distance,
			})
		}
	}
	for peer := range s.farewell {
		ensure(peer)
	}
	sites := make([]ids.SiteID, 0, len(updates))
	for siteID := range updates {
		sites = append(sites, siteID)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, siteID := range sites {
		if siteID == s.cfg.ID {
			continue
		}
		u := updates[siteID]
		s.send(siteID, *u)
		rep.UpdatesSent++
		switch {
		case len(u.Holds) > 0:
			s.farewell[siteID] = 3
		default:
			n, owed := s.farewell[siteID]
			switch {
			case owed && n <= 1:
				delete(s.farewell, siteID)
			case owed:
				s.farewell[siteID] = n - 1
			case len(u.Removals) > 0:
				s.farewell[siteID] = 2
			}
		}
	}

	// 5b. Retransmit unacknowledged inserts for outrefs that still exist,
	// in sorted order so retransmission traffic replays deterministically.
	insTargets := make([]ids.Ref, 0, len(s.pendingInserts))
	for target := range s.pendingInserts {
		insTargets = append(insTargets, target)
	}
	sort.Slice(insTargets, func(i, j int) bool { return insTargets[i].Less(insTargets[j]) })
	for _, target := range insTargets {
		if _, ok := s.table.Outref(target); !ok {
			delete(s.pendingInserts, target)
			continue
		}
		s.send(target.Site, s.pendingInserts[target])
	}

	if rep.Collected > 0 {
		s.emit(event.Event{Kind: event.ObjectsCollected, N: rep.Collected})
	}
	if rep.OutrefsTrimmed > 0 {
		s.emit(event.Event{Kind: event.OutrefsTrimmed, N: rep.OutrefsTrimmed})
	}

	// 6. Trigger back traces from outrefs whose distance has crossed
	// their back threshold (Section 4.3), then admit any parked suspects
	// whose slots freed up during the commit.
	if s.cfg.AutoBackTrace {
		rep.BackTracesStarted = s.triggerBackTracesLocked()
	}
	s.drainAdmissionsLocked()

	// Close the local-trace span (begin through commit).
	if !t0.IsZero() {
		now := s.clk.Now()
		s.histLocalDur.Observe(now.Sub(t0).Seconds())
		s.emitSpan(obs.Span{
			Kind:      obs.SpanLocalTrace,
			Start:     t0,
			End:       now,
			Collected: rep.Collected,
		})
	}
	s.flushOutbox()
	s.mu.Unlock()
	return rep
}

// handleUpdate processes a peer's post-trace update message: drop the
// sender from the source lists of removed references, reconcile against
// the sender's complete holds list (healing any previously lost update),
// and install new distances. Cleanliness transitions fire the clean rule.
func (s *Site) handleUpdate(from ids.SiteID, m msg.Update) {
	for _, obj := range m.Removals {
		s.table.RemoveSource(obj, from)
	}
	// Reconciliation: any inref still listing the sender for an object
	// the sender no longer holds an outref to must lose that source.
	holds := make(map[ids.ObjID]struct{}, len(m.Holds))
	for _, obj := range m.Holds {
		holds[obj] = struct{}{}
	}
	var stale []ids.ObjID
	s.table.EachInref(func(in *refs.Inref) {
		if _, listed := in.Sources[from]; !listed {
			return
		}
		if _, held := holds[in.Obj]; !held {
			stale = append(stale, in.Obj)
		}
	})
	for _, obj := range stale {
		s.table.RemoveSource(obj, from)
	}
	for _, du := range m.Distances {
		in, ok := s.table.Inref(du.Obj)
		if !ok {
			continue
		}
		wasClean := in.IsClean(s.threshold)
		s.table.SetSourceDistance(du.Obj, from, du.Distance)
		if !wasClean && in.IsClean(s.threshold) {
			s.engine.NotifyCleanedInref(du.Obj)
		}
	}
}

// TriggerBackTraces scans the outref table and starts a back trace from
// every suspected outref whose distance exceeds its back threshold
// (Section 4.3). It returns the number of traces started.
func (s *Site) TriggerBackTraces() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.flushOutbox()
	return s.triggerBackTracesLocked()
}

// schedulerOn reports whether the trace-traffic scheduler (admission cap,
// batching, join detection, round-robin scan) is configured; off, the
// trigger keeps the legacy one-trace-per-suspect single-pass behaviour.
func (s *Site) schedulerOn() bool {
	return s.cfg.MaxInflightTraces > 0 || s.cfg.TraceBatch > 1
}

func (s *Site) triggerBackTracesLocked() int {
	if !s.schedulerOn() {
		started := 0
		for _, o := range s.table.Outrefs() {
			if s.engine.ShouldStart(o.Target) {
				if t, ok := s.startTraceAdmitted(o.Target); ok {
					s.emit(event.Event{Kind: event.TraceStarted, Trace: t, Ref: o.Target})
					started++
				}
			}
		}
		return started
	}
	return s.scheduleBackTracesLocked()
}

// scheduleBackTracesLocked is the trace-traffic scheduler's trigger scan:
// it walks the outref table round-robin from where the previous scan
// stopped, joins suspects already covered by an in-flight trace's visit
// marks, groups the rest into multi-suspect batches by inset overlap, and
// starts batches while the admission cap allows — parking the overflow in
// the distance-priority queue instead of flooding the network.
func (s *Site) scheduleBackTracesLocked() int {
	outs := s.table.Outrefs()
	// Resume round-robin: rotate the sorted scan so it starts just after
	// the suspect the previous scan stopped at.
	if s.scanCursorSet && len(outs) > 0 {
		i := sort.Search(len(outs), func(i int) bool { return s.scanCursor.Less(outs[i].Target) })
		rot := make([]*refs.Outref, 0, len(outs))
		rot = append(rot, outs[i:]...)
		rot = append(rot, outs[:i]...)
		outs = rot
	}
	var cands []ids.Ref
	for _, o := range outs {
		if !s.engine.Eligible(o.Target) || s.engine.MemoizedLive(o.Target) {
			continue
		}
		if _, queued := s.pendingSet[o.Target]; queued {
			continue
		}
		if s.engine.TraceVisiting(o.Target) {
			// An in-flight trace already holds a visit mark on this
			// suspect: its report phase will resolve it (flag on Garbage,
			// raised back threshold on Live), so the suspect joins that
			// trace instead of launching a duplicate.
			s.cfg.Counters.Inc(metrics.BackTraceJoined)
			continue
		}
		cands = append(cands, o.Target)
	}
	started := 0
	groups := s.groupSuspectsLocked(cands)
	// Largest group first: a multi-suspect batch resolves its whole cone in
	// one trace, so under a tight admission cap it buys the most coverage
	// per slot. SliceStable keeps the round-robin order within a size class.
	sort.SliceStable(groups, func(i, j int) bool { return len(groups[i]) > len(groups[j]) })
	for _, group := range groups {
		if s.cfg.MaxInflightTraces > 0 && s.inflight >= s.cfg.MaxInflightTraces {
			for _, target := range group {
				s.enqueuePendingLocked(target)
			}
			continue
		}
		if t, ok := s.startBatchAdmitted(group); ok {
			s.emit(event.Event{Kind: event.TraceStarted, Trace: t, Ref: group[0]})
			s.scanCursor = group[len(group)-1]
			s.scanCursorSet = true
			started++
		}
	}
	return started
}

// groupSuspectsLocked groups candidate suspects whose insets overlap (per
// the installed back information) into batches of at most Config.TraceBatch.
// Two suspects land in one group when they share an inref in their insets —
// their back-trace cones meet at that inref, so one trace's visit marks
// cover both (Section 4.5).
func (s *Site) groupSuspectsLocked(cands []ids.Ref) [][]ids.Ref {
	max := s.cfg.TraceBatch
	if max <= 1 {
		out := make([][]ids.Ref, len(cands))
		for i, c := range cands {
			out[i] = []ids.Ref{c}
		}
		return out
	}
	var groups [][]ids.Ref
	owner := make(map[ids.ObjID]int) // inset inref → group index
	for _, c := range cands {
		inset := s.back.Inset(c)
		g := -1
		for _, obj := range inset {
			if gi, ok := owner[obj]; ok && len(groups[gi]) < max {
				g = gi
				break
			}
		}
		if g < 0 {
			groups = append(groups, nil)
			g = len(groups) - 1
		}
		groups[g] = append(groups[g], c)
		for _, obj := range inset {
			if _, ok := owner[obj]; !ok {
				owner[obj] = g
			}
		}
	}
	return groups
}

// enqueuePendingLocked parks one suspect in the admission queue.
func (s *Site) enqueuePendingLocked(target ids.Ref) {
	if _, ok := s.pendingSet[target]; ok {
		return
	}
	dist := 0
	if o, ok := s.table.Outref(target); ok {
		dist = o.Distance
	}
	s.pendingSeq++
	s.pendingSet[target] = struct{}{}
	s.pendingTraces = append(s.pendingTraces, pendingTrace{target: target, dist: dist, seq: s.pendingSeq})
	s.cfg.Counters.Inc(metrics.BackTraceDeferred)
}

// drainAdmissionsLocked starts parked suspects while admission slots are
// free. It runs at the safe points of every entry path that can complete a
// trace (message delivery, commit, timeout scan) — never inside an engine
// callback.
func (s *Site) drainAdmissionsLocked() {
	if !s.admitPending || !s.schedulerOn() {
		return
	}
	s.admitPending = false
	if len(s.pendingTraces) == 0 {
		return
	}
	// Farthest distance first (the strongest suspects, Section 3), oldest
	// first on ties.
	sort.Slice(s.pendingTraces, func(i, j int) bool {
		if s.pendingTraces[i].dist != s.pendingTraces[j].dist {
			return s.pendingTraces[i].dist > s.pendingTraces[j].dist
		}
		return s.pendingTraces[i].seq < s.pendingTraces[j].seq
	})
	for len(s.pendingTraces) > 0 {
		if s.cfg.MaxInflightTraces > 0 && s.inflight >= s.cfg.MaxInflightTraces {
			return
		}
		p := s.pendingTraces[0]
		s.pendingTraces = s.pendingTraces[1:]
		delete(s.pendingSet, p.target)
		// Revalidate: the suspect may have been cleaned, trimmed, proven
		// Live, or covered by another trace while parked.
		if !s.engine.ShouldStart(p.target) {
			continue
		}
		if s.engine.TraceVisiting(p.target) {
			s.cfg.Counters.Inc(metrics.BackTraceJoined)
			continue
		}
		if t, ok := s.startTraceAdmitted(p.target); ok {
			s.emit(event.Event{Kind: event.TraceStarted, Trace: t, Ref: p.target})
		}
	}
}

// startTraceAdmitted starts one back trace through the admission
// accounting: the in-flight count rises before the engine runs (the trace
// may complete synchronously, decrementing it again via the completion
// callback) and reverts if no trace started.
func (s *Site) startTraceAdmitted(target ids.Ref) (ids.TraceID, bool) {
	s.inflight++
	s.cfg.Counters.Max(metrics.BackTraceInflight, int64(s.inflight))
	t, ok := s.engine.StartTrace(target)
	if !ok {
		s.inflight--
	}
	return t, ok
}

// startBatchAdmitted is startTraceAdmitted for a multi-suspect group; the
// whole batch occupies one admission slot (it is one trace).
func (s *Site) startBatchAdmitted(targets []ids.Ref) (ids.TraceID, bool) {
	s.inflight++
	s.cfg.Counters.Max(metrics.BackTraceInflight, int64(s.inflight))
	t, ok := s.engine.StartBatchTrace(targets)
	if !ok {
		s.inflight--
	}
	return t, ok
}

// StartBackTrace starts a back trace from a specific outref, bypassing the
// back-threshold policy (used by tests and experiments). It reports
// whether a trace started.
func (s *Site) StartBackTrace(target ids.Ref) (ids.TraceID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.flushOutbox()
	t, ok := s.startTraceAdmitted(target)
	if ok {
		s.emit(event.Event{Kind: event.TraceStarted, Trace: t, Ref: target})
	}
	return t, ok
}

// StartBatchBackTrace starts one multi-suspect batched back trace from the
// given outrefs, bypassing the back-threshold policy (used by tests and
// experiments). It reports whether a trace started.
func (s *Site) StartBatchBackTrace(targets []ids.Ref) (ids.TraceID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.flushOutbox()
	t, ok := s.startBatchAdmitted(targets)
	if ok {
		s.emit(event.Event{Kind: event.TraceStarted, Trace: t, Ref: targets[0]})
	}
	return t, ok
}

// InflightTraces returns the number of back traces this site currently has
// in flight as initiator (for tests and introspection).
func (s *Site) InflightTraces() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	return s.inflight
}

// PendingAdmissions returns the number of suspects parked in the admission
// queue (for tests and introspection).
func (s *Site) PendingAdmissions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	return len(s.pendingTraces)
}

// GarbageFlaggedInrefs returns the local objects whose inrefs a completed
// back trace has flagged as garbage.
func (s *Site) GarbageFlaggedInrefs() []ids.ObjID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	var out []ids.ObjID
	for _, in := range s.table.Inrefs() {
		if in.Garbage {
			out = append(out, in.Obj)
		}
	}
	return out
}

// InrefDistance returns the current distance of the inref for obj, or
// refs.DistInfinity if there is none.
func (s *Site) InrefDistance(obj ids.ObjID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	if in, ok := s.table.Inref(obj); ok {
		return in.Distance()
	}
	return refs.DistInfinity
}

// OutrefDistance returns the current distance of the outref for target, or
// refs.DistInfinity if there is none.
func (s *Site) OutrefDistance(target ids.Ref) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.assertOutboxFlushed()
	if o, ok := s.table.Outref(target); ok {
		return o.Distance
	}
	return refs.DistInfinity
}

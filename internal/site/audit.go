package site

import (
	"backtrace/internal/ids"
)

// Audit is a consistent snapshot of one site's collector-relevant state,
// used by the cluster's omniscient safety/completeness auditor and the
// cross-site invariant checker. It is a deep copy; mutating it does not
// affect the site.
type Audit struct {
	// Objects maps every object to a copy of its reference fields.
	Objects map[ids.ObjID][]ids.Ref
	// PersistentRoots and AppRoots are the site's roots.
	PersistentRoots []ids.ObjID
	AppRoots        []ids.Ref
	// Outrefs is the set of outref targets.
	Outrefs map[ids.Ref]struct{}
	// InrefSources maps each inref to its source sites.
	InrefSources map[ids.ObjID][]ids.SiteID
	// GarbageFlagged lists local objects whose inref carries the garbage
	// flag (a Garbage back-trace verdict awaiting the sweep). The safety
	// oracle cross-checks these against global reachability: a flagged
	// object that is globally live is a safety violation.
	GarbageFlagged []ids.ObjID
}

// AuditSnapshot captures the site's state under the write lock: heap-only
// mutators run under the read lock plus per-shard locks, so only the write
// lock yields a consistent cut across every shard.
func (s *Site) AuditSnapshot() Audit {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.assertOutboxFlushed()
	a := Audit{
		Objects:         make(map[ids.ObjID][]ids.Ref, s.heap.Len()),
		PersistentRoots: s.heap.PersistentRoots(),
		AppRoots:        s.heap.AppRoots(),
		Outrefs:         make(map[ids.Ref]struct{}, s.table.NumOutrefs()),
		InrefSources:    make(map[ids.ObjID][]ids.SiteID, s.table.NumInrefs()),
	}
	for _, obj := range s.heap.Objects() {
		o, _ := s.heap.Get(obj)
		a.Objects[obj] = o.Fields()
	}
	for _, o := range s.table.Outrefs() {
		a.Outrefs[o.Target] = struct{}{}
	}
	for _, in := range s.table.Inrefs() {
		a.InrefSources[in.Obj] = in.SourceSites()
		if in.Garbage {
			a.GarbageFlagged = append(a.GarbageFlagged, in.Obj)
		}
	}
	return a
}

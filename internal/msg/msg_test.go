package msg

import (
	"bytes"
	"encoding/gob"
	"testing"

	"backtrace/internal/ids"
)

func TestVerdictString(t *testing.T) {
	if VerdictGarbage.String() != "Garbage" || VerdictLive.String() != "Live" {
		t.Fatal("verdict names wrong")
	}
	if Verdict(9).String() == "" {
		t.Fatal("unknown verdict empty")
	}
}

func TestVerdictZeroValueIsGarbage(t *testing.T) {
	// Activation frames rely on the zero value accumulating as Garbage
	// until a Live reply overrides it.
	var v Verdict
	if v != VerdictGarbage {
		t.Fatal("zero Verdict is not Garbage")
	}
}

func TestStepKindString(t *testing.T) {
	if StepRemote.String() != "remote" || StepLocal.String() != "local" {
		t.Fatal("step kind names wrong")
	}
	if StepKind(9).String() == "" {
		t.Fatal("unknown step kind empty")
	}
}

func TestNameUnknownType(t *testing.T) {
	type weird struct{ Batch }
	if got := Name(weird{}); got == "" {
		t.Fatal("empty name for unknown type")
	}
}

func TestBatchGobRoundTrip(t *testing.T) {
	RegisterGob()
	env := Envelope{
		From: 1,
		To:   2,
		M: Batch{Items: []Message{
			Update{Holds: []ids.ObjID{1, 2}},
			BackCall{Trace: ids.TraceID{Initiator: 1, Seq: 9}, Kind: StepLocal, Outref: ids.MakeRef(2, 3)},
			Report{Outcome: VerdictLive},
		}},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		t.Fatal(err)
	}
	var got Envelope
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	b, ok := got.M.(Batch)
	if !ok || len(b.Items) != 3 {
		t.Fatalf("decoded %T with %v", got.M, got.M)
	}
	if u, ok := b.Items[0].(Update); !ok || len(u.Holds) != 2 {
		t.Fatalf("item 0 decoded wrong: %+v", b.Items[0])
	}
	if c, ok := b.Items[1].(BackCall); !ok || c.Trace.Seq != 9 || c.Outref != ids.MakeRef(2, 3) {
		t.Fatalf("item 1 decoded wrong: %+v", b.Items[1])
	}
	if r, ok := b.Items[2].(Report); !ok || r.Outcome != VerdictLive {
		t.Fatalf("item 2 decoded wrong: %+v", b.Items[2])
	}
}

func TestRegisterGobIdempotent(t *testing.T) {
	RegisterGob()
	RegisterGob() // must not panic
}

func TestNameCoversEveryMessageType(t *testing.T) {
	r := ids.MakeRef(2, 17)
	all := []Message{
		RefTransfer{}, Insert{}, InsertAck{}, ReleasePin{}, Update{},
		BackCall{}, BackReply{}, Report{}, Batch{},
		LinkData{Payload: ReleasePin{Target: r}}, LinkAck{}, LinkReset{},
	}
	seen := make(map[string]bool)
	for _, m := range all {
		name := Name(m)
		if name == "" || name[0] == '*' || seen[name] {
			t.Errorf("Name(%T) = %q (empty, pointerish, or duplicate)", m, name)
		}
		seen[name] = true
	}
}

func TestLinkFramesGobRoundTrip(t *testing.T) {
	RegisterGob()
	frames := []Envelope{
		{From: 1, To: 2, M: LinkData{Epoch: 3, Seq: 41, Payload: Insert{Target: ids.MakeRef(2, 5), Holder: 1, Pinner: 4}}},
		{From: 2, To: 1, M: LinkAck{Epoch: 3, Cum: 41}},
		{From: 2, To: 1, M: LinkReset{Epoch: 4}},
		{From: 1, To: 2, M: LinkData{Epoch: 1, Seq: 1, Payload: Batch{Items: []Message{Report{Outcome: VerdictLive}}}}},
	}
	for _, env := range frames {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(env); err != nil {
			t.Fatalf("encode %s: %v", Name(env.M), err)
		}
		var got Envelope
		if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
			t.Fatalf("decode %s: %v", Name(env.M), err)
		}
		if Name(got.M) != Name(env.M) {
			t.Fatalf("round trip changed type: %s -> %s", Name(env.M), Name(got.M))
		}
	}
	// Spot-check nested payloads survive.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(frames[0]); err != nil {
		t.Fatal(err)
	}
	var got Envelope
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	ld := got.M.(LinkData)
	if ld.Epoch != 3 || ld.Seq != 41 {
		t.Fatalf("LinkData header corrupted: %+v", ld)
	}
	ins, ok := ld.Payload.(Insert)
	if !ok || ins.Target != ids.MakeRef(2, 5) || ins.Holder != 1 || ins.Pinner != 4 {
		t.Fatalf("LinkData payload corrupted: %+v", ld.Payload)
	}
}

package msg

import (
	"testing"

	"backtrace/internal/ids"
)

func TestVerdictString(t *testing.T) {
	if VerdictGarbage.String() != "Garbage" || VerdictLive.String() != "Live" {
		t.Fatal("verdict names wrong")
	}
	if Verdict(9).String() == "" {
		t.Fatal("unknown verdict empty")
	}
}

func TestVerdictZeroValueIsGarbage(t *testing.T) {
	// Activation frames rely on the zero value accumulating as Garbage
	// until a Live reply overrides it.
	var v Verdict
	if v != VerdictGarbage {
		t.Fatal("zero Verdict is not Garbage")
	}
}

func TestStepKindString(t *testing.T) {
	if StepRemote.String() != "remote" || StepLocal.String() != "local" {
		t.Fatal("step kind names wrong")
	}
	if StepKind(9).String() == "" {
		t.Fatal("unknown step kind empty")
	}
}

func TestNameUnknownType(t *testing.T) {
	type weird struct{ Batch }
	if got := Name(weird{}); got == "" {
		t.Fatal("empty name for unknown type")
	}
}

func TestLeavesDescendsWrappers(t *testing.T) {
	m := LinkBatch{
		Epoch: 1, Base: 5,
		Items: []Message{
			Batch{Items: []Message{
				Update{Holds: []ids.ObjID{1, 2}},
				BackCall{Trace: ids.TraceID{Initiator: 1, Seq: 9}, Kind: StepLocal, Outref: ids.MakeRef(2, 3)},
			}},
			LinkData{Epoch: 1, Seq: 6, Payload: Report{Outcome: VerdictLive}},
		},
	}
	var names []string
	Leaves(m, func(leaf Message) { names = append(names, Name(leaf)) })
	want := []string{"Update", "BackCall", "Report"}
	if len(names) != len(want) {
		t.Fatalf("Leaves visited %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Leaves visited %v, want %v", names, want)
		}
	}
}

func TestNameCoversEveryMessageType(t *testing.T) {
	r := ids.MakeRef(2, 17)
	all := []Message{
		RefTransfer{}, Insert{}, InsertAck{}, ReleasePin{}, Update{},
		BackCall{}, BackReply{}, Report{}, Batch{},
		LinkData{Payload: ReleasePin{Target: r}}, LinkAck{}, LinkReset{},
	}
	seen := make(map[string]bool)
	for _, m := range all {
		name := Name(m)
		if name == "" || name[0] == '*' || seen[name] {
			t.Errorf("Name(%T) = %q (empty, pointerish, or duplicate)", m, name)
		}
		seen[name] = true
	}
}

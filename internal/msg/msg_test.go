package msg

import (
	"bytes"
	"encoding/gob"
	"testing"

	"backtrace/internal/ids"
)

func TestVerdictString(t *testing.T) {
	if VerdictGarbage.String() != "Garbage" || VerdictLive.String() != "Live" {
		t.Fatal("verdict names wrong")
	}
	if Verdict(9).String() == "" {
		t.Fatal("unknown verdict empty")
	}
}

func TestVerdictZeroValueIsGarbage(t *testing.T) {
	// Activation frames rely on the zero value accumulating as Garbage
	// until a Live reply overrides it.
	var v Verdict
	if v != VerdictGarbage {
		t.Fatal("zero Verdict is not Garbage")
	}
}

func TestStepKindString(t *testing.T) {
	if StepRemote.String() != "remote" || StepLocal.String() != "local" {
		t.Fatal("step kind names wrong")
	}
	if StepKind(9).String() == "" {
		t.Fatal("unknown step kind empty")
	}
}

func TestNameUnknownType(t *testing.T) {
	type weird struct{ Batch }
	if got := Name(weird{}); got == "" {
		t.Fatal("empty name for unknown type")
	}
}

func TestBatchGobRoundTrip(t *testing.T) {
	RegisterGob()
	env := Envelope{
		From: 1,
		To:   2,
		M: Batch{Items: []Message{
			Update{Holds: []ids.ObjID{1, 2}},
			BackCall{Trace: ids.TraceID{Initiator: 1, Seq: 9}, Kind: StepLocal, Outref: ids.MakeRef(2, 3)},
			Report{Outcome: VerdictLive},
		}},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		t.Fatal(err)
	}
	var got Envelope
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	b, ok := got.M.(Batch)
	if !ok || len(b.Items) != 3 {
		t.Fatalf("decoded %T with %v", got.M, got.M)
	}
	if u, ok := b.Items[0].(Update); !ok || len(u.Holds) != 2 {
		t.Fatalf("item 0 decoded wrong: %+v", b.Items[0])
	}
	if c, ok := b.Items[1].(BackCall); !ok || c.Trace.Seq != 9 || c.Outref != ids.MakeRef(2, 3) {
		t.Fatalf("item 1 decoded wrong: %+v", b.Items[1])
	}
	if r, ok := b.Items[2].(Report); !ok || r.Outcome != VerdictLive {
		t.Fatalf("item 2 decoded wrong: %+v", b.Items[2])
	}
}

func TestRegisterGobIdempotent(t *testing.T) {
	RegisterGob()
	RegisterGob() // must not panic
}

// Package msg defines the inter-site message vocabulary of the back-tracing
// collector. Every message the paper's protocol sends between sites is a
// concrete type here:
//
//   - RefTransfer — a mutator passes (or traverses) a reference to another
//     site (Section 2, Section 6.1); triggers the transfer barrier at the
//     receiver.
//   - Insert / InsertAck / ReleasePin — the insert protocol that registers a
//     new source site in an inref's source list, with the insert barrier's
//     pinning of the sender's outref until the owner has the insert
//     (Section 2, Section 6.1.2).
//   - Update — after a local trace, a site reports dropped outrefs and new
//     outref distances to the target sites (Section 2, Section 3).
//   - BackCall / BackReply — the remote and local back steps of a back trace
//     with their activation-frame return information (Section 4.4).
//   - Report — the report phase delivering a completed trace's outcome to
//     every participant (Section 4.5).
//
// Messages carry only identifiers and plain data, so every type has a
// compact hand-rolled binary encoding (package wire).
package msg

import (
	"fmt"

	"backtrace/internal/ids"
)

// Verdict is the result of a back-trace call: Live if the trace reached a
// clean ioref (hence possibly a persistent root), Garbage otherwise.
type Verdict int

const (
	// VerdictGarbage means the call found no path to a clean ioref.
	// It is the zero value so that an activation frame's accumulator
	// starts at Garbage and any Live reply overrides it.
	VerdictGarbage Verdict = iota
	// VerdictLive means the call reached a clean ioref, so the suspect is
	// (or must conservatively be treated as) reachable from a root.
	VerdictLive
)

// String returns "Garbage" or "Live".
func (v Verdict) String() string {
	switch v {
	case VerdictGarbage:
		return "Garbage"
	case VerdictLive:
		return "Live"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// StepKind distinguishes the two kinds of back steps (Section 4.1).
type StepKind int

const (
	// StepRemote asks the owner site to run BackStepRemote on one of its
	// inrefs: the trace then fans out to the inref's source sites.
	StepRemote StepKind = iota + 1
	// StepLocal asks a source site to run BackStepLocal on one of its
	// outrefs: the trace then fans out to the inrefs in the outref's inset.
	StepLocal
)

// String returns "remote" or "local".
func (k StepKind) String() string {
	switch k {
	case StepRemote:
		return "remote"
	case StepLocal:
		return "local"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Message is implemented by every inter-site message type.
//
// The marker method keeps the set of messages closed within this module; the
// transport treats messages opaquely and routing information lives in the
// Envelope.
type Message interface {
	isMessage()
}

// Envelope wraps a message with its routing information. Transports deliver
// envelopes; sites receive (from, message) pairs.
type Envelope struct {
	From ids.SiteID
	To   ids.SiteID
	M    Message
}

// RefTransfer is sent when a mutator passes a reference to another site —
// as the target, argument, or result of a remote call in an RPC system
// (Section 6.1.1). The receiving site applies the transfer barrier and, if
// it has no outref for the payload, starts the insert protocol.
//
// Pinner identifies the sending site, which retains a clean, pinned outref
// for Payload until the owner acknowledges the insert (the insert barrier);
// the owner then sends Pinner a ReleasePin.
type RefTransfer struct {
	Payload ids.Ref
	Pinner  ids.SiteID
}

// Insert asks the owner of Target to add Holder to the source list of the
// inref for Target (Section 2). Pinner is propagated from the RefTransfer so
// the owner can release the sender's pin once the insert is recorded.
type Insert struct {
	Target ids.Ref
	Holder ids.SiteID
	Pinner ids.SiteID
}

// InsertAck tells Holder that the owner has recorded it in the source list
// of the inref for Target; the holder's provisional outref is now protected
// by the source list.
type InsertAck struct {
	Target ids.Ref
}

// ReleasePin tells the original sender of a reference that the owner has
// received the new holder's insert message, so the sender may unpin its
// outref (Section 6.1.2, the insert barrier).
type ReleasePin struct {
	Target ids.Ref
}

// DistanceUpdate reports the new estimated distance of one outref held by
// the sending site for an object owned by the receiving site (Section 3).
type DistanceUpdate struct {
	Obj      ids.ObjID
	Distance int
}

// Update is sent to each target site after a local trace: Removals lists
// objects whose outref the sender dropped (the receiver removes the sender
// from those inrefs' source lists), and Distances carries new distance
// estimates for outrefs the sender retained (Sections 2 and 3).
//
// Holds is the complete list of objects at the receiver for which the
// sender still has an outref. It makes updates idempotent: the receiver
// reconciles its source lists against it, so a lost earlier update heals
// at the next one (the fault-tolerant reference listing of [ML94] that the
// paper builds on).
type Update struct {
	Removals  []ids.ObjID
	Distances []DistanceUpdate
	Holds     []ids.ObjID
}

// BackCall carries one back step of a back trace (Section 4.4).
//
// For Kind == StepRemote the receiver is the owner of inref Inref and runs
// BackStepRemote. For Kind == StepLocal the receiver is a source site that
// holds an outref for Outref and runs BackStepLocal.
//
// Caller identifies the activation frame to reply to; it is the zero frame
// for the outermost call, in which case the reply completes the whole trace
// at the initiator. Initiator lets participants know where the report phase
// will originate.
//
// Suspect identifies which suspected outref of a multi-suspect batched
// trace this call belongs to (an index into the initiator's suspect set).
// Visit marks record the owning suspect, so the report phase can flag
// exactly the iorefs visited on behalf of suspects confirmed garbage.
// Single-suspect traces always carry suspect 0.
type BackCall struct {
	Trace     ids.TraceID
	Caller    ids.FrameID
	Initiator ids.SiteID
	Kind      StepKind
	Inref     ids.ObjID
	Outref    ids.Ref
	Suspect   uint32
}

// BackReply answers a BackCall. Participants accumulates the set of sites
// reached in the subtree of the call, so the initiator learns the full
// participant set for the report phase (Section 4.5: "each participant
// appends its id to the response of a call").
//
// Deps accumulates, for a Garbage result in a batched trace, the suspects
// whose visit marks this subtree's verdict relied on: a revisit of an
// ioref marked by another suspect answers Garbage (Section 4.4), which is
// only trustworthy if that suspect's own subtree also concludes Garbage.
// The initiator demotes any suspect transitively depending on a Live one.
// Empty for Live results and for single-suspect traces.
type BackReply struct {
	Trace        ids.TraceID
	Caller       ids.FrameID
	Result       Verdict
	Participants []ids.SiteID
	Deps         []uint32
}

// Report delivers the outcome of a completed back trace to a participant
// (Section 4.5). On Garbage the participant flags the inrefs visited by the
// trace; on Live it clears the trace's visited marks.
//
// For a multi-suspect batched trace, GarbageSuspects lists the suspects
// confirmed garbage: the participant flags only the inrefs whose visit
// marks those suspects own, and clears everything else. A nil list with a
// Garbage outcome is the single-suspect form and flags every visited inref.
type Report struct {
	Trace           ids.TraceID
	Outcome         Verdict
	GarbageSuspects []uint32
}

// Batch carries several messages between one pair of sites in a single
// envelope — the piggybacking the paper suggests for back-trace traffic
// ("these messages are small and can be piggybacked on other messages",
// Section 4.6). Receivers process the items in order, preserving the
// per-link FIFO the protocol assumes.
type Batch struct {
	Items []Message
}

// LinkData is a session-layer frame of the reliable link layer
// (transport.Reliable): one protocol message stamped with the sender's
// session epoch and a per-link sequence number. Sequence numbers start at 1
// for each (link, epoch) pair and increase by one per frame, which lets the
// receiver deduplicate, reorder, and acknowledge cumulatively — restoring
// the in-order delivery relation R1 of the Section 6.4 safety proof over a
// lossy transport.
type LinkData struct {
	Epoch   uint64
	Seq     uint64
	Payload Message
}

// LinkAck cumulatively acknowledges a link session: every LinkData frame of
// epoch Epoch with sequence number <= Cum has been received (delivered or
// buffered). The sender drops acknowledged frames from its retransmission
// window.
//
// Inc carries the acker's current incarnation. A sender that observes a
// peer's incarnation increase resets the link session even if the peer's
// LinkReset announcement was lost, so a single dropped control frame can
// never wedge a link.
type LinkAck struct {
	Epoch uint64
	Cum   uint64
	Inc   uint64
}

// LinkBatch coalesces a run of consecutive LinkData frames for one link
// into a single physical frame, optionally piggybacking the sender's
// pending cumulative acknowledgment for the reverse direction. Items[i]
// carries the payload of sequence number Base+i of epoch Epoch; the
// receiver processes the items in ascending sequence order, so the frame is
// exactly equivalent to the individual LinkData frames it replaces and the
// in-order relation R1 is preserved.
//
// AckEpoch/AckCum/AckInc mirror a LinkAck for the reverse link when
// AckEpoch is nonzero (epochs start at 1, so zero means "no ack attached").
type LinkBatch struct {
	Epoch uint64
	Base  uint64
	Items []Message

	AckEpoch uint64
	AckCum   uint64
	AckInc   uint64
}

// LinkReset announces that the sending site restarted with a new
// incarnation Epoch. Receivers abandon their send session toward the
// restarted site (frames in flight were addressed to the dead incarnation
// and count as ordinary message loss, which the protocol tolerates by
// timeout) and open a fresh session with a strictly larger epoch, so stale
// traffic is never replayed into or accepted from the new incarnation.
type LinkReset struct {
	Epoch uint64
}

func (RefTransfer) isMessage() {}
func (Insert) isMessage()      {}
func (InsertAck) isMessage()   {}
func (ReleasePin) isMessage()  {}
func (Update) isMessage()      {}
func (BackCall) isMessage()    {}
func (BackReply) isMessage()   {}
func (Report) isMessage()      {}
func (Batch) isMessage()       {}
func (LinkData) isMessage()    {}
func (LinkAck) isMessage()     {}
func (LinkBatch) isMessage()   {}
func (LinkReset) isMessage()   {}

// Compile-time checks that every message type implements Message.
var (
	_ Message = RefTransfer{}
	_ Message = Insert{}
	_ Message = InsertAck{}
	_ Message = ReleasePin{}
	_ Message = Update{}
	_ Message = BackCall{}
	_ Message = BackReply{}
	_ Message = Report{}
	_ Message = Batch{}
	_ Message = LinkData{}
	_ Message = LinkAck{}
	_ Message = LinkBatch{}
	_ Message = LinkReset{}
)

// Leaves calls fn for every protocol message inside m, descending through
// the Batch, LinkData, and LinkBatch wrappers in delivery order. For a bare
// protocol message it calls fn(m) once. Auditors that need to see every
// in-flight protocol payload regardless of coalescing (the simulation
// safety oracle, for instance) use this instead of type-switching on the
// wrapper set themselves.
func Leaves(m Message, fn func(Message)) {
	switch mm := m.(type) {
	case Batch:
		for _, item := range mm.Items {
			Leaves(item, fn)
		}
	case LinkData:
		Leaves(mm.Payload, fn)
	case LinkBatch:
		for _, item := range mm.Items {
			Leaves(item, fn)
		}
	default:
		fn(m)
	}
}

// Name returns a short name for a message's type, used by metrics counters
// and debug logs.
func Name(m Message) string {
	switch m.(type) {
	case RefTransfer:
		return "RefTransfer"
	case Insert:
		return "Insert"
	case InsertAck:
		return "InsertAck"
	case ReleasePin:
		return "ReleasePin"
	case Update:
		return "Update"
	case BackCall:
		return "BackCall"
	case BackReply:
		return "BackReply"
	case Report:
		return "Report"
	case Batch:
		return "Batch"
	case LinkData:
		return "LinkData"
	case LinkAck:
		return "LinkAck"
	case LinkBatch:
		return "LinkBatch"
	case LinkReset:
		return "LinkReset"
	default:
		return fmt.Sprintf("%T", m)
	}
}

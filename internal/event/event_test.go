package event

import (
	"strings"
	"sync"
	"testing"

	"backtrace/internal/ids"
	"backtrace/internal/msg"
)

func TestKindStrings(t *testing.T) {
	kinds := []Kind{
		TraceStarted, TraceCompleted, InrefFlagged, ObjectsCollected,
		OutrefsTrimmed, TransferBarrier, OutrefCleaned, TimeoutAssumedLive,
		CheckpointWritten, SiteRestored,
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.Contains(s, "Kind(") {
			t.Errorf("kind %d has bad name %q", k, s)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestAppendAndSnapshotOrder(t *testing.T) {
	l := NewLog(8)
	for i := 0; i < 5; i++ {
		l.Append(Event{Site: 1, Kind: TraceStarted, N: i})
	}
	snap := l.Snapshot()
	if len(snap) != 5 || l.Len() != 5 {
		t.Fatalf("len = %d/%d, want 5", len(snap), l.Len())
	}
	for i, e := range snap {
		if e.N != i || e.Seq != uint64(i+1) {
			t.Fatalf("order broken at %d: %+v", i, e)
		}
	}
	if l.Dropped() != 0 {
		t.Fatal("dropped nonzero before wrap")
	}
}

func TestRingEviction(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 10; i++ {
		l.Append(Event{Kind: ObjectsCollected, N: i})
	}
	snap := l.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("len = %d, want 4", len(snap))
	}
	if snap[0].N != 6 || snap[3].N != 9 {
		t.Fatalf("wrong window: %+v", snap)
	}
	if l.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", l.Dropped())
	}
}

func TestOfKind(t *testing.T) {
	l := NewLog(16)
	l.Append(Event{Kind: TraceStarted})
	l.Append(Event{Kind: TraceCompleted, Verdict: msg.VerdictGarbage})
	l.Append(Event{Kind: TraceStarted})
	if got := len(l.OfKind(TraceStarted)); got != 2 {
		t.Fatalf("OfKind(TraceStarted) = %d, want 2", got)
	}
	if got := len(l.OfKind(InrefFlagged)); got != 0 {
		t.Fatalf("OfKind(InrefFlagged) = %d, want 0", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		Seq: 3, Site: 2, Kind: TraceCompleted,
		Trace: ids.TraceID{Initiator: 2, Seq: 7}, Verdict: msg.VerdictLive, N: 4,
	}
	s := e.String()
	for _, want := range []string{"#3", "S2", "trace-completed", "T(S2#7)", "Live", "participants=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	e2 := Event{Seq: 1, Site: 1, Kind: ObjectsCollected, N: 9}
	if !strings.Contains(e2.String(), "n=9") {
		t.Errorf("String() = %q", e2.String())
	}
}

func TestZeroCapacityDefaults(t *testing.T) {
	l := NewLog(0)
	l.Append(Event{Kind: TraceStarted})
	if l.Len() != 1 {
		t.Fatal("default capacity log unusable")
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := NewLog(128)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Append(Event{Kind: TraceStarted})
			}
		}()
	}
	wg.Wait()
	if l.Len() != 128 || l.Dropped() != 800-128 {
		t.Fatalf("len=%d dropped=%d", l.Len(), l.Dropped())
	}
}

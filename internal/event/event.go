// Package event provides a bounded, thread-safe, structured event log for
// collector observability: what traces started and how they ended, what
// barriers fired, what was reclaimed. Sites emit events when configured
// with a Log; tools like dgcsim print them.
package event

import (
	"fmt"
	"sync"

	"backtrace/internal/ids"
	"backtrace/internal/msg"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	// TraceStarted: a back trace was initiated from Ref (an outref).
	TraceStarted Kind = iota + 1
	// TraceCompleted: a back trace this site initiated finished with
	// Verdict; N is the number of participant sites.
	TraceCompleted
	// InrefFlagged: the report phase flagged inref Obj as garbage.
	InrefFlagged
	// ObjectsCollected: a local trace swept N objects.
	ObjectsCollected
	// OutrefsTrimmed: a local trace dropped N outrefs.
	OutrefsTrimmed
	// TransferBarrier: the transfer barrier cleaned inref Obj (and its
	// outset).
	TransferBarrier
	// OutrefCleaned: an outref (Ref) was barrier-cleaned.
	OutrefCleaned
	// TimeoutAssumedLive: a back-trace wait timed out and was resolved
	// as Live (Trace identifies it when known).
	TimeoutAssumedLive
	// CheckpointWritten: the site serialized its durable state.
	CheckpointWritten
	// SiteRestored: the site was rebuilt from a checkpoint.
	SiteRestored
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case TraceStarted:
		return "trace-started"
	case TraceCompleted:
		return "trace-completed"
	case InrefFlagged:
		return "inref-flagged"
	case ObjectsCollected:
		return "objects-collected"
	case OutrefsTrimmed:
		return "outrefs-trimmed"
	case TransferBarrier:
		return "transfer-barrier"
	case OutrefCleaned:
		return "outref-cleaned"
	case TimeoutAssumedLive:
		return "timeout-assumed-live"
	case CheckpointWritten:
		return "checkpoint-written"
	case SiteRestored:
		return "site-restored"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one log entry. Fields beyond Kind and Site are meaningful per
// kind (see the Kind constants).
type Event struct {
	Seq     uint64
	Site    ids.SiteID
	Kind    Kind
	Trace   ids.TraceID
	Obj     ids.ObjID
	Ref     ids.Ref
	N       int
	Verdict msg.Verdict
}

// String renders the event compactly.
func (e Event) String() string {
	s := fmt.Sprintf("#%d %v %s", e.Seq, e.Site, e.Kind)
	if !e.Trace.IsZero() {
		s += " " + e.Trace.String()
	}
	if e.Obj != ids.NoObj {
		s += " " + e.Obj.String()
	}
	if !e.Ref.IsZero() {
		s += " " + e.Ref.String()
	}
	switch e.Kind {
	case TraceCompleted:
		s += fmt.Sprintf(" %s participants=%d", e.Verdict, e.N)
	case ObjectsCollected, OutrefsTrimmed:
		s += fmt.Sprintf(" n=%d", e.N)
	}
	return s
}

// Log is a bounded ring of events. The zero value is unusable; create with
// NewLog.
type Log struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	seq     uint64
	dropped uint64
}

// NewLog creates a log keeping the most recent capacity events.
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = 256
	}
	return &Log{buf: make([]Event, capacity)}
}

// Append records an event, assigning its sequence number.
func (l *Log) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	if l.full {
		l.dropped++
	}
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return len(l.buf)
	}
	return l.next
}

// Dropped returns how many events were evicted from the ring.
func (l *Log) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Snapshot returns the retained events, oldest first.
func (l *Log) Snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	if l.full {
		out = append(out, l.buf[l.next:]...)
	}
	out = append(out, l.buf[:l.next]...)
	return out
}

// OfKind returns the retained events of one kind, oldest first.
func (l *Log) OfKind(k Kind) []Event {
	var out []Event
	for _, e := range l.Snapshot() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

package obs

import (
	"fmt"
	"io"
	"strings"
)

// PromName converts a dotted instrument name to a valid Prometheus metric
// name: every character outside [a-zA-Z0-9_:] becomes an underscore, and a
// leading digit is prefixed.
func PromName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), instruments in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.order {
		pn := PromName(name)
		if c, ok := r.counts[name]; ok {
			writeHeader(w, pn, c.help, "counter")
			fmt.Fprintf(w, "%s %d\n", pn, c.Value())
			continue
		}
		if g, ok := r.gauges[name]; ok {
			writeHeader(w, pn, g.help, "gauge")
			fmt.Fprintf(w, "%s %d\n", pn, g.Value())
			continue
		}
		if h, ok := r.hists[name]; ok {
			writeHeader(w, pn, h.help, "histogram")
			snap := h.snapshot()
			for i, bound := range snap.Bounds {
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, formatBound(bound), snap.Buckets[i])
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, snap.Count)
			fmt.Fprintf(w, "%s_sum %g\n", pn, snap.Sum)
			fmt.Fprintf(w, "%s_count %d\n", pn, snap.Count)
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, kind string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, strings.ReplaceAll(help, "\n", " "))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
}

func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}

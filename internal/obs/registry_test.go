package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msg.total", "total messages")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if same := r.Counter("msg.total", ""); same != c {
		t.Fatal("redeclaration returned a different counter")
	}
	g := r.Gauge("backinfo.peak", "peak pairs")
	g.Max(3)
	g.Max(1)
	g.Max(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge max = %d, want 7", got)
	}
	g.Set(2)
	g.Add(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	if v, ok := r.Value("msg.total"); !ok || v != 5 {
		t.Fatalf("Value(msg.total) = %d, %v", v, ok)
	}
	if _, ok := r.Value("nope"); ok {
		t.Fatal("Value found an undeclared name")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("redeclaring a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005) // bucket 0
	h.Observe(0.005)  // bucket 1
	h.Observe(0.05)   // bucket 2
	h.Observe(5)      // above all bounds: +Inf only
	h.ObserveDuration(2 * time.Millisecond)
	snap := r.Snapshot().Histograms["lat"]
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	// Cumulative: ≤1ms: 1, ≤10ms: 3, ≤100ms: 4.
	want := []int64{1, 3, 4}
	for i, w := range want {
		if snap.Buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (all %v)", i, snap.Buckets[i], w, snap.Buckets)
		}
	}
	if snap.Sum < 5.057 || snap.Sum > 5.058 {
		t.Fatalf("sum = %g", snap.Sum)
	}
}

func TestSnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("a", "").Add(2)
	r.Gauge("b", "").Set(9)
	r.Histogram("h", "", nil).Observe(0.5)
	s := r.Snapshot()
	if s.Get("a") != 2 || s.Get("b") != 9 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Histograms["h"].Count != 1 {
		t.Fatalf("histogram count = %d", s.Histograms["h"].Count)
	}
	r.Reset()
	s = r.Snapshot()
	if s.Get("a") != 0 || s.Get("b") != 0 || s.Histograms["h"].Count != 0 || s.Histograms["h"].Sum != 0 {
		t.Fatalf("after reset: %+v", s)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("msg.total", "total messages sent").Add(3)
	r.Gauge("mailbox.depth", "current inbox depth").Set(2)
	r.Histogram("backtrace.rtt_seconds", "back-trace round trip", []float64{0.01, 0.1}).Observe(0.05)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP msg_total total messages sent",
		"# TYPE msg_total counter",
		"msg_total 3",
		"# TYPE mailbox_depth gauge",
		"mailbox_depth 2",
		"# TYPE backtrace_rtt_seconds histogram",
		`backtrace_rtt_seconds_bucket{le="0.01"} 0`,
		`backtrace_rtt_seconds_bucket{le="0.1"} 1`,
		`backtrace_rtt_seconds_bucket{le="+Inf"} 1`,
		"backtrace_rtt_seconds_sum 0.05",
		"backtrace_rtt_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"msg.total":              "msg_total",
		"backtrace.rtt_seconds":  "backtrace_rtt_seconds",
		"9lives":                 "_9lives",
		"weird-name/with:colons": "weird_name_with:colons",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n", "").Inc()
				r.Gauge("m", "").Max(int64(j))
				r.Histogram("h", "", nil).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Get("n") != 8000 {
		t.Fatalf("n = %d", s.Get("n"))
	}
	if s.Get("m") != 999 {
		t.Fatalf("m = %d", s.Get("m"))
	}
	if s.Histograms["h"].Count != 8000 {
		t.Fatalf("h count = %d", s.Histograms["h"].Count)
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"backtrace/internal/event"
	"backtrace/internal/ids"
)

// Tree is the assembled cross-site view of one back trace: the initiator's
// root span plus one participant span per site the trace touched (merged
// when a trace revisits a site), plus report-phase spans.
type Tree struct {
	Trace ids.TraceID `json:"trace"`
	// Root is the initiator's SpanBackTrace span; nil until the trace
	// completes (or forever, for a trace that never finished — an orphan).
	Root *Span `json:"root,omitempty"`
	// Participants are the per-site engagement spans, sorted by site.
	Participants []*Span `json:"participants,omitempty"`
	// Reports are the report-phase spans, sorted by site.
	Reports []*Span `json:"reports,omitempty"`
}

// Complete reports whether the tree has a finished root span and a
// finished participant span for every site the root lists.
func (t *Tree) Complete() bool {
	if t.Root == nil || t.Root.End.IsZero() {
		return false
	}
	bySite := make(map[ids.SiteID]*Span, len(t.Participants))
	for _, p := range t.Participants {
		bySite[p.Site] = p
	}
	for _, site := range t.Root.Participants {
		p, ok := bySite[site]
		if !ok || p.End.IsZero() {
			return false
		}
	}
	return true
}

// CollectorOptions parameterizes a Collector.
type CollectorOptions struct {
	// MaxTraces bounds the number of retained trace trees; the oldest tree
	// is evicted when the bound is hit. Defaults to 4096.
	MaxTraces int
	// MaxLocalSpans bounds the retained local-trace spans (a ring of the
	// most recent). Defaults to 1024.
	MaxLocalSpans int
}

// Collector assembles spans from every site into per-trace trees. It
// implements Observer and is safe for concurrent use; it never calls back
// into a site, so it can be wired directly into SiteConfig/ClusterOptions.
type Collector struct {
	opts CollectorOptions

	mu      sync.Mutex
	trees   map[ids.TraceID]*Tree
	order   []ids.TraceID // insertion order, for eviction
	local   []Span        // ring of local-trace spans
	nextLoc int
	locFull bool
	evicted int64
	events  int64
}

// NewCollector creates a span collector.
func NewCollector(opts CollectorOptions) *Collector {
	if opts.MaxTraces <= 0 {
		opts.MaxTraces = 4096
	}
	if opts.MaxLocalSpans <= 0 {
		opts.MaxLocalSpans = 1024
	}
	return &Collector{
		opts:  opts,
		trees: make(map[ids.TraceID]*Tree),
		local: make([]Span, opts.MaxLocalSpans),
	}
}

var _ Observer = (*Collector)(nil)

// OnEvent implements Observer; the collector only counts events (the
// bounded event.Log is the event store).
func (c *Collector) OnEvent(event.Event) {
	c.mu.Lock()
	c.events++
	c.mu.Unlock()
}

// OnSpan implements Observer: file the span into its trace's tree.
func (c *Collector) OnSpan(sp Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sp.Kind == SpanLocalTrace || sp.Trace.IsZero() {
		c.local[c.nextLoc] = sp
		c.nextLoc++
		if c.nextLoc == len(c.local) {
			c.nextLoc = 0
			c.locFull = true
		}
		return
	}
	tree := c.treeLocked(sp.Trace)
	switch sp.Kind {
	case SpanBackTrace:
		cp := sp
		tree.Root = &cp
	case SpanParticipant:
		// A trace can revisit a site (another branch arrives after the site
		// went quiet): merge into one engagement span per site.
		for _, p := range tree.Participants {
			if p.Site == sp.Site {
				if sp.Start.Before(p.Start) {
					p.Start = sp.Start
				}
				if sp.End.After(p.End) {
					p.End = sp.End
				}
				p.Hops += sp.Hops
				p.QueueWait += sp.QueueWait
				return
			}
		}
		cp := sp
		tree.Participants = append(tree.Participants, &cp)
		sort.Slice(tree.Participants, func(i, j int) bool {
			return tree.Participants[i].Site < tree.Participants[j].Site
		})
	case SpanReport:
		cp := sp
		tree.Reports = append(tree.Reports, &cp)
		sort.Slice(tree.Reports, func(i, j int) bool {
			return tree.Reports[i].Site < tree.Reports[j].Site
		})
	}
}

func (c *Collector) treeLocked(t ids.TraceID) *Tree {
	tree, ok := c.trees[t]
	if !ok {
		if len(c.order) >= c.opts.MaxTraces {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.trees, oldest)
			c.evicted++
		}
		tree = &Tree{Trace: t}
		c.trees[t] = tree
		c.order = append(c.order, t)
	}
	return tree
}

// Tree returns a deep copy of one trace's tree, or nil if unknown.
func (c *Collector) Tree(t ids.TraceID) *Tree {
	c.mu.Lock()
	defer c.mu.Unlock()
	tree, ok := c.trees[t]
	if !ok {
		return nil
	}
	return copyTree(tree)
}

// Trees returns deep copies of every retained tree, ordered by trace id.
func (c *Collector) Trees() []*Tree {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Tree, 0, len(c.trees))
	for _, tree := range c.trees {
		out = append(out, copyTree(tree))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Trace.Less(out[j].Trace) })
	return out
}

// OrphanTraceIDs returns the retained traces that have participant or
// report spans but no completed root span — the "orphans" the span
// completeness tests assert away.
func (c *Collector) OrphanTraceIDs() []ids.TraceID {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []ids.TraceID
	for t, tree := range c.trees {
		if tree.Root == nil || tree.Root.End.IsZero() {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// LocalTraceSpans returns the retained local-trace spans, oldest first.
func (c *Collector) LocalTraceSpans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Span
	if c.locFull {
		out = append(out, c.local[c.nextLoc:]...)
	}
	out = append(out, c.local[:c.nextLoc]...)
	return out
}

// Evicted returns how many trees were dropped to the MaxTraces bound.
func (c *Collector) Evicted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicted
}

// WriteJSON dumps every retained tree (and the local-trace spans) as one
// JSON document.
func (c *Collector) WriteJSON(w io.Writer) error {
	doc := struct {
		Traces      []*Tree `json:"traces"`
		LocalTraces []Span  `json:"local_traces"`
		Evicted     int64   `json:"evicted,omitempty"`
	}{Traces: c.Trees(), LocalTraces: c.LocalTraceSpans(), Evicted: c.Evicted()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// RenderTrees renders every tree as an indented text forest — the human
// view dgcsim's -trace-out writes.
func (c *Collector) RenderTrees() string {
	var b strings.Builder
	for _, tree := range c.Trees() {
		fmt.Fprintf(&b, "%s", tree.Trace)
		if tree.Root != nil {
			fmt.Fprintf(&b, " %s rtt=%s participants=%d",
				tree.Root.Verdict, tree.Root.Duration().Round(time.Microsecond), len(tree.Root.Participants))
		} else {
			b.WriteString(" (incomplete)")
		}
		b.WriteByte('\n')
		for _, p := range tree.Participants {
			fmt.Fprintf(&b, "  ├─ %s\n", p)
		}
		for _, r := range tree.Reports {
			fmt.Fprintf(&b, "  └─ %s\n", r)
		}
	}
	return b.String()
}

func copyTree(t *Tree) *Tree {
	out := &Tree{Trace: t.Trace}
	if t.Root != nil {
		cp := *t.Root
		out.Root = &cp
	}
	for _, p := range t.Participants {
		cp := *p
		out.Participants = append(out.Participants, &cp)
	}
	for _, r := range t.Reports {
		cp := *r
		out.Reports = append(out.Reports, &cp)
	}
	return out
}

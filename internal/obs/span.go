package obs

import (
	"fmt"
	"time"

	"backtrace/internal/event"
	"backtrace/internal/ids"
	"backtrace/internal/msg"
)

// Well-known instrument names the sites register. Dotted names are the
// canonical identifiers; the Prometheus endpoint exposes them with dots
// replaced by underscores (see PromName).
const (
	// MetricBackTraceRTT is the latency histogram from a back trace's
	// initiation to its completion at the initiator (seconds).
	MetricBackTraceRTT = "backtrace.rtt_seconds"
	// MetricLocalTraceDuration is the latency histogram of one local trace
	// from snapshot to committed (seconds).
	MetricLocalTraceDuration = "localtrace.duration_seconds"
	// MetricMailboxQueueDelay is the latency histogram of the time an
	// inbound message spends queued in a site mailbox before dispatch.
	MetricMailboxQueueDelay = "mailbox.queue_delay_seconds"
	// MetricMailboxDepth is a gauge of the current mailbox depth (last
	// enqueue/dequeue observation wins; peaks are under mailbox.depth.peak).
	MetricMailboxDepth = "mailbox.depth"
	// MetricEventsDropped is a gauge of events evicted from the bounded
	// event log, refreshed by every metrics snapshot.
	MetricEventsDropped = "events.dropped"
)

// SpanKind classifies a span.
type SpanKind int

// Span kinds.
const (
	// SpanBackTrace is the root span of one back trace, emitted by the
	// initiator when the trace completes; it carries the verdict and the
	// participant set.
	SpanBackTrace SpanKind = iota + 1
	// SpanParticipant covers one site's engagement in a back trace: from
	// the first activation frame (or handled call) to the completion of the
	// site's last frame. Hops counts the BackCall messages handled.
	SpanParticipant
	// SpanLocalTrace covers one local trace, snapshot to commit. Its
	// TraceID is zero: local traces are per-site, not cross-site.
	SpanLocalTrace
	// SpanReport marks the report phase landing at a participant.
	SpanReport
)

// String names the kind.
func (k SpanKind) String() string {
	switch k {
	case SpanBackTrace:
		return "backtrace"
	case SpanParticipant:
		return "participant"
	case SpanLocalTrace:
		return "local-trace"
	case SpanReport:
		return "report"
	default:
		return fmt.Sprintf("SpanKind(%d)", int(k))
	}
}

// MarshalText implements encoding.TextMarshaler so JSON dumps carry the
// symbolic kind.
func (k SpanKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// Span is one completed span. Sites emit spans only when finished (both
// timestamps set), so observers never see half-open spans. Fields beyond
// Kind, Site, Start, and End are meaningful per kind.
type Span struct {
	// Trace correlates the span across sites; zero for local-trace spans.
	Trace ids.TraceID `json:"trace,omitempty"`
	// Site is the emitting site.
	Site ids.SiteID `json:"site"`
	// Kind classifies the span.
	Kind SpanKind `json:"kind"`
	// Start and End bound the span.
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Verdict is the trace outcome (backtrace and report spans).
	Verdict msg.Verdict `json:"verdict"`
	// Hops is the number of back-trace calls this site handled in the span
	// (participant spans).
	Hops int `json:"hops,omitempty"`
	// Participants is the set of sites the trace reached (backtrace spans).
	Participants []ids.SiteID `json:"participants,omitempty"`
	// Collected is the number of objects swept (local-trace spans).
	Collected int `json:"collected,omitempty"`
	// QueueWait is the cumulative time this trace's messages spent queued
	// in the site's mailbox during the span (participant and report spans).
	QueueWait time.Duration `json:"queue_wait,omitempty"`
}

// Duration returns End - Start.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// String renders the span compactly.
func (s Span) String() string {
	out := fmt.Sprintf("%s %s", s.Site, s.Kind)
	if !s.Trace.IsZero() {
		out += " " + s.Trace.String()
	}
	switch s.Kind {
	case SpanBackTrace:
		out += fmt.Sprintf(" %s participants=%d", s.Verdict, len(s.Participants))
	case SpanParticipant:
		out += fmt.Sprintf(" hops=%d", s.Hops)
	case SpanLocalTrace:
		out += fmt.Sprintf(" collected=%d", s.Collected)
	case SpanReport:
		out += " " + s.Verdict.String()
	}
	out += fmt.Sprintf(" %s", s.Duration().Round(time.Microsecond))
	return out
}

// Observer receives a site's observability stream: structured events and
// completed spans. Implementations must be safe for concurrent use and
// MUST NOT call back into the emitting Site or Cluster — callbacks run
// under the site lock.
type Observer interface {
	// OnEvent receives one structured collector event.
	OnEvent(e event.Event)
	// OnSpan receives one completed span.
	OnSpan(sp Span)
}

// multiObserver fans one stream out to several observers.
type multiObserver []Observer

func (m multiObserver) OnEvent(e event.Event) {
	for _, o := range m {
		o.OnEvent(e)
	}
}

func (m multiObserver) OnSpan(sp Span) {
	for _, o := range m {
		o.OnSpan(sp)
	}
}

// Tee combines observers into one; nils are dropped. It returns nil when
// every argument is nil, so the result can be stored directly in a config.
func Tee(obs ...Observer) Observer {
	var m multiObserver
	for _, o := range obs {
		if o != nil {
			m = append(m, o)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	default:
		return m
	}
}

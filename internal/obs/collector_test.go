package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"backtrace/internal/event"
	"backtrace/internal/ids"
	"backtrace/internal/msg"
)

func span(t ids.TraceID, site ids.SiteID, kind SpanKind) Span {
	now := time.Now()
	return Span{Trace: t, Site: site, Kind: kind, Start: now.Add(-time.Millisecond), End: now}
}

func TestCollectorAssemblesTree(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	tid := ids.TraceID{Initiator: 2, Seq: 1}

	p1 := span(tid, 1, SpanParticipant)
	p1.Hops = 1
	c.OnSpan(p1)
	p2 := span(tid, 2, SpanParticipant)
	p2.Hops = 2
	c.OnSpan(p2)
	rep := span(tid, 1, SpanReport)
	rep.Verdict = msg.VerdictGarbage
	c.OnSpan(rep)
	root := span(tid, 2, SpanBackTrace)
	root.Verdict = msg.VerdictGarbage
	root.Participants = []ids.SiteID{1, 2}
	c.OnSpan(root)

	tree := c.Tree(tid)
	if tree == nil || tree.Root == nil {
		t.Fatalf("tree = %+v", tree)
	}
	if !tree.Complete() {
		t.Fatal("tree incomplete")
	}
	if len(tree.Participants) != 2 || tree.Participants[0].Site != 1 || tree.Participants[1].Site != 2 {
		t.Fatalf("participants = %+v", tree.Participants)
	}
	if len(tree.Reports) != 1 {
		t.Fatalf("reports = %+v", tree.Reports)
	}
	if got := c.OrphanTraceIDs(); len(got) != 0 {
		t.Fatalf("orphans = %v", got)
	}
	if out := c.RenderTrees(); !strings.Contains(out, tid.String()) {
		t.Fatalf("render missing trace id:\n%s", out)
	}
}

func TestCollectorMergesRevisits(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	tid := ids.TraceID{Initiator: 1, Seq: 9}
	first := span(tid, 3, SpanParticipant)
	first.Hops = 1
	first.QueueWait = time.Millisecond
	c.OnSpan(first)
	second := span(tid, 3, SpanParticipant)
	second.Hops = 2
	second.End = second.End.Add(time.Second)
	c.OnSpan(second)

	tree := c.Tree(tid)
	if len(tree.Participants) != 1 {
		t.Fatalf("participants = %+v", tree.Participants)
	}
	p := tree.Participants[0]
	if p.Hops != 3 {
		t.Fatalf("hops = %d, want 3", p.Hops)
	}
	if !p.End.Equal(second.End) || !p.Start.Equal(first.Start) {
		t.Fatalf("merged bounds wrong: %+v", p)
	}
}

func TestCollectorOrphansAndEviction(t *testing.T) {
	c := NewCollector(CollectorOptions{MaxTraces: 2})
	t1 := ids.TraceID{Initiator: 1, Seq: 1}
	t2 := ids.TraceID{Initiator: 1, Seq: 2}
	t3 := ids.TraceID{Initiator: 1, Seq: 3}
	c.OnSpan(span(t1, 1, SpanParticipant))
	c.OnSpan(span(t2, 1, SpanParticipant))
	if got := c.OrphanTraceIDs(); len(got) != 2 {
		t.Fatalf("orphans = %v", got)
	}
	c.OnSpan(span(t3, 1, SpanParticipant)) // evicts t1
	if c.Evicted() != 1 {
		t.Fatalf("evicted = %d", c.Evicted())
	}
	if tree := c.Tree(t1); tree != nil {
		t.Fatal("evicted tree still present")
	}
}

func TestCollectorLocalTraceRing(t *testing.T) {
	c := NewCollector(CollectorOptions{MaxLocalSpans: 2})
	for i := 0; i < 3; i++ {
		sp := span(ids.NilTrace, 1, SpanLocalTrace)
		sp.Collected = i
		c.OnSpan(sp)
	}
	got := c.LocalTraceSpans()
	if len(got) != 2 || got[0].Collected != 1 || got[1].Collected != 2 {
		t.Fatalf("local spans = %+v", got)
	}
}

func TestTeeFansOut(t *testing.T) {
	a := NewCollector(CollectorOptions{})
	b := NewCollector(CollectorOptions{})
	o := Tee(nil, a, b)
	o.OnSpan(span(ids.TraceID{Initiator: 1, Seq: 1}, 1, SpanParticipant))
	o.OnEvent(event.Event{Kind: event.TraceStarted})
	if len(a.Trees()) != 1 || len(b.Trees()) != 1 {
		t.Fatal("tee did not fan out")
	}
	if Tee(nil, nil) != nil {
		t.Fatal("Tee of nils should be nil")
	}
	if Tee(a) != a {
		t.Fatal("Tee of one should be itself")
	}
}

func TestDebugHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("msg.total", "").Add(7)
	reg.Histogram(MetricBackTraceRTT, "rtt", nil).Observe(0.001)
	col := NewCollector(CollectorOptions{})
	tid := ids.TraceID{Initiator: 1, Seq: 1}
	root := span(tid, 1, SpanBackTrace)
	root.Participants = []ids.SiteID{1}
	col.OnSpan(root)
	col.OnSpan(span(tid, 1, SpanParticipant))

	srv := httptest.NewServer(DebugHandler(reg, col, func() error { return nil }))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "msg_total 7") ||
		!strings.Contains(body, "backtrace_rtt_seconds_count 1") {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, body := get("/spans"); code != 200 || !strings.Contains(body, `"traces"`) {
		t.Fatalf("/spans: %d\n%s", code, body)
	}
}

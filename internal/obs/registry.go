// Package obs is the collector's observability layer: a typed metrics
// registry (counters, gauges, latency histograms) with Prometheus
// text-format exposition, distributed trace spans correlated by TraceID
// across sites, a span collector that assembles cross-site span trees, and
// an HTTP debug handler.
//
// The registry replaces the stringly-typed counter map the experiment
// harness grew up with: instruments are declared once with a name and help
// string, reads and writes are lock-free atomics, and the same instrument
// set backs the in-process snapshot API (Snapshot), the legacy
// metrics.Counters shim, and the /metrics endpoint.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer instrument.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by delta (delta must be non-negative; the
// registry does not enforce this, matching the legacy Counters behaviour).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instrument whose value can go up and down; it also supports
// high-water-mark updates (Max), which the harness uses for peaks.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Max raises the gauge to v if v is larger.
func (g *Gauge) Max(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets are the histogram bucket upper bounds (seconds)
// used for the collector's latency instruments: 100µs up to 10s.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram (values in seconds).
type Histogram struct {
	name    string
	help    string
	bounds  []float64 // ascending upper bounds; +Inf implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value (in seconds).
func (h *Histogram) Observe(seconds float64) {
	i := sort.SearchFloat64s(h.bounds, seconds)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		sum := math.Float64frombits(old) + seconds
		if h.sumBits.CompareAndSwap(old, math.Float64bits(sum)) {
			return
		}
	}
}

// ObserveDuration records one duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values (seconds).
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns cumulative bucket counts (per Prometheus convention)
// plus count and sum.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.bounds)),
		Count:   h.count.Load(),
		Sum:     h.Sum(),
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Buckets[i] = cum
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of one histogram. Buckets are
// cumulative counts aligned with Bounds; observations above the last bound
// appear only in Count.
type HistogramSnapshot struct {
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of a whole registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Get returns the value of a named counter or gauge (zero if absent) —
// the lookup the legacy harness APIs expect.
func (s Snapshot) Get(name string) int64 {
	if v, ok := s.Counters[name]; ok {
		return v
	}
	return s.Gauges[name]
}

// Registry holds declared instruments. Declaration (Counter, Gauge,
// Histogram) is get-or-create and idempotent; redeclaring a name as a
// different instrument kind panics, because that is a programming error the
// exposition format cannot represent. The zero value is not usable; create
// with NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	order  []string // registration order, for stable exposition
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter declares (or fetches) a counter. A later declaration may fill in
// a help string an earlier one left empty.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counts[name]; ok {
		if c.help == "" {
			c.help = help
		}
		return c
	}
	r.mustBeFree(name, "counter")
	c := &Counter{name: name, help: help}
	r.counts[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge declares (or fetches) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		if g.help == "" {
			g.help = help
		}
		return g
	}
	r.mustBeFree(name, "gauge")
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	r.order = append(r.order, name)
	return g
}

// Histogram declares (or fetches) a histogram. buckets are ascending upper
// bounds in seconds; nil selects DefaultLatencyBuckets. Bucket layouts are
// fixed at first declaration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		if h.help == "" {
			h.help = help
		}
		return h
	}
	r.mustBeFree(name, "histogram")
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Int64, len(buckets)),
	}
	r.hists[name] = h
	r.order = append(r.order, name)
	return h
}

func (r *Registry) mustBeFree(name, kind string) {
	if _, ok := r.counts[name]; ok {
		panic(fmt.Sprintf("obs: %q already declared as a counter, redeclared as %s", name, kind))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obs: %q already declared as a gauge, redeclared as %s", name, kind))
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("obs: %q already declared as a histogram, redeclared as %s", name, kind))
	}
}

// Value returns the current value of a named counter or gauge without
// declaring it; ok reports whether the name exists.
func (r *Registry) Value(name string) (v int64, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if c, exists := r.counts[name]; exists {
		return c.Value(), true
	}
	if g, exists := r.gauges[name]; exists {
		return g.Value(), true
	}
	return 0, false
}

// Snapshot copies every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counts)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Reset zeroes every instrument's value, keeping the declarations. The
// experiment harness uses this to isolate measurement windows.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counts {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sumBits.Store(0)
	}
}

package obs

import (
	"fmt"
	"net/http"
)

// DebugHandler serves the observability endpoints:
//
//	/metrics  Prometheus text-format exposition of the registry
//	/healthz  200 "ok" while health() returns nil, 503 otherwise
//	/spans    JSON dump of the span collector's trace trees
//
// Any of registry, collector, and health may be nil; the corresponding
// endpoint then reports 404 (for /metrics and /spans) or plain liveness
// (for /healthz).
func DebugHandler(registry *Registry, collector *Collector, health func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if registry == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = registry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if health != nil {
			if err := health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		if collector == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = collector.WriteJSON(w)
	})
	return mux
}

package ids

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestSiteIDString(t *testing.T) {
	tests := []struct {
		in   SiteID
		want string
	}{
		{NoSite, "S0"},
		{1, "S1"},
		{42, "S42"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("SiteID(%d).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestObjIDString(t *testing.T) {
	if got := ObjID(17).String(); got != "o17" {
		t.Errorf("ObjID(17).String() = %q, want %q", got, "o17")
	}
	if got := NoObj.String(); got != "o0" {
		t.Errorf("NoObj.String() = %q, want %q", got, "o0")
	}
}

func TestRefZero(t *testing.T) {
	if !NilRef.IsZero() {
		t.Error("NilRef.IsZero() = false, want true")
	}
	if MakeRef(1, 2).IsZero() {
		t.Error("MakeRef(1,2).IsZero() = true, want false")
	}
	if MakeRef(0, 1).IsZero() {
		t.Error("MakeRef(0,1).IsZero() = true, want false")
	}
}

func TestRefString(t *testing.T) {
	r := MakeRef(2, 17)
	if got := r.String(); got != "S2:o17" {
		t.Errorf("Ref.String() = %q, want %q", got, "S2:o17")
	}
}

func TestRefOrdering(t *testing.T) {
	refs := []Ref{
		MakeRef(2, 1),
		MakeRef(1, 9),
		MakeRef(1, 2),
		MakeRef(3, 0),
		MakeRef(1, 2),
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Less(refs[j]) })
	want := []Ref{
		MakeRef(1, 2),
		MakeRef(1, 2),
		MakeRef(1, 9),
		MakeRef(2, 1),
		MakeRef(3, 0),
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, refs[i], want[i])
		}
	}
}

func TestRefCompareConsistentWithLess(t *testing.T) {
	f := func(s1, s2 uint32, o1, o2 uint64) bool {
		a := MakeRef(SiteID(s1), ObjID(o1))
		b := MakeRef(SiteID(s2), ObjID(o2))
		c := a.Compare(b)
		switch {
		case a.Less(b):
			return c == -1
		case b.Less(a):
			return c == +1
		default:
			return c == 0 && a == b
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRefLessIsStrictWeakOrder(t *testing.T) {
	// Irreflexivity and asymmetry over random pairs.
	f := func(s1, s2 uint32, o1, o2 uint64) bool {
		a := MakeRef(SiteID(s1), ObjID(o1))
		b := MakeRef(SiteID(s2), ObjID(o2))
		if a.Less(a) || b.Less(b) {
			return false
		}
		if a.Less(b) && b.Less(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTraceIDZeroAndString(t *testing.T) {
	if !NilTrace.IsZero() {
		t.Error("NilTrace.IsZero() = false, want true")
	}
	tr := TraceID{Initiator: 2, Seq: 5}
	if tr.IsZero() {
		t.Error("non-zero TraceID reported zero")
	}
	if got := tr.String(); got != "T(S2#5)" {
		t.Errorf("TraceID.String() = %q, want %q", got, "T(S2#5)")
	}
}

func TestTraceIDLess(t *testing.T) {
	a := TraceID{Initiator: 1, Seq: 9}
	b := TraceID{Initiator: 2, Seq: 1}
	c := TraceID{Initiator: 2, Seq: 2}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Error("TraceID ordering violated")
	}
}

func TestFrameIDZeroAndString(t *testing.T) {
	if !NilFrame.IsZero() {
		t.Error("NilFrame.IsZero() = false, want true")
	}
	f := FrameID{Site: 2, Seq: 9}
	if f.IsZero() {
		t.Error("non-zero FrameID reported zero")
	}
	if got := f.String(); got != "F(S2#9)" {
		t.Errorf("FrameID.String() = %q, want %q", got, "F(S2#9)")
	}
}

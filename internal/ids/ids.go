// Package ids defines the identifier types shared by every subsystem:
// site identifiers, object identifiers, fully qualified object references,
// and back-trace identifiers.
//
// The types are deliberately small value types with total orderings so they
// can be used as map keys, sorted deterministically in tests and benchmarks,
// and encoded compactly by the binary wire codec for the TCP transport.
package ids

import (
	"fmt"
	"strconv"
)

// SiteID identifies a site (a node that owns objects and runs its own local
// collector). Site identifiers are assigned by the cluster harness and are
// dense small integers starting at 1; 0 is reserved as "no site".
type SiteID uint32

// NoSite is the zero SiteID, used to mean "no site" (for example, the
// initiator field of a locally created reference).
const NoSite SiteID = 0

// String returns a short human-readable form such as "S3".
func (s SiteID) String() string {
	return "S" + strconv.FormatUint(uint64(s), 10)
}

// ObjID identifies an object within its owning site. Object identifiers are
// unique per site, never reused, and allocated by the site's heap; 0 is
// reserved as "no object".
type ObjID uint64

// NoObj is the zero ObjID, used to mean "no object".
const NoObj ObjID = 0

// String returns a short human-readable form such as "o17".
func (o ObjID) String() string {
	return "o" + strconv.FormatUint(uint64(o), 10)
}

// Ref is a fully qualified reference to an object: the owning site plus the
// object identifier within that site. Ref is the unit the inter-site
// reference-listing machinery tracks; it is also what mutators pass around.
//
// The zero Ref is "no reference" and IsZero reports it.
type Ref struct {
	Site SiteID
	Obj  ObjID
}

// NilRef is the zero Ref, meaning "no reference".
var NilRef = Ref{}

// MakeRef builds a Ref from its parts.
func MakeRef(site SiteID, obj ObjID) Ref {
	return Ref{Site: site, Obj: obj}
}

// IsZero reports whether r is the zero ("no reference") value.
func (r Ref) IsZero() bool {
	return r.Site == NoSite && r.Obj == NoObj
}

// String returns a human-readable form such as "S2:o17".
func (r Ref) String() string {
	return fmt.Sprintf("%s:%s", r.Site, r.Obj)
}

// Less defines a total order over references (by site, then object). It is
// used to sort reference sets deterministically.
func (r Ref) Less(other Ref) bool {
	if r.Site != other.Site {
		return r.Site < other.Site
	}
	return r.Obj < other.Obj
}

// Compare returns -1, 0, or +1 comparing r with other in the Less order.
func (r Ref) Compare(other Ref) int {
	switch {
	case r.Less(other):
		return -1
	case other.Less(r):
		return +1
	default:
		return 0
	}
}

// TraceID identifies a back trace. The initiating site assigns it by
// combining its own SiteID with a locally unique sequence number, so trace
// identifiers are globally unique without coordination (Section 4.7 of the
// paper: "The site starting a trace assigns it a unique id").
type TraceID struct {
	Initiator SiteID
	Seq       uint64
}

// NilTrace is the zero TraceID, meaning "no trace".
var NilTrace = TraceID{}

// IsZero reports whether t is the zero ("no trace") value.
func (t TraceID) IsZero() bool {
	return t == NilTrace
}

// String returns a human-readable form such as "T(S2#5)".
func (t TraceID) String() string {
	return fmt.Sprintf("T(%s#%d)", t.Initiator, t.Seq)
}

// Less defines a total order over trace identifiers (by initiator, then
// sequence number), used for deterministic iteration in tests.
func (t TraceID) Less(other TraceID) bool {
	if t.Initiator != other.Initiator {
		return t.Initiator < other.Initiator
	}
	return t.Seq < other.Seq
}

// FrameID identifies an activation frame of a back trace on some site
// (Section 4.4: "An activation frame is created for each call"). The pair
// (TraceID, FrameID-on-site) lets a reply find the frame it must return to
// even when the ioref the frame was active on has been deleted meanwhile.
type FrameID struct {
	Site SiteID
	Seq  uint64
}

// NilFrame is the zero FrameID, used for the outermost call of a trace
// (which has no caller frame to return to).
var NilFrame = FrameID{}

// IsZero reports whether f is the zero ("no frame") value.
func (f FrameID) IsZero() bool {
	return f == NilFrame
}

// String returns a human-readable form such as "F(S2#9)".
func (f FrameID) String() string {
	return fmt.Sprintf("F(%s#%d)", f.Site, f.Seq)
}

package experiments

import (
	"fmt"
	"time"

	"backtrace/internal/baseline"
	"backtrace/internal/cluster"
	"backtrace/internal/heap"
	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/refs"
	"backtrace/internal/tracer"
	"backtrace/internal/workload"
)

// --- C3: inset computation — Section 5.1 vs Section 5.2 ---------------------

// InsetRow records the cost of one outset computation.
type InsetRow struct {
	Shape    string
	Algo     tracer.OutsetAlgorithm
	NI       int   // suspected inrefs
	Objects  int   // suspected objects
	Visits   int64 // object scans during outset computation
	Retraced int64
	Unions   int64
	MemoHits int64
	Elapsed  time.Duration
}

// insetShape builds a single-site heap+table for the inset experiments.
type insetShape struct {
	name string
	h    *heap.Heap
	tbl  *refs.Table
	ni   int
	objs int
}

// buildInsetShapes constructs the shapes Section 5 discusses: a fan of
// suspected inrefs over one shared tail (worst case for independent
// tracing), a long chain with an inref per element (canonical outset
// sharing), and one big SCC (leader sharing).
func buildInsetShapes(scale int) []insetShape {
	var shapes []insetShape

	// fan: k inrefs, shared tail of length 10*k.
	{
		k, tail := scale, 10*scale
		h := heap.New(1)
		tbl := refs.NewTable(1, 1<<20)
		join := h.Alloc()
		for i := 0; i < k; i++ {
			head := h.Alloc()
			tbl.AddSource(head.Obj, 2)
			tbl.SetSourceDistance(head.Obj, 2, 100)
			h.AddField(head.Obj, join)
		}
		prev := join
		for i := 0; i < tail; i++ {
			next := h.Alloc()
			h.AddField(prev.Obj, next)
			prev = next
		}
		out := ids.MakeRef(2, 1)
		h.AddField(prev.Obj, out)
		tbl.EnsureOutref(out)
		if o, ok := tbl.Outref(out); ok {
			o.Distance = 100
			o.Barrier = false
		}
		shapes = append(shapes, insetShape{name: fmt.Sprintf("fan-%d", k), h: h, tbl: tbl, ni: k, objs: h.Len()})
	}

	// chain: every element has its own suspected inref.
	{
		n := 10 * scale
		h := heap.New(1)
		tbl := refs.NewTable(1, 1<<20)
		var prev ids.Ref
		for i := 0; i < n; i++ {
			cur := h.Alloc()
			tbl.AddSource(cur.Obj, 2)
			tbl.SetSourceDistance(cur.Obj, 2, 100)
			if i > 0 {
				h.AddField(prev.Obj, cur)
			}
			prev = cur
		}
		out := ids.MakeRef(2, 1)
		h.AddField(prev.Obj, out)
		tbl.EnsureOutref(out)
		if o, ok := tbl.Outref(out); ok {
			o.Distance = 100
			o.Barrier = false
		}
		shapes = append(shapes, insetShape{name: fmt.Sprintf("chain-%d", n), h: h, tbl: tbl, ni: n, objs: n})
	}

	// scc: one strongly connected component with inrefs on every node.
	{
		n := 10 * scale
		h := heap.New(1)
		tbl := refs.NewTable(1, 1<<20)
		nodes := make([]ids.Ref, n)
		for i := range nodes {
			nodes[i] = h.Alloc()
			tbl.AddSource(nodes[i].Obj, 2)
			tbl.SetSourceDistance(nodes[i].Obj, 2, 100)
		}
		for i := range nodes {
			h.AddField(nodes[i].Obj, nodes[(i+1)%n])
			if i%7 == 0 {
				h.AddField(nodes[i].Obj, nodes[(i+n/2)%n]) // chords
			}
		}
		out := ids.MakeRef(2, 1)
		h.AddField(nodes[n-1].Obj, out)
		tbl.EnsureOutref(out)
		if o, ok := tbl.Outref(out); ok {
			o.Distance = 100
			o.Barrier = false
		}
		shapes = append(shapes, insetShape{name: fmt.Sprintf("scc-%d", n), h: h, tbl: tbl, ni: n, objs: n})
	}
	return shapes
}

// InsetComparison runs both Section 5 algorithms over the shapes and
// reports their costs. Scale controls workload size.
func InsetComparison(scale int) []InsetRow {
	var rows []InsetRow
	for _, sh := range buildInsetShapes(scale) {
		for _, algo := range []tracer.OutsetAlgorithm{tracer.AlgoIndependent, tracer.AlgoBottomUp} {
			start := time.Now()
			res := tracer.Run(sh.h, sh.tbl, 3, algo)
			rows = append(rows, InsetRow{
				Shape:    sh.name,
				Algo:     algo,
				NI:       sh.ni,
				Objects:  sh.objs,
				Visits:   res.Stats.OutsetVisits,
				Retraced: res.Stats.OutsetRetraced,
				Unions:   res.Stats.Unions,
				MemoHits: res.Stats.MemoHits,
				Elapsed:  time.Since(start),
			})
		}
	}
	return rows
}

// InsetTable renders InsetComparison rows.
func InsetTable(rows []InsetRow) *Table {
	t := &Table{
		Title:   "C3: inset computation — Section 5.1 (independent) vs 5.2 (bottom-up)",
		Header:  []string{"shape", "algorithm", "ni", "objects", "visits", "retraced", "unions", "memo hits", "time"},
		Caption: "independent is O(ni*(n+e)); bottom-up scans each object once with memoized unions",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Shape, r.Algo.String(),
			fmt.Sprint(r.NI), fmt.Sprint(r.Objects),
			fmt.Sprint(r.Visits), fmt.Sprint(r.Retraced),
			fmt.Sprint(r.Unions), fmt.Sprint(r.MemoHits),
			r.Elapsed.Round(time.Microsecond).String(),
		})
	}
	return t
}

// --- C8: comparison against the related-work baselines ----------------------

// CompareRow is one collector's cost to reclaim the same garbage cycle.
type CompareRow struct {
	Collector     string
	Collected     int
	Rounds        int
	Messages      int64
	Bytes         int64
	SitesInvolved int
	// SteadyPerRound is the scheme's own message traffic per round once
	// no garbage remains — the standing cost of the algorithm. Back
	// tracing and migration idle at zero; Hughes keeps paying global
	// timestamp and threshold traffic forever.
	SteadyPerRound int64
}

// CompareCollectors reclaims the same workload — a garbage ring over
// cycleSites sites, decorated with a live chain extending to extra sites —
// with back tracing and each baseline, and reports the costs.
func CompareCollectors(cycleSites, extraSites int) ([]CompareRow, error) {
	spec := workload.Ring(cycleSites)
	spec.Sites = cycleSites + extraSites
	// Live chain: root on the first extra site, then one object per
	// remaining extra site; the cycle points into the chain's head.
	if extraSites > 0 {
		rootIdx := len(spec.Objects)
		spec.Objects = append(spec.Objects, workload.ObjSpec{Site: ids.SiteID(cycleSites + 1), Root: true})
		prev := rootIdx
		for i := 1; i < extraSites; i++ {
			idx := len(spec.Objects)
			spec.Objects = append(spec.Objects, workload.ObjSpec{Site: ids.SiteID(cycleSites + 1 + i)})
			spec.Edges = append(spec.Edges, [2]int{prev, idx})
			prev = idx
		}
		chainHead := rootIdx + 1
		if extraSites == 1 {
			chainHead = rootIdx
		}
		spec.Edges = append(spec.Edges, [2]int{0, chainHead})
	}

	var rows []CompareRow

	// Back tracing on the real cluster.
	{
		c := clusterFor(spec.Sites, true)
		if _, err := workload.Build(c, spec); err != nil {
			c.Close()
			return nil, err
		}
		garbage := c.GarbageCount()
		c.Counters().Reset()
		participants := make(map[ids.SiteID]struct{})
		rounds := 0
		for ; rounds < 60 && c.GarbageCount() > 0; rounds++ {
			c.RunRound()
			for _, s := range c.Sites() {
				for _, out := range s.Completions() {
					for _, p := range out.Participants {
						participants[p] = struct{}{}
					}
				}
			}
		}
		snap := c.Counters().Snapshot()
		// Steady state: five more rounds with no garbage left.
		c.RunRounds(5)
		after := c.Counters().Snapshot()
		rows = append(rows, CompareRow{
			Collector: "back-tracing",
			Collected: garbage - c.GarbageCount(),
			Rounds:    rounds,
			// All collector traffic during the run: reference-listing
			// updates, distance propagation, and back-trace messages.
			Messages:       snap["msg.total"],
			Bytes:          16 * snap["msg.total"],
			SitesInvolved:  len(participants),
			SteadyPerRound: (after["msg.total"] - snap["msg.total"]) / 5,
		})
		c.Close()
	}

	mk := func(name string, build func(w *baseline.World) baseline.Collector) error {
		w, _, err := baseline.FromSpec(spec)
		if err != nil {
			return err
		}
		col := build(w)
		w.ResetAccounting()
		st := baseline.Run(w, col, 60)
		st.Name = name
		steadyBase := w.Messages
		for i := 0; i < 5; i++ {
			col.Step()
		}
		rows = append(rows, CompareRow{
			Collector:      st.Name,
			Collected:      st.Collected,
			Rounds:         st.Rounds,
			Messages:       st.Messages,
			Bytes:          st.Bytes,
			SitesInvolved:  st.SitesInvolved,
			SteadyPerRound: (w.Messages - steadyBase) / 5,
		})
		return nil
	}
	if err := mk("migration", func(w *baseline.World) baseline.Collector { return baseline.NewMigration(w, 3) }); err != nil {
		return nil, err
	}
	if err := mk("hughes", func(w *baseline.World) baseline.Collector { return baseline.NewHughes(w) }); err != nil {
		return nil, err
	}
	if err := mk("group-trace", func(w *baseline.World) baseline.Collector { return baseline.NewGroupTrace(w, 3) }); err != nil {
		return nil, err
	}
	if err := mk("local-only", func(w *baseline.World) baseline.Collector { return baseline.NewLocalOnly(w) }); err != nil {
		return nil, err
	}
	if err := mk("local-wrc", func(w *baseline.World) baseline.Collector { return baseline.NewWeightedRC(w) }); err != nil {
		return nil, err
	}
	return rows, nil
}

// CompareTable renders CompareCollectors rows.
func CompareTable(cycleSites, extraSites int, rows []CompareRow) *Table {
	t := &Table{
		Title: fmt.Sprintf("C8: collecting a %d-site cycle (+%d live decoration sites)", cycleSites, extraSites),
		Header: []string{
			"collector", "collected", "rounds", "messages", "bytes", "sites involved", "steady msgs/round",
		},
		Caption: "messages = all collector traffic until the cycle is gone; steady = standing per-round traffic afterwards; local-only (listing) and local-wrc (weighted RC) never collect the cycle",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Collector, fmt.Sprint(r.Collected), fmt.Sprint(r.Rounds),
			fmt.Sprint(r.Messages), fmt.Sprint(r.Bytes), fmt.Sprint(r.SitesInvolved),
			fmt.Sprint(r.SteadyPerRound),
		})
	}
	return t
}

// --- C7: locality under a crashed / slow site ------------------------------

// LocalityRow records whether a cycle disjoint from a failed site is
// collected while the site is down.
type LocalityRow struct {
	Collector          string
	DisjointCollected  bool
	DependentCollected bool
	RoundsRun          int
}

// LocalityUnderCrash builds two 2-site cycles on a 4-site system, disables
// site 4, runs rounds, and reports which cycles each collector reclaims:
// back tracing (and migration) collect the disjoint cycle; Hughes's global
// threshold stalls everything.
func LocalityUnderCrash(rounds int) ([]LocalityRow, error) {
	twoCycles := func() workload.Spec {
		spec := workload.Ring(2) // cycle A on sites 1-2
		spec.Sites = 4
		b3 := len(spec.Objects)
		spec.Objects = append(spec.Objects, workload.ObjSpec{Site: 3})
		b4 := len(spec.Objects)
		spec.Objects = append(spec.Objects, workload.ObjSpec{Site: 4})
		spec.Edges = append(spec.Edges, [2]int{b3, b4}, [2]int{b4, b3}) // cycle B on 3-4
		return spec
	}

	var rows []LocalityRow

	// Back tracing on the real cluster with site 4 crashed.
	{
		c := clusterFor(4, true)
		refsOut, err := workload.Build(c, twoCycles())
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Net().Crash(4)
		for r := 0; r < rounds; r++ {
			for _, id := range []ids.SiteID{1, 2, 3} {
				c.Site(id).RunLocalTrace()
				c.Settle()
			}
		}
		rows = append(rows, LocalityRow{
			Collector:          "back-tracing",
			DisjointCollected:  !c.Site(1).ContainsObject(refsOut[0].Obj) && !c.Site(2).ContainsObject(refsOut[1].Obj),
			DependentCollected: !c.Site(3).ContainsObject(refsOut[2].Obj),
			RoundsRun:          rounds,
		})
		c.Close()
	}

	// Hughes with site 4 slow forever (never traces within the window).
	{
		w, refsOut, err := baseline.FromSpec(twoCycles())
		if err != nil {
			return nil, err
		}
		h := baseline.NewHughes(w)
		h.SlowSite = 4
		h.SlowEvery = rounds * 10
		for r := 0; r < rounds; r++ {
			h.Step()
		}
		_, aAlive := w.Objects[refsOut[0]]
		_, bAlive := w.Objects[refsOut[2]]
		rows = append(rows, LocalityRow{
			Collector:          "hughes",
			DisjointCollected:  !aAlive,
			DependentCollected: !bAlive,
			RoundsRun:          rounds,
		})
	}

	// Migration with site 4 "down": model by running migration rounds on
	// a world whose site-4 objects cannot act; the cycle on 1-2 must
	// still converge and die. (The world model has no crash switch; we
	// simply note that migration of the disjoint cycle involves only
	// sites 1-2, so a site-4 failure cannot affect it.)
	{
		w, refsOut, err := baseline.FromSpec(workload.Ring(2))
		if err != nil {
			return nil, err
		}
		m := baseline.NewMigration(w, 3)
		st := baseline.Run(w, m, rounds)
		_, aAlive := w.Objects[refsOut[0]]
		rows = append(rows, LocalityRow{
			Collector:          "migration (cycle's sites only)",
			DisjointCollected:  !aAlive && st.Collected == 2,
			DependentCollected: false,
			RoundsRun:          st.Rounds,
		})
	}
	return rows, nil
}

// LocalityTable renders LocalityUnderCrash rows.
func LocalityTable(rows []LocalityRow) *Table {
	t := &Table{
		Title:   "C7: locality with site 4 failed (cycle A on sites 1-2, cycle B on 3-4)",
		Header:  []string{"collector", "cycle A collected", "cycle B collected", "rounds"},
		Caption: "back tracing collects the disjoint cycle; Hughes's global threshold stalls everything",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Collector, fmt.Sprint(r.DisjointCollected), fmt.Sprint(r.DependentCollected), fmt.Sprint(r.RoundsRun),
		})
	}
	return t
}

// --- end-to-end hypertext run (intro workload) ------------------------------

// HypertextRow summarizes an end-to-end hypertext collection.
type HypertextRow struct {
	Docs        int
	Objects     int
	Garbage     int
	Rounds      int
	Collected   int
	Traces      int64
	TraceLive   int64
	MsgTotal    int64
	MsgBacktr   int64
	ObjectsScan int64
}

// Hypertext runs the motivating workload end to end.
func Hypertext(docs, sites int, seed int64) (HypertextRow, error) {
	c := cluster.New(cluster.Options{
		NumSites:           sites,
		SuspicionThreshold: 4,
		BackThreshold:      10,
		ThresholdBump:      4,
		AutoBackTrace:      true,
	})
	defer c.Close()
	spec := workload.HypertextWeb(workload.HypertextConfig{
		Sites:       sites,
		Docs:        docs,
		PagesPerDoc: 6,
		CrossLinks:  docs,
		LiveFrac:    0.5,
		Seed:        seed,
	})
	refsOut, err := workload.Build(c, spec)
	if err != nil {
		return HypertextRow{}, err
	}
	garbage := c.GarbageCount()
	c.Counters().Reset()
	rounds, collected := c.CollectUntilStable(100)
	snap := c.Counters().Snapshot()
	return HypertextRow{
		Docs:        docs,
		Objects:     len(refsOut),
		Garbage:     garbage,
		Rounds:      rounds,
		Collected:   collected,
		Traces:      snap[metrics.BackTracesStarted],
		TraceLive:   snap[metrics.BackTracesLive],
		MsgTotal:    snap["msg.total"],
		MsgBacktr:   snap["msg.BackCall"] + snap["msg.BackReply"] + snap["msg.Report"],
		ObjectsScan: snap[metrics.ObjectsTraced],
	}, nil
}

// HypertextTable renders Hypertext rows.
func HypertextTable(rows []HypertextRow) *Table {
	t := &Table{
		Title:   "intro workload: hypertext webs (orphaned documents = distributed cycles)",
		Header:  []string{"docs", "objects", "garbage", "rounds", "collected", "traces", "live traces", "backtr msgs", "all msgs"},
		Caption: "back-trace traffic stays proportional to the garbage, not the web",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.Docs), fmt.Sprint(r.Objects), fmt.Sprint(r.Garbage),
			fmt.Sprint(r.Rounds), fmt.Sprint(r.Collected),
			fmt.Sprint(r.Traces), fmt.Sprint(r.TraceLive),
			fmt.Sprint(r.MsgBacktr), fmt.Sprint(r.MsgTotal),
		})
	}
	return t
}

package experiments

import (
	"fmt"
	"runtime"
	"time"

	"backtrace/internal/cluster"
	"backtrace/internal/ids"
	"backtrace/internal/msg"
	"backtrace/internal/wire"
	"backtrace/internal/workload"
)

// --- C17: binary wire codec + link-level batching ---------------------------

// WireCodecRow is one codec's throughput over a representative protocol
// message mix: encode+decode round trips per second, bytes per message on
// the wire, and heap allocations per round trip.
type WireCodecRow struct {
	Codec       string
	MsgsPerSec  float64
	BytesPerMsg float64
	AllocsPerOp float64
}

// wireMix is the protocol traffic the codecs are measured on: one envelope
// per message kind the collector actually exchanges, with collection-typed
// fields populated, plus a session-layer batch — roughly the distribution a
// busy link carries.
func wireMix() []msg.Envelope {
	mk := func(m msg.Message) msg.Envelope { return msg.Envelope{From: 3, To: 9, M: m} }
	return []msg.Envelope{
		mk(msg.RefTransfer{Payload: ids.MakeRef(3, 77), Pinner: 2}),
		mk(msg.Insert{Target: ids.MakeRef(4, 1005), Holder: 3, Pinner: 2}),
		mk(msg.InsertAck{Target: ids.MakeRef(4, 1005)}),
		mk(msg.ReleasePin{Target: ids.MakeRef(1, 9)}),
		mk(msg.Update{
			Removals: []ids.ObjID{5, 9, 1 << 20},
			Distances: []msg.DistanceUpdate{
				{Obj: 5, Distance: 0}, {Obj: 1 << 19, Distance: 12}, {Obj: 7, Distance: 3},
			},
			Holds: []ids.ObjID{1, 2, 3},
		}),
		mk(msg.BackCall{
			Trace:     ids.TraceID{Initiator: 6, Seq: 21},
			Caller:    ids.FrameID{Site: 2, Seq: 19},
			Initiator: 6,
			Kind:      msg.StepLocal,
			Inref:     ids.ObjID(88),
			Outref:    ids.MakeRef(5, 42),
		}),
		mk(msg.BackReply{
			Trace:        ids.TraceID{Initiator: 6, Seq: 7},
			Caller:       ids.FrameID{Site: 2, Seq: 19},
			Result:       msg.VerdictLive,
			Participants: []ids.SiteID{1, 5, 9},
		}),
		mk(msg.Report{Trace: ids.TraceID{Initiator: 1, Seq: 2}, Outcome: msg.VerdictGarbage}),
		mk(msg.LinkBatch{
			Epoch: 2, Base: 41, AckEpoch: 5, AckCum: 1044, AckInc: 1,
			Items: []msg.Message{
				msg.Update{Holds: []ids.ObjID{1, 4}},
				msg.Insert{Target: ids.MakeRef(2, 8), Holder: 1, Pinner: 1},
				msg.InsertAck{Target: ids.MakeRef(2, 9)},
				msg.Report{Trace: ids.TraceID{Initiator: 3, Seq: 4}, Outcome: msg.VerdictLive},
			},
		}),
	}
}

// WireCodecBench measures every registered codec over the wireMix: iters
// full passes of encode+decode per codec. Alloc counts come from the
// runtime's Mallocs counter, so the measurement loop must not be concurrent
// with other work (dgcbench runs it alone). Binary is the only codec since
// the gob fallback's removal; historical gob numbers are in BENCH_PR8.json.
func WireCodecBench(iters int) ([]WireCodecRow, error) {
	if iters <= 0 {
		iters = 2000
	}
	mix := wireMix()
	codecs := []wire.Codec{wire.Binary{}}
	rows := make([]WireCodecRow, 0, len(codecs))
	for _, c := range codecs {
		roundTrip := func() (int64, error) {
			var bytes int64
			for i := range mix {
				buf := wire.GetBuffer()
				frame, err := c.Encode(&mix[i], buf)
				if err != nil {
					wire.PutBuffer(buf)
					return 0, fmt.Errorf("wire bench: %s encode: %w", c.Name(), err)
				}
				bytes += int64(len(frame))
				if _, err := c.Decode(frame); err != nil {
					wire.PutBuffer(frame)
					return 0, fmt.Errorf("wire bench: %s decode: %w", c.Name(), err)
				}
				wire.PutBuffer(frame)
			}
			return bytes, nil
		}
		// Warm up the buffer pools before measuring.
		if _, err := roundTrip(); err != nil {
			return nil, err
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		var bytes int64
		for i := 0; i < iters; i++ {
			n, err := roundTrip()
			if err != nil {
				return nil, err
			}
			bytes = n // per-pass wire volume is identical every pass
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		ops := float64(iters * len(mix))
		rows = append(rows, WireCodecRow{
			Codec:       c.Name(),
			MsgsPerSec:  ops / elapsed.Seconds(),
			BytesPerMsg: float64(bytes) / float64(len(mix)),
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / ops,
		})
	}
	return rows, nil
}

// WireCodecTable renders the codec throughput rows.
func WireCodecTable(rows []WireCodecRow) *Table {
	t := &Table{
		Title:  "C17a: wire codec throughput (encode+decode round trip, protocol mix)",
		Header: []string{"codec", "msgs/sec", "bytes/msg", "allocs/op"},
		Caption: "representative protocol message mix; binary is the only framing " +
			"(the gob fallback was removed, format byte 0x00 stays reserved)",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Codec,
			fmt.Sprintf("%.0f", r.MsgsPerSec),
			fmt.Sprintf("%.1f", r.BytesPerMsg),
			fmt.Sprintf("%.2f", r.AllocsPerOp),
		})
	}
	return t
}

// WireBatchRow is one batching setting's count bundle: the logical
// back-trace message count for a controlled single trace against the
// paper's 2E+P−1 bound, plus frame/byte/collection totals from a full
// two-ring collection showing what batching coalesced.
type WireBatchRow struct {
	Setting   string
	Sites     int   // P
	InterSite int   // E
	BackMsgs  int64 // BackCall+BackReply+Report during the trace window
	Predicted int64 // 2E + P - 1
	Collected int   // objects collected in the full-collection run
	Logical   int64 // full run: msg.total (leaves)
	Frames    int64 // full run: wire.frames (physical envelopes)
	Bytes     int64 // full run: wire.bytes (binary codec)
}

// WireBatch re-runs the C13 measurement under the binary codec with and
// without batching. Batching must be invisible to the logical counts — the
// controlled back trace still costs exactly 2E+P−1 messages and the full
// collection reclaims the same objects — while the physical frame count
// drops below the logical count (coalescing). Stepped mode keeps every run
// deterministic.
func WireBatch(sites int) ([]WireBatchRow, error) {
	settings := []struct {
		name      string
		piggyback bool
	}{{"unbatched", false}, {"batched", true}}
	rows := make([]WireBatchRow, 0, len(settings))
	for _, set := range settings {
		row, err := wireTraceWindow(sites, set.name, set.piggyback)
		if err != nil {
			return nil, err
		}
		if err := wireFullCollection(&row, set.piggyback); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// wireTraceWindow runs the controlled single-trace measurement: a garbage
// ring, one back trace, message counts diffed over the trace window.
func wireTraceWindow(sites int, name string, piggyback bool) (WireBatchRow, error) {
	spec := workload.Ring(sites)
	c := cluster.New(cluster.Options{
		NumSites:           sites,
		SuspicionThreshold: 3,
		BackThreshold:      7,
		ThresholdBump:      4,
		Codec:              wire.Binary{},
		Piggyback:          piggyback,
	})
	defer c.Close()
	if _, err := workload.Build(c, spec); err != nil {
		return WireBatchRow{}, err
	}
	c.RunRounds(10)
	before := c.Metrics()

	started := false
	for _, s := range c.Sites() {
		for _, o := range s.Outrefs() {
			if !o.Clean {
				if _, ok := s.StartBackTrace(o.Target); ok {
					started = true
				}
				break
			}
		}
		if started {
			break
		}
	}
	if !started {
		return WireBatchRow{}, fmt.Errorf("wire batch: no suspected outref on the %d-site ring (%s)", sites, name)
	}
	c.Settle()
	after := c.Metrics()

	e := spec.InterSiteEdges()
	p := spec.SitesTouched()
	return WireBatchRow{
		Setting:   name,
		Sites:     p,
		InterSite: e,
		BackMsgs: after.Get("msg.BackCall") - before.Get("msg.BackCall") +
			after.Get("msg.BackReply") - before.Get("msg.BackReply") +
			after.Get("msg.Report") - before.Get("msg.Report"),
		Predicted: int64(2*e + p - 1),
	}, nil
}

// wireFullCollection fills in the physical-traffic half of a row: two
// interleaved garbage rings collected to stability, so sites emit several
// same-destination messages per step and batching has work to do.
func wireFullCollection(row *WireBatchRow, piggyback bool) error {
	c := cluster.New(cluster.Options{
		NumSites:           4,
		SuspicionThreshold: 3,
		BackThreshold:      7,
		ThresholdBump:      4,
		AutoBackTrace:      true,
		Codec:              wire.Binary{},
		Piggyback:          piggyback,
	})
	defer c.Close()
	c.BuildRing()
	c.BuildRing()
	_, collected := c.CollectUntilStable(40)
	snap := c.Metrics()
	row.Collected = collected
	row.Logical = snap.Get("msg.total")
	row.Frames = snap.Get("wire.frames")
	row.Bytes = snap.Get("wire.bytes")
	return nil
}

// WireBatchTable renders the batching rows.
func WireBatchTable(rows []WireBatchRow) *Table {
	t := &Table{
		Title: "C17b: batching vs the 2E+P-1 bound (binary codec, stepped ring)",
		Header: []string{"setting", "P(sites)", "E(refs)", "trace-msgs", "2E+P-1",
			"collected", "logical-total", "frames", "bytes"},
		Caption: "logical counts (msg.total, per leaf) are invariant under batching; " +
			"only the physical frame count shrinks",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Setting,
			fmt.Sprint(r.Sites), fmt.Sprint(r.InterSite),
			fmt.Sprint(r.BackMsgs), fmt.Sprint(r.Predicted), fmt.Sprint(r.Collected),
			fmt.Sprint(r.Logical), fmt.Sprint(r.Frames), fmt.Sprint(r.Bytes),
		})
	}
	return t
}

// CheckWire enforces the CI gate for C17. With the gob fallback removed the
// codec gates are absolute rather than relative:
//
//   - the binary codec's frames must stay compact (the mix's gob frames ran
//     past 100 bytes/msg; binary sits near 30) and its round trip must stay
//     allocation-light;
//   - batching must leave the logical back-trace cost at exactly 2E+P−1 and
//     strictly reduce physical frames below the logical count, while the
//     unbatched run's frames match its logical count one-to-one.
func CheckWire(codecRows []WireCodecRow, batchRows []WireBatchRow) error {
	var binary *WireCodecRow
	for i := range codecRows {
		if codecRows[i].Codec == "binary" {
			binary = &codecRows[i]
		}
	}
	if binary == nil {
		return fmt.Errorf("check: wire codec rows missing binary")
	}
	if binary.MsgsPerSec <= 0 {
		return fmt.Errorf("check: binary codec measured no throughput")
	}
	if binary.BytesPerMsg > 64 {
		return fmt.Errorf("check: binary frames bloated to %.1f bytes/msg (want <= 64 on the protocol mix)",
			binary.BytesPerMsg)
	}
	if binary.AllocsPerOp > 16 {
		return fmt.Errorf("check: binary codec round trip allocates %.2f/op (want <= 16)",
			binary.AllocsPerOp)
	}
	if len(batchRows) == 0 {
		return fmt.Errorf("check: no wire batch rows")
	}
	for i := 1; i < len(batchRows); i++ {
		if batchRows[i].Collected != batchRows[0].Collected {
			return fmt.Errorf("check: %s collected %d objects, %s collected %d — batching changed outcomes",
				batchRows[i].Setting, batchRows[i].Collected, batchRows[0].Setting, batchRows[0].Collected)
		}
	}
	for _, r := range batchRows {
		if r.BackMsgs != r.Predicted {
			return fmt.Errorf("check: %s back trace cost %d messages, want exactly %d (2E+P-1)",
				r.Setting, r.BackMsgs, r.Predicted)
		}
		switch r.Setting {
		case "unbatched":
			if r.Frames != r.Logical {
				return fmt.Errorf("check: unbatched frames (%d) != logical messages (%d)", r.Frames, r.Logical)
			}
		case "batched":
			if r.Frames >= r.Logical {
				return fmt.Errorf("check: batching did not coalesce (frames %d >= logical %d)", r.Frames, r.Logical)
			}
		}
	}
	return nil
}

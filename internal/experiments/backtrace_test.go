package experiments

import "testing"

// TestBacktraceExperimentGate runs the C18 experiment at the same
// parameters CI uses (dgcbench -exp backtrace -check) and pushes the rows
// through the gate: both regimes collect every planted cycle, and the
// engine spends >=5x fewer traces and BackCall messages than the storm
// baseline.
func TestBacktraceExperimentGate(t *testing.T) {
	rows, err := BacktraceTraffic(4, 40, 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckBacktrace(rows); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%s: traces %d, backcalls %d, memo %d, deferred %d, peak batch %d, collected %v",
			r.Mode, r.TracesStarted, r.BackCalls, r.MemoHits, r.Deferred, r.PeakBatch, r.Collected)
	}
}

// TestCheckBacktraceRejects exercises the gate's failure arms so a broken
// experiment cannot silently pass CI.
func TestCheckBacktraceRejects(t *testing.T) {
	good := []BacktraceRow{
		{Mode: "baseline", TracesStarted: 56, BackCalls: 2631, Collected: true},
		{Mode: "engine", TracesStarted: 9, BackCalls: 228, Collected: true},
	}
	if err := CheckBacktrace(good); err != nil {
		t.Fatalf("good rows rejected: %v", err)
	}

	if err := CheckBacktrace(good[:1]); err == nil {
		t.Error("missing engine row passed the gate")
	}

	uncollected := append([]BacktraceRow(nil), good...)
	uncollected[1].Collected = false
	if err := CheckBacktrace(uncollected); err == nil {
		t.Error("uncollected garbage passed the gate")
	}

	idle := append([]BacktraceRow(nil), good...)
	idle[1].TracesStarted = 0
	if err := CheckBacktrace(idle); err == nil {
		t.Error("engine regime with no work passed the gate")
	}

	weakTraces := append([]BacktraceRow(nil), good...)
	weakTraces[1].TracesStarted = 20 // only 2.8x
	if err := CheckBacktrace(weakTraces); err == nil {
		t.Error("sub-5x traces reduction passed the gate")
	}

	weakCalls := append([]BacktraceRow(nil), good...)
	weakCalls[1].BackCalls = 1000 // only 2.6x
	if err := CheckBacktrace(weakCalls); err == nil {
		t.Error("sub-5x BackCall reduction passed the gate")
	}
}

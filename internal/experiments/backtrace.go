package experiments

import (
	"fmt"

	"backtrace/internal/cluster"
	"backtrace/internal/ids"
	"backtrace/internal/metrics"
)

// BacktraceRow records the back-trace traffic one scheduling regime spent
// collecting the same planted hub-and-petals garbage structure.
type BacktraceRow struct {
	Mode          string  `json:"mode"`
	TracesStarted int64   `json:"traces_started"`
	BackCalls     int64   `json:"back_calls"`
	MemoHits      int64   `json:"memo_hits"`
	Joined        int64   `json:"joined"`
	Deferred      int64   `json:"deferred"`
	PeakInflight  int64   `json:"peak_inflight"`
	PeakBatch     int64   `json:"peak_batch"`
	Cycles        int     `json:"cycles"`
	Collected     bool    `json:"collected"`
	TracesPerCyc  float64 `json:"traces_per_cycle"`
	CallsPerCyc   float64 `json:"back_calls_per_cycle"`
}

// BacktraceTraffic is experiment C18: the cost of the trace-storm regime
// versus the trace-traffic engine (multi-suspect batching, Live-verdict
// memoization, and the in-flight admission cap) on a workload built to
// trigger storms.
//
// The planted garbage is a hub-and-petals structure: one garbage chain of
// `hub` objects strung across every site, and `petals` cycles that each run
// through the full hub — petal k is hub[last]→P_k→hub[0]. Every petal
// outref at the hub's tail site shares the same inset (the tail hub inref),
// so their back-trace cones are identical, and every hub hop is itself a
// suspect once the cycle's distance estimates pass the back threshold.
// Distances grow in lockstep (all sites run their local trace before any
// message is delivered), so all suspects cross the threshold in the same
// round — the adversarial §4.7 regime.
//
// A live chain of `liveDepth` cross-site hops hangs from a root alongside,
// deep enough that its tail hops are suspects too: the traces it triggers
// prove Live, which is what the memoization layer short-circuits.
//
// The baseline row runs the legacy trigger: one trace per suspect, no cap,
// no batching, no memo — a storm of duplicate traversals of the same cone.
// The engine row runs MaxInflightTraces=1, TraceBatch=petals, MemoizeLive
// on. Both must collect every planted cycle; the engine must get there
// with ≥5x fewer traces and ≥5x fewer BackCall messages per collected
// cycle (the CheckBacktrace gate).
func BacktraceTraffic(sites, hub, petals, liveDepth int) ([]BacktraceRow, error) {
	var rows []BacktraceRow
	for _, mode := range []string{"baseline", "engine"} {
		opts := cluster.Options{
			NumSites:           sites,
			SuspicionThreshold: 3,
			BackThreshold:      7,
			ThresholdBump:      4,
			AutoBackTrace:      true,
		}
		if mode == "engine" {
			opts.MaxInflightTraces = 1
			opts.TraceBatch = petals
			opts.MemoizeLive = true
		}
		c := cluster.New(opts)

		// Hub chain: hub[i] lives on site (i%sites)+1, so every hop
		// crosses sites. hub's length is a multiple of the site count, so
		// the tail sits on the last site and the petals (on site 1, next
		// to hub[0]) are remote from it.
		hubObjs := make([]ids.Ref, hub)
		for i := range hubObjs {
			hubObjs[i] = c.Site(ids.SiteID(i%sites + 1)).NewObject()
		}
		for i := 0; i+1 < hub; i++ {
			c.MustLink(hubObjs[i], hubObjs[i+1])
		}
		tail := hubObjs[hub-1]
		for k := 0; k < petals; k++ {
			p := c.Site(1).NewObject()
			c.MustLink(tail, p)
			c.MustLink(p, hubObjs[0])
		}

		// Live chain: root@1 → l1@2 → l2@3 → …, deeper than the back
		// threshold so its tail hops become (live) suspects.
		prev := c.Site(1).NewRootObject()
		for i := 0; i < liveDepth; i++ {
			owner := ids.SiteID(i%sites + 1)
			if owner == prev.Site {
				owner = owner%ids.SiteID(sites) + 1
			}
			obj := c.Site(owner).NewObject()
			c.MustLink(prev, obj)
			prev = obj
		}
		c.Settle()

		// Lockstep rounds: every site commits a local trace before any
		// message is delivered, so suspects trigger simultaneously.
		for round := 0; round < 40 && c.GarbageCount() > 0; round++ {
			for _, s := range c.Sites() {
				s.RunLocalTrace()
			}
			c.Settle()
		}

		snap := c.Counters().Snapshot()
		row := BacktraceRow{
			Mode:          mode,
			TracesStarted: snap[metrics.BackTracesStarted],
			BackCalls:     snap["msg.BackCall"],
			MemoHits:      snap[metrics.BackTraceMemoHits],
			Joined:        snap[metrics.BackTraceJoined],
			Deferred:      snap[metrics.BackTraceDeferred],
			PeakInflight:  snap[metrics.BackTraceInflight],
			PeakBatch:     snap[metrics.BackTraceBatchSize],
			Cycles:        petals,
			Collected:     c.GarbageCount() == 0,
		}
		if petals > 0 {
			row.TracesPerCyc = float64(row.TracesStarted) / float64(petals)
			row.CallsPerCyc = float64(row.BackCalls) / float64(petals)
		}
		rows = append(rows, row)
		c.Close()
	}
	return rows, nil
}

// BacktraceTable renders BacktraceTraffic rows.
func BacktraceTable(rows []BacktraceRow) *Table {
	t := &Table{
		Title: "C18: back-trace traffic engine vs trace-storm baseline " +
			"(batching + memoization + admission cap)",
		Header: []string{"mode", "traces", "backcalls", "traces/cyc", "calls/cyc",
			"memo", "joined", "deferred", "peak batch", "collected"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Mode,
			fmt.Sprint(r.TracesStarted),
			fmt.Sprint(r.BackCalls),
			fmt.Sprintf("%.2f", r.TracesPerCyc),
			fmt.Sprintf("%.2f", r.CallsPerCyc),
			fmt.Sprint(r.MemoHits),
			fmt.Sprint(r.Joined),
			fmt.Sprint(r.Deferred),
			fmt.Sprint(r.PeakBatch),
			fmt.Sprint(r.Collected),
		})
	}
	return t
}

// CheckBacktrace is the C18 CI gate: both regimes collect every planted
// cycle, and the engine spends at least 5x fewer traces and 5x fewer
// BackCall messages per collected cycle than the storm baseline.
func CheckBacktrace(rows []BacktraceRow) error {
	var base, engine *BacktraceRow
	for i := range rows {
		switch rows[i].Mode {
		case "baseline":
			base = &rows[i]
		case "engine":
			engine = &rows[i]
		}
	}
	if base == nil || engine == nil {
		return fmt.Errorf("check: backtrace rows missing a mode (have %d rows)", len(rows))
	}
	for _, r := range []*BacktraceRow{base, engine} {
		if !r.Collected {
			return fmt.Errorf("check: %s regime left planted garbage uncollected", r.Mode)
		}
	}
	if engine.TracesStarted <= 0 || engine.BackCalls <= 0 {
		return fmt.Errorf("check: engine regime recorded no back-trace work")
	}
	if ratio := float64(base.TracesStarted) / float64(engine.TracesStarted); ratio < 5 {
		return fmt.Errorf("check: traces started per collected cycle improved only %.2fx (want >= 5x): baseline %d, engine %d",
			ratio, base.TracesStarted, engine.TracesStarted)
	}
	if ratio := float64(base.BackCalls) / float64(engine.BackCalls); ratio < 5 {
		return fmt.Errorf("check: BackCall messages per collected cycle improved only %.2fx (want >= 5x): baseline %d, engine %d",
			ratio, base.BackCalls, engine.BackCalls)
	}
	return nil
}

package experiments

import (
	"fmt"

	"backtrace/internal/obs"
	"backtrace/internal/workload"
)

// --- C13: message complexity re-verified through the typed registry --------

// TelemetryRow is one row of the registry-based complexity experiment: the
// per-type message counts read from the typed metrics snapshot, and the
// participant count read from the assembled span tree, for one back trace
// over an n-site garbage ring.
type TelemetryRow struct {
	Workload     string
	Sites        int   // P: participant sites
	InterSite    int   // E: inter-site references on the cycle
	BackCalls    int64 // from snapshot counter msg.BackCall
	BackReplies  int64 // from snapshot counter msg.BackReply
	Reports      int64 // from snapshot counter msg.Report
	Total        int64
	Predicted    int64 // 2E + (P-1)
	Participants int   // closed participant spans in the trace's tree
	RTTSamples   int64 // backtrace.rtt_seconds observations for the trace
}

// TelemetryComplexity repeats the C1 measurement for a garbage ring, but
// through the redesigned telemetry surface: message counts come from typed
// registry snapshots (Cluster.Metrics) rather than the legacy counter map,
// and the participant count P is cross-checked against the back trace's
// assembled span tree rather than trusted from the workload spec. Both
// views must agree with the paper's 2E+P bound (2E + P−1 on the wire,
// since the initiator reports to itself locally).
func TelemetryComplexity(sites int) (TelemetryRow, error) {
	spec := workload.Ring(sites)
	c := clusterFor(spec.Sites, false)
	defer c.Close()
	if _, err := workload.Build(c, spec); err != nil {
		return TelemetryRow{}, err
	}
	c.RunRounds(10) // propagate distances until the ring is suspected
	before := c.Metrics()

	started := false
	for _, s := range c.Sites() {
		for _, o := range s.Outrefs() {
			if !o.Clean {
				if _, ok := s.StartBackTrace(o.Target); ok {
					started = true
				}
				break
			}
		}
		if started {
			break
		}
	}
	if !started {
		return TelemetryRow{}, fmt.Errorf("telemetry: no suspected outref on the %d-site ring", sites)
	}
	c.Settle()
	after := c.Metrics()

	e := spec.InterSiteEdges()
	p := spec.SitesTouched()
	row := TelemetryRow{
		Workload:    spec.Name,
		Sites:       p,
		InterSite:   e,
		BackCalls:   after.Get("msg.BackCall") - before.Get("msg.BackCall"),
		BackReplies: after.Get("msg.BackReply") - before.Get("msg.BackReply"),
		Reports:     after.Get("msg.Report") - before.Get("msg.Report"),
		Predicted:   int64(2*e + p - 1),
		RTTSamples: after.Histograms[obs.MetricBackTraceRTT].Count -
			before.Histograms[obs.MetricBackTraceRTT].Count,
	}
	row.Total = row.BackCalls + row.BackReplies + row.Reports

	// Cross-check P against the span tree the collector assembled for the
	// garbage trace (distance propagation may have run earlier Live traces,
	// so pick the complete garbage-verdict tree).
	for _, tree := range c.Spans().Trees() {
		if tree.Root != nil && tree.Complete() && tree.Root.Verdict == 0 /* garbage */ {
			row.Participants = len(tree.Participants)
		}
	}
	return row, nil
}

// TelemetryTable renders a TelemetryComplexity row.
func TelemetryTable(rows []TelemetryRow) *Table {
	t := &Table{
		Title: "C13: message complexity via the typed registry and span trees",
		Header: []string{"workload", "P(sites)", "E(refs)", "calls", "replies",
			"reports", "total", "2E+P-1", "span-participants", "rtt-samples"},
		Caption: "typed Cluster.Metrics() diffs; P cross-checked against the assembled span tree",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload,
			fmt.Sprint(r.Sites), fmt.Sprint(r.InterSite),
			fmt.Sprint(r.BackCalls), fmt.Sprint(r.BackReplies), fmt.Sprint(r.Reports),
			fmt.Sprint(r.Total), fmt.Sprint(r.Predicted),
			fmt.Sprint(r.Participants), fmt.Sprint(r.RTTSamples),
		})
	}
	return t
}

package experiments

import "testing"

// TestWireExperimentGate runs the C17 experiment at reduced iterations and
// pushes the rows through the same gate CI uses (dgcbench -exp wire -check):
// binary frames compact and allocation-light, back traces exactly 2E+P-1
// with and without batching, and batching coalescing frames without
// changing collection outcomes.
func TestWireExperimentGate(t *testing.T) {
	codecRows, err := WireCodecBench(200)
	if err != nil {
		t.Fatal(err)
	}
	batchRows, err := WireBatch(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckWire(codecRows, batchRows); err != nil {
		t.Fatal(err)
	}
	for _, r := range codecRows {
		t.Logf("%s: %.0f msgs/sec, %.1f bytes/msg, %.2f allocs/op",
			r.Codec, r.MsgsPerSec, r.BytesPerMsg, r.AllocsPerOp)
	}
	for _, r := range batchRows {
		t.Logf("%s: trace %d/%d, collected %d, frames %d for %d logical",
			r.Setting, r.BackMsgs, r.Predicted, r.Collected, r.Frames, r.Logical)
	}
}

// TestCheckWireRejects exercises the gate's failure arms so a broken
// experiment cannot silently pass CI.
func TestCheckWireRejects(t *testing.T) {
	goodCodec := []WireCodecRow{
		{Codec: "binary", MsgsPerSec: 5000, BytesPerMsg: 20, AllocsPerOp: 3},
	}
	goodBatch := []WireBatchRow{
		{Setting: "unbatched", BackMsgs: 17, Predicted: 17, Collected: 8, Logical: 58, Frames: 58},
		{Setting: "batched", BackMsgs: 17, Predicted: 17, Collected: 8, Logical: 58, Frames: 47},
	}
	if err := CheckWire(goodCodec, goodBatch); err != nil {
		t.Fatalf("good rows rejected: %v", err)
	}

	if err := CheckWire(nil, goodBatch); err == nil {
		t.Error("missing binary row passed the gate")
	}

	bloated := append([]WireCodecRow(nil), goodCodec...)
	bloated[0].BytesPerMsg = 300
	if err := CheckWire(bloated, goodBatch); err == nil {
		t.Error("bloated binary frames passed the gate")
	}

	allocHeavy := append([]WireCodecRow(nil), goodCodec...)
	allocHeavy[0].AllocsPerOp = 40
	if err := CheckWire(allocHeavy, goodBatch); err == nil {
		t.Error("alloc-heavy binary codec passed the gate")
	}

	inexact := []WireBatchRow{goodBatch[0], goodBatch[1]}
	inexact[1].BackMsgs = 18
	if err := CheckWire(goodCodec, inexact); err == nil {
		t.Error("inexact batched trace count passed the gate")
	}

	uncoalesced := []WireBatchRow{goodBatch[0], {Setting: "batched", BackMsgs: 17, Predicted: 17, Collected: 8, Logical: 58, Frames: 58}}
	if err := CheckWire(goodCodec, uncoalesced); err == nil {
		t.Error("uncoalesced batched run passed the gate")
	}

	divergent := []WireBatchRow{goodBatch[0], {Setting: "batched", BackMsgs: 17, Predicted: 17, Collected: 7, Logical: 58, Frames: 47}}
	if err := CheckWire(goodCodec, divergent); err == nil {
		t.Error("divergent collection outcome passed the gate")
	}
}

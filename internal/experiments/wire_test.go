package experiments

import "testing"

// TestWireExperimentGate runs the C17 experiment at reduced iterations and
// pushes the rows through the same gate CI uses (dgcbench -exp wire -check):
// binary no slower/larger/more alloc-hungry than gob, back traces exactly
// 2E+P-1 with and without batching, and batching coalescing frames without
// changing collection outcomes.
func TestWireExperimentGate(t *testing.T) {
	codecRows, err := WireCodecBench(200)
	if err != nil {
		t.Fatal(err)
	}
	batchRows, err := WireBatch(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckWire(codecRows, batchRows); err != nil {
		t.Fatal(err)
	}
	for _, r := range codecRows {
		t.Logf("%s: %.0f msgs/sec, %.1f bytes/msg, %.2f allocs/op",
			r.Codec, r.MsgsPerSec, r.BytesPerMsg, r.AllocsPerOp)
	}
	for _, r := range batchRows {
		t.Logf("%s: trace %d/%d, collected %d, frames %d for %d logical",
			r.Setting, r.BackMsgs, r.Predicted, r.Collected, r.Frames, r.Logical)
	}
}

// TestCheckWireRejects exercises the gate's failure arms so a broken
// experiment cannot silently pass CI.
func TestCheckWireRejects(t *testing.T) {
	goodCodec := []WireCodecRow{
		{Codec: "gob", MsgsPerSec: 1000, BytesPerMsg: 300, AllocsPerOp: 200},
		{Codec: "binary", MsgsPerSec: 5000, BytesPerMsg: 20, AllocsPerOp: 3},
	}
	goodBatch := []WireBatchRow{
		{Setting: "unbatched", BackMsgs: 17, Predicted: 17, Collected: 8, Logical: 58, Frames: 58},
		{Setting: "batched", BackMsgs: 17, Predicted: 17, Collected: 8, Logical: 58, Frames: 47},
	}
	if err := CheckWire(goodCodec, goodBatch); err != nil {
		t.Fatalf("good rows rejected: %v", err)
	}

	slow := append([]WireCodecRow(nil), goodCodec...)
	slow[1].MsgsPerSec = 500 // worse than 0.9x gob
	if err := CheckWire(slow, goodBatch); err == nil {
		t.Error("slow binary codec passed the gate")
	}

	inexact := []WireBatchRow{goodBatch[0], goodBatch[1]}
	inexact[1].BackMsgs = 18
	if err := CheckWire(goodCodec, inexact); err == nil {
		t.Error("inexact batched trace count passed the gate")
	}

	uncoalesced := []WireBatchRow{goodBatch[0], {Setting: "batched", BackMsgs: 17, Predicted: 17, Collected: 8, Logical: 58, Frames: 58}}
	if err := CheckWire(goodCodec, uncoalesced); err == nil {
		t.Error("uncoalesced batched run passed the gate")
	}

	divergent := []WireBatchRow{goodBatch[0], {Setting: "batched", BackMsgs: 17, Predicted: 17, Collected: 7, Logical: 58, Frames: 47}}
	if err := CheckWire(goodCodec, divergent); err == nil {
		t.Error("divergent collection outcome passed the gate")
	}
}

package experiments

import (
	"fmt"

	"backtrace/internal/cluster"
	"backtrace/internal/metrics"
)

// TimelineRow traces a garbage cycle's lifecycle in rounds: when its
// iorefs first crossed the suspicion threshold, when the first back trace
// was triggered, and when it was fully reclaimed.
type TimelineRow struct {
	Sites          int
	T              int // suspicion threshold
	T2             int // back threshold
	RoundSuspected int // first round with every cycle ioref suspected
	RoundTraced    int // first round a back trace started
	RoundCollected int // first round with the cycle fully gone
}

// Timeline measures how the distance heuristic's pacing translates into
// collection latency (Sections 3 and 4.3): a cycle is suspected once
// distances pass T, back-traced once they pass T2, and collected on the
// following round. Everything is measured in rounds (each site traces
// once per round).
func Timeline(sizes []int, t, t2 int) []TimelineRow {
	var rows []TimelineRow
	for _, n := range sizes {
		c := cluster.New(cluster.Options{
			NumSites:           n,
			SuspicionThreshold: t,
			BackThreshold:      t2,
			ThresholdBump:      4,
			AutoBackTrace:      true,
		})
		objs := c.BuildRing()
		row := TimelineRow{Sites: n, T: t, T2: t2}

		for round := 1; round <= 80; round++ {
			tracesBefore := c.Counters().Get(metrics.BackTracesStarted)
			c.RunRound()

			if row.RoundSuspected == 0 {
				allSuspected := true
				for _, o := range objs {
					if c.Site(o.Site).InrefDistance(o.Obj) <= t {
						allSuspected = false
						break
					}
				}
				if allSuspected {
					row.RoundSuspected = round
				}
			}
			if row.RoundTraced == 0 && c.Counters().Get(metrics.BackTracesStarted) > tracesBefore {
				row.RoundTraced = round
			}
			if row.RoundCollected == 0 && c.GarbageCount() == 0 {
				row.RoundCollected = round
				break
			}
		}
		rows = append(rows, row)
		c.Close()
	}
	return rows
}

// TimelineTable renders Timeline rows.
func TimelineTable(rows []TimelineRow) *Table {
	t := &Table{
		Title:   "collection timeline: rounds from garbage to reclaimed",
		Header:  []string{"sites", "T", "T2", "suspected", "first trace", "collected"},
		Caption: "distance grows ~sites per round on a ring, so latency shrinks as cycles grow",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.Sites), fmt.Sprint(r.T), fmt.Sprint(r.T2),
			fmt.Sprint(r.RoundSuspected), fmt.Sprint(r.RoundTraced), fmt.Sprint(r.RoundCollected),
		})
	}
	return t
}

// Package experiments implements the paper-reproduction experiment suite
// indexed in DESIGN.md (rows C1–C10). Each experiment builds its workload,
// runs the collector (and baselines where relevant), and returns printable
// rows; cmd/dgcbench renders them as tables and the root benchmarks wrap
// them as testing.B targets. EXPERIMENTS.md records sample output next to
// the paper's claims.
package experiments

import (
	"fmt"
	"strings"

	"backtrace/internal/cluster"
	"backtrace/internal/ids"
	"backtrace/internal/metrics"
	"backtrace/internal/workload"
)

// Transport carries the shared -codec/-batch/-flush-interval flag set
// (cluster.TransportConfig, registered by cmd/dgcbench like the other
// commands) into every standard experiment cluster. The default "none"
// keeps the in-process fast path so `go test -bench` numbers are
// unaffected; dgcbench overrides it from its flags. Experiment clusters
// are stepped, so Batch maps to deterministic site-level piggybacking —
// the same mapping dgcsim's stepped worlds use — not the async session
// batcher. The C17 wire experiment ignores this and pins its own codecs,
// so its gate stays flag-independent.
var Transport = cluster.TransportConfig{Codec: "none"}

// clusterFor builds the standard experiment cluster.
func clusterFor(sites int, auto bool) *cluster.Cluster {
	opts := cluster.Options{
		NumSites:           sites,
		SuspicionThreshold: 3,
		BackThreshold:      7,
		ThresholdBump:      4,
		AutoBackTrace:      auto,
	}
	if codec, err := Transport.ResolveCodec(); err == nil {
		opts.Codec = codec
	}
	opts.Piggyback = opts.Piggyback || Transport.Batch > 0
	return cluster.New(opts)
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "-- %s\n", t.Caption)
	}
	return b.String()
}

// --- C1: message complexity 2E+P ------------------------------------------

// MessagesRow is one row of the message-complexity experiment.
type MessagesRow struct {
	Workload    string
	Sites       int // P: participant sites
	InterSite   int // E: inter-site references traversed
	BackCalls   int64
	BackReplies int64
	Reports     int64
	Total       int64
	Predicted   int64 // 2E + (P-1): the initiator reports to itself locally
}

// MessagesPerTrace measures the messages one back trace sends over garbage
// cycles of various shapes, against the paper's 2E+P bound (Section 4.6).
// Our implementation delivers the initiator's own report locally, so the
// wire prediction is 2E + (P-1).
func MessagesPerTrace(specs []workload.Spec) ([]MessagesRow, error) {
	var rows []MessagesRow
	for _, spec := range specs {
		c := clusterFor(spec.Sites, false)
		refs, err := workload.Build(c, spec)
		if err != nil {
			c.Close()
			return nil, err
		}
		// Propagate distances until everything on the cycle is suspected.
		c.RunRounds(10)
		before := c.Counters().Snapshot()

		// Start one back trace from a suspected outref of site 1 (any
		// cycle member works; pick deterministically).
		started := false
		for _, s := range c.Sites() {
			for _, o := range s.Outrefs() {
				if !o.Clean {
					if _, ok := s.StartBackTrace(o.Target); ok {
						started = true
					}
					break
				}
			}
			if started {
				break
			}
		}
		if !started {
			c.Close()
			return nil, fmt.Errorf("messages: no suspected outref in %s", spec.Name)
		}
		c.Settle()
		after := c.Counters().Snapshot()

		e := spec.InterSiteEdges()
		p := spec.SitesTouched()
		row := MessagesRow{
			Workload:    spec.Name,
			Sites:       p,
			InterSite:   e,
			BackCalls:   after["msg.BackCall"] - before["msg.BackCall"],
			BackReplies: after["msg.BackReply"] - before["msg.BackReply"],
			Reports:     after["msg.Report"] - before["msg.Report"],
			Predicted:   int64(2*e + p - 1),
		}
		row.Total = row.BackCalls + row.BackReplies + row.Reports
		rows = append(rows, row)
		_ = refs
		c.Close()
	}
	return rows, nil
}

// MessagesTable renders MessagesPerTrace rows.
func MessagesTable(rows []MessagesRow) *Table {
	t := &Table{
		Title:   "C1: back-trace message complexity (paper: 2E+P)",
		Header:  []string{"workload", "P(sites)", "E(refs)", "calls", "replies", "reports", "total", "2E+P-1"},
		Caption: "one back trace per workload; initiator's own report is local, hence P-1 report messages",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload,
			fmt.Sprint(r.Sites), fmt.Sprint(r.InterSite),
			fmt.Sprint(r.BackCalls), fmt.Sprint(r.BackReplies), fmt.Sprint(r.Reports),
			fmt.Sprint(r.Total), fmt.Sprint(r.Predicted),
		})
	}
	return t
}

// --- C2: the distance theorem ----------------------------------------------

// DistanceRow records the minimum estimated distance on a garbage cycle
// after each round.
type DistanceRow struct {
	Sites   int
	Round   int
	MinDist int
	Holds   bool // theorem: MinDist >= Round
}

// DistanceConvergence measures Section 3's theorem — after d rounds every
// ioref of a garbage cycle has estimated distance at least d.
func DistanceConvergence(sizes []int, rounds int) []DistanceRow {
	var rows []DistanceRow
	for _, n := range sizes {
		c := cluster.New(cluster.Options{
			NumSites:           n,
			SuspicionThreshold: 3,
			BackThreshold:      1 << 20, // disable back traces
		})
		objs := c.BuildRing()
		for round := 1; round <= rounds; round++ {
			c.RunRound()
			min := int(^uint(0) >> 1)
			for _, o := range objs {
				if d := c.Site(o.Site).InrefDistance(o.Obj); d < min {
					min = d
				}
			}
			rows = append(rows, DistanceRow{Sites: n, Round: round, MinDist: min, Holds: min >= round})
		}
		c.Close()
	}
	return rows
}

// DistanceTable renders DistanceConvergence rows.
func DistanceTable(rows []DistanceRow) *Table {
	t := &Table{
		Title:   "C2: distance theorem (after d rounds, cycle distances >= d)",
		Header:  []string{"sites", "round d", "min distance", "holds"},
		Caption: "garbage ring; every site traces once per round",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.Sites), fmt.Sprint(r.Round), fmt.Sprint(r.MinDist), fmt.Sprint(r.Holds),
		})
	}
	return t
}

// --- C5: back-threshold tuning ----------------------------------------------

// ThresholdRow records collection behaviour for one back-threshold value.
type ThresholdRow struct {
	BackThreshold  int
	RoundsToClean  int
	TracesStarted  int64
	LiveOutcomes   int64
	GarbageOutcome int64
}

// ThresholdTuning sweeps the initial back threshold T2 on a workload with
// a garbage ring AND a live (rooted) far chain: too low a threshold fires
// premature traces that return Live; too high delays collection
// (Section 4.3).
func ThresholdTuning(t2s []int) []ThresholdRow {
	var rows []ThresholdRow
	for _, t2 := range t2s {
		c := cluster.New(cluster.Options{
			NumSites:           4,
			SuspicionThreshold: 3,
			BackThreshold:      t2,
			ThresholdBump:      4,
			AutoBackTrace:      true,
		})
		// Garbage ring over all 4 sites.
		c.BuildRing()
		// A live chain crossing all sites repeatedly: its tail iorefs are
		// far from the root (distance ~8), i.e. live suspects.
		spec := workload.Chain(4, true)
		for loop := 0; loop < 1; loop++ {
			base := len(spec.Objects)
			for i := 0; i < 4; i++ {
				spec.Objects = append(spec.Objects, workload.ObjSpec{Site: ids.SiteID(i + 1)})
			}
			spec.Edges = append(spec.Edges, [2]int{3, base})
			for i := 0; i+1 < 4; i++ {
				spec.Edges = append(spec.Edges, [2]int{base + i, base + i + 1})
			}
		}
		if _, err := workload.Build(c, spec); err != nil {
			c.Close()
			continue
		}

		// Run a fixed horizon: after the garbage is gone, the live far
		// chain keeps its high distances, so a low back threshold keeps
		// firing abortive (Live) traces until the per-ioref thresholds
		// rise above the distances.
		const horizon = 30
		roundsToClean := horizon
		for r := 1; r <= horizon; r++ {
			c.RunRound()
			if roundsToClean == horizon && c.GarbageCount() == 0 {
				roundsToClean = r
			}
		}
		snap := c.Counters().Snapshot()
		rows = append(rows, ThresholdRow{
			BackThreshold:  t2,
			RoundsToClean:  roundsToClean,
			TracesStarted:  snap[metrics.BackTracesStarted],
			LiveOutcomes:   snap[metrics.BackTracesLive],
			GarbageOutcome: snap[metrics.BackTracesGarbage],
		})
		c.Close()
	}
	return rows
}

// ThresholdTable renders ThresholdTuning rows.
func ThresholdTable(rows []ThresholdRow) *Table {
	t := &Table{
		Title:   "C5: back-threshold tuning (T2 = T + cycle-length estimate)",
		Header:  []string{"T2", "rounds to clean", "traces", "live (abortive)", "garbage"},
		Caption: "low T2: premature Live traces on the live far chain; high T2: delayed collection",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.BackThreshold), fmt.Sprint(r.RoundsToClean),
			fmt.Sprint(r.TracesStarted), fmt.Sprint(r.LiveOutcomes), fmt.Sprint(r.GarbageOutcome),
		})
	}
	return t
}

// --- C4: back-information space ----------------------------------------------

// SpaceRow records back-information size against the O(ni*no) bound.
type SpaceRow struct {
	Workload string
	Site     ids.SiteID
	NI       int // suspected inrefs
	NO       int // suspected outrefs
	Entries  int
	Bound    int
}

// SpaceBound measures stored back information per site for several
// workloads after distances have grown past the suspicion threshold.
func SpaceBound(specs []workload.Spec) ([]SpaceRow, error) {
	var rows []SpaceRow
	for _, spec := range specs {
		c := cluster.New(cluster.Options{
			NumSites:           spec.Sites,
			SuspicionThreshold: 3,
			BackThreshold:      1 << 20,
		})
		if _, err := workload.Build(c, spec); err != nil {
			c.Close()
			return nil, err
		}
		c.RunRounds(8)
		for _, s := range c.Sites() {
			ni, no := 0, 0
			for _, in := range s.Inrefs() {
				if !in.Clean {
					ni++
				}
			}
			for _, o := range s.Outrefs() {
				if !o.Clean {
					no++
				}
			}
			rows = append(rows, SpaceRow{
				Workload: spec.Name,
				Site:     s.ID(),
				NI:       ni,
				NO:       no,
				Entries:  s.BackInfoEntries(),
				Bound:    ni * no,
			})
		}
		c.Close()
	}
	return rows, nil
}

// SpaceTable renders SpaceBound rows.
func SpaceTable(rows []SpaceRow) *Table {
	t := &Table{
		Title:   "C4: back-information space (bound: ni*no pairs)",
		Header:  []string{"workload", "site", "ni", "no", "entries", "ni*no"},
		Caption: "entries = stored (inref,outref) reachability pairs",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, r.Site.String(),
			fmt.Sprint(r.NI), fmt.Sprint(r.NO), fmt.Sprint(r.Entries), fmt.Sprint(r.Bound),
		})
	}
	return t
}

package experiments

import (
	"fmt"

	"backtrace/internal/cluster"
	"backtrace/internal/metrics"
)

// OverlapRow records how many back traces were triggered on one garbage
// cycle under a given scheduling regime.
type OverlapRow struct {
	Sites         int
	Mode          string
	TracesStarted int64
	Garbage       int64
	Live          int64
	Messages      int64
	Collected     bool
}

// Overlap measures the paper's Section 4.7 argument: multiple back traces
// MAY be triggered concurrently on one cycle, but in practice the first
// trace spreads (milliseconds) much faster than local traces recur
// (minutes), so overlap is rare.
//
//   - "interleaved" mode delivers messages after every site's local trace
//     — the realistic regime, where the first trace visits the whole cycle
//     before any other site's distance crosses its back threshold;
//   - "lockstep" mode runs every site's local trace before delivering
//     anything — the adversarial regime where all sites cross the
//     threshold in the same instant and every one starts a trace.
//
// Either way the cycle must be collected and the duplicate traces must
// resolve harmlessly (visit marks are per-trace).
func Overlap(sizes []int) []OverlapRow {
	var rows []OverlapRow
	for _, n := range sizes {
		for _, mode := range []string{"interleaved", "lockstep"} {
			c := cluster.New(cluster.Options{
				NumSites:           n,
				SuspicionThreshold: 3,
				BackThreshold:      7,
				ThresholdBump:      4,
				AutoBackTrace:      true,
			})
			c.BuildRing()

			for round := 0; round < 40 && c.GarbageCount() > 0; round++ {
				switch mode {
				case "interleaved":
					c.RunRound()
				case "lockstep":
					for _, s := range c.Sites() {
						s.RunLocalTrace() // no delivery in between
					}
					c.Settle()
				}
			}
			snap := c.Counters().Snapshot()
			rows = append(rows, OverlapRow{
				Sites:         n,
				Mode:          mode,
				TracesStarted: snap[metrics.BackTracesStarted],
				Garbage:       snap[metrics.BackTracesGarbage],
				Live:          snap[metrics.BackTracesLive],
				Messages:      snap["msg.BackCall"] + snap["msg.BackReply"] + snap["msg.Report"],
				Collected:     c.GarbageCount() == 0,
			})
			c.Close()
		}
	}
	return rows
}

// OverlapTable renders Overlap rows.
func OverlapTable(rows []OverlapRow) *Table {
	t := &Table{
		Title:   "C9: concurrent back traces on one cycle (Section 4.7)",
		Header:  []string{"sites", "schedule", "traces", "garbage", "live", "backtr msgs", "collected"},
		Caption: "interleaved = first trace spreads before others trigger; lockstep = adversarial simultaneous triggering; both must collect",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.Sites), r.Mode,
			fmt.Sprint(r.TracesStarted), fmt.Sprint(r.Garbage), fmt.Sprint(r.Live),
			fmt.Sprint(r.Messages), fmt.Sprint(r.Collected),
		})
	}
	return t
}

package experiments

import (
	"fmt"
	"runtime"
	"time"

	"backtrace/internal/ids"
	"backtrace/internal/site"
	"backtrace/internal/transport"
)

// IncrementalRow is one (scenario, mode) measurement of experiment C15:
// steady-state local-trace cost with and without incremental tracing.
type IncrementalRow struct {
	Scenario string // "idle" or "mutate-1pct"
	Mode     string // "full" or "incremental"
	Objects  int
	Dirty    int // objects mutated per round
	Rounds   int
	NsPerOp  float64 // mean wall time per trace round
	AllocsOp float64 // mean heap allocations per trace round
	Remarks  int64
	Reused   int64 // remarks that reused the previous back information
}

// IncrementalTrace measures experiment C15: the per-round cost of a local
// trace on a heap of the given size, in full-snapshot and incremental mode,
// for an idle heap and for a heap where `dirty` objects gain a monotone edge
// each round. One warmup trace runs before measurement so the incremental
// mode's mandatory first full trace is excluded from the steady state.
func IncrementalTrace(objects, dirty, rounds int) ([]IncrementalRow, error) {
	var out []IncrementalRow
	for _, scenario := range []string{"idle", "mutate-1pct"} {
		for _, incremental := range []bool{false, true} {
			row, err := incrementalRun(scenario, incremental, objects, dirty, rounds)
			if err != nil {
				return nil, err
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func incrementalRun(scenario string, incremental bool, objects, dirty, rounds int) (IncrementalRow, error) {
	net := transport.NewNet(transport.Options{})
	defer net.Close()
	s := site.New(site.Config{
		ID:                 1,
		Network:            net,
		SuspicionThreshold: 3,
		BackThreshold:      1 << 20,
		Incremental:        incremental,
	})
	defer s.Close()

	root := s.NewRootObject()
	objs := make([]ids.Ref, 0, objects)
	prev := root
	for j := 0; j < objects; j++ {
		o := s.NewObject()
		if err := s.AddReference(prev.Obj, o); err != nil {
			return IncrementalRow{}, err
		}
		prev = o
		objs = append(objs, o)
	}
	target := objs[0] // fixed live target for the monotone adds
	s.RunLocalTrace() // warmup: first trace is full in both modes

	mode := "full"
	if incremental {
		mode = "incremental"
	}
	row := IncrementalRow{
		Scenario: scenario, Mode: mode,
		Objects: objects, Rounds: rounds,
	}
	if scenario == "mutate-1pct" {
		row.Dirty = dirty
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	idx := 0
	for i := 0; i < rounds; i++ {
		if scenario == "mutate-1pct" {
			for k := 0; k < dirty; k++ {
				if err := s.AddReference(objs[idx%len(objs)].Obj, target); err != nil {
					return IncrementalRow{}, err
				}
				idx++
			}
		}
		s.RunLocalTrace()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	row.NsPerOp = float64(elapsed.Nanoseconds()) / float64(rounds)
	row.AllocsOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(rounds)
	snap := s.Counters().Snapshot()
	row.Remarks = snap["localtrace.incremental.remarks"]
	row.Reused = snap["localtrace.incremental.outsets_reused"]
	return row, nil
}

// IncrementalTable renders the C15 rows.
func IncrementalTable(rows []IncrementalRow) *Table {
	t := &Table{
		Title:  "C15: incremental local tracing (steady-state trace cost)",
		Header: []string{"scenario", "mode", "objects", "dirty/round", "rounds", "ns/round", "allocs/round", "remarks", "outsets-reused"},
		Caption: "full mode deep-copies and re-marks the whole heap every round; " +
			"incremental mode patches a shadow snapshot and remarks only from the dirty set",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Scenario, r.Mode,
			fmt.Sprintf("%d", r.Objects),
			fmt.Sprintf("%d", r.Dirty),
			fmt.Sprintf("%d", r.Rounds),
			fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%.0f", r.AllocsOp),
			fmt.Sprintf("%d", r.Remarks),
			fmt.Sprintf("%d", r.Reused),
		})
	}
	return t
}

// CheckIncremental enforces the CI smoke gate: on the idle-heap scenario the
// incremental mode must not be slower than the full mode by more than 10%.
// (Idle is the regression canary: the remark does nothing there, so any
// slowdown is pure overhead in the snapshot/delta machinery.)
func CheckIncremental(rows []IncrementalRow) error {
	var fullNs, incNs float64
	for _, r := range rows {
		if r.Scenario != "idle" {
			continue
		}
		switch r.Mode {
		case "full":
			fullNs = r.NsPerOp
		case "incremental":
			incNs = r.NsPerOp
		}
	}
	if fullNs == 0 || incNs == 0 {
		return fmt.Errorf("check: missing idle rows (full=%v incremental=%v)", fullNs, incNs)
	}
	if incNs > fullNs*1.10 {
		return fmt.Errorf("check: idle-heap incremental trace %.0fns/round exceeds full %.0fns/round by more than 10%%",
			incNs, fullNs)
	}
	return nil
}

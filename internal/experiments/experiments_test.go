package experiments

import (
	"fmt"
	"strings"
	"testing"

	"backtrace/internal/workload"
)

func TestMessagesMatchPaperFormula(t *testing.T) {
	specs := []workload.Spec{
		workload.Ring(2), workload.Ring(5), workload.Ring(9),
		workload.DenseCycle(3, 3, 0, 1),
	}
	rows, err := MessagesPerTrace(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(specs) {
		t.Fatalf("rows = %d, want %d", len(rows), len(specs))
	}
	for _, r := range rows {
		if r.Total != r.Predicted {
			t.Errorf("%s: %d messages, paper predicts %d", r.Workload, r.Total, r.Predicted)
		}
		if r.BackCalls != r.BackReplies {
			t.Errorf("%s: calls %d != replies %d", r.Workload, r.BackCalls, r.BackReplies)
		}
	}
	if tbl := MessagesTable(rows); !strings.Contains(tbl.String(), "2E+P") {
		t.Error("table missing formula")
	}
}

func TestDistanceTheoremHolds(t *testing.T) {
	rows := DistanceConvergence([]int{2, 4}, 6)
	for _, r := range rows {
		if !r.Holds {
			t.Errorf("theorem violated: sites=%d round=%d min=%d", r.Sites, r.Round, r.MinDist)
		}
	}
	if tbl := DistanceTable(rows); len(tbl.Rows) != len(rows) {
		t.Error("table row mismatch")
	}
}

func TestInsetComparisonShape(t *testing.T) {
	rows := InsetComparison(5)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 3 shapes x 2 algorithms", len(rows))
	}
	byShape := make(map[string]map[string]InsetRow)
	for _, r := range rows {
		if byShape[r.Shape] == nil {
			byShape[r.Shape] = make(map[string]InsetRow)
		}
		byShape[r.Shape][r.Algo.String()] = r
	}
	for shape, algos := range byShape {
		ind, bu := algos["independent"], algos["bottom-up"]
		if ind.Visits < bu.Visits {
			t.Errorf("%s: independent visited fewer objects (%d) than bottom-up (%d)",
				shape, ind.Visits, bu.Visits)
		}
		if bu.Visits > int64(bu.Objects)+1 {
			t.Errorf("%s: bottom-up visited %d > objects %d (must scan each once)",
				shape, bu.Visits, bu.Objects)
		}
		if bu.MemoHits == 0 {
			t.Errorf("%s: no memoized unions", shape)
		}
	}
	_ = InsetTable(rows).String()
}

func TestSpaceBoundHolds(t *testing.T) {
	rows, err := SpaceBound([]workload.Spec{workload.Ring(3), workload.DenseCycle(3, 4, 5, 1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Entries > r.Bound {
			t.Errorf("%s site %v: entries %d > bound %d", r.Workload, r.Site, r.Entries, r.Bound)
		}
	}
	_ = SpaceTable(rows).String()
}

func TestThresholdTuningShape(t *testing.T) {
	rows := ThresholdTuning([]int{4, 16})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	low, high := rows[0], rows[1]
	if low.TracesStarted < high.TracesStarted {
		t.Errorf("low T2 started fewer traces (%d) than high T2 (%d)",
			low.TracesStarted, high.TracesStarted)
	}
	if high.RoundsToClean < low.RoundsToClean {
		t.Errorf("high T2 collected sooner (%d) than low T2 (%d)",
			high.RoundsToClean, low.RoundsToClean)
	}
	if low.LiveOutcomes == 0 {
		t.Error("low T2 produced no abortive (Live) traces on the live far chain")
	}
	if high.LiveOutcomes > low.LiveOutcomes {
		t.Error("high T2 produced more abortive traces than low T2")
	}
	_ = ThresholdTable(rows).String()
}

func TestCompareCollectorsCompleteness(t *testing.T) {
	rows, err := CompareCollectors(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]CompareRow, len(rows))
	for _, r := range rows {
		byName[r.Collector] = r
	}
	for _, name := range []string{"back-tracing", "migration", "hughes", "group-trace"} {
		if byName[name].Collected != 3 {
			t.Errorf("%s collected %d, want 3", name, byName[name].Collected)
		}
	}
	if byName["local-only"].Collected != 0 {
		t.Error("local-only collected a cycle")
	}
	// Locality: back tracing involves only the cycle's sites.
	if got := byName["back-tracing"].SitesInvolved; got > 3 {
		t.Errorf("back tracing involved %d sites, want <= 3", got)
	}
	// Hughes keeps paying global traffic after collection.
	if byName["hughes"].SteadyPerRound <= byName["back-tracing"].SteadyPerRound {
		t.Errorf("hughes steady cost (%d) should exceed back tracing's (%d)",
			byName["hughes"].SteadyPerRound, byName["back-tracing"].SteadyPerRound)
	}
	_ = CompareTable(3, 1, rows).String()
}

func TestLocalityUnderCrashRows(t *testing.T) {
	rows, err := LocalityUnderCrash(25)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]LocalityRow, len(rows))
	for _, r := range rows {
		byName[r.Collector] = r
	}
	bt := byName["back-tracing"]
	if !bt.DisjointCollected {
		t.Error("back tracing failed to collect the cycle disjoint from the crashed site")
	}
	if bt.DependentCollected {
		t.Error("back tracing collected a cycle with a crashed participant")
	}
	hu := byName["hughes"]
	if hu.DisjointCollected {
		t.Error("hughes collected despite a stalled global threshold")
	}
	_ = LocalityTable(rows).String()
}

func TestTimelineOrdering(t *testing.T) {
	rows := Timeline([]int{2, 4}, 3, 7)
	for _, r := range rows {
		if r.RoundSuspected == 0 || r.RoundTraced == 0 || r.RoundCollected == 0 {
			t.Fatalf("lifecycle incomplete: %+v", r)
		}
		if !(r.RoundSuspected <= r.RoundTraced && r.RoundTraced <= r.RoundCollected) {
			t.Fatalf("lifecycle out of order: %+v", r)
		}
	}
	_ = TimelineTable(rows).String()
}

func TestOverlapShape(t *testing.T) {
	rows := Overlap([]int{2, 4})
	byKey := make(map[string]OverlapRow)
	for _, r := range rows {
		byKey[fmt.Sprintf("%d/%s", r.Sites, r.Mode)] = r
		if !r.Collected {
			t.Errorf("%d/%s: cycle not collected", r.Sites, r.Mode)
		}
	}
	for _, n := range []int{2, 4} {
		inter := byKey[fmt.Sprintf("%d/interleaved", n)]
		lock := byKey[fmt.Sprintf("%d/lockstep", n)]
		if lock.TracesStarted < inter.Garbage {
			t.Errorf("n=%d: lockstep started fewer traces (%d) than interleaved confirmed (%d)",
				n, lock.TracesStarted, inter.Garbage)
		}
		if lock.TracesStarted != int64(n) {
			t.Errorf("n=%d: lockstep traces = %d, want %d (all sites trigger at once)",
				n, lock.TracesStarted, n)
		}
	}
	_ = OverlapTable(rows).String()
}

func TestHypertextRuns(t *testing.T) {
	row, err := Hypertext(8, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if row.Garbage == 0 {
		t.Skip("seed produced no orphans")
	}
	if row.Collected != row.Garbage {
		t.Fatalf("collected %d of %d", row.Collected, row.Garbage)
	}
	_ = HypertextTable([]HypertextRow{row}).String()
}

func TestTelemetryComplexityMatchesPaperFormula(t *testing.T) {
	row, err := TelemetryComplexity(6)
	if err != nil {
		t.Fatal(err)
	}
	// 6-site ring: E = 6, P = 6 → 6 calls, 6 replies, 5 reports, 17 total.
	if row.BackCalls != 6 || row.BackReplies != 6 || row.Reports != 5 {
		t.Errorf("counts = calls %d replies %d reports %d, want 6/6/5",
			row.BackCalls, row.BackReplies, row.Reports)
	}
	if row.Total != row.Predicted || row.Total != 17 {
		t.Errorf("total = %d, predicted %d, want 17", row.Total, row.Predicted)
	}
	// The span tree independently reports the same participant set.
	if row.Participants != row.Sites {
		t.Errorf("span tree has %d participants, workload touches %d sites",
			row.Participants, row.Sites)
	}
	if row.RTTSamples < 1 {
		t.Errorf("rtt samples = %d, want >= 1", row.RTTSamples)
	}
	if tbl := TelemetryTable([]TelemetryRow{row}); !strings.Contains(tbl.String(), "registry") {
		t.Error("table missing title")
	}
}

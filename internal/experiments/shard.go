package experiments

import (
	"fmt"
	"time"

	"backtrace/internal/heap"
	"backtrace/internal/ids"
	"backtrace/internal/refs"
	"backtrace/internal/tracer"
)

// ShardRow is one (shards, workers) cell of experiment C16: local-trace
// latency over a sharded heap with the work-stealing parallel marker,
// against the sequential single-shard baseline.
type ShardRow struct {
	Shards     int
	Workers    int
	Objects    int
	NsPerTrace float64
	// Speedup is the same-shard-count sequential latency divided by this
	// row's latency (1.0 for the workers=1 rows by construction).
	Speedup float64
	// Equal records that the row's trace result is content-identical to
	// the sequential single-shard baseline — the bit-identical claim the
	// parallel tracer makes.
	Equal bool
}

// shardWorkload builds the C16 heap on the requested shard count: a wide
// 8-ary live tree (so the mark phase has parallelism to harvest), a
// garbage chain (so the dead sweep runs), one suspected inref deep in the
// tree (so the outset phase runs), and a few outrefs from scattered tree
// nodes (so distance propagation to remote references runs).
func shardWorkload(shards, objects, threshold int) (*heap.Heap, *refs.Table) {
	h := heap.NewSharded(1, shards)
	tbl := refs.NewTableSharded(1, 1<<20, shards)

	live := objects * 4 / 5
	objs := make([]ids.Ref, 0, live)
	objs = append(objs, h.AllocRoot())
	for len(objs) < live {
		o := h.Alloc()
		parent := objs[(len(objs)-1)/8]
		_ = h.AddField(parent.Obj, o)
		objs = append(objs, o)
	}
	var prev ids.Ref
	for i := live; i < objects; i++ {
		o := h.Alloc()
		if !prev.IsZero() {
			_ = h.AddField(prev.Obj, o)
		}
		prev = o
	}

	deep := objs[len(objs)/10]
	tbl.AddSource(deep.Obj, 2)
	tbl.SetSourceDistance(deep.Obj, 2, threshold+5)
	for i := 1; i <= 4; i++ {
		out := ids.Ref{Site: 2, Obj: ids.ObjID(i)}
		tbl.EnsureOutref(out)
		_ = h.AddField(objs[len(objs)*i/5].Obj, out)
	}
	return h, tbl
}

// ShardTrace measures experiment C16: local-trace latency as a function of
// heap/table shard count and mark-worker count, with every parallel result
// checked content-identical to the sequential single-shard baseline.
func ShardTrace(objects, rounds int) ([]ShardRow, error) {
	const threshold = 3
	if rounds < 1 {
		rounds = 1
	}

	baseH, baseTbl := shardWorkload(1, objects, threshold)
	baseline := tracer.Run(baseH, baseTbl, threshold, tracer.AlgoBottomUp)

	var out []ShardRow
	for _, shards := range []int{1, 4, 8} {
		h, tbl := shardWorkload(shards, objects, threshold)
		var seqNs float64
		for _, workers := range []int{1, 2, 4, 8} {
			run := func() *tracer.Result {
				if workers > 1 {
					return tracer.RunParallel(h, tbl, threshold, tracer.AlgoBottomUp, workers)
				}
				return tracer.Run(h, tbl, threshold, tracer.AlgoBottomUp)
			}
			res := run() // warmup + correctness probe
			start := time.Now()
			for i := 0; i < rounds; i++ {
				res = run()
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(rounds)
			if workers == 1 {
				seqNs = ns
			}
			out = append(out, ShardRow{
				Shards:     shards,
				Workers:    workers,
				Objects:    objects,
				NsPerTrace: ns,
				Speedup:    seqNs / ns,
				Equal:      tracer.EqualResults(res, baseline),
			})
		}
	}
	return out, nil
}

// ShardTable renders the C16 rows.
func ShardTable(rows []ShardRow) *Table {
	t := &Table{
		Title:  "C16: sharded heap + work-stealing parallel mark (trace latency)",
		Header: []string{"shards", "workers", "objects", "ns/trace", "speedup", "equal"},
		Caption: "speedup is relative to the sequential tracer on the same shard count; " +
			"equal checks the result is content-identical to the single-shard sequential baseline",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d", r.Objects),
			fmt.Sprintf("%.0f", r.NsPerTrace),
			fmt.Sprintf("%.2f", r.Speedup),
			fmt.Sprintf("%v", r.Equal),
		})
	}
	return t
}

// CheckShard enforces the CI smoke gate for C16: every configuration must
// produce a result content-identical to the sequential baseline, and no
// parallel configuration may be pathologically slower than the sequential
// tracer on the same shard count (a generous 3x bound — shared CI runners
// make tighter latency assertions flaky; the ≥3x speedup claim itself is
// benchmarked on dedicated hardware, see BENCH_PR7.json).
func CheckShard(rows []ShardRow) error {
	if len(rows) == 0 {
		return fmt.Errorf("check: no shard rows")
	}
	for _, r := range rows {
		if !r.Equal {
			return fmt.Errorf("check: shards=%d workers=%d result diverges from the sequential baseline",
				r.Shards, r.Workers)
		}
		if r.Workers > 1 && r.Speedup < 1.0/3 {
			return fmt.Errorf("check: shards=%d workers=%d is %.2fx the sequential latency (pathological slowdown)",
				r.Shards, r.Workers, 1/r.Speedup)
		}
	}
	return nil
}

package cluster

import (
	"math/rand"
	"testing"

	"backtrace/internal/ids"
)

// TestIncrementalMatchesFull collects the same workload with full-snapshot
// and incremental tracing, serial and parallel drivers: identical collection
// outcome, no invariant violations.
func TestIncrementalMatchesFull(t *testing.T) {
	for _, incremental := range []bool{false, true} {
		for _, parallel := range []bool{false, true} {
			opts := defaultOpts(4)
			opts.Incremental = incremental
			opts.Parallel = parallel
			c := New(opts)

			root := c.Site(1).NewRootObject()
			prev := root
			for i := 2; i <= 4; i++ {
				n := c.Site(ids.SiteID(i)).NewObject()
				c.MustLink(prev, n)
				prev = n
			}
			ring := c.BuildRing()

			rounds, collected := c.CollectUntilStable(40)
			if g := c.GarbageCount(); g != 0 {
				t.Fatalf("incremental=%v parallel=%v: %d garbage objects remain after %d rounds",
					incremental, parallel, g, rounds)
			}
			if collected != len(ring) {
				t.Fatalf("incremental=%v parallel=%v: collected %d, want %d",
					incremental, parallel, collected, len(ring))
			}
			if !c.Site(1).ContainsObject(root.Obj) || !c.Site(4).ContainsObject(prev.Obj) {
				t.Fatalf("incremental=%v parallel=%v: live chain was collected", incremental, parallel)
			}
			if got := c.InvariantViolations(); len(got) != 0 {
				t.Fatalf("incremental=%v parallel=%v: invariants: %v", incremental, parallel, got)
			}
			c.Close()
		}
	}
}

// TestIncrementalConcurrentStress is TestConcurrentStress with incremental
// tracing on: per-site mutators fire the write barrier from many goroutines
// while split traces snapshot and commit, all under the race detector.
func TestIncrementalConcurrentStress(t *testing.T) {
	opts := defaultOpts(4)
	opts.Parallel = true
	opts.InboxSize = 8
	opts.Incremental = true
	runConcurrentStress(t, opts)
}

// TestFigure6InterleavingsIncremental replays the Figure 5/6 race schedules
// with incremental tracing enabled: the dirty-set remark and its
// write-barrier invalidation run while back traces are active, and the
// safety/completeness oracles must still hold on every schedule.
func TestFigure6InterleavingsIncremental(t *testing.T) {
	const seeds = 30
	for seed := int64(1); seed <= seeds; seed++ {
		func() {
			fx := buildFigure5(t, func(o *Options) { o.Incremental = true })
			defer fx.c.Close()
			rng := rand.New(rand.NewSource(seed))
			q, r, s := fx.c.Site(2), fx.c.Site(3), fx.c.Site(4)

			mutatorSteps := []func(){
				func() { _ = s.Traverse(fx.e) },
				func() { _ = r.Traverse(fx.f) },
				func() { _ = q.AddReference(fx.y.Obj, fx.z) },
				func() { _ = s.RemoveReference(fx.d.Obj, fx.e) },
				func() { r.DropAppRoot(fx.e); q.DropAppRoot(fx.f) },
			}
			nextMutator := 0
			tracesStarted := 0

			for step := 0; step < 200; step++ {
				switch rng.Intn(5) {
				case 0:
					n := fx.c.Net().PendingCount()
					if n > 0 {
						fx.c.Net().DeliverIndex(rng.Intn(n))
					}
				case 1:
					if nextMutator < len(mutatorSteps) {
						mutatorSteps[nextMutator]()
						nextMutator++
					}
				case 2:
					if tracesStarted < 3 {
						site := fx.c.Site(ids.SiteID(1 + rng.Intn(4)))
						for _, o := range site.Outrefs() {
							if !o.Clean {
								site.StartBackTrace(o.Target)
								tracesStarted++
								break
							}
						}
					}
				case 3:
					fx.c.Site(ids.SiteID(1 + rng.Intn(4))).RunLocalTrace()
				case 4:
					// Split trace: mutations land between snapshot and
					// commit, so the next snapshot's delta covers them.
					site := fx.c.Site(ids.SiteID(1 + rng.Intn(4)))
					site.BeginLocalTrace()
					if n := fx.c.Net().PendingCount(); n > 0 && rng.Intn(2) == 0 {
						fx.c.Net().DeliverIndex(rng.Intn(n))
					}
					site.CommitLocalTrace()
				}
			}
			for ; nextMutator < len(mutatorSteps); nextMutator++ {
				mutatorSteps[nextMutator]()
			}
			fx.c.Settle()
			rounds, _ := fx.c.CollectUntilStable(50)

			for _, ref := range fx.liveAfterMutation() {
				if !fx.c.Site(ref.Site).ContainsObject(ref.Obj) {
					t.Fatalf("seed %d: live object %v collected (after %d rounds)", seed, ref, rounds)
				}
			}
			if g := fx.c.GarbageCount(); g != 0 {
				t.Fatalf("seed %d: %d garbage objects not collected", seed, g)
			}
			if got := fx.c.InvariantViolations(); len(got) != 0 {
				t.Fatalf("seed %d: invariants: %v", seed, got)
			}
		}()
	}
}

package cluster

import (
	"testing"

	"backtrace/internal/ids"
)

// FuzzClusterOps drives a small cluster with a byte-string-decoded
// operation sequence — linking, unlinking, root demotion, local traces,
// scrambled deliveries, back-trace triggers — then checks the collector
// against plain reachability: no live object collected, all garbage
// reclaimed, cross-site reference lists consistent.
func FuzzClusterOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte("link unlink trace deliver"))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 100, 200, 50, 25})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		const nSites = 3
		opts := defaultOpts(nSites)
		c := New(opts)
		defer c.Close()

		// Fixed scaffold: one root per site, a few objects per site.
		var objs []ids.Ref
		for i := 1; i <= nSites; i++ {
			objs = append(objs, c.Site(ids.SiteID(i)).NewRootObject())
			for k := 0; k < 3; k++ {
				objs = append(objs, c.Site(ids.SiteID(i)).NewObject())
			}
		}

		pos := 0
		next := func() byte {
			b := data[pos%len(data)]
			pos++
			return b
		}
		pick := func() ids.Ref { return objs[int(next())%len(objs)] }

		steps := len(data)
		if steps > 64 {
			steps = 64
		}
		for i := 0; i < steps; i++ {
			switch next() % 6 {
			case 0, 1: // link
				from, to := pick(), pick()
				if c.Site(from.Site).ContainsObject(from.Obj) && c.Site(to.Site).ContainsObject(to.Obj) {
					_ = c.Link(from, to)
				}
			case 2: // unlink
				from := pick()
				s := c.Site(from.Site)
				if fields, err := s.Fields(from.Obj); err == nil && len(fields) > 0 {
					_ = s.RemoveReference(from.Obj, fields[int(next())%len(fields)])
				}
			case 3: // local trace at one site
				c.Site(ids.SiteID(int(next())%nSites + 1)).RunLocalTrace()
			case 4: // deliver some messages in data-chosen order
				for k := 0; k < int(next()%5); k++ {
					if n := c.Net().PendingCount(); n > 0 {
						c.Net().DeliverIndex(int(next()) % n)
					}
				}
			case 5: // demote a root occasionally
				if next()%16 == 0 {
					r := objs[(int(next())%nSites)*4] // roots are every 4th
					c.Site(r.Site).UnmarkPersistentRoot(r.Obj)
				}
			}
		}

		c.Settle()
		c.CollectUntilStable(60)

		// Oracle: survivors must be exactly the globally reachable set.
		if g := c.GarbageCount(); g != 0 {
			t.Fatalf("%d garbage objects not collected", g)
		}
		live := c.GlobalLive()
		if len(live) != c.TotalObjects() {
			t.Fatalf("live=%d objects=%d", len(live), c.TotalObjects())
		}
		if got := c.InvariantViolations(); len(got) != 0 {
			t.Fatalf("invariants: %v", got)
		}
	})
}

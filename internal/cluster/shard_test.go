package cluster

import (
	"testing"

	"backtrace/internal/ids"
)

// TestShardedConcurrentStress is TestConcurrentStress over sharded site
// internals: 8 heap/ref-table shards per site and the work-stealing
// parallel marker, so the read-lock fast-path mutators, the per-shard
// locks, the concurrent shard snapshots, and the CAS-min mark all run
// under the race detector at once.
func TestShardedConcurrentStress(t *testing.T) {
	opts := defaultOpts(4)
	opts.Parallel = true
	opts.InboxSize = 8
	opts.Shards = 8
	opts.TraceWorkers = 4
	runConcurrentStress(t, opts)
}

// TestShardedIncrementalConcurrentStress layers incremental tracing on top
// of the sharded stress: write barriers touch per-shard dirty sets from
// many mutator goroutines while split traces patch per-shard snapshots and
// the parallel remark relaxes dirty seeds.
func TestShardedIncrementalConcurrentStress(t *testing.T) {
	opts := defaultOpts(4)
	opts.Parallel = true
	opts.InboxSize = 8
	opts.Incremental = true
	opts.Shards = 8
	opts.TraceWorkers = 4
	runConcurrentStress(t, opts)
}

// TestShardedRoundMatchesSerial re-runs the cross-site ring collection with
// sharded sites and parallel marking: results must match the unsharded
// collectors exactly — every garbage object reclaimed, the live chain
// untouched, no invariant violations.
func TestShardedRoundMatchesSerial(t *testing.T) {
	for _, workers := range []int{1, 4} {
		opts := defaultOpts(4)
		opts.Parallel = true
		opts.Shards = 4
		opts.TraceWorkers = workers
		c := New(opts)

		root := c.Site(1).NewRootObject()
		prev := root
		for i := 2; i <= 4; i++ {
			n := c.Site(ids.SiteID(i)).NewObject()
			c.MustLink(prev, n)
			prev = n
		}
		ring := c.BuildRing()

		rounds, collected := c.CollectUntilStable(40)
		if g := c.GarbageCount(); g != 0 {
			t.Fatalf("workers=%d: %d garbage objects remain after %d rounds (%d collected)",
				workers, g, rounds, collected)
		}
		if collected != len(ring) {
			t.Fatalf("workers=%d: collected %d, want %d", workers, collected, len(ring))
		}
		if !c.Site(1).ContainsObject(root.Obj) || !c.Site(4).ContainsObject(prev.Obj) {
			t.Fatalf("workers=%d: live chain was collected", workers)
		}
		if got := c.InvariantViolations(); len(got) != 0 {
			t.Fatalf("workers=%d: invariants: %v", workers, got)
		}
		c.Close()
	}
}

package cluster

import (
	"testing"
	"time"

	"backtrace/internal/ids"
	"backtrace/internal/msg"
)

// TestParticipantCrashMidTrace: a participant site crashes while a back
// trace is waiting on it. The initiator's call timeout resolves the trace
// Live (safe); after the site returns, retries confirm and collect the
// cycle.
func TestParticipantCrashMidTrace(t *testing.T) {
	opts := defaultOpts(3)
	opts.AutoBackTrace = false
	opts.BackThreshold = 7
	opts.CallTimeout = time.Nanosecond // expire on the next check
	opts.ReportTimeout = time.Nanosecond
	c := New(opts)
	defer c.Close()

	objs := c.BuildRing()
	c.RunRounds(6) // everything suspected

	// Start a trace; its first BackCall heads for site 2. Crash site 2
	// before delivering anything.
	if _, ok := c.Site(1).StartBackTrace(objs[1]); !ok {
		t.Fatal("no trace")
	}
	c.Net().Crash(2)
	c.Settle() // the queued call is dropped

	if c.Site(1).ActiveFrames() == 0 {
		t.Fatal("expected a frame waiting on the crashed site")
	}
	c.CheckAllTimeouts()
	outcomes := c.Site(1).Completions()
	if len(outcomes) != 1 || outcomes[0].Outcome != msg.VerdictLive {
		t.Fatalf("outcomes = %+v, want timeout-Live", outcomes)
	}
	if c.Site(1).ActiveFrames() != 0 {
		t.Fatal("frames leaked after timeout")
	}
	// Nothing was flagged: the cycle is intact (conservative).
	for _, s := range c.Sites() {
		if len(s.GarbageFlaggedInrefs()) != 0 {
			t.Fatal("timeout trace flagged inrefs")
		}
	}

	// Site 2 returns; distances keep growing; a retried trace collects.
	c.Net().Restart(2)
	for round := 0; round < 30 && c.GarbageCount() > 0; round++ {
		c.RunRound()
		c.Site(1).TriggerBackTraces()
		c.Settle()
		c.CheckAllTimeouts()
	}
	if g := c.GarbageCount(); g != 0 {
		t.Fatalf("cycle not collected after recovery: %d garbage", g)
	}
}

// TestInitiatorCrashMidTrace: the initiator crashes after its calls went
// out. Participants hold visit marks; their report timeout clears them as
// Live, so a later trace (from another site) can still confirm the cycle.
func TestInitiatorCrashMidTrace(t *testing.T) {
	opts := defaultOpts(3)
	opts.AutoBackTrace = false
	opts.CallTimeout = time.Nanosecond
	opts.ReportTimeout = time.Nanosecond
	c := New(opts)
	defer c.Close()

	objs := c.BuildRing()
	c.RunRounds(6)

	if _, ok := c.Site(1).StartBackTrace(objs[1]); !ok {
		t.Fatal("no trace")
	}
	// Deliver the outbound call so site 2 marks its iorefs, then crash
	// the initiator before the reply lands.
	c.Net().DeliverMatching(func(e msg.Envelope) bool {
		_, isCall := e.M.(msg.BackCall)
		return isCall && e.To == 2
	})
	c.Net().Crash(1)
	c.Settle()

	// Participants time out waiting for the report and clear their marks.
	c.CheckAllTimeouts()
	for _, id := range []ids.SiteID{2, 3} {
		if len(c.Site(id).GarbageFlaggedInrefs()) != 0 {
			t.Fatalf("site %v flagged without a report", id)
		}
	}

	// Site 1 comes back (its volatile trace state is gone, which is the
	// crash model); collection proceeds from any site.
	c.Net().Restart(1)
	for round := 0; round < 30 && c.GarbageCount() > 0; round++ {
		c.RunRound()
		for _, s := range c.Sites() {
			s.TriggerBackTraces()
		}
		c.Settle()
		c.CheckAllTimeouts()
	}
	if g := c.GarbageCount(); g != 0 {
		t.Fatalf("cycle not collected after initiator crash: %d garbage", g)
	}
}

// TestPartitionDuringTraceHealsByTimeout: a partition between two
// participants during a trace resolves Live by timeout; collection
// succeeds after healing.
func TestPartitionDuringTraceHealsByTimeout(t *testing.T) {
	opts := defaultOpts(4)
	opts.AutoBackTrace = false
	opts.CallTimeout = time.Nanosecond
	opts.ReportTimeout = time.Nanosecond
	c := New(opts)
	defer c.Close()

	objs := c.BuildRing()
	c.RunRounds(8)

	c.Net().Partition(2, 3)
	if _, ok := c.Site(1).StartBackTrace(objs[1]); !ok {
		t.Fatal("no trace")
	}
	c.Settle()
	c.CheckAllTimeouts()
	c.Settle()
	c.CheckAllTimeouts() // drain any frames waiting on dropped messages

	if c.GarbageCount() != 4 {
		t.Fatal("partitioned trace must not have collected anything")
	}

	c.Net().Heal(2, 3)
	for round := 0; round < 30 && c.GarbageCount() > 0; round++ {
		c.RunRound()
		for _, s := range c.Sites() {
			s.TriggerBackTraces()
		}
		c.Settle()
		c.CheckAllTimeouts()
	}
	if g := c.GarbageCount(); g != 0 {
		t.Fatalf("cycle not collected after heal: %d garbage", g)
	}
}

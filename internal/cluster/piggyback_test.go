package cluster

import (
	"testing"

	"backtrace/internal/metrics"
)

// TestPiggybackPreservesSemantics (paper §4.6: back-trace messages "can be
// piggybacked on other messages"): with batching on, collection outcomes
// are identical and the number of envelopes on the wire drops.
func TestPiggybackPreservesSemantics(t *testing.T) {
	run := func(piggyback bool) (collected int, envelopes, logical int64) {
		opts := defaultOpts(4)
		opts.Piggyback = piggyback
		c := New(opts)
		defer c.Close()
		c.BuildRing()
		c.BuildRing() // two interleaved cycles: more traffic to coalesce
		c.Counters().Reset()
		_, collected = c.CollectUntilStable(40)
		snap := c.Counters().Snapshot()
		envelopes = snap[metrics.WireFrames]
		logical = snap["msg.Update"] + snap["msg.BackCall"] + snap["msg.BackReply"] +
			snap["msg.Report"] + snap["msg.Insert"] + snap["msg.InsertAck"] +
			snap["msg.ReleasePin"] + snap["msg.RefTransfer"]
		return collected, envelopes, logical
	}

	plainCollected, plainEnv, _ := run(false)
	pbCollected, pbEnv, pbLogical := run(true)

	if plainCollected != 8 || pbCollected != 8 {
		t.Fatalf("collected: plain %d, piggyback %d; want 8", plainCollected, pbCollected)
	}
	if pbEnv >= plainEnv {
		t.Errorf("piggyback envelopes %d >= plain %d (no coalescing happened)", pbEnv, plainEnv)
	}
	// Logical counts are per leaf, so coalescing shrinks envelopes while
	// the per-type counters stay comparable across the two runs.
	if pbLogical > pbEnv {
		t.Logf("piggyback: %d envelopes for %d logical messages", pbEnv, pbLogical)
	}
	t.Logf("envelopes: plain=%d piggyback=%d", plainEnv, pbEnv)
}

// TestPiggybackWithRaces ensures batching does not break the Figure 5/6
// safety machinery (FIFO within a batch preserves the ordering the proofs
// rely on).
func TestPiggybackWithRaces(t *testing.T) {
	opts := defaultOpts(4)
	opts.Piggyback = true
	c := New(opts)
	defer c.Close()

	root := c.Site(1).NewRootObject()
	objs := c.BuildRing()
	c.MustLink(root, objs[2])

	c.RunRounds(20)
	for _, o := range objs {
		if !c.Site(o.Site).ContainsObject(o.Obj) {
			t.Fatalf("live cycle member %v collected under piggybacking", o)
		}
	}
	if got := c.InvariantViolations(); len(got) != 0 {
		t.Fatalf("invariants: %v", got)
	}
}

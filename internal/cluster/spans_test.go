package cluster

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"backtrace/internal/event"
	"backtrace/internal/ids"
	"backtrace/internal/obs"
)

// checkSpanCompleteness cross-checks the event log against the span
// collector: every back trace that logged TraceStarted AND TraceCompleted
// must have an assembled tree whose root span closed and whose root-listed
// participant sites all contributed a closed participant span; and no
// participant span may reference a trace with no root (orphan), except for
// trees the collector evicted.
func checkSpanCompleteness(t *testing.T, c *Cluster, events *event.Log) {
	t.Helper()
	started := make(map[ids.TraceID]struct{})
	completed := make(map[ids.TraceID]struct{})
	for _, e := range events.Snapshot() {
		switch e.Kind {
		case event.TraceStarted:
			started[e.Trace] = struct{}{}
		case event.TraceCompleted:
			completed[e.Trace] = struct{}{}
		}
	}
	if len(started) == 0 {
		t.Fatal("no back traces started during the run")
	}
	evicted := c.Spans().Evicted() > 0

	checked := 0
	for id := range started {
		if _, done := completed[id]; !done {
			// A trace resolved by a lost-message timeout at the initiator
			// still completes; one truncated by shutdown may not. The event
			// log is bounded too, so only pair-wise complete traces are
			// checked strictly.
			continue
		}
		tree := c.Spans().Tree(id)
		if tree == nil {
			if evicted || events.Dropped() > 0 {
				continue // bounded retention may have dropped old traces
			}
			t.Fatalf("trace %v: started and completed but no span tree", id)
		}
		if tree.Root == nil {
			t.Fatalf("trace %v: tree has participant spans but no root", id)
		}
		if tree.Root.End.IsZero() || tree.Root.End.Before(tree.Root.Start) {
			t.Fatalf("trace %v: root span not closed: %+v", id, tree.Root)
		}
		if !tree.Complete() {
			t.Fatalf("trace %v: tree incomplete: root participants %v, spans %+v",
				id, tree.Root.Participants, tree.Participants)
		}
		have := make(map[ids.SiteID]*obs.Span, len(tree.Participants))
		for _, p := range tree.Participants {
			have[p.Site] = p
		}
		for _, siteID := range tree.Root.Participants {
			p, ok := have[siteID]
			if !ok {
				t.Fatalf("trace %v: participant %v has no span", id, siteID)
			}
			if p.End.IsZero() || p.End.Before(p.Start) {
				t.Fatalf("trace %v: participant %v span not closed: %+v", id, siteID, p)
			}
			if p.Hops <= 0 && siteID != id.Initiator {
				t.Fatalf("trace %v: remote participant %v handled no calls: %+v", id, siteID, p)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no completed traces to check")
	}
	if orphans := c.Spans().OrphanTraceIDs(); len(orphans) > 0 && !evicted {
		t.Fatalf("orphan trace ids (participant spans with no root): %v", orphans)
	}
}

// TestSpanCompletenessSerial checks that a deterministic multi-site
// collection produces one complete span tree per back trace.
func TestSpanCompletenessSerial(t *testing.T) {
	events := event.NewLog(4096)
	opts := defaultOpts(4)
	opts.Events = events
	c := New(opts)
	defer c.Close()

	c.BuildRing()
	if _, collected := c.CollectUntilStable(60); collected != 4 {
		t.Fatalf("collected %d, want 4", collected)
	}
	checkSpanCompleteness(t, c, events)
}

// TestSpanCompletenessParallelStress drives the parallel mailbox driver
// with concurrent mutators while back traces run, then asserts (under
// -race) that every TraceStarted/TraceCompleted pair assembled into a
// complete cross-site span tree: closed root, a closed participant span
// from every site the trace engaged, and no orphan TraceIDs.
func TestSpanCompletenessParallelStress(t *testing.T) {
	const (
		numSites = 4
		duration = 300 * time.Millisecond
	)
	events := event.NewLog(1 << 16)
	opts := defaultOpts(numSites)
	opts.Parallel = true
	opts.InboxSize = 8 // small inbox so spans carry real queue waits
	opts.Events = events
	c := New(opts)
	defer c.Close()

	// Seed garbage the back traces will chase.
	c.BuildRing()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Mutators allocating local cycles and transferring refs between sites.
	for i := 1; i <= numSites; i++ {
		id := ids.SiteID(i)
		wg.Add(1)
		go func(id ids.SiteID, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			s := c.Site(id)
			local := []ids.Ref{s.NewRootObject()}
			pick := func() ids.Ref { return local[rng.Intn(len(local))] }
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(4) {
				case 0:
					n := s.NewObject()
					if err := s.AddReference(pick().Obj, n); err == nil {
						local = append(local, n)
					}
				case 1:
					_ = s.AddReference(pick().Obj, pick())
				case 2:
					peer := ids.SiteID(1 + rng.Intn(numSites))
					if peer != id {
						if r := pick(); s.SendRef(peer, r) == nil {
							// Peer never adopts it; the hold drains below.
						}
					}
				case 3:
					if fields, err := s.Fields(pick().Obj); err == nil && len(fields) > 0 {
						_ = s.RemoveReference(pick().Obj, fields[rng.Intn(len(fields))])
					}
				}
			}
		}(id, int64(i))
	}

	// Collectors running local traces and triggering back traces.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := c.Site(ids.SiteID(1 + rng.Intn(numSites)))
				if rng.Intn(2) == 0 {
					s.RunLocalTrace()
				} else {
					s.TriggerBackTraces()
					s.Completions()
				}
			}
		}(int64(100 + g))
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	c.Settle()

	// Drain the mutator holds, then keep collecting so the remaining
	// garbage generates full-cluster traces.
	for {
		dropped := false
		for _, s := range c.Sites() {
			for _, r := range s.AuditSnapshot().AppRoots {
				s.DropAppRoot(r)
				dropped = true
			}
		}
		c.Settle()
		if !dropped {
			break
		}
	}
	c.CollectUntilStable(120)
	c.Settle()

	checkSpanCompleteness(t, c, events)

	// The run must also have produced latency observations.
	snap := c.Metrics()
	if snap.Histograms[obs.MetricBackTraceRTT].Count == 0 {
		t.Fatal("no back-trace RTT observations")
	}
	if snap.Histograms[obs.MetricMailboxQueueDelay].Count == 0 {
		t.Fatal("no mailbox queue-delay observations")
	}
	if snap.Histograms[obs.MetricLocalTraceDuration].Count == 0 {
		t.Fatal("no local-trace duration observations")
	}
}
